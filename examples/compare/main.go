// Compare: a mini-study of all broadcast protocols across the paper's two
// density regimes (d=6 common, d=18 highly dense), averaged over several
// networks and sources. Reproduces in miniature the ordering of the paper's
// Figures 6–8 plus the related-work baselines of §2.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"clustercast/internal/broadcast"
	"clustercast/internal/core"
	"clustercast/internal/coverage"
	"clustercast/internal/fwdtree"
	"clustercast/internal/marking"
	"clustercast/internal/passive"
	"clustercast/internal/rng"
	"clustercast/internal/stats"
)

func main() {
	const n = 80
	const samples = 20

	for _, d := range []float64{6, 18} {
		fmt.Printf("=== n=%d, average degree %g ===\n", n, d)
		sums := map[string]*stats.Summary{}
		order := []string{
			"flooding", "mpr", "dp", "pdp", "passive(3rd)",
			"marking", "fwd-tree", "mo-cds",
			"static-2.5", "static-3", "dynamic-2.5", "dynamic-3",
		}
		for _, name := range order {
			sums[name] = &stats.Summary{}
		}

		src := rng.NewLabeled(7, "compare-sources")
		for s := 0; s < samples; s++ {
			nw, err := core.NewRandomNetwork(core.NetworkSpec{
				N: n, AvgDegree: d, Seed: uint64(1000*d) + uint64(s),
			})
			if err != nil {
				log.Fatal(err)
			}
			g := nw.Graph()
			nb := broadcast.NewNeighborhood(g)
			source := src.Intn(n)

			static25 := nw.StaticBackbone(core.Hop25)
			static3 := nw.StaticBackbone(core.Hop3)
			mo := nw.MOCDS()

			sums["flooding"].Add(float64(nw.Flood(source).ForwardCount()))
			sums["mpr"].Add(float64(broadcast.Run(g, source, broadcast.NewMPR(nb)).ForwardCount()))
			sums["dp"].Add(float64(broadcast.Run(g, source, broadcast.NewDP(nb)).ForwardCount()))
			sums["pdp"].Add(float64(broadcast.Run(g, source, broadcast.NewPDP(nb)).ForwardCount()))
			sums["mo-cds"].Add(float64(nw.BroadcastMOCDS(mo, source).ForwardCount()))
			sums["static-2.5"].Add(float64(nw.BroadcastStatic(static25, source).ForwardCount()))
			sums["static-3"].Add(float64(nw.BroadcastStatic(static3, source).ForwardCount()))
			sums["dynamic-2.5"].Add(float64(nw.DynamicBroadcast(core.Hop25, source).ForwardCount()))
			sums["dynamic-3"].Add(float64(nw.DynamicBroadcast(core.Hop3, source).ForwardCount()))
			sums["marking"].Add(float64(broadcast.Run(g, source,
				broadcast.StaticCDS{Set: marking.Build(g)}).ForwardCount()))
			cb := coverage.NewBuilder(g, nw.Clustering, coverage.Hop25)
			if tree, err := fwdtree.Build(cb, nw.Clustering, source); err == nil {
				sums["fwd-tree"].Add(float64(broadcast.Run(g, source,
					broadcast.StaticCDS{Set: tree.Nodes}).ForwardCount()))
			}
			series := passive.RunSeries(g, []int{source, source, source})
			sums["passive(3rd)"].Add(float64(series[2].ForwardCount()))
		}

		fmt.Printf("%-12s %10s %8s\n", "protocol", "forwards", "±std")
		for _, name := range order {
			s := sums[name]
			fmt.Printf("%-12s %10.1f %8.1f\n", name, s.Mean(), s.StdDev())
		}
		fmt.Println()
	}
	fmt.Println("expected ordering: fwd-tree < dynamic < static ≲ marking ≲ mo-cds < flooding;")
	fmt.Println("the dynamic/static gap widens with density (the paper's Figure 8).")
	fmt.Println("(fwd-tree is smallest but needs per-source maintenance; passive needs no setup")
	fmt.Println(" traffic at all but converges slowly and does not guarantee delivery.)")
}
