// Paperwalk replays the paper's §3 worked example (Figures 3 and 4) on
// the exact 10-node network, printing every step: cluster formation, the
// CH_HOP1/CH_HOP2 messages, each clusterhead's coverage set and GATEWAY
// selection, the resulting cluster graphs, and finally the SI-CDS vs
// SD-CDS broadcast comparison (9 vs 7 forward nodes).
//
// Node IDs are printed 1-based to match the paper's figures.
//
//	go run ./examples/paperwalk
package main

import (
	"fmt"
	"sort"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/graph"
)

// paper prints a 0-based node ID the way the paper writes it.
func paper(v int) int { return v + 1 }

func paperList(vs []int) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = paper(v)
	}
	sort.Ints(out)
	return out
}

func main() {
	// The network of Figure 3 (paper edges, shifted to 0-based).
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	g := graph.FromEdges(10, zero)

	fmt.Println("== Figure 3(a): the 10-node network ==")
	fmt.Printf("nodes 1..10, %d edges\n\n", g.M())

	fmt.Println("== Figure 3(b): lowest-ID clustering ==")
	cl := cluster.LowestID(g)
	for _, h := range cl.Heads {
		fmt.Printf("cluster C%d: head %d, members %v\n",
			paper(h), paper(h), paperList(cl.Members[h]))
	}
	fmt.Println()

	fmt.Println("== CH_HOP1 / CH_HOP2 messages (2.5-hop coverage) ==")
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	for v := 0; v < g.N(); v++ {
		if cl.IsHead(v) {
			continue
		}
		fmt.Printf("CH_HOP1(%d) = %v", paper(v), paperList(b.CH1(v)))
		if len(b.CH2(v)) > 0 {
			fmt.Printf("   CH_HOP2(%d) = {", paper(v))
			first := true
			for _, w := range graph.SortedMembers(boolKeys(b.CH2(v))) {
				if !first {
					fmt.Print(", ")
				}
				first = false
				fmt.Printf("%d[%d]", paper(w), paper(b.CH2(v)[w]))
			}
			fmt.Print("}")
		}
		fmt.Println()
	}
	fmt.Println()

	fmt.Println("== coverage sets and GATEWAY selections ==")
	for _, h := range cl.Heads {
		cov := b.Of(h)
		sel := backbone.SelectGateways(cov, nil, nil)
		fmt.Printf("C(%d) = C²%v ∪ C³%v  →  GATEWAY(%d) = %v\n",
			paper(h), paperList(cov.C2.Members()),
			paperList(cov.C3.Members()),
			paper(h), paperList(sel.Gateways))
	}
	static := backbone.BuildStaticFrom(b, cl)
	fmt.Printf("static backbone (Figure 3(c)): %v — %d nodes\n\n",
		paperList(graph.SortedMembers(static.Nodes)), static.Size())

	fmt.Println("== Figure 4: cluster graphs ==")
	d25, idx := coverage.ClusterGraph(b)
	fmt.Print("2.5-hop: ")
	printClusterGraph(d25, idx, cl)
	b3 := coverage.NewBuilder(g, cl, coverage.Hop3)
	d3, idx3 := coverage.ClusterGraph(b3)
	fmt.Print("3-hop:   ")
	printClusterGraph(d3, idx3, cl)
	fmt.Println()

	fmt.Println("== broadcast from node 1: SI-CDS vs SD-CDS ==")
	sres := broadcast.Run(g, 0, broadcast.StaticCDS{Set: static.Nodes})
	fmt.Printf("static  (SI-CDS): %d forward nodes %v\n",
		sres.ForwardCount(), paperList(graph.SortedMembers(sres.Forwarders)))
	dres := dynamicb.New(g, cl, coverage.Hop25).Broadcast(0)
	fmt.Printf("dynamic (SD-CDS): %d forward nodes %v\n",
		dres.ForwardCount(), paperList(graph.SortedMembers(dres.Forwarders)))
	fmt.Printf("\nthe paper's conclusion, reproduced: %d vs %d — the on-demand backbone\n"+
		"prunes the redundant relays (nodes 5 and 8 stay silent).\n",
		sres.ForwardCount(), dres.ForwardCount())
}

// printClusterGraph renders directed cluster-graph edges with paper IDs.
func printClusterGraph(d *graph.Digraph, idx map[int]int, cl *cluster.Clustering) {
	inv := make(map[int]int, len(idx))
	for head, i := range idx {
		inv[i] = head
	}
	var parts []string
	for u := 0; u < d.N(); u++ {
		for _, v := range d.Out(u) {
			parts = append(parts, fmt.Sprintf("%d→%d", paper(inv[u]), paper(inv[v])))
		}
	}
	sort.Strings(parts)
	fmt.Println(parts)
}

// boolKeys converts a w→relay map into a membership map for sorting.
func boolKeys(m map[int]int) map[int]bool {
	out := make(map[int]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
