// Routing: on-demand route discovery over the broadcast service — the
// application the paper's introduction motivates. A route request is
// flooded either blindly or over the cluster-based dynamic backbone; the
// delivery tree's parent pointers give the route back to the source.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"clustercast/internal/broadcast"
	"clustercast/internal/core"
	"clustercast/internal/rng"
	"clustercast/internal/routing"
)

func main() {
	const n = 100
	nw, err := core.NewRandomNetwork(core.NetworkSpec{N: n, AvgDegree: 18, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", nw.Summarize())
	dyn := nw.DynamicProtocol(core.Hop25)

	r := rng.NewLabeled(21, "route-pairs")
	fmt.Printf("\n%6s %6s | %12s %9s | %12s %9s %9s\n",
		"src", "dst", "flood RREQs", "hops", "bb RREQs", "hops", "stretch")
	var floodTotal, bbTotal int
	for i := 0; i < 8; i++ {
		src, dst := r.Intn(n), r.Intn(n)
		if src == dst {
			continue
		}
		fr, err := routing.Discover(nw.Graph(), src, dst, broadcast.Flooding{})
		if err != nil {
			log.Fatal(err)
		}
		br, err := routing.Discover(nw.Graph(), src, dst, dyn)
		if err != nil {
			log.Fatal(err)
		}
		if err := br.Validate(nw.Graph(), src, dst); err != nil {
			log.Fatal(err)
		}
		floodTotal += fr.RequestCost
		bbTotal += br.RequestCost
		fmt.Printf("%6d %6d | %12d %9d | %12d %9d %9.2f\n",
			src, dst, fr.RequestCost, fr.Len(), br.RequestCost, br.Len(), br.Stretch(nw.Graph()))
	}
	fmt.Printf("\ntotal RREQ transmissions: flooding=%d, backbone=%d (saved %.0f%%)\n",
		floodTotal, bbTotal, 100*(1-float64(bbTotal)/float64(floodTotal)))
	fmt.Println("the backbone confines discovery floods to a small relay set at a few percent route stretch.")
}
