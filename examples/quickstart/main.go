// Quickstart: generate a MANET, build the paper's backbones, and compare
// one broadcast over each.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clustercast/internal/core"
)

func main() {
	// A 100-node network in a 100×100 area with average degree 18 — the
	// paper's dense scenario.
	nw, err := core.NewRandomNetwork(core.NetworkSpec{N: 100, AvgDegree: 18, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", nw.Summarize())
	fmt.Printf("clusterheads: %v\n\n", nw.Heads())

	// The static backbone (cluster-based SI-CDS) is built once and serves
	// any broadcast: every backbone node forwards.
	static := nw.StaticBackbone(core.Hop25)
	fmt.Printf("static backbone (2.5-hop): %d nodes (%d heads + %d gateways)\n",
		static.Size(), len(static.Heads), static.GatewayCount())

	const source = 0
	sres := nw.BroadcastStatic(static, source)
	fmt.Printf("  broadcast from %d: %d forwards, %.0f%% delivery, latency %d\n",
		source, sres.ForwardCount(), 100*sres.DeliveryRatio(nw.N()), sres.Latency)

	// The dynamic backbone (cluster-based SD-CDS) selects gateways on
	// demand while the packet travels, pruning redundant branches.
	dres := nw.DynamicBroadcast(core.Hop25, source)
	fmt.Printf("dynamic backbone (2.5-hop):\n  broadcast from %d: %d forwards, %.0f%% delivery, latency %d\n",
		source, dres.ForwardCount(), 100*dres.DeliveryRatio(nw.N()), dres.Latency)

	// Blind flooding, for scale: every node forwards.
	fres := nw.Flood(source)
	fmt.Printf("flooding:\n  broadcast from %d: %d forwards\n", source, fres.ForwardCount())

	saved := fres.ForwardCount() - dres.ForwardCount()
	fmt.Printf("\nthe dynamic backbone saved %d of %d transmissions (%.0f%%)\n",
		saved, fres.ForwardCount(), 100*float64(saved)/float64(fres.ForwardCount()))
}
