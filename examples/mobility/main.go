// Mobility: why the paper argues for the on-demand dynamic backbone. Nodes
// move under the random-waypoint model; at every step we re-derive the
// clustering and static backbone and measure the churn a proactive SI-CDS
// would have to repair — then show that the dynamic backbone, rebuilt
// per-broadcast for free, keeps delivering.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"

	"clustercast/internal/backbone"
	"clustercast/internal/cluster"
	"clustercast/internal/core"
	"clustercast/internal/coverage"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func main() {
	const (
		n     = 60
		d     = 10.0
		steps = 30
		speed = 5.0 // area units per step (the area is 100×100)
	)
	nw, err := core.NewRandomNetwork(core.NetworkSpec{N: n, AvgDegree: d, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	bounds := nw.Topology.Bounds
	radius := nw.Topology.Radius
	mob := topology.NewRandomWaypoint(nw.Topology.Positions, bounds, speed/2, speed, 1,
		rng.NewLabeled(11, "waypoint"))
	srcStream := rng.NewLabeled(11, "sources")

	prevCl := nw.Clustering
	prevLCC := nw.Clustering
	prevBB := nw.StaticBackbone(core.Hop25)

	fmt.Printf("%5s %9s %9s %10s %10s %9s %9s\n",
		"step", "headΔ", "lccΔ", "backboneΔ", "backbone", "dynFwd", "delivery")
	totalHeadChanges, totalBBChanges, totalLCC := 0, 0, 0
	for step := 1; step <= steps; step++ {
		cur := topology.FromPositions(mob.Step(1), bounds, radius)
		cl := cluster.LowestID(cur.G)
		lcc, _ := cluster.Maintain(cur.G, prevLCC)
		bb := backbone.BuildStatic(cur.G, cl, coverage.Hop25)

		headChanges, lccChanges, bbChanges := 0, 0, 0
		for v := 0; v < n; v++ {
			if cl.Head[v] != prevCl.Head[v] {
				headChanges++
			}
			if lcc.Head[v] != prevLCC.Head[v] {
				lccChanges++
			}
			if bb.Nodes[v] != prevBB.Nodes[v] {
				bbChanges++
			}
		}
		totalHeadChanges += headChanges
		totalBBChanges += bbChanges
		totalLCC += lccChanges
		prevLCC = lcc

		// A broadcast right now, over the *current* dynamic backbone: no
		// maintenance was needed — gateways are picked on the fly.
		cnw := core.FromTopology(cur)
		res := cnw.DynamicBroadcast(core.Hop25, srcStream.Intn(n))
		fmt.Printf("%5d %9d %9d %10d %10d %9d %8.1f%%\n",
			step, headChanges, lccChanges, bbChanges, bb.Size(),
			res.ForwardCount(), 100*res.DeliveryRatio(n))

		prevCl, prevBB = cl, bb
	}
	fmt.Printf("\nover %d steps the proactive static backbone changed %d memberships "+
		"(%.1f per step) and %d cluster affiliations (%.1f per step; LCC incremental "+
		"repair reduces that to %d) —\nmaintenance traffic the on-demand dynamic "+
		"backbone never pays.\n",
		steps, totalBBChanges, float64(totalBBChanges)/steps,
		totalHeadChanges, float64(totalHeadChanges)/steps, totalLCC)
	fmt.Println("(delivery below 100% can occur while motion momentarily disconnects the graph.)")
}
