// Distributed: run the paper's wire protocol (HELLO → clustering →
// CH_HOP1/CH_HOP2 → GATEWAY) on a random network, print the per-type
// message counts that back the O(n) message-optimality claim, and verify
// the distributed outcome against the centralized construction.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"reflect"

	"clustercast/internal/core"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
	"clustercast/internal/sim"
)

func main() {
	for _, n := range []int{20, 40, 80, 160} {
		nw, err := core.NewRandomNetwork(core.NetworkSpec{N: n, AvgDegree: 6, Seed: uint64(n)})
		if err != nil {
			log.Fatal(err)
		}

		// Run the actual message protocol...
		out := sim.Run(nw.Graph(), coverage.Hop25)

		// ...and check it agrees with the centralized constructions.
		centralized := nw.StaticBackbone(core.Hop25)
		if !reflect.DeepEqual(out.Backbone, centralized.Nodes) {
			log.Fatalf("n=%d: distributed backbone %v != centralized %v",
				n, graph.SortedMembers(out.Backbone), graph.SortedMembers(centralized.Nodes))
		}
		if !reflect.DeepEqual(out.Heads, nw.Heads()) {
			log.Fatalf("n=%d: clusterheads disagree", n)
		}

		fmt.Printf("n=%3d  backbone=%2d  msgs/node=%.2f  %s\n",
			n, len(out.Backbone),
			float64(out.Counters.Total())/float64(n), out.Counters.String())
	}
	fmt.Println("\nmessages per node stay constant as n grows: the construction is message-optimal (O(n)).")
}
