package topology

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

func TestGenerateBasic(t *testing.T) {
	r := rng.New(1)
	nw, err := Generate(Config{N: 50, Bounds: geom.Square(100), AvgDegree: 6, RequireConnected: true}, r)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 50 || nw.G.N() != 50 {
		t.Fatalf("node count %d/%d", nw.N(), nw.G.N())
	}
	if !nw.G.Connected() {
		t.Fatal("RequireConnected violated")
	}
	for _, p := range nw.Positions {
		if !nw.Bounds.Contains(p) {
			t.Fatalf("node outside bounds: %v", p)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := Generate(Config{N: 0, Bounds: geom.Square(100), AvgDegree: 6}, r); err == nil {
		t.Fatal("N=0 must fail")
	}
	if _, err := Generate(Config{N: 10, AvgDegree: 6}, r); err == nil {
		t.Fatal("zero-area bounds must fail")
	}
	if _, err := Generate(Config{N: 10, Bounds: geom.Square(100)}, r); err == nil {
		t.Fatal("missing radius and degree must fail")
	}
}

func TestGenerateDisconnectedBudget(t *testing.T) {
	r := rng.New(1)
	// Tiny radius in a big area: essentially never connected.
	_, err := Generate(Config{
		N: 30, Bounds: geom.Square(100), Radius: 0.5,
		RequireConnected: true, MaxAttempts: 5,
	}, r)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
	// The wrapped error names the infeasible configuration so a failed CLI
	// run explains itself.
	for _, part := range []string{"n=30", "attempts"} {
		if !strings.Contains(err.Error(), part) {
			t.Fatalf("error %q does not mention %q", err, part)
		}
	}
}

func TestDefaultMaxAttemptsBounded(t *testing.T) {
	if got := defaultMaxAttempts(100); got != 10000 {
		t.Fatalf("paper-scale default changed: %d", got)
	}
	if got := defaultMaxAttempts(2_000_000); got < 10 || got > 100 {
		t.Fatalf("large-n default not scaled down: %d", got)
	}
	// The total placement budget stays bounded across sizes (up to the
	// 10-attempt floor that keeps rejection sampling meaningful).
	for _, n := range []int{10_000, 100_000, 10_000_000} {
		work := int64(defaultMaxAttempts(n)) * int64(n)
		ceiling := int64(25_000_000)
		if floor := int64(10) * int64(n); floor > ceiling {
			ceiling = floor
		}
		if work > ceiling {
			t.Fatalf("n=%d: default budget %d placements is unbounded", n, work)
		}
	}
}

func TestGenerateEdgesMatchRadius(t *testing.T) {
	r := rng.New(7)
	nw, err := Generate(Config{N: 80, Bounds: geom.Square(100), AvgDegree: 8}, r)
	if err != nil {
		t.Fatal(err)
	}
	// Unit-disk property: edge iff distance <= radius.
	for u := 0; u < nw.N(); u++ {
		for v := u + 1; v < nw.N(); v++ {
			d := nw.Positions[u].Dist(nw.Positions[v])
			if (d <= nw.Radius) != nw.G.HasEdge(u, v) {
				t.Fatalf("UDG property violated for %d,%d: dist=%g r=%g edge=%v",
					u, v, d, nw.Radius, nw.G.HasEdge(u, v))
			}
		}
	}
}

func TestAverageDegreeNearTarget(t *testing.T) {
	// Over many samples the empirical average degree should approach the
	// target (border effects pull it below the Poisson value; allow slack).
	r := rng.New(11)
	const target = 18.0
	sum := 0.0
	const samples = 30
	for i := 0; i < samples; i++ {
		nw, err := Generate(Config{N: 100, Bounds: geom.Square(100), AvgDegree: target}, r)
		if err != nil {
			t.Fatal(err)
		}
		sum += nw.G.AvgDegree()
	}
	avg := sum / samples
	if avg < target*0.7 || avg > target*1.1 {
		t.Fatalf("empirical avg degree %.2f too far from target %.1f", avg, target)
	}
}

func TestFromPositions(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 3, Y: 0}}
	nw := FromPositions(pts, geom.Square(10), 1.5)
	if !nw.G.HasEdge(0, 1) {
		t.Fatal("edge {0,1} expected at distance 1")
	}
	if nw.G.HasEdge(0, 2) {
		t.Fatal("no edge {0,2} at distance 3")
	}
	if nw.G.HasEdge(1, 2) {
		t.Fatal("no edge {1,2} at distance 2")
	}
	// Input slice must be copied.
	pts[0] = geom.Point{X: 99, Y: 99}
	if nw.Positions[0].X == 99 {
		t.Fatal("FromPositions must copy its input")
	}
}

func TestLineTopology(t *testing.T) {
	nw := LineTopology(5, 1.0, 1.2)
	// Chain: i connected to i±1 only.
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			want := v-u == 1
			if nw.G.HasEdge(u, v) != want {
				t.Fatalf("line edge {%d,%d} = %v want %v", u, v, nw.G.HasEdge(u, v), want)
			}
		}
	}
	if !nw.G.Connected() {
		t.Fatal("line must be connected")
	}
}

func TestGridPlacement(t *testing.T) {
	r := rng.New(3)
	nw := GridPlacement(25, geom.Square(100), 25, 0, r)
	if nw.N() != 25 {
		t.Fatalf("N = %d", nw.N())
	}
	if !nw.G.Connected() {
		t.Fatal("5×5 lattice with range larger than spacing must be connected")
	}
	for _, p := range nw.Positions {
		if !nw.Bounds.Contains(p) {
			t.Fatalf("grid node outside bounds: %v", p)
		}
	}
}

func TestClusteredPlacement(t *testing.T) {
	r := rng.New(5)
	nw := ClusteredPlacement(60, 3, geom.Square(100), 20, 8, r)
	if nw.N() != 60 {
		t.Fatalf("N = %d", nw.N())
	}
	for _, p := range nw.Positions {
		if !nw.Bounds.Contains(p) {
			t.Fatalf("node outside bounds: %v", p)
		}
	}
	// Hotspot scatter should produce a above-uniform max degree most times;
	// just sanity check the graph is non-trivial.
	if nw.G.M() == 0 {
		t.Fatal("clustered placement produced no edges")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a, err := Generate(Config{N: 40, Bounds: geom.Square(100), AvgDegree: 6}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{N: 40, Bounds: geom.Square(100), AvgDegree: 6}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatal("same seed must give same placement")
		}
	}
	if a.G.M() != b.G.M() {
		t.Fatal("same seed must give same graph")
	}
}

func TestQuickGeneratedGraphIsUDG(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := Generate(Config{N: 25, Bounds: geom.Square(50), AvgDegree: 5}, r)
		if err != nil {
			return false
		}
		for u := 0; u < nw.N(); u++ {
			for v := u + 1; v < nw.N(); v++ {
				d := nw.Positions[u].Dist(nw.Positions[v])
				if (d <= nw.Radius) != nw.G.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWaypointStaysInBounds(t *testing.T) {
	r := rng.New(13)
	bounds := geom.Square(100)
	start := make([]geom.Point, 20)
	for i := range start {
		start[i] = geom.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
	}
	m := NewRandomWaypoint(start, bounds, 1, 10, 2, r)
	for step := 0; step < 200; step++ {
		for _, p := range m.Step(1.0) {
			if !bounds.Contains(p) {
				t.Fatalf("node escaped bounds: %v", p)
			}
		}
	}
}

func TestRandomWaypointMoves(t *testing.T) {
	r := rng.New(17)
	start := []geom.Point{{X: 50, Y: 50}}
	m := NewRandomWaypoint(start, geom.Square(100), 5, 5, 0, r)
	before := m.Positions()[0]
	m.Step(1)
	after := m.Positions()[0]
	if before.Dist(after) == 0 {
		t.Fatal("node with positive speed and no pause must move")
	}
	// Speed bound: at most speed*dt (plus a new leg after arrival, still
	// bounded by speed*dt in total distance along the trajectory; the
	// displacement can only be shorter).
	if before.Dist(after) > 5.0+1e-9 {
		t.Fatalf("node moved %g > speed*dt", before.Dist(after))
	}
}

func TestRandomWaypointPause(t *testing.T) {
	r := rng.New(19)
	// Start exactly at one corner with huge speed: the node arrives
	// immediately and then must pause.
	start := []geom.Point{{X: 0, Y: 0}}
	m := NewRandomWaypoint(start, geom.Square(10), 1000, 1000, 1000, r)
	m.Step(1) // arrives somewhere and enters pause
	p1 := m.Positions()[0]
	m.Step(1) // still paused (pause = 1000)
	p2 := m.Positions()[0]
	if p1.Dist(p2) != 0 {
		t.Fatalf("paused node moved from %v to %v", p1, p2)
	}
}

func TestRandomWalkStaysInBounds(t *testing.T) {
	r := rng.New(23)
	bounds := geom.Square(50)
	start := make([]geom.Point, 10)
	for i := range start {
		start[i] = bounds.Center()
	}
	m := NewRandomWalk(start, bounds, 5, r)
	for step := 0; step < 500; step++ {
		for _, p := range m.Step(1.0) {
			if !bounds.Contains(p) {
				t.Fatalf("walk escaped bounds: %v", p)
			}
		}
	}
}

func TestRandomWalkDiffuses(t *testing.T) {
	r := rng.New(29)
	bounds := geom.Square(1000)
	start := []geom.Point{bounds.Center()}
	m := NewRandomWalk(start, bounds, 1, r)
	for i := 0; i < 100; i++ {
		m.Step(1)
	}
	d := m.Positions()[0].Dist(bounds.Center())
	if d == 0 {
		t.Fatal("random walk did not move")
	}
	// RMS displacement after 100 unit steps with σ=1 per axis ≈ √200 ≈ 14.
	if d > 200 {
		t.Fatalf("random walk displacement %g implausibly large", d)
	}
}

func TestReflect(t *testing.T) {
	b := geom.Square(10)
	cases := []struct{ in, want geom.Point }{
		{geom.Point{X: -2, Y: 5}, geom.Point{X: 2, Y: 5}},
		{geom.Point{X: 12, Y: 5}, geom.Point{X: 8, Y: 5}},
		{geom.Point{X: 5, Y: -3}, geom.Point{X: 5, Y: 3}},
		{geom.Point{X: 5, Y: 13}, geom.Point{X: 5, Y: 7}},
		{geom.Point{X: 4, Y: 4}, geom.Point{X: 4, Y: 4}},
	}
	for _, c := range cases {
		if got := reflect(c.in, b); got != c.want {
			t.Fatalf("reflect(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRangeForDegreeSanity(t *testing.T) {
	// d=6, n=100, A=10000 → r ≈ 13.9 (well-known MANET setup number).
	r := geom.RangeForDegree(100, 10000, 6)
	if math.Abs(r-13.9) > 0.5 {
		t.Fatalf("range for d=6,n=100 = %.2f, expected ≈13.9", r)
	}
}

func BenchmarkGenerate100(b *testing.B) {
	r := rng.New(1)
	c := Config{N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(c, r); err != nil {
			b.Fatal(err)
		}
	}
}

// bruteForceUDG is the quadratic reference construction FromPositions used
// before the spatial-grid path.
func bruteForceUDG(positions []geom.Point, radius float64) *graph.Graph {
	g := graph.New(len(positions))
	for u := 0; u < len(positions); u++ {
		for v := u + 1; v < len(positions); v++ {
			if positions[u].Dist(positions[v]) <= radius {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// TestFromPositionsMatchesBruteForce pins the grid-built unit disk graph to
// the O(n²) pairwise construction on random inputs, including positions on
// the boundary and outside the nominal bounds.
func TestFromPositionsMatchesBruteForce(t *testing.T) {
	r := rng.New(99)
	bounds := geom.Square(100)
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(120)
		radius := 5 + r.Range(0, 30)
		positions := make([]geom.Point, n)
		for i := range positions {
			positions[i] = geom.Point{
				X: r.Range(bounds.MinX, bounds.MaxX),
				Y: r.Range(bounds.MinY, bounds.MaxY),
			}
		}
		// A few trials stress boundary and out-of-bounds placements.
		if trial%3 == 0 {
			positions[0] = geom.Point{X: bounds.MaxX, Y: bounds.MaxY}
			positions[n-1] = geom.Point{X: bounds.MaxX + 17, Y: bounds.MinY - 4}
		}
		got := FromPositions(positions, bounds, radius).G
		want := bruteForceUDG(positions, radius)
		if got.N() != want.N() || got.M() != want.M() {
			t.Fatalf("trial %d (n=%d r=%.2f): got %d nodes %d edges, want %d/%d",
				trial, n, radius, got.N(), got.M(), want.N(), want.M())
		}
		for v := 0; v < n; v++ {
			gn, wn := got.Neighbors(v), want.Neighbors(v)
			if len(gn) != len(wn) {
				t.Fatalf("trial %d: degree of %d differs: %v vs %v", trial, v, gn, wn)
			}
			for i := range gn {
				if gn[i] != wn[i] {
					t.Fatalf("trial %d: adjacency of %d differs: %v vs %v", trial, v, gn, wn)
				}
			}
		}
	}
}
