package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"clustercast/internal/geom"
)

// snapshot is the JSON wire form of a Network. Edges are derivable from
// positions and radius, so only the generators' inputs are stored; Load
// rebuilds the unit disk graph, which also validates the invariant that
// the graph is a pure function of geometry.
type snapshot struct {
	Version   int          `json:"version"`
	Bounds    geom.Rect    `json:"bounds"`
	Radius    float64      `json:"radius"`
	Positions []geom.Point `json:"positions"`
}

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// Save writes the network to w as JSON.
func (nw *Network) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snapshot{
		Version:   snapshotVersion,
		Bounds:    nw.Bounds,
		Radius:    nw.Radius,
		Positions: nw.Positions,
	})
}

// Load reads a network saved by Save and rebuilds its unit disk graph.
func Load(r io.Reader) (*Network, error) {
	var s snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("topology: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("topology: unsupported snapshot version %d", s.Version)
	}
	if s.Radius <= 0 {
		return nil, fmt.Errorf("topology: snapshot radius %g must be positive", s.Radius)
	}
	if s.Bounds.Area() <= 0 {
		return nil, fmt.Errorf("topology: snapshot bounds have non-positive area")
	}
	for i, p := range s.Positions {
		if !s.Bounds.Contains(p) {
			return nil, fmt.Errorf("topology: snapshot node %d at %v outside bounds", i, p)
		}
	}
	return FromPositions(s.Positions, s.Bounds, s.Radius), nil
}
