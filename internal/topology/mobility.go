package topology

import (
	"clustercast/internal/geom"
	"clustercast/internal/rng"
)

// MobilityModel advances node positions by one time step and reports the
// new positions. Implementations own their node state.
type MobilityModel interface {
	// Step advances the model by dt time units and returns the positions
	// after the step. The returned slice is owned by the model.
	Step(dt float64) []geom.Point
	// Positions returns the current positions without advancing.
	Positions() []geom.Point
}

// RandomWaypoint implements the classic random waypoint mobility model:
// each node picks a uniform destination in the area and a uniform speed in
// [MinSpeed, MaxSpeed], travels there in a straight line, pauses for
// PauseTime, then repeats.
type RandomWaypoint struct {
	Bounds    geom.Rect
	MinSpeed  float64
	MaxSpeed  float64
	PauseTime float64

	rng       *rng.Stream
	positions []geom.Point
	targets   []geom.Point
	speeds    []float64
	pauses    []float64 // remaining pause time per node
}

// NewRandomWaypoint creates the model with the given starting positions.
func NewRandomWaypoint(start []geom.Point, bounds geom.Rect, minSpeed, maxSpeed, pause float64, r *rng.Stream) *RandomWaypoint {
	if minSpeed <= 0 {
		minSpeed = 0.01 // avoid the well-known speed-decay degeneracy at 0
	}
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	m := &RandomWaypoint{
		Bounds:    bounds,
		MinSpeed:  minSpeed,
		MaxSpeed:  maxSpeed,
		PauseTime: pause,
		rng:       r,
		positions: append([]geom.Point(nil), start...),
		targets:   make([]geom.Point, len(start)),
		speeds:    make([]float64, len(start)),
		pauses:    make([]float64, len(start)),
	}
	for i := range m.positions {
		m.retarget(i)
	}
	return m
}

func (m *RandomWaypoint) retarget(i int) {
	m.targets[i] = geom.Point{
		X: m.rng.Range(m.Bounds.MinX, m.Bounds.MaxX),
		Y: m.rng.Range(m.Bounds.MinY, m.Bounds.MaxY),
	}
	m.speeds[i] = m.rng.Range(m.MinSpeed, m.MaxSpeed)
}

// Positions implements MobilityModel.
func (m *RandomWaypoint) Positions() []geom.Point { return m.positions }

// Step implements MobilityModel.
func (m *RandomWaypoint) Step(dt float64) []geom.Point {
	for i := range m.positions {
		remaining := dt
		for remaining > 0 {
			if m.pauses[i] > 0 {
				if m.pauses[i] >= remaining {
					m.pauses[i] -= remaining
					remaining = 0
					break
				}
				remaining -= m.pauses[i]
				m.pauses[i] = 0
			}
			p := m.positions[i]
			tgt := m.targets[i]
			distLeft := p.Dist(tgt)
			travel := m.speeds[i] * remaining
			if travel < distLeft {
				t := travel / distLeft
				m.positions[i] = p.Lerp(tgt, t)
				remaining = 0
			} else {
				m.positions[i] = tgt
				if m.speeds[i] > 0 {
					remaining -= distLeft / m.speeds[i]
				} else {
					remaining = 0
				}
				m.pauses[i] = m.PauseTime
				m.retarget(i)
			}
		}
	}
	return m.positions
}

// RandomWalk implements a simple random-walk (Brownian-like) model: each
// step, every node moves a normally distributed displacement and reflects
// off the area boundary.
type RandomWalk struct {
	Bounds   geom.Rect
	StepSize float64 // standard deviation of per-unit-time displacement

	rng       *rng.Stream
	positions []geom.Point
}

// NewRandomWalk creates the model with the given starting positions.
func NewRandomWalk(start []geom.Point, bounds geom.Rect, stepSize float64, r *rng.Stream) *RandomWalk {
	return &RandomWalk{
		Bounds:    bounds,
		StepSize:  stepSize,
		rng:       r,
		positions: append([]geom.Point(nil), start...),
	}
}

// Positions implements MobilityModel.
func (m *RandomWalk) Positions() []geom.Point { return m.positions }

// Step implements MobilityModel.
func (m *RandomWalk) Step(dt float64) []geom.Point {
	for i, p := range m.positions {
		q := geom.Point{
			X: p.X + m.rng.NormFloat64()*m.StepSize*dt,
			Y: p.Y + m.rng.NormFloat64()*m.StepSize*dt,
		}
		m.positions[i] = reflect(q, m.Bounds)
	}
	return m.positions
}

// reflect mirrors a point back into bounds (one bounce is enough for the
// step sizes used here; clamp handles pathological overshoot).
func reflect(p geom.Point, b geom.Rect) geom.Point {
	if p.X < b.MinX {
		p.X = 2*b.MinX - p.X
	}
	if p.X > b.MaxX {
		p.X = 2*b.MaxX - p.X
	}
	if p.Y < b.MinY {
		p.Y = 2*b.MinY - p.Y
	}
	if p.Y > b.MaxY {
		p.Y = 2*b.MaxY - p.Y
	}
	return b.Clamp(p)
}
