package topology

import (
	"math"

	"clustercast/internal/geom"
	"clustercast/internal/rng"
)

// MobilityModel advances node positions by one time step and reports the
// new positions. Implementations own their node state.
type MobilityModel interface {
	// Step advances the model by dt time units and returns the positions
	// after the step. The returned slice is owned by the model.
	Step(dt float64) []geom.Point
	// Positions returns the current positions without advancing.
	Positions() []geom.Point
}

// RandomWaypoint implements the classic random waypoint mobility model:
// each node picks a uniform destination in the area and a uniform speed in
// [MinSpeed, MaxSpeed], travels there in a straight line, pauses for
// PauseTime, then repeats.
type RandomWaypoint struct {
	Bounds    geom.Rect
	MinSpeed  float64
	MaxSpeed  float64
	PauseTime float64

	rng       *rng.Stream
	positions []geom.Point
	targets   []geom.Point
	speeds    []float64
	pauses    []float64 // remaining pause time per node
}

// NewRandomWaypoint creates the model with the given starting positions.
func NewRandomWaypoint(start []geom.Point, bounds geom.Rect, minSpeed, maxSpeed, pause float64, r *rng.Stream) *RandomWaypoint {
	if minSpeed <= 0 {
		minSpeed = 0.01 // avoid the well-known speed-decay degeneracy at 0
	}
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	m := &RandomWaypoint{
		Bounds:    bounds,
		MinSpeed:  minSpeed,
		MaxSpeed:  maxSpeed,
		PauseTime: pause,
		rng:       r,
		positions: append([]geom.Point(nil), start...),
		targets:   make([]geom.Point, len(start)),
		speeds:    make([]float64, len(start)),
		pauses:    make([]float64, len(start)),
	}
	for i := range m.positions {
		m.retarget(i)
	}
	return m
}

func (m *RandomWaypoint) retarget(i int) {
	m.targets[i] = geom.Point{
		X: m.rng.Range(m.Bounds.MinX, m.Bounds.MaxX),
		Y: m.rng.Range(m.Bounds.MinY, m.Bounds.MaxY),
	}
	m.speeds[i] = m.rng.Range(m.MinSpeed, m.MaxSpeed)
}

// Positions implements MobilityModel.
func (m *RandomWaypoint) Positions() []geom.Point { return m.positions }

// Step implements MobilityModel.
func (m *RandomWaypoint) Step(dt float64) []geom.Point {
	for i := range m.positions {
		remaining := dt
		for remaining > 0 {
			if m.pauses[i] > 0 {
				if m.pauses[i] >= remaining {
					m.pauses[i] -= remaining
					remaining = 0
					break
				}
				remaining -= m.pauses[i]
				m.pauses[i] = 0
			}
			p := m.positions[i]
			tgt := m.targets[i]
			distLeft := p.Dist(tgt)
			travel := m.speeds[i] * remaining
			if travel < distLeft {
				t := travel / distLeft
				m.positions[i] = p.Lerp(tgt, t)
				remaining = 0
			} else {
				m.positions[i] = tgt
				if m.speeds[i] > 0 {
					remaining -= distLeft / m.speeds[i]
				} else {
					remaining = 0
				}
				m.pauses[i] = m.PauseTime
				m.retarget(i)
				if remaining > 0 && m.pauses[i] <= 0 && distLeft == 0 &&
					m.positions[i] == m.targets[i] {
					// Degenerate configuration: the node already sits on its
					// target, there is no pause to consume time, and the fresh
					// target is the same point (zero-area bounds). No iteration
					// can make progress, so the node is pinned for this step.
					break
				}
			}
		}
	}
	return m.positions
}

// RandomWalk implements a simple random-walk (Brownian-like) model: each
// step, every node moves a normally distributed displacement and reflects
// off the area boundary.
type RandomWalk struct {
	Bounds   geom.Rect
	StepSize float64 // standard deviation of per-unit-time displacement

	rng       *rng.Stream
	positions []geom.Point
}

// NewRandomWalk creates the model with the given starting positions.
func NewRandomWalk(start []geom.Point, bounds geom.Rect, stepSize float64, r *rng.Stream) *RandomWalk {
	return &RandomWalk{
		Bounds:    bounds,
		StepSize:  stepSize,
		rng:       r,
		positions: append([]geom.Point(nil), start...),
	}
}

// Positions implements MobilityModel.
func (m *RandomWalk) Positions() []geom.Point { return m.positions }

// Step implements MobilityModel.
func (m *RandomWalk) Step(dt float64) []geom.Point {
	for i, p := range m.positions {
		q := geom.Point{
			X: p.X + m.rng.NormFloat64()*m.StepSize*dt,
			Y: p.Y + m.rng.NormFloat64()*m.StepSize*dt,
		}
		m.positions[i] = reflect(q, m.Bounds)
	}
	return m.positions
}

// reflect mirrors a point back into bounds, bouncing off the walls as many
// times as the overshoot requires. A single bounce followed by clamping —
// the previous implementation — silently pins every step longer than the
// area width onto the boundary, piling probability mass on the walls and
// distorting the walk's stationary distribution once StepSize·dt approaches
// the area size.
func reflect(p geom.Point, b geom.Rect) geom.Point {
	p.X = reflect1(p.X, b.MinX, b.MaxX)
	p.Y = reflect1(p.Y, b.MinY, b.MaxY)
	return p
}

// reflect1 folds x into [lo, hi] under repeated mirror reflection. The
// trajectory of a particle bouncing between two walls is a triangle wave of
// period 2·(hi−lo), so the fold is closed-form rather than iterative.
func reflect1(x, lo, hi float64) float64 {
	w := hi - lo
	if w <= 0 {
		return lo // degenerate axis: everything collapses onto the wall
	}
	d := math.Mod(x-lo, 2*w)
	if d < 0 {
		d += 2 * w
	}
	if d > w {
		d = 2*w - d
	}
	return lo + d
}
