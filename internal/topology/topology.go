// Package topology generates the random unit-disk-graph networks used in
// the paper's evaluation and provides mobility models for the maintenance
// ablation.
//
// The paper's setup: nodes are placed uniformly at random in a confined
// 100×100 working space; all nodes share one transmission range r; two nodes
// are neighbors iff their distance is below r; networks are generated for a
// *fixed average node degree* (d = 6 and d = 18) by solving the Poisson
// approximation d = (n−1)·πr²/A for r; disconnected samples are discarded.
package topology

import (
	"errors"
	"fmt"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// Network is an immutable snapshot of a MANET: node positions, the common
// transmission range, and the induced unit disk graph.
type Network struct {
	Positions []geom.Point
	Radius    float64
	Bounds    geom.Rect
	G         *graph.Graph
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.Positions) }

// Config describes a random network scenario.
type Config struct {
	N         int       // number of nodes
	Bounds    geom.Rect // confined working space (paper: Square(100))
	AvgDegree float64   // target average degree; used when Radius == 0
	Radius    float64   // explicit transmission range; overrides AvgDegree if > 0

	// RequireConnected discards disconnected samples, as in the paper.
	RequireConnected bool
	// MaxAttempts bounds the rejection sampling (default 10000).
	MaxAttempts int
}

// ErrDisconnected is returned when no connected sample was found within
// MaxAttempts.
var ErrDisconnected = errors.New("topology: could not generate a connected network within the attempt budget")

// radius resolves the transmission range for the config.
func (c Config) radius() float64 {
	if c.Radius > 0 {
		return c.Radius
	}
	return geom.RangeForDegree(c.N, c.Bounds.Area(), c.AvgDegree)
}

// validate checks config sanity.
func (c Config) validate() error {
	if c.N <= 0 {
		return fmt.Errorf("topology: invalid node count %d", c.N)
	}
	if c.Bounds.Area() <= 0 {
		return errors.New("topology: bounds with non-positive area")
	}
	if c.Radius <= 0 && c.AvgDegree <= 0 {
		return errors.New("topology: need Radius or AvgDegree")
	}
	return nil
}

// Generate draws one random network according to the config. With
// RequireConnected it resamples until connected (up to MaxAttempts). Each
// call uses a fresh workspace, so the result is independently allocated;
// hot replicate loops use GenerateWith to reuse one workspace instead.
func Generate(c Config, r *rng.Stream) (*Network, error) {
	return GenerateWith(c, NewWorkspace(), r)
}

// buildUnitDiskGraph builds the unit disk graph over the positions with a
// spatial hash grid: each node's full neighbor list comes straight from one
// range query into a shared flat buffer, which then becomes the backing
// array of the adjacency lists (one sort per list) — O(n·deg) time and a
// constant number of allocations. The throwaway workspace keeps the result
// independently allocated (see Workspace.build for the implementation).
func buildUnitDiskGraph(positions []geom.Point, bounds geom.Rect, radius float64) *graph.Graph {
	return (&Workspace{}).build(positions, bounds, radius)
}

// FromPositions builds the unit disk graph induced by explicit positions
// and range. Used by mobility models and hand-crafted scenarios; it runs
// through the same spatial-grid path as random placement, so stepping a
// mobility model costs O(n·deg) per step instead of O(n²).
func FromPositions(positions []geom.Point, bounds geom.Rect, radius float64) *Network {
	// Positions outside the nominal bounds (hand-crafted scenarios) would
	// defeat the grid's cell clamping; grow the indexing rectangle to cover
	// them. The Network keeps the caller's bounds.
	gridBounds := bounds
	for _, p := range positions {
		if p.X < gridBounds.MinX {
			gridBounds.MinX = p.X
		}
		if p.X > gridBounds.MaxX {
			gridBounds.MaxX = p.X
		}
		if p.Y < gridBounds.MinY {
			gridBounds.MinY = p.Y
		}
		if p.Y > gridBounds.MaxY {
			gridBounds.MaxY = p.Y
		}
	}
	return &Network{
		Positions: append([]geom.Point(nil), positions...),
		Radius:    radius,
		Bounds:    bounds,
		G:         buildUnitDiskGraph(positions, gridBounds, radius),
	}
}

// GridPlacement places nodes on a jittered √n×√n lattice — a deterministic,
// well-spread topology useful for worst-case-ish tests (long chains of
// clusters).
func GridPlacement(n int, bounds geom.Rect, radius, jitter float64, r *rng.Stream) *Network {
	cols := 1
	for cols*cols < n {
		cols++
	}
	dx := bounds.Width() / float64(cols)
	dy := bounds.Height() / float64(cols)
	positions := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		cx := bounds.MinX + (float64(i%cols)+0.5)*dx
		cy := bounds.MinY + (float64(i/cols)+0.5)*dy
		p := geom.Point{
			X: cx + r.Range(-jitter, jitter),
			Y: cy + r.Range(-jitter, jitter),
		}
		positions = append(positions, bounds.Clamp(p))
	}
	return FromPositions(positions, bounds, radius)
}

// ClusteredPlacement drops k hotspot centers and places nodes around them
// with normal scatter — models the non-uniform deployments the broadcast
// storm literature worries about.
func ClusteredPlacement(n, k int, bounds geom.Rect, radius, spread float64, r *rng.Stream) *Network {
	if k <= 0 {
		k = 1
	}
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{
			X: r.Range(bounds.MinX, bounds.MaxX),
			Y: r.Range(bounds.MinY, bounds.MaxY),
		}
	}
	positions := make([]geom.Point, n)
	for i := range positions {
		c := centers[r.Intn(k)]
		p := geom.Point{
			X: c.X + r.NormFloat64()*spread,
			Y: c.Y + r.NormFloat64()*spread,
		}
		positions[i] = bounds.Clamp(p)
	}
	return FromPositions(positions, bounds, radius)
}

// LineTopology places n nodes on a horizontal line with the given spacing —
// the paper's worst case for lowest-ID clustering ("all the nodes placed in
// a chain with monotonous IDs").
func LineTopology(n int, spacing, radius float64) *Network {
	positions := make([]geom.Point, n)
	for i := range positions {
		positions[i] = geom.Point{X: float64(i) * spacing, Y: 0}
	}
	bounds := geom.Rect{MinX: 0, MinY: -1, MaxX: float64(n) * spacing, MaxY: 1}
	return FromPositions(positions, bounds, radius)
}
