package topology

import (
	"bytes"
	"strings"
	"testing"

	"clustercast/internal/geom"
	"clustercast/internal/rng"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(7)
	nw, err := Generate(Config{N: 40, Bounds: geom.Square(100), AvgDegree: 8, RequireConnected: true}, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != nw.N() || loaded.Radius != nw.Radius || loaded.Bounds != nw.Bounds {
		t.Fatal("metadata did not round-trip")
	}
	for i := range nw.Positions {
		if nw.Positions[i] != loaded.Positions[i] {
			t.Fatalf("position %d changed: %v vs %v", i, nw.Positions[i], loaded.Positions[i])
		}
	}
	// The graph is rebuilt from geometry and must be identical.
	if loaded.G.M() != nw.G.M() {
		t.Fatalf("edge count changed: %d vs %d", loaded.G.M(), nw.G.M())
	}
	for _, e := range nw.G.Edges() {
		if !loaded.G.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":         "{not json",
		"bad version":     `{"version": 99, "bounds": {"MinX":0,"MinY":0,"MaxX":10,"MaxY":10}, "radius": 1, "positions": []}`,
		"zero radius":     `{"version": 1, "bounds": {"MinX":0,"MinY":0,"MaxX":10,"MaxY":10}, "radius": 0, "positions": []}`,
		"empty bounds":    `{"version": 1, "bounds": {"MinX":0,"MinY":0,"MaxX":0,"MaxY":0}, "radius": 1, "positions": []}`,
		"node off bounds": `{"version": 1, "bounds": {"MinX":0,"MinY":0,"MaxX":10,"MaxY":10}, "radius": 1, "positions": [{"X": 50, "Y": 5}]}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: Load should have failed", name)
		}
	}
}

func TestSaveIsStable(t *testing.T) {
	r := rng.New(9)
	nw, err := Generate(Config{N: 10, Bounds: geom.Square(50), AvgDegree: 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := nw.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := nw.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Save must be deterministic")
	}
}
