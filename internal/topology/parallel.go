package topology

import (
	"clustercast/internal/geom"
	"clustercast/internal/graph"
)

// buildBand is one worker's strip of the parallel unit-disk sweep: the
// packed edges whose sweep anchor lies in the band's grid rows.
type buildBand struct {
	edges []uint64
}

// buildParallel constructs the same unit disk graph as the sequential
// sweep in build, with the distance tests sharded into contiguous
// grid-row bands across workers goroutines. Each band runs PairsRows over
// its rows into a private edge arena (the sweep only reads the grid), so
// the bands' edge lists partition exactly the pair set of Pairs. Degrees,
// offsets and the cursor fill then run sequentially over the arenas in
// band order, and the per-node segment sort is sharded again over ID
// strips. The final CSR is bit-identical to the sequential build for any
// worker count: the assembly insertion-sorts every neighbor segment, so
// the graph depends only on the edge set, never on discovery order.
func (ws *Workspace) buildParallel(positions []geom.Point, radius float64, workers int) *graph.Graph {
	n := len(positions)
	rows := ws.grid.Rows()
	ws.sh.ResetRange(rows, workers)
	k := ws.sh.K()
	if cap(ws.bands) < k {
		ws.bands = make([]buildBand, k)
	}
	bands := ws.bands[:k]
	sh := &ws.sh
	sh.Each(workers, func(s int) {
		bd := &bands[s]
		lo, hi := sh.Range(s)
		edges := bd.edges[:0]
		ws.grid.PairsRows(radius, lo, hi, func(u, v int) {
			edges = append(edges, uint64(u)<<32|uint64(v))
		})
		bd.edges = edges
	})

	// Sequential stitch: count degrees over the band arenas, prefix-sum,
	// cursor-fill — the same count-then-fill assembly as build, fed by the
	// band edge lists instead of the sweep callback.
	deg := ws.deg
	for i := range deg {
		deg[i] = 0
	}
	for s := range bands {
		for _, e := range bands[s].edges {
			deg[e>>32]++
			deg[e&0xffffffff]++
		}
	}
	off := ws.off
	off[0] = 0
	for u := 0; u < n; u++ {
		off[u+1] = off[u] + deg[u]
	}
	if cap(ws.backing) < off[n] {
		ws.backing = make([]int, off[n])
	}
	backing := ws.backing[:off[n]]
	cur := deg // reuse as fill cursors
	copy(cur, off[:n])
	for s := range bands {
		for _, e := range bands[s].edges {
			u, v := int(e>>32), int(e&0xffffffff)
			backing[cur[u]] = v
			cur[u]++
			backing[cur[v]] = u
			cur[v]++
		}
	}

	// Per-node segment sort, sharded over contiguous ID strips (disjoint
	// backing ranges, so the strips share nothing).
	sh.ResetRange(n, workers)
	sh.Each(workers, func(s int) {
		lo, hi := sh.Range(s)
		for u := lo; u < hi; u++ {
			sortShortPos(backing[off[u]:off[u+1]])
		}
	})
	ws.g.RenewCSR(off, backing)
	return &ws.g
}
