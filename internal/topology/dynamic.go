package topology

import (
	"slices"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
)

// Dynamic maintains a unit disk graph incrementally under node mobility.
// Instead of rebuilding the whole graph after every mobility step —
// O(n·deg) even when only a handful of nodes moved — it re-tests only the
// grid cells touched by the moved nodes and repairs the affected adjacency
// lists in place, O(moved·deg) per step. When most nodes moved it falls
// back to a full re-sweep over the reused buffers, so a step never costs
// more than a rebuild.
//
// Positions must stay inside the bounds the updater was created with (the
// mobility models reflect or clamp at the boundary, so this always holds
// for them). The Network returned by Step/Network aliases the updater's
// internal state and is valid only until the next Step.
type Dynamic struct {
	positions []geom.Point
	radius    float64
	bounds    geom.Rect
	grid      geom.Grid
	nbrs      [][]int // per-node sorted neighbor lists, each owning its backing
	g         graph.Graph
	nw        Network

	epoch     uint32
	movedMark []uint32 // epoch-stamped: node moved this step
	affMark   []uint32 // epoch-stamped: node's list needs repair this step
	moved     []int
	affected  []int
	adds      []uint64 // packed (w<<32 | t): re-add t to w's list
}

// NewDynamic builds an incremental updater seeded from nw. The network is
// copied; the caller's nw is not retained.
func NewDynamic(nw *Network) *Dynamic {
	if nw.Radius <= 0 {
		panic("topology: Dynamic requires a positive radius")
	}
	n := nw.N()
	d := &Dynamic{
		positions: append([]geom.Point(nil), nw.Positions...),
		radius:    nw.Radius,
		bounds:    nw.Bounds,
		nbrs:      make([][]int, n),
		movedMark: make([]uint32, n),
		affMark:   make([]uint32, n),
	}
	d.grid.Reset(nw.Bounds, nw.Radius)
	for _, p := range d.positions {
		d.grid.Insert(p)
	}
	for u := 0; u < n; u++ {
		d.nbrs[u] = append([]int(nil), nw.G.Neighbors(u)...)
	}
	d.g.RenewSorted(d.nbrs)
	d.nw = Network{Positions: d.positions, Radius: d.radius, Bounds: d.bounds, G: &d.g}
	return d
}

// Network returns the current snapshot. It aliases internal state and is
// valid only until the next Step.
func (d *Dynamic) Network() *Network { return &d.nw }

// Step updates the graph to the new positions (one entry per node, same
// order as at construction) and returns the refreshed snapshot. Nodes are
// considered moved when their position differs bit-for-bit from the stored
// one, so mobility models that leave paused nodes untouched get the sparse
// path for free.
func (d *Dynamic) Step(pos []geom.Point) *Network {
	n := len(d.positions)
	if len(pos) != n {
		panic("topology: Dynamic.Step with mismatched position count")
	}
	moved := d.moved[:0]
	for i := 0; i < n; i++ {
		if pos[i] != d.positions[i] {
			moved = append(moved, i)
		}
	}
	d.moved = moved
	if 4*len(moved) >= n {
		d.rebuildAll(pos)
	} else if len(moved) > 0 {
		d.repair(pos)
	}
	return &d.nw
}

// rebuildAll recomputes every adjacency list after applying the new
// positions — the dense regime. The grid is maintained by Move (cheap),
// and each list is refilled into its own backing, so nothing allocates in
// steady state.
func (d *Dynamic) rebuildAll(pos []geom.Point) {
	for _, t := range d.moved {
		d.positions[t] = pos[t]
		d.grid.Move(t, pos[t])
	}
	for u := range d.nbrs {
		l := d.grid.Within(u, d.radius, d.nbrs[u][:0])
		sortShortPos(l)
		d.nbrs[u] = l
	}
	d.g.RenewSorted(d.nbrs)
}

// repair is the sparse regime: only the moved set T and the nodes adjacent
// to T before or after the step are touched.
//
//  1. The pre-move neighbors of T are collected as affected, then the moved
//     nodes are relocated in the grid.
//  2. Each moved node's list is recomputed from scratch via a grid range
//     query; every current neighbor w ∉ T is marked affected and a packed
//     (w, t) re-add pair is recorded. Because this records ALL current
//     T-neighbors of w — surviving and new alike — step 3+4 below is a
//     correct replacement of w's T-slice.
//  3. Every affected list is compacted: all members of T are removed.
//  4. The re-add pairs are sorted (grouping by w, ascending t within a
//     group) and merged back into the compacted sorted lists.
func (d *Dynamic) repair(pos []geom.Point) {
	d.epoch++
	ep := d.epoch
	for _, t := range d.moved {
		d.movedMark[t] = ep
	}
	affected := d.affected[:0]
	for _, t := range d.moved {
		for _, w := range d.nbrs[t] {
			if d.movedMark[w] != ep && d.affMark[w] != ep {
				d.affMark[w] = ep
				affected = append(affected, w)
			}
		}
	}
	for _, t := range d.moved {
		d.positions[t] = pos[t]
		d.grid.Move(t, pos[t])
	}
	adds := d.adds[:0]
	for _, t := range d.moved {
		l := d.grid.Within(t, d.radius, d.nbrs[t][:0])
		sortShortPos(l)
		d.nbrs[t] = l
		for _, w := range l {
			if d.movedMark[w] == ep {
				continue
			}
			if d.affMark[w] != ep {
				d.affMark[w] = ep
				affected = append(affected, w)
			}
			adds = append(adds, uint64(w)<<32|uint64(t))
		}
	}
	d.affected = affected
	for _, w := range affected {
		l := d.nbrs[w]
		o := 0
		for _, v := range l {
			if d.movedMark[v] != ep {
				l[o] = v
				o++
			}
		}
		d.nbrs[w] = l[:o]
	}
	slices.Sort(adds)
	d.adds = adds
	for i := 0; i < len(adds); {
		w := int(adds[i] >> 32)
		j := i + 1
		for j < len(adds) && int(adds[j]>>32) == w {
			j++
		}
		d.mergeInto(w, adds[i:j])
		i = j
	}
	d.g.RenewSorted(d.nbrs)
}

// mergeInto merges the t values of the packed (w, t) pairs — already
// ascending in t — into w's sorted list, backwards and in place.
func (d *Dynamic) mergeInto(w int, packed []uint64) {
	l := d.nbrs[w]
	oldLen := len(l)
	k := len(packed)
	l = slices.Grow(l, k)[:oldLen+k]
	i, j, o := oldLen-1, k-1, oldLen+k-1
	for j >= 0 {
		t := int(packed[j] & 0xffffffff)
		if i >= 0 && l[i] > t {
			l[o] = l[i]
			i--
		} else {
			l[o] = t
			j--
		}
		o--
	}
	d.nbrs[w] = l
}
