package topology

import (
	"testing"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// graphsEqual compares two graphs structurally: node count, edge count and
// every (sorted) adjacency list.
func graphsEqual(t *testing.T, step int, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("step %d: node count %d, want %d", step, got.N(), want.N())
	}
	if got.M() != want.M() {
		t.Fatalf("step %d: edge count %d, want %d", step, got.M(), want.M())
	}
	for u := 0; u < want.N(); u++ {
		g, w := got.Neighbors(u), want.Neighbors(u)
		if len(g) != len(w) {
			t.Fatalf("step %d: node %d degree %d, want %d", step, u, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("step %d: node %d neighbors %v, want %v", step, u, g, w)
			}
		}
	}
}

// newTestNetwork draws a connected 100-node degree-8 network.
func newTestNetwork(t *testing.T, seed uint64) *Network {
	t.Helper()
	nw, err := Generate(Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 8,
		RequireConnected: true,
	}, rng.New(seed))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return nw
}

// TestDynamicMatchesRebuildRandomWaypoint drives a random-waypoint model —
// fast enough that most nodes move every step, exercising the dense regime
// — and checks the incremental graph against a full rebuild at every step.
func TestDynamicMatchesRebuildRandomWaypoint(t *testing.T) {
	nw := newTestNetwork(t, 42)
	bounds := nw.Bounds
	mob := NewRandomWaypoint(nw.Positions, bounds, 1, 10, 0.2, rng.New(7))
	dyn := NewDynamic(nw)
	for step := 1; step <= 30; step++ {
		pos := mob.Step(1)
		got := dyn.Step(pos)
		want := FromPositions(pos, bounds, nw.Radius)
		graphsEqual(t, step, got.G, want.G)
		for i, p := range pos {
			if got.Positions[i] != p {
				t.Fatalf("step %d: position %d = %v, want %v", step, i, got.Positions[i], p)
			}
		}
	}
}

// TestDynamicMatchesRebuildSparse perturbs only a handful of nodes per
// step — the sparse repair regime — including steps with zero movement.
func TestDynamicMatchesRebuildSparse(t *testing.T) {
	nw := newTestNetwork(t, 2003)
	bounds := nw.Bounds
	r := rng.New(99)
	pos := append([]geom.Point(nil), nw.Positions...)
	dyn := NewDynamic(nw)
	for step := 1; step <= 60; step++ {
		movers := r.Intn(6) // 0..5 of 100 nodes: always below the dense threshold
		for k := 0; k < movers; k++ {
			i := r.Intn(len(pos))
			pos[i] = bounds.Clamp(geom.Point{
				X: pos[i].X + r.Range(-15, 15),
				Y: pos[i].Y + r.Range(-15, 15),
			})
		}
		got := dyn.Step(pos)
		want := FromPositions(pos, bounds, nw.Radius)
		graphsEqual(t, step, got.G, want.G)
	}
}

// TestDynamicMixedRegimes alternates big teleport steps (dense) with tiny
// perturbations (sparse), so each regime inherits state left by the other.
func TestDynamicMixedRegimes(t *testing.T) {
	nw := newTestNetwork(t, 11)
	bounds := nw.Bounds
	r := rng.New(5)
	pos := append([]geom.Point(nil), nw.Positions...)
	dyn := NewDynamic(nw)
	for step := 1; step <= 40; step++ {
		if step%4 == 0 {
			for i := range pos { // teleport everyone: dense
				pos[i] = geom.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
			}
		} else {
			i := r.Intn(len(pos)) // nudge one node: sparse
			pos[i] = bounds.Clamp(geom.Point{X: pos[i].X + r.Range(-20, 20), Y: pos[i].Y + r.Range(-20, 20)})
		}
		got := dyn.Step(pos)
		want := FromPositions(pos, bounds, nw.Radius)
		graphsEqual(t, step, got.G, want.G)
	}
}

// TestGenerateWithMatchesGenerate proves the reused-workspace sampling path
// is bit-identical to the allocating one, including across rejection
// sampling and repeated reuse of a single workspace.
func TestGenerateWithMatchesGenerate(t *testing.T) {
	cfg := Config{N: 80, Bounds: geom.Square(100), AvgDegree: 6, RequireConnected: true}
	ws := NewWorkspace()
	for rep := 0; rep < 25; rep++ {
		seed := uint64(1000 + rep)
		want, err := Generate(cfg, rng.New(seed))
		if err != nil {
			t.Fatalf("rep %d: generate: %v", rep, err)
		}
		got, err := GenerateWith(cfg, ws, rng.New(seed))
		if err != nil {
			t.Fatalf("rep %d: generate with workspace: %v", rep, err)
		}
		graphsEqual(t, rep, got.G, want.G)
		for i := range want.Positions {
			if got.Positions[i] != want.Positions[i] {
				t.Fatalf("rep %d: position %d differs", rep, i)
			}
		}
		if got.Radius != want.Radius {
			t.Fatalf("rep %d: radius %v, want %v", rep, got.Radius, want.Radius)
		}
	}
}
