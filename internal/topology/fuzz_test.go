package topology

import (
	"strings"
	"testing"
)

// FuzzLoad throws arbitrary JSON at the snapshot loader: it must either
// return an error or a structurally valid network (all nodes in bounds,
// unit-disk edges only), never panic.
func FuzzLoad(f *testing.F) {
	f.Add(`{"version":1,"bounds":{"MinX":0,"MinY":0,"MaxX":10,"MaxY":10},"radius":3,"positions":[{"X":1,"Y":1},{"X":2,"Y":2}]}`)
	f.Add(`{"version":1}`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`{"version":1,"bounds":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1},"radius":1e308,"positions":[{"X":0.5,"Y":0.5}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		nw, err := Load(strings.NewReader(in))
		if err != nil {
			return
		}
		for i, p := range nw.Positions {
			if !nw.Bounds.Contains(p) {
				t.Fatalf("loaded node %d outside bounds", i)
			}
		}
		for u := 0; u < nw.N(); u++ {
			for _, v := range nw.G.Neighbors(u) {
				if nw.Positions[u].Dist(nw.Positions[v]) > nw.Radius {
					t.Fatalf("edge {%d,%d} longer than the radius", u, v)
				}
			}
		}
	})
}

// FuzzClusterOverLoad chains the loader with clustering: any successfully
// loaded snapshot must produce a valid clustering.
func FuzzClusterOverLoad(f *testing.F) {
	f.Add(`{"version":1,"bounds":{"MinX":0,"MinY":0,"MaxX":50,"MaxY":50},"radius":20,"positions":[{"X":1,"Y":1},{"X":5,"Y":5},{"X":40,"Y":40}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		nw, err := Load(strings.NewReader(in))
		if err != nil {
			return
		}
		if nw.N() > 200 {
			t.Skip("huge input")
		}
		// Cluster validity is checked in the cluster package; here we only
		// assert the graph invariants clustering relies on.
		if nw.G.N() != len(nw.Positions) {
			t.Fatal("graph size mismatch")
		}
	})
}
