package topology

import (
	refl "reflect"
	"testing"

	"clustercast/internal/geom"
	"clustercast/internal/rng"
)

// The banded parallel unit-disk build produces the same graph as the
// sequential sweep, bit for bit, across worker counts, densities and
// seeds — same RNG consumption, same positions, same CSR.
func TestBuildParallelEquivalence(t *testing.T) {
	seq := NewWorkspace()
	par := NewWorkspace()
	for _, tc := range []struct {
		n    int
		deg  float64
		seed uint64
	}{
		{1, 1, 7}, {2, 1, 7}, {40, 4, 1}, {200, 8, 2}, {500, 18, 3}, {2000, 24, 4},
	} {
		cfg := Config{N: tc.n, Bounds: geom.Square(100), AvgDegree: tc.deg}
		want, err := GenerateWith(cfg, seq, rng.New(tc.seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 4, 8, 16} {
			par.BuildWorkers = workers
			got, err := GenerateWith(cfg, par, rng.New(tc.seed))
			if err != nil {
				t.Fatal(err)
			}
			if !refl.DeepEqual(want.Positions, got.Positions) {
				t.Fatalf("n=%d workers=%d: positions differ", tc.n, workers)
			}
			if want.G.N() != got.G.N() || want.G.M() != got.G.M() {
				t.Fatalf("n=%d workers=%d: graph shape %d/%d != %d/%d",
					tc.n, workers, got.G.N(), got.G.M(), want.G.N(), want.G.M())
			}
			for v := 0; v < want.G.N(); v++ {
				if !refl.DeepEqual(want.G.Neighbors(v), got.G.Neighbors(v)) {
					t.Fatalf("n=%d workers=%d: neighbors of %d differ\nwant %v\ngot  %v",
						tc.n, workers, v, want.G.Neighbors(v), got.G.Neighbors(v))
				}
			}
		}
	}
}

// Fuzz: parallel build vs sequential across (n, density, seed, workers).
func FuzzBuildParallelAgree(f *testing.F) {
	f.Add(uint(50), uint(8), uint64(1), uint(4))
	f.Add(uint(200), uint(16), uint64(9), uint(16))
	seq := NewWorkspace()
	par := NewWorkspace()
	f.Fuzz(func(t *testing.T, n, deg uint, seed uint64, workers uint) {
		n = 1 + n%300
		deg = deg % 24
		workers = 2 + workers%15
		cfg := Config{N: int(n), Bounds: geom.Square(100), AvgDegree: float64(deg)}
		want, err := GenerateWith(cfg, seq, rng.New(seed))
		if err != nil {
			t.Skip()
		}
		par.BuildWorkers = int(workers)
		got, err := GenerateWith(cfg, par, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < want.G.N(); v++ {
			if !refl.DeepEqual(want.G.Neighbors(v), got.G.Neighbors(v)) {
				t.Fatalf("workers=%d: neighbors of %d differ", workers, v)
			}
		}
	})
}

func benchmarkBuild(b *testing.B, n, workers int) {
	ws := NewWorkspace()
	ws.BuildWorkers = workers
	cfg := Config{N: n, Bounds: geom.Square(100), AvgDegree: 18}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateWith(cfg, ws, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelTopology(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		if n > 10000 && testing.Short() {
			continue
		}
		b.Run("n="+itoa(n)+"/sequential", func(b *testing.B) { benchmarkBuild(b, n, 1) })
		b.Run("n="+itoa(n)+"/banded-w8", func(b *testing.B) { benchmarkBuild(b, n, 8) })
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
