package topology

import (
	"math"
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/rng"
)

// TestReflectLargeSteps is the regression test for the single-bounce bug:
// a step larger than the area must fold back under repeated reflection,
// not clamp onto the boundary.
func TestReflectLargeSteps(t *testing.T) {
	b := geom.Square(10)
	cases := []struct{ in, want geom.Point }{
		// One bounce past the far wall used to be handled.
		{geom.Point{X: 12, Y: 5}, geom.Point{X: 8, Y: 5}},
		// Two wall widths out: 25 → 25 mod 20 = 5.
		{geom.Point{X: 25, Y: 5}, geom.Point{X: 5, Y: 5}},
		// 1.5 widths past the near wall: -15 → fold to 5... -15 mod 20 = 5.
		{geom.Point{X: -15, Y: 5}, geom.Point{X: 5, Y: 5}},
		// Deep overshoot, both axes at once.
		{geom.Point{X: 38, Y: -27}, geom.Point{X: 2, Y: 7}},
		// Exactly on the period: 20 → 0, -20 → 0.
		{geom.Point{X: 20, Y: 0}, geom.Point{X: 0, Y: 0}},
		{geom.Point{X: -20, Y: 10}, geom.Point{X: 0, Y: 10}},
	}
	for _, c := range cases {
		if got := reflect(c.in, b); got != c.want {
			t.Fatalf("reflect(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestReflectPropertyInBoundsAndMeasurePreserving checks, over random
// inputs, that reflect lands strictly inside the bounds and agrees with
// the naive iterative mirror fold.
func TestReflectPropertyInBoundsAndMeasurePreserving(t *testing.T) {
	naive1 := func(x, lo, hi float64) float64 {
		for x < lo || x > hi {
			if x < lo {
				x = 2*lo - x
			}
			if x > hi {
				x = 2*hi - x
			}
		}
		return x
	}
	b := geom.Rect{MinX: -3, MinY: 2, MaxX: 17, MaxY: 9}
	f := func(x, y float64) bool {
		// Keep the fuzz inputs in a range where the naive loop terminates
		// quickly and float error stays tiny.
		x = math.Mod(x, 1e4)
		y = math.Mod(y, 1e4)
		p := reflect(geom.Point{X: x, Y: y}, b)
		if p.X < b.MinX || p.X > b.MaxX || p.Y < b.MinY || p.Y > b.MaxY {
			return false
		}
		return math.Abs(p.X-naive1(x, b.MinX, b.MaxX)) < 1e-6 &&
			math.Abs(p.Y-naive1(y, b.MinY, b.MaxY)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomWalkHugeStepDistribution drives steps several times the area
// width and checks the positions do not pile up on the boundary (the
// clamping bug put ~all mass on the walls).
func TestRandomWalkHugeStepDistribution(t *testing.T) {
	b := geom.Square(10)
	start := make([]geom.Point, 500)
	for i := range start {
		start[i] = geom.Point{X: 5, Y: 5}
	}
	m := NewRandomWalk(start, b, 50, rng.New(1)) // σ per step = 5 widths
	var pts []geom.Point
	for s := 0; s < 4; s++ {
		pts = m.Step(1)
	}
	onWall := 0
	for _, p := range pts {
		if p.X == b.MinX || p.X == b.MaxX || p.Y == b.MinY || p.Y == b.MaxY {
			onWall++
		}
	}
	if onWall > len(pts)/20 {
		t.Fatalf("%d/%d positions pinned to the boundary — reflection is clamping", onWall, len(pts))
	}
}

// TestRandomWaypointDegenerateConfigsTerminate is the termination property
// test: Step must return for any combination of zero pause, zero-area
// bounds, and target == position.
func TestRandomWaypointDegenerateConfigsTerminate(t *testing.T) {
	f := func(seed uint64, side, pause, speed float64, zeroArea bool) bool {
		side = math.Abs(math.Mod(side, 100))
		pause = math.Abs(math.Mod(pause, 5))
		speed = math.Abs(math.Mod(speed, 30))
		if zeroArea {
			side = 0
		}
		b := geom.Square(side)
		start := make([]geom.Point, 8)
		for i := range start {
			start[i] = geom.Point{X: side / 2, Y: side / 2}
		}
		m := NewRandomWaypoint(start, b, speed, speed+1, pause, rng.New(seed))
		// A non-terminating Step fails the run via the test timeout.
		for s := 0; s < 50; s++ {
			m.Step(1)
		}
		return inBounds(m.Positions(), b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func inBounds(pts []geom.Point, b geom.Rect) bool {
	for _, p := range pts {
		if p.X < b.MinX || p.X > b.MaxX || p.Y < b.MinY || p.Y > b.MaxY {
			return false
		}
	}
	return true
}

// TestRandomWaypointZeroPauseZeroArea pins the exact configuration from
// the bug report: PauseTime == 0 with zero-area bounds used to spin the
// inner Step loop forever (retarget kept choosing the same point and no
// time was ever consumed).
func TestRandomWaypointZeroPauseZeroArea(t *testing.T) {
	b := geom.Rect{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}
	start := []geom.Point{{X: 5, Y: 5}, {X: 5, Y: 5}}
	m := NewRandomWaypoint(start, b, 1, 2, 0, rng.New(3))
	for s := 0; s < 10; s++ {
		pts := m.Step(1) // must return
		for _, p := range pts {
			if p != (geom.Point{X: 5, Y: 5}) {
				t.Fatalf("zero-area node moved to %v", p)
			}
		}
	}
}
