package topology

import (
	"fmt"
	"sort"

	"clustercast/internal/des"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// Workspace owns every buffer one replicate pipeline needs to sample a
// random network: positions, the spatial grid, the packed edge list, the
// count-then-fill adjacency assembly, the graph itself and the connectivity
// scratch. A worker reuses one Workspace across all its replicates (and
// across the connected-rejection attempts inside each), so steady-state
// topology sampling allocates nothing.
//
// The Network returned by GenerateWith is owned by the workspace and valid
// only until the next GenerateWith call on the same workspace.
type Workspace struct {
	// BuildWorkers shards the unit-disk sweep and segment sort over this
	// many goroutines when > 1 (see buildParallel); the assembled graph is
	// bit-identical to the sequential build for any value. Zero or one
	// keeps the fully sequential path.
	BuildWorkers int

	positions []geom.Point
	grid      geom.Grid
	edges     []uint64
	deg       []int
	off       []int
	backing   []int
	scratch   *graph.Scratch
	g         graph.Graph
	nw        Network

	// Parallel-build state: the row/strip partitioner and per-band arenas.
	sh    des.Shards
	bands []buildBand
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{scratch: graph.NewScratch(0)}
}

// GenerateWith draws one random network exactly like Generate — same
// randomness consumption, same rejection sampling, bit-identical result —
// but reuses the workspace buffers instead of allocating.
func GenerateWith(c Config, ws *Workspace, r *rng.Stream) (*Network, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	radius := c.radius()
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = defaultMaxAttempts(c.N)
	}
	for a := 0; a < attempts; a++ {
		nw := ws.place(c.N, c.Bounds, radius, r)
		if !c.RequireConnected || nw.G.ConnectedWith(ws.scratch) {
			return nw, nil
		}
	}
	return nil, fmt.Errorf("topology: no connected unit-disk sample for n=%d (target degree %.3g, radius %.4g, bounds %.4gx%.4g) after %d attempts — the density is likely below the connectivity threshold; raise AvgDegree/Radius or MaxAttempts, or clear RequireConnected: %w",
		c.N, c.AvgDegree, radius, c.Bounds.Width(), c.Bounds.Height(), attempts, ErrDisconnected)
}

// defaultMaxAttempts bounds connected-only rejection sampling when the
// caller sets no explicit MaxAttempts: the paper-scale default of 10000
// attempts, scaled down once a single placement becomes expensive so an
// infeasible configuration (large n, sub-threshold degree) fails in
// bounded time with the descriptive error above instead of effectively
// hanging. Callers that pass MaxAttempts are unaffected.
func defaultMaxAttempts(n int) int {
	const budget = 20_000_000 // total node placements we are willing to spend
	if n <= budget/10000 {
		return 10000
	}
	a := budget / n
	if a < 10 {
		a = 10
	}
	return a
}

// place positions n nodes uniformly into the workspace buffers and builds
// the unit disk graph, mirroring the package-level place.
func (ws *Workspace) place(n int, bounds geom.Rect, radius float64, r *rng.Stream) *Network {
	if cap(ws.positions) < n {
		ws.positions = make([]geom.Point, n)
	}
	ws.positions = ws.positions[:n]
	for i := range ws.positions {
		ws.positions[i] = geom.Point{
			X: r.Range(bounds.MinX, bounds.MaxX),
			Y: r.Range(bounds.MinY, bounds.MaxY),
		}
	}
	ws.nw = Network{
		Positions: ws.positions,
		Radius:    radius,
		Bounds:    bounds,
		G:         ws.build(ws.positions, bounds, radius),
	}
	return &ws.nw
}

// build constructs the unit disk graph over the positions into the
// workspace graph, reusing the grid, the packed edge list and the CSR
// arrays. It is the single implementation behind buildUnitDiskGraph and
// the zero-allocation replicate path.
//
// The graph is assembled directly in compressed-sparse-row form: degrees
// are counted during the pair sweep, offsets are one prefix-sum pass, the
// flat neighbor array is filled with per-node cursors, and each segment is
// insertion-sorted in place. The handoff to the graph is the trusted
// RenewCSR — the half-neighborhood sweep visits every unordered pair at
// most once and never pairs a node with itself, so the symmetric/
// duplicate-free/in-range validation Renew would re-run is guaranteed by
// construction.
func (ws *Workspace) build(positions []geom.Point, bounds geom.Rect, radius float64) *graph.Graph {
	n := len(positions)
	ws.ensureCSR(n)
	if radius < 0 {
		off := ws.off
		for i := range off {
			off[i] = 0
		}
		ws.g.RenewCSR(off, ws.backing[:0])
		return &ws.g
	}
	gridCell := radius
	if gridCell <= 0 {
		gridCell = bounds.Width() + bounds.Height() + 1 // degenerate: one big cell
	}
	ws.grid.Reset(bounds, gridCell)
	for _, p := range positions {
		ws.grid.Insert(p)
	}
	if ws.BuildWorkers > 1 {
		return ws.buildParallel(positions, radius, ws.BuildWorkers)
	}
	// One half-neighborhood sweep distance-tests every candidate pair once;
	// edges are packed into one slice sized from the Poisson degree
	// estimate, then the adjacency lists are assembled count-then-fill into
	// a single backing array.
	capHint := int(float64(n)*geom.ExpectedDegree(n, bounds.Area(), radius)*0.65) + 2*n
	if cap(ws.edges) < capHint {
		ws.edges = make([]uint64, 0, capHint)
	}
	edges := ws.edges[:0]
	deg := ws.deg
	for i := range deg {
		deg[i] = 0
	}
	ws.grid.Pairs(radius, func(u, v int) {
		deg[u]++
		deg[v]++
		edges = append(edges, uint64(u)<<32|uint64(v))
	})
	ws.edges = edges
	off := ws.off
	off[0] = 0
	for u := 0; u < n; u++ {
		off[u+1] = off[u] + deg[u]
	}
	if cap(ws.backing) < off[n] {
		ws.backing = make([]int, off[n])
	}
	backing := ws.backing[:off[n]]
	cur := deg // reuse as fill cursors
	copy(cur, off[:n])
	for _, e := range edges {
		u, v := int(e>>32), int(e&0xffffffff)
		backing[cur[u]] = v
		cur[u]++
		backing[cur[v]] = u
		cur[v]++
	}
	for u := 0; u < n; u++ {
		sortShortPos(backing[off[u]:off[u+1]])
	}
	ws.g.RenewCSR(off, backing)
	return &ws.g
}

// ensureCSR sizes the degree/offset buffers for n nodes.
func (ws *Workspace) ensureCSR(n int) {
	if cap(ws.deg) < n {
		ws.deg = make([]int, n)
	}
	ws.deg = ws.deg[:n]
	if cap(ws.off) < n+1 {
		ws.off = make([]int, n+1)
	}
	ws.off = ws.off[:n+1]
}

// sortShortPos sorts a short neighbor list in place (insertion sort; the
// generic machinery costs more than it saves at radio-graph degrees).
func sortShortPos(l []int) {
	if len(l) > 32 {
		sort.Ints(l)
		return
	}
	for i := 1; i < len(l); i++ {
		v := l[i]
		j := i - 1
		for j >= 0 && l[j] > v {
			l[j+1] = l[j]
			j--
		}
		l[j+1] = v
	}
}
