package topology

import (
	"sort"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// Workspace owns every buffer one replicate pipeline needs to sample a
// random network: positions, the spatial grid, the packed edge list, the
// count-then-fill adjacency assembly, the graph itself and the connectivity
// scratch. A worker reuses one Workspace across all its replicates (and
// across the connected-rejection attempts inside each), so steady-state
// topology sampling allocates nothing.
//
// The Network returned by GenerateWith is owned by the workspace and valid
// only until the next GenerateWith call on the same workspace.
type Workspace struct {
	positions []geom.Point
	grid      geom.Grid
	edges     []uint64
	deg       []int
	off       []int
	backing   []int
	adj       [][]int
	scratch   *graph.Scratch
	g         graph.Graph
	nw        Network
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{scratch: graph.NewScratch(0)}
}

// GenerateWith draws one random network exactly like Generate — same
// randomness consumption, same rejection sampling, bit-identical result —
// but reuses the workspace buffers instead of allocating.
func GenerateWith(c Config, ws *Workspace, r *rng.Stream) (*Network, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	radius := c.radius()
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 10000
	}
	for a := 0; a < attempts; a++ {
		nw := ws.place(c.N, c.Bounds, radius, r)
		if !c.RequireConnected || nw.G.ConnectedWith(ws.scratch) {
			return nw, nil
		}
	}
	return nil, ErrDisconnected
}

// place positions n nodes uniformly into the workspace buffers and builds
// the unit disk graph, mirroring the package-level place.
func (ws *Workspace) place(n int, bounds geom.Rect, radius float64, r *rng.Stream) *Network {
	if cap(ws.positions) < n {
		ws.positions = make([]geom.Point, n)
	}
	ws.positions = ws.positions[:n]
	for i := range ws.positions {
		ws.positions[i] = geom.Point{
			X: r.Range(bounds.MinX, bounds.MaxX),
			Y: r.Range(bounds.MinY, bounds.MaxY),
		}
	}
	ws.nw = Network{
		Positions: ws.positions,
		Radius:    radius,
		Bounds:    bounds,
		G:         ws.build(ws.positions, bounds, radius),
	}
	return &ws.nw
}

// build constructs the unit disk graph over the positions into the
// workspace graph, reusing the grid, the packed edge list and the adjacency
// backing. It is the single implementation behind buildUnitDiskGraph and
// the zero-allocation replicate path.
func (ws *Workspace) build(positions []geom.Point, bounds geom.Rect, radius float64) *graph.Graph {
	n := len(positions)
	ws.ensureAdj(n)
	if radius < 0 {
		for i := range ws.adj {
			ws.adj[i] = nil
		}
		ws.g.Renew(ws.adj)
		return &ws.g
	}
	gridCell := radius
	if gridCell <= 0 {
		gridCell = bounds.Width() + bounds.Height() + 1 // degenerate: one big cell
	}
	ws.grid.Reset(bounds, gridCell)
	for _, p := range positions {
		ws.grid.Insert(p)
	}
	// One half-neighborhood sweep distance-tests every candidate pair once;
	// edges are packed into one slice sized from the Poisson degree
	// estimate, then the adjacency lists are assembled count-then-fill into
	// a single backing array.
	capHint := int(float64(n)*geom.ExpectedDegree(n, bounds.Area(), radius)*0.65) + 2*n
	if cap(ws.edges) < capHint {
		ws.edges = make([]uint64, 0, capHint)
	}
	edges := ws.edges[:0]
	deg := ws.deg
	for i := range deg {
		deg[i] = 0
	}
	ws.grid.Pairs(radius, func(u, v int) {
		deg[u]++
		deg[v]++
		edges = append(edges, uint64(u)<<32|uint64(v))
	})
	ws.edges = edges
	off := ws.off
	off[0] = 0
	for u := 0; u < n; u++ {
		off[u+1] = off[u] + deg[u]
	}
	if cap(ws.backing) < off[n] {
		ws.backing = make([]int, off[n])
	}
	backing := ws.backing[:off[n]]
	cur := deg // reuse as fill cursors
	copy(cur, off[:n])
	for _, e := range edges {
		u, v := int(e>>32), int(e&0xffffffff)
		backing[cur[u]] = v
		cur[u]++
		backing[cur[v]] = u
		cur[v]++
	}
	for u := 0; u < n; u++ {
		ws.adj[u] = backing[off[u]:off[u+1]:off[u+1]]
	}
	ws.g.Renew(ws.adj)
	return &ws.g
}

// ensureAdj sizes the per-node slices for n nodes.
func (ws *Workspace) ensureAdj(n int) {
	if cap(ws.adj) < n {
		ws.adj = make([][]int, n)
	}
	ws.adj = ws.adj[:n]
	if cap(ws.deg) < n {
		ws.deg = make([]int, n)
	}
	ws.deg = ws.deg[:n]
	if cap(ws.off) < n+1 {
		ws.off = make([]int, n+1)
	}
	ws.off = ws.off[:n+1]
}

// sortShortPos sorts a short neighbor list in place (insertion sort; the
// generic machinery costs more than it saves at radio-graph degrees).
func sortShortPos(l []int) {
	if len(l) > 32 {
		sort.Ints(l)
		return
	}
	for i := 1; i < len(l); i++ {
		v := l[i]
		j := i - 1
		for j >= 0 && l[j] > v {
			l[j+1] = l[j]
			j--
		}
		l[j+1] = v
	}
}
