package routing

import (
	"reflect"
	"testing"

	"clustercast/internal/broadcast"
	"clustercast/internal/faults"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// TestRouteLenTotal: Len is total over degenerate routes (the old
// `len(Hops)-1` returned -1 on empty).
func TestRouteLenTotal(t *testing.T) {
	cases := []struct {
		route *Route
		want  int
	}{
		{nil, 0},
		{&Route{}, 0},
		{&Route{Hops: []int{3}}, 0},
		{&Route{Hops: []int{0, 1}}, 1},
		{&Route{Hops: []int{0, 1, 2}}, 2},
	}
	for i, tc := range cases {
		if got := tc.route.Len(); got != tc.want {
			t.Fatalf("case %d: Len() = %d, want %d", i, got, tc.want)
		}
	}
}

// TestValidateDegenerate: Validate is total over nil/empty/single-node
// routes, and src==dst accepts exactly the single-node route.
func TestValidateDegenerate(t *testing.T) {
	g := pathGraph(4)
	if err := (*Route)(nil).Validate(g, 0, 0); err == nil {
		t.Fatal("nil route validated")
	}
	if err := (&Route{}).Validate(g, 2, 2); err == nil {
		t.Fatal("empty route validated")
	}
	if err := (&Route{Hops: []int{2}}).Validate(g, 2, 2); err != nil {
		t.Fatalf("single-node src==dst route rejected: %v", err)
	}
	if err := (&Route{Hops: []int{1}}).Validate(g, 2, 2); err == nil {
		t.Fatal("wrong single node validated for src==dst")
	}
	if err := (&Route{Hops: []int{2, 1, 2}}).Validate(g, 2, 2); err == nil {
		t.Fatal("closed walk validated for src==dst")
	}
	if err := (&Route{Hops: []int{2}}).Validate(g, 2, 3); err == nil {
		t.Fatal("single-node route validated for src!=dst")
	}
}

// TestDiscoverOptsDispatchesMAC: the diamond 0-{1,2}-3 under Jitter 0
// makes nodes 1 and 2 relay in the same slot, so node 3 hears a
// collision and is never reached — observable only if DiscoverOpts
// really runs the MAC engine (the ideal radio always reaches 3, which
// was exactly the Discover bug).
func TestDiscoverOptsDispatchesMAC(t *testing.T) {
	gd := newDiamond()
	if _, err := Discover(gd, 0, 3, broadcast.Flooding{}); err != nil {
		t.Fatalf("ideal discovery failed on the diamond: %v", err)
	}
	if _, err := DiscoverOpts(gd, 0, 3, broadcast.Flooding{}, Options{MAC: true}, nil); err != ErrUnreachable {
		t.Fatalf("MAC discovery through a guaranteed collision: err = %v, want ErrUnreachable", err)
	}
	// With a contention window the flood eventually threads through.
	found := false
	for seed := uint64(0); seed < 32; seed++ {
		if r, err := DiscoverOpts(gd, 0, 3, broadcast.Flooding{}, Options{MAC: true, Jitter: 3, Seed: seed}, nil); err == nil {
			if err := r.Validate(gd, 0, 3); err != nil {
				t.Fatal(err)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("jittered MAC discovery never succeeded on the diamond")
	}
}

// TestDiscoverOptsScalarDESAgree: the calendar dispatch returns
// bit-identical routes to the scalar engines for both radio models.
func TestDiscoverOptsScalarDESAgree(t *testing.T) {
	r := rng.New(21)
	nw, err := topology.Generate(topology.Config{
		N: 60, Bounds: geom.Square(100), AvgDegree: 10,
		RequireConnected: true, MaxAttempts: 300,
	}, r)
	if err != nil {
		t.Skip(err)
	}
	n := nw.G.N()
	opts := []Options{
		{},
		{Loss: 0.2, Seed: 5},
		{MAC: true, Jitter: 4, Seed: 9},
	}
	for trial := 0; trial < 8; trial++ {
		src, dst := r.Intn(n), r.Intn(n)
		for _, o := range opts {
			oDES := o
			oDES.DES = true
			a, errA := DiscoverOpts(nw.G, src, dst, broadcast.Flooding{}, o, nil)
			b, errB := DiscoverOpts(nw.G, src, dst, broadcast.Flooding{}, oDES, nil)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("trial %d opts %+v: scalar err %v, DES err %v", trial, o, errA, errB)
			}
			if errA == nil && !reflect.DeepEqual(a, b) {
				t.Fatalf("trial %d opts %+v: scalar route %+v != DES route %+v", trial, o, a, b)
			}
		}
	}
}

// TestDiscoverOptsPartitionRegression is the fault-consistency gate of
// the DiscoverOpts bugfix: with a partition active for the whole run,
// a discovered route between two same-side nodes must never traverse
// the far side — every hop's delivery went through the oracle's
// LinkUp/NodeUp checks at its delivery slot, so a cross-cut hop cannot
// appear. (Discover's ideal re-run happily routed across the cut.)
func TestDiscoverOptsPartitionRegression(t *testing.T) {
	r := rng.New(33)
	nw, err := topology.Generate(topology.Config{
		N: 80, Bounds: geom.Square(100), AvgDegree: 14,
		RequireConnected: true, MaxAttempts: 300,
	}, r)
	if err != nil {
		t.Skip(err)
	}
	n := nw.G.N()
	const cut = 50.0
	spec := faults.Spec{
		Partitions: []faults.Partition{{Start: 0, End: 1 << 20, Vertical: true, Coord: cut}},
		Seed:       7,
	}
	fo := faults.New(spec, n)
	fo.SetPositions(nw.Positions)

	side := func(v int) bool { return nw.Positions[v].X < cut }
	found := 0
	for trial := 0; trial < 200 && found < 5; trial++ {
		src, dst := r.Intn(n), r.Intn(n)
		if src == dst || side(src) != side(dst) {
			continue
		}
		for _, o := range []Options{
			{MAC: true, Jitter: 2, Seed: uint64(trial)},
			{Loss: 0.05, Seed: uint64(trial)},
			{MAC: true, Jitter: 2, Seed: uint64(trial), DES: true},
		} {
			route, err := DiscoverOpts(nw.G, src, dst, broadcast.Flooding{}, o, fo)
			if err != nil {
				continue // the cut can disconnect the side; that is the point
			}
			if err := route.Validate(nw.G, src, dst); err != nil {
				t.Fatal(err)
			}
			for _, v := range route.Hops {
				if side(v) != side(src) {
					t.Fatalf("trial %d opts %+v: route %v crosses the partition at node %d",
						trial, o, route.Hops, v)
				}
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("no same-side route discovered; the regression exercised nothing")
	}
}

// TestDiscoverOptsChurnRoutesValidate: under node churn the discovered
// parent chain still forms a valid path (deliveries only commit to
// up-at-the-slot nodes; a down node can never become a hop).
func TestDiscoverOptsChurnRoutesValidate(t *testing.T) {
	r := rng.New(44)
	nw, err := topology.Generate(topology.Config{
		N: 70, Bounds: geom.Square(100), AvgDegree: 12,
		RequireConnected: true, MaxAttempts: 300,
	}, r)
	if err != nil {
		t.Skip(err)
	}
	n := nw.G.N()
	found := 0
	for trial := 0; trial < 60 && found < 10; trial++ {
		fo := faults.New(faults.Spec{MeanUp: 50, MeanDown: 8, Seed: uint64(trial)}, n)
		src, dst := r.Intn(n), r.Intn(n)
		if src == dst {
			continue
		}
		route, err := DiscoverOpts(nw.G, src, dst, broadcast.Flooding{},
			Options{MAC: true, Jitter: 1, Seed: uint64(trial)}, fo)
		if err != nil {
			continue
		}
		if err := route.Validate(nw.G, src, dst); err != nil {
			t.Fatalf("trial %d: churn route invalid: %v", trial, err)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no route survived churn; the property exercised nothing")
	}
}

// newDiamond builds the 4-node diamond 0-1, 0-2, 1-3, 2-3.
func newDiamond() *graph.Graph {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g
}
