// Package routing implements on-demand route discovery over a broadcast
// service — the application that motivates efficient broadcasting in the
// paper's introduction (and the cluster-based routing protocol line of
// work it cites): a route request (RREQ) is flooded from the source; every
// node remembers the neighbor that delivered its first copy; when the
// request reaches the destination, the reverse chain of those parent
// pointers is the discovered route, returned by a unicast route reply.
//
// The broadcast protocol used for the RREQ flood determines the trade-off:
// blind flooding costs n transmissions and finds shortest (BFS) routes;
// broadcasting over a CDS backbone costs a fraction of the transmissions
// but may return slightly longer routes (the route is confined to
// backbone-covered parent chains). Stretch quantifies that penalty.
package routing

import (
	"fmt"

	"clustercast/internal/broadcast"
	"clustercast/internal/faults"
	"clustercast/internal/graph"
)

// Route is a discovered source→destination path.
type Route struct {
	// Hops is the node sequence from source to destination inclusive.
	Hops []int
	// RequestCost is the number of RREQ transmissions the discovery flood
	// used (the broadcast's forward-node count).
	RequestCost int
	// ReplyCost is the number of RREP unicast transmissions (route length).
	ReplyCost int
}

// Len returns the hop length of the route (edges, not nodes). It is
// total: a nil, empty, or single-node route has zero hops (the old
// `len(Hops) - 1` returned -1 on an empty route, and callers averaging
// discovery latency over failed routes inherited the off-by-one).
func (r *Route) Len() int {
	if r == nil || len(r.Hops) < 2 {
		return 0
	}
	return len(r.Hops) - 1
}

// ErrUnreachable is returned when the RREQ flood does not reach the
// destination.
var ErrUnreachable = fmt.Errorf("routing: destination unreachable by the discovery flood")

// Options selects the radio/MAC model the RREQ flood runs under.
// The zero value is the ideal radio of Discover.
type Options struct {
	// Loss is the per-copy i.i.d. loss probability of the ideal-radio
	// flood (broadcast.Options.Loss). Ignored when MAC is set.
	Loss float64
	// Seed drives the loss (ideal radio) or jitter (MAC) draws.
	Seed uint64
	// MAC runs the RREQ flood under the slotted collision model
	// (broadcast.RunMAC) instead of the ideal radio: overlapping relays
	// collide, and the discovered route follows first *decoded* copies.
	MAC bool
	// Jitter is the MAC contention window (MACOptions.Jitter).
	Jitter int
	// DES runs the calendar port of the selected engine (bit-identical to
	// the scalar engine; only the event loop changes).
	DES bool
}

// Discover floods a route request from src under the given broadcast
// protocol on an ideal radio and extracts the route to dst from the
// delivery tree. It is DiscoverOpts with the zero Options and no faults.
func Discover(g *graph.Graph, src, dst int, p broadcast.Protocol) (*Route, error) {
	return DiscoverOpts(g, src, dst, p, Options{}, nil)
}

// DiscoverOpts floods a route request from src under the selected radio
// model — ideal, lossy, slotted-MAC, with or without a fault schedule —
// and extracts the route to dst from the delivery tree. Discover's
// ideal-only dispatch was the bug: under loss, faults, or MAC collisions
// the real flood delivers along different parents (or not at all), so
// routes and RequestCost reported by an ideal re-run were fiction.
//
// Every engine commits a delivery only after the fault checks pass
// (receiver up, link up, copy kept), so the returned parent chain never
// traverses a node the oracle had down at its delivery time; the
// partition regression test in routing_test.go pins that property.
func DiscoverOpts(g *graph.Graph, src, dst int, p broadcast.Protocol, opt Options, fo faults.Model) (*Route, error) {
	if src == dst {
		return &Route{Hops: []int{src}, RequestCost: 0, ReplyCost: 0}, nil
	}
	var res *broadcast.Result
	var cost int
	if opt.MAC {
		mo := broadcast.MACOptions{Jitter: opt.Jitter, Seed: opt.Seed, Faults: fo}
		var cr *broadcast.CollisionResult
		if opt.DES {
			cr = broadcast.RunMACDES(g, src, p, mo)
		} else {
			cr = broadcast.RunMAC(g, src, p, mo)
		}
		res, cost = &cr.Result, cr.ForwardCount()
	} else {
		bo := broadcast.Options{Loss: opt.Loss, Seed: opt.Seed, Faults: fo}
		ws := broadcast.NewWorkspace()
		var r *broadcast.Result
		if opt.DES {
			r = ws.RunDESOpts(g, src, p, bo).Materialize()
		} else {
			r = ws.RunOpts(g, src, p, bo).Materialize()
		}
		res, cost = r, r.ForwardCount()
	}
	return ExtractRoute(g, src, dst, res, cost)
}

// ExtractRoute walks the delivery tree of a completed discovery flood
// from dst back to src and returns the route, with RequestCost set to
// cost (the flood's transmission count). Shared by Discover/DiscoverOpts
// and the workload discovery runner, so route semantics cannot drift
// between the single-shot and streaming paths.
func ExtractRoute(g *graph.Graph, src, dst int, res *broadcast.Result, cost int) (*Route, error) {
	if src == dst {
		return &Route{Hops: []int{src}, RequestCost: cost, ReplyCost: 0}, nil
	}
	if !res.Received[dst] {
		return nil, ErrUnreachable
	}
	var rev []int
	for x := dst; ; {
		rev = append(rev, x)
		if x == src {
			break
		}
		parent, ok := res.Parent[x]
		if !ok {
			return nil, fmt.Errorf("routing: broken parent chain at node %d", x)
		}
		x = parent
		if len(rev) > g.N() {
			return nil, fmt.Errorf("routing: parent cycle while extracting route")
		}
	}
	hops := make([]int, len(rev))
	for i, v := range rev {
		hops[len(rev)-1-i] = v
	}
	return &Route{
		Hops:        hops,
		RequestCost: cost,
		ReplyCost:   len(hops) - 1,
	}, nil
}

// Validate checks that the route is a real path in g from src to dst.
// It is total over degenerate routes: a nil or empty route is an error,
// and a src==dst pair is valid exactly as the single-node route [src].
// The explicit branch makes the single-node contract part of the API —
// previously it rode on the fall-through of the path checks, which say
// nothing useful when a src==dst route has the wrong shape.
func (r *Route) Validate(g *graph.Graph, src, dst int) error {
	if r == nil || len(r.Hops) == 0 {
		return fmt.Errorf("routing: empty route")
	}
	if src == dst {
		if len(r.Hops) != 1 || r.Hops[0] != src {
			return fmt.Errorf("routing: src==dst route must be the single node %d, got %v", src, r.Hops)
		}
		return nil
	}
	if r.Hops[0] != src || r.Hops[len(r.Hops)-1] != dst {
		return fmt.Errorf("routing: endpoints %d→%d, want %d→%d",
			r.Hops[0], r.Hops[len(r.Hops)-1], src, dst)
	}
	seen := make(map[int]bool, len(r.Hops))
	for i, v := range r.Hops {
		if seen[v] {
			return fmt.Errorf("routing: node %d repeats", v)
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(r.Hops[i-1], v) {
			return fmt.Errorf("routing: %d-%d is not an edge", r.Hops[i-1], v)
		}
	}
	return nil
}

// Stretch returns the ratio of the route's length to the shortest-path
// distance in g (1.0 = optimal). It returns 0 when the pair is adjacent to
// identical (degenerate single-node routes).
func (r *Route) Stretch(g *graph.Graph) float64 {
	if len(r.Hops) < 2 {
		return 0
	}
	dist := g.BFS(r.Hops[0])
	d := dist[r.Hops[len(r.Hops)-1]]
	if d <= 0 {
		return 0
	}
	return float64(r.Len()) / float64(d)
}
