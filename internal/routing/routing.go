// Package routing implements on-demand route discovery over a broadcast
// service — the application that motivates efficient broadcasting in the
// paper's introduction (and the cluster-based routing protocol line of
// work it cites): a route request (RREQ) is flooded from the source; every
// node remembers the neighbor that delivered its first copy; when the
// request reaches the destination, the reverse chain of those parent
// pointers is the discovered route, returned by a unicast route reply.
//
// The broadcast protocol used for the RREQ flood determines the trade-off:
// blind flooding costs n transmissions and finds shortest (BFS) routes;
// broadcasting over a CDS backbone costs a fraction of the transmissions
// but may return slightly longer routes (the route is confined to
// backbone-covered parent chains). Stretch quantifies that penalty.
package routing

import (
	"fmt"

	"clustercast/internal/broadcast"
	"clustercast/internal/graph"
)

// Route is a discovered source→destination path.
type Route struct {
	// Hops is the node sequence from source to destination inclusive.
	Hops []int
	// RequestCost is the number of RREQ transmissions the discovery flood
	// used (the broadcast's forward-node count).
	RequestCost int
	// ReplyCost is the number of RREP unicast transmissions (route length).
	ReplyCost int
}

// Len returns the hop length of the route (edges, not nodes).
func (r *Route) Len() int { return len(r.Hops) - 1 }

// ErrUnreachable is returned when the RREQ flood does not reach the
// destination.
var ErrUnreachable = fmt.Errorf("routing: destination unreachable by the discovery flood")

// Discover floods a route request from src under the given broadcast
// protocol and extracts the route to dst from the delivery tree.
func Discover(g *graph.Graph, src, dst int, p broadcast.Protocol) (*Route, error) {
	if src == dst {
		return &Route{Hops: []int{src}, RequestCost: 0, ReplyCost: 0}, nil
	}
	res := broadcast.Run(g, src, p)
	if !res.Received[dst] {
		return nil, ErrUnreachable
	}
	var rev []int
	for x := dst; ; {
		rev = append(rev, x)
		if x == src {
			break
		}
		parent, ok := res.Parent[x]
		if !ok {
			return nil, fmt.Errorf("routing: broken parent chain at node %d", x)
		}
		x = parent
		if len(rev) > g.N() {
			return nil, fmt.Errorf("routing: parent cycle while extracting route")
		}
	}
	hops := make([]int, len(rev))
	for i, v := range rev {
		hops[len(rev)-1-i] = v
	}
	return &Route{
		Hops:        hops,
		RequestCost: res.ForwardCount(),
		ReplyCost:   len(hops) - 1,
	}, nil
}

// Validate checks that the route is a real path in g from src to dst.
func (r *Route) Validate(g *graph.Graph, src, dst int) error {
	if len(r.Hops) == 0 {
		return fmt.Errorf("routing: empty route")
	}
	if r.Hops[0] != src || r.Hops[len(r.Hops)-1] != dst {
		return fmt.Errorf("routing: endpoints %d→%d, want %d→%d",
			r.Hops[0], r.Hops[len(r.Hops)-1], src, dst)
	}
	seen := make(map[int]bool, len(r.Hops))
	for i, v := range r.Hops {
		if seen[v] {
			return fmt.Errorf("routing: node %d repeats", v)
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(r.Hops[i-1], v) {
			return fmt.Errorf("routing: %d-%d is not an edge", r.Hops[i-1], v)
		}
	}
	return nil
}

// Stretch returns the ratio of the route's length to the shortest-path
// distance in g (1.0 = optimal). It returns 0 when the pair is adjacent to
// identical (degenerate single-node routes).
func (r *Route) Stretch(g *graph.Graph) float64 {
	if len(r.Hops) < 2 {
		return 0
	}
	dist := g.BFS(r.Hops[0])
	d := dist[r.Hops[len(r.Hops)-1]]
	if d <= 0 {
		return 0
	}
	return float64(r.Len()) / float64(d)
}
