package routing

import (
	"testing"
	"testing/quick"

	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestDiscoverOnPath(t *testing.T) {
	g := pathGraph(5)
	r, err := Discover(g, 0, 4, broadcast.Flooding{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g, 0, 4); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("route length %d, want 4", r.Len())
	}
	if r.Stretch(g) != 1.0 {
		t.Fatalf("stretch = %g, want 1", r.Stretch(g))
	}
	if r.ReplyCost != 4 || r.RequestCost != 5 {
		t.Fatalf("costs = %d/%d", r.RequestCost, r.ReplyCost)
	}
}

func TestDiscoverSelf(t *testing.T) {
	g := pathGraph(3)
	r, err := Discover(g, 1, 1, broadcast.Flooding{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || r.RequestCost != 0 {
		t.Fatalf("self route = %+v", r)
	}
}

func TestDiscoverUnreachable(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := Discover(g, 0, 3, broadcast.Flooding{}); err != ErrUnreachable {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
}

func TestValidateRejectsBadRoutes(t *testing.T) {
	g := pathGraph(4)
	bad := []*Route{
		{Hops: []int{}},
		{Hops: []int{1, 2}},             // wrong endpoints for 0→3
		{Hops: []int{0, 2, 3}},          // 0-2 not an edge
		{Hops: []int{0, 1, 0, 1, 2, 3}}, // repeats
	}
	for i, r := range bad {
		if err := r.Validate(g, 0, 3); err == nil {
			t.Fatalf("case %d: Validate accepted a bad route", i)
		}
	}
}

func TestFloodingRoutesAreShortest(t *testing.T) {
	r := rng.New(3)
	nw, err := topology.Generate(topology.Config{
		N: 60, Bounds: geom.Square(100), AvgDegree: 10,
		RequireConnected: true, MaxAttempts: 300,
	}, r)
	if err != nil {
		t.Skip(err)
	}
	for trial := 0; trial < 10; trial++ {
		src, dst := r.Intn(60), r.Intn(60)
		route, err := Discover(nw.G, src, dst, broadcast.Flooding{})
		if err != nil {
			t.Fatal(err)
		}
		if err := route.Validate(nw.G, src, dst); err != nil {
			t.Fatal(err)
		}
		if src != dst && route.Stretch(nw.G) != 1.0 {
			t.Fatalf("flooding RREQ found non-shortest route: stretch %g", route.Stretch(nw.G))
		}
	}
}

// Property: discovery over the dynamic backbone always finds a valid route
// on connected networks, with bounded stretch and fewer RREQ transmissions
// than flooding.
func TestQuickBackboneDiscovery(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 50, Bounds: geom.Square(100), AvgDegree: 12,
			RequireConnected: true, MaxAttempts: 300,
		}, r)
		if err != nil {
			return true
		}
		cl := cluster.LowestID(nw.G)
		dyn := dynamicb.New(nw.G, cl, coverage.Hop25)
		src, dst := r.Intn(50), r.Intn(50)
		if src == dst {
			return true
		}
		route, err := Discover(nw.G, src, dst, dyn)
		if err != nil {
			return false
		}
		if route.Validate(nw.G, src, dst) != nil {
			return false
		}
		flood, err := Discover(nw.G, src, dst, broadcast.Flooding{})
		if err != nil {
			return false
		}
		if route.RequestCost > flood.RequestCost {
			return false
		}
		// Stretch stays modest: the backbone adds at most a few hops.
		return route.Stretch(nw.G) <= 3.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestStretchVsCostTradeoff measures the headline numbers: backbone
// discovery saves most RREQ transmissions at a small average stretch.
func TestStretchVsCostTradeoff(t *testing.T) {
	root := rng.New(11)
	var floodCost, dynCost int
	var stretchSum float64
	count := 0
	for trial := 0; trial < 25; trial++ {
		nw, err := topology.Generate(topology.Config{
			N: 80, Bounds: geom.Square(100), AvgDegree: 18,
			RequireConnected: true, MaxAttempts: 300,
		}, root)
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.LowestID(nw.G)
		dyn := dynamicb.New(nw.G, cl, coverage.Hop25)
		src, dst := root.Intn(80), root.Intn(80)
		if src == dst {
			continue
		}
		fr, err := Discover(nw.G, src, dst, broadcast.Flooding{})
		if err != nil {
			t.Fatal(err)
		}
		dr, err := Discover(nw.G, src, dst, dyn)
		if err != nil {
			t.Fatal(err)
		}
		floodCost += fr.RequestCost
		dynCost += dr.RequestCost
		stretchSum += dr.Stretch(nw.G)
		count++
	}
	if dynCost >= floodCost {
		t.Fatalf("backbone discovery cost %d should beat flooding %d", dynCost, floodCost)
	}
	avgStretch := stretchSum / float64(count)
	if avgStretch > 2 {
		t.Fatalf("average stretch %.2f too high", avgStretch)
	}
	t.Logf("RREQ cost: flooding=%d dynamic=%d (−%.0f%%); avg stretch %.2f",
		floodCost, dynCost, 100*(1-float64(dynCost)/float64(floodCost)), avgStretch)
}

func BenchmarkDiscover100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	cl := cluster.LowestID(nw.G)
	dyn := dynamicb.New(nw.G, cl, coverage.Hop25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(nw.G, i%100, (i+50)%100, dyn); err != nil {
			b.Fatal(err)
		}
	}
}
