// Package hier builds a multi-level cluster hierarchy, the natural
// extension of the paper's two-level structure ("the cluster structure is
// a simple backbone infrastructure which has only two levels"): level-1
// clusterheads are clustered again over the *cluster graph* — two heads
// are virtual neighbors when one lies in the other's coverage set — and so
// on, until a single cluster remains or a level cap is hit.
//
// Each level shrinks the head population geometrically on uniform
// topologies, which is what makes hierarchical addressing and scalable
// routing (the original motivation of clustering in Ephremides et al.)
// work. The package exists as the repository's future-work extension and
// is exercised by the scalability ablation.
package hier

import (
	"fmt"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// Level is one tier of the hierarchy.
type Level struct {
	// G is the (virtual) graph this level was clustered on. Level 0 uses
	// the physical graph; level i>0 uses the cluster graph of level i−1,
	// with vertices indexed 0..k−1 in ascending head order.
	G *graph.Graph
	// Clustering is the lowest-ID clustering of G.
	Clustering *cluster.Clustering
	// PhysicalHead maps each vertex of G to the *physical* node ID it
	// represents (identity at level 0).
	PhysicalHead []int
}

// Hierarchy is the full stack of levels.
type Hierarchy struct {
	Levels []Level
}

// Depth returns the number of clustering levels built.
func (h *Hierarchy) Depth() int { return len(h.Levels) }

// HeadsAt returns the physical node IDs serving as clusterheads at the
// given level (0-based).
func (h *Hierarchy) HeadsAt(level int) []int {
	l := h.Levels[level]
	out := make([]int, 0, len(l.Clustering.Heads))
	for _, v := range l.Clustering.Heads {
		out = append(out, l.PhysicalHead[v])
	}
	return out
}

// Build constructs the hierarchy over g, stopping when a level has a
// single cluster or maxLevels is reached. The virtual neighbor relation
// between heads uses the symmetric 3-hop coverage set (the cluster graph
// of the paper's Figure 4(b)).
func Build(g *graph.Graph, maxLevels int) (*Hierarchy, error) {
	if maxLevels <= 0 {
		maxLevels = 8
	}
	h := &Hierarchy{}
	cur := g
	physical := make([]int, g.N())
	for i := range physical {
		physical[i] = i
	}
	for level := 0; level < maxLevels; level++ {
		cl := cluster.LowestID(cur)
		h.Levels = append(h.Levels, Level{G: cur, Clustering: cl, PhysicalHead: physical})
		if cl.NumClusters() <= 1 || cur.N() <= 1 {
			break
		}
		next, nextPhys, err := virtualGraph(cur, cl, physical)
		if err != nil {
			return nil, err
		}
		if next.N() == cur.N() {
			// No reduction (e.g. an independent-set-free pathological
			// graph); stop rather than loop.
			break
		}
		cur, physical = next, nextPhys
	}
	return h, nil
}

// virtualGraph builds the undirected cluster graph of one level: vertices
// are the clusterheads (ascending), and two heads are adjacent when either
// lies in the other's 3-hop coverage set.
func virtualGraph(g *graph.Graph, cl *cluster.Clustering, physical []int) (*graph.Graph, []int, error) {
	b := coverage.NewBuilder(g, cl, coverage.Hop3)
	d, index := coverage.ClusterGraph(b)
	k := len(cl.Heads)
	vg := graph.New(k)
	for u := 0; u < k; u++ {
		for _, v := range d.Out(u) {
			if u < v && !vg.HasEdge(u, v) {
				vg.AddEdge(u, v)
			}
		}
		for _, v := range d.In(u) {
			if u < v && !vg.HasEdge(u, v) {
				vg.AddEdge(u, v)
			}
		}
	}
	nextPhys := make([]int, k)
	for _, head := range cl.Heads {
		nextPhys[index[head]] = physical[head]
	}
	return vg, nextPhys, nil
}

// Validate checks the hierarchy's invariants: every level's clustering is
// valid for its graph, virtual graphs stay connected when the base graph
// is connected, and the head population is non-increasing.
func (h *Hierarchy) Validate() error {
	prevHeads := -1
	for i, l := range h.Levels {
		if err := l.Clustering.Validate(l.G); err != nil {
			return fmt.Errorf("hier: level %d: %w", i, err)
		}
		if i == 0 && l.G.Connected() {
			for _, m := range h.Levels[1:] {
				if !m.G.Connected() {
					return fmt.Errorf("hier: virtual graph disconnected at some level above a connected base")
				}
			}
		}
		heads := l.Clustering.NumClusters()
		if prevHeads != -1 && heads > prevHeads {
			return fmt.Errorf("hier: level %d has %d heads, more than the previous level's %d",
				i, heads, prevHeads)
		}
		prevHeads = heads
		if len(l.PhysicalHead) != l.G.N() {
			return fmt.Errorf("hier: level %d physical map has %d entries for %d vertices",
				i, len(l.PhysicalHead), l.G.N())
		}
	}
	return nil
}
