package hier

import (
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func TestBuildPath(t *testing.T) {
	// A long path collapses level by level.
	g := graph.New(32)
	for i := 0; i+1 < 32; i++ {
		g.AddEdge(i, i+1)
	}
	h, err := Build(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Depth() < 2 {
		t.Fatalf("path of 32 should need more than one level, got %d", h.Depth())
	}
	top := h.Levels[h.Depth()-1]
	if top.Clustering.NumClusters() != 1 && h.Depth() == 8 {
		t.Log("hit the level cap before full collapse (acceptable for a path)")
	}
	// Heads shrink strictly at every level below the top.
	for i := 1; i < h.Depth(); i++ {
		if h.Levels[i].G.N() >= h.Levels[i-1].G.N() {
			t.Fatalf("level %d did not shrink: %d -> %d",
				i, h.Levels[i-1].G.N(), h.Levels[i].G.N())
		}
	}
}

func TestBuildSingleNodeAndClique(t *testing.T) {
	h, err := Build(graph.New(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 1 {
		t.Fatalf("single node: depth %d", h.Depth())
	}
	k := graph.New(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			k.AddEdge(u, v)
		}
	}
	h, err = Build(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 1 || h.Levels[0].Clustering.NumClusters() != 1 {
		t.Fatalf("clique must collapse at level 0: depth=%d", h.Depth())
	}
}

func TestHeadsAtPhysicalIDs(t *testing.T) {
	r := rng.New(5)
	nw, err := topology.Generate(topology.Config{
		N: 60, Bounds: geom.Square(100), AvgDegree: 10,
		RequireConnected: true, MaxAttempts: 300,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(nw.G, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Physical heads at every level must be valid node IDs, and heads at
	// level i+1 must be a subset of heads at level i.
	prev := map[int]bool{}
	for _, v := range h.HeadsAt(0) {
		if v < 0 || v >= nw.G.N() {
			t.Fatalf("invalid physical head %d", v)
		}
		prev[v] = true
	}
	for lvl := 1; lvl < h.Depth(); lvl++ {
		for _, v := range h.HeadsAt(lvl) {
			if !prev[v] {
				t.Fatalf("level %d head %d was not a head at level %d", lvl, v, lvl-1)
			}
		}
		next := map[int]bool{}
		for _, v := range h.HeadsAt(lvl) {
			next[v] = true
		}
		prev = next
	}
}

// Property: hierarchies over random connected networks validate, collapse
// to a single top-level cluster within the cap, and shrink geometrically
// (each level at most ~patched half the previous, loosely checked).
func TestQuickHierarchyValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 70, Bounds: geom.Square(100), AvgDegree: 8,
			RequireConnected: true, MaxAttempts: 300,
		}, r)
		if err != nil {
			return true
		}
		h, err := Build(nw.G, 10)
		if err != nil {
			return false
		}
		if h.Validate() != nil {
			return false
		}
		top := h.Levels[h.Depth()-1]
		return top.Clustering.NumClusters() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(nw.G, 8); err != nil {
			b.Fatal(err)
		}
	}
}
