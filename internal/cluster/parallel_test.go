package cluster

import (
	"reflect"
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// requireSameClustering asserts the worklist election reproduced the
// reference Clustering bit for bit: Head, Heads, Members, Rounds, When.
func requireSameClustering(t *testing.T, want, got *Clustering, ctx string) {
	t.Helper()
	if !reflect.DeepEqual(want.Head, got.Head) {
		t.Fatalf("%s: Head differs", ctx)
	}
	if !reflect.DeepEqual(want.Heads, got.Heads) {
		t.Fatalf("%s: Heads differ\nwant %v\ngot  %v", ctx, want.Heads, got.Heads)
	}
	if want.Rounds != got.Rounds {
		t.Fatalf("%s: Rounds %d != %d", ctx, got.Rounds, want.Rounds)
	}
	if !reflect.DeepEqual(want.When, got.When) {
		t.Fatalf("%s: When differs", ctx)
	}
	if len(want.Members) != len(got.Members) {
		t.Fatalf("%s: %d member lists != %d", ctx, len(got.Members), len(want.Members))
	}
	for h, m := range want.Members {
		if !reflect.DeepEqual(m, got.Members[h]) {
			t.Fatalf("%s: Members[%d] differ\nwant %v\ngot  %v", ctx, h, m, got.Members[h])
		}
	}
}

// The worklist election matches Workspace.Elect bit for bit across
// worker counts, priorities, densities and seeds, with workspace reuse.
func TestParallelElectEquivalence(t *testing.T) {
	pw := NewParallelWorkspace()
	ws := NewWorkspace()
	for _, tc := range []struct {
		n    int
		deg  float64
		seed uint64
	}{
		{1, 1, 7}, {2, 1, 7}, {40, 4, 1}, {200, 8, 2}, {500, 18, 3}, {1000, 30, 4},
	} {
		r := rng.New(tc.seed)
		nw, err := topology.Generate(topology.Config{
			N: tc.n, Bounds: geom.Square(100), AvgDegree: tc.deg,
		}, r)
		if err != nil {
			t.Fatal(err)
		}
		prios := []struct {
			name string
			p    Priority
		}{
			{"lowestID", LowestIDPriority},
			{"highestDegree", HighestDegreePriority(nw.G)},
			// Non-injective rank with ID tiebreak exercises the rank/tie
			// comparison rather than the pure-ID fast path.
			{"bucketed", func(v int) (int, int) { return v % 7, v }},
		}
		for _, pr := range prios {
			want := ws.Elect(nw.G, pr.p)
			for _, workers := range []int{1, 2, 3, 4, 8, 16} {
				var got *Clustering
				if pr.name == "lowestID" {
					got = pw.LowestID(nw.G, workers)
				} else {
					got = pw.Elect(nw.G, pr.p, workers)
				}
				ctx := pr.name
				requireSameClustering(t, want, got, ctx)
				if err := got.Validate(nw.G); err != nil {
					t.Fatalf("n=%d %s workers=%d: %v", tc.n, pr.name, workers, err)
				}
			}
		}
	}
}

// Property: on random unit-disk graphs the parallel election agrees with
// the reference for every worker count.
func TestQuickParallelElectAgrees(t *testing.T) {
	pw := NewParallelWorkspace()
	ws := NewWorkspace()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 60, Bounds: geom.Square(100), AvgDegree: 9,
		}, r)
		if err != nil {
			return false
		}
		want := ws.LowestID(nw.G)
		for _, workers := range []int{1, 3, 8} {
			got := pw.LowestID(nw.G, workers)
			if !reflect.DeepEqual(want.Head, got.Head) || want.Rounds != got.Rounds ||
				!reflect.DeepEqual(want.When, got.When) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz: parallel election vs reference across (n, density, seed, workers).
func FuzzParallelElectAgree(f *testing.F) {
	f.Add(uint(50), uint(8), uint64(1), uint(4))
	f.Add(uint(200), uint(16), uint64(9), uint(16))
	f.Add(uint(3), uint(1), uint64(3), uint(2))
	pw := NewParallelWorkspace()
	ws := NewWorkspace()
	f.Fuzz(func(t *testing.T, n, deg uint, seed uint64, workers uint) {
		n = 1 + n%300
		deg = deg % 24
		workers = 1 + workers%16
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: int(n), Bounds: geom.Square(100), AvgDegree: float64(deg),
		}, r)
		if err != nil {
			t.Skip()
		}
		want := ws.LowestID(nw.G)
		got := pw.LowestID(nw.G, int(workers))
		requireSameClustering(t, want, got, "lowestID")
		want = ws.Elect(nw.G, HighestDegreePriority(nw.G))
		got = pw.Elect(nw.G, HighestDegreePriority(nw.G), int(workers))
		requireSameClustering(t, want, got, "highestDegree")
	})
}

func benchmarkElect(b *testing.B, n int, parallel bool, workers int) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: n, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if parallel {
		pw := NewParallelWorkspace()
		for i := 0; i < b.N; i++ {
			_ = pw.LowestID(nw.G, workers)
		}
	} else {
		ws := NewWorkspace()
		for i := 0; i < b.N; i++ {
			_ = ws.LowestID(nw.G)
		}
	}
}

func BenchmarkParallelCluster(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		if n > 10000 && testing.Short() {
			continue
		}
		b.Run("n="+itoa(n)+"/reference", func(b *testing.B) { benchmarkElect(b, n, false, 1) })
		b.Run("n="+itoa(n)+"/worklist-w1", func(b *testing.B) { benchmarkElect(b, n, true, 1) })
		b.Run("n="+itoa(n)+"/worklist-w8", func(b *testing.B) { benchmarkElect(b, n, true, 8) })
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
