package cluster

import (
	"sort"

	"clustercast/internal/graph"
)

// MaintainStats quantifies the work an incremental maintenance pass did —
// the churn a proactive backbone pays under mobility.
type MaintainStats struct {
	// Reaffiliated counts members that switched to a different clusterhead.
	Reaffiliated int
	// Promoted counts nodes that became clusterheads.
	Promoted int
	// Demoted counts clusterheads that lost their role.
	Demoted int
}

// Total returns the total number of role/affiliation changes.
func (s MaintainStats) Total() int { return s.Reaffiliated + s.Promoted + s.Demoted }

// Maintain incrementally repairs a clustering after the topology changed,
// in the spirit of least-cluster-change (LCC) maintenance: instead of
// re-running the election from scratch (which renames clusterheads
// wholesale and maximizes churn), it applies the two LCC events only:
//
//  1. A member no longer adjacent to its clusterhead joins the lowest-ID
//     adjacent clusterhead, or promotes itself when none is in range.
//  2. When two clusterheads become neighbors, the higher-ID one gives up
//     its role and rejoins as a member; its orphaned members re-affiliate
//     by rule 1.
//
// The two rules cascade until stable. The result is a valid clustering of
// the new graph (heads form a maximal independent set *relative to the
// retained heads*; unlike a fresh lowest-ID election the head set is
// generally not the one a from-scratch run would produce — that is the
// point).
func Maintain(g *graph.Graph, prev *Clustering) (*Clustering, MaintainStats) {
	n := g.N()
	if len(prev.Head) != n {
		panic("cluster: Maintain requires a clustering over the same node set")
	}
	head := append([]int(nil), prev.Head...)
	isHead := make([]bool, n)
	for v := 0; v < n; v++ {
		if head[v] == v {
			isHead[v] = true
		}
	}
	var st MaintainStats
	origHead := prev.Head

	// bestAdjacentHead returns the lowest-ID clusterhead adjacent to v,
	// or -1.
	bestAdjacentHead := func(v int) int {
		best := -1
		for _, u := range g.Neighbors(v) {
			if isHead[u] && (best == -1 || u < best) {
				best = u
			}
		}
		return best
	}

	for changed, iter := true, 0; changed; iter++ {
		if iter > n+2 {
			panic("cluster: Maintain did not stabilize") // cannot happen: demotions strictly favor lower IDs
		}
		changed = false

		// Rule 2: adjacent clusterheads — the higher ID demotes.
		for v := 0; v < n; v++ {
			if !isHead[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if isHead[u] && u < v {
					isHead[v] = false
					st.Demoted++
					head[v] = u
					changed = true
					break
				}
			}
		}

		// Rule 1: members must be adjacent to their head.
		for v := 0; v < n; v++ {
			if isHead[v] {
				head[v] = v
				continue
			}
			h := head[v]
			if h >= 0 && h < n && isHead[h] && g.HasEdge(v, h) {
				continue // still fine
			}
			if b := bestAdjacentHead(v); b != -1 {
				if head[v] != b {
					head[v] = b
					st.Reaffiliated++
				}
				changed = true
			} else {
				// Orphaned with no head in range: promote.
				isHead[v] = true
				head[v] = v
				st.Promoted++
				changed = true
			}
		}
	}

	// Reaffiliation accounting against the original assignment (the loops
	// above may touch a node several times while cascading).
	st.Reaffiliated = 0
	for v := 0; v < n; v++ {
		if !isHead[v] && head[v] != origHead[v] && origHead[v] != v {
			st.Reaffiliated++
		}
	}

	c := &Clustering{Head: head, Members: make(map[int][]int)}
	for v := 0; v < n; v++ {
		c.Members[head[v]] = append(c.Members[head[v]], v)
		if head[v] == v {
			c.Heads = append(c.Heads, v)
		}
	}
	sort.Ints(c.Heads)
	return c, st
}
