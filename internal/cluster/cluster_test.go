package cluster

import (
	"reflect"
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func TestLowestIDPath(t *testing.T) {
	// Path 0-1-2-3-4: node 0 declares first; 1 joins; 2 declares (after 1
	// joined); 3 joins 2; 4... round 1: candidates all. 0 wins (lowest among
	// {0,1}); 2 has candidate neighbors {1,3}, 1<2 blocks; 3 blocked by 2;
	// 4: neighbors {3}, 3<4 blocks. Round 1 joins: 1→0. Round 2: 2 wins
	// (neighbors 1 member, 3 candidate, 2<3); 4 blocked by 3. Joins: 3→2.
	// Round 3: 4 wins. Heads {0,2,4}.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	c := LowestID(g)
	if !reflect.DeepEqual(c.Heads, []int{0, 2, 4}) {
		t.Fatalf("Heads = %v, want [0 2 4]", c.Heads)
	}
	if c.Head[1] != 0 || c.Head[3] != 2 {
		t.Fatalf("memberships wrong: %v", c.Head)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestLowestIDStar(t *testing.T) {
	// Star centered at 3 with leaves 0,1,2: leaf 0 declares, center joins 0,
	// then leaves 1 and 2 declare in round 2 (their only neighbor, 3, left).
	g := graph.FromEdges(4, [][2]int{{3, 0}, {3, 1}, {3, 2}})
	c := LowestID(g)
	if !reflect.DeepEqual(c.Heads, []int{0, 1, 2}) {
		t.Fatalf("Heads = %v, want [0 1 2]", c.Heads)
	}
	if c.Head[3] != 0 {
		t.Fatalf("center should join head 0, got %d", c.Head[3])
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestLowestIDSingleNode(t *testing.T) {
	g := graph.New(1)
	c := LowestID(g)
	if !reflect.DeepEqual(c.Heads, []int{0}) || c.Head[0] != 0 {
		t.Fatalf("single node must be its own head: %+v", c)
	}
}

func TestLowestIDDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	c := LowestID(g)
	if !reflect.DeepEqual(c.Heads, []int{0, 2}) {
		t.Fatalf("Heads = %v", c.Heads)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestRoundVsSequentialDivergence pins down the known difference between
// the round-synchronous protocol and a naive sequential greedy pass: with
// edges 0-1, 1-2, 3-4, 2-4, node 4 hears head 3's round-1 declaration and
// joins 3, even though head 2 (declared in round 2) has a smaller ID.
func TestRoundVsSequentialDivergence(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {3, 4}, {2, 4}})
	c := LowestID(g)
	if !reflect.DeepEqual(c.Heads, []int{0, 2, 3}) {
		t.Fatalf("Heads = %v, want [0 2 3]", c.Heads)
	}
	if c.Head[4] != 3 {
		t.Fatalf("node 4 must join head 3 (first declaration heard), got %d", c.Head[4])
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestPaperExampleClustering(t *testing.T) {
	// The 10-node network of the paper's Figure 3: nodes 1..4 become heads
	// of clusters C1..C4; 5,6,7 join C1; 8 joins C2; 9,10 join C3.
	// We use 0-based IDs shifted down by one (paper node k = our k−1) and
	// the adjacency implied by the figure's walk-through:
	//   CH_HOP1(9)= {3*,4}  → 9 adj 3,4     (paper IDs)
	//   CH_HOP1(5)= {1*}    → 5 adj 1
	//   CH_HOP2(9)= {1[5]}  → 9 adj 5
	//   CH_HOP1(6)= {1*,2}, CH_HOP1(7)= {1*,3}, CH_HOP1(8)= {2*,3},
	//   CH_HOP1(10)={3*,4}.
	g := paperFigure3Graph()
	c := LowestID(g)
	wantHeads := []int{0, 1, 2, 3} // paper nodes 1,2,3,4
	if !reflect.DeepEqual(c.Heads, wantHeads) {
		t.Fatalf("Heads = %v, want %v", c.Heads, wantHeads)
	}
	wantHead := map[int]int{4: 0, 5: 0, 6: 0, 7: 1, 8: 2, 9: 2}
	for v, h := range wantHead {
		if c.Head[v] != h {
			t.Fatalf("node %d (paper %d) head = %d, want %d", v, v+1, c.Head[v], h)
		}
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// paperFigure3Graph builds the 10-node example network of Figure 3 with
// 0-based IDs (paper node k ↦ k−1).
func paperFigure3Graph() *graph.Graph {
	// Paper edges (1-based): 1-5, 1-6, 1-7, 2-6, 2-8, 3-7, 3-8, 3-9, 3-10,
	// 4-9, 4-10, 5-9.
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	return graph.FromEdges(10, zero)
}

func TestGateways(t *testing.T) {
	g := paperFigure3Graph()
	c := LowestID(g)
	gw := c.Gateways(g)
	// All of 5,6,7,8,9,10 (paper) border another cluster: 5 adj 9 (C3),
	// 6 adj 2, 7 adj 3, 8 adj 3 and 2, 9 adj 4 and 5, 10 adj 4 and 3.
	want := graph.SetOf(4, 5, 6, 7, 8, 9)
	if !reflect.DeepEqual(gw, want) {
		t.Fatalf("Gateways = %v, want %v", graph.SortedMembers(gw), graph.SortedMembers(want))
	}
	// Heads + classic gateways must form a CDS.
	set := c.HeadSet()
	for v := range gw {
		set[v] = true
	}
	if !g.IsCDS(set) {
		t.Fatal("heads + gateways must be a CDS")
	}
}

func TestHighestDegree(t *testing.T) {
	// Star with center 3: center has max degree, becomes the single head.
	g := graph.FromEdges(4, [][2]int{{3, 0}, {3, 1}, {3, 2}})
	c := HighestDegree(g)
	if !reflect.DeepEqual(c.Heads, []int{3}) {
		t.Fatalf("Heads = %v, want [3]", c.Heads)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestHighestDegreeTieBreaksByID(t *testing.T) {
	// 4-cycle: all degree 2; lowest ID 0 wins first.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	c := HighestDegree(g)
	if c.Head[0] != 0 {
		t.Fatalf("node 0 should be head, got head %d", c.Head[0])
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestLineWorstCaseRounds(t *testing.T) {
	// Monotone chain 0-1-2-...-n−1 is the paper's worst case: Θ(n) rounds.
	n := 31
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	g := graph.FromEdges(n, edges)
	c := LowestID(g)
	if c.Rounds < n/2-1 {
		t.Fatalf("chain should need ~n/2 rounds, got %d for n=%d", c.Rounds, n)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	c := LowestID(g)
	// Corrupt: point node 1 at a non-adjacent head.
	c2 := &Clustering{Head: append([]int(nil), c.Head...), Heads: c.Heads, Members: c.Members}
	c2.Head[3] = 0 // 3 is not adjacent to 0
	if err := c2.Validate(g); err == nil {
		t.Fatal("Validate must reject member not adjacent to head")
	}
	c3 := &Clustering{Head: []int{0, 1}, Heads: []int{0, 1}, Members: map[int][]int{}}
	if err := c3.Validate(g); err == nil {
		t.Fatal("Validate must reject wrong length")
	}
}

func TestHeadSetAndNumClusters(t *testing.T) {
	g := paperFigure3Graph()
	c := LowestID(g)
	if c.NumClusters() != 4 {
		t.Fatalf("NumClusters = %d", c.NumClusters())
	}
	hs := c.HeadSet()
	if graph.SetSize(hs) != 4 || !hs[0] || !hs[3] {
		t.Fatalf("HeadSet = %v", hs)
	}
}

func TestMembersListsComplete(t *testing.T) {
	g := paperFigure3Graph()
	c := LowestID(g)
	total := 0
	for _, m := range c.Members {
		total += len(m)
	}
	if total != g.N() {
		t.Fatalf("Members cover %d of %d nodes", total, g.N())
	}
}

// Property: on random unit disk graphs, lowest-ID clustering always yields
// a valid clustering (heads = maximal independent set, members adjacent).
func TestQuickLowestIDValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 40, Bounds: geom.Square(100), AvgDegree: 8,
		}, r)
		if err != nil {
			return false
		}
		c := LowestID(nw.G)
		return c.Validate(nw.G) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: highest-degree clustering is also always valid.
func TestQuickHighestDegreeValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 40, Bounds: geom.Square(100), AvgDegree: 8,
		}, r)
		if err != nil {
			return false
		}
		c := HighestDegree(nw.G)
		return c.Validate(nw.G) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the head set produced by lowest-ID equals the greedy maximal
// independent set taken in round order — i.e. it is some MIS; verify
// maximality directly: adding any non-head must break independence.
func TestQuickHeadsAreMaximalIndependentSet(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 30, Bounds: geom.Square(80), AvgDegree: 6,
		}, r)
		if err != nil {
			return false
		}
		c := LowestID(nw.G)
		hs := c.HeadSet()
		if !nw.G.IsIndependentSet(hs) {
			return false
		}
		for v := 0; v < nw.G.N(); v++ {
			if hs[v] {
				continue
			}
			hs[v] = true
			if nw.G.IsIndependentSet(hs) {
				return false // could have added v: not maximal
			}
			delete(hs, v)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLowestID100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LowestID(nw.G)
	}
}
