package cluster

import "clustercast/internal/graph"

// Workspace owns every buffer a clusterhead election needs — per-node
// state, priorities, the declaration queue and the membership assembly —
// plus the result Clustering itself. A worker reuses one Workspace across
// replicates, so steady-state elections allocate nothing.
//
// The Clustering returned by Elect/LowestID is owned by the workspace and
// valid only until the next election on the same workspace.
type Workspace struct {
	state    []electionState
	headOf   []int
	when     []int
	rank     []int
	tie      []int
	active   []int
	declared []int
	counts   []int
	backing  []int
	pos      []int
	heads    []int
	members  map[int][]int
	c        Clustering
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{members: make(map[int][]int, 16)}
}

// ensure sizes the per-node buffers for n nodes.
func (ws *Workspace) ensure(n int) {
	if cap(ws.headOf) < n {
		ws.state = make([]electionState, n)
		ws.headOf = make([]int, n)
		ws.when = make([]int, n)
		ws.rank = make([]int, n)
		ws.tie = make([]int, n)
		ws.counts = make([]int, n)
		ws.backing = make([]int, n)
		ws.pos = make([]int, n)
		ws.active = make([]int, 0, n)
	}
	ws.state = ws.state[:n]
	ws.headOf = ws.headOf[:n]
	ws.when = ws.when[:n]
	ws.rank = ws.rank[:n]
	ws.tie = ws.tie[:n]
	ws.counts = ws.counts[:n]
	ws.backing = ws.backing[:n]
	ws.pos = ws.pos[:n]
}

// LowestID runs the paper's lowest-ID election into the workspace.
func (ws *Workspace) LowestID(g *graph.Graph) *Clustering {
	return ws.Elect(g, LowestIDPriority)
}

// Elect runs the round-synchronous clusterhead election exactly like the
// package-level Elect, reusing the workspace buffers instead of allocating.
func (ws *Workspace) Elect(g *graph.Graph, prio Priority) *Clustering {
	n := g.N()
	ws.ensure(n)
	state := ws.state
	headOf := ws.headOf
	when := ws.when
	for i := range state {
		state[i] = candidate
		headOf[i] = -1
	}
	remaining := n
	rounds := 0

	// Evaluate the priority once per node: the election compares priorities
	// O(n·deg) times per round, and indirect closure calls in that loop
	// dominate the cost for simple priorities like lowest-ID.
	rank, tie := ws.rank, ws.tie
	for v := 0; v < n; v++ {
		rank[v], tie[v] = prio(v)
	}
	better := func(a, b int) bool {
		if rank[a] != rank[b] {
			return rank[a] < rank[b]
		}
		return tie[a] < tie[b]
	}

	// The rounds iterate an explicit active-candidate list instead of
	// re-scanning all n nodes: every node starts active, decided nodes are
	// compacted out in place (preserving ascending order), and late rounds
	// touch only the shrinking frontier. Decisions are identical to the
	// full-scan election: phase-1 declarations read only the batched state
	// array, and phase 2 reads only head states, so membership of the
	// active list never changes an outcome — only how fast we skip nodes
	// that can no longer act.
	active := ws.active[:0]
	for v := 0; v < n; v++ {
		active = append(active, v)
	}
	declared := ws.declared[:0]
	for remaining > 0 {
		rounds++
		// Phase 1: simultaneous declarations.
		declared = declared[:0]
		for _, v := range active {
			wins := true
			for _, u := range g.Neighbors(v) {
				if state[u] == candidate && better(u, v) {
					wins = false
					break
				}
			}
			if wins {
				declared = append(declared, v)
			}
		}
		if len(declared) == 0 {
			// Cannot happen on a simple graph with a strict total order,
			// but guard against priority functions that are not total.
			panic("cluster: election stalled; priority function is not a total order")
		}
		for _, v := range declared {
			state[v] = head
			headOf[v] = v
			when[v] = rounds
			remaining--
		}
		// Phase 2: candidates adjacent to a head join the best one; nodes
		// still undecided stay on the active list for the next round.
		out := active[:0]
		for _, v := range active {
			if state[v] != candidate {
				continue // declared head this round
			}
			best := -1
			for _, u := range g.Neighbors(v) {
				if state[u] == head && (best == -1 || better(u, best)) {
					best = u
				}
			}
			if best != -1 {
				state[v] = member
				headOf[v] = best
				when[v] = rounds
				remaining--
				continue
			}
			out = append(out, v)
		}
		active = out
	}
	ws.active = active[:0]
	ws.declared = declared

	// Assemble the membership lists count-then-fill into one backing array,
	// exactly like Elect, over the reused counts/pos/backing buffers and
	// the cleared membership map.
	counts := ws.counts
	for i := range counts {
		counts[i] = 0
	}
	for _, h := range headOf {
		counts[h]++
	}
	backing, pos := ws.backing, ws.pos
	s := 0
	for h := 0; h < n; h++ {
		if counts[h] > 0 {
			pos[h] = s
			s += counts[h]
		}
	}
	for v := 0; v < n; v++ {
		h := headOf[v]
		backing[pos[h]] = v
		pos[h]++
	}
	clear(ws.members)
	ws.heads = ws.heads[:0]
	s = 0
	for h := 0; h < n; h++ {
		if counts[h] == 0 {
			continue
		}
		ws.members[h] = backing[s : s+counts[h] : s+counts[h]]
		s += counts[h]
		ws.heads = append(ws.heads, h)
	}
	ws.c = Clustering{Head: headOf, Heads: ws.heads, Members: ws.members, Rounds: rounds, When: when}
	return &ws.c
}
