package cluster_test

import (
	"fmt"

	"clustercast/internal/cluster"
	"clustercast/internal/graph"
)

// Lowest-ID clustering on the paper's Figure 3 network: nodes 1–4 (0-based
// 0–3) become clusterheads.
func ExampleLowestID() {
	edges := [][2]int{
		{0, 4}, {0, 5}, {0, 6}, {1, 5}, {1, 7},
		{2, 6}, {2, 7}, {2, 8}, {2, 9}, {3, 8}, {3, 9}, {4, 8},
	}
	g := graph.FromEdges(10, edges)
	cl := cluster.LowestID(g)
	fmt.Println("clusterheads:", cl.Heads)
	fmt.Println("node 8's cluster:", cl.Head[8])
	fmt.Println("valid:", cl.Validate(g) == nil)
	// Output:
	// clusterheads: [0 1 2 3]
	// node 8's cluster: 2
	// valid: true
}

// Incremental maintenance keeps roles stable when the topology barely
// changes: adding one edge between members changes nothing.
func ExampleMaintain() {
	g1 := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	cl := cluster.LowestID(g1)

	g2 := g1.Clone()
	g2.AddEdge(1, 3) // two members meet: no role changes needed
	next, st := cluster.Maintain(g2, cl)
	fmt.Println("changes:", st.Total())
	fmt.Println("heads unchanged:", fmt.Sprint(next.Heads) == fmt.Sprint(cl.Heads))
	// Output:
	// changes: 0
	// heads unchanged: true
}
