package cluster

import (
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func TestMaintainNoChange(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	cl := LowestID(g)
	next, st := Maintain(g, cl)
	if st.Total() != 0 {
		t.Fatalf("unchanged graph must produce zero churn: %+v", st)
	}
	if err := next.Validate(g); err != nil {
		t.Fatal(err)
	}
	for v := range cl.Head {
		if next.Head[v] != cl.Head[v] {
			t.Fatalf("node %d head changed without topology change", v)
		}
	}
}

func TestMaintainReaffiliation(t *testing.T) {
	// Path 0-1-2-3-4: heads {0,2,4}; 1∈0, 3∈2. Remove edge 3-2, add 3-4...
	// simulate by constructing the new graph directly: 3 loses head 2 but
	// gains no new adjacency — wait, 3 is adjacent to 4 (a head): it must
	// re-affiliate to 4.
	g2 := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	prev := LowestID(graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}))
	next, st := Maintain(g2, prev)
	if err := next.Validate(g2); err != nil {
		t.Fatal(err)
	}
	if next.Head[3] != 4 {
		t.Fatalf("node 3 should re-affiliate to head 4, got %d", next.Head[3])
	}
	if st.Reaffiliated != 1 || st.Promoted != 0 || st.Demoted != 0 {
		t.Fatalf("stats = %+v, want exactly one reaffiliation", st)
	}
}

func TestMaintainPromotion(t *testing.T) {
	// Node 3 drifts out of range of everyone: must promote itself.
	g2 := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 4}})
	prev := LowestID(graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}))
	next, st := Maintain(g2, prev)
	if err := next.Validate(g2); err != nil {
		t.Fatal(err)
	}
	if next.Head[3] != 3 {
		t.Fatalf("isolated node 3 must promote itself, head = %d", next.Head[3])
	}
	if st.Promoted == 0 {
		t.Fatalf("stats = %+v, want a promotion", st)
	}
}

func TestMaintainDemotion(t *testing.T) {
	// Heads 0 and 2 of the 5-path move adjacent: 2 must demote.
	prev := LowestID(graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}))
	g2 := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}})
	next, st := Maintain(g2, prev)
	if err := next.Validate(g2); err != nil {
		t.Fatal(err)
	}
	if next.Head[2] == 2 {
		t.Fatal("head 2 adjacent to lower head 0 must demote")
	}
	if st.Demoted != 1 {
		t.Fatalf("stats = %+v, want one demotion", st)
	}
}

func TestMaintainPanicsOnSizeMismatch(t *testing.T) {
	prev := LowestID(graph.New(3))
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch must panic")
		}
	}()
	Maintain(graph.New(4), prev)
}

// Property: after arbitrary topology changes, Maintain yields a valid
// clustering of the new graph.
func TestQuickMaintainValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw1, err := topology.Generate(topology.Config{
			N: 40, Bounds: geom.Square(100), AvgDegree: 8, MaxAttempts: 200,
		}, r)
		if err != nil {
			return true
		}
		prev := LowestID(nw1.G)
		// Perturb positions (teleport 25% of nodes) and rebuild the graph.
		pos := append([]geom.Point(nil), nw1.Positions...)
		for i := 0; i < len(pos)/4; i++ {
			pos[r.Intn(len(pos))] = geom.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
		}
		nw2 := topology.FromPositions(pos, nw1.Bounds, nw1.Radius)
		next, _ := Maintain(nw2.G, prev)
		return next.Validate(nw2.G) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: under small motion, incremental maintenance churns (many
// times) less than re-electing from scratch, measured as the number of
// nodes whose head assignment changes.
func TestMaintainChurnsLessThanReelection(t *testing.T) {
	root := rng.New(4242)
	totalLCC, totalFresh := 0, 0
	for trial := 0; trial < 20; trial++ {
		nw1, err := topology.Generate(topology.Config{
			N: 60, Bounds: geom.Square(100), AvgDegree: 10,
			RequireConnected: true, MaxAttempts: 300,
		}, root)
		if err != nil {
			t.Fatal(err)
		}
		prev := LowestID(nw1.G)
		// Small jitter: every node moves by ~2 units.
		pos := append([]geom.Point(nil), nw1.Positions...)
		for i := range pos {
			pos[i] = nw1.Bounds.Clamp(geom.Point{
				X: pos[i].X + root.NormFloat64()*2,
				Y: pos[i].Y + root.NormFloat64()*2,
			})
		}
		nw2 := topology.FromPositions(pos, nw1.Bounds, nw1.Radius)
		lcc, _ := Maintain(nw2.G, prev)
		fresh := LowestID(nw2.G)
		for v := 0; v < 60; v++ {
			if lcc.Head[v] != prev.Head[v] {
				totalLCC++
			}
			if fresh.Head[v] != prev.Head[v] {
				totalFresh++
			}
		}
	}
	if totalLCC > totalFresh {
		t.Fatalf("LCC churn %d exceeds re-election churn %d", totalLCC, totalFresh)
	}
	t.Logf("head-assignment changes over 20 jitters: LCC=%d, re-election=%d", totalLCC, totalFresh)
}
