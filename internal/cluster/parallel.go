package cluster

import (
	"cmp"
	"slices"

	"clustercast/internal/des"
	"clustercast/internal/graph"
)

// ParallelWorkspace runs the round-synchronous clusterhead election as a
// worklist driven by "better-neighbor" counters, sequentially or sharded
// over des.Shards cross-shard mailboxes. It produces the exact
// Clustering of Workspace.Elect — Head, Heads, Members, Rounds and When
// — for any worker count, with Workspace.Elect kept as the golden
// reference.
//
// The worklist is the generalization of the PR7 wire-protocol election
// (sim.RunDES) from lowest-ID to an arbitrary Priority: cnt[v] holds the
// number of still-candidate neighbors with strictly better priority, so
// v is ready to declare exactly when cnt[v] reaches zero — the same
// condition as "beats every candidate neighbor" in the per-round scans
// of Workspace.Elect, but discovered incrementally instead of by
// re-scanning the frontier each round. The counters stay exact because a
// candidate is never adjacent to a head at a round boundary (it would
// have joined in that round's phase 2), so candidacy only ever ends in
// ways the worklist observes: a declaration the node itself makes, an
// offer it receives, or a membership strike from a better neighbor.
// Election state is folded into the counter (cntHead/cntMember below) so
// the hot strike loop touches one array instead of two.
//
// Each round is two exchanges. Declare+offer: ready nodes become heads
// and offer membership to each neighbor; offers are folded with the
// (rank, tie, ID) order Workspace.Elect's ascending phase-2 scan
// implies, and offered candidates join. Strike: every new member
// decrements the counter of each worse still-candidate neighbor;
// counters that reach zero enqueue the node as ready. In the sharded
// path each exchange is a des.Shards.Fanout — single-writer mailboxes
// concatenated in ascending source-shard order — and every fold is
// order-independent, so the decisions are bit-identical for any worker
// count; the single-worker path folds directly with the mailboxes
// elided.
type ParallelWorkspace struct {
	sh        des.Shards
	headOf    []int
	when      []int
	rank      []int
	tie       []int
	cnt       []int32
	offerAt   []uint32 // round stamp of the newest offer to v
	bestOffer []int32  // best offering head this round (valid when stamped)
	stamp     uint32   // persistent round stamp; never reset between elections
	shards    []electShard

	counts  []int
	backing []int
	pos     []int
	heads   []int
	members map[int][]int
	c       Clustering
}

// cnt[v] ≥ 0 means v is a candidate with that many better candidate
// neighbors; the two negative sentinels mark decided nodes.
const (
	cntHead   = int32(-1)
	cntMember = int32(-2)
)

// electShard is the per-shard private state: only the owning shard
// appends to these lists, during the phase noted per field.
type electShard struct {
	ready      []int32 // candidates with count 0, pending declaration
	newHeads   []int32 // heads declared this round (declare produce)
	newMembers []int32 // members joined this round (offer consume)
	offered    []int32 // nodes stamped with an offer this round (offer consume)
}

// NewParallelWorkspace returns an empty workspace; buffers grow on first
// use. The Clustering returned by Elect/LowestID is owned by the
// workspace and valid only until the next election on it.
func NewParallelWorkspace() *ParallelWorkspace {
	return &ParallelWorkspace{members: make(map[int][]int, 16)}
}

// ensure sizes the per-node buffers for n nodes.
func (pw *ParallelWorkspace) ensure(n int) {
	if cap(pw.headOf) < n {
		pw.headOf = make([]int, n)
		pw.when = make([]int, n)
		pw.rank = make([]int, n)
		pw.tie = make([]int, n)
		pw.cnt = make([]int32, n)
		pw.offerAt = make([]uint32, n)
		pw.bestOffer = make([]int32, n)
		pw.counts = make([]int, n)
		pw.backing = make([]int, n)
		pw.pos = make([]int, n)
	}
	pw.headOf = pw.headOf[:n]
	pw.when = pw.when[:n]
	pw.rank = pw.rank[:n]
	pw.tie = pw.tie[:n]
	pw.cnt = pw.cnt[:n]
	pw.offerAt = pw.offerAt[:n]
	pw.bestOffer = pw.bestOffer[:n]
	pw.counts = pw.counts[:n]
	pw.backing = pw.backing[:n]
	pw.pos = pw.pos[:n]
}

// LowestID runs the paper's lowest-ID election across workers goroutines
// (sequentially when workers ≤ 1).
func (pw *ParallelWorkspace) LowestID(g *graph.Graph, workers int) *Clustering {
	return pw.elect(g, LowestIDPriority, workers, true)
}

// Elect runs the generic round-synchronous election under prio across
// workers goroutines, bit-identical to Workspace.Elect.
func (pw *ParallelWorkspace) Elect(g *graph.Graph, prio Priority, workers int) *Clustering {
	return pw.elect(g, prio, workers, false)
}

func (pw *ParallelWorkspace) elect(g *graph.Graph, prio Priority, workers int, idPrio bool) *Clustering {
	n := g.N()
	if workers < 1 {
		workers = 1
	}
	pw.ensure(n)
	var rounds int
	if workers == 1 {
		rounds = pw.electSeq(g, prio, idPrio)
	} else {
		rounds = pw.electSharded(g, prio, workers, idPrio)
	}
	pw.assemble(n, rounds)
	return &pw.c
}

// nextStamp advances the persistent offer stamp, flushing stale stamps
// on uint32 wrap (once per 2³² rounds).
func (pw *ParallelWorkspace) nextStamp() uint32 {
	pw.stamp++
	if pw.stamp == 0 {
		for i := range pw.offerAt {
			pw.offerAt[i] = 0
		}
		pw.stamp = 1
	}
	return pw.stamp
}

// electSeq is the single-worker worklist: the same counter algorithm as
// the sharded path with the mailbox exchange elided — offers and strikes
// are folded directly, which is legal because every fold (best offer by
// (rank, tie, ID), counter decrements) is order-independent, so eliding
// the deterministic mail ordering cannot change a decision.
func (pw *ParallelWorkspace) electSeq(g *graph.Graph, prio Priority, idPrio bool) int {
	n := g.N()
	if cap(pw.shards) < 1 {
		pw.shards = make([]electShard, 1)
	}
	sd := &pw.shards[0]
	ready := sd.ready[:0]
	newHeads := sd.newHeads[:0]
	newMembers := sd.newMembers[:0]

	headOf, when := pw.headOf, pw.when
	rank, tie, cnt := pw.rank, pw.tie, pw.cnt
	better := func(a, b int) bool {
		if rank[a] != rank[b] {
			return rank[a] < rank[b]
		}
		return tie[a] < tie[b]
	}

	// Count the better candidate neighbors of every node; count-0 nodes
	// seed the ready list. For the lowest-ID priority the count is the
	// length of the smaller-ID prefix of the ascending adjacency segment
	// and the rank/tie arrays are never consulted.
	if idPrio {
		for v := 0; v < n; v++ {
			headOf[v] = -1
			c := int32(0)
			for _, u := range g.Neighbors(v) {
				if u >= v {
					break
				}
				c++
			}
			cnt[v] = c
			if c == 0 {
				ready = append(ready, int32(v))
			}
		}
	} else {
		for v := 0; v < n; v++ {
			rank[v], tie[v] = prio(v)
			headOf[v] = -1
		}
		for v := 0; v < n; v++ {
			c := int32(0)
			for _, u := range g.Neighbors(v) {
				if better(u, v) {
					c++
				}
			}
			cnt[v] = c
			if c == 0 {
				ready = append(ready, int32(v))
			}
		}
	}

	remaining := n
	rounds := 0
	for remaining > 0 {
		rounds++

		// Declaring the round's heads in priority order makes the first
		// offer any candidate hears its best one — Workspace.Elect's
		// (rank, tie, ID) phase-2 fold — so joins happen inline on first
		// contact, with no offer-stamp pass. The sort is cheap: the total
		// number of ready entries over a whole election is the number of
		// heads.
		if idPrio {
			slices.Sort(ready)
		} else {
			slices.SortFunc(ready, func(a, b int32) int {
				x, y := int(a), int(b)
				if rank[x] != rank[y] {
					return cmp.Compare(rank[x], rank[y])
				}
				if tie[x] != tie[y] {
					return cmp.Compare(tie[x], tie[y])
				}
				return cmp.Compare(a, b)
			})
		}
		newHeads = newHeads[:0]
		for _, v32 := range ready {
			v := int(v32)
			if cnt[v] != 0 {
				continue // defensive: ready nodes are candidates by construction
			}
			cnt[v] = cntHead
			headOf[v] = v
			when[v] = rounds
			newHeads = append(newHeads, v32)
		}
		ready = ready[:0]

		newMembers = newMembers[:0]
		for _, h32 := range newHeads {
			h := int(h32)
			for _, v := range g.Neighbors(h) {
				if cnt[v] < 0 {
					continue // joined this round, or decided earlier
				}
				cnt[v] = cntMember
				headOf[v] = h
				when[v] = rounds
				newMembers = append(newMembers, int32(v))
			}
		}

		progress := len(newHeads) + len(newMembers)
		if progress == 0 {
			// Cannot happen on a simple graph with a strict total order,
			// but guard against priority functions that are not total.
			panic("cluster: election stalled; priority function is not a total order")
		}
		remaining -= progress
		if remaining == 0 {
			break
		}

		// Strikes. A counter is decremented exactly once per better
		// neighbor that joins, so a candidate's counter cannot be 0 here
		// (the striking member was still counted), and decided nodes sit
		// at the negative sentinels — the c ≥ 0 guard filters both.
		for _, m32 := range newMembers {
			m := int(m32)
			if idPrio {
				// Worse neighbors are the larger-ID suffix of the ascending
				// adjacency segment: walk it from the end and stop at the
				// first smaller ID instead of scanning the whole segment.
				nb := g.Neighbors(m)
				for i := len(nb) - 1; i >= 0; i-- {
					u := nb[i]
					if u < m {
						break
					}
					if c := cnt[u] - 1; c >= 0 {
						cnt[u] = c
						if c == 0 {
							ready = append(ready, int32(u))
						}
					}
				}
			} else {
				for _, u := range g.Neighbors(m) {
					if !better(m, u) {
						continue
					}
					if c := cnt[u] - 1; c >= 0 {
						cnt[u] = c
						if c == 0 {
							ready = append(ready, int32(u))
						}
					}
				}
			}
		}
	}

	sd.ready = ready[:0]
	sd.newHeads = newHeads
	sd.newMembers = newMembers
	return rounds
}

// electSharded is the worklist sharded over des.Shards: two Fanout
// exchanges per round with the ID space split into contiguous strips,
// each strip the single writer of its nodes' counters and decisions.
func (pw *ParallelWorkspace) electSharded(g *graph.Graph, prio Priority, workers int, idPrio bool) int {
	n := g.N()
	pw.sh.ResetRange(n, workers)
	k := pw.sh.K()
	if cap(pw.shards) < k {
		pw.shards = make([]electShard, k)
	}
	shards := pw.shards[:k]
	for s := range shards {
		shards[s].ready = shards[s].ready[:0]
		shards[s].newHeads = shards[s].newHeads[:0]
		shards[s].newMembers = shards[s].newMembers[:0]
		shards[s].offered = shards[s].offered[:0]
	}

	headOf, when := pw.headOf, pw.when
	rank, tie, cnt := pw.rank, pw.tie, pw.cnt
	offerAt, bestOffer := pw.offerAt, pw.bestOffer
	better := func(a, b int) bool {
		if rank[a] != rank[b] {
			return rank[a] < rank[b]
		}
		return tie[a] < tie[b]
	}

	// Pass 1: evaluate the priority and reset per-node state, per strip.
	pw.sh.Each(workers, func(s int) {
		lo, hi := pw.sh.Range(s)
		for v := lo; v < hi; v++ {
			if !idPrio {
				rank[v], tie[v] = prio(v)
			}
			headOf[v] = -1
		}
	})
	// Pass 2 (after the barrier — counts read neighbor priorities across
	// strip boundaries): count better candidate neighbors; count-0 nodes
	// seed the ready lists.
	pw.sh.Each(workers, func(s int) {
		sd := &shards[s]
		lo, hi := pw.sh.Range(s)
		for v := lo; v < hi; v++ {
			c := int32(0)
			if idPrio {
				for _, u := range g.Neighbors(v) {
					if u >= v {
						break
					}
					c++
				}
			} else {
				for _, u := range g.Neighbors(v) {
					if better(u, v) {
						c++
					}
				}
			}
			cnt[v] = c
			if c == 0 {
				sd.ready = append(sd.ready, int32(v))
			}
		}
	})

	remaining := n
	rounds := 0
	for remaining > 0 {
		rounds++
		stamp := pw.nextStamp()

		// Declare + offer. Ready nodes are heads by construction (a node
		// whose count reached zero is never offered membership before its
		// declaration round — its better neighbors are all gone), so the
		// candidate check is defensive only.
		pw.sh.Fanout(workers,
			func(src int, emit func(int, des.Mail)) {
				sd := &shards[src]
				sd.newHeads = sd.newHeads[:0]
				for _, v32 := range sd.ready {
					v := int(v32)
					if cnt[v] != 0 {
						continue
					}
					cnt[v] = cntHead
					headOf[v] = v
					when[v] = rounds
					sd.newHeads = append(sd.newHeads, v32)
					for _, u := range g.Neighbors(v) {
						emit(pw.sh.Owner(u), des.Mail{Node: int32(u), Val: v32})
					}
				}
				sd.ready = sd.ready[:0]
			},
			func(dst int, mail []des.Mail) {
				sd := &shards[dst]
				sd.newMembers = sd.newMembers[:0]
				for _, m := range mail {
					v := int(m.Node)
					if cnt[v] < 0 {
						continue // joined or declared in an earlier round
					}
					if offerAt[v] != stamp {
						offerAt[v] = stamp
						bestOffer[v] = m.Val
						sd.offered = append(sd.offered, m.Node)
						continue
					}
					h, b := int(m.Val), int(bestOffer[v])
					if idPrio {
						if h < b {
							bestOffer[v] = m.Val
						}
					} else if better(h, b) || (h < b && !better(b, h)) {
						bestOffer[v] = m.Val
					}
				}
				for _, v32 := range sd.offered {
					v := int(v32)
					cnt[v] = cntMember
					headOf[v] = int(bestOffer[v])
					when[v] = rounds
					sd.newMembers = append(sd.newMembers, v32)
				}
				sd.offered = sd.offered[:0]
			})

		progress := 0
		for s := range shards {
			progress += len(shards[s].newHeads) + len(shards[s].newMembers)
		}
		if progress == 0 {
			panic("cluster: election stalled; priority function is not a total order")
		}
		remaining -= progress
		if remaining == 0 {
			break
		}

		// Strike. Counter reads in produce are stable (no writes happen
		// during a produce phase); the owner shard folds the decrements.
		pw.sh.Fanout(workers,
			func(src int, emit func(int, des.Mail)) {
				sd := &shards[src]
				for _, m32 := range sd.newMembers {
					m := int(m32)
					if idPrio {
						for _, u := range g.Neighbors(m) {
							if u > m && cnt[u] >= 0 {
								emit(pw.sh.Owner(u), des.Mail{Node: int32(u), Val: m32})
							}
						}
					} else {
						for _, u := range g.Neighbors(m) {
							if cnt[u] >= 0 && better(m, u) {
								emit(pw.sh.Owner(u), des.Mail{Node: int32(u), Val: m32})
							}
						}
					}
				}
			},
			func(dst int, mail []des.Mail) {
				sd := &shards[dst]
				for _, ms := range mail {
					u := ms.Node
					if c := cnt[u] - 1; c >= 0 {
						cnt[u] = c
						if c == 0 {
							sd.ready = append(sd.ready, u)
						}
					}
				}
			})
	}
	return rounds
}

// assemble builds the membership lists count-then-fill into one backing
// array, exactly like Workspace.Elect, and publishes the Clustering.
func (pw *ParallelWorkspace) assemble(n, rounds int) {
	headOf, when := pw.headOf, pw.when
	counts := pw.counts
	for i := range counts {
		counts[i] = 0
	}
	for _, h := range headOf {
		counts[h]++
	}
	backing, pos := pw.backing, pw.pos
	s := 0
	for h := 0; h < n; h++ {
		if counts[h] > 0 {
			pos[h] = s
			s += counts[h]
		}
	}
	for v := 0; v < n; v++ {
		h := headOf[v]
		backing[pos[h]] = v
		pos[h]++
	}
	clear(pw.members)
	pw.heads = pw.heads[:0]
	s = 0
	for h := 0; h < n; h++ {
		if counts[h] == 0 {
			continue
		}
		pw.members[h] = backing[s : s+counts[h] : s+counts[h]]
		s += counts[h]
		pw.heads = append(pw.heads, h)
	}
	pw.c = Clustering{Head: headOf, Heads: pw.heads, Members: pw.members, Rounds: rounds, When: when}
}
