// Package cluster implements the distributed clustering algorithms that
// partition a MANET into one-hop clusters, the first stage of both the
// static and the dynamic backbone of the paper.
//
// The canonical algorithm is lowest-ID clustering (Ephremides, Wieselthier,
// Baker 1987), reproduced here with round-synchronous semantics:
//
//  1. Initially every node is a candidate.
//  2. In each round, every candidate that has the smallest ID among its
//     candidate neighbors declares itself clusterhead (CLUSTER_HEAD
//     message).
//  3. A candidate that hears one or more clusterhead declarations joins the
//     neighboring clusterhead with the smallest ID and announces itself as
//     a non-clusterhead (NON_CLUSTER_HEAD message).
//  4. Rounds repeat until no candidate remains.
//
// The resulting clusterhead set is a maximal independent set of the graph
// (two clusterheads are never neighbors, and every node is a clusterhead or
// adjacent to one). Note that the round-synchronous process is NOT always
// identical to the sequential "greedy by ID" pass: the heads coincide, but
// a member may affiliate with a larger-ID head whose declaration it heard
// first. We reproduce the distributed behaviour because it is what the
// paper's protocol produces on a real network.
package cluster

import (
	"fmt"

	"clustercast/internal/graph"
)

// Clustering is the result of a clustering pass over a graph.
type Clustering struct {
	// Head[v] is the clusterhead of v's cluster; Head[h] == h for heads.
	Head []int
	// Heads lists the clusterheads in ascending order.
	Heads []int
	// Members[h] lists all nodes of h's cluster including h, ascending.
	Members map[int][]int
	// Rounds is the number of synchronous rounds the election took.
	Rounds int
	// When[v] is the 1-based election round in which v decided (declared
	// itself head, or joined one). Elect-based constructions fill it; it is
	// nil for clusterings assembled by other means (e.g. Maintain), which
	// the localized backbone repair cannot replay.
	When []int
}

// IsHead reports whether v is a clusterhead.
func (c *Clustering) IsHead(v int) bool { return c.Head[v] == v }

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Heads) }

// HeadSet returns the clusterhead set as a membership map.
func (c *Clustering) HeadSet() map[int]bool {
	m := make(map[int]bool, len(c.Heads))
	for _, h := range c.Heads {
		m[h] = true
	}
	return m
}

// Gateways returns the classic gateway set: non-clusterhead nodes with at
// least one neighbor belonging to a different cluster. Together with the
// clusterheads, these form the naive cluster backbone that the paper's
// gateway *selection* prunes down.
func (c *Clustering) Gateways(g *graph.Graph) map[int]bool {
	gw := make(map[int]bool)
	for v := 0; v < g.N(); v++ {
		if c.IsHead(v) {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if c.Head[u] != c.Head[v] {
				gw[v] = true
				break
			}
		}
	}
	return gw
}

// Validate checks the structural invariants of a clustering over g and
// returns a descriptive error on the first violation:
// every node has a head, heads head themselves, members are adjacent to
// their head, and the head set is a maximal independent set (dominating +
// independent).
func (c *Clustering) Validate(g *graph.Graph) error {
	n := g.N()
	if len(c.Head) != n {
		return fmt.Errorf("cluster: Head has %d entries for %d nodes", len(c.Head), n)
	}
	headSet := c.HeadSet()
	for v := 0; v < n; v++ {
		h := c.Head[v]
		if h < 0 || h >= n {
			return fmt.Errorf("cluster: node %d has invalid head %d", v, h)
		}
		if c.Head[h] != h {
			return fmt.Errorf("cluster: head %d of node %d is not its own head", h, v)
		}
		if v != h && !g.HasEdge(v, h) {
			return fmt.Errorf("cluster: member %d not adjacent to its head %d", v, h)
		}
	}
	if !g.IsIndependentSet(headSet) {
		return fmt.Errorf("cluster: clusterheads are not an independent set")
	}
	if !g.IsDominatingSet(headSet) {
		return fmt.Errorf("cluster: clusterheads are not a dominating set")
	}
	for h, members := range c.Members {
		if c.Head[h] != h {
			return fmt.Errorf("cluster: Members key %d is not a head", h)
		}
		for _, v := range members {
			if c.Head[v] != h {
				return fmt.Errorf("cluster: Members[%d] contains %d whose head is %d", h, v, c.Head[v])
			}
		}
	}
	return nil
}

// electionState is the per-node state during an election.
type electionState uint8

const (
	candidate electionState = iota
	head
	member
)

// Priority orders nodes during clusterhead election. Lower wins.
type Priority func(v int) (rank int, tiebreak int)

// LowestIDPriority is the paper's rule: smaller ID wins outright.
func LowestIDPriority(v int) (int, int) { return v, v }

// HighestDegreePriority prefers larger degree, breaking ties by lower ID —
// the highest-connectivity clustering variant used as an ablation.
func HighestDegreePriority(g *graph.Graph) Priority {
	return func(v int) (int, int) { return -g.Degree(v), v }
}

// LowestID runs the round-synchronous lowest-ID clustering.
func LowestID(g *graph.Graph) *Clustering {
	return Elect(g, LowestIDPriority)
}

// HighestDegree runs the round-synchronous highest-connectivity clustering.
func HighestDegree(g *graph.Graph) *Clustering {
	return Elect(g, HighestDegreePriority(g))
}

// Elect runs the generic round-synchronous clusterhead election under the
// given priority. In every round each candidate that beats all its
// candidate neighbors declares head; candidates hearing declarations join
// the best adjacent head. Each call uses a fresh workspace, so the result
// is independently allocated; hot replicate loops call Workspace.Elect to
// reuse buffers instead.
func Elect(g *graph.Graph, prio Priority) *Clustering {
	return NewWorkspace().Elect(g, prio)
}
