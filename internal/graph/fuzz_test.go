package graph

import (
	"testing"
)

// FuzzGraphInvariants drives graph construction from arbitrary byte
// strings interpreted as edge lists and checks structural invariants. Run
// with `go test -fuzz=FuzzGraphInvariants` for open-ended fuzzing; the
// seed corpus runs as a normal test.
func FuzzGraphInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 1})
	f.Add([]byte{0, 1})
	f.Add([]byte{})
	f.Add([]byte{9, 9, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 16
		g := New(n)
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		// Symmetry.
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					t.Fatalf("edge {%d,%d} not symmetric", u, v)
				}
			}
		}
		// Edge count consistency.
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(u)
		}
		if sum != 2*g.M() {
			t.Fatalf("degree sum %d != 2m %d", sum, 2*g.M())
		}
		// Components partition the nodes.
		seen := map[int]bool{}
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					t.Fatalf("node %d in two components", v)
				}
				seen[v] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("components cover %d of %d nodes", len(seen), n)
		}
		// BFS distances are consistent with connectivity.
		dist := g.BFS(0)
		if g.Connected() {
			for v, d := range dist {
				if d < 0 {
					t.Fatalf("connected graph with unreachable node %d", v)
				}
			}
		}
		// The full vertex set dominates; on connected graphs it is a CDS.
		all := map[int]bool{}
		for i := 0; i < n; i++ {
			all[i] = true
		}
		if !g.IsDominatingSet(all) {
			t.Fatal("full set must dominate")
		}
	})
}
