package graph

import (
	"testing"
)

// setTriple keeps one logical set in all three representations so the fuzz
// driver can apply every mutation to each and demand agreement.
type setTriple struct {
	b *Bitset
	s *SparseSet
	h *HybridSet
}

func newTriple(n int) *setTriple {
	return &setTriple{b: NewBitset(n), s: NewSparseSet(n), h: NewHybridSet(n)}
}

// agree fails the test unless the three representations hold exactly the
// same members in the same (ascending) iteration order.
func (tr *setTriple) agree(t *testing.T, tag string) {
	t.Helper()
	bm, sm, hm := tr.b.Members(), tr.s.Members(), tr.h.Members()
	if len(bm) != len(sm) || len(bm) != len(hm) {
		t.Fatalf("%s: member counts diverge: bitset %d sparse %d hybrid %d",
			tag, len(bm), len(sm), len(hm))
	}
	for i := range bm {
		if bm[i] != sm[i] || bm[i] != hm[i] {
			t.Fatalf("%s: members diverge at %d: bitset %d sparse %d hybrid %d",
				tag, i, bm[i], sm[i], hm[i])
		}
	}
	if c := tr.b.Count(); tr.s.Count() != c || tr.h.Count() != c {
		t.Fatalf("%s: counts diverge", tag)
	}
	if m := tr.b.Min(); tr.s.Min() != m || tr.h.Min() != m {
		t.Fatalf("%s: min diverges", tag)
	}
	if a := tr.b.Any(); tr.s.Any() != a || tr.h.Any() != a {
		t.Fatalf("%s: any diverges", tag)
	}
}

// FuzzSetRepsAgree drives randomized operation sequences against a Bitset,
// a SparseSet and a HybridSet in lockstep and demands identical members,
// iteration order, and query answers after every step — the property that
// lets the backbone kernels swap representations without changing a single
// greedy decision. Universe sizes up to ~300 cross the hybrid promotion
// threshold (64 + n/64), so the dense branch of HybridSet is exercised too.
// Run with `go test -fuzz=FuzzSetRepsAgree` for open-ended fuzzing; the
// seed corpus runs as a normal test.
func FuzzSetRepsAgree(f *testing.F) {
	f.Add([]byte{200, 0, 1, 0, 2, 0, 3, 1, 2, 3, 0})
	f.Add([]byte{50, 0, 0, 2, 0, 4, 1, 5, 0, 6, 0, 7, 0})
	f.Add([]byte{255, 2, 9, 2, 8, 3, 0, 4, 0, 5, 0, 8, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := int(data[0]) + 20 // 20..275: both sides of the promotion threshold
		a := newTriple(n)
		o := newTriple(n) // binary-op operand, mutated by its own ops
		for i := 1; i+1 < len(data); i += 2 {
			op, arg := data[i]%11, int(data[i+1])%n
			switch op {
			case 0: // bulk add: spread a run of members from one byte
				for k := 0; k < 8; k++ {
					v := (arg*7 + k*13) % n
					a.b.Add(v)
					a.s.Add(v)
					a.h.Add(v)
				}
			case 1:
				a.b.Remove(arg)
				a.s.Remove(arg)
				a.h.Remove(arg)
			case 2:
				for k := 0; k < 8; k++ {
					v := (arg*5 + k*11) % n
					o.b.Add(v)
					o.s.Add(v)
					o.h.Add(v)
				}
			case 3:
				a.b.Or(o.b)
				a.s.Or(o.s)
				a.h.Or(o.h)
			case 4:
				a.b.And(o.b)
				a.s.And(o.s)
				a.h.And(o.h)
			case 5:
				a.b.AndNot(o.b)
				a.s.AndNot(o.s)
				a.h.AndNot(o.h)
			case 6:
				a.b.Clear()
				a.s.Clear()
				a.h.Clear()
			case 7:
				a.b.CopyFrom(o.b)
				a.s.CopyFrom(o.s)
				a.h.CopyFrom(o.h)
			case 8: // cross-representation queries must agree
				if a.b.Has(arg) != a.s.Has(arg) || a.b.Has(arg) != a.h.Has(arg) {
					t.Fatalf("Has(%d) diverges", arg)
				}
				if a.b.Intersects(o.b) != a.s.Intersects(o.s) ||
					a.b.Intersects(o.b) != a.h.Intersects(o.h) {
					t.Fatal("Intersects diverges")
				}
				if c := a.b.IntersectionCount(o.b); a.s.IntersectionCount(o.s) != c ||
					a.h.IntersectionCount(o.h) != c {
					t.Fatal("IntersectionCount diverges")
				}
			case 9: // hybrid bridges: ToBitset/AddTo/CopyBitset round-trips
				if !a.h.ToBitset().Equal(a.b) {
					t.Fatal("ToBitset diverges from bitset")
				}
				rt := NewHybridSet(n)
				rt.CopyBitset(a.b)
				if !rt.Equal(a.h) {
					t.Fatal("CopyBitset round-trip diverges")
				}
			case 10: // reset to a fresh (same-capacity) universe
				a.b.Reset(n)
				a.s.Reset(n)
				a.h.Reset(n)
			}
			a.agree(t, "a")
			o.agree(t, "operand")
		}
	})
}

// FuzzGraphInvariants drives graph construction from arbitrary byte
// strings interpreted as edge lists and checks structural invariants. Run
// with `go test -fuzz=FuzzGraphInvariants` for open-ended fuzzing; the
// seed corpus runs as a normal test.
func FuzzGraphInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 1})
	f.Add([]byte{0, 1})
	f.Add([]byte{})
	f.Add([]byte{9, 9, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 16
		g := New(n)
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		// Symmetry.
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					t.Fatalf("edge {%d,%d} not symmetric", u, v)
				}
			}
		}
		// Edge count consistency.
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(u)
		}
		if sum != 2*g.M() {
			t.Fatalf("degree sum %d != 2m %d", sum, 2*g.M())
		}
		// Components partition the nodes.
		seen := map[int]bool{}
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					t.Fatalf("node %d in two components", v)
				}
				seen[v] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("components cover %d of %d nodes", len(seen), n)
		}
		// BFS distances are consistent with connectivity.
		dist := g.BFS(0)
		if g.Connected() {
			for v, d := range dist {
				if d < 0 {
					t.Fatalf("connected graph with unreachable node %d", v)
				}
			}
		}
		// The full vertex set dominates; on connected graphs it is a CDS.
		all := map[int]bool{}
		for i := 0; i < n; i++ {
			all[i] = true
		}
		if !g.IsDominatingSet(all) {
			t.Fatal("full set must dominate")
		}
	})
}
