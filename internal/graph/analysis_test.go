package graph

import (
	"reflect"
	"testing"
	"testing/quick"

	"clustercast/internal/rng"
)

func TestCutVerticesPath(t *testing.T) {
	g := pathGraph(5)
	cut := g.CutVertices()
	want := SetOf(1, 2, 3)
	if !reflect.DeepEqual(cut, want) {
		t.Fatalf("cut vertices = %v, want interior nodes", SortedMembers(cut))
	}
}

func TestCutVerticesCycleHasNone(t *testing.T) {
	g := cycleGraph(6)
	if cut := g.CutVertices(); len(cut) != 0 {
		t.Fatalf("cycle has no articulation points: %v", SortedMembers(cut))
	}
}

func TestCutVerticesBridgeGraph(t *testing.T) {
	// Two triangles joined through node 2—3: both endpoints of the bridge
	// are articulation points.
	g := FromEdges(6, [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {3, 5}, {4, 5},
	})
	cut := g.CutVertices()
	if !cut[2] || !cut[3] || len(cut) != 2 {
		t.Fatalf("cut vertices = %v, want {2,3}", SortedMembers(cut))
	}
}

func TestBridgesPathAndCycle(t *testing.T) {
	g := pathGraph(4)
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	if got := g.Bridges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("path bridges = %v, want all edges", got)
	}
	if got := cycleGraph(5).Bridges(); len(got) != 0 {
		t.Fatalf("cycle has no bridges: %v", got)
	}
}

func TestBridgesMixed(t *testing.T) {
	// Triangle with a pendant: only the pendant edge is a bridge.
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	want := [][2]int{{2, 3}}
	if got := g.Bridges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("bridges = %v, want %v", got, want)
	}
}

func TestTrianglesAndClustering(t *testing.T) {
	tri := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if tri.Triangles() != 1 {
		t.Fatalf("triangle count = %d", tri.Triangles())
	}
	if c := tri.ClusteringCoefficient(); c != 1 {
		t.Fatalf("triangle clustering = %g, want 1", c)
	}
	p := pathGraph(5)
	if p.Triangles() != 0 || p.ClusteringCoefficient() != 0 {
		t.Fatal("path has no triangles")
	}
	k4 := New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			k4.AddEdge(u, v)
		}
	}
	if k4.Triangles() != 4 {
		t.Fatalf("K4 triangles = %d, want 4", k4.Triangles())
	}
	if c := k4.ClusteringCoefficient(); c != 1 {
		t.Fatalf("K4 clustering = %g, want 1", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := starGraph(5)
	h := g.DegreeHistogram()
	// 4 leaves of degree 1, one center of degree 4.
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 {
		t.Fatalf("histogram covers %d nodes", total)
	}
}

// bruteCut recomputes articulation points by deletion + connectivity.
func bruteCut(g *Graph) map[int]bool {
	out := map[int]bool{}
	base := len(g.Components())
	for v := 0; v < g.N(); v++ {
		// Build g minus v.
		h := New(g.N())
		for _, e := range g.Edges() {
			if e[0] != v && e[1] != v {
				h.AddEdge(e[0], e[1])
			}
		}
		// Removing v leaves an isolated placeholder vertex; compare
		// component counts excluding it.
		comps := 0
		for _, c := range h.Components() {
			if len(c) == 1 && c[0] == v {
				continue
			}
			comps++
		}
		if g.Degree(v) > 0 && comps > base {
			out[v] = true
		}
	}
	return out
}

// Property: Tarjan articulation points match brute-force deletion.
func TestQuickCutVerticesMatchBruteForce(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%20 + 3
		r := rng.New(seed)
		g := randomConnectedGraph(r, n, n/2)
		return reflect.DeepEqual(g.CutVertices(), bruteCut(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// bruteBridges recomputes bridges by deletion + connectivity.
func bruteBridges(g *Graph) [][2]int {
	var out [][2]int
	base := len(g.Components())
	for _, e := range g.Edges() {
		h := New(g.N())
		for _, f := range g.Edges() {
			if f != e {
				h.AddEdge(f[0], f[1])
			}
		}
		if len(h.Components()) > base {
			out = append(out, e)
		}
	}
	return out
}

// Property: Tarjan bridges match brute-force deletion.
func TestQuickBridgesMatchBruteForce(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%18 + 3
		r := rng.New(seed)
		g := randomConnectedGraph(r, n, n/3)
		got := g.Bridges()
		want := bruteBridges(g)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCutVertices(b *testing.B) {
	r := rng.New(1)
	g := randomConnectedGraph(r, 500, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CutVertices()
	}
}
