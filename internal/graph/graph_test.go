package graph

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"clustercast/internal/rng"
)

// pathGraph returns the path 0-1-2-...-n−1.
func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// cycleGraph returns the n-cycle.
func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	g.AddEdge(n-1, 0)
	return g
}

// starGraph returns a star with center 0 and n−1 leaves.
func starGraph(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// randomConnectedGraph builds a random connected graph: a random spanning
// tree plus extra random edges.
func randomConnectedGraph(r *rng.Stream, n, extraEdges int) *Graph {
	g := New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[r.Intn(i)])
	}
	for k := 0; k < extraEdges; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing or not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge {0,2}")
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Neighbors(1) = %v, want sorted [0 2]", got)
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("degree wrong")
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop must panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate edge must panic")
		}
	}()
	g.AddEdge(1, 0)
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := New(2)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 7) {
		t.Fatal("out-of-range ids must report no edge")
	}
}

func TestDegreeStats(t *testing.T) {
	g := starGraph(5)
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if got, want := g.AvgDegree(), 2.0*4/5; got != want {
		t.Fatalf("AvgDegree = %g, want %g", got, want)
	}
	if New(0).AvgDegree() != 0 || New(0).MaxDegree() != 0 {
		t.Fatal("empty graph stats should be 0")
	}
}

func TestBFSOnPath(t *testing.T) {
	g := pathGraph(5)
	dist := g.BFS(0)
	if !reflect.DeepEqual(dist, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("BFS = %v", dist)
	}
	dist = g.BFS(2)
	if !reflect.DeepEqual(dist, []int{2, 1, 0, 1, 2}) {
		t.Fatalf("BFS(2) = %v", dist)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable nodes should have dist −1: %v", dist)
	}
}

func TestKHop(t *testing.T) {
	g := pathGraph(7)
	if got := g.KHop(3, 0); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("KHop(3,0) = %v", got)
	}
	if got := g.KHop(3, 1); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("KHop(3,1) = %v", got)
	}
	if got := g.KHop(3, 2); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("KHop(3,2) = %v", got)
	}
	if got := g.KHop(0, 100); len(got) != 7 {
		t.Fatalf("KHop with huge k should cover the component: %v", got)
	}
}

func TestKHopNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative k must panic")
		}
	}()
	pathGraph(3).KHop(0, -1)
}

func TestConnected(t *testing.T) {
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs are connected")
	}
	if !cycleGraph(6).Connected() {
		t.Fatal("cycle is connected")
	}
	g := New(3)
	g.AddEdge(0, 1)
	if g.Connected() {
		t.Fatal("graph with isolated node is not connected")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.Components()
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("Components = %v, want %v", comps, want)
	}
}

func TestDominatingSetPredicate(t *testing.T) {
	g := starGraph(5)
	if !g.IsDominatingSet(SetOf(0)) {
		t.Fatal("center dominates the star")
	}
	if g.IsDominatingSet(SetOf(1)) {
		t.Fatal("a single leaf does not dominate the star")
	}
	if !g.IsDominatingSet(SetOf(1, 2, 3, 4, 0)) {
		t.Fatal("full set always dominates")
	}
	p := pathGraph(6)
	if !p.IsDominatingSet(SetOf(1, 4)) {
		t.Fatal("{1,4} dominates the 6-path")
	}
	if p.IsDominatingSet(SetOf(1)) {
		t.Fatal("{1} misses nodes 3..5")
	}
}

func TestInducedSubgraphConnected(t *testing.T) {
	p := pathGraph(6)
	if !p.InducedSubgraphConnected(SetOf(1, 2, 3)) {
		t.Fatal("contiguous run of a path is connected")
	}
	if p.InducedSubgraphConnected(SetOf(1, 4)) {
		t.Fatal("{1,4} is disconnected in the path")
	}
	if !p.InducedSubgraphConnected(SetOf()) || !p.InducedSubgraphConnected(SetOf(2)) {
		t.Fatal("0- and 1-element sets are connected")
	}
	// Entries explicitly set to false must be ignored.
	set := map[int]bool{1: true, 2: true, 4: false}
	if !p.InducedSubgraphConnected(set) {
		t.Fatal("false entries must not count as members")
	}
}

func TestIsCDS(t *testing.T) {
	p := pathGraph(6)
	if !p.IsCDS(SetOf(1, 2, 3, 4)) {
		t.Fatal("{1,2,3,4} is a CDS of the 6-path")
	}
	if p.IsCDS(SetOf(1, 4)) {
		t.Fatal("{1,4} dominates but is not connected")
	}
	if p.IsCDS(SetOf(0, 1, 2)) {
		t.Fatal("{0,1,2} is connected but does not dominate node 4,5... wait 3 is adjacent to 2; 4,5 not dominated")
	}
}

func TestIsIndependentSet(t *testing.T) {
	p := pathGraph(5)
	if !p.IsIndependentSet(SetOf(0, 2, 4)) {
		t.Fatal("{0,2,4} is independent in the 5-path")
	}
	if p.IsIndependentSet(SetOf(0, 1)) {
		t.Fatal("{0,1} is not independent")
	}
	if !p.IsIndependentSet(SetOf()) {
		t.Fatal("empty set is independent")
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	p := pathGraph(5)
	if e := p.Eccentricity(0); e != 4 {
		t.Fatalf("Eccentricity(0) = %d", e)
	}
	if e := p.Eccentricity(2); e != 2 {
		t.Fatalf("Eccentricity(2) = %d", e)
	}
	if d := p.Diameter(); d != 4 {
		t.Fatalf("Diameter = %d", d)
	}
	if d := cycleGraph(6).Diameter(); d != 3 {
		t.Fatalf("cycle diameter = %d", d)
	}
	g := New(3)
	g.AddEdge(0, 1)
	if g.Diameter() != -1 || g.Eccentricity(0) != -1 {
		t.Fatal("disconnected graph must report −1")
	}
}

func TestShortestPath(t *testing.T) {
	p := pathGraph(5)
	if got := p.ShortestPath(0, 4); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("ShortestPath = %v", got)
	}
	if got := p.ShortestPath(2, 2); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("trivial path = %v", got)
	}
	g := New(3)
	g.AddEdge(0, 1)
	if got := g.ShortestPath(0, 2); got != nil {
		t.Fatalf("unreachable path should be nil, got %v", got)
	}
	// On a cycle the path length must be the BFS distance.
	c := cycleGraph(8)
	path := c.ShortestPath(0, 4)
	if len(path) != 5 {
		t.Fatalf("cycle shortest path length %d, want 5 nodes", len(path))
	}
	for i := 0; i+1 < len(path); i++ {
		if !c.HasEdge(path[i], path[i+1]) {
			t.Fatalf("path step %d-%d is not an edge", path[i], path[i+1])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := pathGraph(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("mutating the clone affected the original")
	}
	if g.M() != 3 || c.M() != 4 {
		t.Fatalf("edge counts wrong: %d, %d", g.M(), c.M())
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	want := [][2]int{{0, 1}, {1, 3}, {2, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestDOTDeterministic(t *testing.T) {
	g := pathGraph(3)
	d1 := g.DOT("g", SetOf(1))
	d2 := g.DOT("g", SetOf(1))
	if d1 != d2 {
		t.Fatal("DOT output must be deterministic")
	}
	if !strings.Contains(d1, "0 -- 1") || !strings.Contains(d1, "fillcolor=black") {
		t.Fatalf("DOT output missing expected content:\n%s", d1)
	}
}

func TestSetHelpers(t *testing.T) {
	s := SetOf(3, 1, 2)
	if SetSize(s) != 3 {
		t.Fatalf("SetSize = %d", SetSize(s))
	}
	s[5] = false
	if SetSize(s) != 3 {
		t.Fatal("false entries must not be counted")
	}
	if got := SortedMembers(s); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("SortedMembers = %v", got)
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if g.M() != 3 || !g.Connected() {
		t.Fatal("FromEdges built wrong graph")
	}
}

// Property: on random connected graphs, the full node set is a CDS and BFS
// distances satisfy the edge relaxation property.
func TestQuickRandomGraphInvariants(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%40 + 2
		r := rng.New(seed)
		g := randomConnectedGraph(r, n, n/2)
		all := map[int]bool{}
		for i := 0; i < n; i++ {
			all[i] = true
		}
		if !g.IsCDS(all) {
			return false
		}
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			d := dist[e[0]] - dist[e[1]]
			if d < -1 || d > 1 {
				return false
			}
		}
		return g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: KHop is monotone in k and consistent with BFS distances.
func TestQuickKHopMatchesBFS(t *testing.T) {
	f := func(seed uint64, sz uint8, kk uint8) bool {
		n := int(sz)%30 + 2
		k := int(kk) % 5
		r := rng.New(seed)
		g := randomConnectedGraph(r, n, n)
		v := r.Intn(n)
		dist := g.BFS(v)
		hop := g.KHop(v, k)
		inHop := map[int]bool{}
		for _, u := range hop {
			inHop[u] = true
		}
		for u := 0; u < n; u++ {
			want := dist[u] >= 0 && dist[u] <= k
			if inHop[u] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFS(b *testing.B) {
	r := rng.New(1)
	g := randomConnectedGraph(r, 1000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFS(i % 1000)
	}
}

func BenchmarkKHop3(b *testing.B) {
	r := rng.New(1)
	g := randomConnectedGraph(r, 1000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.KHop(i%1000, 3)
	}
}
