package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSparseSetBasics(t *testing.T) {
	s := NewSparseSet(100)
	if s.Any() || s.Count() != 0 || s.Min() != -1 {
		t.Fatal("new set not empty")
	}
	for _, v := range []int{5, 3, 99, 0, 3, 5} {
		s.Add(v)
	}
	if got := s.Members(); len(got) != 4 {
		t.Fatalf("members %v, want {0,3,5,99}", got)
	}
	if !sort.IntsAreSorted(s.Members()) {
		t.Fatalf("members not ascending: %v", s.Members())
	}
	if !s.Has(99) || s.Has(98) || s.Min() != 0 {
		t.Fatal("membership queries wrong")
	}
	s.Remove(0)
	s.Remove(42) // absent: no-op
	if s.Min() != 3 || s.Count() != 3 {
		t.Fatalf("after removal: min %d count %d", s.Min(), s.Count())
	}
	s.Clear()
	if s.Any() {
		t.Fatal("clear left members")
	}
}

func TestSparseSetAgainstMap(t *testing.T) {
	const n = 200
	r := rand.New(rand.NewSource(7))
	s := NewSparseSet(n)
	ref := map[int]bool{}
	for step := 0; step < 3000; step++ {
		v := r.Intn(n)
		if r.Intn(3) == 0 {
			s.Remove(v)
			delete(ref, v)
		} else {
			s.Add(v)
			ref[v] = true
		}
		if s.Count() != len(ref) {
			t.Fatalf("step %d: count %d want %d", step, s.Count(), len(ref))
		}
		if s.Has(v) != ref[v] {
			t.Fatalf("step %d: Has(%d) = %v want %v", step, v, s.Has(v), ref[v])
		}
	}
	want := make([]int, 0, len(ref))
	for v := range ref {
		want = append(want, v)
	}
	sort.Ints(want)
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("members %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("members %v want %v", got, want)
		}
	}
}

func TestSparseSetBinaryOps(t *testing.T) {
	n := 64
	a := SparseSetOf(n, 1, 3, 5, 7, 60)
	b := SparseSetOf(n, 3, 4, 5, 63)

	u := a.Clone()
	u.Or(b)
	if got, want := u.Members(), []int{1, 3, 4, 5, 7, 60, 63}; !equalInts(got, want) {
		t.Fatalf("or = %v, want %v", got, want)
	}
	i := a.Clone()
	i.And(b)
	if got, want := i.Members(), []int{3, 5}; !equalInts(got, want) {
		t.Fatalf("and = %v, want %v", got, want)
	}
	d := a.Clone()
	d.AndNot(b)
	if got, want := d.Members(), []int{1, 7, 60}; !equalInts(got, want) {
		t.Fatalf("andnot = %v, want %v", got, want)
	}
	if !a.Intersects(b) || a.IntersectionCount(b) != 2 {
		t.Fatal("intersection queries wrong")
	}
	if a.Equal(b) || !a.Equal(a.Clone()) {
		t.Fatal("equality wrong")
	}
}

func TestSparseSetCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on capacity mismatch")
		}
	}()
	NewSparseSet(10).Or(NewSparseSet(11))
}

func TestHybridSetPromotion(t *testing.T) {
	n := 256
	thr := hybridThreshold(n)
	h := NewHybridSet(n)
	for i := 0; i < thr; i++ { // count stays ≤ threshold: sparse throughout
		h.Add(i)
		if h.Dense() {
			t.Fatalf("promoted at %d members, threshold is %d", i+1, thr)
		}
	}
	h.Add(thr) // count exceeds the threshold
	if !h.Dense() {
		t.Fatalf("not promoted past threshold (%d members)", h.Count())
	}
	if h.Count() != thr+1 || !h.Has(0) || !h.Has(thr) {
		t.Fatal("promotion lost members")
	}
	// No demotion on removal; Reset drops back to sparse.
	h.Remove(0)
	if !h.Dense() {
		t.Fatal("demoted on removal")
	}
	h.Reset(n)
	if h.Dense() || h.Any() {
		t.Fatal("reset did not return to an empty sparse set")
	}
}

func TestHybridSetMixedRepOps(t *testing.T) {
	n := 512
	mk := func(dense bool, ids ...int) *HybridSet {
		h := HybridSetOf(n, ids...)
		if dense {
			h.promote()
		}
		if h.Dense() != dense {
			t.Fatalf("fixture density %v, want %v", h.Dense(), dense)
		}
		return h
	}
	for _, da := range []bool{false, true} {
		for _, db := range []bool{false, true} {
			a := mk(da, 1, 5, 9, 100)
			b := mk(db, 5, 6, 100, 511)
			u := a.Clone()
			u.Or(b)
			if got, want := u.Members(), []int{1, 5, 6, 9, 100, 511}; !equalInts(got, want) {
				t.Fatalf("dense=%v/%v: or = %v, want %v", da, db, got, want)
			}
			i := a.Clone()
			i.And(b)
			if got, want := i.Members(), []int{5, 100}; !equalInts(got, want) {
				t.Fatalf("dense=%v/%v: and = %v, want %v", da, db, got, want)
			}
			d := a.Clone()
			d.AndNot(b)
			if got, want := d.Members(), []int{1, 9}; !equalInts(got, want) {
				t.Fatalf("dense=%v/%v: andnot = %v, want %v", da, db, got, want)
			}
			if !a.Intersects(b) || a.IntersectionCount(b) != 2 {
				t.Fatalf("dense=%v/%v: intersection queries wrong", da, db)
			}
			if !a.Equal(mk(!da, 1, 5, 9, 100)) {
				t.Fatalf("dense=%v: cross-representation Equal failed", da)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
