package graph

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"clustercast/internal/rng"
)

func TestDigraphBasics(t *testing.T) {
	d := NewDigraph(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	if d.N() != 3 || d.M() != 2 {
		t.Fatalf("N=%d M=%d", d.N(), d.M())
	}
	if !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Fatal("directed edge must not be symmetric")
	}
	if got := d.Out(1); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("Out(1) = %v", got)
	}
	if got := d.In(1); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("In(1) = %v", got)
	}
}

func TestDigraphRejectsDuplicateAndLoop(t *testing.T) {
	d := NewDigraph(2)
	d.AddEdge(0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate must panic")
			}
		}()
		d.AddEdge(0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("self-loop must panic")
			}
		}()
		d.AddEdge(1, 1)
	}()
}

func TestRemoveEdge(t *testing.T) {
	d := NewDigraph(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	if !d.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge should report true for present edge")
	}
	if d.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge should report false for absent edge")
	}
	if d.M() != 1 || d.HasEdge(0, 1) {
		t.Fatal("edge not removed")
	}
	if len(d.In(1)) != 0 {
		t.Fatal("in-list not updated")
	}
}

func TestStronglyConnected(t *testing.T) {
	// Directed 3-cycle: strongly connected.
	c := NewDigraph(3)
	c.AddEdge(0, 1)
	c.AddEdge(1, 2)
	c.AddEdge(2, 0)
	if !c.StronglyConnected() {
		t.Fatal("3-cycle is strongly connected")
	}
	// Directed path: not strongly connected.
	p := NewDigraph(3)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	if p.StronglyConnected() {
		t.Fatal("directed path is not strongly connected")
	}
	if !NewDigraph(0).StronglyConnected() || !NewDigraph(1).StronglyConnected() {
		t.Fatal("trivial digraphs are strongly connected")
	}
}

func TestSCCs(t *testing.T) {
	// Two 2-cycles joined by a one-way edge, plus an isolated node.
	d := NewDigraph(5)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(3, 2)
	comps := d.SCCs()
	want := [][]int{{0, 1}, {2, 3}, {4}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("SCCs = %v, want %v", comps, want)
	}
}

func TestSCCsSingleComponent(t *testing.T) {
	d := NewDigraph(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(3, 0)
	comps := d.SCCs()
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Fatalf("SCCs = %v", comps)
	}
}

func TestDigraphClone(t *testing.T) {
	d := NewDigraph(3)
	d.AddEdge(0, 1)
	c := d.Clone()
	c.AddEdge(1, 2)
	if d.HasEdge(1, 2) {
		t.Fatal("clone mutation leaked into original")
	}
	c.RemoveEdge(0, 1)
	if !d.HasEdge(0, 1) {
		t.Fatal("clone removal leaked into original")
	}
}

func TestDigraphDOT(t *testing.T) {
	d := NewDigraph(2)
	d.AddEdge(0, 1)
	out := d.DOT("cg", map[int]string{0: "CH1"})
	if !strings.Contains(out, "0 -> 1") || !strings.Contains(out, `"CH1"`) {
		t.Fatalf("DOT output missing content:\n%s", out)
	}
}

// Property: SCCs partition the nodes, and a digraph is strongly connected
// iff it has exactly one SCC.
func TestQuickSCCPartition(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%20 + 1
		r := rng.New(seed)
		d := NewDigraph(n)
		edges := n * 2
		for i := 0; i < edges; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !d.HasEdge(u, v) {
				d.AddEdge(u, v)
			}
		}
		comps := d.SCCs()
		seen := map[int]bool{}
		total := 0
		for _, c := range comps {
			for _, v := range c {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		if total != n {
			return false
		}
		return d.StronglyConnected() == (len(comps) == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutual reachability within an SCC. For each component pick two
// members and check both can reach each other via BFS over out-edges.
func TestQuickSCCMutualReachability(t *testing.T) {
	reach := func(d *Digraph, src, dst int) bool {
		seen := map[int]bool{src: true}
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if u == dst {
				return true
			}
			for _, v := range d.Out(u) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		return false
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 12
		d := NewDigraph(n)
		for i := 0; i < 30; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !d.HasEdge(u, v) {
				d.AddEdge(u, v)
			}
		}
		for _, comp := range d.SCCs() {
			if len(comp) < 2 {
				continue
			}
			a, b := comp[0], comp[len(comp)-1]
			if !reach(d, a, b) || !reach(d, b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
