package graph

import "sort"

// SparseSet is a set of small non-negative integers (node IDs) stored as a
// sorted slice of members. It carries the same operation surface as Bitset
// but costs O(members), not O(capacity/64 words), per operation: for the
// neighborhood-sized sets of the backbone pipeline (|set| ≈ degree or the
// number of nearby clusterheads) that is the difference between O(deg) and
// Θ(n) work per clusterhead at 10k–100k nodes.
//
// Members are kept strictly ascending, so iteration order matches Bitset's
// and the greedy selections' "lowest ID first" determinism is preserved.
//
// All binary operations require operands created with the same capacity.
// The zero value is an empty set of capacity 0; use NewSparseSet.
type SparseSet struct {
	ids []int // strictly ascending members
	n   int   // universe capacity
	tmp []int // merge scratch, swapped with ids by Or
}

// NewSparseSet returns an empty set over the universe 0..n−1.
func NewSparseSet(n int) *SparseSet {
	if n < 0 {
		panic("graph: negative sparse set capacity")
	}
	return &SparseSet{n: n}
}

// SparseSetOf returns a set over 0..n−1 holding the given ids.
func SparseSetOf(n int, ids ...int) *SparseSet {
	s := NewSparseSet(n)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Cap returns the capacity of the universe (n in NewSparseSet).
func (s *SparseSet) Cap() int { return s.n }

// Reset re-capacities s to the universe 0..n−1 and empties it, keeping the
// member storage for reuse. Always O(1).
func (s *SparseSet) Reset(n int) {
	if n < 0 {
		panic("graph: negative sparse set capacity")
	}
	s.ids = s.ids[:0]
	s.n = n
}

// find returns the insertion index of i in the sorted member slice.
func (s *SparseSet) find(i int) int {
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ids[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Add inserts i into the set. Appends at the tail are O(1), so filling a
// set in ascending order costs O(members) total.
func (s *SparseSet) Add(i int) {
	if k := len(s.ids); k == 0 || i > s.ids[k-1] {
		s.ids = append(s.ids, i)
		return
	}
	at := s.find(i)
	if at < len(s.ids) && s.ids[at] == i {
		return
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[at+1:], s.ids[at:])
	s.ids[at] = i
}

// Remove deletes i from the set.
func (s *SparseSet) Remove(i int) {
	at := s.find(i)
	if at < len(s.ids) && s.ids[at] == i {
		s.ids = append(s.ids[:at], s.ids[at+1:]...)
	}
}

// Has reports whether i is a member. Out-of-range ids are never members.
func (s *SparseSet) Has(i int) bool {
	at := s.find(i)
	return at < len(s.ids) && s.ids[at] == i
}

// Count returns the number of members.
func (s *SparseSet) Count() int { return len(s.ids) }

// Any reports whether the set is non-empty.
func (s *SparseSet) Any() bool { return len(s.ids) > 0 }

// Min returns the smallest member, or −1 when the set is empty.
func (s *SparseSet) Min() int {
	if len(s.ids) == 0 {
		return -1
	}
	return s.ids[0]
}

// Clear empties the set in place. Always O(1).
func (s *SparseSet) Clear() { s.ids = s.ids[:0] }

// CopyFrom overwrites s with the contents of o (same capacity required).
func (s *SparseSet) CopyFrom(o *SparseSet) {
	s.check(o)
	s.ids = append(s.ids[:0], o.ids...)
}

// Clone returns an independent copy of s.
func (s *SparseSet) Clone() *SparseSet {
	return &SparseSet{ids: append([]int(nil), s.ids...), n: s.n}
}

// Or adds every member of o to s (set union, in place): one linear merge
// into the swap buffer, O(|s| + |o|).
func (s *SparseSet) Or(o *SparseSet) {
	s.check(o)
	if len(o.ids) == 0 {
		return
	}
	if len(s.ids) == 0 {
		s.ids = append(s.ids[:0], o.ids...)
		return
	}
	out := s.tmp[:0]
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		a, b := s.ids[i], o.ids[j]
		switch {
		case a < b:
			out = append(out, a)
			i++
		case a > b:
			out = append(out, b)
			j++
		default:
			out = append(out, a)
			i++
			j++
		}
	}
	out = append(out, s.ids[i:]...)
	out = append(out, o.ids[j:]...)
	s.tmp = s.ids[:0]
	s.ids = out
}

// And keeps only members shared with o (set intersection, in place).
func (s *SparseSet) And(o *SparseSet) {
	s.check(o)
	out := s.ids[:0]
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		a, b := s.ids[i], o.ids[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			out = append(out, a)
			i++
			j++
		}
	}
	s.ids = out
}

// AndNot removes every member of o from s (set difference, in place).
func (s *SparseSet) AndNot(o *SparseSet) {
	s.check(o)
	if len(o.ids) == 0 || len(s.ids) == 0 {
		return
	}
	out := s.ids[:0]
	j := 0
	for _, a := range s.ids {
		for j < len(o.ids) && o.ids[j] < a {
			j++
		}
		if j < len(o.ids) && o.ids[j] == a {
			continue
		}
		out = append(out, a)
	}
	s.ids = out
}

// Intersects reports whether s and o share a member.
func (s *SparseSet) Intersects(o *SparseSet) bool {
	s.check(o)
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		a, b := s.ids[i], o.ids[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ o| without materializing the
// intersection.
func (s *SparseSet) IntersectionCount(o *SparseSet) int {
	s.check(o)
	c := 0
	i, j := 0, 0
	for i < len(s.ids) && j < len(o.ids) {
		a, b := s.ids[i], o.ids[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// Equal reports whether s and o hold exactly the same members.
func (s *SparseSet) Equal(o *SparseSet) bool {
	if s.n != o.n || len(s.ids) != len(o.ids) {
		return false
	}
	for i, v := range s.ids {
		if o.ids[i] != v {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in ascending order.
func (s *SparseSet) ForEach(fn func(i int)) {
	for _, v := range s.ids {
		fn(v)
	}
}

// Members returns the members in ascending order as a fresh slice.
func (s *SparseSet) Members() []int {
	return append([]int(nil), s.ids...)
}

// AppendMembers appends the members in ascending order to dst and returns
// the extended slice.
func (s *SparseSet) AppendMembers(dst []int) []int {
	return append(dst, s.ids...)
}

// sorted is a debug helper: it verifies the strictly-ascending invariant.
func (s *SparseSet) sorted() bool { return sort.IntsAreSorted(s.ids) }

// check panics on capacity mismatch, mirroring Bitset.check.
func (s *SparseSet) check(o *SparseSet) {
	if s.n != o.n {
		panic("graph: sparse set capacity mismatch")
	}
}
