package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers (node IDs)
// backed by a []uint64. It is the dense-ID replacement for map[int]bool in
// the simulator's hot paths: membership, union, difference and popcount all
// run word-at-a-time, and iteration visits members in ascending order with
// no sorting or hashing.
//
// Every word at index ≥ hi is zero: hi is a touched-word high-water mark
// maintained by the mutating operations, so clearing, scanning and copying
// a set cost O(touched words), not O(capacity words). A nearly empty set
// over a 100k-node universe resets in a handful of word writes instead of
// 1563 — the difference between O(deg) and Θ(n) per reset at scale.
//
// All binary operations require operands created with the same capacity.
// The zero value is an empty set of capacity 0; use NewBitset.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
	hi    int // words[hi:] are all zero
}

// NewBitset returns an empty set over the universe 0..n−1.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("graph: negative bitset capacity")
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// BitsetOf returns a set over 0..n−1 holding the given ids.
func BitsetOf(n int, ids ...int) *Bitset {
	b := NewBitset(n)
	for _, id := range ids {
		b.Add(id)
	}
	return b
}

// BitsetFromSet converts a membership map over 0..n−1.
func BitsetFromSet(n int, set map[int]bool) *Bitset {
	b := NewBitset(n)
	for v, in := range set {
		if in {
			b.Add(v)
		}
	}
	return b
}

// Cap returns the capacity of the universe (n in NewBitset).
func (b *Bitset) Cap() int { return b.n }

// Reset re-capacities b to the universe 0..n−1 and empties it, reusing the
// word storage when it suffices. It is the workspace-reuse companion of
// NewBitset: a bitset owned by a per-worker workspace is Reset at the start
// of each replicate, so steady-state replicates allocate nothing even when
// the swept network size changes between calls. Only words up to the
// high-water mark are zeroed, so resetting a sparsely used set is O(touched
// words) regardless of capacity.
func (b *Bitset) Reset(n int) {
	if n < 0 {
		panic("graph: negative bitset capacity")
	}
	words := (n + 63) / 64
	if cap(b.words) < words {
		b.words = make([]uint64, words)
		b.n = n
		b.hi = 0
		return
	}
	// Zero through the high-water mark over the full-capacity view: a
	// previous Reset may have shrunk the visible slice below hi's words,
	// but the dirty words still sit in the shared backing array.
	full := b.words[:cap(b.words)]
	for i := 0; i < b.hi; i++ {
		full[i] = 0
	}
	b.words = full[:words]
	b.n = n
	b.hi = 0
}

// Add inserts i into the set.
func (b *Bitset) Add(i int) {
	w := i >> 6
	b.words[w] |= 1 << (uint(i) & 63)
	if w >= b.hi {
		b.hi = w + 1
	}
}

// Remove deletes i from the set.
func (b *Bitset) Remove(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is a member. Out-of-range ids are never members.
func (b *Bitset) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of members.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words[:b.hi] {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether the set is non-empty.
func (b *Bitset) Any() bool {
	for _, w := range b.words[:b.hi] {
		if w != 0 {
			return true
		}
	}
	return false
}

// Min returns the smallest member, or −1 when the set is empty. It is the
// deterministic "lowest ID first" iteration anchor of the greedy selection.
func (b *Bitset) Min() int {
	for i, w := range b.words[:b.hi] {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Clear empties the set in place, zeroing only the touched words.
func (b *Bitset) Clear() {
	words := b.words[:b.hi]
	for i := range words {
		words[i] = 0
	}
	b.hi = 0
}

// CopyFrom overwrites b with the contents of o (same capacity required).
func (b *Bitset) CopyFrom(o *Bitset) {
	b.check(o)
	copy(b.words[:o.hi], o.words[:o.hi])
	for i := o.hi; i < b.hi; i++ {
		b.words[i] = 0
	}
	b.hi = o.hi
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n, hi: b.hi}
	copy(c.words, b.words)
	return c
}

// Or adds every member of o to b (set union, in place).
func (b *Bitset) Or(o *Bitset) {
	b.check(o)
	for i, w := range o.words[:o.hi] {
		b.words[i] |= w
	}
	if o.hi > b.hi {
		b.hi = o.hi
	}
}

// And keeps only members shared with o (set intersection, in place).
func (b *Bitset) And(o *Bitset) {
	b.check(o)
	lo := b.hi
	if o.hi < lo {
		lo = o.hi
	}
	for i := 0; i < lo; i++ {
		b.words[i] &= o.words[i]
	}
	for i := lo; i < b.hi; i++ {
		b.words[i] = 0
	}
	b.hi = lo
}

// AndNot removes every member of o from b (set difference, in place).
func (b *Bitset) AndNot(o *Bitset) {
	b.check(o)
	lo := b.hi
	if o.hi < lo {
		lo = o.hi
	}
	for i := 0; i < lo; i++ {
		b.words[i] &^= o.words[i]
	}
}

// Intersects reports whether b and o share a member.
func (b *Bitset) Intersects(o *Bitset) bool {
	b.check(o)
	lo := b.hi
	if o.hi < lo {
		lo = o.hi
	}
	for i := 0; i < lo; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |b ∩ o| without materializing the
// intersection.
func (b *Bitset) IntersectionCount(o *Bitset) int {
	b.check(o)
	lo := b.hi
	if o.hi < lo {
		lo = o.hi
	}
	c := 0
	for i := 0; i < lo; i++ {
		c += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return c
}

// Equal reports whether b and o hold exactly the same members.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	// hi is a watermark, not a tight bound (Remove does not lower it), so
	// compare through the larger of the two marks.
	top := b.hi
	if o.hi > top {
		top = o.hi
	}
	for i := 0; i < top; i++ {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words[:b.hi] {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Members returns the members in ascending order as a fresh slice.
func (b *Bitset) Members() []int {
	return b.AppendMembers(make([]int, 0, b.Count()))
}

// AppendMembers appends the members in ascending order to dst and returns
// the extended slice (zero allocations when dst has capacity).
func (b *Bitset) AppendMembers(dst []int) []int {
	for wi, w := range b.words[:b.hi] {
		for w != 0 {
			dst = append(dst, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// ToSet converts to a membership map (for the map-based reporting APIs).
func (b *Bitset) ToSet() map[int]bool {
	m := make(map[int]bool, b.Count())
	b.ForEach(func(i int) { m[i] = true })
	return m
}

// check panics on capacity mismatch: silently operating on differently
// sized universes is always a caller bug.
func (b *Bitset) check(o *Bitset) {
	if b.n != o.n {
		panic("graph: bitset capacity mismatch")
	}
}
