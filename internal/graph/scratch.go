package graph

import "sync"

// Scratch is reusable traversal workspace: an epoch-stamped visited array
// and a preallocated frontier queue. Reusing one Scratch across traversals
// makes BFS, connectivity checks and k-hop queries allocation-free in
// steady state — resetting costs one epoch increment, not an O(n) clear.
//
// A Scratch is not safe for concurrent use; use one per goroutine (the
// package-level pool hands them out cheaply).
type Scratch struct {
	mark  []uint32 // mark[v] == epoch ⇔ v visited in the current traversal
	epoch uint32
	queue []int
	dist  []int // per-node hop counts for BFSWith
}

// NewScratch returns a scratch sized for graphs of up to n nodes. It grows
// on demand, so sizing is only a preallocation hint.
func NewScratch(n int) *Scratch {
	return &Scratch{
		mark:  make([]uint32, n),
		queue: make([]int, 0, n),
		dist:  make([]int, n),
	}
}

// begin readies the scratch for a traversal over n nodes and returns the
// epoch stamp to mark visited nodes with.
func (s *Scratch) begin(n int) uint32 {
	if len(s.mark) < n {
		grown := make([]uint32, n)
		copy(grown, s.mark)
		s.mark = grown
		s.dist = make([]int, n)
	}
	s.epoch++
	if s.epoch == 0 {
		// uint32 wraparound: stale stamps could collide with epoch 0, so do
		// the one O(n) clear every 2³² traversals.
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	return s.epoch
}

// visit marks v and enqueues it; reports false when v was already visited.
func (s *Scratch) visit(v int, epoch uint32) bool {
	if s.mark[v] == epoch {
		return false
	}
	s.mark[v] = epoch
	s.queue = append(s.queue, v)
	return true
}

// scratchPool recycles Scratch instances for the convenience methods
// (Connected, Eccentricity, …) so steady-state measurement loops allocate
// nothing even without threading a Scratch explicitly.
var scratchPool = sync.Pool{New: func() any { return NewScratch(0) }}

// getScratch borrows a pooled scratch; release it with putScratch.
func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }

// ConnectedWith reports whether g is connected, reusing the scratch.
func (g *Graph) ConnectedWith(s *Scratch) bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	epoch := s.begin(n)
	s.visit(0, epoch)
	seen := 1
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		for _, v := range g.Neighbors(u) {
			if s.visit(v, epoch) {
				seen++
			}
		}
	}
	return seen == n
}

// BFSWith runs a breadth-first search from src reusing the scratch and
// appends (node, dist) pairs in visit order via fn. It allocates nothing.
func (g *Graph) BFSWith(s *Scratch, src int, fn func(v, dist int)) {
	epoch := s.begin(g.N())
	s.visit(src, epoch)
	s.dist[src] = 0
	fn(src, 0)
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		du := s.dist[u]
		for _, v := range g.Neighbors(u) {
			if s.visit(v, epoch) {
				s.dist[v] = du + 1
				fn(v, du+1)
			}
		}
	}
}

// KHopWith appends the nodes within k hops of v (including v) to dst in
// visit order and returns the extended slice, reusing the scratch. Unlike
// KHop the result is not sorted; callers needing ascending order sort the
// returned slice themselves.
func (g *Graph) KHopWith(s *Scratch, v, k int, dst []int) []int {
	if k < 0 {
		panic("graph: negative k")
	}
	epoch := s.begin(g.N())
	s.visit(v, epoch)
	s.dist[v] = 0
	dst = append(dst, v)
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		du := s.dist[u]
		if du == k {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if s.visit(w, epoch) {
				s.dist[w] = du + 1
				dst = append(dst, w)
			}
		}
	}
	return dst
}

// InducedConnected reports whether the subgraph induced by the members of
// set is connected (sets of size 0 or 1 count as connected), reusing the
// scratch. It is the connectivity half of the CDS predicate.
func (g *Graph) InducedConnected(s *Scratch, set *Bitset) bool {
	count := set.Count()
	if count <= 1 {
		return true
	}
	epoch := s.begin(g.N())
	s.visit(set.Min(), epoch)
	seen := 1
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		for _, v := range g.Neighbors(u) {
			if set.Has(v) && s.visit(v, epoch) {
				seen++
			}
		}
	}
	return seen == count
}
