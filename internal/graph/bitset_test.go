package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Any() || b.Count() != 0 || b.Min() != -1 {
		t.Fatal("fresh bitset must be empty")
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Add(i)
	}
	if got := b.Members(); !reflect.DeepEqual(got, []int{0, 63, 64, 129}) {
		t.Fatalf("Members = %v", got)
	}
	if b.Count() != 4 || !b.Any() || b.Min() != 0 {
		t.Fatalf("Count=%d Min=%d", b.Count(), b.Min())
	}
	if !b.Has(64) || b.Has(65) || b.Has(-1) || b.Has(500) {
		t.Fatal("Has wrong")
	}
	b.Remove(0)
	b.Remove(64)
	if got := b.Members(); !reflect.DeepEqual(got, []int{63, 129}) {
		t.Fatalf("after Remove: %v", got)
	}
	if b.Min() != 63 {
		t.Fatalf("Min = %d", b.Min())
	}
	b.Clear()
	if b.Any() {
		t.Fatal("Clear left members")
	}
}

func TestBitsetSetOps(t *testing.T) {
	n := 200
	a := BitsetOf(n, 1, 5, 100, 150)
	b := BitsetOf(n, 5, 99, 150, 199)

	u := a.Clone()
	u.Or(b)
	if got := u.Members(); !reflect.DeepEqual(got, []int{1, 5, 99, 100, 150, 199}) {
		t.Fatalf("Or = %v", got)
	}
	i := a.Clone()
	i.And(b)
	if got := i.Members(); !reflect.DeepEqual(got, []int{5, 150}) {
		t.Fatalf("And = %v", got)
	}
	d := a.Clone()
	d.AndNot(b)
	if got := d.Members(); !reflect.DeepEqual(got, []int{1, 100}) {
		t.Fatalf("AndNot = %v", got)
	}
	if !a.Intersects(b) || d.Intersects(i) {
		t.Fatal("Intersects wrong")
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Fatal("Equal wrong")
	}
	c := NewBitset(n)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Fatal("CopyFrom wrong")
	}
}

func TestBitsetAgainstMap(t *testing.T) {
	// Randomized cross-check of every operation against map semantics.
	r := rand.New(rand.NewSource(7))
	const n = 300
	for trial := 0; trial < 50; trial++ {
		ma, mb := map[int]bool{}, map[int]bool{}
		ba, bb := NewBitset(n), NewBitset(n)
		for k := 0; k < 120; k++ {
			v := r.Intn(n)
			if r.Intn(2) == 0 {
				ma[v] = true
				ba.Add(v)
			} else {
				mb[v] = true
				bb.Add(v)
			}
		}
		want := func(m map[int]bool) []int {
			out := []int{}
			for v := range m {
				out = append(out, v)
			}
			sort.Ints(out)
			return out
		}
		if got := ba.AppendMembers(nil); !reflect.DeepEqual(got, want(ma)) {
			t.Fatalf("trial %d: members %v != %v", trial, got, want(ma))
		}
		if ba.Count() != len(ma) {
			t.Fatalf("trial %d: count", trial)
		}
		diff := ba.Clone()
		diff.AndNot(bb)
		wantDiff := []int{}
		for v := range ma {
			if !mb[v] {
				wantDiff = append(wantDiff, v)
			}
		}
		sort.Ints(wantDiff)
		if got := diff.Members(); !reflect.DeepEqual(got, wantDiff) {
			t.Fatalf("trial %d: andnot %v != %v", trial, got, wantDiff)
		}
		if set := ba.ToSet(); !reflect.DeepEqual(set, ma) {
			t.Fatalf("trial %d: ToSet mismatch", trial)
		}
		if got := BitsetFromSet(n, ma); !got.Equal(ba) {
			t.Fatalf("trial %d: BitsetFromSet mismatch", trial)
		}
	}
}

func TestBitsetForEachOrder(t *testing.T) {
	b := BitsetOf(70, 69, 3, 3, 0, 64)
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int{0, 3, 64, 69}) {
		t.Fatalf("ForEach order = %v", got)
	}
}

func TestBitsetCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	NewBitset(10).Or(NewBitset(11))
}

func TestScratchTraversals(t *testing.T) {
	// Path 0-1-2-3 plus isolated 4.
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	s := NewScratch(0) // deliberately undersized: must grow on demand
	if g.ConnectedWith(s) {
		t.Fatal("disconnected graph reported connected")
	}
	conn := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	for i := 0; i < 3; i++ { // reuse across traversals
		if !conn.ConnectedWith(s) {
			t.Fatal("connected graph reported disconnected")
		}
	}
	dist := map[int]int{}
	conn.BFSWith(s, 0, func(v, d int) { dist[v] = d })
	if !reflect.DeepEqual(dist, map[int]int{0: 0, 1: 1, 2: 2, 3: 3}) {
		t.Fatalf("BFSWith dist = %v", dist)
	}
	hop := conn.KHopWith(s, 0, 2, nil)
	sort.Ints(hop)
	if !reflect.DeepEqual(hop, []int{0, 1, 2}) {
		t.Fatalf("KHopWith = %v", hop)
	}
	if !reflect.DeepEqual(conn.KHop(0, 2), []int{0, 1, 2}) {
		t.Fatalf("KHop disagreement")
	}
}

func TestScratchMatchesBFS(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := NewScratch(0)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(40)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.12 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := FromEdges(n, edges)
		want := g.BFS(0)
		got := make([]int, n)
		for i := range got {
			got[i] = -1
		}
		g.BFSWith(s, 0, func(v, d int) { got[v] = d })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: BFSWith %v != BFS %v", trial, got, want)
		}
		wantConn := true
		for _, d := range want {
			if d == -1 {
				wantConn = false
			}
		}
		if g.ConnectedWith(s) != wantConn {
			t.Fatalf("trial %d: connectivity mismatch", trial)
		}
		for v := 0; v < n; v++ {
			k := r.Intn(4)
			hop := g.KHopWith(s, v, k, nil)
			sort.Ints(hop)
			if !reflect.DeepEqual(hop, g.KHop(v, k)) {
				t.Fatalf("trial %d: KHopWith(%d,%d) mismatch", trial, v, k)
			}
		}
	}
}

func TestInducedConnectedMatchesMapVersion(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	s := NewScratch(0)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(30)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.15 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := FromEdges(n, edges)
		set := map[int]bool{}
		bs := NewBitset(n)
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				set[v] = true
				bs.Add(v)
			}
		}
		// Independent naive oracles (the pre-bitset semantics).
		naiveDominating := func() bool {
			for u := 0; u < n; u++ {
				if set[u] {
					continue
				}
				ok := false
				for _, v := range g.Neighbors(u) {
					if set[v] {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
			return true
		}
		naiveInduced := func() bool {
			members := SortedMembers(set)
			if len(members) <= 1 {
				return true
			}
			seen := map[int]bool{members[0]: true}
			queue := []int{members[0]}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range g.Neighbors(u) {
					if set[v] && !seen[v] {
						seen[v] = true
						queue = append(queue, v)
					}
				}
			}
			return len(seen) == len(members)
		}
		naiveIndependent := func() bool {
			for u := range set {
				for _, v := range g.Neighbors(u) {
					if set[v] {
						return false
					}
				}
			}
			return true
		}
		if got, want := g.InducedConnected(s, bs), naiveInduced(); got != want {
			t.Fatalf("trial %d: induced connectivity %v != %v for %v", trial, got, want, set)
		}
		if g.InducedSubgraphConnected(set) != naiveInduced() {
			t.Fatalf("trial %d: map induced connectivity mismatch", trial)
		}
		if got, want := g.IsDominatingSetBits(bs), naiveDominating(); got != want {
			t.Fatalf("trial %d: dominating %v != %v", trial, got, want)
		}
		if got, want := g.IsIndependentSetBits(bs), naiveIndependent(); got != want {
			t.Fatalf("trial %d: independence %v != %v", trial, got, want)
		}
		if got, want := g.IsCDSBits(bs), naiveDominating() && naiveInduced(); got != want {
			t.Fatalf("trial %d: CDS %v != %v", trial, got, want)
		}
	}
}
