package graph

import "testing"

func TestBitPlanesBasics(t *testing.T) {
	b := NewBitPlanes(5)
	if b.N() != 5 {
		t.Fatalf("N = %d", b.N())
	}
	b.Or(2, 1<<7|1<<63)
	b.SetWord(4, 1<<7)
	if !b.Has(2, 7) || !b.Has(2, 63) || b.Has(2, 8) {
		t.Fatal("Has after Or wrong")
	}
	if got := b.LaneCountAt(7); got != 2 {
		t.Fatalf("LaneCountAt(7) = %d, want 2", got)
	}
	if got := b.LaneCountAt(63); got != 1 {
		t.Fatalf("LaneCountAt(63) = %d, want 1", got)
	}
	b.AndNot(2, 1<<63)
	if b.Has(2, 63) {
		t.Fatal("AndNot did not clear lane")
	}
}

func TestBitPlanesResetReusesAndClears(t *testing.T) {
	b := NewBitPlanes(8)
	b.Fill(^uint64(0))
	b.Reset(4)
	for v := 0; v < 4; v++ {
		if b.Word(v) != 0 {
			t.Fatalf("word %d not cleared: %#x", v, b.Word(v))
		}
	}
	// Growing back must not resurrect stale lanes.
	b.Reset(8)
	for v := 0; v < 8; v++ {
		if b.Word(v) != 0 {
			t.Fatalf("grown word %d not cleared: %#x", v, b.Word(v))
		}
	}
}

func TestBitPlanesCounts(t *testing.T) {
	b := NewBitPlanes(6)
	b.Or(0, 1<<3)
	b.Or(1, 1<<3|1<<5)
	b.Or(5, 1<<3)
	var counts [LaneCount]int
	b.Counts(&counts)
	if counts[3] != 3 || counts[5] != 1 || counts[0] != 0 {
		t.Fatalf("counts = lane3:%d lane5:%d lane0:%d", counts[3], counts[5], counts[0])
	}
}

func TestBitPlanesLaneBitset(t *testing.T) {
	b := NewBitPlanes(70)
	b.Or(0, 1<<9)
	b.Or(69, 1<<9)
	b.Or(33, 1<<8)
	var s Bitset
	b.LaneBitset(9, &s)
	if !s.Has(0) || !s.Has(69) || s.Has(33) || s.Count() != 2 {
		t.Fatalf("lane 9 bitset wrong: members %v", s.Members())
	}
	b.LaneBitset(8, &s)
	if !s.Has(33) || s.Count() != 1 {
		t.Fatalf("lane 8 bitset wrong: members %v", s.Members())
	}
}
