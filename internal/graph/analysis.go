package graph

import "sort"

// CutVertices returns the articulation points of g — nodes whose removal
// disconnects their component — using Tarjan's low-link algorithm
// (iterative). In a MANET these are the single points of failure of the
// topology; a backbone that concentrates on them is fragile.
func (g *Graph) CutVertices() map[int]bool {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	cut := make(map[int]bool)
	timer := 0

	type frame struct {
		v  int
		ei int
	}
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		rootChildren := 0
		stack := []frame{{v: s}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(g.Neighbors(f.v)) {
				w := g.Neighbors(f.v)[f.ei]
				f.ei++
				if disc[w] == -1 {
					parent[w] = f.v
					if f.v == s {
						rootChildren++
					}
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, frame{v: w})
				} else if w != parent[f.v] && disc[w] < low[f.v] {
					low[f.v] = disc[w]
				}
				continue
			}
			// Post-order: fold v's low into its parent and test the
			// articulation condition.
			v := f.v
			stack = stack[:len(stack)-1]
			if p := parent[v]; p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if p != s && low[v] >= disc[p] {
					cut[p] = true
				}
			}
		}
		if rootChildren >= 2 {
			cut[s] = true
		}
	}
	return cut
}

// Bridges returns the bridge edges of g (as ordered pairs u < v, sorted):
// edges whose removal disconnects their component.
func (g *Graph) Bridges() [][2]int {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	var bridges [][2]int
	timer := 0

	type frame struct {
		v  int
		ei int
		// skippedParentEdge tracks one parallel-free parent edge skip (the
		// graph is simple, so exactly one adjacency entry points back).
		skippedParentEdge bool
	}
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{v: s}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(g.Neighbors(f.v)) {
				w := g.Neighbors(f.v)[f.ei]
				f.ei++
				if w == parent[f.v] && !f.skippedParentEdge {
					f.skippedParentEdge = true
					continue
				}
				if disc[w] == -1 {
					parent[w] = f.v
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, frame{v: w})
				} else if disc[w] < low[f.v] {
					low[f.v] = disc[w]
				}
				continue
			}
			v := f.v
			stack = stack[:len(stack)-1]
			if p := parent[v]; p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] > disc[p] {
					a, b := p, v
					if a > b {
						a, b = b, a
					}
					bridges = append(bridges, [2]int{a, b})
				}
			}
		}
	}
	sort.Slice(bridges, func(i, j int) bool {
		if bridges[i][0] != bridges[j][0] {
			return bridges[i][0] < bridges[j][0]
		}
		return bridges[i][1] < bridges[j][1]
	})
	return bridges
}

// Triangles returns the number of triangles in g.
func (g *Graph) Triangles() int {
	count := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w > v && g.HasEdge(u, w) {
					count++
				}
			}
		}
	}
	return count
}

// ClusteringCoefficient returns the global clustering coefficient of g:
// 3·triangles / number of connected (open or closed) triples. Unit disk
// graphs are strongly clustered (≈ 0.58 in theory for dense UDGs), far
// above the ~d/n of an Erdős–Rényi graph — one reason MANET broadcast
// redundancy is so high.
func (g *Graph) ClusteringCoefficient() float64 {
	triples := 0
	for v := 0; v < g.N(); v++ {
		d := len(g.Neighbors(v))
		triples += d * (d - 1) / 2
	}
	if triples == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(triples)
}

// DegreeHistogram returns counts[k] = number of nodes with degree k.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		counts[len(g.Neighbors(v))]++
	}
	return counts
}
