package graph

import "math/bits"

// LaneCount is the replicate-lane width of the bit-parallel engines: one
// machine word advances 64 replicates at a time.
const LaneCount = 64

// BitPlanes holds one bit-plane of per-node state per replicate lane,
// transposed from the per-node bitsets of the scalar engines: node v's
// uint64 word carries bit r for replicate r. Where a scalar broadcast run
// keeps "covered" as one bit per node, a batch run keeps 64 such planes —
// the same []uint64 storage, indexed by node instead of by word — so the
// transmit/receive/suppress kernels advance all 64 replicates with ordinary
// word operations.
//
// Like the dense workspaces it rides along with, a BitPlanes value is
// single-goroutine state; give each worker its own.
type BitPlanes struct {
	w []uint64
	n int
}

// NewBitPlanes returns planes for n nodes, all lanes clear.
func NewBitPlanes(n int) *BitPlanes {
	if n < 0 {
		panic("graph: negative bit-plane capacity")
	}
	return &BitPlanes{w: make([]uint64, n), n: n}
}

// Reset re-sizes the planes to n nodes and clears every lane, reusing the
// storage when it suffices (the workspace-reuse companion of NewBitPlanes).
func (b *BitPlanes) Reset(n int) {
	if n < 0 {
		panic("graph: negative bit-plane capacity")
	}
	if cap(b.w) < n {
		b.w = make([]uint64, n)
		b.n = n
		return
	}
	b.w = b.w[:n]
	for i := range b.w {
		b.w[i] = 0
	}
	b.n = n
}

// N returns the node count.
func (b *BitPlanes) N() int { return b.n }

// Word returns node v's lane word.
func (b *BitPlanes) Word(v int) uint64 { return b.w[v] }

// SetWord overwrites node v's lane word.
func (b *BitPlanes) SetWord(v int, w uint64) { b.w[v] = w }

// Or adds lanes to node v's word (in-place union).
func (b *BitPlanes) Or(v int, w uint64) { b.w[v] |= w }

// AndNot removes lanes from node v's word (in-place difference).
func (b *BitPlanes) AndNot(v int, w uint64) { b.w[v] &^= w }

// Has reports whether lane r is set at node v.
func (b *BitPlanes) Has(v, r int) bool { return b.w[v]>>(uint(r)&63)&1 != 0 }

// LaneCountAt returns the number of nodes whose lane r bit is set — the
// per-replicate population of the plane (e.g. lane r's covered-node count).
func (b *BitPlanes) LaneCountAt(r int) int {
	mask := uint64(1) << (uint(r) & 63)
	c := 0
	for _, w := range b.w {
		if w&mask != 0 {
			c++
		}
	}
	return c
}

// Counts adds, for every lane r, the number of nodes with bit r set into
// dst[r]. It is the column-count the batch engines fold incrementally; a
// full-plane scan is provided for verification and end-of-run summaries.
func (b *BitPlanes) Counts(dst *[LaneCount]int) {
	for _, w := range b.w {
		for w != 0 {
			dst[bits.TrailingZeros64(w)]++
			w &= w - 1
		}
	}
}

// LaneBitset copies lane r into dst (capacity dst.Cap() must be ≥ n; dst is
// Reset first). It is the bridge back to the scalar world: lane r of a
// batch run's covered planes is exactly the scalar run's covered bitset.
func (b *BitPlanes) LaneBitset(r int, dst *Bitset) {
	dst.Reset(b.n)
	mask := uint64(1) << (uint(r) & 63)
	for v, w := range b.w {
		if w&mask != 0 {
			dst.Add(v)
		}
	}
}

// Fill sets every node's lane word to w.
func (b *BitPlanes) Fill(w uint64) {
	for i := range b.w {
		b.w[i] = w
	}
}
