package graph

// HybridSet is the adaptive set representation of the backbone pipeline:
// it starts as a SparseSet (sorted member slice, O(members) operations)
// and promotes itself to a dense Bitset once the member count crosses a
// density threshold, after which word-parallel Bitset kernels take over.
// It never demotes until the next Reset — a set that got dense once tends
// to stay dense for the rest of its replicate, and demotion churn would
// cost more than it saves.
//
// The threshold is where the representations' costs cross: a Bitset
// operation always walks ≥ count/64 words plus touches count/64-ish cache
// lines, a SparseSet operation walks its members. With
// threshold(n) = 64 + n/64, sets up to a neighborhood in size (the C²/C³
// coverage sets, per-head need sets and gateway selections of radio
// graphs) stay sparse at every n, while anything approaching a constant
// fraction of the universe — where sparse merges would degenerate —
// becomes a Bitset.
//
// Iteration visits members in ascending order in both representations, so
// the deterministic "lowest ID first" greedy semantics are identical to
// the pure-Bitset path (proven by the fuzz agreement test and the golden
// pipeline equivalence tests).
//
// All binary operations require operands created with the same capacity.
// The zero value is an empty set of capacity 0; use NewHybridSet.
type HybridSet struct {
	n     int
	dense bool
	sp    SparseSet
	bits  Bitset
}

// hybridThreshold returns the member count past which a HybridSet over
// 0..n−1 promotes to the dense representation.
func hybridThreshold(n int) int { return 64 + n/64 }

// NewHybridSet returns an empty set over the universe 0..n−1.
func NewHybridSet(n int) *HybridSet {
	if n < 0 {
		panic("graph: negative hybrid set capacity")
	}
	h := &HybridSet{n: n}
	h.sp.n = n
	return h
}

// HybridSetOf returns a set over 0..n−1 holding the given ids.
func HybridSetOf(n int, ids ...int) *HybridSet {
	h := NewHybridSet(n)
	for _, id := range ids {
		h.Add(id)
	}
	return h
}

// Cap returns the capacity of the universe (n in NewHybridSet).
func (h *HybridSet) Cap() int { return h.n }

// Dense reports whether the set currently uses the dense representation.
func (h *HybridSet) Dense() bool { return h.dense }

// Reset re-capacities h to the universe 0..n−1 and empties it, dropping
// back to the sparse representation. O(1) plus the O(touched) Bitset clear
// when the set was dense.
func (h *HybridSet) Reset(n int) {
	if n < 0 {
		panic("graph: negative hybrid set capacity")
	}
	h.n = n
	h.dense = false
	h.sp.Reset(n)
}

// promote switches h to the dense representation, carrying the members
// over. The sparse storage is kept for reuse after the next Reset.
func (h *HybridSet) promote() {
	h.bits.Reset(h.n)
	for _, v := range h.sp.ids {
		h.bits.Add(v)
	}
	h.sp.Clear()
	h.dense = true
}

// maybePromote promotes once the sparse member count crosses the density
// threshold.
func (h *HybridSet) maybePromote() {
	if !h.dense && len(h.sp.ids) > hybridThreshold(h.n) {
		h.promote()
	}
}

// Add inserts i into the set.
func (h *HybridSet) Add(i int) {
	if h.dense {
		h.bits.Add(i)
		return
	}
	h.sp.Add(i)
	h.maybePromote()
}

// Remove deletes i from the set.
func (h *HybridSet) Remove(i int) {
	if h.dense {
		h.bits.Remove(i)
		return
	}
	h.sp.Remove(i)
}

// Has reports whether i is a member. Out-of-range ids are never members.
func (h *HybridSet) Has(i int) bool {
	if h.dense {
		return h.bits.Has(i)
	}
	return h.sp.Has(i)
}

// Count returns the number of members.
func (h *HybridSet) Count() int {
	if h.dense {
		return h.bits.Count()
	}
	return h.sp.Count()
}

// Any reports whether the set is non-empty.
func (h *HybridSet) Any() bool {
	if h.dense {
		return h.bits.Any()
	}
	return h.sp.Any()
}

// Min returns the smallest member, or −1 when the set is empty.
func (h *HybridSet) Min() int {
	if h.dense {
		return h.bits.Min()
	}
	return h.sp.Min()
}

// Clear empties the set in place, keeping the current representation's
// storage but dropping back to sparse mode.
func (h *HybridSet) Clear() {
	if h.dense {
		h.bits.Clear()
		h.dense = false
	}
	h.sp.Clear()
}

// CopyFrom overwrites h with the contents of o (same capacity required),
// adopting o's representation.
func (h *HybridSet) CopyFrom(o *HybridSet) {
	h.check(o)
	if o.dense {
		if !h.dense {
			h.bits.Reset(h.n)
			h.sp.Clear()
			h.dense = true
		}
		h.bits.CopyFrom(&o.bits)
		return
	}
	if h.dense {
		h.dense = false
	}
	h.sp.CopyFrom(&o.sp)
}

// CopyBitset overwrites h with the contents of a dense Bitset of the same
// capacity. Members arrive in ascending order, so the sparse fill is
// O(members) with promotion if the count crosses the threshold.
func (h *HybridSet) CopyBitset(o *Bitset) {
	if h.n != o.Cap() {
		panic("graph: hybrid set capacity mismatch")
	}
	h.Reset(h.n)
	o.ForEach(h.Add)
}

// Clone returns an independent copy of h.
func (h *HybridSet) Clone() *HybridSet {
	c := NewHybridSet(h.n)
	c.CopyFrom(h)
	return c
}

// Or adds every member of o to h (set union, in place).
func (h *HybridSet) Or(o *HybridSet) {
	h.check(o)
	switch {
	case h.dense && o.dense:
		h.bits.Or(&o.bits)
	case h.dense:
		for _, v := range o.sp.ids {
			h.bits.Add(v)
		}
	case o.dense:
		// The union is at least as big as o was when it promoted; join it
		// in dense form.
		h.promote()
		h.bits.Or(&o.bits)
	default:
		h.sp.Or(&o.sp)
		h.maybePromote()
	}
}

// And keeps only members shared with o (set intersection, in place). The
// result never grows, so a sparse h stays sparse.
func (h *HybridSet) And(o *HybridSet) {
	h.check(o)
	switch {
	case h.dense && o.dense:
		h.bits.And(&o.bits)
	case !h.dense && o.dense:
		out := h.sp.ids[:0]
		for _, v := range h.sp.ids {
			if o.bits.Has(v) {
				out = append(out, v)
			}
		}
		h.sp.ids = out
	case h.dense && !o.dense:
		// Filter o's members by h, then rebuild h's bitset from the
		// survivors: O(|o| + touched words), and h stays dense per the
		// no-demotion policy.
		keep := h.sp.tmp[:0]
		for _, v := range o.sp.ids {
			if h.bits.Has(v) {
				keep = append(keep, v)
			}
		}
		h.bits.Clear()
		for _, v := range keep {
			h.bits.Add(v)
		}
		h.sp.tmp = keep[:0]
	default:
		h.sp.And(&o.sp)
	}
}

// AndNot removes every member of o from h (set difference, in place).
func (h *HybridSet) AndNot(o *HybridSet) {
	h.check(o)
	switch {
	case h.dense && o.dense:
		h.bits.AndNot(&o.bits)
	case !h.dense && o.dense:
		out := h.sp.ids[:0]
		for _, v := range h.sp.ids {
			if !o.bits.Has(v) {
				out = append(out, v)
			}
		}
		h.sp.ids = out
	case h.dense && !o.dense:
		for _, v := range o.sp.ids {
			h.bits.Remove(v)
		}
	default:
		h.sp.AndNot(&o.sp)
	}
}

// Intersects reports whether h and o share a member.
func (h *HybridSet) Intersects(o *HybridSet) bool {
	h.check(o)
	switch {
	case h.dense && o.dense:
		return h.bits.Intersects(&o.bits)
	case !h.dense && o.dense:
		for _, v := range h.sp.ids {
			if o.bits.Has(v) {
				return true
			}
		}
		return false
	case h.dense && !o.dense:
		for _, v := range o.sp.ids {
			if h.bits.Has(v) {
				return true
			}
		}
		return false
	default:
		return h.sp.Intersects(&o.sp)
	}
}

// IntersectionCount returns |h ∩ o| without materializing the
// intersection.
func (h *HybridSet) IntersectionCount(o *HybridSet) int {
	h.check(o)
	switch {
	case h.dense && o.dense:
		return h.bits.IntersectionCount(&o.bits)
	case !h.dense && o.dense:
		c := 0
		for _, v := range h.sp.ids {
			if o.bits.Has(v) {
				c++
			}
		}
		return c
	case h.dense && !o.dense:
		c := 0
		for _, v := range o.sp.ids {
			if h.bits.Has(v) {
				c++
			}
		}
		return c
	default:
		return h.sp.IntersectionCount(&o.sp)
	}
}

// Equal reports whether h and o hold exactly the same members, regardless
// of representation.
func (h *HybridSet) Equal(o *HybridSet) bool {
	if h.n != o.n {
		return false
	}
	switch {
	case h.dense && o.dense:
		return h.bits.Equal(&o.bits)
	case !h.dense && !o.dense:
		return h.sp.Equal(&o.sp)
	default:
		sp, dn := h, o
		if h.dense {
			sp, dn = o, h
		}
		if len(sp.sp.ids) != dn.bits.Count() {
			return false
		}
		for _, v := range sp.sp.ids {
			if !dn.bits.Has(v) {
				return false
			}
		}
		return true
	}
}

// ForEach calls fn for every member in ascending order.
func (h *HybridSet) ForEach(fn func(i int)) {
	if h.dense {
		h.bits.ForEach(fn)
		return
	}
	h.sp.ForEach(fn)
}

// Members returns the members in ascending order as a fresh slice.
func (h *HybridSet) Members() []int {
	if h.dense {
		return h.bits.Members()
	}
	return h.sp.Members()
}

// AppendMembers appends the members in ascending order to dst and returns
// the extended slice.
func (h *HybridSet) AppendMembers(dst []int) []int {
	if h.dense {
		return h.bits.AppendMembers(dst)
	}
	return h.sp.AppendMembers(dst)
}

// AddTo adds every member of h to the dense set dst (same capacity
// required): the bridge from the hybrid pipeline sets to the dense
// accumulators (backbone membership, broadcast node sets) that stay
// Bitset-typed.
func (h *HybridSet) AddTo(dst *Bitset) {
	if h.n != dst.Cap() {
		panic("graph: hybrid set capacity mismatch")
	}
	if h.dense {
		dst.Or(&h.bits)
		return
	}
	for _, v := range h.sp.ids {
		dst.Add(v)
	}
}

// ToBitset materializes h as a fresh dense Bitset.
func (h *HybridSet) ToBitset() *Bitset {
	b := NewBitset(h.n)
	h.AddTo(b)
	return b
}

// check panics on capacity mismatch, mirroring Bitset.check.
func (h *HybridSet) check(o *HybridSet) {
	if h.n != o.n {
		panic("graph: hybrid set capacity mismatch")
	}
}
