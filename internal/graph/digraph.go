package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Digraph is a directed simple graph over nodes 0..n−1. It models the
// *cluster graph* G′ of the paper: one vertex per cluster(head) and a
// directed link (v, w) whenever clusterhead w belongs to v's coverage set.
// With the 3-hop coverage set the cluster graph is symmetric; with the
// 2.5-hop coverage set it may be genuinely directed, and the correctness of
// the backbone (Theorem 1) rests on it being strongly connected.
type Digraph struct {
	out   [][]int
	in    [][]int
	edges int
}

// NewDigraph returns a digraph with n isolated nodes.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Digraph{out: make([][]int, n), in: make([][]int, n)}
}

// N returns the number of nodes.
func (d *Digraph) N() int { return len(d.out) }

// M returns the number of directed edges.
func (d *Digraph) M() int { return d.edges }

// AddEdge inserts the directed edge (u, v). Duplicates and self-loops
// panic, as in Graph.
func (d *Digraph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if d.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", u, v))
	}
	d.out[u] = insertInt(d.out[u], v)
	d.in[v] = insertInt(d.in[v], u)
	d.edges++
}

func insertInt(list []int, v int) []int {
	i := sort.SearchInts(list, v)
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = v
	return list
}

// HasEdge reports whether (u, v) is an edge.
func (d *Digraph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(d.out) || v < 0 || v >= len(d.out) {
		return false
	}
	list := d.out[u]
	i := sort.SearchInts(list, v)
	return i < len(list) && list[i] == v
}

// RemoveEdge deletes (u, v) if present and reports whether it was present.
// The dynamic backbone's pruning step eliminates cluster-graph edges between
// two downstream clusterheads of a common upstream sender.
func (d *Digraph) RemoveEdge(u, v int) bool {
	if !d.HasEdge(u, v) {
		return false
	}
	d.out[u] = removeInt(d.out[u], v)
	d.in[v] = removeInt(d.in[v], u)
	d.edges--
	return true
}

func removeInt(list []int, v int) []int {
	i := sort.SearchInts(list, v)
	copy(list[i:], list[i+1:])
	return list[:len(list)-1]
}

// Out returns the sorted out-neighbors of u (owned by the digraph).
func (d *Digraph) Out(u int) []int { return d.out[u] }

// In returns the sorted in-neighbors of u (owned by the digraph).
func (d *Digraph) In(u int) []int { return d.in[u] }

// reachableFrom returns the number of nodes reachable from src following
// the given adjacency.
func reachableFrom(adj [][]int, src int) int {
	seen := make([]bool, len(adj))
	seen[src] = true
	queue := []int{src}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count
}

// StronglyConnected reports whether every node can reach every other node.
// Graphs with 0 or 1 nodes are strongly connected. Implemented as forward +
// reverse reachability from node 0 (sufficient for strong connectivity of
// the whole graph).
func (d *Digraph) StronglyConnected() bool {
	n := len(d.out)
	if n <= 1 {
		return true
	}
	return reachableFrom(d.out, 0) == n && reachableFrom(d.in, 0) == n
}

// SCCs returns the strongly connected components (Tarjan's algorithm,
// iterative to avoid deep recursion on large cluster graphs). Components are
// returned with members sorted, ordered by smallest member.
func (d *Digraph) SCCs() [][]int {
	n := len(d.out)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	type frame struct {
		v  int
		ei int
	}
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		callStack := []frame{{v: s}}
		index[s] = next
		low[s] = next
		next++
		stack = append(stack, s)
		onStack[s] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.ei < len(d.out[f.v]) {
				w := d.out[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Finished v.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// Clone returns a deep copy of d.
func (d *Digraph) Clone() *Digraph {
	c := &Digraph{out: make([][]int, len(d.out)), in: make([][]int, len(d.in)), edges: d.edges}
	for i := range d.out {
		c.out[i] = append([]int(nil), d.out[i]...)
		c.in[i] = append([]int(nil), d.in[i]...)
	}
	return c
}

// DOT renders the digraph in Graphviz DOT format with deterministic
// ordering; labels maps node index to a display label (defaults to the
// index).
func (d *Digraph) DOT(name string, labels map[int]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	for u := 0; u < len(d.out); u++ {
		label := labels[u]
		if label == "" {
			label = fmt.Sprint(u)
		}
		fmt.Fprintf(&b, "  %d [label=%q];\n", u, label)
	}
	for u := 0; u < len(d.out); u++ {
		for _, v := range d.out[u] {
			fmt.Fprintf(&b, "  %d -> %d;\n", u, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
