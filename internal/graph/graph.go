// Package graph provides the undirected-graph substrate for the MANET
// simulator: adjacency storage, traversals, k-hop neighborhoods,
// connectivity queries, and verification predicates for dominating sets and
// connected dominating sets (CDS).
//
// Nodes are identified by dense integer IDs 0..n−1. In the MANET model the
// ID doubles as the node's unique address, and the lowest-ID clustering
// algorithm gives smaller IDs election priority.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is an undirected simple graph over nodes 0..n−1 stored as sorted
// adjacency lists, in one of two layouts:
//
//   - list mode: one []int per node (adj), the incremental-construction
//     layout used by AddEdge and the mobility maintenance path;
//   - CSR mode: one flat neighbor array indexed by an offset array
//     (off/flat), the compressed-sparse-row layout the topology hot path
//     fills in two passes with zero per-node allocations.
//
// Neighbors(u) is a zero-copy slice view in both modes, so traversal code
// is layout-agnostic. The zero value is an empty graph with no nodes; use
// New to create a graph with a fixed node count.
type Graph struct {
	adj   [][]int // list mode; nil when off is set
	off   []int   // CSR mode: neighbors of u are flat[off[u]:off[u+1]]
	flat  []int
	n     int
	edges int
}

// New returns a graph with n isolated nodes (list mode).
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{adj: make([][]int, n), n: n}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// CSR reports whether the graph currently uses the compressed-sparse-row
// layout.
func (g *Graph) CSR() bool { return g.off != nil }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected with a panic: the unit-disk model never produces them,
// so their appearance indicates a bug in the caller. On a CSR-mode graph
// the adjacency is first materialized back into per-node lists — edge
// insertion is a construction-time operation, not a hot-path one.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", u, v))
	}
	if g.off != nil {
		g.materializeLists()
	}
	g.insertSorted(u, v)
	g.insertSorted(v, u)
	g.edges++
}

// materializeLists converts a CSR-mode graph back to list mode, copying
// each neighbor segment into its own growable slice.
func (g *Graph) materializeLists() {
	adj := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		adj[u] = append([]int(nil), g.flat[g.off[u]:g.off[u+1]]...)
	}
	g.adj = adj
	g.off, g.flat = nil, nil
}

func (g *Graph) insertSorted(u, v int) {
	list := g.adj[u]
	i := sort.SearchInts(list, v)
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = v
	g.adj[u] = list
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	list := g.Neighbors(u)
	i := sort.SearchInts(list, v)
	return i < len(list) && list[i] == v
}

// Neighbors returns the sorted adjacency list of u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int {
	if g.off != nil {
		return g.flat[g.off[u]:g.off[u+1]:g.off[u+1]]
	}
	return g.adj[u]
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	if g.off != nil {
		return g.off[u+1] - g.off[u]
	}
	return len(g.adj[u])
}

// MaxDegree returns Δ(G), the maximum node degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average node degree 2m/n (0 for an empty graph).
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(g.n)
}

// Clone returns a deep copy of g, preserving the storage layout.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, edges: g.edges}
	if g.off != nil {
		c.off = append([]int(nil), g.off...)
		c.flat = append([]int(nil), g.flat...)
		return c
	}
	c.adj = make([][]int, len(g.adj))
	for i, l := range g.adj {
		c.adj[i] = append([]int(nil), l...)
	}
	return c
}

// Edges returns all edges as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// BFS runs a breadth-first search from src and returns dist[v] = hop count
// from src, with −1 for unreachable nodes.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// KHop returns N^k(v): the set of nodes within k hops of v, including v
// itself, as a sorted slice. K must be >= 0.
func (g *Graph) KHop(v, k int) []int {
	if k < 0 {
		panic("graph: negative k")
	}
	dist := map[int]int{v: 0}
	frontier := []int{v}
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []int
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if _, ok := dist[w]; !ok {
					dist[w] = hop + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	out := make([]int, 0, len(dist))
	for u := range dist {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Connected reports whether g is connected. The empty graph and the
// single-node graph are connected. It borrows a pooled traversal scratch,
// so the rejection-sampling loop of topology generation allocates nothing
// here.
func (g *Graph) Connected() bool {
	s := getScratch()
	ok := g.ConnectedWith(s)
	putScratch(s)
	return ok
}

// Components returns the connected components of g, each as a sorted slice
// of node IDs, ordered by their smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedSubgraphConnected reports whether the subgraph induced by the node
// set is connected (a set of size 0 or 1 counts as connected). It is the
// connectivity half of the CDS predicate.
func (g *Graph) InducedSubgraphConnected(set map[int]bool) bool {
	s := getScratch()
	ok := g.InducedConnected(s, BitsetFromSet(g.n, set))
	putScratch(s)
	return ok
}

// IsDominatingSet reports whether every node is in the set or adjacent to a
// member of the set.
func (g *Graph) IsDominatingSet(set map[int]bool) bool {
	return g.IsDominatingSetBits(BitsetFromSet(g.n, set))
}

// IsDominatingSetBits is IsDominatingSet over a Bitset membership.
func (g *Graph) IsDominatingSetBits(set *Bitset) bool {
	for u := 0; u < g.n; u++ {
		if set.Has(u) {
			continue
		}
		dominated := false
		for _, v := range g.Neighbors(u) {
			if set.Has(v) {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// IsCDS reports whether the set is a connected dominating set of g.
func (g *Graph) IsCDS(set map[int]bool) bool {
	return g.IsCDSBits(BitsetFromSet(g.n, set))
}

// IsCDSBits is IsCDS over a Bitset membership.
func (g *Graph) IsCDSBits(set *Bitset) bool {
	if !g.IsDominatingSetBits(set) {
		return false
	}
	s := getScratch()
	ok := g.InducedConnected(s, set)
	putScratch(s)
	return ok
}

// IsIndependentSet reports whether no two members of the set are adjacent.
// The clusterhead set of a valid clustering must satisfy this.
func (g *Graph) IsIndependentSet(set map[int]bool) bool {
	return g.IsIndependentSetBits(BitsetFromSet(g.n, set))
}

// IsIndependentSetBits is IsIndependentSet over a Bitset membership.
func (g *Graph) IsIndependentSetBits(set *Bitset) bool {
	ok := true
	set.ForEach(func(u int) {
		for _, v := range g.Neighbors(u) {
			if set.Has(v) {
				ok = false
				return
			}
		}
	})
	return ok
}

// Eccentricity returns the greatest hop distance from v to any reachable
// node, or −1 if some node is unreachable.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the hop diameter of g, or −1 when g is disconnected.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		e := g.Eccentricity(v)
		if e == -1 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// ShortestPath returns one shortest path from src to dst as a node sequence
// including both endpoints, or nil when dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if prev[v] == -1 {
				prev[v] = u
				if v == dst {
					var path []int
					for w := dst; w != src; w = prev[w] {
						path = append(path, w)
					}
					path = append(path, src)
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

// DOT renders g in Graphviz DOT format; highlight marks a set of nodes to
// fill (the backbone, in our figures). Deterministic output: nodes and edges
// appear in sorted order.
func (g *Graph) DOT(name string, highlight map[int]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for u := 0; u < g.n; u++ {
		if highlight[u] {
			fmt.Fprintf(&b, "  %d [style=filled fillcolor=black fontcolor=white];\n", u)
		} else {
			fmt.Fprintf(&b, "  %d;\n", u)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -- %d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// FromEdges builds a graph with n nodes and the given edge list in one
// batch: degrees are counted first, adjacency arrays are filled, and each
// list is sorted once — O(m·log(deg)) total instead of the O(m·deg)
// memmove cost of repeated sorted insertion. Self-loops and duplicate
// edges panic, as with AddEdge.
func FromEdges(n int, edges [][2]int) *Graph {
	g := New(n)
	deg := make([]int, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			panic(fmt.Sprintf("graph: self-loop at %d", u))
		}
		deg[u]++
		deg[v]++
	}
	// One backing array for all adjacency lists keeps the graph compact and
	// the build allocation count flat in n.
	backing := make([]int, 2*len(edges))
	offset := 0
	for u, d := range deg {
		g.adj[u] = backing[offset : offset : offset+d]
		offset += d
	}
	for _, e := range edges {
		g.adj[e[0]] = append(g.adj[e[0]], e[1])
		g.adj[e[1]] = append(g.adj[e[1]], e[0])
	}
	for u := range g.adj {
		sort.Ints(g.adj[u])
		for i := 1; i < len(g.adj[u]); i++ {
			if g.adj[u][i] == g.adj[u][i-1] {
				panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", u, g.adj[u][i]))
			}
		}
	}
	g.edges = len(edges)
	return g
}

// FromAdjacency builds a graph directly from per-node neighbor lists,
// taking ownership of adj and its backing arrays. Each list is sorted in
// place; self-loops and duplicate neighbors panic. The lists must already
// be symmetric (v ∈ adj[u] ⇔ u ∈ adj[v]) — callers like the unit-disk
// builder produce them from a symmetric distance predicate, and the edge
// count is derived from the degree sum.
func FromAdjacency(n int, adj [][]int) *Graph {
	if len(adj) != n {
		panic(fmt.Sprintf("graph: adjacency for %d nodes, want %d", len(adj), n))
	}
	g := &Graph{}
	g.Renew(adj)
	return g
}

// Renew re-initializes g in place around per-node neighbor lists, taking
// ownership of adj and its backing arrays and applying the same in-place
// sort and validation as FromAdjacency. It lets a reusable topology
// workspace rebuild the graph every replicate without allocating.
func (g *Graph) Renew(adj [][]int) {
	n := len(adj)
	degSum := 0
	for u := range adj {
		l := adj[u]
		sortShort(l)
		for i, v := range l {
			if v < 0 || v >= n {
				panic(fmt.Sprintf("graph: neighbor %d out of range [0,%d)", v, n))
			}
			if v == u {
				panic(fmt.Sprintf("graph: self-loop at %d", u))
			}
			if i > 0 && v == l[i-1] {
				panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", u, v))
			}
		}
		degSum += len(l)
	}
	if degSum%2 != 0 {
		panic("graph: asymmetric adjacency lists")
	}
	g.adj = adj
	g.off, g.flat = nil, nil
	g.n = n
	g.edges = degSum / 2
}

// RenewSorted re-initializes g in place around adjacency lists the caller
// guarantees are already strictly ascending, symmetric, self-loop-free and
// in range — the invariant maintained by the incremental unit-disk edge
// updater. It skips the per-list sort and validation of FromAdjacency
// entirely, so an incremental mobility step costs O(changed edges), not
// O(n·deg). Callers that cannot prove the invariant use Renew instead; the
// equivalence tests in the topology package check both against the full
// rebuild.
func (g *Graph) RenewSorted(adj [][]int) {
	degSum := 0
	for u := range adj {
		degSum += len(adj[u])
	}
	g.adj = adj
	g.off, g.flat = nil, nil
	g.n = len(adj)
	g.edges = degSum / 2
}

// RenewCSR re-initializes g in place around a compressed-sparse-row
// adjacency the caller guarantees is well-formed: off has n+1 ascending
// offsets with off[0] == 0 and off[n] == len(flat), and each segment
// flat[off[u]:off[u+1]] is strictly ascending, symmetric, self-loop-free
// and in range. Like RenewSorted it performs no validation — it is the
// trusted zero-allocation handoff from the topology workspace, which
// builds the CSR in two counting passes and sorts each segment in place.
// The graph takes ownership of both slices.
func (g *Graph) RenewCSR(off, flat []int) {
	if len(off) == 0 {
		panic("graph: RenewCSR needs at least the terminating offset")
	}
	g.adj = nil
	g.off, g.flat = off, flat
	g.n = len(off) - 1
	g.edges = len(flat) / 2
}

// sortShort sorts an adjacency list, with a straight insertion sort for
// the short lists typical of bounded-degree radio graphs (the generic sort
// machinery costs more than it saves below a few dozen elements).
func sortShort(l []int) {
	if len(l) > 32 {
		sort.Ints(l)
		return
	}
	for i := 1; i < len(l); i++ {
		v := l[i]
		j := i - 1
		for j >= 0 && l[j] > v {
			l[j+1] = l[j]
			j--
		}
		l[j+1] = v
	}
}

// SortNeighborSegment sorts one CSR neighbor segment in place. It is
// exported for the topology workspace's trusted CSR construction.
func SortNeighborSegment(l []int) { sortShort(l) }

// NeighborBitset fills dst (capacity ≥ n) with the neighbors of u and
// returns it; with dst == nil a fresh set is allocated.
func (g *Graph) NeighborBitset(u int, dst *Bitset) *Bitset {
	if dst == nil {
		dst = NewBitset(g.n)
	} else {
		dst.Clear()
	}
	for _, v := range g.Neighbors(u) {
		dst.Add(v)
	}
	return dst
}

// SetOf returns a membership map for the given node IDs.
func SetOf(ids ...int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// SetSize returns the number of true entries in a membership map.
func SetSize(set map[int]bool) int {
	n := 0
	for _, in := range set {
		if in {
			n++
		}
	}
	return n
}

// SortedMembers returns the true entries of a membership map in ascending
// order.
func SortedMembers(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v, in := range set {
		if in {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
