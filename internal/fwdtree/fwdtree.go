// Package fwdtree implements the cluster-based forwarding tree of Pagani
// and Rossi (Mobile Networks and Applications, 1999), discussed in the
// paper's related work: a tree rooted at the clusterhead of the broadcast
// source that alternates clusterhead → gateway(s) → clusterhead levels
// until every cluster has joined. The paper's criticism — "such a
// forwarding tree is hard to maintain in MANETs" — is exactly the
// motivation for its on-demand dynamic backbone; the tree is implemented
// here as the third point of that design space (proactive tree vs
// proactive CDS vs on-demand CDS).
//
// Construction: breadth-first over the cluster graph from the root
// cluster. When cluster w joins through tree cluster v, the connecting
// gateway (2-hop clusterhead) or gateway pair (3-hop clusterhead) recorded
// in v's coverage set becomes part of the tree and remembers its upstream
// and downstream, giving every node a parent path to the root.
package fwdtree

import (
	"fmt"
	"sort"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// pair is a (gateway, relay) attachment for a 3-hop cluster.
type pair struct{ f, r int }

// sortedKeys3 returns the keys of a cluster→pair map in ascending order.
func sortedKeys3(m map[int]pair) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Tree is a cluster-based forwarding tree.
type Tree struct {
	// Root is the clusterhead of the source's cluster.
	Root int
	// Parent maps every tree node except the root to its parent toward
	// the root. Parent edges are graph edges.
	Parent map[int]int
	// Nodes is the tree membership (clusterheads + connecting gateways).
	Nodes map[int]bool
}

// Size returns the number of tree nodes.
func (t *Tree) Size() int { return len(t.Nodes) }

// Depth returns the maximum parent-chain length from any tree node to the
// root.
func (t *Tree) Depth() int {
	max := 0
	for v := range t.Nodes {
		d := 0
		for v != t.Root {
			v = t.Parent[v]
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}

// sortedKeys2 returns the keys of a cluster→gateway map in ascending
// order, for deterministic tree construction.
func sortedKeys2(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Build constructs the forwarding tree for broadcasts whose source lives
// in the cluster of source. The builder must cover the same clustering.
func Build(b *coverage.Builder, cl *cluster.Clustering, source int) (*Tree, error) {
	root := cl.Head[source]
	t := &Tree{
		Root:   root,
		Parent: make(map[int]int),
		Nodes:  map[int]bool{root: true},
	}
	joined := map[int]bool{root: true}
	frontier := []int{root}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			cov := b.Of(v)
			// 2-hop clusterheads first (shorter attachment), each via its
			// lowest-ID direct gateway.
			gate2 := make(map[int]int)
			for _, cn := range cov.Conns {
				for _, w := range cn.Direct {
					if joined[w] {
						continue
					}
					if prev, ok := gate2[w]; !ok || cn.V < prev {
						gate2[w] = cn.V
					}
				}
			}
			for _, w := range sortedKeys2(gate2) {
				gw := gate2[w]
				joined[w] = true
				t.Nodes[gw] = true
				t.Nodes[w] = true
				if _, ok := t.Parent[gw]; !ok {
					t.Parent[gw] = v
				}
				t.Parent[w] = gw
				next = append(next, w)
			}
			// Remaining 3-hop clusterheads via gateway pairs.
			gate3 := make(map[int]pair)
			for _, cn := range cov.Conns {
				for _, e := range cn.Indirect {
					if joined[e.W] {
						continue
					}
					p, ok := gate3[e.W]
					if !ok || cn.V < p.f || (cn.V == p.f && e.R < p.r) {
						gate3[e.W] = pair{cn.V, e.R}
					}
				}
			}
			for _, w := range sortedKeys3(gate3) {
				p := gate3[w]
				if joined[w] {
					continue
				}
				joined[w] = true
				t.Nodes[p.f] = true
				t.Nodes[p.r] = true
				t.Nodes[w] = true
				if _, ok := t.Parent[p.f]; !ok {
					t.Parent[p.f] = v
				}
				if _, ok := t.Parent[p.r]; !ok {
					t.Parent[p.r] = p.f
				}
				t.Parent[w] = p.r
				next = append(next, w)
			}
		}
		frontier = next
	}
	for _, h := range cl.Heads {
		if !joined[h] {
			return nil, fmt.Errorf("fwdtree: cluster %d unreachable from root %d", h, root)
		}
	}
	return t, nil
}

// Verify checks the structural invariants: every parent edge is a graph
// edge, every tree node reaches the root, and the node set is a CDS of g
// (it contains all clusterheads and is connected through the parent
// edges).
func (t *Tree) Verify(g *graph.Graph, cl *cluster.Clustering) error {
	for v, p := range t.Parent {
		if !g.HasEdge(v, p) {
			return fmt.Errorf("fwdtree: parent edge %d-%d is not a graph edge", v, p)
		}
		if !t.Nodes[v] || !t.Nodes[p] {
			return fmt.Errorf("fwdtree: parent edge %d-%d leaves the node set", v, p)
		}
	}
	for v := range t.Nodes {
		seen := 0
		for x := v; x != t.Root; x = t.Parent[x] {
			if _, ok := t.Parent[x]; !ok {
				return fmt.Errorf("fwdtree: node %d has no path to the root", v)
			}
			seen++
			if seen > len(t.Nodes) {
				return fmt.Errorf("fwdtree: parent cycle at node %d", v)
			}
		}
	}
	for _, h := range cl.Heads {
		if !t.Nodes[h] {
			return fmt.Errorf("fwdtree: clusterhead %d missing", h)
		}
	}
	if !g.IsCDS(t.Nodes) {
		return fmt.Errorf("fwdtree: tree nodes are not a CDS")
	}
	return nil
}
