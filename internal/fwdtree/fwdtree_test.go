package fwdtree

import (
	"testing"
	"testing/quick"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func paperGraph() *graph.Graph {
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	return graph.FromEdges(10, zero)
}

func TestBuildPaperGraph(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	tree, err := Build(b, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != 0 {
		t.Fatalf("root = %d", tree.Root)
	}
	if err := tree.Verify(g, cl); err != nil {
		t.Fatal(err)
	}
	// Tree must alternate CH → gateway → CH: depth in node-hops is even
	// for clusterheads.
	for _, h := range cl.Heads {
		d := 0
		for x := h; x != tree.Root; x = tree.Parent[x] {
			d++
		}
		if d%2 != 0 {
			t.Fatalf("clusterhead %d at odd tree depth %d", h, d)
		}
	}
}

func TestTreeRootFollowsSourceCluster(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	// Source 9 (paper 10) is in cluster 3 (paper head 3 → 0-based 2).
	tree, err := Build(b, cl, 9)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root != 2 {
		t.Fatalf("root = %d, want the source's clusterhead 2", tree.Root)
	}
	if err := tree.Verify(g, cl); err != nil {
		t.Fatal(err)
	}
}

func TestTreeBroadcastDelivers(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	tree, err := Build(b, cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := broadcast.Run(g, 0, broadcast.StaticCDS{Set: tree.Nodes, Label: "fwd-tree"})
	if len(res.Received) != g.N() {
		t.Fatalf("tree broadcast delivered %d/%d", len(res.Received), g.N())
	}
}

func TestDepthAndSize(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	tree, _ := Build(b, cl, 0)
	if tree.Size() < len(cl.Heads) {
		t.Fatalf("tree size %d below head count %d", tree.Size(), len(cl.Heads))
	}
	if d := tree.Depth(); d < 2 || d > 2*len(cl.Heads) {
		t.Fatalf("implausible depth %d", d)
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	t1, _ := Build(b, cl, 0)
	t2, _ := Build(b, cl, 0)
	if t1.Size() != t2.Size() {
		t.Fatal("tree construction must be deterministic")
	}
	for v, p := range t1.Parent {
		if t2.Parent[v] != p {
			t.Fatalf("parent of %d differs across runs: %d vs %d", v, p, t2.Parent[v])
		}
	}
}

func TestSingleCluster(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	tree, err := Build(b, cl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 1 || !tree.Nodes[0] {
		t.Fatalf("single-cluster tree = %v", graph.SortedMembers(tree.Nodes))
	}
}

// Property: on random connected networks the tree is valid, spans all
// clusters, and broadcasting over it delivers everywhere — for both
// coverage modes and any source.
func TestQuickTreeValidAndDelivers(t *testing.T) {
	f := func(seed uint64, mode25 bool) bool {
		mode := coverage.Hop3
		if mode25 {
			mode = coverage.Hop25
		}
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 45, Bounds: geom.Square(100), AvgDegree: 8,
			RequireConnected: true, MaxAttempts: 400,
		}, r)
		if err != nil {
			return true
		}
		cl := cluster.LowestID(nw.G)
		b := coverage.NewBuilder(nw.G, cl, mode)
		src := r.Intn(45)
		tree, err := Build(b, cl, src)
		if err != nil {
			return false
		}
		if tree.Verify(nw.G, cl) != nil {
			return false
		}
		res := broadcast.Run(nw.G, src, broadcast.StaticCDS{Set: tree.Nodes})
		return len(res.Received) == 45
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the tree is usually no larger than the static backbone (it
// attaches each cluster once, while the backbone connects every
// coverage-set pair) — but its lowest-ID attachment choice is not
// set-cover-optimized, so individual instances can exceed the greedy
// backbone by a node or two. Assert a small slack per instance and strict
// dominance on average.
func TestQuickTreeAtMostStaticBackbone(t *testing.T) {
	treeTotal, staticTotal := 0, 0
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 50, Bounds: geom.Square(100), AvgDegree: 10,
			RequireConnected: true, MaxAttempts: 400,
		}, r)
		if err != nil {
			return true
		}
		cl := cluster.LowestID(nw.G)
		b := coverage.NewBuilder(nw.G, cl, coverage.Hop25)
		tree, err := Build(b, cl, r.Intn(50))
		if err != nil {
			return false
		}
		static := backbone.BuildStaticFrom(b, cl)
		treeTotal += tree.Size()
		staticTotal += static.Size()
		return tree.Size() <= static.Size()+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	if treeTotal > staticTotal {
		t.Fatalf("tree sizes (%d) should beat static backbone sizes (%d) on average",
			treeTotal, staticTotal)
	}
}
