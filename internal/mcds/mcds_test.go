package mcds

import (
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestExactPath(t *testing.T) {
	// MCDS of a path with n >= 3 is the n−2 interior nodes.
	for _, n := range []int{3, 5, 8, 12} {
		g := pathGraph(n)
		set := Exact(g)
		if got, want := graph.SetSize(set), n-2; got != want {
			t.Fatalf("path %d: MCDS size %d, want %d", n, got, want)
		}
		if !g.IsCDS(set) {
			t.Fatalf("path %d: returned set is not a CDS", n)
		}
	}
}

func TestExactStar(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	set := Exact(g)
	if graph.SetSize(set) != 1 || !set[0] {
		t.Fatalf("star MCDS must be the center: %v", graph.SortedMembers(set))
	}
}

func TestExactCycle(t *testing.T) {
	// MCDS of an n-cycle is n−2 for n ≥ 4... actually ceil logic: a cycle
	// C_n needs n−2 connected dominators (any path of n−2 nodes dominates).
	for _, n := range []int{4, 6, 9} {
		g := pathGraph(n)
		g.AddEdge(n-1, 0)
		set := Exact(g)
		if got, want := graph.SetSize(set), n-2; got != want {
			t.Fatalf("cycle %d: MCDS size %d, want %d", n, got, want)
		}
		if !g.IsCDS(set) {
			t.Fatalf("cycle %d: not a CDS", n)
		}
	}
}

func TestExactCompleteGraph(t *testing.T) {
	g := graph.New(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	set := Exact(g)
	if graph.SetSize(set) != 1 {
		t.Fatalf("complete graph MCDS size %d, want 1", graph.SetSize(set))
	}
}

func TestExactEdgeCases(t *testing.T) {
	if got := Exact(graph.New(0)); len(got) != 0 {
		t.Fatal("empty graph MCDS should be empty")
	}
	if got := Exact(graph.New(1)); graph.SetSize(got) != 1 {
		t.Fatal("single node MCDS should be the node")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	if Exact(disc) != nil {
		t.Fatal("disconnected graph must return nil")
	}
	if Exact(graph.New(MaxExactNodes+1)) != nil {
		t.Fatal("oversized graph must return nil")
	}
}

func TestGreedyBasics(t *testing.T) {
	g := pathGraph(7)
	set := Greedy(g)
	if !g.IsCDS(set) {
		t.Fatalf("greedy on path is not a CDS: %v", graph.SortedMembers(set))
	}
	star := graph.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if got := Greedy(star); graph.SetSize(got) != 1 || !got[0] {
		t.Fatalf("greedy star CDS = %v", graph.SortedMembers(got))
	}
	if got := Greedy(graph.New(1)); graph.SetSize(got) != 1 {
		t.Fatal("greedy single node")
	}
	if got := Greedy(graph.New(0)); len(got) != 0 {
		t.Fatal("greedy empty graph")
	}
}

// Property: on random small connected graphs, Exact returns a CDS no
// larger than Greedy's, and Greedy always returns a CDS.
func TestQuickExactOptimalAndGreedyValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 14, Bounds: geom.Square(40), AvgDegree: 4,
			RequireConnected: true, MaxAttempts: 500,
		}, r)
		if err != nil {
			return true
		}
		exact := Exact(nw.G)
		greedy := Greedy(nw.G)
		if exact == nil || !nw.G.IsCDS(exact) || !nw.G.IsCDS(greedy) {
			return false
		}
		return graph.SetSize(exact) <= graph.SetSize(greedy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Exact is genuinely minimum — removing any single node from the
// returned set breaks the CDS property, and no CDS of size−1 exists
// (verified on very small graphs by direct recomputation with one node
// forbidden... we instead verify via the subset-order search invariant:
// re-running Exact must return the same size).
func TestQuickExactMinimality(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 10, Bounds: geom.Square(30), AvgDegree: 4,
			RequireConnected: true, MaxAttempts: 500,
		}, r)
		if err != nil {
			return true
		}
		set := Exact(nw.G)
		if set == nil {
			return false
		}
		// No strict subset of the optimum (by one element) is a CDS.
		for v := range set {
			delete(set, v)
			if len(set) > 0 && nw.G.IsCDS(set) {
				return false
			}
			set[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExact14(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 14, Bounds: geom.Square(40), AvgDegree: 4,
		RequireConnected: true, MaxAttempts: 500,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Exact(nw.G)
	}
}

func BenchmarkGreedy100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Greedy(nw.G)
	}
}
