// Package mcds provides reference connected-dominating-set algorithms used
// to measure the empirical approximation ratio of the cluster-based
// backbones (the paper's §4 claims a constant ratio to the minimum CDS):
//
//   - Exact: the true minimum CDS by exhaustive subset search in increasing
//     size order, feasible for graphs up to ~24 nodes (bitmask-based).
//   - Greedy: the classic Guha–Khuller growing heuristic, a ln(Δ)
//     approximation usable at any size.
package mcds

import (
	"math/bits"

	"clustercast/internal/graph"
)

// MaxExactNodes bounds the exhaustive search.
const MaxExactNodes = 24

// Exact returns a minimum connected dominating set of g, or nil when g has
// more than MaxExactNodes nodes or is disconnected. For graphs of 0 or 1
// nodes it returns the trivial answers (empty set is not useful for n==1;
// by convention the single node itself is returned, matching the broadcast
// use where at least one transmitter exists).
func Exact(g *graph.Graph) map[int]bool {
	n := g.N()
	if n > MaxExactNodes {
		return nil
	}
	if n == 0 {
		return map[int]bool{}
	}
	if n == 1 {
		return map[int]bool{0: true}
	}
	if !g.Connected() {
		return nil
	}
	// closed[v]: bitmask of N[v].
	closed := make([]uint32, n)
	open := make([]uint32, n)
	for v := 0; v < n; v++ {
		m := uint32(1) << uint(v)
		o := uint32(0)
		for _, u := range g.Neighbors(v) {
			o |= 1 << uint(u)
		}
		open[v] = o
		closed[v] = m | o
	}
	all := uint32(1)<<uint(n) - 1

	dominates := func(set uint32) bool {
		cov := uint32(0)
		for s := set; s != 0; s &= s - 1 {
			cov |= closed[bits.TrailingZeros32(s)]
		}
		return cov == all
	}
	connected := func(set uint32) bool {
		if set == 0 {
			return false
		}
		start := uint32(1) << uint(bits.TrailingZeros32(set))
		frontier := start
		seen := start
		for frontier != 0 {
			next := uint32(0)
			for f := frontier; f != 0; f &= f - 1 {
				next |= open[bits.TrailingZeros32(f)]
			}
			next &= set &^ seen
			seen |= next
			frontier = next
		}
		return seen == set
	}

	// Enumerate subsets by increasing size (Gosper's hack per size).
	for k := 1; k <= n; k++ {
		set := uint32(1)<<uint(k) - 1
		for set <= all {
			if set&all == set && dominates(set) && connected(set) {
				out := make(map[int]bool, k)
				for s := set; s != 0; s &= s - 1 {
					out[bits.TrailingZeros32(s)] = true
				}
				return out
			}
			// Gosper's hack: next subset with the same popcount.
			c := set & -set
			r := set + c
			if r > all || r < set {
				break
			}
			set = (((r ^ set) >> 2) / c) | r
		}
	}
	return nil // unreachable for connected graphs: the full set is a CDS
}

// Greedy returns a connected dominating set by the Guha–Khuller growing
// heuristic: start from the node with the most neighbors; repeatedly turn
// the frontier ("gray") node with the most undominated ("white") neighbors
// into a dominator ("black") until every node is dominated. Ties break to
// the lowest ID. The black set induced is connected by construction. For a
// single-node graph it returns that node.
func Greedy(g *graph.Graph) map[int]bool {
	n := g.N()
	if n == 0 {
		return map[int]bool{}
	}
	if n == 1 {
		return map[int]bool{0: true}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, n)
	whiteDeg := func(v int) int {
		d := 0
		for _, u := range g.Neighbors(v) {
			if color[u] == white {
				d++
			}
		}
		return d
	}
	// Seed: node with the most neighbors (all white at the start).
	best := 0
	for v := 1; v < n; v++ {
		if g.Degree(v) > g.Degree(best) {
			best = v
		}
	}
	blacken := func(v int) {
		color[v] = black
		for _, u := range g.Neighbors(v) {
			if color[u] == white {
				color[u] = gray
			}
		}
	}
	color[best] = gray // so blacken sees a consistent state
	blacken(best)
	whites := n - 1 - g.Degree(best)
	for whites > 0 {
		pick, pickDeg := -1, 0
		for v := 0; v < n; v++ {
			if color[v] != gray {
				continue
			}
			if d := whiteDeg(v); d > pickDeg {
				pick, pickDeg = v, d
			}
		}
		if pick == -1 {
			break // disconnected remainder: cannot dominate further
		}
		whites -= pickDeg
		blacken(pick)
	}
	out := make(map[int]bool)
	for v := 0; v < n; v++ {
		if color[v] == black {
			out[v] = true
		}
	}
	return out
}
