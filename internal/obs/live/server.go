package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"clustercast/internal/obs"
)

// promName mangles a registry metric name ("broadcast.batch_runs",
// "scale.dynamic25.heap_high_water") into a Prometheus-legal identifier
// under the module-wide clustercast_ prefix.
func promName(name string) string {
	mangled := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return "clustercast_" + mangled
}

// writeMetrics renders the registry (plus process gauges and progress
// meters) in the Prometheus text exposition format.
func writeMetrics(w *bufio.Writer, reg *obs.Registry, start time.Time) {
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		n := promName(c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range snap.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range snap.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.Le >= 0 {
				le = fmt.Sprintf("%d", b.Le)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	now := time.Now()
	for _, p := range reg.ProgressSnapshot(now) {
		fmt.Fprintf(w, "clustercast_progress_done{task=%q} %d\n", p.Name, p.Done)
		fmt.Fprintf(w, "clustercast_progress_total{task=%q} %d\n", p.Name, p.Total)
		fmt.Fprintf(w, "clustercast_progress_rate{task=%q} %.3f\n", p.Name, p.Rate)
	}
	for _, s := range obs.StageSnapshot() {
		fmt.Fprintf(w, "clustercast_stage_wall_seconds{stage=%q} %.6f\n", s.Name, float64(s.WallNs)/1e9)
		fmt.Fprintf(w, "clustercast_stage_runs{stage=%q} %d\n", s.Name, s.Count)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# TYPE clustercast_heap_alloc_bytes gauge\nclustercast_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# TYPE clustercast_heap_inuse_bytes gauge\nclustercast_heap_inuse_bytes %d\n", ms.HeapInuse)
	fmt.Fprintf(w, "# TYPE clustercast_goroutines gauge\nclustercast_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# TYPE clustercast_uptime_seconds gauge\nclustercast_uptime_seconds %.3f\n", time.Since(start).Seconds())
}

// NewHandler builds the telemetry mux: /metrics (Prometheus text),
// /progress and /stages (JSON arrays), and the standard net/http/pprof
// endpoints under /debug/pprof/. reg nil selects obs.Default.
func NewHandler(reg *obs.Registry) http.Handler {
	if reg == nil {
		reg = obs.Default
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		writeMetrics(bw, reg, start)
		bw.Flush()
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		views := reg.ProgressSnapshot(time.Now())
		if views == nil {
			views = []obs.ProgressView{}
		}
		json.NewEncoder(w).Encode(views)
	})
	mux.HandleFunc("/stages", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		stages := obs.StageSnapshot()
		if stages == nil {
			stages = []obs.StageStat{}
		}
		json.NewEncoder(w).Encode(stages)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve listens on addr (e.g. "127.0.0.1:9090", or ":0" for an ephemeral
// port) and serves the telemetry handler in a background goroutine.
func Serve(addr string, reg *obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: telemetry listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(reg)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
