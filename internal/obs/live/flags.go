package live

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"
)

// Flags is the telemetry flag bundle every driver wires identically:
//
//	-telemetry addr        serve /metrics, /progress, /stages, pprof
//	-heartbeat file        stream heartbeat JSONL records to file
//	-hb-every duration     heartbeat sampling interval
//	-telemetry-scrape dir  self-scrape /metrics + /progress into dir on exit
//
// The scrape flag exists for CI smoke tests: instead of racing an external
// curl against the process lifetime, the driver scrapes its own endpoints
// right before shutdown, so `make telemetry-smoke` gets deterministic
// artifacts.
type Flags struct {
	Addr      string
	Heartbeat string
	Every     time.Duration
	ScrapeDir string
}

// Register installs the telemetry flags on fs (the drivers pass
// flag.CommandLine).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Addr, "telemetry", "",
		"serve live telemetry (/metrics, /progress, /stages, /debug/pprof) on this address (e.g. 127.0.0.1:9090; empty = off)")
	fs.StringVar(&f.Heartbeat, "heartbeat", "",
		"stream heartbeat records (JSONL) to this file while the run executes")
	fs.DurationVar(&f.Every, "hb-every", DefaultInterval, "heartbeat sampling interval")
	fs.StringVar(&f.ScrapeDir, "telemetry-scrape", "",
		"scrape this run's own /metrics and /progress into this directory before exit (requires -telemetry)")
}

// Active reports whether any telemetry output was requested — drivers use
// it to decide whether to flip obs.Enable alongside -manifest/-trace.
func (f *Flags) Active() bool {
	return f.Addr != "" || f.Heartbeat != "" || f.ScrapeDir != ""
}

// Session is the running telemetry for one driver invocation. A nil
// session (telemetry off) is safe to Close.
type Session struct {
	Sampler   *Sampler
	Server    *Server
	scrapeDir string
	out       io.Writer
}

// Start brings up whatever the flags asked for. The caller is responsible
// for having obs.Enable()d first (the drivers do this in the same block
// that handles -manifest). Progress lines go to out (the driver's status
// stream); pass nil to silence them.
func (f *Flags) Start(out io.Writer) (*Session, error) {
	if !f.Active() {
		return nil, nil
	}
	if f.ScrapeDir != "" && f.Addr == "" {
		return nil, fmt.Errorf("live: -telemetry-scrape requires -telemetry")
	}
	s := &Session{scrapeDir: f.ScrapeDir, out: out}
	if f.Addr != "" {
		srv, err := Serve(f.Addr, nil)
		if err != nil {
			return nil, err
		}
		s.Server = srv
		if out != nil {
			fmt.Fprintf(out, "telemetry: serving http://%s/metrics\n", srv.Addr())
		}
	}
	if f.Heartbeat != "" {
		smp, err := StartFile(f.Heartbeat, Options{Interval: f.Every})
		if err != nil {
			if s.Server != nil {
				s.Server.Close()
			}
			return nil, err
		}
		s.Sampler = smp
		if out != nil {
			fmt.Fprintf(out, "telemetry: heartbeats -> %s (every %v)\n", f.Heartbeat, f.Every)
		}
	}
	return s, nil
}

// scrape GETs one of the session's own endpoints into dir/name.
func (s *Session) scrape(path, name string) error {
	url := "http://" + s.Server.Addr() + path
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("live: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("live: scraping %s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("live: scraping %s: %w", url, err)
	}
	return os.WriteFile(filepath.Join(s.scrapeDir, name), body, 0o644)
}

// Close runs the end-of-run sequence: self-scrape the HTTP endpoints if
// requested, stop the server, then stop the sampler (which writes the
// final heartbeat). Nil-safe.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var err error
	if s.scrapeDir != "" && s.Server != nil {
		if mkerr := os.MkdirAll(s.scrapeDir, 0o755); mkerr != nil {
			err = mkerr
		} else if serr := s.scrape("/metrics", "metrics.prom"); serr != nil {
			err = serr
		} else if perr := s.scrape("/progress", "progress.json"); perr != nil {
			err = perr
		} else if s.out != nil {
			fmt.Fprintf(s.out, "telemetry: scraped /metrics and /progress into %s\n", s.scrapeDir)
		}
	}
	if s.Server != nil {
		if cerr := s.Server.Close(); err == nil {
			err = cerr
		}
	}
	if s.Sampler != nil {
		if serr := s.Sampler.Stop(); err == nil {
			err = serr
		}
	}
	return err
}
