package live

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"clustercast/internal/obs"
)

// withEnabled mirrors the obs test helper: metric recording on, restored
// to the zero-overhead default afterwards.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	obs.Enable()
	defer obs.Disable()
	f()
}

// goldenHeartbeat is a fully-populated record with every section active.
func goldenHeartbeat() Heartbeat {
	return Heartbeat{
		Seq:        3,
		ElapsedNs:  1500000000,
		Goroutines: 9,
		HeapAlloc:  1048576,
		HeapInuse:  2097152,
		HeapSys:    4194304,
		TotalAlloc: 8388608,
		NumGC:      2,
		Progress: []obs.ProgressView{
			{Name: "replicate", Done: 640, Total: 0, Rate: 426.667, ETASeconds: -1},
			{Name: "sweep.points", Done: 3, Total: 12, Rate: 2, ETASeconds: 4.5},
		},
		Counters: []obs.MetricValue{
			{Name: "broadcast.runs", Value: 640},
			{Name: "des.events", Value: 12345},
		},
		Gauges: []obs.MetricValue{
			{Name: "des.wheel_high_water", Value: 77},
		},
		Stages: []obs.StageStat{
			{Name: "dynamic25.kernel", Count: 3, WallNs: 900000, AllocBytes: 4096},
		},
	}
}

// TestHeartbeatGoldenFieldOrder pins the wire format byte for byte: field
// order, field presence, float precision. If this changes, downstream
// heartbeat consumers (cmd/trace -heartbeat, manetsimd) break.
func TestHeartbeatGoldenFieldOrder(t *testing.T) {
	hb := goldenHeartbeat()
	got := string(hb.AppendJSONL(nil))
	want := `{"seq":3,"elapsed_ns":1500000000,"goroutines":9,` +
		`"heap_alloc":1048576,"heap_inuse":2097152,"heap_sys":4194304,` +
		`"total_alloc":8388608,"num_gc":2,` +
		`"progress":[` +
		`{"name":"replicate","done":640,"total":0,"rate":426.667,"eta_s":-1.000},` +
		`{"name":"sweep.points","done":3,"total":12,"rate":2.000,"eta_s":4.500}],` +
		`"counters":[{"name":"broadcast.runs","value":640},{"name":"des.events","value":12345}],` +
		`"gauges":[{"name":"des.wheel_high_water","value":77}],` +
		`"stages":[{"name":"dynamic25.kernel","count":3,"wall_ns":900000,"alloc_bytes":4096}]}` + "\n"
	if got != want {
		t.Fatalf("heartbeat rendering drifted:\n got %s\nwant %s", got, want)
	}
}

func TestHeartbeatEmptySections(t *testing.T) {
	hb := Heartbeat{Seq: 1, Goroutines: 2}
	got := string(hb.AppendJSONL(nil))
	if !strings.Contains(got, `"progress":[],"counters":[],"gauges":[],"stages":[]`) {
		t.Fatalf("empty sections must render as []: %s", got)
	}
	if _, err := ParseLine([]byte(got)); err != nil {
		t.Fatalf("empty-section record did not validate: %v", err)
	}
}

func TestParseLineRoundTrip(t *testing.T) {
	hb := goldenHeartbeat()
	line := hb.AppendJSONL(nil)
	parsed, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if string(parsed.AppendJSONL(nil)) != string(line) {
		t.Fatal("parse/re-encode not a fixed point")
	}
}

func TestParseLineRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"seq":1,"elapsed_ns":0,"goroutines":1,"heap_alloc":0,"heap_inuse":0,"heap_sys":0,"total_alloc":0,"num_gc":0,"bogus":1,"progress":[],"counters":[],"gauges":[],"stages":[]}`,
		"field order":    `{"elapsed_ns":0,"seq":1,"goroutines":1,"heap_alloc":0,"heap_inuse":0,"heap_sys":0,"total_alloc":0,"num_gc":0,"progress":[],"counters":[],"gauges":[],"stages":[]}`,
		"missing fields": `{"seq":1,"goroutines":1}`,
		"zero seq":       `{"seq":0,"elapsed_ns":0,"goroutines":1,"heap_alloc":0,"heap_inuse":0,"heap_sys":0,"total_alloc":0,"num_gc":0,"progress":[],"counters":[],"gauges":[],"stages":[]}`,
		"not json":       `heartbeat?`,
	}
	for name, line := range cases {
		if _, err := ParseLine([]byte(line)); err == nil {
			t.Errorf("%s: ParseLine accepted %s", name, line)
		}
	}
}

func TestReadHeartbeatsSeqGap(t *testing.T) {
	var buf bytes.Buffer
	for _, seq := range []int64{1, 3} {
		hb := Heartbeat{Seq: seq, Goroutines: 1}
		buf.Write(hb.AppendJSONL(nil))
	}
	if _, err := ReadHeartbeats(&buf); err == nil {
		t.Fatal("seq gap not rejected")
	}
}

// TestSamplerStream drives a sampler against a private registry with a
// fake clock and validates the emitted stream end to end.
func TestSamplerStream(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("work.items")
	p := reg.Progress("work")
	var buf bytes.Buffer
	clock := time.Unix(1000, 0)
	s := NewSampler(&buf, Options{
		Registry: reg,
		Now:      func() time.Time { return clock },
	})
	withEnabled(t, func() {
		p.AddTotal(10)
		for i := 0; i < 3; i++ {
			c.Add(2)
			p.Add(2)
			clock = clock.Add(time.Second)
			if err := s.Sample(); err != nil {
				t.Fatal(err)
			}
		}
	})
	hbs, err := ReadHeartbeats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(hbs) != 3 {
		t.Fatalf("got %d heartbeats, want 3", len(hbs))
	}
	last := hbs[2]
	if last.ElapsedNs != (3 * time.Second).Nanoseconds() {
		t.Fatalf("elapsed_ns = %d", last.ElapsedNs)
	}
	if len(last.Counters) != 1 || last.Counters[0].Value != 6 {
		t.Fatalf("counters = %+v", last.Counters)
	}
	if len(last.Progress) != 1 || last.Progress[0].Done != 6 || last.Progress[0].Total != 10 {
		t.Fatalf("progress = %+v", last.Progress)
	}
}

// TestSamplerStartStop runs the real background loop briefly and checks
// Stop's final heartbeat makes the stream non-empty even when the run is
// shorter than the interval.
func TestSamplerStartStop(t *testing.T) {
	var buf syncBuffer
	s := NewSampler(&buf, Options{Interval: time.Hour})
	s.Start()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	hbs, err := ReadHeartbeats(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(hbs) != 1 {
		t.Fatalf("got %d heartbeats, want the final one", len(hbs))
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the sampler loop writes
// from its own goroutine).
type syncBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func (b *syncBuffer) lock() {
	if b.mu == nil {
		b.mu = make(chan struct{}, 1)
	}
	b.mu <- struct{}{}
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.lock()
	defer func() { <-b.mu }()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.lock()
	defer func() { <-b.mu }()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestServerEndpoints spins the HTTP server on an ephemeral port and
// scrapes every endpoint.
func TestServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	withEnabled(t, func() {
		reg.Counter("mac.collisions").Add(4)
		reg.Gauge("des.wheel_high_water").SetMax(17)
		reg.Histogram("lat", []int64{1, 10}).Observe(5)
		reg.Progress("sweep").AddTotal(8)
		reg.Progress("sweep").Add(2)
	})
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE clustercast_mac_collisions counter",
		"clustercast_mac_collisions 4",
		"clustercast_des_wheel_high_water 17",
		`clustercast_lat_bucket{le="10"} 1`,
		`clustercast_lat_bucket{le="+Inf"} 1`,
		"clustercast_lat_count 1",
		`clustercast_progress_done{task="sweep"} 2`,
		"clustercast_goroutines",
		"clustercast_heap_alloc_bytes",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	progress := get("/progress")
	if !strings.Contains(progress, `"name":"sweep"`) || !strings.Contains(progress, `"done":2`) {
		t.Errorf("/progress = %s", progress)
	}
	if got := get("/stages"); !strings.HasPrefix(got, "[") {
		t.Errorf("/stages = %s", got)
	}
	if got := get("/debug/pprof/cmdline"); got == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestPromName(t *testing.T) {
	if got := promName("broadcast.batch_runs"); got != "clustercast_broadcast_batch_runs" {
		t.Fatalf("promName = %s", got)
	}
	if got := promName("scale.dynamic25.heap-high"); got != "clustercast_scale_dynamic25_heap_high" {
		t.Fatalf("promName = %s", got)
	}
}
