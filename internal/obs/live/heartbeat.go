// Package live is the streaming half of the obs layer: a background
// sampler that folds registry snapshots, merged stage clocks, runtime
// memory stats and progress meters into append-only JSONL heartbeat
// records — the manetsimd wire format — plus an optional HTTP server
// exposing the same state as /metrics (Prometheus text), /progress and
// /stages (JSON), and net/http/pprof.
//
// The package follows the obs zero-overhead contract from the outside:
// nothing here runs unless a driver asked for telemetry, and the
// instrumented kernels it observes never know whether a sampler is
// attached — they only ever touch the atomic obs primitives.
package live

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"time"

	"clustercast/internal/obs"
)

// Heartbeat is one streamed telemetry record: where the run is (seq,
// elapsed), what the process looks like (goroutines, heap), and what the
// registry has accumulated so far (progress, counters, gauges, stages).
// The JSONL rendering is hand-built with a fixed field order so streams
// are golden-file stable; every field is always present.
type Heartbeat struct {
	Seq        int64              `json:"seq"`
	ElapsedNs  int64              `json:"elapsed_ns"`
	Goroutines int                `json:"goroutines"`
	HeapAlloc  uint64             `json:"heap_alloc"`
	HeapInuse  uint64             `json:"heap_inuse"`
	HeapSys    uint64             `json:"heap_sys"`
	TotalAlloc uint64             `json:"total_alloc"`
	NumGC      uint32             `json:"num_gc"`
	Progress   []obs.ProgressView `json:"progress"`
	Counters   []obs.MetricValue  `json:"counters"`
	Gauges     []obs.MetricValue  `json:"gauges"`
	Stages     []obs.StageStat    `json:"stages"`
}

// Collect builds a heartbeat from the registry, the process-wide stage
// accumulator, and a MemStats read. It is the expensive half of a sample
// (ReadMemStats stops the world briefly), so callers only invoke it at
// the sampling interval, never on a kernel path.
func Collect(reg *obs.Registry, seq int64, start, now time.Time) Heartbeat {
	if reg == nil {
		reg = obs.Default
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := reg.Snapshot()
	return Heartbeat{
		Seq:        seq,
		ElapsedNs:  now.Sub(start).Nanoseconds(),
		Goroutines: runtime.NumGoroutine(),
		HeapAlloc:  ms.HeapAlloc,
		HeapInuse:  ms.HeapInuse,
		HeapSys:    ms.HeapSys,
		TotalAlloc: ms.TotalAlloc,
		NumGC:      ms.NumGC,
		Progress:   reg.ProgressSnapshot(now),
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Stages:     obs.StageSnapshot(),
	}
}

// appendFloat renders floats at fixed three-decimal precision so records
// round-trip exactly through encoding/json (parse then re-encode yields
// the same bytes — the canonical-form check ParseLine relies on).
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'f', 3, 64)
}

// AppendJSONL appends the heartbeat's canonical JSONL rendering
// (including the trailing newline) to dst. Field order is fixed by
// construction; empty sections render as [] so the schema never varies.
func (hb *Heartbeat) AppendJSONL(dst []byte) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendInt(dst, hb.Seq, 10)
	dst = append(dst, `,"elapsed_ns":`...)
	dst = strconv.AppendInt(dst, hb.ElapsedNs, 10)
	dst = append(dst, `,"goroutines":`...)
	dst = strconv.AppendInt(dst, int64(hb.Goroutines), 10)
	dst = append(dst, `,"heap_alloc":`...)
	dst = strconv.AppendUint(dst, hb.HeapAlloc, 10)
	dst = append(dst, `,"heap_inuse":`...)
	dst = strconv.AppendUint(dst, hb.HeapInuse, 10)
	dst = append(dst, `,"heap_sys":`...)
	dst = strconv.AppendUint(dst, hb.HeapSys, 10)
	dst = append(dst, `,"total_alloc":`...)
	dst = strconv.AppendUint(dst, hb.TotalAlloc, 10)
	dst = append(dst, `,"num_gc":`...)
	dst = strconv.AppendUint(dst, uint64(hb.NumGC), 10)
	dst = append(dst, `,"progress":[`...)
	for i, p := range hb.Progress {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"name":`...)
		dst = strconv.AppendQuote(dst, p.Name)
		dst = append(dst, `,"done":`...)
		dst = strconv.AppendInt(dst, p.Done, 10)
		dst = append(dst, `,"total":`...)
		dst = strconv.AppendInt(dst, p.Total, 10)
		dst = append(dst, `,"rate":`...)
		dst = appendFloat(dst, p.Rate)
		dst = append(dst, `,"eta_s":`...)
		dst = appendFloat(dst, p.ETASeconds)
		dst = append(dst, '}')
	}
	dst = append(dst, `],"counters":[`...)
	dst = appendMetrics(dst, hb.Counters)
	dst = append(dst, `],"gauges":[`...)
	dst = appendMetrics(dst, hb.Gauges)
	dst = append(dst, `],"stages":[`...)
	for i, s := range hb.Stages {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"name":`...)
		dst = strconv.AppendQuote(dst, s.Name)
		dst = append(dst, `,"count":`...)
		dst = strconv.AppendInt(dst, s.Count, 10)
		dst = append(dst, `,"wall_ns":`...)
		dst = strconv.AppendInt(dst, s.WallNs, 10)
		dst = append(dst, `,"alloc_bytes":`...)
		dst = strconv.AppendInt(dst, s.AllocBytes, 10)
		dst = append(dst, '}')
	}
	dst = append(dst, `]}`...)
	dst = append(dst, '\n')
	return dst
}

// hbWire mirrors Heartbeat for parsing without omitempty surprises: the
// stage alloc_bytes field is always rendered here even when obs elides it
// from manifests.
type hbWire struct {
	Seq        int64             `json:"seq"`
	ElapsedNs  int64             `json:"elapsed_ns"`
	Goroutines int               `json:"goroutines"`
	HeapAlloc  uint64            `json:"heap_alloc"`
	HeapInuse  uint64            `json:"heap_inuse"`
	HeapSys    uint64            `json:"heap_sys"`
	TotalAlloc uint64            `json:"total_alloc"`
	NumGC      uint32            `json:"num_gc"`
	Progress   []progressWire    `json:"progress"`
	Counters   []obs.MetricValue `json:"counters"`
	Gauges     []obs.MetricValue `json:"gauges"`
	Stages     []stageWire       `json:"stages"`
}

type progressWire struct {
	Name       string  `json:"name"`
	Done       int64   `json:"done"`
	Total      int64   `json:"total"`
	Rate       float64 `json:"rate"`
	ETASeconds float64 `json:"eta_s"`
}

type stageWire struct {
	Name       string `json:"name"`
	Count      int64  `json:"count"`
	WallNs     int64  `json:"wall_ns"`
	AllocBytes int64  `json:"alloc_bytes"`
}

// ParseLine schema-validates one heartbeat JSONL line: it must decode
// with no unknown fields, and its canonical re-rendering must reproduce
// the input bytes exactly — which pins field order, field presence, and
// the fixed-precision float format all at once.
func ParseLine(line []byte) (Heartbeat, error) {
	var w hbWire
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return Heartbeat{}, fmt.Errorf("live: heartbeat: %w", err)
	}
	hb := Heartbeat{
		Seq:        w.Seq,
		ElapsedNs:  w.ElapsedNs,
		Goroutines: w.Goroutines,
		HeapAlloc:  w.HeapAlloc,
		HeapInuse:  w.HeapInuse,
		HeapSys:    w.HeapSys,
		TotalAlloc: w.TotalAlloc,
		NumGC:      w.NumGC,
	}
	for _, p := range w.Progress {
		hb.Progress = append(hb.Progress, obs.ProgressView{
			Name: p.Name, Done: p.Done, Total: p.Total, Rate: p.Rate, ETASeconds: p.ETASeconds,
		})
	}
	hb.Counters = w.Counters
	hb.Gauges = w.Gauges
	for _, s := range w.Stages {
		hb.Stages = append(hb.Stages, obs.StageStat{
			Name: s.Name, Count: s.Count, WallNs: s.WallNs, AllocBytes: s.AllocBytes,
		})
	}
	canon := hb.AppendJSONL(nil)
	if !bytes.Equal(bytes.TrimRight(canon, "\n"), bytes.TrimRight(line, "\n")) {
		return Heartbeat{}, fmt.Errorf("live: heartbeat line is not in canonical form (field order/presence mismatch)")
	}
	if hb.Seq < 1 {
		return Heartbeat{}, fmt.Errorf("live: heartbeat seq %d < 1", hb.Seq)
	}
	if hb.ElapsedNs < 0 {
		return Heartbeat{}, fmt.Errorf("live: heartbeat elapsed_ns %d < 0", hb.ElapsedNs)
	}
	if hb.Goroutines < 1 {
		return Heartbeat{}, fmt.Errorf("live: heartbeat goroutines %d < 1", hb.Goroutines)
	}
	return hb, nil
}

// ReadHeartbeats parses and validates a heartbeat JSONL stream: every
// line canonical, seq consecutive from 1, elapsed_ns non-decreasing.
// Blank lines are skipped; any violation is an error naming its line.
func ReadHeartbeats(r io.Reader) ([]Heartbeat, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var out []Heartbeat
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		hb, err := ParseLine(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if want := int64(len(out) + 1); hb.Seq != want {
			return nil, fmt.Errorf("line %d: heartbeat seq %d, want %d", line, hb.Seq, want)
		}
		if n := len(out); n > 0 && hb.ElapsedNs < out[n-1].ElapsedNs {
			return nil, fmt.Errorf("line %d: elapsed_ns went backwards (%d after %d)", line, hb.ElapsedNs, out[n-1].ElapsedNs)
		}
		out = append(out, hb)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("live: reading heartbeats: %w", err)
	}
	return out, nil
}

// appendMetrics renders one counter/gauge section body.
func appendMetrics(dst []byte, ms []obs.MetricValue) []byte {
	for i, m := range ms {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"name":`...)
		dst = strconv.AppendQuote(dst, m.Name)
		dst = append(dst, `,"value":`...)
		dst = strconv.AppendInt(dst, m.Value, 10)
		dst = append(dst, '}')
	}
	return dst
}
