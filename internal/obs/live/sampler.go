package live

import (
	"io"
	"os"
	"sync"
	"time"

	"clustercast/internal/obs"
)

// DefaultInterval is the sampling cadence when the caller doesn't pick
// one: one heartbeat per second keeps hour-long sweeps to a few thousand
// lines while still resolving per-stage transitions.
const DefaultInterval = time.Second

// Options configures a Sampler.
type Options struct {
	// Registry to snapshot; nil selects obs.Default.
	Registry *obs.Registry
	// Interval between heartbeats; <= 0 selects DefaultInterval.
	Interval time.Duration
	// Now overrides the clock (tests); nil selects time.Now.
	Now func() time.Time
}

// Sampler periodically collects a Heartbeat and appends its JSONL
// rendering to a writer. It owns a background goroutine between Start and
// Stop; Stop always writes one final heartbeat so short runs (or runs
// faster than one interval) still produce a complete record of their end
// state. All writes are serialized, and the line buffer is reused across
// samples.
type Sampler struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	reg    *obs.Registry
	every  time.Duration
	now    func() time.Time
	start  time.Time
	seq    int64
	buf    []byte
	err    error

	stop chan struct{}
	done chan struct{}
}

// NewSampler returns a sampler writing to w. It does not start the
// background goroutine; call Start, or drive Sample directly in tests.
func NewSampler(w io.Writer, opt Options) *Sampler {
	s := &Sampler{
		w:     w,
		reg:   opt.Registry,
		every: opt.Interval,
		now:   opt.Now,
	}
	if s.reg == nil {
		s.reg = obs.Default
	}
	if s.every <= 0 {
		s.every = DefaultInterval
	}
	if s.now == nil {
		s.now = time.Now
	}
	s.start = s.now()
	return s
}

// StartFile opens (creating or truncating) path, returns a started
// sampler appending heartbeats to it. Stop closes the file.
func StartFile(path string, opt Options) (*Sampler, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := NewSampler(f, opt)
	s.closer = f
	s.Start()
	return s, nil
}

// Sample collects and writes one heartbeat now. Safe to call concurrently
// with the background loop; the first write error sticks and is returned
// from Stop.
func (s *Sampler) Sample() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.seq++
	hb := Collect(s.reg, s.seq, s.start, s.now())
	s.buf = hb.AppendJSONL(s.buf[:0])
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
	return s.err
}

// Start launches the background sampling loop. Calling Start twice is a
// no-op until the first loop is stopped.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

func (s *Sampler) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// Stop halts the background loop, writes one final heartbeat, closes the
// underlying file if StartFile opened one, and returns the first error
// any write hit. Idempotent.
func (s *Sampler) Stop() error {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	err := s.Sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closer != nil {
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
		s.closer = nil
	}
	return err
}
