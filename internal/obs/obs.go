// Package obs is the repo's zero-overhead observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms), a broadcast trace
// recorder, per-stage wall/alloc clocks, and run manifests.
//
// The design goal is that instrumented kernels cost nothing when
// observability is off, which is the default:
//
//   - Metric mutation methods (Counter.Add, Gauge.Set, Histogram.Observe)
//     first check the package-level enabled flag — one relaxed atomic bool
//     load, no allocation, no lock — and return immediately when it is off.
//     Hot paths therefore call them unconditionally; cold paths that would
//     pay to *prepare* an observation (time.Now, ReadMemStats) guard with
//     Enabled() themselves.
//   - Trace recording is driven by an explicit *Tracer handle. A nil tracer
//     is the Nop default: engine loops guard every event with a local
//     `tr != nil` check that the branch predictor eats for free, and the
//     protocol-side hooks never run their per-element bookkeeping unless a
//     tracer is attached.
//
// Enable() is flipped by the CLIs when the user asks for a manifest or
// metrics; simulations never flip it themselves.
package obs

import "sync/atomic"

// enabled is the package-level gate metric mutations check. Off by
// default: an uninstrumented run must measure identically to one built
// without the obs package at all.
var enabled atomic.Bool

// Enable turns metric recording on (trace recording is controlled by
// attaching a Tracer, not by this flag).
func Enable() { enabled.Store(true) }

// Disable turns metric recording back off.
func Disable() { enabled.Store(false) }

// Enabled reports whether metric recording is on. Instrumentation that
// must *prepare* an observation (a time.Now call, a MemStats read) checks
// this before paying that cost; plain counter bumps just call Add, which
// performs the same check internally.
func Enabled() bool { return enabled.Load() }
