package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric with an atomic,
// allocation-free hot path. The zero-cost contract: Add on a disabled
// package (or a nil counter) is one predictable branch.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op when observability is disabled or c is nil.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time metric (last value wins).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set records the current value. No-op when disabled or g is nil.
func (g *Gauge) Set(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add shifts the current value by delta. No-op when disabled or g is nil.
func (g *Gauge) Add(delta int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark shape (wheel occupancy, per-stage heap peaks). No-op
// when disabled or g is nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bucket bounds are frozen at
// registration, so Observe is a short linear scan plus three atomic adds —
// no locks, no allocation. Observation i lands in the first bucket whose
// upper bound is >= v; values past the last bound land in the implicit
// overflow bucket.
type Histogram struct {
	name   string
	bounds []int64        // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value. No-op when disabled or h is nil.
func (h *Histogram) Observe(v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds named metrics. Registration (Counter/Gauge/Histogram) is
// idempotent and mutex-protected — it happens at package init or CLI
// startup, never on a hot path; the metrics themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	progress map[string]*Progress
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		progress: make(map[string]*Progress),
	}
}

// Default is the process-wide registry the package-level constructors
// register into; manifests snapshot it.
var Default = NewRegistry()

// NewCounter registers (or returns the existing) counter in Default.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers (or returns the existing) gauge in Default.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers (or returns the existing) histogram in Default.
func NewHistogram(name string, bounds []int64) *Histogram {
	return Default.Histogram(name, bounds)
}

// NewProgress registers (or returns the existing) progress meter in Default.
func NewProgress(name string) *Progress { return Default.Progress(name) }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (bounds of later calls are ignored —
// buckets are fixed for the registry's lifetime).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]int64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{name: name, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Progress returns the named progress meter, creating it on first use.
func (r *Registry) Progress(name string) *Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.progress[name]
	if p == nil {
		p = &Progress{name: name}
		r.progress[name] = p
	}
	return p
}

// Reset zeroes every registered metric, keeping the registrations (and the
// pointers instrumented code holds) intact. CLIs call it before a
// manifested run so the snapshot covers exactly that run.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.sum.Store(0)
		h.n.Store(0)
		for i := range h.counts {
			h.counts[i].Store(0)
		}
	}
	for _, p := range r.progress {
		p.reset()
	}
}

// MetricValue is one exported counter or gauge reading.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramBucket is one exported histogram bucket. Le is the inclusive
// upper bound; the overflow bucket reports Le = -1 (read: +Inf).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramValue is one exported histogram reading.
type HistogramValue struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot is a deterministic export of a registry: every section sorted
// by metric name, zero-valued metrics omitted so manifests only carry the
// signals the run actually produced.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters,omitempty"`
	Gauges     []MetricValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot exports the registry's current readings.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		if v := c.v.Load(); v != 0 {
			s.Counters = append(s.Counters, MetricValue{Name: name, Value: v})
		}
	}
	for name, g := range r.gauges {
		if v := g.v.Load(); v != 0 {
			s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: v})
		}
	}
	for name, h := range r.hists {
		if h.n.Load() == 0 {
			continue
		}
		hv := HistogramValue{Name: name, Count: h.n.Load(), Sum: h.sum.Load()}
		for i := range h.counts {
			le := int64(-1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hv.Buckets = append(hv.Buckets, HistogramBucket{Le: le, Count: h.counts[i].Load()})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// ProgressSnapshot exports every registered progress meter with at least
// one completed unit or a known total, sorted by name, as of now. Kept
// separate from Snapshot so run manifests (point-in-time provenance) do
// not grow rate/ETA fields that change between otherwise equal runs.
func (r *Registry) ProgressSnapshot(now time.Time) []ProgressView {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []ProgressView
	for _, p := range r.progress {
		v := p.View(now)
		if v.Done == 0 && v.Total == 0 {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
