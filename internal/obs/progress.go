package obs

import (
	"sync/atomic"
	"time"
)

// Progress is a live completion meter: a monotonically increasing done
// count against an optional total, with the start time of the first step
// recorded so samplers can derive rate and ETA. It follows the package's
// zero-cost contract — Step/Add on a disabled package (or a nil Progress)
// is one predictable branch, and the only time.Now call happens once, on
// the first enabled step.
//
// Totals are advisory: work whose extent is unknown up front (the adaptive
// replication loops, which stop on a confidence interval) reports done and
// rate only, and views carry ETA -1. Work with a known extent (sweep
// points, fixed replicate counts) calls AddTotal as it learns about units
// of work, and views carry a real ETA.
type Progress struct {
	name    string
	total   atomic.Int64
	done    atomic.Int64
	startNs atomic.Int64 // unix nanos of the first enabled step; 0 = unstarted
}

// Name returns the progress meter's registered name.
func (p *Progress) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Step records one completed unit. No-op when disabled or p is nil.
func (p *Progress) Step() { p.Add(1) }

// Add records n completed units. No-op when disabled or p is nil.
func (p *Progress) Add(n int64) {
	if p == nil || !enabled.Load() {
		return
	}
	if p.startNs.Load() == 0 {
		p.startNs.CompareAndSwap(0, time.Now().UnixNano())
	}
	p.done.Add(n)
}

// AddTotal grows the expected total by n. No-op when disabled or p is nil.
func (p *Progress) AddTotal(n int64) {
	if p == nil || !enabled.Load() {
		return
	}
	p.total.Add(n)
}

// SetTotal replaces the expected total. No-op when disabled or p is nil.
func (p *Progress) SetTotal(n int64) {
	if p == nil || !enabled.Load() {
		return
	}
	p.total.Store(n)
}

// Done returns the completed-unit count.
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

// Total returns the expected total (0 when unknown).
func (p *Progress) Total() int64 {
	if p == nil {
		return 0
	}
	return p.total.Load()
}

// ProgressView is one exported progress reading. Rate is completed units
// per second since the first step; ETASeconds is the projected remaining
// wall-clock, -1 when the total is unknown or nothing has completed yet.
type ProgressView struct {
	Name       string  `json:"name"`
	Done       int64   `json:"done"`
	Total      int64   `json:"total"`
	Rate       float64 `json:"rate"`
	ETASeconds float64 `json:"eta_s"`
}

// View exports the meter's reading as of now.
func (p *Progress) View(now time.Time) ProgressView {
	v := ProgressView{ETASeconds: -1}
	if p == nil {
		return v
	}
	v.Name = p.name
	v.Done = p.done.Load()
	v.Total = p.total.Load()
	start := p.startNs.Load()
	if start == 0 || v.Done == 0 {
		return v
	}
	elapsed := float64(now.UnixNano()-start) / float64(time.Second)
	if elapsed <= 0 {
		elapsed = float64(time.Nanosecond) / float64(time.Second)
	}
	v.Rate = float64(v.Done) / elapsed
	if v.Total > 0 && v.Rate > 0 {
		remaining := float64(v.Total-v.Done) / v.Rate
		if remaining < 0 {
			remaining = 0
		}
		v.ETASeconds = remaining
	}
	return v
}

// reset zeroes the meter (registry Reset).
func (p *Progress) reset() {
	p.total.Store(0)
	p.done.Store(0)
	p.startNs.Store(0)
}
