package obs

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// withEnabled runs f with metric recording on, restoring the default off
// state (tests elsewhere rely on the zero-overhead default).
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	Enable()
	defer Disable()
	f()
}

func TestCounterDisabledAndNil(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("disabled counter recorded %d", c.Value())
	}
	var nilC *Counter
	nilC.Inc() // must not panic
	if nilC.Value() != 0 {
		t.Fatal("nil counter value")
	}
	withEnabled(t, func() {
		c.Inc()
		c.Add(2)
		nilC.Inc() // still a no-op
	})
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("disabled gauge recorded")
	}
	withEnabled(t, func() {
		g.Set(7)
		g.Add(-2)
	})
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100})
	withEnabled(t, func() {
		for _, v := range []int64{1, 10, 11, 1000} {
			h.Observe(v)
		}
	})
	if h.Count() != 4 || h.Sum() != 1022 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot histograms = %d", len(s.Histograms))
	}
	want := []HistogramBucket{{Le: 10, Count: 2}, {Le: 100, Count: 1}, {Le: -1, Count: 1}}
	if !reflect.DeepEqual(s.Histograms[0].Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Histograms[0].Buckets, want)
	}
	var nilH *Histogram
	nilH.Observe(1)
}

func TestRegistryIdempotentAndReset(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("re-registration returned a different counter")
	}
	c := r.Counter("x")
	withEnabled(t, func() { c.Add(9) })
	r.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
	withEnabled(t, func() { c.Inc() })
	if c.Value() != 1 {
		t.Fatal("counter pointer went stale across Reset")
	}
}

func TestSnapshotSortedAndOmitsZeros(t *testing.T) {
	r := NewRegistry()
	b, a, z := r.Counter("b"), r.Counter("a"), r.Counter("zero")
	_ = z
	withEnabled(t, func() { b.Inc(); a.Add(2) })
	s := r.Snapshot()
	if len(s.Counters) != 2 {
		t.Fatalf("snapshot kept zero-valued metrics: %+v", s.Counters)
	}
	if s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("snapshot not sorted: %+v", s.Counters)
	}
}

func TestTracerRecordsAndResets(t *testing.T) {
	tr := NewTracer(8)
	tr.SetTime(3)
	tr.Send(0, 5, -1)
	tr.Deliver(1, 6, 5)
	tr.Duplicate(1, 7, 5)
	tr.GatewaySelect(2, 9)
	tr.CoveragePrune(2, 4, RulePiggybackedSet)
	tr.Collision(2, 8)
	evs := tr.Events()
	if len(evs) != 6 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("seq[%d] = %d", i, ev.Seq)
		}
	}
	// Protocol-side events carry the stamped time.
	if evs[3].T != 3 || evs[4].T != 3 {
		t.Fatalf("gateway/prune events did not carry SetTime: %+v %+v", evs[3], evs[4])
	}
	if evs[4].Rule != RulePiggybackedSet {
		t.Fatalf("prune rule = %v", evs[4].Rule)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || len(tr.Events()) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Send(i, i, -1)
	}
	if tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	// The oldest retained event reveals the gap.
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("retained seqs %d..%d", evs[0].Seq, evs[3].Seq)
	}
}

func TestNilTracerIsNop(t *testing.T) {
	var tr *Tracer
	tr.SetTime(1)
	tr.Send(0, 0, -1)
	tr.Deliver(0, 0, 0)
	tr.Duplicate(0, 0, 0)
	tr.Collision(0, 0)
	tr.GatewaySelect(0, 0)
	tr.CoveragePrune(0, 0, RuleUpstreamSender)
	tr.Reset()
	if tr.Len() != 0 || tr.Now() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer not inert")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil tracer wrote output")
	}
}

func TestJSONLStableFieldOrder(t *testing.T) {
	tr := NewTracer(4)
	tr.Send(0, 1, -1)
	tr.SetTime(1)
	tr.CoveragePrune(3, 4, RuleSecondHopAdjacent)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":0,"t":0,"ev":"send","node":1,"peer":-1,"rule":""}
{"seq":1,"t":1,"ev":"coverage-prune","node":3,"peer":4,"rule":"second-hop-adjacent"}
`
	if buf.String() != want {
		t.Fatalf("JSONL output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Send(0, 1, -1)
	tr.Deliver(1, 2, 1)
	tr.Duplicate(1, 3, 1)
	tr.SetTime(1)
	tr.GatewaySelect(2, 5)
	tr.CoveragePrune(2, 6, RuleUpstreamSender)
	tr.Collision(2, 7)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events()) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, tr.Events())
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"seq":0,"t":0,"ev":"warp","node":0,"peer":0,"rule":""}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"seq":0,"t":0,"ev":"send","node":0,"peer":0,"rule":"bogus"}` + "\n")); err == nil {
		t.Fatal("unknown rule accepted")
	}
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank lines: %v %v", evs, err)
	}
}

func TestKindAndRuleParseInverse(t *testing.T) {
	for k := EvSend; k <= EvStall; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil || got != k {
			t.Fatalf("kind %v: parse(%q) = %v, %v", k, k.String(), got, err)
		}
	}
	for r := RuleNone; r <= RuleSecondHopAdjacent; r++ {
		got, err := ParsePruneRule(r.String())
		if err != nil || got != r {
			t.Fatalf("rule %v: parse(%q) = %v, %v", r, r.String(), got, err)
		}
	}
}

func TestStageClockMergeDeterministic(t *testing.T) {
	ResetStages()
	defer ResetStages()
	var a, b StageClock
	a.Add("sample", 100)
	a.Add("replicate", 300)
	b.Add("replicate", 200)
	b.AddAlloc("replicate", 4096)
	MergeStages(&a, &b, nil)
	got := StageSnapshot()
	want := []StageStat{
		{Name: "replicate", Count: 2, WallNs: 500, AllocBytes: 4096},
		{Name: "sample", Count: 1, WallNs: 100},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
	// Folding the same clocks in the other order yields the same snapshot:
	// stage sums commute and the export is sorted by name.
	ResetStages()
	MergeStages(&b, &a)
	if again := StageSnapshot(); !reflect.DeepEqual(again, want) {
		t.Fatalf("order-dependent merge: %+v", again)
	}
}

func TestStageClockObserve(t *testing.T) {
	var c StageClock
	c.Observe("x", time.Now().Add(-time.Millisecond))
	s := c.Stats()
	if len(s) != 1 || s[0].Count != 1 || s[0].WallNs < time.Millisecond.Nanoseconds() {
		t.Fatalf("stats = %+v", s)
	}
	c.Reset()
	if len(c.Stats()) != 0 {
		t.Fatal("Reset left stages")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	ResetStages()
	defer ResetStages()
	defer Default.Reset()
	withEnabled(t, func() {
		NewCounter("manifest.test.counter").Add(3)
		var c StageClock
		c.Add("kernel", 1234)
		MergeStages(&c)

		m := NewManifest("testtool")
		m.Seed = 42
		m.Workers = 4
		m.Param("n", 100).Param("d", 6.5)
		m.AddOutput("b.csv")
		m.AddOutput("a.csv")
		path := filepath.Join(t.TempDir(), "manifest.json")
		if err := m.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := ReadManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tool != "testtool" || got.Seed != 42 || got.Workers != 4 {
			t.Fatalf("header fields: %+v", got)
		}
		if got.Params["n"] != "100" || got.Params["d"] != "6.5" {
			t.Fatalf("params: %+v", got.Params)
		}
		if !reflect.DeepEqual(got.Outputs, []string{"a.csv", "b.csv"}) {
			t.Fatalf("outputs not sorted: %v", got.Outputs)
		}
		if len(got.Stages) != 1 || got.Stages[0].Name != "kernel" {
			t.Fatalf("stages: %+v", got.Stages)
		}
		found := false
		for _, c := range got.Metrics.Counters {
			found = found || (c.Name == "manifest.test.counter" && c.Value == 3)
		}
		if !found {
			t.Fatalf("metric snapshot missing test counter: %+v", got.Metrics.Counters)
		}
		if got.GoVersion == "" || got.Start == "" {
			t.Fatalf("environment fields empty: %+v", got)
		}
	})
}

func TestReadManifestMissing(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing manifest accepted")
	}
}
