package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"
)

// Manifest records everything needed to reproduce one CLI run: the exact
// invocation, the environment it ran in, and the per-stage cost and metric
// readings it produced. Every figure/CSV a run writes gets a manifest next
// to it, so the provenance of any number is one file away.
//
// Params is a plain string map; encoding/json marshals map keys sorted, so
// the serialized form is deterministic.
type Manifest struct {
	Tool      string            `json:"tool"`
	Args      []string          `json:"args,omitempty"`
	Params    map[string]string `json:"params,omitempty"`
	Seed      uint64            `json:"seed"`
	GoVersion string            `json:"go_version"`
	GitRev    string            `json:"git_rev"`
	GitDirty  bool              `json:"git_dirty,omitempty"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	NumCPU    int               `json:"num_cpu"`
	Workers   int               `json:"workers,omitempty"`
	Start     string            `json:"start"`
	WallNs    int64             `json:"wall_ns"`
	Outputs   []string          `json:"outputs,omitempty"`
	Stages    []StageStat       `json:"stages,omitempty"`
	Metrics   Snapshot          `json:"metrics"`

	started time.Time
}

// vcsInfo reads the git revision baked into the binary by the Go
// toolchain's -buildvcs stamping ("unknown" for go test binaries and
// builds outside a checkout).
func vcsInfo() (rev string, dirty bool) {
	rev = "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return rev, false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}

// NewManifest starts a manifest for the named tool, capturing the command
// line and the build/host environment. Finish (or WriteFile) closes it.
func NewManifest(tool string) *Manifest {
	rev, dirty := vcsInfo()
	return &Manifest{
		Tool:      tool,
		Args:      append([]string(nil), os.Args[1:]...),
		Params:    make(map[string]string),
		GoVersion: runtime.Version(),
		GitRev:    rev,
		GitDirty:  dirty,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Start:     time.Now().UTC().Format(time.RFC3339),
		started:   time.Now(),
	}
}

// Param records one named run parameter (flag value, derived setting).
func (m *Manifest) Param(key string, value any) *Manifest {
	m.Params[key] = fmt.Sprint(value)
	return m
}

// AddOutput records the path of a file the run produced.
func (m *Manifest) AddOutput(path string) { m.Outputs = append(m.Outputs, path) }

// Finish stamps the wall-clock and pulls the per-stage stats and metric
// snapshot from the registry. Idempotent enough to call right before
// serialization.
func (m *Manifest) Finish() {
	m.WallNs = time.Since(m.started).Nanoseconds()
	m.Stages = StageSnapshot()
	m.Metrics = Default.Snapshot()
	sort.Strings(m.Outputs)
}

// WriteFile finishes the manifest and writes it as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	m.Finish()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: manifest %s: %w", path, err)
	}
	return &m, nil
}
