package obs

import (
	"sort"
	"sync"
	"time"
)

// StageStat is the aggregated cost of one named pipeline stage: how many
// times it ran, total wall-clock, and (when the caller measures it) total
// bytes allocated.
type StageStat struct {
	Name       string `json:"name"`
	Count      int64  `json:"count"`
	WallNs     int64  `json:"wall_ns"`
	AllocBytes int64  `json:"alloc_bytes,omitempty"`
}

// StageClock accumulates per-stage costs on a single worker without any
// synchronization; each replication worker owns one and the results are
// folded together afterwards with MergeStages. Stage lookup is a linear
// scan — pipelines have a handful of stages, and a map would allocate.
type StageClock struct {
	stats []StageStat
}

// slot returns the accumulator for name, appending it on first use.
func (c *StageClock) slot(name string) *StageStat {
	for i := range c.stats {
		if c.stats[i].Name == name {
			return &c.stats[i]
		}
	}
	c.stats = append(c.stats, StageStat{Name: name})
	return &c.stats[len(c.stats)-1]
}

// Add folds one run of the stage: count++ and wallNs of wall-clock.
func (c *StageClock) Add(name string, wallNs int64) {
	s := c.slot(name)
	s.Count++
	s.WallNs += wallNs
}

// AddAlloc folds allocated bytes into the stage without counting a run.
func (c *StageClock) AddAlloc(name string, bytes int64) {
	c.slot(name).AllocBytes += bytes
}

// Observe is Add(name, time.Since(start)) — the usual call shape:
//
//	t0 := time.Now(); kernel(); clock.Observe("kernel", t0)
func (c *StageClock) Observe(name string, start time.Time) {
	c.Add(name, time.Since(start).Nanoseconds())
}

// Reset empties the clock, keeping its storage.
func (c *StageClock) Reset() { c.stats = c.stats[:0] }

// Stats returns a copy of the accumulated stages sorted by name.
func (c *StageClock) Stats() []StageStat {
	out := append([]StageStat(nil), c.stats...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// merge folds every stage of o into c.
func (c *StageClock) merge(o *StageClock) {
	for i := range o.stats {
		s := c.slot(o.stats[i].Name)
		s.Count += o.stats[i].Count
		s.WallNs += o.stats[i].WallNs
		s.AllocBytes += o.stats[i].AllocBytes
	}
}

// stageGlobal is the process-wide stage accumulator manifests read.
var (
	stageMu     sync.Mutex
	stageGlobal StageClock
)

// MergeStages folds the given per-worker clocks into the process-wide
// accumulator, in argument order. The aggregation is deterministic: stage
// sums commute, clocks are folded in the caller's (worker-index) order,
// and the exported snapshot is sorted by name — no map iteration anywhere,
// so equal inputs always export identically.
func MergeStages(clocks ...*StageClock) {
	stageMu.Lock()
	defer stageMu.Unlock()
	for _, c := range clocks {
		if c != nil {
			stageGlobal.merge(c)
		}
	}
}

// StageSnapshot returns the process-wide per-stage stats sorted by name.
func StageSnapshot() []StageStat {
	stageMu.Lock()
	defer stageMu.Unlock()
	return stageGlobal.Stats()
}

// ResetStages clears the process-wide stage accumulator.
func ResetStages() {
	stageMu.Lock()
	defer stageMu.Unlock()
	stageGlobal.Reset()
}
