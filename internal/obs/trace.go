package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// EventKind types a broadcast trace event.
type EventKind uint8

const (
	// EvNone is the zero kind; never recorded.
	EvNone EventKind = iota
	// EvSend: Node transmitted the packet at time T (Peer is the upstream
	// sender that triggered the relay, -1 for the source).
	EvSend
	// EvDeliver: Node received its first copy at time T from Peer.
	EvDeliver
	// EvDuplicate: Node suppressed a redundant copy from Peer at time T.
	EvDuplicate
	// EvGatewaySelect: clusterhead Node designated Peer as a forwarding
	// gateway while building its packet at time T.
	EvGatewaySelect
	// EvCoveragePrune: clusterhead Node dropped clusterhead Peer from its
	// updated coverage set at time T, because of Rule.
	EvCoveragePrune
	// EvCollision: Node heard >= 2 transmissions in slot T and decoded
	// none (the slotted-MAC engine only).
	EvCollision
	// EvNodeCrash: Node went down at time T (fault-schedule churn).
	EvNodeCrash
	// EvNodeRecover: Node came back up at time T.
	EvNodeRecover
	// EvRepair: the backbone repair pass re-ran clusterhead Node's gateway
	// selection at time T (Peer is the number of gateways selected).
	EvRepair
	// EvRetransmit: reliable-broadcast sender Node re-sent its packet in
	// retransmission round T (Peer is the number of uncovered neighbors
	// that triggered the retry).
	EvRetransmit
	// EvStall: the reliable-broadcast retransmission schedule stalled in
	// round T — every pending sender was backing off or down — and the run
	// ended Degraded (Node is the count of nodes still uncovered).
	EvStall
)

// kindNames is the canonical wire spelling of each kind.
var kindNames = [...]string{
	EvNone:          "",
	EvSend:          "send",
	EvDeliver:       "deliver",
	EvDuplicate:     "duplicate-suppress",
	EvGatewaySelect: "gateway-select",
	EvCoveragePrune: "coverage-prune",
	EvCollision:     "collision",
	EvNodeCrash:     "node-crash",
	EvNodeRecover:   "node-recover",
	EvRepair:        "backbone-repair",
	EvRetransmit:    "retransmit",
	EvStall:         "stall",
}

// String returns the wire spelling of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseEventKind inverts EventKind.String.
func ParseEventKind(s string) (EventKind, error) {
	for k, name := range kindNames {
		if k != int(EvNone) && name == s {
			return EventKind(k), nil
		}
	}
	return EvNone, fmt.Errorf("obs: unknown event kind %q", s)
}

// PruneRule identifies which exclusion of the paper's updated-coverage
// rule C(v) ← C(v) − C(u) − {u} − CH(N(r)) fired for a pruned clusterhead.
type PruneRule uint8

const (
	// RuleNone marks non-prune events.
	RuleNone PruneRule = iota
	// RuleUpstreamSender: the pruned head is the upstream clusterhead u
	// itself (the − {u} term).
	RuleUpstreamSender
	// RulePiggybackedSet: the pruned head was in the coverage set C(u)
	// piggybacked on the received packet (the − C(u) term).
	RulePiggybackedSet
	// RuleSecondHopAdjacent: the pruned head is adjacent to the immediate
	// transmitter r and heard r's transmission itself (the − CH(N(r))
	// term, the 2.5-hop case's second-hop exclusion).
	RuleSecondHopAdjacent
)

// ruleNames is the canonical wire spelling of each rule.
var ruleNames = [...]string{
	RuleNone:              "",
	RuleUpstreamSender:    "upstream-sender",
	RulePiggybackedSet:    "piggybacked-set",
	RuleSecondHopAdjacent: "second-hop-adjacent",
}

// String returns the wire spelling of the rule ("" for RuleNone).
func (r PruneRule) String() string {
	if int(r) < len(ruleNames) {
		return ruleNames[r]
	}
	return fmt.Sprintf("rule(%d)", uint8(r))
}

// ParsePruneRule inverts PruneRule.String ("" parses to RuleNone).
func ParsePruneRule(s string) (PruneRule, error) {
	for r, name := range ruleNames {
		if name == s {
			return PruneRule(r), nil
		}
	}
	return RuleNone, fmt.Errorf("obs: unknown prune rule %q", s)
}

// Event is one typed broadcast trace record.
type Event struct {
	// Seq is the global record order (monotonic per tracer, survives ring
	// overwrites: gaps at the front reveal dropped history).
	Seq int64
	// T is the simulation time unit / MAC slot the event belongs to.
	T int
	// Kind types the event.
	Kind EventKind
	// Node is the acting node.
	Node int
	// Peer is the counterpart node: the sender for deliver/duplicate, the
	// pruned clusterhead, the selected gateway, the relay trigger for
	// send; -1 when there is none.
	Peer int
	// Rule is set on coverage-prune events only.
	Rule PruneRule
}

// Tracer records typed events into a preallocated ring buffer. When the
// ring fills, the oldest events are overwritten and Dropped counts them;
// Seq numbers stay monotonic so consumers can detect the truncation.
//
// A nil *Tracer is the Nop default: every method is nil-safe, and engine
// hot loops additionally guard with a local `tr != nil` so the disabled
// path costs one predicted branch. A tracer is single-goroutine state,
// like the engine workspaces it rides along with.
type Tracer struct {
	buf     []Event
	start   int // ring index of the oldest retained event
	n       int // retained events
	seq     int64
	dropped int64
	now     int // current simulation time for protocol-side events
}

// DefaultTraceCap is the ring capacity NewTracer(0) preallocates; at 32
// bytes per event it holds a full broadcast on paper-scale networks.
const DefaultTraceCap = 1 << 16

// NewTracer returns a tracer with the given ring capacity (<= 0 selects
// DefaultTraceCap). The ring is allocated once, up front.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// record pushes one event onto the ring.
func (t *Tracer) record(ev Event) {
	ev.Seq = t.seq
	t.seq++
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = ev
		t.n++
		return
	}
	t.buf[t.start] = ev
	t.start = (t.start + 1) % len(t.buf)
	t.dropped++
}

// SetTime stamps the current simulation time; protocol-side events
// recorded before the next SetTime (gateway-select, coverage-prune) carry
// it. The engines call this, protocols never do.
func (t *Tracer) SetTime(now int) {
	if t != nil {
		t.now = now
	}
}

// Now returns the last stamped simulation time.
func (t *Tracer) Now() int {
	if t == nil {
		return 0
	}
	return t.now
}

// Send records a transmission by node at time tm, triggered by the
// transmission of peer (-1 for the source's initial send).
func (t *Tracer) Send(tm, node, peer int) {
	if t == nil {
		return
	}
	t.record(Event{T: tm, Kind: EvSend, Node: node, Peer: peer})
}

// Deliver records node's first reception at time tm from sender from.
func (t *Tracer) Deliver(tm, node, from int) {
	if t == nil {
		return
	}
	t.record(Event{T: tm, Kind: EvDeliver, Node: node, Peer: from})
}

// Duplicate records a suppressed redundant copy at node from sender from.
func (t *Tracer) Duplicate(tm, node, from int) {
	if t == nil {
		return
	}
	t.record(Event{T: tm, Kind: EvDuplicate, Node: node, Peer: from})
}

// Collision records a receiver-side collision at node in slot tm.
func (t *Tracer) Collision(tm, node int) {
	if t == nil {
		return
	}
	t.record(Event{T: tm, Kind: EvCollision, Node: node, Peer: -1})
}

// GatewaySelect records clusterhead head designating gateway as a forward
// node, at the current simulation time.
func (t *Tracer) GatewaySelect(head, gateway int) {
	if t == nil {
		return
	}
	t.record(Event{T: t.now, Kind: EvGatewaySelect, Node: head, Peer: gateway})
}

// CoveragePrune records clusterhead head dropping clusterhead pruned from
// its updated coverage set because of rule, at the current simulation
// time.
func (t *Tracer) CoveragePrune(head, pruned int, rule PruneRule) {
	if t == nil {
		return
	}
	t.record(Event{T: t.now, Kind: EvCoveragePrune, Node: head, Peer: pruned, Rule: rule})
}

// NodeCrash records node going down at time tm (fault-schedule churn).
func (t *Tracer) NodeCrash(tm, node int) {
	if t == nil {
		return
	}
	t.record(Event{T: tm, Kind: EvNodeCrash, Node: node, Peer: -1})
}

// NodeRecover records node coming back up at time tm.
func (t *Tracer) NodeRecover(tm, node int) {
	if t == nil {
		return
	}
	t.record(Event{T: tm, Kind: EvNodeRecover, Node: node, Peer: -1})
}

// Repair records the backbone repair pass re-running head's gateway
// selection, yielding gateways selected nodes, at the current simulation
// time.
func (t *Tracer) Repair(head, gateways int) {
	if t == nil {
		return
	}
	t.record(Event{T: t.now, Kind: EvRepair, Node: head, Peer: gateways})
}

// Retransmit records reliable sender node re-sending its packet in
// retransmission round tm, triggered by uncovered pending neighbors.
func (t *Tracer) Retransmit(tm, node, uncovered int) {
	if t == nil {
		return
	}
	t.record(Event{T: tm, Kind: EvRetransmit, Node: node, Peer: uncovered})
}

// Stall records the reliable retransmission schedule stalling in round tm
// with uncovered nodes still missing the packet (the Degraded outcome).
func (t *Tracer) Stall(tm, uncovered int) {
	if t == nil {
		return
	}
	t.record(Event{T: tm, Kind: EvStall, Node: uncovered, Peer: -1})
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Reset empties the tracer for the next run, keeping the ring allocation.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.start, t.n, t.seq, t.dropped, t.now = 0, 0, 0, 0, 0
}

// Events returns the retained events in record order as a fresh slice.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// writeEvent renders one event as a JSONL line. The field order is fixed
// by construction (hand-rendered, not reflected), so traces are golden-file
// stable; every field is always present.
func writeEvent(w *bufio.Writer, ev Event) error {
	_, err := fmt.Fprintf(w, `{"seq":%d,"t":%d,"ev":%q,"node":%d,"peer":%d,"rule":%q}`+"\n",
		ev.Seq, ev.T, ev.Kind.String(), ev.Node, ev.Peer, ev.Rule.String())
	return err
}

// WriteJSONL streams the retained events to w, one JSON object per line,
// in record order with a stable field order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t != nil {
		for i := 0; i < t.n; i++ {
			if err := writeEvent(bw, t.buf[(t.start+i)%len(t.buf)]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// eventJSON is the wire form of an Event.
type eventJSON struct {
	Seq  int64  `json:"seq"`
	T    int    `json:"t"`
	Ev   string `json:"ev"`
	Node int    `json:"node"`
	Peer int    `json:"peer"`
	Rule string `json:"rule"`
}

// ReadJSONL parses a JSONL trace back into events. Blank lines are
// skipped; any malformed line is an error naming its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ej eventJSON
		if err := json.Unmarshal(raw, &ej); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		kind, err := ParseEventKind(ej.Ev)
		if err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		rule, err := ParsePruneRule(ej.Rule)
		if err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, Event{Seq: ej.Seq, T: ej.T, Kind: kind, Node: ej.Node, Peer: ej.Peer, Rule: rule})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}
