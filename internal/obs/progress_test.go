package obs

import (
	"testing"
	"time"
)

func TestProgressDisabledAndNil(t *testing.T) {
	r := NewRegistry()
	p := r.Progress("work")
	p.Step()
	p.AddTotal(10)
	if p.Done() != 0 || p.Total() != 0 {
		t.Fatalf("disabled progress recorded done=%d total=%d", p.Done(), p.Total())
	}
	var nilP *Progress
	nilP.Step()
	nilP.Add(3)
	nilP.AddTotal(5)
	nilP.SetTotal(5)
	if nilP.Done() != 0 || nilP.Total() != 0 || nilP.Name() != "" {
		t.Fatal("nil progress not zero")
	}
	v := nilP.View(time.Now())
	if v.ETASeconds != -1 {
		t.Fatalf("nil view eta = %v, want -1", v.ETASeconds)
	}
}

func TestProgressRateAndETA(t *testing.T) {
	r := NewRegistry()
	p := r.Progress("sweep")
	withEnabled(t, func() {
		p.AddTotal(100)
		p.Add(25)
	})
	start := time.Unix(0, p.startNs.Load())
	v := p.View(start.Add(5 * time.Second))
	if v.Name != "sweep" || v.Done != 25 || v.Total != 100 {
		t.Fatalf("view = %+v", v)
	}
	if v.Rate != 5 {
		t.Fatalf("rate = %v, want 5/s", v.Rate)
	}
	if v.ETASeconds != 15 {
		t.Fatalf("eta = %v, want 15s (75 left at 5/s)", v.ETASeconds)
	}
}

func TestProgressUnknownTotal(t *testing.T) {
	r := NewRegistry()
	p := r.Progress("adaptive")
	withEnabled(t, func() { p.Add(10) })
	v := p.View(time.Unix(0, p.startNs.Load()).Add(2 * time.Second))
	if v.Rate != 5 {
		t.Fatalf("rate = %v, want 5/s", v.Rate)
	}
	if v.ETASeconds != -1 {
		t.Fatalf("eta = %v, want -1 for unknown total", v.ETASeconds)
	}
}

func TestProgressIdempotentRegistrationAndReset(t *testing.T) {
	r := NewRegistry()
	a := r.Progress("x")
	if b := r.Progress("x"); a != b {
		t.Fatal("Progress not idempotent")
	}
	withEnabled(t, func() {
		a.SetTotal(4)
		a.Step()
	})
	r.Reset()
	if a.Done() != 0 || a.Total() != 0 || a.startNs.Load() != 0 {
		t.Fatal("Reset did not zero progress")
	}
}

func TestProgressSnapshotSortedAndFiltered(t *testing.T) {
	r := NewRegistry()
	r.Progress("idle") // never stepped: omitted
	b := r.Progress("b")
	a := r.Progress("a")
	withEnabled(t, func() {
		b.Step()
		a.AddTotal(3)
	})
	views := r.ProgressSnapshot(time.Now())
	if len(views) != 2 || views[0].Name != "a" || views[1].Name != "b" {
		t.Fatalf("snapshot = %+v, want [a b]", views)
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hw")
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("disabled SetMax recorded")
	}
	withEnabled(t, func() {
		g.SetMax(5)
		g.SetMax(3) // lower: ignored
		g.SetMax(8)
	})
	if g.Value() != 8 {
		t.Fatalf("gauge = %d, want high-water 8", g.Value())
	}
	var nilG *Gauge
	nilG.SetMax(1)
}
