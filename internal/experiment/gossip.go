package experiment

import (
	"fmt"

	"clustercast/internal/broadcast"
	"clustercast/internal/faults"
	"clustercast/internal/stats"
)

// gossipSeedSalt separates the gossip forward-coin stream from the fault
// coins and the topology stream: the batch kernel's coin words are a pure
// function of (seed, node), so without a salt the protocol would reuse the
// scenario's entropy verbatim.
const gossipSeedSalt = 0xA24BAED4963EE407

// GossipAblation sweeps the gossip forward probability and reads off the
// delivery ratio, one series per link-loss rate (loss 0 is the ideal MAC).
// ABL-GOSSIP. The phase transition — delivery climbing from near-zero to
// near-one over a narrow band of P — is the classic gossip result; loss
// shifts the critical probability right, which is exactly the margin a
// backbone does not have to pay.
//
// Every series is batchable: with SetBatchReplication on, each replicate
// batch advances 64 gossip replicates per machine word (lane-indexed
// forward coins, transition-free Gilbert–Elliott loss), making this the
// cheapest dense sweep in the suite.
func GossipAblation(ps []float64, losses []float64, n int, d float64, seed uint64, rule stats.StopRule) *Figure {
	workers := Parallelism()
	mk := func(loss float64) Series {
		name := "gossip-ideal"
		if loss > 0 {
			name = fmt.Sprintf("gossip-loss-%g", loss)
		}
		s := Series{Name: name, Points: make([]Point, len(ps))}
		forEachPoint(len(ps), workers, func(i int) {
			p := ps[i]
			sc := DefaultScenario(n, d, seed)
			sc.Rule = rule
			label := fmt.Sprintf("gossip-%g-%g", loss, p)
			iid := faults.Spec{LossGood: loss}
			if useBatch(iid) {
				spec := func(batch int) faults.Spec {
					if loss == 0 {
						return faults.Spec{}
					}
					return faults.Spec{LossGood: loss, Seed: batchSeed(sc.Seed, batch)}
				}
				s.Points[i] = BatchSweepPoint(sc, workers, p, label, spec, gossipKernel(p, sc.Seed^gossipSeedSalt))
				return
			}
			sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
				nw, _, r, ok := clusteredSample(sc, label, rep)
				if !ok {
					return 0, false
				}
				g := broadcast.Gossip{P: p, Seed: batchSeed(sc.Seed^gossipSeedSalt, rep)}
				opt := broadcast.Options{Loss: loss, Seed: sc.Seed ^ uint64(rep)}
				res := runOpts(nw.G, r.source(nw.N()), g, opt)
				return res.DeliveryRatio(nw.N()), true
			})
			if err != nil {
				s.Points[i] = Point{X: p}
				return
			}
			s.Points[i] = Point{X: p, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return s
	}
	series := make([]Series, 0, len(losses))
	for _, loss := range losses {
		series = append(series, mk(loss))
	}
	return &Figure{
		ID:     "gossip",
		Title:  fmt.Sprintf("Gossip phase transition under link loss (n=%d, d=%g)", n, d),
		XLabel: "forward probability", YLabel: "delivery ratio",
		Series: series,
	}
}
