package experiment

import (
	"testing"

	"clustercast/internal/stats"
)

// desRule keeps the figure bit-identity sweeps cheap but multi-replicate.
var desRule = stats.StopRule{Confidence: 0.95, RelHalfWidth: 0.5, MinReplicates: 12, MaxReplicates: 12}

// withDES runs f with the calendar engines enabled and restores the
// default afterwards (the toggle is process-global, like Parallelism).
func withDES(t *testing.T, f func()) {
	t.Helper()
	SetDES(true)
	defer SetDES(false)
	f()
}

// TestDESFiguresBitIdentical is the figure-level gate of the calendar
// port: with the opt-in on, every figure whose estimators run a ported
// engine — ideal radio (Lossy, Fig8), gossip under loss, the timed
// broadcast-storm suppressors (Storm), the slotted MAC (Collision) and
// the construction wire protocol (MessageComplexity) — must produce CSV
// output byte-identical to the scalar engines, at any worker count.
func TestDESFiguresBitIdentical(t *testing.T) {
	figs := map[string]func() *Figure{
		"lossy":  func() *Figure { return Lossy([]float64{0, 0.25}, 25, 8, 19, desRule) },
		"gossip": func() *Figure { return GossipAblation([]float64{0.5, 0.8}, []float64{0, 0.2}, 25, 8, 19, desRule) },
		"storm":  func() *Figure { return Storm([]float64{8, 14}, 25, 19, desRule) },
		"coll":   func() *Figure { return Collision([]float64{8, 14}, 25, 6, 19, desRule) },
		"msg":    func() *Figure { return MessageComplexity([]int{20, 35}, 6, 19, desRule) },
		"fig8":   func() *Figure { return Fig8(8, []int{20, 30}, 19, desRule) },
		"faults": func() *Figure { return Faults([]float64{0, 0.5}, 25, 8, 19, desRule) },
	}
	defer SetParallelism(0)
	for name, mk := range figs {
		SetParallelism(1)
		want := mk().CSV()
		for _, workers := range []int{1, 4, 8} {
			SetParallelism(workers)
			withDES(t, func() {
				if got := mk().CSV(); got != want {
					t.Errorf("%s: CSV differs from scalar with DES on at %d workers", name, workers)
				}
			})
			// The toggle itself must be a no-op for scalar reruns too.
			if got := mk().CSV(); got != want {
				t.Errorf("%s: scalar CSV not worker-invariant at %d workers", name, workers)
			}
		}
	}
}
