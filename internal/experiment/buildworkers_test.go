package experiment

import (
	"runtime"
	"testing"

	"clustercast/internal/coverage"
)

// TestBuildWorkersBitIdentical pins the -buildworkers contract at the
// experiment layer: routing every construction stage (unit-disk sweep,
// clusterhead election, coverage digest) through the sharded paths
// changes no estimator's numbers — means, CIs and replicate counts are
// equal to the sequential reference point for point.
func TestBuildWorkersBitIdentical(t *testing.T) {
	ests := []struct {
		name string
		est  WSEstimator
	}{
		{"static-size-2.5hop", StaticSizeEstimatorWS(coverage.Hop25)},
		{"static-size-3hop", StaticSizeEstimatorWS(coverage.Hop3)},
		{"mocds-size", MOCDSSizeEstimatorWS()},
		{"dynamic-fwd-2.5hop", DynamicForwardEstimatorWS(coverage.Hop25)},
		{"static-fwd-2.5hop", StaticForwardEstimatorWS(coverage.Hop25)},
		{"mocds-fwd", MOCDSForwardEstimatorWS()},
	}
	ns := smallNs()
	defer SetBuildWorkers(0)
	// The effective worker count is clamped to GOMAXPROCS; lift it so the
	// sharded dispatch actually runs even on a single-core box (the
	// goroutines just timeslice — identity is what's under test).
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	for _, p := range ests {
		SetBuildWorkers(0)
		want := sweepWS(p.name, ns, 6, 33, fastRule(), p.est)
		for _, w := range []int{1, 4} {
			SetBuildWorkers(w)
			got := sweepWS(p.name, ns, 6, 33, fastRule(), p.est)
			for i := range want.Points {
				if got.Points[i] != want.Points[i] {
					t.Errorf("%s buildworkers=%d: point %d = %+v, sequential %+v",
						p.name, w, i, got.Points[i], want.Points[i])
				}
			}
		}
	}
}

// The configured value is clamped to GOMAXPROCS for the goroutine count;
// 0 disables the knob entirely.
func TestBuildWorkersSetAndClamp(t *testing.T) {
	defer SetBuildWorkers(0)
	SetBuildWorkers(3)
	if BuildWorkers() != 3 {
		t.Fatalf("BuildWorkers() = %d, want 3", BuildWorkers())
	}
	if w := effectiveBuildWorkers(); w < 1 {
		t.Fatalf("effectiveBuildWorkers() = %d with knob on, want >= 1", w)
	}
	SetBuildWorkers(-5)
	if BuildWorkers() != 0 || effectiveBuildWorkers() != 0 {
		t.Fatalf("negative set must disable: got %d/%d", BuildWorkers(), effectiveBuildWorkers())
	}
}
