package experiment

import (
	"strings"
	"testing"

	"clustercast/internal/stats"
)

// fastRule keeps test runtimes low while still averaging several
// replicates.
func fastRule() stats.StopRule {
	return stats.StopRule{
		Confidence:    0.95,
		RelHalfWidth:  0.25,
		MinReplicates: 5,
		MaxReplicates: 12,
	}
}

func smallNs() []int { return []int{20, 40, 60} }

func TestFig6Shape(t *testing.T) {
	f := Fig6(6, smallNs(), 1, fastRule())
	if len(f.Series) != 3 {
		t.Fatalf("Fig6 must have 3 series, got %d", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) != len(smallNs()) {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
		// CDS sizes grow with n.
		if s.Points[0].Mean <= 0 || s.Points[len(s.Points)-1].Mean <= s.Points[0].Mean {
			t.Fatalf("series %s not increasing: %+v", s.Name, s.Points)
		}
	}
	// Paper: static ≈ MO_CDS with static slightly smaller; tolerate noise
	// but the static curve must not exceed MO_CDS by more than 10%.
	static := f.Series[0]
	mo := f.Series[2]
	for i := range static.Points {
		if static.Points[i].Mean > mo.Points[i].Mean*1.10 {
			t.Fatalf("static (%.2f) far above MO_CDS (%.2f) at n=%g",
				static.Points[i].Mean, mo.Points[i].Mean, static.Points[i].X)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	f := Fig7(18, smallNs(), 2, fastRule())
	if len(f.Series) != 3 {
		t.Fatalf("Fig7 must have 3 series")
	}
	// Paper's headline: the dynamic backbone uses far fewer forwarders
	// than MO_CDS, especially in dense networks.
	dyn := f.Series[0]
	mo := f.Series[2]
	for i := range dyn.Points {
		if dyn.Points[i].Mean >= mo.Points[i].Mean {
			t.Fatalf("dynamic (%.2f) not below MO_CDS (%.2f) at n=%g",
				dyn.Points[i].Mean, mo.Points[i].Mean, dyn.Points[i].X)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	f := Fig8(6, smallNs(), 3, fastRule())
	if len(f.Series) != 4 {
		t.Fatalf("Fig8 must have 4 series")
	}
	// dynamic-2.5hop must beat static-2.5hop at every size.
	static25, dyn25 := f.Series[0], f.Series[2]
	for i := range static25.Points {
		if dyn25.Points[i].Mean >= static25.Points[i].Mean {
			t.Fatalf("dynamic (%.2f) not below static (%.2f) at n=%g",
				dyn25.Points[i].Mean, static25.Points[i].Mean, dyn25.Points[i].X)
		}
	}
}

func TestFigIDNaming(t *testing.T) {
	if got := figID("fig6", 6); got != "fig6a" {
		t.Fatalf("figID d=6: %s", got)
	}
	if got := figID("fig6", 18); got != "fig6b" {
		t.Fatalf("figID d=18: %s", got)
	}
	if got := figID("fig6", 10); got != "fig6-d10" {
		t.Fatalf("figID d=10: %s", got)
	}
}

func TestCSVAndMarkdownRendering(t *testing.T) {
	f := &Figure{
		ID: "test", Title: "T", XLabel: "n", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 20, Mean: 1.5, CI: 0.1, Reps: 5}, {X: 40, Mean: 2.5, CI: 0.2, Reps: 5}}},
			{Name: "b", Points: []Point{{X: 20, Mean: 3, CI: 0.3, Reps: 5}, {X: 40, Mean: 4, CI: 0.4, Reps: 5}}},
		},
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "x,a,a_ci99,b,b_ci99\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "20,1.5000,0.1000,3.0000,0.3000") {
		t.Fatalf("CSV row wrong:\n%s", csv)
	}
	md := f.Markdown()
	if !strings.Contains(md, "| n | a | b |") || !strings.Contains(md, "1.50 ± 0.10") {
		t.Fatalf("Markdown wrong:\n%s", md)
	}
	chart := f.ASCIIChart(8)
	if !strings.Contains(chart, "A = a") || !strings.Contains(chart, "B = b") {
		t.Fatalf("ASCII chart legend missing:\n%s", chart)
	}
}

func TestMissingPointRendering(t *testing.T) {
	// A failed sweep point (Reps == 0) must render as an explicit missing
	// marker, never as a fake 0.0000 measurement.
	f := &Figure{
		ID: "miss", Title: "M", XLabel: "n", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 20, Mean: 1.5, CI: 0.1, Reps: 5}, {X: 40}}},
			{Name: "b", Points: []Point{{X: 20, Mean: 3, CI: 0.3, Reps: 7}, {X: 40, Mean: 4, CI: 0.4, Reps: 7}}},
		},
	}
	if !f.Series[0].Points[1].Missing() || f.Series[0].Points[0].Missing() {
		t.Fatal("Missing() must track Reps == 0")
	}
	csv := f.CSV()
	if !strings.Contains(csv, "40,,,4.0000,0.4000") {
		t.Fatalf("missing CSV point must leave empty cells:\n%s", csv)
	}
	if strings.Contains(csv, "40,0.0000") {
		t.Fatalf("missing point rendered as fake zero:\n%s", csv)
	}
	md := f.Markdown()
	if !strings.Contains(md, "| 40 | n/a | 4.00 ± 0.40 |") {
		t.Fatalf("missing Markdown point must render as n/a:\n%s", md)
	}
	// The ASCII chart must simply skip the missing point.
	chart := f.ASCIIChart(6)
	if !strings.Contains(chart, "A = a") {
		t.Fatalf("chart legend missing:\n%s", chart)
	}
}

func TestEmptyFigureRendering(t *testing.T) {
	f := &Figure{ID: "e", Title: "E", XLabel: "x", YLabel: "y"}
	if got := f.CSV(); got != "x\n" {
		t.Fatalf("empty CSV = %q", got)
	}
	if got := f.ASCIIChart(5); !strings.Contains(got, "empty") {
		t.Fatalf("empty chart = %q", got)
	}
}

func TestScenarioSampleDeterministic(t *testing.T) {
	sc := DefaultScenario(30, 6, 99)
	a, _, ok1 := sc.Sample("x", 0)
	b, _, ok2 := sc.Sample("x", 0)
	if !ok1 || !ok2 {
		t.Fatal("sampling failed")
	}
	if a.G.M() != b.G.M() {
		t.Fatal("same scenario+rep must give same topology")
	}
	c, _, _ := sc.Sample("x", 1)
	if c.G.M() == a.G.M() && c.Positions[0] == a.Positions[0] {
		t.Fatal("different reps should give different topologies")
	}
}

func TestDefaultNs(t *testing.T) {
	ns := DefaultNs()
	if len(ns) != 9 || ns[0] != 20 || ns[8] != 100 {
		t.Fatalf("DefaultNs = %v", ns)
	}
}

func TestApproxRatioSmall(t *testing.T) {
	f := ApproxRatio([]int{12, 16}, 5, 4, fastRule())
	if len(f.Series) != 4 {
		t.Fatalf("ratio figure must have 4 series")
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Reps == 0 {
				continue // all replicates skipped (exact MCDS unavailable)
			}
			if p.Mean < 1.0-1e-9 {
				t.Fatalf("series %s ratio %.2f below 1 at n=%g", s.Name, p.Mean, p.X)
			}
			if p.Mean > 6 {
				t.Fatalf("series %s ratio %.2f implausibly large", s.Name, p.Mean)
			}
		}
	}
}

func TestMessageComplexitySmall(t *testing.T) {
	f := MessageComplexity([]int{20, 60}, 6, 5, fastRule())
	perNode := f.Series[1]
	if perNode.Name != "messages-per-node" {
		t.Fatalf("series order changed: %s", perNode.Name)
	}
	small, large := perNode.Points[0].Mean, perNode.Points[1].Mean
	if large > small*1.3 {
		t.Fatalf("messages per node grew from %.2f to %.2f — not linear", small, large)
	}
}

func TestBaselinesSmall(t *testing.T) {
	f := Baselines([]int{30}, 10, 6, fastRule())
	means := map[string]float64{}
	for _, s := range f.Series {
		means[s.Name] = s.Points[0].Mean
	}
	if means["flooding"] <= means["pdp"] {
		t.Fatalf("flooding (%.1f) must forward more than PDP (%.1f)",
			means["flooding"], means["pdp"])
	}
	if means["dynamic-2.5hop"] >= means["flooding"] {
		t.Fatalf("dynamic (%.1f) must beat flooding (%.1f)",
			means["dynamic-2.5hop"], means["flooding"])
	}
}

func TestTieBreakSmall(t *testing.T) {
	f := TieBreak([]int{40}, 8, 7, fastRule())
	with, without := f.Series[0].Points[0].Mean, f.Series[1].Points[0].Mean
	// The tie-break can only help (or match) on average.
	if with > without*1.05 {
		t.Fatalf("with-tiebreak (%.2f) worse than without (%.2f)", with, without)
	}
}

func TestDeliverySmall(t *testing.T) {
	f := Delivery([]int{25}, 8, 8, fastRule())
	for _, s := range f.Series {
		if s.Points[0].Mean < 0.9999 {
			t.Fatalf("series %s delivery ratio %.4f < 1", s.Name, s.Points[0].Mean)
		}
	}
}

func TestMobilitySmall(t *testing.T) {
	rule := stats.StopRule{MinReplicates: 3, MaxReplicates: 3, Confidence: 0.95, RelHalfWidth: 0.5}
	f := Mobility([]float64{1, 8}, 25, 8, 5, 9, rule)
	if len(f.Series) != 2 {
		t.Fatalf("mobility figure must have 2 series")
	}
	for _, s := range f.Series {
		slow, fast := s.Points[0].Mean, s.Points[1].Mean
		if fast < slow {
			t.Fatalf("series %s: churn at speed 8 (%.2f) below speed 1 (%.2f)",
				s.Name, fast, slow)
		}
	}
}

func TestParallelDeterminism(t *testing.T) {
	// The same figure computed serially and with the worker pool must be
	// bit-identical: all randomness derives from (seed, n, rep), and the
	// batched replication folds observations in replicate order.
	defer SetParallelism(0)
	SetParallelism(1)
	serial := Fig6(6, smallNs(), 17, fastRule()).CSV()
	for _, workers := range []int{2, 8} {
		SetParallelism(workers)
		parallel := Fig6(6, smallNs(), 17, fastRule()).CSV()
		if serial != parallel {
			t.Fatalf("workers=%d changed results:\nserial:\n%s\nparallel:\n%s", workers, serial, parallel)
		}
	}
}

func TestForEachPointCoversAll(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{0, 1, 3, 16} {
		SetParallelism(workers)
		hits := make([]int, 20)
		ForEachPoint(len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachPointEmpty(t *testing.T) {
	ForEachPoint(0, func(i int) { t.Fatal("must not be called") })
}

func TestSICDSSmall(t *testing.T) {
	f := SICDS([]int{30}, 8, 10, fastRule())
	means := map[string]float64{}
	for _, s := range f.Series {
		if s.Points[0].Reps == 0 {
			t.Fatalf("series %s has no data", s.Name)
		}
		means[s.Name] = s.Points[0].Mean
	}
	// The forwarding tree attaches each cluster once: never larger than the
	// full static backbone.
	if means["fwd-tree"] > means["static-2.5hop"]+0.5 {
		t.Fatalf("fwd-tree (%.2f) larger than static backbone (%.2f)",
			means["fwd-tree"], means["static-2.5hop"])
	}
}

func TestLossySmall(t *testing.T) {
	f := Lossy([]float64{0, 0.3}, 40, 10, 11, fastRule())
	for _, s := range f.Series {
		ideal, lossy := s.Points[0].Mean, s.Points[1].Mean
		if ideal < 0.9999 {
			t.Fatalf("series %s must deliver fully without loss: %.4f", s.Name, ideal)
		}
		if lossy > ideal+1e-9 {
			t.Fatalf("series %s improved under loss: %.4f -> %.4f", s.Name, ideal, lossy)
		}
	}
	// Flooding's redundancy tolerates loss better than the thin backbones.
	flood, dyn := f.Series[0].Points[1].Mean, f.Series[2].Points[1].Mean
	if flood < dyn {
		t.Fatalf("flooding (%.3f) should out-deliver dynamic backbone (%.3f) at 30%% loss", flood, dyn)
	}
}

func TestMaintenanceSmall(t *testing.T) {
	rule := stats.StopRule{MinReplicates: 3, MaxReplicates: 3, Confidence: 0.95, RelHalfWidth: 0.5}
	f := Maintenance([]float64{3}, 30, 8, 5, 12, rule)
	reelect, lcc := f.Series[0].Points[0].Mean, f.Series[1].Points[0].Mean
	if lcc > reelect {
		t.Fatalf("LCC churn (%.2f) exceeds full re-election (%.2f)", lcc, reelect)
	}
}

func TestPassiveConvergenceSmall(t *testing.T) {
	f := PassiveConvergence(4, 50, 12, 13, fastRule())
	if len(f.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(f.Series))
	}
	pc := f.Series[0]
	if len(pc.Points) != 4 {
		t.Fatalf("passive series should have 4 flood points")
	}
	first, last := pc.Points[0].Mean, pc.Points[3].Mean
	if last > first {
		t.Fatalf("passive clustering got worse across floods: %.1f -> %.1f", first, last)
	}
	flood := f.Series[1].Points[0].Mean
	if last >= flood {
		t.Fatalf("converged passive (%.1f) should beat flooding (%.1f)", last, flood)
	}
}

func TestReliableSmall(t *testing.T) {
	f := Reliable([]float64{0, 0.3}, 30, 8, 14, fastRule())
	data := f.Series[0]
	ideal, lossy := data.Points[0].Mean, data.Points[1].Mean
	if ideal <= 0 {
		t.Fatal("no transmissions measured")
	}
	if lossy <= ideal {
		t.Fatalf("loss must cost retransmissions: %.1f -> %.1f", ideal, lossy)
	}
	floodDelivery := f.Series[2]
	if floodDelivery.Points[1].Mean >= 100 {
		t.Fatalf("flooding under 30%% loss should not always deliver fully: %.1f%%",
			floodDelivery.Points[1].Mean)
	}
}

func TestPruningSmall(t *testing.T) {
	f := Pruning([]int{0, 6}, 60, 18, 15, fastRule())
	if len(f.Series) != 4 {
		t.Fatalf("want 4 series, got %d", len(f.Series))
	}
	sbaFwd := f.Series[0]
	sbaLat := f.Series[1]
	if sbaFwd.Points[1].Mean >= sbaFwd.Points[0].Mean {
		t.Fatalf("longer back-off must prune: %.1f -> %.1f",
			sbaFwd.Points[0].Mean, sbaFwd.Points[1].Mean)
	}
	if sbaLat.Points[1].Mean <= sbaLat.Points[0].Mean {
		t.Fatalf("longer back-off must cost latency: %.1f -> %.1f",
			sbaLat.Points[0].Mean, sbaLat.Points[1].Mean)
	}
	// Piggyback pruning achieves its savings at base latency.
	pgLat := f.Series[3]
	if pgLat.Points[0].Mean >= sbaLat.Points[1].Mean {
		t.Fatalf("piggyback latency (%.1f) should be below long-backoff latency (%.1f)",
			pgLat.Points[0].Mean, sbaLat.Points[1].Mean)
	}
}

func TestRoutingSmall(t *testing.T) {
	f := Routing([]int{40}, 12, 16, fastRule())
	means := map[string]float64{}
	for _, s := range f.Series {
		means[s.Name] = s.Points[0].Mean
	}
	if means["backbone-cost"] >= means["flooding-cost"] {
		t.Fatalf("backbone RREQ cost %.1f should beat flooding %.1f",
			means["backbone-cost"], means["flooding-cost"])
	}
	if means["flooding-stretch"] > 1.0001 {
		t.Fatalf("flooding stretch %.3f must be 1", means["flooding-stretch"])
	}
	if means["backbone-stretch"] > 2 {
		t.Fatalf("backbone stretch %.3f too high", means["backbone-stretch"])
	}
}

func TestStormSmall(t *testing.T) {
	f := Storm([]float64{6, 18}, 50, 17, fastRule())
	flood := f.Series[0]
	if flood.Points[1].Mean <= flood.Points[0].Mean {
		t.Fatalf("flooding redundancy must grow with density: %.2f -> %.2f",
			flood.Points[0].Mean, flood.Points[1].Mean)
	}
	dyn := f.Series[1]
	for i := range flood.Points {
		if dyn.Points[i].Mean >= flood.Points[i].Mean {
			t.Fatalf("dynamic redundancy %.2f not below flooding %.2f at d=%g",
				dyn.Points[i].Mean, flood.Points[i].Mean, flood.Points[i].X)
		}
	}
}

func TestHierarchySmall(t *testing.T) {
	f := Hierarchy([]int{60}, 8, 2, 18, fastRule())
	if len(f.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(f.Series))
	}
	l0 := f.Series[0].Points[0].Mean
	l1 := f.Series[1].Points[0].Mean
	l2 := f.Series[2].Points[0].Mean
	if !(l0 > l1 && l1 >= l2) {
		t.Fatalf("heads must shrink per level: %.1f, %.1f, %.1f", l0, l1, l2)
	}
}

func TestCollisionSmall(t *testing.T) {
	// Synchronized transmissions (no contention window) are the raw storm
	// scenario: the thin backbones transmit far less concurrently and keep
	// delivering while flooding loses whole regions to collisions.
	f := Collision([]float64{6, 18}, 60, 0, 19, fastRule())
	flood := f.Series[0]
	dyn := f.Series[2]
	for i := range flood.Points {
		if flood.Points[i].Mean >= 0.999 {
			t.Fatalf("flooding at d=%g should lose packets to collisions: %.3f",
				flood.Points[i].X, flood.Points[i].Mean)
		}
		if dyn.Points[i].Mean <= flood.Points[i].Mean {
			t.Fatalf("dynamic backbone (%.3f) should out-deliver flooding (%.3f) at d=%g",
				dyn.Points[i].Mean, flood.Points[i].Mean, flood.Points[i].X)
		}
	}
}

func TestElectionSmall(t *testing.T) {
	f := Election([]int{50}, 18, 20, fastRule())
	means := map[string]float64{}
	for _, s := range f.Series {
		means[s.Name] = s.Points[0].Mean
	}
	// Highest-degree election needs no more clusters than lowest-ID (it
	// places heads at hubs).
	if means["highestdeg-heads"] > means["lowestid-heads"]*1.05 {
		t.Fatalf("highest-degree heads %.1f exceed lowest-ID heads %.1f",
			means["highestdeg-heads"], means["lowestid-heads"])
	}
	if means["lowestid-backbone"] < means["lowestid-heads"] {
		t.Fatal("backbone must contain the heads")
	}
}

func TestCoverageCostSmall(t *testing.T) {
	f := CoverageCost([]int{60}, 18, 21, fastRule())
	e25 := f.Series[0].Points[0].Mean
	e3 := f.Series[1].Points[0].Mean
	if e25 >= e3 {
		t.Fatalf("2.5-hop CH_HOP2 entries (%.1f) must be below 3-hop (%.1f) — "+
			"the paper's maintenance-cost claim", e25, e3)
	}
	c25 := f.Series[2].Points[0].Mean
	c3 := f.Series[3].Points[0].Mean
	if c25 > c3 {
		t.Fatalf("2.5-hop coverage size (%.2f) cannot exceed 3-hop (%.2f)", c25, c3)
	}
}

func TestAmortizedSmall(t *testing.T) {
	f := Amortized([]int{1, 20}, 50, 18, 22, fastRule())
	flood, static, dyn := f.Series[0], f.Series[1], f.Series[2]
	// At k=1 the setup cost dominates: flooding is cheapest.
	if flood.Points[0].Mean >= static.Points[0].Mean {
		t.Fatalf("at k=1 flooding (%.0f) should beat static setup+broadcast (%.0f)",
			flood.Points[0].Mean, static.Points[0].Mean)
	}
	// At k=20 the backbones amortize: both beat flooding, dynamic beats static.
	if static.Points[1].Mean >= flood.Points[1].Mean {
		t.Fatalf("at k=20 static (%.0f) should beat flooding (%.0f)",
			static.Points[1].Mean, flood.Points[1].Mean)
	}
	if dyn.Points[1].Mean >= static.Points[1].Mean {
		t.Fatalf("at k=20 dynamic (%.0f) should beat static (%.0f)",
			dyn.Points[1].Mean, static.Points[1].Mean)
	}
}
