package experiment

import (
	"sync"
	"time"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/graph"
	"clustercast/internal/mocds"
	"clustercast/internal/obs"
	"clustercast/internal/rng"
	"clustercast/internal/stats"
	"clustercast/internal/topology"
)

// Workspace composes the per-subsystem workspaces one replicate pipeline
// needs: topology sampling, clusterhead election, coverage digestion,
// gateway selection, the MO_CDS baseline and the dynamic-backbone
// protocol. Each worker of a sweep owns one Workspace for the duration of
// a data point, so steady-state replicates allocate (almost) nothing.
//
// Everything an estimator derives from a workspace — the sampled network,
// the clustering, coverage sets, node bitsets — is valid only until the
// workspace's next replicate.
type Workspace struct {
	Topo     *topology.Workspace
	Cluster  *cluster.Workspace
	PCluster *cluster.ParallelWorkspace
	Builder  coverage.Builder
	Backbone *backbone.Workspace
	MOCDS    *mocds.Workspace
	Dynamic  *dynamicb.Workspace
	Bcast    *broadcast.Workspace
	Batch    broadcast.BatchWorkspace

	// Clock accumulates per-stage wall time for this worker when
	// observability is enabled. SweepPoint merges worker clocks into the
	// process-wide stage table in worker-index order, so the aggregate is
	// deterministic for any scheduling.
	Clock obs.StageClock

	rng rng.Stream // per-replicate stream, reseeded by SampleWS
	src rng.Stream // split child handed to estimators (source selection)
}

// NewWorkspace returns an empty workspace; all buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{
		Topo:     topology.NewWorkspace(),
		Cluster:  cluster.NewWorkspace(),
		PCluster: cluster.NewParallelWorkspace(),
		Backbone: backbone.NewWorkspace(),
		MOCDS:    mocds.NewWorkspace(),
		Dynamic:  dynamicb.NewWorkspace(),
		Bcast:    broadcast.NewWorkspace(),
	}
}

// wsPool recycles workspaces across data points, so a whole figure run
// needs only about worker-count workspaces in flight.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// SampleWS is Scenario.Sample over a reusable workspace: identical
// randomness consumption (reseed instead of construct, split-into instead
// of split), identical rejection sampling, bit-identical network.
func (sc Scenario) SampleWS(ws *Workspace, label string, rep int) (*topology.Network, *rng.Stream, bool) {
	if obs.Enabled() {
		defer ws.Clock.Observe("sample", time.Now())
	}
	ws.rng.SeedLabeled(sc.Seed^uint64(rep)*0x9E3779B97F4A7C15, label)
	// Propagate the construction knob to the stages with their own builders.
	// Every sharded path is bit-identical to its sequential reference, so
	// the sample (and everything derived from it) does not depend on this.
	bw := effectiveBuildWorkers()
	ws.Topo.BuildWorkers = bw
	ws.Dynamic.BuildWorkers = bw
	nw, err := topology.GenerateWith(topology.Config{
		N: sc.N, Bounds: sc.Bounds, AvgDegree: sc.AvgDegree,
		RequireConnected: true, MaxAttempts: 200,
	}, ws.Topo, &ws.rng)
	if err != nil {
		noteSampleError(label, rep, err)
		return nil, nil, false
	}
	ws.rng.SplitInto(&ws.src)
	return nw, &ws.src, true
}

// WSEstimator measures one replicate of a metric using workspace-owned
// buffers. ok=false skips the replicate (discarded topology).
type WSEstimator func(ws *Workspace, sc Scenario, rep int) (float64, bool)

// SweepPoint measures one data point of a series: the scenario's adaptive
// replication loop over the given worker count, with one pooled workspace
// per worker. The Point is bit-identical for every worker count (see
// stats.ReplicateNWorker).
func SweepPoint(sc Scenario, workers int, est WSEstimator) Point {
	slots := workers
	if slots < 1 {
		slots = 1
	}
	wss := make([]*Workspace, slots)
	timed := obs.Enabled() // snapshot once: a mid-point toggle must not skew stage sums
	sum, err := stats.ReplicateNWorker(sc.Rule, workers, func(worker, rep int) (float64, bool) {
		ws := wss[worker]
		if ws == nil {
			ws = wsPool.Get().(*Workspace)
			wss[worker] = ws
		}
		if timed {
			defer ws.Clock.Observe("replicate", time.Now())
		}
		return est(ws, sc, rep)
	})
	if timed {
		// Fold worker clocks into the global stage table in worker-index
		// order: replicate rep always runs on worker rep%workers, so the
		// aggregate is identical for any scheduling of the same run.
		clocks := make([]*obs.StageClock, 0, slots)
		for _, ws := range wss {
			if ws != nil {
				clocks = append(clocks, &ws.Clock)
			}
		}
		obs.MergeStages(clocks...)
	}
	for _, ws := range wss {
		if ws != nil {
			ws.Clock.Reset() // pooled workspaces must not leak stage time across points
			wsPool.Put(ws)
		}
	}
	if err != nil {
		// Record an empty point; renderers show it as missing (Reps == 0).
		return Point{X: float64(sc.N)}
	}
	return Point{X: float64(sc.N), Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
}

// sweepWS is sweep for workspace-threaded estimators.
func sweepWS(name string, ns []int, d float64, seed uint64, rule stats.StopRule, est WSEstimator) Series {
	workers := Parallelism() // read once per run; race-safe snapshot
	s := Series{Name: name, Points: make([]Point, len(ns))}
	forEachPoint(len(ns), workers, func(i int) {
		sc := DefaultScenario(ns[i], d, seed)
		sc.Rule = rule
		s.Points[i] = SweepPoint(sc, workers, est)
	})
	return s
}

// Elect runs the lowest-ID clusterhead election through the configured
// construction path: the worklist election sharded over the
// -buildworkers goroutines when the knob is on and more than one core is
// available, the reference round-scan Workspace otherwise (the worklist
// is bit-identical but has no sequential edge, so one effective worker
// keeps the reference). The returned Clustering is workspace-owned.
func (ws *Workspace) Elect(g *graph.Graph) *cluster.Clustering {
	if w := effectiveBuildWorkers(); w > 1 {
		return ws.PCluster.LowestID(g, w)
	}
	return ws.Cluster.LowestID(g)
}

// Digest re-digests the workspace coverage builder through the configured
// construction path. With the knob on it always takes ResetParallel —
// its restructured CH_HOP2 pass (dedupe-before-sort, dense-index probes)
// is faster than Reset even at one worker — and shards it across the
// effective worker count; knob off keeps the golden-reference Reset.
// Either way the published digests are bit-identical.
func (ws *Workspace) Digest(g *graph.Graph, cl *cluster.Clustering, mode coverage.Mode) {
	if w := effectiveBuildWorkers(); w > 0 {
		ws.Builder.ResetParallel(g, cl, mode, w)
		return
	}
	ws.Builder.Reset(g, cl, mode)
}

// clusteredSampleWS draws a topology and its lowest-ID clustering over the
// workspace.
func clusteredSampleWS(ws *Workspace, sc Scenario, label string, rep int) (*topology.Network, *cluster.Clustering, *rng.Stream, bool) {
	nw, r, ok := sc.SampleWS(ws, label, rep)
	if !ok {
		return nil, nil, nil, false
	}
	return nw, ws.Elect(nw.G), r, true
}

// StaticSizeEstimatorWS is StaticSizeEstimator over a reusable workspace:
// same labels, same replicate randomness, same statistic — near-zero
// allocations.
func StaticSizeEstimatorWS(mode coverage.Mode) WSEstimator {
	return func(ws *Workspace, sc Scenario, rep int) (float64, bool) {
		nw, cl, _, ok := clusteredSampleWS(ws, sc, "fig6-static", rep)
		if !ok {
			return 0, false
		}
		ws.Digest(nw.G, cl, mode)
		return float64(ws.Backbone.StaticSize(&ws.Builder, cl, backbone.Options{})), true
	}
}

// MOCDSSizeEstimatorWS is MOCDSSizeEstimator over a reusable workspace.
func MOCDSSizeEstimatorWS() WSEstimator {
	return func(ws *Workspace, sc Scenario, rep int) (float64, bool) {
		nw, cl, _, ok := clusteredSampleWS(ws, sc, "fig6-mocds", rep)
		if !ok {
			return 0, false
		}
		ws.Digest(nw.G, cl, coverage.Hop3)
		return float64(ws.MOCDS.SizeFrom(&ws.Builder, cl)), true
	}
}

// DynamicForwardEstimatorWS is DynamicForwardEstimator over a reusable
// workspace.
func DynamicForwardEstimatorWS(mode coverage.Mode) WSEstimator {
	return func(ws *Workspace, sc Scenario, rep int) (float64, bool) {
		nw, cl, r, ok := clusteredSampleWS(ws, sc, "fig7-dynamic", rep)
		if !ok {
			return 0, false
		}
		p := ws.Dynamic.NewWith(nw.G, cl, mode)
		res := p.BroadcastWS(r.Intn(nw.N()))
		return float64(res.ForwardCount()), true
	}
}

// StaticForwardEstimatorWS is StaticForwardEstimator over a reusable
// workspace.
func StaticForwardEstimatorWS(mode coverage.Mode) WSEstimator {
	return func(ws *Workspace, sc Scenario, rep int) (float64, bool) {
		nw, cl, r, ok := clusteredSampleWS(ws, sc, "fig8-static", rep)
		if !ok {
			return 0, false
		}
		ws.Digest(nw.G, cl, mode)
		nodes := ws.Backbone.StaticNodes(&ws.Builder, cl, backbone.Options{})
		res := ws.runBcast(nw.G, r.Intn(nw.N()), broadcast.StaticCDSBits{Set: nodes})
		return float64(res.ForwardCount()), true
	}
}

// MOCDSForwardEstimatorWS is MOCDSForwardEstimator over a reusable
// workspace.
func MOCDSForwardEstimatorWS() WSEstimator {
	return func(ws *Workspace, sc Scenario, rep int) (float64, bool) {
		nw, cl, r, ok := clusteredSampleWS(ws, sc, "fig7-mocds", rep)
		if !ok {
			return 0, false
		}
		ws.Digest(nw.G, cl, coverage.Hop3)
		nodes := ws.MOCDS.NodesFrom(&ws.Builder, cl)
		res := ws.runBcast(nw.G, r.Intn(nw.N()), broadcast.StaticCDSBits{Set: nodes})
		return float64(res.ForwardCount()), true
	}
}
