package experiment

import (
	"fmt"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/mcds"
	"clustercast/internal/mocds"
	"clustercast/internal/rng"
	"clustercast/internal/stats"
	"clustercast/internal/topology"
)

// ApproxRatio reproduces the §4 constant-approximation-ratio claim
// empirically: on small networks (where the exact MCDS is computable) it
// measures |CDS| / |MCDS| for the static backbone, the dynamic backbone's
// forwarder set, and the MO_CDS, sweeping the network size (ABL-RATIO).
func ApproxRatio(ns []int, d float64, seed uint64, rule stats.StopRule) *Figure {
	ratio := func(build func(*topology.Network, *cluster.Clustering, *rngSplit) int) Estimator {
		return func(sc Scenario, rep int) (float64, bool) {
			nw, cl, r, ok := clusteredSample(sc, "ratio", rep)
			if !ok {
				return 0, false
			}
			opt := mcds.Exact(nw.G)
			if opt == nil || len(opt) == 0 {
				return 0, false
			}
			return float64(build(nw, cl, r)) / float64(len(opt)), true
		}
	}
	return &Figure{
		ID:     "ratio",
		Title:  fmt.Sprintf("Empirical approximation ratio to the MCDS (d=%g)", d),
		XLabel: "n", YLabel: "|CDS| / |MCDS|",
		Series: []Series{
			sweep("static-2.5hop", ns, d, seed, rule, ratio(
				func(nw *topology.Network, cl *cluster.Clustering, _ *rngSplit) int {
					return backbone.BuildStatic(nw.G, cl, coverage.Hop25).Size()
				})),
			sweep("dynamic-2.5hop", ns, d, seed, rule, ratio(
				func(nw *topology.Network, cl *cluster.Clustering, r *rngSplit) int {
					return dynamicb.New(nw.G, cl, coverage.Hop25).Broadcast(r.source(nw.N())).ForwardCount()
				})),
			sweep("mo-cds", ns, d, seed, rule, ratio(
				func(nw *topology.Network, cl *cluster.Clustering, _ *rngSplit) int {
					return mocds.Build(nw.G, cl).Size()
				})),
			sweep("greedy-gk", ns, d, seed, rule, ratio(
				func(nw *topology.Network, _ *cluster.Clustering, _ *rngSplit) int {
					return len(mcds.Greedy(nw.G))
				})),
		},
	}
}

// MessageComplexity reproduces the §4 message-optimality claim: total
// construction messages of the distributed protocol versus network size
// (ABL-MSG). Linearity shows as a flat messages-per-node curve.
func MessageComplexity(ns []int, d float64, seed uint64, rule stats.StopRule) *Figure {
	total := func(sc Scenario, rep int) (float64, bool) {
		nw, _, ok := sc.Sample("msg", rep)
		if !ok {
			return 0, false
		}
		return float64(runWire(nw.G, coverage.Hop25).Counters.Total()), true
	}
	perNode := func(sc Scenario, rep int) (float64, bool) {
		v, ok := total(sc, rep)
		if !ok {
			return 0, false
		}
		return v / float64(sc.N), true
	}
	rounds := func(sc Scenario, rep int) (float64, bool) {
		nw, _, ok := sc.Sample("msg", rep)
		if !ok {
			return 0, false
		}
		return float64(runWire(nw.G, coverage.Hop25).Counters.Rounds), true
	}
	meanActive := func(sc Scenario, rep int) (float64, bool) {
		nw, _, ok := sc.Sample("msg", rep)
		if !ok {
			return 0, false
		}
		return runWire(nw.G, coverage.Hop25).Counters.MeanActive(), true
	}
	// idleFraction is the share of per-round node scans a round-synchronous
	// simulator wastes on silent nodes (1 − active/n, averaged over rounds):
	// the measured quantity behind the event-driven core's savings.
	idleFraction := func(sc Scenario, rep int) (float64, bool) {
		nw, _, ok := sc.Sample("msg", rep)
		if !ok {
			return 0, false
		}
		c := runWire(nw.G, coverage.Hop25).Counters
		if len(c.ActivePerRound) == 0 {
			return 0, false
		}
		idle := 0.0
		for _, a := range c.ActivePerRound {
			idle += 1 - float64(a)/float64(sc.N)
		}
		return idle / float64(len(c.ActivePerRound)), true
	}
	return &Figure{
		ID:     "msg",
		Title:  fmt.Sprintf("Distributed construction cost (d=%g)", d),
		XLabel: "n", YLabel: "messages",
		Series: []Series{
			sweep("total-messages", ns, d, seed, rule, total),
			sweep("messages-per-node", ns, d, seed, rule, perNode),
			sweep("rounds", ns, d, seed, rule, rounds),
			sweep("mean-active-per-round", ns, d, seed, rule, meanActive),
			sweep("idle-fraction", ns, d, seed, rule, idleFraction),
		},
	}
}

// Baselines compares the dynamic backbone's forward-node count against the
// related-work protocols of §2: blind flooding, MPR, dominant pruning and
// partial dominant pruning (ABL-BASELINES).
func Baselines(ns []int, d float64, seed uint64, rule stats.StopRule) *Figure {
	run := func(build func(nw *topology.Network) broadcast.Protocol) Estimator {
		return func(sc Scenario, rep int) (float64, bool) {
			nw, r, ok := sc.Sample("baselines", rep)
			if !ok {
				return 0, false
			}
			res := runIdeal(nw.G, r.Intn(nw.N()), build(nw))
			return float64(res.ForwardCount()), true
		}
	}
	return &Figure{
		ID:     "baselines",
		Title:  fmt.Sprintf("Forward nodes across broadcast protocols (d=%g)", d),
		XLabel: "n", YLabel: "forward nodes",
		Series: []Series{
			sweep("flooding", ns, d, seed, rule, run(func(nw *topology.Network) broadcast.Protocol {
				return broadcast.Flooding{}
			})),
			sweep("mpr", ns, d, seed, rule, run(func(nw *topology.Network) broadcast.Protocol {
				return broadcast.NewMPR(broadcast.NewNeighborhood(nw.G))
			})),
			sweep("dp", ns, d, seed, rule, run(func(nw *topology.Network) broadcast.Protocol {
				return broadcast.NewDP(broadcast.NewNeighborhood(nw.G))
			})),
			sweep("pdp", ns, d, seed, rule, run(func(nw *topology.Network) broadcast.Protocol {
				return broadcast.NewPDP(broadcast.NewNeighborhood(nw.G))
			})),
			sweep("dynamic-2.5hop", ns, d, seed, rule, run(func(nw *topology.Network) broadcast.Protocol {
				return dynamicb.New(nw.G, cluster.LowestID(nw.G), coverage.Hop25)
			})),
		},
	}
}

// TieBreak measures the effect of the paper's indirect-coverage
// tie-breaking rule on the static backbone size (ABL-TIE).
func TieBreak(ns []int, d float64, seed uint64, rule stats.StopRule) *Figure {
	size := func(opts backbone.Options) Estimator {
		return func(sc Scenario, rep int) (float64, bool) {
			nw, cl, _, ok := clusteredSample(sc, "tiebreak", rep)
			if !ok {
				return 0, false
			}
			b := coverage.NewBuilder(nw.G, cl, coverage.Hop25)
			return float64(backbone.BuildStaticOpt(b, cl, opts).Size()), true
		}
	}
	return &Figure{
		ID:     "tiebreak",
		Title:  fmt.Sprintf("Static backbone size with/without the indirect tie-break (d=%g)", d),
		XLabel: "n", YLabel: "CDS size",
		Series: []Series{
			sweep("with-tiebreak", ns, d, seed, rule, size(backbone.Options{})),
			sweep("without-tiebreak", ns, d, seed, rule, size(backbone.Options{NoIndirectTieBreak: true})),
		},
	}
}

// Mobility quantifies why the paper argues for on-demand (dynamic)
// backbones: under random-waypoint motion it measures, per time step, how
// many nodes change cluster affiliation and how many static-backbone
// memberships change — the maintenance churn a proactive SI-CDS would have
// to repair (ABL-MOBILITY). The sweep is over the maximum node speed.
func Mobility(speeds []float64, n int, d float64, steps int, seed uint64, rule stats.StopRule) *Figure {
	churn := func(measure func(prev, cur map[int]bool, prevHead, curHead []int, n int) float64) func(speed float64) Estimator {
		return func(speed float64) Estimator {
			return func(sc Scenario, rep int) (float64, bool) {
				nw, _, ok := sc.Sample(fmt.Sprintf("mobility-%g", speed), rep)
				if !ok {
					return 0, false
				}
				mob := topology.NewRandomWaypoint(nw.Positions, sc.Bounds, speed/2, speed, 0,
					rng.NewLabeled(sc.Seed^uint64(rep), "waypoint"))
				prevNet := nw
				prevCl := cluster.LowestID(prevNet.G)
				prevBB := backbone.BuildStatic(prevNet.G, prevCl, coverage.Hop25)
				// Incremental edge maintenance: each step re-tests only the
				// grid cells the moved nodes touched instead of rebuilding
				// the whole unit disk graph.
				dyn := topology.NewDynamic(nw)
				total := 0.0
				for step := 0; step < steps; step++ {
					pos := mob.Step(1)
					cur := dyn.Step(pos)
					curCl := cluster.LowestID(cur.G)
					curBB := backbone.BuildStatic(cur.G, curCl, coverage.Hop25)
					total += measure(prevBB.Nodes, curBB.Nodes, prevCl.Head, curCl.Head, sc.N)
					prevCl, prevBB = curCl, curBB
				}
				return total / float64(steps), true
			}
		}
	}
	headChanges := func(_, _ map[int]bool, prevHead, curHead []int, n int) float64 {
		c := 0
		for v := 0; v < n; v++ {
			if prevHead[v] != curHead[v] {
				c++
			}
		}
		return float64(c)
	}
	backboneChanges := func(prev, cur map[int]bool, _, _ []int, n int) float64 {
		c := 0
		for v := 0; v < n; v++ {
			if prev[v] != cur[v] {
				c++
			}
		}
		return float64(c)
	}
	mkSeries := func(name string, est func(speed float64) Estimator) Series {
		s := Series{Name: name, Points: make([]Point, len(speeds))}
		ForEachPoint(len(speeds), func(i int) {
			speed := speeds[i]
			sc := DefaultScenario(n, d, seed)
			sc.Rule = rule
			sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
				return est(speed)(sc, rep)
			})
			if err != nil {
				s.Points[i] = Point{X: speed}
				return
			}
			s.Points[i] = Point{X: speed, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return s
	}
	return &Figure{
		ID:     "mobility",
		Title:  fmt.Sprintf("Backbone maintenance churn per step (n=%d, d=%g)", n, d),
		XLabel: "max speed", YLabel: "changes per step",
		Series: []Series{
			mkSeries("cluster-affiliation-changes", churn(headChanges)),
			mkSeries("static-backbone-membership-changes", churn(backboneChanges)),
		},
	}
}

// Delivery confirms the correctness side of every protocol: delivery ratio
// over connected networks must be 1.0 for all CDS-based schemes.
func Delivery(ns []int, d float64, seed uint64, rule stats.StopRule) *Figure {
	ratio := func(label string, runOne func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result) Estimator {
		return func(sc Scenario, rep int) (float64, bool) {
			nw, cl, r, ok := clusteredSample(sc, "delivery-"+label, rep)
			if !ok {
				return 0, false
			}
			res := runOne(nw, cl, r.source(nw.N()))
			return res.DeliveryRatio(nw.N()), true
		}
	}
	return &Figure{
		ID:     "delivery",
		Title:  fmt.Sprintf("Delivery ratio (d=%g)", d),
		XLabel: "n", YLabel: "delivery ratio",
		Series: []Series{
			sweep("dynamic-2.5hop", ns, d, seed, rule, ratio("dyn", func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result {
				return dynamicb.New(nw.G, cl, coverage.Hop25).Broadcast(src)
			})),
			sweep("static-2.5hop", ns, d, seed, rule, ratio("static", func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result {
				s := backbone.BuildStatic(nw.G, cl, coverage.Hop25)
				return runIdeal(nw.G, src, broadcast.StaticCDS{Set: s.Nodes})
			})),
			sweep("mo-cds", ns, d, seed, rule, ratio("mocds", func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result {
				c := mocds.Build(nw.G, cl)
				return runIdeal(nw.G, src, broadcast.StaticCDS{Set: c.Nodes})
			})),
		},
	}
}
