package experiment

import (
	"fmt"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/mocds"
	"clustercast/internal/stats"
	"clustercast/internal/topology"
)

// clusteredSample draws a topology and its lowest-ID clustering.
func clusteredSample(sc Scenario, label string, rep int) (*topology.Network, *cluster.Clustering, *rngSplit, bool) {
	nw, r, ok := sc.Sample(label, rep)
	if !ok {
		return nil, nil, nil, false
	}
	return nw, cluster.LowestID(nw.G), &rngSplit{r}, true
}

// rngSplit wraps the per-replicate stream with the one operation the
// estimators need.
type rngSplit struct{ r interface{ Intn(int) int } }

func (s *rngSplit) source(n int) int { return s.r.Intn(n) }

// StaticSizeEstimator measures |static backbone| under a coverage mode
// (Figure 6 series "static backbone").
func StaticSizeEstimator(mode coverage.Mode) Estimator {
	return func(sc Scenario, rep int) (float64, bool) {
		nw, cl, _, ok := clusteredSample(sc, "fig6-static", rep)
		if !ok {
			return 0, false
		}
		return float64(backbone.BuildStatic(nw.G, cl, mode).Size()), true
	}
}

// MOCDSSizeEstimator measures |MO_CDS| (Figure 6 series "MO_CDS").
func MOCDSSizeEstimator() Estimator {
	return func(sc Scenario, rep int) (float64, bool) {
		nw, cl, _, ok := clusteredSample(sc, "fig6-mocds", rep)
		if !ok {
			return 0, false
		}
		return float64(mocds.Build(nw.G, cl).Size()), true
	}
}

// DynamicForwardEstimator measures the forward-node-set size of one
// dynamic-backbone broadcast from a random source (Figure 7/8 series
// "dynamic backbone").
func DynamicForwardEstimator(mode coverage.Mode) Estimator {
	return func(sc Scenario, rep int) (float64, bool) {
		nw, cl, r, ok := clusteredSample(sc, "fig7-dynamic", rep)
		if !ok {
			return 0, false
		}
		p := dynamicb.New(nw.G, cl, mode)
		res := p.Broadcast(r.source(nw.N()))
		return float64(res.ForwardCount()), true
	}
}

// StaticForwardEstimator measures the forward-node-set size of a broadcast
// over the static backbone from a random source (Figure 8 series "static
// backbone").
func StaticForwardEstimator(mode coverage.Mode) Estimator {
	return func(sc Scenario, rep int) (float64, bool) {
		nw, cl, r, ok := clusteredSample(sc, "fig8-static", rep)
		if !ok {
			return 0, false
		}
		s := backbone.BuildStatic(nw.G, cl, mode)
		res := runIdeal(nw.G, r.source(nw.N()), broadcast.StaticCDS{Set: s.Nodes})
		return float64(res.ForwardCount()), true
	}
}

// MOCDSForwardEstimator measures the forward-node-set size of a broadcast
// over the MO_CDS from a random source (Figure 7 series "MO_CDS").
func MOCDSForwardEstimator() Estimator {
	return func(sc Scenario, rep int) (float64, bool) {
		nw, cl, r, ok := clusteredSample(sc, "fig7-mocds", rep)
		if !ok {
			return 0, false
		}
		c := mocds.Build(nw.G, cl)
		res := runIdeal(nw.G, r.source(nw.N()), broadcast.StaticCDS{Set: c.Nodes})
		return float64(res.ForwardCount()), true
	}
}

// Fig6 reproduces Figure 6: average size of the CDS — static backbone
// (2.5-hop and 3-hop) vs MO_CDS — for the given average degree d.
func Fig6(d float64, ns []int, seed uint64, rule stats.StopRule) *Figure {
	return &Figure{
		ID:     figID("fig6", d),
		Title:  fmt.Sprintf("Average size of the CDS (d=%g)", d),
		XLabel: "n", YLabel: "CDS size",
		Series: []Series{
			sweepWS("static-2.5hop", ns, d, seed, rule, StaticSizeEstimatorWS(coverage.Hop25)),
			sweepWS("static-3hop", ns, d, seed, rule, StaticSizeEstimatorWS(coverage.Hop3)),
			sweepWS("mo-cds", ns, d, seed, rule, MOCDSSizeEstimatorWS()),
		},
	}
}

// Fig7 reproduces Figure 7: average size of the forward node set — dynamic
// backbone (2.5-hop and 3-hop) vs broadcasting over the MO_CDS.
func Fig7(d float64, ns []int, seed uint64, rule stats.StopRule) *Figure {
	return &Figure{
		ID:     figID("fig7", d),
		Title:  fmt.Sprintf("Average size of the forward node set (d=%g)", d),
		XLabel: "n", YLabel: "forward nodes",
		Series: []Series{
			sweepWS("dynamic-2.5hop", ns, d, seed, rule, DynamicForwardEstimatorWS(coverage.Hop25)),
			sweepWS("dynamic-3hop", ns, d, seed, rule, DynamicForwardEstimatorWS(coverage.Hop3)),
			sweepWS("mo-cds", ns, d, seed, rule, MOCDSForwardEstimatorWS()),
		},
	}
}

// Fig8 reproduces Figure 8: forward node sets of the static vs the dynamic
// backbone.
func Fig8(d float64, ns []int, seed uint64, rule stats.StopRule) *Figure {
	return &Figure{
		ID:     figID("fig8", d),
		Title:  fmt.Sprintf("Forward node set, static vs dynamic backbone (d=%g)", d),
		XLabel: "n", YLabel: "forward nodes",
		Series: []Series{
			sweepWS("static-2.5hop", ns, d, seed, rule, StaticForwardEstimatorWS(coverage.Hop25)),
			sweepWS("static-3hop", ns, d, seed, rule, StaticForwardEstimatorWS(coverage.Hop3)),
			sweepWS("dynamic-2.5hop", ns, d, seed, rule, DynamicForwardEstimatorWS(coverage.Hop25)),
			sweepWS("dynamic-3hop", ns, d, seed, rule, DynamicForwardEstimatorWS(coverage.Hop3)),
		},
	}
}

// figID builds the canonical figure identifier: the paper shows (a) d=6
// and (b) d=18 panels.
func figID(base string, d float64) string {
	switch d {
	case 6:
		return base + "a"
	case 18:
		return base + "b"
	default:
		return fmt.Sprintf("%s-d%g", base, d)
	}
}
