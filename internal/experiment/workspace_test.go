package experiment

import (
	"testing"

	"clustercast/internal/coverage"
)

// TestWorkspaceSweepsMatchLegacy proves every workspace-threaded estimator
// reproduces its allocating counterpart point-for-point: same means, CIs
// and replicate counts under the identical (seed, label, rep) randomness.
func TestWorkspaceSweepsMatchLegacy(t *testing.T) {
	pairs := []struct {
		name   string
		legacy Estimator
		ws     WSEstimator
	}{
		{"static-size-2.5hop", StaticSizeEstimator(coverage.Hop25), StaticSizeEstimatorWS(coverage.Hop25)},
		{"static-size-3hop", StaticSizeEstimator(coverage.Hop3), StaticSizeEstimatorWS(coverage.Hop3)},
		{"mocds-size", MOCDSSizeEstimator(), MOCDSSizeEstimatorWS()},
		{"dynamic-fwd-2.5hop", DynamicForwardEstimator(coverage.Hop25), DynamicForwardEstimatorWS(coverage.Hop25)},
		{"dynamic-fwd-3hop", DynamicForwardEstimator(coverage.Hop3), DynamicForwardEstimatorWS(coverage.Hop3)},
		{"static-fwd-2.5hop", StaticForwardEstimator(coverage.Hop25), StaticForwardEstimatorWS(coverage.Hop25)},
		{"mocds-fwd", MOCDSForwardEstimator(), MOCDSForwardEstimatorWS()},
	}
	ns := smallNs()
	for _, p := range pairs {
		want := sweep(p.name, ns, 6, 33, fastRule(), p.legacy)
		got := sweepWS(p.name, ns, 6, 33, fastRule(), p.ws)
		for i := range want.Points {
			if got.Points[i] != want.Points[i] {
				t.Errorf("%s: point %d = %+v, legacy %+v", p.name, i, got.Points[i], want.Points[i])
			}
		}
	}
}
