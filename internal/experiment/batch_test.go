package experiment

import (
	"fmt"
	"testing"

	"clustercast/internal/broadcast"
	"clustercast/internal/faults"
	"clustercast/internal/stats"
)

// batchRule spans just over two replicate batches (130 = 2·64 + 2), so the
// fold exercises full batches, a partial tail batch, and multiple workers.
var batchRule = stats.StopRule{Confidence: 0.95, RelHalfWidth: 0.5, MinReplicates: 130, MaxReplicates: 130}

// withBatch runs f with the 64-wide opt-in enabled and restores the
// default afterwards (the toggle is process-global, like Parallelism).
func withBatch(t *testing.T, f func()) {
	t.Helper()
	SetBatchReplication(true)
	defer SetBatchReplication(false)
	f()
}

// TestUseBatchGating: the batch path needs both the opt-in and a batchable
// spec; churn and partition specs always fall back to scalar.
func TestUseBatchGating(t *testing.T) {
	lossy := faults.Spec{LossGood: 0.2}
	churn := faults.Spec{MeanUp: 100, MeanDown: 50}
	if useBatch(lossy) {
		t.Error("useBatch true with the opt-in off")
	}
	withBatch(t, func() {
		if !useBatch(lossy) {
			t.Error("useBatch false for an iid loss spec with the opt-in on")
		}
		if useBatch(churn) {
			t.Error("useBatch true for a churn spec: node churn has no batch kernel")
		}
	})
}

// TestBatchSweepPointMatchesScalarLanes is the experiment-level half of the
// equivalence bar: BatchSweepPoint must produce, bit for bit, the Point
// that the scalar engine yields when each replicate rep is decomposed as
// (batch = rep/64, lane = rep%64) — same topology label discipline, same
// source draw, the kernel's Lane view, and the lane view of the batch's
// fault chains — at every worker count.
func TestBatchSweepPointMatchesScalarLanes(t *testing.T) {
	kernels := []struct {
		name   string
		kernel BatchKernel
	}{
		{"flooding", floodingKernel},
		{"static-2.5hop", staticCDSKernel},
		{"mo-cds", mocdsKernel},
		{"gossip-0.7", gossipKernel(0.7, 77)},
	}
	specs := []struct {
		name string
		mk   func(seed uint64, batch int) faults.Spec
	}{
		{"ideal", func(uint64, int) faults.Spec { return faults.Spec{} }},
		{"iid-0.25", func(seed uint64, batch int) faults.Spec {
			return faults.Spec{LossGood: 0.25, Seed: batchSeed(seed, batch)}
		}},
		{"burst-0.2-4", func(seed uint64, batch int) faults.Spec {
			var sp faults.Spec
			if err := sp.SetBurst(0.2, 4); err != nil {
				t.Fatal(err)
			}
			sp.Seed = batchSeed(seed, batch)
			return sp
		}},
	}
	for _, k := range kernels {
		for _, sp := range specs {
			t.Run(k.name+"/"+sp.name, func(t *testing.T) {
				sc := DefaultScenario(30, 8, 21)
				sc.Rule = batchRule
				label := fmt.Sprintf("batcheq-%s-%s", k.name, sp.name)
				spec := func(batch int) faults.Spec { return sp.mk(sc.Seed, batch) }

				ws := NewWorkspace()
				want, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
					batch, lane := rep/64, rep%64
					nw, cl, r, ok := clusteredSampleWS(ws, sc, label, batch)
					if !ok {
						return 0, false
					}
					src := r.Intn(nw.N())
					proto := k.kernel(ws, nw, cl, src, batch).Lane(lane)
					var opt broadcast.Options
					if s := spec(batch); s.Enabled() {
						opt.Faults = faults.LaneModel{Batch: faults.NewChainBatch(s), Lane: lane}
					}
					res := broadcast.RunOpts(nw.G, src, proto, opt)
					return res.DeliveryRatio(nw.N()), true
				})
				if err != nil {
					t.Fatal(err)
				}
				ref := Point{X: 1, Mean: want.Mean(), CI: want.CI(0.99), Reps: want.N()}

				for workers := 1; workers <= 8; workers++ {
					got := BatchSweepPoint(sc, workers, 1, label, spec, k.kernel)
					if got != ref {
						t.Errorf("workers=%d: batch point %+v != scalar-lane reference %+v", workers, got, ref)
					}
				}
			})
		}
	}
}

// TestBatchFiguresWorkerInvariant: with the opt-in on, whole figures keep
// the bit-identical-across-worker-counts contract the scalar path has.
func TestBatchFiguresWorkerInvariant(t *testing.T) {
	figs := map[string]func() *Figure{
		"lossy": func() *Figure { return Lossy([]float64{0, 0.2}, 25, 8, 19, batchRule) },
		"burst": func() *Figure { return Burstiness([]float64{2, 8}, 0.2, 25, 8, 19, batchRule) },
		"gossip": func() *Figure {
			return GossipAblation([]float64{0.4, 0.8}, []float64{0, 0.2}, 25, 8, 19, batchRule)
		},
	}
	withBatch(t, func() {
		defer SetParallelism(0)
		for name, mk := range figs {
			SetParallelism(1)
			seq := mk().CSV()
			for _, workers := range []int{3, 8} {
				SetParallelism(workers)
				if par := mk().CSV(); par != seq {
					t.Errorf("%s: CSV differs between 1 and %d workers with batch replication on", name, workers)
				}
			}
		}
	})
}

// TestBatchFigureFallbackSeries: the dynamic backbone has no batch kernel,
// so its series must be byte-identical whether the opt-in is on or off —
// and the batched figure must still measure it (no missing points).
func TestBatchFigureFallbackSeries(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(2)
	mk := func() *Figure { return Lossy([]float64{0.1, 0.3}, 25, 8, 23, batchRule) }
	scalar := mk()
	var batched *Figure
	withBatch(t, func() { batched = mk() })
	var scalarDyn, batchedDyn *Series
	for i := range scalar.Series {
		if scalar.Series[i].Name == "dynamic-2.5hop" {
			scalarDyn = &scalar.Series[i]
		}
		if batched.Series[i].Name == "dynamic-2.5hop" {
			batchedDyn = &batched.Series[i]
		}
	}
	if scalarDyn == nil || batchedDyn == nil {
		t.Fatal("dynamic-2.5hop series missing from the lossy figure")
	}
	for i := range scalarDyn.Points {
		if scalarDyn.Points[i] != batchedDyn.Points[i] {
			t.Errorf("point %d: scalar-only series changed under the batch opt-in: %+v vs %+v",
				i, scalarDyn.Points[i], batchedDyn.Points[i])
		}
	}
	for _, s := range batched.Series {
		for i, p := range s.Points {
			if p.Missing() {
				t.Errorf("batched lossy: series %s point %d is missing", s.Name, i)
			}
		}
	}
}
