package experiment

import (
	"testing"

	"clustercast/internal/stats"
)

// detRule keeps the determinism checks quick: the point is bit-equality,
// not tight intervals.
var detRule = stats.StopRule{Confidence: 0.95, RelHalfWidth: 0.5, MinReplicates: 4, MaxReplicates: 8}

// TestFaultsFigureDeterministicAcrossWorkers is the acceptance criterion:
// the same fault spec and seed must produce byte-identical figure CSVs for
// any -workers value.
func TestFaultsFigureDeterministicAcrossWorkers(t *testing.T) {
	qs := []float64{0, 0.2}
	defer SetParallelism(0)
	SetParallelism(1)
	seq := Faults(qs, 30, 8, 11, detRule).CSV()
	SetParallelism(4)
	par := Faults(qs, 30, 8, 11, detRule).CSV()
	if seq != par {
		t.Fatalf("faults CSV differs between 1 and 4 workers:\n--- w=1\n%s--- w=4\n%s", seq, par)
	}
}

func TestBurstinessFigureDeterministicAcrossWorkers(t *testing.T) {
	ls := []float64{1, 8}
	defer SetParallelism(0)
	SetParallelism(1)
	seq := Burstiness(ls, 0.2, 30, 8, 13, detRule).CSV()
	SetParallelism(5)
	par := Burstiness(ls, 0.2, 30, 8, 13, detRule).CSV()
	if seq != par {
		t.Fatalf("burst CSV differs between 1 and 5 workers:\n--- w=1\n%s--- w=5\n%s", seq, par)
	}
}

// TestBurstinessLengthOneMatchesIIDLossy pins the strict-generalization
// claim: a Gilbert–Elliott chain with mean burst length 1 and stationary
// rate p is an i.i.d. loss process, so the delivery ratios must land in the
// same ballpark as the independent-loss model at the same rate (they use
// different coins, so only the means are comparable, not the bits).
func TestBurstinessLengthOneMatchesIIDLossy(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	rule := stats.StopRule{Confidence: 0.95, RelHalfWidth: 0.2, MinReplicates: 15, MaxReplicates: 40}
	defer SetParallelism(0)
	SetParallelism(0)
	burst := Burstiness([]float64{1}, 0.2, 40, 10, 17, rule)
	lossy := Lossy([]float64{0.2}, 40, 10, 17, rule)
	// Compare the flooding series (series 0 in both figures).
	b, l := burst.Series[0].Points[0], lossy.Series[0].Points[0]
	if b.Missing() || l.Missing() {
		t.Fatal("missing points in comparison figures")
	}
	if diff := b.Mean - l.Mean; diff > 0.1 || diff < -0.1 {
		t.Errorf("L=1 burst flooding delivery %.3f vs i.i.d. %.3f — should be close", b.Mean, l.Mean)
	}
}
