package experiment

import (
	"fmt"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/hier"
	"clustercast/internal/routing"
	"clustercast/internal/sim"
	"clustercast/internal/stats"
	"clustercast/internal/topology"
)

// Pruning reproduces the §3 trade-off between the two redundancy-pruning
// techniques the paper discusses: back-off self-pruning ("more delay
// time") versus piggybacked coverage pruning ("increase the message
// length", the dynamic backbone's choice). The sweep is over the back-off
// window; the piggyback series is flat since it takes no extra delay.
// Two series pairs are reported: forward nodes and latency. ABL-PRUNING.
func Pruning(windows []int, n int, d float64, seed uint64, rule stats.StopRule) *Figure {
	type metric struct {
		name    string
		measure func(res *broadcast.Result) float64
	}
	metrics := []metric{
		{"sba-forwards", func(r *broadcast.Result) float64 { return float64(r.ForwardCount()) }},
		{"sba-latency", func(r *broadcast.Result) float64 { return float64(r.Latency) }},
	}
	var series []Series
	for _, m := range metrics {
		m := m
		s := Series{Name: m.name, Points: make([]Point, len(windows))}
		ForEachPoint(len(windows), func(i int) {
			window := windows[i]
			sc := DefaultScenario(n, d, seed)
			sc.Rule = rule
			sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
				nw, r, ok := sc.Sample(fmt.Sprintf("pruning-%d", window), rep)
				if !ok {
					return 0, false
				}
				nb := broadcast.NewNeighborhood(nw.G)
				res := runTimed(nw.G, r.Intn(nw.N()),
					broadcast.NewSBA(nb, window, sc.Seed^uint64(rep)))
				if len(res.Received) != nw.N() {
					return 0, false
				}
				return m.measure(res), true
			})
			if err != nil {
				s.Points[i] = Point{X: float64(window)}
				return
			}
			s.Points[i] = Point{X: float64(window), Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		series = append(series, s)
	}

	// Piggyback pruning (the dynamic backbone) as flat reference lines.
	flat := func(name string, measure func(res *broadcast.Result) float64) Series {
		sc := DefaultScenario(n, d, seed)
		sc.Rule = rule
		sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
			nw, cl, r, ok := clusteredSample(sc, "pruning-dyn", rep)
			if !ok {
				return 0, false
			}
			res := dynamicb.New(nw.G, cl, coverage.Hop25).Broadcast(r.source(nw.N()))
			return measure(res), true
		})
		s := Series{Name: name, Points: make([]Point, len(windows))}
		for i := range s.Points {
			p := Point{X: float64(windows[i])}
			if err == nil {
				p.Mean = sum.Mean()
				p.CI = sum.CI(0.99)
				p.Reps = sum.N()
			}
			s.Points[i] = p
		}
		return s
	}
	series = append(series,
		flat("piggyback-forwards", func(r *broadcast.Result) float64 { return float64(r.ForwardCount()) }),
		flat("piggyback-latency", func(r *broadcast.Result) float64 { return float64(r.Latency) }),
	)

	return &Figure{
		ID:     "pruning",
		Title:  fmt.Sprintf("Back-off vs piggyback pruning (n=%d, d=%g)", n, d),
		XLabel: "back-off window", YLabel: "forward nodes / latency",
		Series: series,
	}
}

// Routing measures route discovery over the broadcast service (the
// application the paper's introduction motivates): RREQ transmissions and
// route stretch when the request is flooded blindly versus over the
// dynamic backbone. ABL-ROUTING.
func Routing(ns []int, d float64, seed uint64, rule stats.StopRule) *Figure {
	est := func(useBackbone bool, metric string) Estimator {
		return func(sc Scenario, rep int) (float64, bool) {
			nw, cl, r, ok := clusteredSample(sc, "routing", rep)
			if !ok {
				return 0, false
			}
			src := r.source(nw.N())
			dst := r.source(nw.N())
			if src == dst {
				return 0, false
			}
			var p broadcast.Protocol
			if useBackbone {
				p = dynamicb.New(nw.G, cl, coverage.Hop25)
			} else {
				p = broadcast.Flooding{}
			}
			route, err := routing.Discover(nw.G, src, dst, p)
			if err != nil {
				return 0, false
			}
			if metric == "cost" {
				return float64(route.RequestCost), true
			}
			return route.Stretch(nw.G), true
		}
	}
	return &Figure{
		ID:     "routing",
		Title:  fmt.Sprintf("Route discovery over the broadcast service (d=%g)", d),
		XLabel: "n", YLabel: "RREQ transmissions / stretch",
		Series: []Series{
			sweep("flooding-cost", ns, d, seed, rule, est(false, "cost")),
			sweep("backbone-cost", ns, d, seed, rule, est(true, "cost")),
			sweep("flooding-stretch", ns, d, seed, rule, est(false, "stretch")),
			sweep("backbone-stretch", ns, d, seed, rule, est(true, "stretch")),
		},
	}
}

// Storm reproduces the broadcast storm analysis (Ni et al., the paper's
// [9]): redundant receptions per node versus density, for flooding and the
// backbones. ABL-STORM. The sweep is over the average degree at n=80.
func Storm(degrees []float64, n int, seed uint64, rule stats.StopRule) *Figure {
	mk := func(name string, runOne func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result) Series {
		s := Series{Name: name, Points: make([]Point, len(degrees))}
		ForEachPoint(len(degrees), func(i int) {
			deg := degrees[i]
			sc := DefaultScenario(n, deg, seed)
			sc.Rule = rule
			sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
				nw, cl, r, ok := clusteredSample(sc, fmt.Sprintf("storm-%g", deg), rep)
				if !ok {
					return 0, false
				}
				return runOne(nw, cl, r.source(nw.N())).Redundancy(), true
			})
			if err != nil {
				s.Points[i] = Point{X: deg}
				return
			}
			s.Points[i] = Point{X: deg, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return s
	}
	return &Figure{
		ID:     "storm",
		Title:  fmt.Sprintf("Redundant receptions per node vs density (n=%d)", n),
		XLabel: "avg degree", YLabel: "redundant copies per node",
		Series: []Series{
			mk("flooding", func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result {
				return runIdeal(nw.G, src, broadcast.Flooding{})
			}),
			mk("dynamic-2.5hop", func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result {
				return dynamicb.New(nw.G, cl, coverage.Hop25).Broadcast(src)
			}),
			mk("sba-w4", func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result {
				nb := broadcast.NewNeighborhood(nw.G)
				return runTimed(nw.G, src, broadcast.NewSBA(nb, 4, 1))
			}),
			mk("counter-3", func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result {
				return runTimed(nw.G, src, broadcast.CounterBased{Threshold: 3, MaxDelay: 4, Seed: 1})
			}),
			mk("distance-0.4r", func(nw *topology.Network, cl *cluster.Clustering, src int) *broadcast.Result {
				return runTimed(nw.G, src, broadcast.DistanceBased{
					Positions: nw.Positions, MinDistance: nw.Radius * 0.4, MaxDelay: 4, Seed: 1,
				})
			}),
		},
	}
}

// Hierarchy measures the repository's future-work extension: how many
// clusterheads survive at each level of the multi-level hierarchy as the
// network grows — geometric shrinkage is what makes hierarchical
// addressing scale. ABL-HIER.
func Hierarchy(ns []int, d float64, levels int, seed uint64, rule stats.StopRule) *Figure {
	headsAt := func(level int) Estimator {
		return func(sc Scenario, rep int) (float64, bool) {
			nw, _, ok := sc.Sample("hier", rep)
			if !ok {
				return 0, false
			}
			h, err := hier.Build(nw.G, levels+1)
			if err != nil {
				return 0, false
			}
			if level >= h.Depth() {
				return 1, true // fully collapsed: one head remains
			}
			return float64(len(h.HeadsAt(level))), true
		}
	}
	var series []Series
	for lvl := 0; lvl <= levels; lvl++ {
		series = append(series,
			sweep(fmt.Sprintf("level-%d-heads", lvl), ns, d, seed, rule, headsAt(lvl)))
	}
	return &Figure{
		ID:     "hier",
		Title:  fmt.Sprintf("Clusterheads per hierarchy level (d=%g)", d),
		XLabel: "n", YLabel: "heads",
		Series: series,
	}
}

// Collision drops the paper's ideal-MAC assumption: broadcasts run under
// the slotted collision model (simultaneous transmissions destroy each
// other at common receivers; forwarders jitter within a contention
// window). Delivery ratio versus density shows the storm collapse of
// flooding and the backbones' resilience. ABL-COLLISION.
func Collision(degrees []float64, n, jitterWindow int, seed uint64, rule stats.StopRule) *Figure {
	mk := func(name string, run func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.MACOptions) *broadcast.CollisionResult) Series {
		s := Series{Name: name, Points: make([]Point, len(degrees))}
		ForEachPoint(len(degrees), func(i int) {
			deg := degrees[i]
			sc := DefaultScenario(n, deg, seed)
			sc.Rule = rule
			sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
				nw, cl, r, ok := clusteredSample(sc, fmt.Sprintf("collision-%g", deg), rep)
				if !ok {
					return 0, false
				}
				opt := broadcast.MACOptions{Jitter: jitterWindow, Seed: sc.Seed ^ uint64(rep)}
				res := run(nw, cl, r.source(nw.N()), opt)
				return res.DeliveryRatio(nw.N()), true
			})
			if err != nil {
				s.Points[i] = Point{X: deg}
				return
			}
			s.Points[i] = Point{X: deg, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return s
	}
	return &Figure{
		ID:     "collision",
		Title:  fmt.Sprintf("Delivery under MAC collisions (n=%d, jitter window %d)", n, jitterWindow),
		XLabel: "avg degree", YLabel: "delivery ratio",
		Series: []Series{
			mk("flooding", func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.MACOptions) *broadcast.CollisionResult {
				return runMAC(nw.G, src, broadcast.Flooding{}, opt)
			}),
			mk("static-2.5hop", func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.MACOptions) *broadcast.CollisionResult {
				s := backbone.BuildStatic(nw.G, cl, coverage.Hop25)
				return runMAC(nw.G, src, broadcast.StaticCDS{Set: s.Nodes}, opt)
			}),
			mk("dynamic-2.5hop", func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.MACOptions) *broadcast.CollisionResult {
				return runMAC(nw.G, src, dynamicb.New(nw.G, cl, coverage.Hop25), opt)
			}),
		},
	}
}

// Election compares the clusterhead election rule feeding the backbone:
// the paper's lowest-ID algorithm versus highest-connectivity (degree)
// clustering. Fewer, larger clusters shrink the backbone but concentrate
// load and churn under mobility. ABL-ELECTION.
func Election(ns []int, d float64, seed uint64, rule stats.StopRule) *Figure {
	size := func(elect func(*topology.Network) *cluster.Clustering, what string) Estimator {
		return func(sc Scenario, rep int) (float64, bool) {
			nw, _, ok := sc.Sample("election", rep)
			if !ok {
				return 0, false
			}
			cl := elect(nw)
			if what == "heads" {
				return float64(cl.NumClusters()), true
			}
			b := coverage.NewBuilder(nw.G, cl, coverage.Hop25)
			return float64(backbone.BuildStaticFrom(b, cl).Size()), true
		}
	}
	lowest := func(nw *topology.Network) *cluster.Clustering { return cluster.LowestID(nw.G) }
	degree := func(nw *topology.Network) *cluster.Clustering { return cluster.HighestDegree(nw.G) }
	return &Figure{
		ID:     "election",
		Title:  fmt.Sprintf("Lowest-ID vs highest-degree clusterhead election (d=%g)", d),
		XLabel: "n", YLabel: "count",
		Series: []Series{
			sweep("lowestid-heads", ns, d, seed, rule, size(lowest, "heads")),
			sweep("highestdeg-heads", ns, d, seed, rule, size(degree, "heads")),
			sweep("lowestid-backbone", ns, d, seed, rule, size(lowest, "backbone")),
			sweep("highestdeg-backbone", ns, d, seed, rule, size(degree, "backbone")),
		},
	}
}

// CoverageCost quantifies the paper's stated reason for preferring the
// 2.5-hop coverage set: "the cost of maintaining the 2.5-hop coverage set
// is lower than that of the 3-hop coverage set" (§1, §5). The proxy
// measured here is exactly the state the CH_HOP2 exchange must carry and
// keep fresh: total 2-hop clusterhead entries across all non-clusterheads,
// plus the average coverage-set size per clusterhead. ABL-COVERAGE.
func CoverageCost(ns []int, d float64, seed uint64, rule stats.StopRule) *Figure {
	entries := func(mode coverage.Mode) Estimator {
		return func(sc Scenario, rep int) (float64, bool) {
			nw, cl, _, ok := clusteredSample(sc, "covcost", rep)
			if !ok {
				return 0, false
			}
			b := coverage.NewBuilder(nw.G, cl, mode)
			total := 0
			for v := 0; v < nw.N(); v++ {
				if !cl.IsHead(v) {
					total += len(b.CH2(v))
				}
			}
			return float64(total), true
		}
	}
	covSize := func(mode coverage.Mode) Estimator {
		return func(sc Scenario, rep int) (float64, bool) {
			nw, cl, _, ok := clusteredSample(sc, "covcost", rep)
			if !ok {
				return 0, false
			}
			b := coverage.NewBuilder(nw.G, cl, mode)
			total := 0
			for _, h := range cl.Heads {
				total += b.Of(h).Size()
			}
			return float64(total) / float64(len(cl.Heads)), true
		}
	}
	return &Figure{
		ID:     "covcost",
		Title:  fmt.Sprintf("Coverage-set maintenance cost, 2.5-hop vs 3-hop (d=%g)", d),
		XLabel: "n", YLabel: "CH_HOP2 entries / avg |C(u)|",
		Series: []Series{
			sweep("ch2-entries-2.5hop", ns, d, seed, rule, entries(coverage.Hop25)),
			sweep("ch2-entries-3hop", ns, d, seed, rule, entries(coverage.Hop3)),
			sweep("coverage-size-2.5hop", ns, d, seed, rule, covSize(coverage.Hop25)),
			sweep("coverage-size-3hop", ns, d, seed, rule, covSize(coverage.Hop3)),
		},
	}
}

// Amortized settles the conclusion's argument ("maintaining a static
// backbone at all times for broadcasting is costly and unnecessary") with
// total message counts: construction traffic (from the wire-protocol
// simulator) plus per-broadcast forwarding, as a function of how many
// broadcasts k the structure serves before the topology changes. The
// static backbone pays GATEWAY designation traffic up front for a larger
// forward set; the dynamic backbone skips GATEWAY messages and forwards
// less per broadcast — so it wins at every k, and the gap widens.
// Flooding pays nothing up front and n per broadcast. ABL-AMORT.
func Amortized(ks []int, n int, d float64, seed uint64, rule stats.StopRule) *Figure {
	type costs struct {
		staticSetup, dynSetup   float64
		staticFwd, dynFwd, nAll float64
	}
	measure := func(sc Scenario, rep int) (costs, bool) {
		nw, cl, r, ok := clusteredSample(sc, "amort", rep)
		if !ok {
			return costs{}, false
		}
		out := runWire(nw.G, coverage.Hop25)
		gateway := out.Counters.PerType[sim.Gateway]
		src := r.source(nw.N())
		st := backbone.BuildStatic(nw.G, cl, coverage.Hop25)
		sres := runIdeal(nw.G, src, broadcast.StaticCDS{Set: st.Nodes})
		dres := dynamicb.New(nw.G, cl, coverage.Hop25).Broadcast(src)
		return costs{
			staticSetup: float64(out.Counters.Total()),
			dynSetup:    float64(out.Counters.Total() - gateway),
			staticFwd:   float64(sres.ForwardCount()),
			dynFwd:      float64(dres.ForwardCount()),
			nAll:        float64(nw.N()),
		}, true
	}
	mk := func(name string, total func(c costs, k int) float64) Series {
		s := Series{Name: name, Points: make([]Point, len(ks))}
		ForEachPoint(len(ks), func(i int) {
			k := ks[i]
			sc := DefaultScenario(n, d, seed)
			sc.Rule = rule
			sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
				c, ok := measure(sc, rep)
				if !ok {
					return 0, false
				}
				return total(c, k), true
			})
			if err != nil {
				s.Points[i] = Point{X: float64(k)}
				return
			}
			s.Points[i] = Point{X: float64(k), Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return s
	}
	return &Figure{
		ID:     "amort",
		Title:  fmt.Sprintf("Total messages for k broadcasts (n=%d, d=%g)", n, d),
		XLabel: "broadcasts k", YLabel: "messages (setup + forwarding)",
		Series: []Series{
			mk("flooding", func(c costs, k int) float64 { return float64(k) * c.nAll }),
			mk("static-backbone", func(c costs, k int) float64 { return c.staticSetup + float64(k)*c.staticFwd }),
			mk("dynamic-backbone", func(c costs, k int) float64 { return c.dynSetup + float64(k)*c.dynFwd }),
		},
	}
}
