package experiment

import (
	"sync/atomic"

	"clustercast/internal/broadcast"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
	"clustercast/internal/sim"
)

// desEngine is the opt-in for the event-driven calendar engines
// (internal/des), behind an atomic like the worker count and the batch
// toggle. Unlike batch replication the calendar engines are proven
// bit-identical to the scalar ones — flipping the opt-in never changes
// CSV bytes, trace streams or statistics; it only changes how the hot
// loops find their next occupied slot. Off by default: the scalar
// engines remain the golden reference.
var desEngine atomic.Bool

// SetDES routes subsequent figure and driver runs through the calendar
// engines (broadcast.RunDES*, sim.RunDES). Output is bit-identical to
// the scalar path by construction and by the equivalence suites.
func SetDES(on bool) { desEngine.Store(on) }

// DES reports whether the calendar engines are enabled.
func DES() bool { return desEngine.Load() }

// runOpts dispatches one ideal-radio broadcast to the engine the DES
// toggle selects.
func runOpts(g *graph.Graph, source int, p broadcast.Protocol, opt broadcast.Options) *broadcast.Result {
	if DES() {
		return broadcast.RunDESOpts(g, source, p, opt)
	}
	return broadcast.RunOpts(g, source, p, opt)
}

// runIdeal is runOpts under the ideal radio model.
func runIdeal(g *graph.Graph, source int, p broadcast.Protocol) *broadcast.Result {
	return runOpts(g, source, p, broadcast.Options{})
}

// runTimed dispatches one delayed-decision broadcast.
func runTimed(g *graph.Graph, source int, p broadcast.TimedProtocol) *broadcast.Result {
	if DES() {
		return broadcast.RunTimedDES(g, source, p, broadcast.TimedOptions{})
	}
	return broadcast.RunTimed(g, source, p)
}

// runMAC dispatches one slotted-collision broadcast.
func runMAC(g *graph.Graph, source int, p broadcast.Protocol, opt broadcast.MACOptions) *broadcast.CollisionResult {
	if DES() {
		return broadcast.RunMACDES(g, source, p, opt)
	}
	return broadcast.RunMAC(g, source, p, opt)
}

// runWire dispatches one construction-protocol run (ABL-MSG).
func runWire(g *graph.Graph, mode coverage.Mode) *sim.Outcome {
	if DES() {
		return sim.RunDES(g, mode)
	}
	return sim.Run(g, mode)
}

// runBcast dispatches a workspace-owned ideal-radio broadcast.
func (ws *Workspace) runBcast(g *graph.Graph, source int, p broadcast.Protocol) *broadcast.WSResult {
	if DES() {
		return ws.Bcast.RunDES(g, source, p)
	}
	return ws.Bcast.Run(g, source, p)
}
