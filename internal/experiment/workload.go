package experiment

import (
	"fmt"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/graph"
	"clustercast/internal/mocds"
	"clustercast/internal/stats"
	"clustercast/internal/topology"
	"clustercast/internal/workload"
)

// runMulti dispatches one multi-source MAC scenario to the engine the DES
// toggle selects (the workload.Engine shape).
func runMulti(g *graph.Graph, flows []broadcast.MultiFlow, opt broadcast.MACOptions) *broadcast.MultiResult {
	if DES() {
		return broadcast.RunMACMultiDES(g, flows, opt)
	}
	return broadcast.RunMACMulti(g, flows, opt)
}

// trafficBackbone names one relay-structure series of the workload
// figures and builds its per-flow protocol factory over a clustered
// sample.
type trafficBackbone struct {
	name  string
	proto func(nw *topology.Network, cl *cluster.Clustering) workload.ProtoFactory
}

// trafficBackbones lists the four relay structures the workload figures
// compare: blind flooding, the static backbone (SI-CDS), the dynamic
// backbone (SD-CDS), and the MO_CDS. Each factory builds the structure
// once per replicate; the flooding/CDS protocols are stateless and the
// dynamic protocol keeps no cross-broadcast state outside its reuse
// arenas (off here), so one shared instance serves every flow.
func trafficBackbones() []trafficBackbone {
	return []trafficBackbone{
		{"flooding", func(nw *topology.Network, cl *cluster.Clustering) workload.ProtoFactory {
			return func(int) broadcast.Protocol { return broadcast.Flooding{} }
		}},
		{"static-2.5hop", func(nw *topology.Network, cl *cluster.Clustering) workload.ProtoFactory {
			s := backbone.BuildStatic(nw.G, cl, coverage.Hop25)
			p := broadcast.StaticCDS{Set: s.Nodes}
			return func(int) broadcast.Protocol { return p }
		}},
		{"dynamic-2.5hop", func(nw *topology.Network, cl *cluster.Clustering) workload.ProtoFactory {
			p := dynamicb.New(nw.G, cl, coverage.Hop25)
			return func(int) broadcast.Protocol { return p }
		}},
		{"mo-cds", func(nw *topology.Network, cl *cluster.Clustering) workload.ProtoFactory {
			c := mocds.Build(nw.G, cl)
			p := broadcast.StaticCDS{Set: c.Nodes, Label: "mocds"}
			return func(int) broadcast.Protocol { return p }
		}},
	}
}

// Traffic is the heavy-load ablation the single-shot figures never
// produced: concurrent Poisson broadcast flows contend for MAC slots, and
// delivery ratio plus end-to-end throughput are swept over the offered
// load. The paper's backbone argument is exactly that fewer forwarders
// keep the medium usable as load grows — flooding's delivery collapses
// first. ABL-TRAFFIC.
func Traffic(rates []float64, n int, d float64, flows, jitter int, seed uint64, rule stats.StopRule) *Figure {
	type metric struct {
		name    string
		measure func(tr *workload.TrafficResult) float64
	}
	metrics := []metric{
		{"delivery", func(tr *workload.TrafficResult) float64 { return tr.DeliveryRatio }},
		{"throughput", func(tr *workload.TrafficResult) float64 { return tr.Throughput }},
	}
	var series []Series
	for _, bk := range trafficBackbones() {
		bk := bk
		for _, m := range metrics {
			m := m
			s := Series{Name: bk.name + "-" + m.name, Points: make([]Point, len(rates))}
			ForEachPoint(len(rates), func(i int) {
				rate := rates[i]
				sc := DefaultScenario(n, d, seed)
				sc.Rule = rule
				sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
					nw, cl, _, ok := clusteredSample(sc, fmt.Sprintf("traffic-%g", rate), rep)
					if !ok {
						return 0, false
					}
					spec := workload.Spec{
						Process: workload.Poisson, Rate: rate, Flows: flows,
						FanOut: 1, Seed: sc.Seed ^ uint64(rep),
					}
					fl, err := spec.Generate(nw.N())
					if err != nil {
						return 0, false
					}
					tr := workload.RunTraffic(nw.G, fl, bk.proto(nw, cl),
						broadcast.MACOptions{Jitter: jitter}, runMulti)
					return m.measure(tr), true
				})
				if err != nil {
					s.Points[i] = Point{X: rate}
					return
				}
				s.Points[i] = Point{X: rate, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
			})
			series = append(series, s)
		}
	}
	return &Figure{
		ID:     "traffic",
		Title:  fmt.Sprintf("Concurrent broadcast load (n=%d, d=%g, %d flows, jitter %d)", n, d, flows, jitter),
		XLabel: "offered load (arrivals/slot)", YLabel: "delivery ratio / throughput",
		Series: series,
	}
}

// Discovery measures backbone-assisted route discovery under load:
// concurrent RREQ floods share the MAC, each found route is the delivery
// tree's parent chain at the destination, and the RREP unicasts back over
// it. Success ratio and end-to-end discovery latency are swept over the
// offered load per backbone. ABL-DISCOVERY.
func Discovery(rates []float64, n int, d float64, flows, jitter int, seed uint64, rule stats.StopRule) *Figure {
	type metric struct {
		name    string
		measure func(dr *workload.DiscoveryResult) (float64, bool)
	}
	metrics := []metric{
		{"success", func(dr *workload.DiscoveryResult) (float64, bool) {
			return dr.SuccessRatio, dr.Requests > 0
		}},
		// Latency is conditional on success: a replicate where every flood
		// failed contributes no sample rather than a spurious zero.
		{"latency", func(dr *workload.DiscoveryResult) (float64, bool) {
			return dr.MeanLatency, dr.Found > 0
		}},
	}
	var series []Series
	for _, bk := range trafficBackbones() {
		bk := bk
		for _, m := range metrics {
			m := m
			s := Series{Name: bk.name + "-" + m.name, Points: make([]Point, len(rates))}
			ForEachPoint(len(rates), func(i int) {
				rate := rates[i]
				sc := DefaultScenario(n, d, seed)
				sc.Rule = rule
				sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
					nw, cl, _, ok := clusteredSample(sc, fmt.Sprintf("discovery-%g", rate), rep)
					if !ok {
						return 0, false
					}
					spec := workload.Spec{
						Process: workload.Poisson, Rate: rate, Flows: flows,
						FanOut: 1, Discovery: true, Seed: sc.Seed ^ uint64(rep),
					}
					fl, err := spec.Generate(nw.N())
					if err != nil {
						return 0, false
					}
					dr := workload.RunDiscovery(nw.G, fl, bk.proto(nw, cl),
						broadcast.MACOptions{Jitter: jitter}, runMulti)
					return m.measure(dr)
				})
				if err != nil {
					s.Points[i] = Point{X: rate}
					return
				}
				s.Points[i] = Point{X: rate, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
			})
			series = append(series, s)
		}
	}
	return &Figure{
		ID:     "discovery",
		Title:  fmt.Sprintf("Route discovery under load (n=%d, d=%g, %d floods, jitter %d)", n, d, flows, jitter),
		XLabel: "offered load (arrivals/slot)", YLabel: "success ratio / latency (slots)",
		Series: series,
	}
}
