package experiment

import (
	"sync/atomic"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/faults"
	"clustercast/internal/stats"
	"clustercast/internal/topology"
)

// batchReplication is the opt-in for 64-wide bit-parallel replication,
// behind an atomic like the worker count. Off by default: the batch path
// samples one topology per 64 replicate lanes and draws its randomness from
// the lane-indexed coin discipline, so its figures are a different (equally
// valid) Monte-Carlo sample than the legacy scalar stream — flipping the
// opt-in intentionally changes CSV bytes, while worker counts never do.
var batchReplication atomic.Bool

// SetBatchReplication toggles the 64-wide replication path for subsequent
// figure runs. Series whose protocol has no batch kernel, and fault specs
// outside faults.BatchSupported (churn, partitions), fall back to the
// scalar path regardless.
func SetBatchReplication(on bool) { batchReplication.Store(on) }

// BatchReplication reports whether the 64-wide path is enabled.
func BatchReplication() bool { return batchReplication.Load() }

// useBatch reports whether one series runs batched: the opt-in is on and
// the spec family is batchable. (Kernel coverage is the caller's half: a
// series with no BatchKernel stays scalar unconditionally.)
func useBatch(spec faults.Spec) bool {
	return BatchReplication() && faults.BatchSupported(spec)
}

// batchSeed derives replicate-batch b's fault/protocol seed from a point
// seed, mixing multiplicatively like Scenario.Sample so adjacent batches
// land on unrelated streams.
func batchSeed(seed uint64, batch int) uint64 {
	return seed ^ uint64(batch)*0x9E3779B97F4A7C15
}

// BatchKernel builds one replicate-batch's 64-wide protocol from the
// sampled topology. Anything it borrows from the workspace (backbone
// bitsets, coverage sets) is valid for the duration of the batch run.
type BatchKernel func(ws *Workspace, nw *topology.Network, cl *cluster.Clustering, src, batch int) broadcast.BatchProtocol

// BatchSweepPoint measures one data point through the bit-parallel engine:
// replicate-batch b samples one topology/clustering/source (label, rep=b —
// the scalar sampling discipline, shared by all 64 lanes of the batch),
// builds the series' kernel and the 64-lane loss chains for spec(b), runs
// one 64-wide broadcast, and folds the lanes' delivery ratios through the
// stopping rule in strict replicate order (stats.ReplicateBatch). Workers
// each advance independent batches on pooled per-worker workspaces; the
// Point is bit-identical for every worker count.
func BatchSweepPoint(sc Scenario, workers int, x float64, label string, spec func(batch int) faults.Spec, kernel BatchKernel) Point {
	slots := workers
	if slots < 1 {
		slots = 1
	}
	wss := make([]*Workspace, slots)
	sum, err := stats.ReplicateBatch(sc.Rule, workers, func(worker, batch int) stats.BatchObs {
		var o stats.BatchObs
		ws := wss[worker]
		if ws == nil {
			ws = wsPool.Get().(*Workspace)
			wss[worker] = ws
		}
		nw, cl, r, ok := clusteredSampleWS(ws, sc, label, batch)
		if !ok {
			return o // every lane of the batch shares the discarded sample
		}
		src := r.Intn(nw.N())
		k := kernel(ws, nw, cl, src, batch)
		if k == nil {
			return o
		}
		var opt broadcast.BatchOptions
		if sp := spec(batch); sp.Enabled() {
			opt.Chains = faults.NewChainBatch(sp)
		}
		res := ws.Batch.Run(nw.G, src, k, opt)
		n := nw.N()
		for l := range o.X {
			o.X[l] = res.DeliveryRatio(l, n)
			o.OK[l] = true
		}
		return o
	})
	for _, ws := range wss {
		if ws != nil {
			ws.Clock.Reset()
			wsPool.Put(ws)
		}
	}
	if err != nil {
		return Point{X: x}
	}
	return Point{X: x, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
}

// The batch kernels of the figure series that claim batch support. Each
// mirrors its scalar runOne counterpart exactly: same backbone
// construction, same forward set, only the engine width differs.

// floodingKernel is blind flooding, 64 lanes wide.
func floodingKernel(ws *Workspace, nw *topology.Network, cl *cluster.Clustering, src, batch int) broadcast.BatchProtocol {
	return broadcast.BatchFlooding{}
}

// staticCDSKernel broadcasts over the paper's static 2.5-hop backbone,
// built workspace-backed like StaticForwardEstimatorWS.
func staticCDSKernel(ws *Workspace, nw *topology.Network, cl *cluster.Clustering, src, batch int) broadcast.BatchProtocol {
	ws.Digest(nw.G, cl, coverage.Hop25)
	nodes := ws.Backbone.StaticNodes(&ws.Builder, cl, backbone.Options{})
	return broadcast.BatchStaticCDS{Set: nodes, Label: "static-2.5hop"}
}

// mocdsKernel broadcasts over the MO_CDS baseline.
func mocdsKernel(ws *Workspace, nw *topology.Network, cl *cluster.Clustering, src, batch int) broadcast.BatchProtocol {
	ws.Digest(nw.G, cl, coverage.Hop3)
	nodes := ws.MOCDS.NodesFrom(&ws.Builder, cl)
	return broadcast.BatchStaticCDS{Set: nodes, Label: "mo-cds"}
}

// gossipKernel forwards with probability p; each batch draws its coin words
// from a fresh seed so batches stay independent samples.
func gossipKernel(p float64, seed uint64) BatchKernel {
	return func(ws *Workspace, nw *topology.Network, cl *cluster.Clustering, src, batch int) broadcast.BatchProtocol {
		return broadcast.BatchGossip{P: p, Seed: batchSeed(seed, batch)}
	}
}
