package experiment

import (
	"fmt"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/faults"
	"clustercast/internal/mocds"
	"clustercast/internal/stats"
	"clustercast/internal/topology"
)

// faultsMeanDown is the mean outage length (slots) used by the churn sweep;
// the downtime fraction q then fixes MeanUp = MeanDown·(1−q)/q.
const faultsMeanDown = 50

// faultsWarmup advances the churn processes far enough that the up/down
// alternation is in steady state when the broadcast starts, so the swept
// downtime fraction is actually realized at t = 0 (every node starts up
// without a warm-up, biasing small-t runs toward full delivery).
const faultsWarmup = 200

// churnSpec builds the fault schedule of one replicate of the churn sweep:
// exponential up/down node churn at steady-state downtime fraction q.
// q == 0 disables churn entirely (the ideal model).
func churnSpec(q float64, seed uint64) faults.Spec {
	spec := faults.Spec{Seed: seed}
	if q > 0 {
		spec.MeanDown = faultsMeanDown
		spec.MeanUp = faultsMeanDown * (1 - q) / q
		spec.Warmup = faultsWarmup
	}
	return spec
}

// liveSource returns the first node that is alive at t = 0, scanning from
// the drawn source and wrapping, so every replicate broadcasts from a node
// that can actually transmit. ok is false when nobody is alive.
func liveSource(start, n int, alive func(int) bool) (int, bool) {
	for i := 0; i < n; i++ {
		if v := (start + i) % n; alive(v) {
			return v, true
		}
	}
	return 0, false
}

// liveDelivery is the churn sweep's metric: the fraction of the nodes that
// are up when the broadcast starts (t = 0) that receive the packet. Nodes
// that are down at t = 0 could not have participated, so counting them
// would conflate protocol failure with scheduled absence.
func liveDelivery(res *broadcast.Result, n int, alive func(int) bool) (float64, bool) {
	up, got := 0, 0
	for v := 0; v < n; v++ {
		if alive(v) {
			up++
			if res.Received[v] {
				got++
			}
		}
	}
	if up == 0 {
		return 0, false
	}
	return float64(got) / float64(up), true
}

// Faults measures delivery under node crash/recovery churn: the fraction of
// live nodes reached, swept over the steady-state downtime fraction q.
// ABL-FAULTS. The static backbone appears twice — once run stale (built for
// the full graph and left alone, the paper's proactive structure decaying
// under churn) and once repaired with backbone.Repair against the t = 0
// crash state — so the value of self-healing is the gap between the two
// curves. Flooding, the dynamic (source-dependent) backbone and the MO_CDS
// complete the comparison.
func Faults(qs []float64, n int, d float64, seed uint64, rule stats.StopRule) *Figure {
	workers := Parallelism()
	type sample struct {
		nw    *topology.Network
		cl    *cluster.Clustering
		o     *faults.Oracle
		alive func(int) bool
		src   int
	}
	// draw builds the replicate's common state: topology, clustering, fault
	// oracle (seeded per replicate), and a live source.
	draw := func(sc Scenario, q float64, name string, rep int) (*sample, bool) {
		nw, cl, r, ok := clusteredSample(sc, fmt.Sprintf("faults-%s-%g", name, q), rep)
		if !ok {
			return nil, false
		}
		o := faults.New(churnSpec(q, sc.Seed^uint64(rep)), nw.N())
		o.SetPositions(nw.Positions)
		alive := o.Alive(0)
		src, ok := liveSource(r.source(nw.N()), nw.N(), alive)
		if !ok {
			return nil, false
		}
		return &sample{nw: nw, cl: cl, o: o, alive: alive, src: src}, true
	}
	mk := func(name string, runOne func(s *sample) (*broadcast.Result, bool)) Series {
		ser := Series{Name: name, Points: make([]Point, len(qs))}
		forEachPoint(len(qs), workers, func(i int) {
			q := qs[i]
			sc := DefaultScenario(n, d, seed)
			sc.Rule = rule
			sum, err := stats.ReplicateN(sc.Rule, workers, func(rep int) (float64, bool) {
				s, ok := draw(sc, q, name, rep)
				if !ok {
					return 0, false
				}
				res, ok := runOne(s)
				if !ok {
					return 0, false
				}
				return liveDelivery(res, s.nw.N(), s.alive)
			})
			if err != nil {
				ser.Points[i] = Point{X: q}
				return
			}
			ser.Points[i] = Point{X: q, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return ser
	}
	opt := func(s *sample) broadcast.Options { return broadcast.Options{Faults: s.o} }
	return &Figure{
		ID:     "faults",
		Title:  fmt.Sprintf("Delivery to live nodes under crash/recovery churn (n=%d, d=%g, MTTR=%d)", n, d, faultsMeanDown),
		XLabel: "downtime fraction", YLabel: "delivery ratio (live nodes)",
		Series: []Series{
			mk("flooding", func(s *sample) (*broadcast.Result, bool) {
				return runOpts(s.nw.G, s.src, broadcast.Flooding{}, opt(s)), true
			}),
			mk("static-2.5hop-stale", func(s *sample) (*broadcast.Result, bool) {
				b := backbone.BuildStatic(s.nw.G, s.cl, coverage.Hop25)
				return runOpts(s.nw.G, s.src, broadcast.StaticCDS{Set: b.Nodes}, opt(s)), true
			}),
			mk("static-2.5hop-repaired", func(s *sample) (*broadcast.Result, bool) {
				base := backbone.BuildStatic(s.nw.G, s.cl, coverage.Hop25)
				allUp := func(int) bool { return true }
				_, rep, _, err := backbone.Repair(s.nw.G, s.cl, base, allUp, s.alive, backbone.Options{}, nil)
				if err != nil {
					return nil, false
				}
				return runOpts(s.nw.G, s.src, broadcast.StaticCDS{Set: rep.Nodes}, opt(s)), true
			}),
			mk("dynamic-2.5hop", func(s *sample) (*broadcast.Result, bool) {
				return runOpts(s.nw.G, s.src, dynamicb.New(s.nw.G, s.cl, coverage.Hop25), opt(s)), true
			}),
			mk("mo-cds", func(s *sample) (*broadcast.Result, bool) {
				c := mocds.Build(s.nw.G, s.cl)
				return runOpts(s.nw.G, s.src, broadcast.StaticCDS{Set: c.Nodes}, opt(s)), true
			}),
		},
	}
}

// Burstiness holds the stationary loss rate fixed and sweeps the mean burst
// length of the Gilbert–Elliott link chain: L = 1 reproduces the i.i.d.
// loss of ABL-LOSSY exactly, larger L concentrates the same number of lost
// copies into correlated runs. ABL-BURST. Burstiness hurts sparse backbones
// more than flooding because a burst takes out every retransmission
// opportunity a single relay had, while flooding's redundancy rides across
// independent links.
// With SetBatchReplication on, every series but the dynamic backbone runs
// on the 64-wide engine: SetBurst specs are transition-batchable (the
// 64-chain Gilbert–Elliott state word in internal/faults), so a whole
// batch's loss bursts advance per machine word. The churn figure above is
// NOT batchable (faults.BatchSupported excludes node churn) and always
// stays scalar — it is the opt-in's documented fallback.
func Burstiness(burstLens []float64, p float64, n int, d float64, seed uint64, rule stats.StopRule) *Figure {
	workers := Parallelism()
	mk := func(name string, kernel BatchKernel, runOne func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result) Series {
		s := Series{Name: name, Points: make([]Point, len(burstLens))}
		forEachPoint(len(burstLens), workers, func(i int) {
			L := burstLens[i]
			sc := DefaultScenario(n, d, seed)
			sc.Rule = rule
			var burst faults.Spec
			if err := burst.SetBurst(p, L); err != nil {
				s.Points[i] = Point{X: L}
				return
			}
			if kernel != nil && useBatch(burst) {
				spec := func(batch int) faults.Spec {
					sp := burst
					sp.Seed = batchSeed(sc.Seed, batch)
					return sp
				}
				s.Points[i] = BatchSweepPoint(sc, workers, L, fmt.Sprintf("burst-%s-%g", name, L), spec, kernel)
				return
			}
			sum, err := stats.ReplicateN(sc.Rule, workers, func(rep int) (float64, bool) {
				nw, cl, r, ok := clusteredSample(sc, fmt.Sprintf("burst-%s-%g", name, L), rep)
				if !ok {
					return 0, false
				}
				spec := burst
				spec.Seed = sc.Seed ^ uint64(rep)
				o := faults.New(spec, nw.N())
				res := runOne(nw, cl, r.source(nw.N()), broadcast.Options{Faults: o})
				return res.DeliveryRatio(nw.N()), true
			})
			if err != nil {
				s.Points[i] = Point{X: L}
				return
			}
			s.Points[i] = Point{X: L, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return s
	}
	return &Figure{
		ID:     "burst",
		Title:  fmt.Sprintf("Delivery under bursty link loss, fixed rate p=%g (n=%d, d=%g)", p, n, d),
		XLabel: "mean burst length", YLabel: "delivery ratio",
		Series: []Series{
			mk("flooding", floodingKernel, func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result {
				return runOpts(nw.G, src, broadcast.Flooding{}, opt)
			}),
			mk("static-2.5hop", staticCDSKernel, func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result {
				b := backbone.BuildStatic(nw.G, cl, coverage.Hop25)
				return runOpts(nw.G, src, broadcast.StaticCDS{Set: b.Nodes}, opt)
			}),
			mk("dynamic-2.5hop", nil, func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result {
				return runOpts(nw.G, src, dynamicb.New(nw.G, cl, coverage.Hop25), opt)
			}),
			mk("mo-cds", mocdsKernel, func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result {
				c := mocds.Build(nw.G, cl)
				return runOpts(nw.G, src, broadcast.StaticCDS{Set: c.Nodes}, opt)
			}),
		},
	}
}
