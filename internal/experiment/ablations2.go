package experiment

import (
	"fmt"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/faults"
	"clustercast/internal/fwdtree"
	"clustercast/internal/marking"
	"clustercast/internal/mocds"
	"clustercast/internal/passive"
	"clustercast/internal/reliable"
	"clustercast/internal/rng"
	"clustercast/internal/stats"
	"clustercast/internal/topology"
)

// SICDS compares every source-independent CDS construction in the
// repository: the paper's static backbone, the MO_CDS baseline, the Wu–Li
// marking process with Rules 1&2, and the Pagani–Rossi forwarding tree
// (rooted at a random source's cluster). ABL-SICDS.
func SICDS(ns []int, d float64, seed uint64, rule stats.StopRule) *Figure {
	return &Figure{
		ID:     "sicds",
		Title:  fmt.Sprintf("Size of source-independent CDS constructions (d=%g)", d),
		XLabel: "n", YLabel: "CDS size",
		Series: []Series{
			sweepWS("static-2.5hop", ns, d, seed, rule, StaticSizeEstimatorWS(coverage.Hop25)),
			sweepWS("mo-cds", ns, d, seed, rule, MOCDSSizeEstimatorWS()),
			sweep("marking-rules12", ns, d, seed, rule, func(sc Scenario, rep int) (float64, bool) {
				nw, _, ok := sc.Sample("sicds-marking", rep)
				if !ok {
					return 0, false
				}
				return float64(len(marking.Build(nw.G))), true
			}),
			sweep("fwd-tree", ns, d, seed, rule, func(sc Scenario, rep int) (float64, bool) {
				nw, cl, r, ok := clusteredSample(sc, "sicds-tree", rep)
				if !ok {
					return 0, false
				}
				b := coverage.NewBuilder(nw.G, cl, coverage.Hop25)
				tree, err := fwdtree.Build(b, cl, r.source(nw.N()))
				if err != nil {
					return 0, false
				}
				return float64(tree.Size()), true
			}),
		},
	}
}

// Lossy measures the redundancy/reliability trade-off the paper's ideal
// MAC assumption hides: delivery ratio under per-link loss for flooding
// (maximal redundancy), the static backbone, the dynamic backbone and the
// MO_CDS. ABL-LOSSY. The sweep is over the loss probability.
//
// With SetBatchReplication on, the flooding, static-backbone and MO_CDS
// series run on the 64-wide bit-parallel engine (i.i.d. loss expressed as
// a transition-free Gilbert–Elliott spec, lane-indexed coins); the
// dynamic backbone has no batch kernel and always takes the scalar path.
func Lossy(losses []float64, n int, d float64, seed uint64, rule stats.StopRule) *Figure {
	workers := Parallelism()
	mk := func(name string, kernel BatchKernel, runOne func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result) Series {
		s := Series{Name: name, Points: make([]Point, len(losses))}
		forEachPoint(len(losses), workers, func(i int) {
			loss := losses[i]
			sc := DefaultScenario(n, d, seed)
			sc.Rule = rule
			iid := faults.Spec{LossGood: loss}
			if kernel != nil && useBatch(iid) {
				spec := func(batch int) faults.Spec {
					return faults.Spec{LossGood: loss, Seed: batchSeed(sc.Seed, batch)}
				}
				s.Points[i] = BatchSweepPoint(sc, workers, loss, fmt.Sprintf("lossy-%s-%g", name, loss), spec, kernel)
				return
			}
			sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
				nw, cl, r, ok := clusteredSample(sc, fmt.Sprintf("lossy-%s-%g", name, loss), rep)
				if !ok {
					return 0, false
				}
				opt := broadcast.Options{Loss: loss, Seed: sc.Seed ^ uint64(rep)}
				res := runOne(nw, cl, r.source(nw.N()), opt)
				return res.DeliveryRatio(nw.N()), true
			})
			if err != nil {
				s.Points[i] = Point{X: loss}
				return
			}
			s.Points[i] = Point{X: loss, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return s
	}
	return &Figure{
		ID:     "lossy",
		Title:  fmt.Sprintf("Delivery ratio under per-link loss (n=%d, d=%g)", n, d),
		XLabel: "loss probability", YLabel: "delivery ratio",
		Series: []Series{
			mk("flooding", floodingKernel, func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result {
				return runOpts(nw.G, src, broadcast.Flooding{}, opt)
			}),
			mk("static-2.5hop", staticCDSKernel, func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result {
				s := backbone.BuildStatic(nw.G, cl, coverage.Hop25)
				return runOpts(nw.G, src, broadcast.StaticCDS{Set: s.Nodes}, opt)
			}),
			mk("dynamic-2.5hop", nil, func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result {
				return runOpts(nw.G, src, dynamicb.New(nw.G, cl, coverage.Hop25), opt)
			}),
			mk("mo-cds", mocdsKernel, func(nw *topology.Network, cl *cluster.Clustering, src int, opt broadcast.Options) *broadcast.Result {
				c := mocds.Build(nw.G, cl)
				return runOpts(nw.G, src, broadcast.StaticCDS{Set: c.Nodes}, opt)
			}),
		},
	}
}

// Maintenance compares maintenance strategies for the proactive backbone
// under random-waypoint motion: full re-election every step versus
// least-cluster-change incremental repair. ABL-MAINT. The sweep is over
// the maximum node speed; the metric is head-assignment changes per step.
func Maintenance(speeds []float64, n int, d float64, steps int, seed uint64, rule stats.StopRule) *Figure {
	churn := func(useLCC bool) func(speed float64) Estimator {
		return func(speed float64) Estimator {
			return func(sc Scenario, rep int) (float64, bool) {
				nw, _, ok := sc.Sample(fmt.Sprintf("maint-%g", speed), rep)
				if !ok {
					return 0, false
				}
				mob := topology.NewRandomWaypoint(nw.Positions, sc.Bounds, speed/2, speed, 0,
					rng.NewLabeled(sc.Seed^uint64(rep), "maint-waypoint"))
				prev := cluster.LowestID(nw.G)
				// Incremental edge maintenance (see ablations.go Mobility).
				dyn := topology.NewDynamic(nw)
				total := 0
				for step := 0; step < steps; step++ {
					cur := dyn.Step(mob.Step(1))
					var next *cluster.Clustering
					if useLCC {
						next, _ = cluster.Maintain(cur.G, prev)
					} else {
						next = cluster.LowestID(cur.G)
					}
					for v := 0; v < sc.N; v++ {
						if next.Head[v] != prev.Head[v] {
							total++
						}
					}
					prev = next
				}
				return float64(total) / float64(steps), true
			}
		}
	}
	mk := func(name string, est func(speed float64) Estimator) Series {
		s := Series{Name: name, Points: make([]Point, len(speeds))}
		ForEachPoint(len(speeds), func(i int) {
			speed := speeds[i]
			sc := DefaultScenario(n, d, seed)
			sc.Rule = rule
			sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
				return est(speed)(sc, rep)
			})
			if err != nil {
				s.Points[i] = Point{X: speed}
				return
			}
			s.Points[i] = Point{X: speed, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return s
	}
	return &Figure{
		ID:     "maint",
		Title:  fmt.Sprintf("Cluster maintenance churn: re-election vs LCC (n=%d, d=%g)", n, d),
		XLabel: "max speed", YLabel: "head changes per step",
		Series: []Series{
			mk("full-reelection", churn(false)),
			mk("lcc-incremental", churn(true)),
		},
	}
}

// PassiveConvergence shows how passive clustering converges across
// successive floods: forwarders per flood index, against the flooding and
// dynamic-backbone baselines. ABL-PASSIVE. The sweep is over the flood
// index (1-based).
func PassiveConvergence(floods int, n int, d float64, seed uint64, rule stats.StopRule) *Figure {
	idx := make([]int, floods)
	for i := range idx {
		idx[i] = i + 1
	}
	passiveSeries := Series{Name: "passive-clustering", Points: make([]Point, floods)}
	sums := make([]*stats.Summary, floods)
	for i := range sums {
		sums[i] = &stats.Summary{}
	}
	sc := DefaultScenario(n, d, seed)
	sc.Rule = rule
	// Replicate whole series (all floods share protocol state), so the
	// stopping rule is evaluated on the last flood's forward count.
	_, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
		nw, r, ok := sc.Sample("passive", rep)
		if !ok {
			return 0, false
		}
		sources := make([]int, floods)
		for i := range sources {
			sources[i] = r.Intn(n)
		}
		series := passive.RunSeries(nw.G, sources)
		for i, res := range series {
			sums[i].Add(float64(res.ForwardCount()))
		}
		return float64(series[floods-1].ForwardCount()), true
	})
	for i := range sums {
		p := Point{X: float64(idx[i])}
		if err == nil && sums[i].N() > 0 {
			p.Mean = sums[i].Mean()
			p.CI = sums[i].CI(0.99)
			p.Reps = sums[i].N()
		}
		passiveSeries.Points[i] = p
	}

	flat := func(name string, measure func(nw *topology.Network, cl *cluster.Clustering, src int) float64) Series {
		sc := DefaultScenario(n, d, seed)
		sc.Rule = rule
		sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
			nw, cl, r, ok := clusteredSample(sc, "passive-base-"+name, rep)
			if !ok {
				return 0, false
			}
			return measure(nw, cl, r.source(n)), true
		})
		s := Series{Name: name, Points: make([]Point, floods)}
		for i := range s.Points {
			p := Point{X: float64(idx[i])}
			if err == nil {
				p.Mean = sum.Mean()
				p.CI = sum.CI(0.99)
				p.Reps = sum.N()
			}
			s.Points[i] = p
		}
		return s
	}
	return &Figure{
		ID:     "passive",
		Title:  fmt.Sprintf("Passive clustering convergence across floods (n=%d, d=%g)", n, d),
		XLabel: "flood #", YLabel: "forward nodes",
		Series: []Series{
			passiveSeries,
			flat("flooding", func(nw *topology.Network, cl *cluster.Clustering, src int) float64 {
				return float64(runIdeal(nw.G, src, broadcast.Flooding{}).ForwardCount())
			}),
			flat("dynamic-2.5hop", func(nw *topology.Network, cl *cluster.Clustering, src int) float64 {
				return float64(dynamicb.New(nw.G, cl, coverage.Hop25).Broadcast(src).ForwardCount())
			}),
		},
	}
}

// Reliable measures the cost of *guaranteed* delivery over the
// Pagani–Rossi forwarding tree as the radio gets lossier: data
// transmissions and acknowledgements per fully-delivered broadcast,
// against the (non-guaranteed) delivery ratio flooding achieves at the
// same loss rate. ABL-RELIABLE. The sweep is over the loss probability.
func Reliable(losses []float64, n int, d float64, seed uint64, rule stats.StopRule) *Figure {
	mk := func(name string, measure func(nw *topology.Network, tree *fwdtree.Tree, src int, loss float64, rep uint64) (float64, bool)) Series {
		s := Series{Name: name, Points: make([]Point, len(losses))}
		ForEachPoint(len(losses), func(i int) {
			loss := losses[i]
			sc := DefaultScenario(n, d, seed)
			sc.Rule = rule
			sum, err := stats.Replicate(sc.Rule, func(rep int) (float64, bool) {
				nw, cl, r, ok := clusteredSample(sc, fmt.Sprintf("reliable-%g", loss), rep)
				if !ok {
					return 0, false
				}
				src := r.source(nw.N())
				b := coverage.NewBuilder(nw.G, cl, coverage.Hop25)
				tree, err := fwdtree.Build(b, cl, src)
				if err != nil {
					return 0, false
				}
				return measure(nw, tree, src, loss, sc.Seed^uint64(rep))
			})
			if err != nil {
				s.Points[i] = Point{X: loss}
				return
			}
			s.Points[i] = Point{X: loss, Mean: sum.Mean(), CI: sum.CI(0.99), Reps: sum.N()}
		})
		return s
	}
	return &Figure{
		ID:     "reliable",
		Title:  fmt.Sprintf("Reliable tree broadcast cost under loss (n=%d, d=%g)", n, d),
		XLabel: "loss probability", YLabel: "messages per broadcast",
		Series: []Series{
			mk("tree-data-transmissions", func(nw *topology.Network, tree *fwdtree.Tree, src int, loss float64, rep uint64) (float64, bool) {
				res, err := reliable.Run(nw.G, tree, src, reliable.Config{Loss: loss, Seed: rep})
				if err != nil || !res.Delivered {
					return 0, false
				}
				return float64(res.Transmissions), true
			}),
			mk("tree-acks", func(nw *topology.Network, tree *fwdtree.Tree, src int, loss float64, rep uint64) (float64, bool) {
				res, err := reliable.Run(nw.G, tree, src, reliable.Config{Loss: loss, Seed: rep})
				if err != nil || !res.Delivered {
					return 0, false
				}
				return float64(res.Acks), true
			}),
			mk("flooding-delivery-pct", func(nw *topology.Network, tree *fwdtree.Tree, src int, loss float64, rep uint64) (float64, bool) {
				res := runOpts(nw.G, src, broadcast.Flooding{}, broadcast.Options{Loss: loss, Seed: rep})
				return 100 * res.DeliveryRatio(nw.N()), true
			}),
		},
	}
}
