package experiment

import (
	"testing"

	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// TestScratchConcurrentForEachPoint exercises graph.Scratch growth and the
// package-level scratch pool from the worker pool that real sweeps use.
// Run under -race (make test-race / make ci) it proves the pooled scratch
// hand-out and per-goroutine reuse are data-race free.
func TestScratchConcurrentForEachPoint(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)

	// Topologies of growing size: a scratch that migrates between them via
	// the pool must grow its visited array on demand.
	sizes := []int{10, 30, 60, 100}
	nets := make([]*graph.Graph, len(sizes))
	conn := make([]bool, len(sizes))
	for i, n := range sizes {
		sc := DefaultScenario(n, 6, uint64(91+i))
		nw, _, ok := sc.Sample("scratch-race", 0)
		if !ok {
			t.Fatalf("no connected topology for n=%d", n)
		}
		nets[i] = nw.G
		conn[i] = nw.G.Connected()
		if !conn[i] {
			t.Fatalf("sampled topology n=%d not connected", n)
		}
	}

	const iters = 64
	bad := make([]bool, iters)
	ForEachPoint(iters, func(i int) {
		// Pooled path: the convenience methods borrow from the shared pool,
		// so concurrent iterations continually exchange scratches of
		// different sizes.
		for round := 0; round < 4; round++ {
			for gi, g := range nets {
				if g.Connected() != conn[gi] {
					bad[i] = true
				}
			}
		}
		// Explicit path: one deliberately undersized scratch per iteration,
		// forced to grow as the graphs get bigger.
		s := graph.NewScratch(0)
		for gi, g := range nets {
			if g.ConnectedWith(s) != conn[gi] {
				bad[i] = true
			}
		}
		// Shrinking back down must also work (epoch marks stay valid).
		if !nets[0].ConnectedWith(s) {
			bad[i] = true
		}
	})
	for i, b := range bad {
		if b {
			t.Fatalf("iteration %d saw an inconsistent connectivity answer", i)
		}
	}
}

// allocsSteadyState warms a workspace over the replicates it will measure,
// then reports the average allocations of one replicate.
func allocsSteadyState(t *testing.T, est WSEstimator, sc Scenario) float64 {
	t.Helper()
	ws := NewWorkspace()
	const cycle = 8
	for rep := 0; rep < cycle; rep++ {
		if _, ok := est(ws, sc, rep); !ok {
			t.Fatalf("warmup replicate %d failed", rep)
		}
	}
	rep := 0
	return testing.AllocsPerRun(4*cycle, func() {
		est(ws, sc, rep%cycle)
		rep++
	})
}

// TestReplicateHotPathAllocs is the allocation-regression guard for the
// zero-allocation replicate engine: once a workspace is warm, a replicate
// of each figure pipeline must allocate (near) nothing. The bounds are
// deliberately tight — they are the point of PR 2.
func TestReplicateHotPathAllocs(t *testing.T) {
	sc := DefaultScenario(60, 6, 77)
	cases := []struct {
		name string
		est  WSEstimator
		max  float64
	}{
		{"static-size-2.5hop", StaticSizeEstimatorWS(coverage.Hop25), 0},
		{"static-size-3hop", StaticSizeEstimatorWS(coverage.Hop3), 0},
		{"mocds-size", MOCDSSizeEstimatorWS(), 0},
		// The broadcast estimators still build a per-run Result whose maps
		// scale with n (~2.2 objects/node at n=60). Bound them at 3n: loose
		// enough for map-resize noise, tight enough that falling back to the
		// allocating pipeline (hundreds of objects of setup per replicate)
		// trips the guard.
		{"dynamic-fwd-2.5hop", DynamicForwardEstimatorWS(coverage.Hop25), 3 * 60},
		{"static-fwd-2.5hop", StaticForwardEstimatorWS(coverage.Hop25), 3 * 60},
		{"mocds-fwd", MOCDSForwardEstimatorWS(), 3 * 60},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := allocsSteadyState(t, c.est, sc)
			if got > c.max {
				t.Fatalf("steady-state replicate allocates %.1f objects/run, want <= %g", got, c.max)
			}
		})
	}
}
