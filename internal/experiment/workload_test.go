package experiment

import (
	"reflect"
	"testing"

	"clustercast/internal/obs"
)

// workloadCounters are the telemetry totals the determinism gate pins
// alongside the CSV bytes.
var workloadCounters = []string{
	"workload.flows", "workload.deliveries", "workload.cross_collisions",
	"workload.discovery_requests", "workload.discovery_found", "workload.discovery_failed",
	"mac.multi_runs", "mac.multi_flows", "mac.cross_collisions",
}

// TestWorkloadFiguresBitIdentical is the workload determinism gate: the
// traffic and discovery figures produce byte-identical CSVs AND identical
// workload.* / mac.multi* metric totals at any worker count, with the
// calendar engines on or off. Flow seeds are counter keys and every
// replicate's spec seed is a pure function of the replicate index, so no
// scheduling order can leak into the numbers.
func TestWorkloadFiguresBitIdentical(t *testing.T) {
	figs := map[string]func() *Figure{
		"traffic":   func() *Figure { return Traffic([]float64{0.1, 0.5}, 25, 8, 10, 2, 19, desRule) },
		"discovery": func() *Figure { return Discovery([]float64{0.1, 0.5}, 25, 8, 8, 2, 19, desRule) },
	}
	obs.Enable()
	defer obs.Disable()
	defer SetParallelism(0)
	defer SetDES(false)

	run := func(workers int, des bool, mk func() *Figure) (string, map[string]int64) {
		SetParallelism(workers)
		SetDES(des)
		before := map[string]int64{}
		for _, n := range workloadCounters {
			before[n] = obs.Default.Counter(n).Value()
		}
		csv := mk().CSV()
		deltas := map[string]int64{}
		for _, n := range workloadCounters {
			deltas[n] = obs.Default.Counter(n).Value() - before[n]
		}
		return csv, deltas
	}

	for name, mk := range figs {
		wantCSV, wantTotals := run(1, false, mk)
		if wantTotals["workload.flows"] == 0 && wantTotals["workload.discovery_requests"] == 0 {
			t.Fatalf("%s: baseline run offered no flows; the gate exercised nothing", name)
		}
		for _, workers := range []int{1, 4, 8} {
			for _, des := range []bool{false, true} {
				csv, totals := run(workers, des, mk)
				if csv != wantCSV {
					t.Errorf("%s: CSV differs at workers=%d des=%v", name, workers, des)
				}
				if !reflect.DeepEqual(totals, wantTotals) {
					t.Errorf("%s: metric totals differ at workers=%d des=%v:\n got %v\nwant %v",
						name, workers, des, totals, wantTotals)
				}
			}
		}
	}
}
