package sim

import (
	"sort"

	"clustercast/internal/backbone"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
)

// Worklist-election health counters, folded once per RunDES (locals in
// the loop, like the wheel's per-run stats). rounds/worklist together
// measure the O(messages) claim: worklist_nodes ~ n per run regardless of
// how many declaration rounds the ID structure forces.
var (
	mElectionRounds = obs.NewCounter("sim.des_election_rounds") // declaration/join iterations
	mWorklistNodes  = obs.NewCounter("sim.des_worklist_nodes")  // ready-worklist entries examined
)

// RunDES executes the construction protocol event-driven: instead of the
// scalar Run's per-round scans over all n node state machines, each
// phase touches only the nodes with pending work — the election loop
// runs on a ready worklist driven by per-node "smaller undecided
// neighbor" counters (a NON_CLUSTER_HEAD delivery decrements its larger
// neighbors; hitting zero schedules the declaration), and the coverage
// and gateway phases walk dense per-node slices instead of maps. The
// message rounds this generates — contents, per-type counts, round
// count, and distinct active senders per round — are identical to Run's,
// and so is the Outcome; Run stays the golden reference, gated by the
// equivalence test.
//
// The round structure degenerates the calendar to consecutive slots
// (every protocol round is occupied), so unlike the broadcast engines no
// timestamp wheel is involved: the event-driven win here is replacing
// the O(rounds·n) scans with O(messages) worklist updates.
func RunDES(g *graph.Graph, mode coverage.Mode) *Outcome {
	n := g.N()
	out := &Outcome{
		Head:     make([]int, n),
		Backbone: make(map[int]bool),
		PerHead:  make(map[int]backbone.Selection),
		Coverage: make(map[int]*coverage.Coverage),
	}
	var counters Counters
	// round tallies one delivered round of cnt messages from active
	// distinct senders (counted only when nonempty, as Run's deliver).
	round := func(typ MsgType, cnt, active int) {
		if cnt == 0 {
			return
		}
		counters.PerType[typ] += cnt
		counters.Rounds++
		counters.ActivePerRound = append(counters.ActivePerRound, active)
	}

	// ---- Phase A: HELLO. All n nodes transmit once; neighbor lists are
	// the graph's (sorted, as Run sorts its inboxes).
	round(Hello, n, n)

	// ---- Phase B: election on a ready worklist. ---------------------------
	const (
		candidate = uint8(0)
		headState = uint8(1)
		memberSt  = uint8(2)
	)
	state := make([]uint8, n)
	ownHead := make([]int32, n)
	smaller := make([]int32, n) // smaller-ID neighbors not yet known members
	ready := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		ownHead[v] = -1
		c := int32(0)
		for _, u := range g.Neighbors(v) {
			if u < v {
				c++
			}
		}
		smaller[v] = c
		if c == 0 {
			ready = append(ready, int32(v))
		}
	}
	undecided := n
	offerAt := make([]uint32, n) // stamp: bestOffer[v] is current this iteration
	bestOffer := make([]int32, n)
	offered := make([]int32, 0, 64)
	newHeads := make([]int32, 0, 64)
	newMembers := make([]int32, 0, 64)
	var iter uint32
	var worklistSeen int64
	for undecided > 0 {
		iter++
		worklistSeen += int64(len(ready))
		// Declaration round: every ready candidate wins (its smaller
		// neighbors are all members). Ready entries that joined in the
		// meantime are skipped for good.
		newHeads = newHeads[:0]
		for _, v32 := range ready {
			v := int(v32)
			if state[v] == candidate && smaller[v] == 0 {
				state[v] = headState
				ownHead[v] = v32
				newHeads = append(newHeads, v32)
			}
		}
		ready = ready[:0]
		round(ClusterHead, len(newHeads), len(newHeads))
		undecided -= len(newHeads)
		// Join round: candidates hearing a declaration join the smallest
		// declaring neighbor and announce NON_CLUSTER_HEAD.
		offered = offered[:0]
		for _, h := range newHeads {
			for _, v := range g.Neighbors(int(h)) {
				if state[v] != candidate {
					continue
				}
				if offerAt[v] != iter {
					offerAt[v] = iter
					bestOffer[v] = h
					offered = append(offered, int32(v))
				} else if h < bestOffer[v] {
					bestOffer[v] = h
				}
			}
		}
		newMembers = newMembers[:0]
		for _, v32 := range offered {
			v := int(v32)
			state[v] = memberSt
			ownHead[v] = bestOffer[v]
			newMembers = append(newMembers, v32)
		}
		round(NonClusterHead, len(newMembers), len(newMembers))
		undecided -= len(newMembers)
		// NON_CLUSTER_HEAD delivery: larger candidate neighbors strike the
		// new member off their smaller-undecided count; at zero they are
		// ready to declare next iteration.
		for _, m := range newMembers {
			for _, u := range g.Neighbors(int(m)) {
				if int32(u) > m && state[u] == candidate {
					smaller[u]--
					if smaller[u] == 0 {
						ready = append(ready, int32(u))
					}
				}
			}
		}
	}
	mElectionRounds.Add(int64(iter))
	mWorklistNodes.Add(worklistSeen)

	// ---- Phase C: CH_HOP1 / CH_HOP2 coverage exchange. --------------------
	// CH_HOP1: every non-head broadcasts its adjacent heads (ascending,
	// since neighbor lists are sorted).
	adjHeads := make([][]int32, n)
	nonHeads := 0
	for v := 0; v < n; v++ {
		if state[v] == headState {
			continue
		}
		nonHeads++
		for _, u := range g.Neighbors(v) {
			if state[u] == headState {
				adjHeads[v] = append(adjHeads[v], int32(u))
			}
		}
	}
	round(CHHop1, nonHeads, nonHeads)
	// CH_HOP1 processing: each non-head v builds its 2-hop entries w →
	// min relay from its non-head neighbors' reports, skipping heads
	// adjacent to v itself. Heads stash their neighbors' reports (in DES
	// form: adjHeads is read directly at assembly).
	hop2W := make([][]int32, n)
	hop2R := make([][]int32, n)
	adjStamp := make([]uint32, n)
	entryAt := make([]uint32, n)
	entrySlot := make([]int32, n)
	var mark uint32
	for v := 0; v < n; v++ {
		if state[v] == headState {
			continue
		}
		mark++
		for _, w := range adjHeads[v] {
			adjStamp[w] = mark
		}
		for _, u := range g.Neighbors(v) {
			if state[u] == headState {
				continue // heads do not send CH_HOP1
			}
			switch mode {
			case coverage.Hop25:
				// Only the sender's own clusterhead generates an entry.
				w := ownHead[u]
				if w >= 0 && adjStamp[w] != mark {
					if entryAt[w] != mark {
						entryAt[w] = mark
						entrySlot[w] = int32(len(hop2W[v]))
						hop2W[v] = append(hop2W[v], w)
						hop2R[v] = append(hop2R[v], int32(u))
					} else if int32(u) < hop2R[v][entrySlot[w]] {
						hop2R[v][entrySlot[w]] = int32(u)
					}
				}
			case coverage.Hop3:
				for _, w := range adjHeads[u] {
					if adjStamp[w] == mark {
						continue
					}
					if entryAt[w] != mark {
						entryAt[w] = mark
						entrySlot[w] = int32(len(hop2W[v]))
						hop2W[v] = append(hop2W[v], w)
						hop2R[v] = append(hop2R[v], int32(u))
					} else if int32(u) < hop2R[v][entrySlot[w]] {
						hop2R[v][entrySlot[w]] = int32(u)
					}
				}
			}
		}
	}
	// adjStamp doubles as the entry stamps' universe; separate marks per
	// node prevented cross-talk. CH_HOP2: every non-head transmits its
	// entries; heads stash them.
	round(CHHop2, nonHeads, nonHeads)

	// ---- Phase D: gateway selection and GATEWAY designation. --------------
	isGateway := make([]bool, n)
	type gwMsg struct {
		from     int32
		ttl      int32
		selected []int
	}
	var queue []gwMsg
	for h := 0; h < n; h++ {
		if state[h] != headState {
			continue
		}
		cov := assembleCoverageDES(g, h, mode, n, state, adjHeads, hop2W, hop2R)
		out.Coverage[h] = cov
		sel := backbone.SelectGateways(cov, nil, nil)
		out.PerHead[h] = sel
		queue = append(queue, gwMsg{from: int32(h), ttl: 2, selected: sel.Gateways})
	}
	sentAt := make([]uint32, n)
	var sentGen uint32
	var next []gwMsg
	for hop := 0; hop < 2 && len(queue) > 0; hop++ {
		sentGen++
		active := 0
		for _, m := range queue {
			if sentAt[m.from] != sentGen {
				sentAt[m.from] = sentGen
				active++
			}
		}
		round(Gateway, len(queue), active)
		next = next[:0]
		for _, m := range queue {
			for _, v := range g.Neighbors(int(m.from)) {
				selected := false
				for _, s := range m.selected {
					if s == v {
						selected = true
						break
					}
				}
				if !selected {
					continue
				}
				isGateway[v] = true
				// A selected gateway forwards each head's GATEWAY message
				// (a gateway can serve several heads), decrementing TTL.
				if m.ttl-1 > 0 {
					next = append(next, gwMsg{from: int32(v), ttl: m.ttl - 1, selected: m.selected})
				}
			}
		}
		queue, next = next, queue
	}

	// ---- Assemble the outcome. -------------------------------------------
	for v := 0; v < n; v++ {
		out.Head[v] = int(ownHead[v])
		if state[v] == headState {
			out.Heads = append(out.Heads, v)
			out.Backbone[v] = true
		}
		if isGateway[v] {
			out.Backbone[v] = true
		}
	}
	out.Counters = counters
	return out
}

// assembleCoverageDES mirrors node.assembleCoverage over the dense state:
// the head's C²/C³ and connector layout from its neighbors' CH_HOP1
// (adjHeads) and CH_HOP2 (hop2W/hop2R) reports.
func assembleCoverageDES(g *graph.Graph, h int, mode coverage.Mode, n int,
	state []uint8, adjHeads [][]int32, hop2W, hop2R [][]int32) *coverage.Coverage {
	cov := &coverage.Coverage{
		Head: h, Mode: mode,
		C2: graph.NewHybridSet(n), C3: graph.NewHybridSet(n),
	}
	neighbors := g.Neighbors(h)
	// First pass fills C² completely (the C³ pass filters against it).
	direct := make([][]int, len(neighbors))
	for i, v := range neighbors {
		if state[v] == 1 { // a head neighbor sent no CH_HOP1 (cannot occur: no adjacent heads)
			continue
		}
		var d []int
		for _, w := range adjHeads[v] {
			if int(w) == h {
				continue
			}
			cov.C2.Add(int(w))
			d = append(d, int(w))
		}
		direct[i] = d // adjHeads ascending ⇒ already sorted, as Run sorts it
	}
	for i, v := range neighbors {
		var ind []coverage.Hop2Entry
		for j, w := range hop2W[v] {
			if int(w) == h || cov.C2.Has(int(w)) {
				continue
			}
			cov.C3.Add(int(w))
			ind = append(ind, coverage.Hop2Entry{W: int(w), R: int(hop2R[v][j])})
		}
		sort.Slice(ind, func(a, b int) bool { return ind[a].W < ind[b].W })
		if len(direct[i]) == 0 && len(ind) == 0 {
			continue
		}
		cov.Conns = append(cov.Conns, coverage.Connector{V: v, Direct: direct[i], Indirect: ind})
	}
	return cov
}
