// Package sim runs the paper's *actual wire protocol* for constructing the
// cluster-based static backbone, as a round-synchronous message-passing
// simulation: HELLO neighbor discovery, lowest-ID clusterhead election with
// CLUSTER_HEAD / NON_CLUSTER_HEAD announcements, the CH_HOP1 / CH_HOP2
// coverage exchange, and GATEWAY designation messages with TTL 2.
//
// Unlike the centralized constructions in internal/cluster, internal/
// coverage and internal/backbone — which compute the same objects directly
// from the graph — this package exercises the distributed algorithm as a
// real node would run it, with every node acting only on information
// carried by received messages. It exists for two reasons:
//
//  1. Validation: the distributed outcome must agree exactly with the
//     centralized one (tested in sim_test.go).
//  2. Measurement: the paper's §4 claims O(n) communication complexity
//     ("message-optimal") and O(n) time; the simulator counts messages by
//     type and rounds so the claim can be reproduced (ABL-MSG).
//
// A transmission is a local broadcast: a message sent in round t is
// received by all neighbors in round t+1.
package sim

import (
	"fmt"
	"sort"

	"clustercast/internal/backbone"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// MsgType enumerates the protocol's message types.
type MsgType uint8

// Message types, in protocol order.
const (
	Hello MsgType = iota
	ClusterHead
	NonClusterHead
	CHHop1
	CHHop2
	Gateway
	numMsgTypes
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case Hello:
		return "HELLO"
	case ClusterHead:
		return "CLUSTER_HEAD"
	case NonClusterHead:
		return "NON_CLUSTER_HEAD"
	case CHHop1:
		return "CH_HOP1"
	case CHHop2:
		return "CH_HOP2"
	case Gateway:
		return "GATEWAY"
	default:
		return "UNKNOWN"
	}
}

// message is one local broadcast.
type message struct {
	typ  MsgType
	from int
	// ownHead is the sender's clusterhead (CH_HOP1, NON_CLUSTER_HEAD).
	ownHead int
	// heads carries the sender's 1-hop clusterheads (CH_HOP1).
	heads []int
	// entries carries the sender's 2-hop clusterhead entries w→relay
	// (CH_HOP2).
	entries map[int]int
	// selected carries the designated gateways (GATEWAY).
	selected []int
	// ttl limits GATEWAY forwarding.
	ttl int
}

// Counters tallies protocol traffic.
type Counters struct {
	// PerType counts transmissions by message type.
	PerType [numMsgTypes]int
	// Rounds is the number of synchronous rounds until quiescence.
	Rounds int
	// ActivePerRound records, round by round (indexed as Rounds-1), how
	// many distinct nodes transmitted in that round. With n nodes, the
	// per-round idle fraction 1 − active/n is the work a round-synchronous
	// simulator wastes scanning silent nodes — the measured quantity the
	// event-driven core's savings are validated against (ABL-MSG).
	ActivePerRound []int
}

// MeanActive returns the mean number of distinct transmitting nodes per
// counted round (0 when no rounds ran).
func (c *Counters) MeanActive() float64 {
	if len(c.ActivePerRound) == 0 {
		return 0
	}
	t := 0
	for _, a := range c.ActivePerRound {
		t += a
	}
	return float64(t) / float64(len(c.ActivePerRound))
}

// Total returns the total number of transmissions.
func (c *Counters) Total() int {
	t := 0
	for _, v := range c.PerType {
		t += v
	}
	return t
}

// String renders a compact per-type summary.
func (c *Counters) String() string {
	s := fmt.Sprintf("total=%d rounds=%d", c.Total(), c.Rounds)
	for t := MsgType(0); t < numMsgTypes; t++ {
		s += fmt.Sprintf(" %s=%d", t, c.PerType[t])
	}
	return s
}

// nodeState is a node's clustering role.
type nodeState uint8

const (
	candidate nodeState = iota
	head
	member
)

// node is the per-node protocol state machine.
type node struct {
	id    int
	state nodeState
	myID  int // redundant alias kept for clarity in the election logic

	// Learned from HELLO.
	neighbors []int
	// Election bookkeeping: what each neighbor last announced.
	neighborState map[int]nodeState
	ownHead       int

	// Coverage bookkeeping (the contents a clusterhead accumulates).
	adjHeads []int       // non-clusterhead: my 1-hop clusterheads
	hop2     map[int]int // non-clusterhead: my 2-hop clusterhead entries
	// Clusterhead side: gathered CH_HOP1/CH_HOP2 of my neighbors.
	gotHop1 map[int][]int
	gotHop2 map[int]map[int]int

	// Gateway designation.
	isGateway bool
}

// Outcome is the result of running the construction protocol.
type Outcome struct {
	// Head[v] is v's clusterhead (itself for heads).
	Head []int
	// Heads lists clusterheads ascending.
	Heads []int
	// Backbone is the static backbone membership (heads + gateways).
	Backbone map[int]bool
	// PerHead records each head's gateway selection.
	PerHead map[int]backbone.Selection
	// Coverage records each head's assembled coverage set (C², C³).
	Coverage map[int]*coverage.Coverage
	// Counters tallies the protocol traffic.
	Counters Counters
}

// Run executes the full construction protocol on g under the given
// coverage mode and returns the distributed outcome.
func Run(g *graph.Graph, mode coverage.Mode) *Outcome {
	n := g.N()
	nodes := make([]*node, n)
	for v := 0; v < n; v++ {
		nodes[v] = &node{
			id:            v,
			myID:          v,
			state:         candidate,
			neighborState: make(map[int]nodeState),
			ownHead:       -1,
			hop2:          make(map[int]int),
			gotHop1:       make(map[int][]int),
			gotHop2:       make(map[int]map[int]int),
		}
	}
	out := &Outcome{
		Head:     make([]int, n),
		Backbone: make(map[int]bool),
		PerHead:  make(map[int]backbone.Selection),
		Coverage: make(map[int]*coverage.Coverage),
	}
	var counters Counters

	// deliver sends every queued message to all neighbors of its sender
	// and advances one round, tallying the round's distinct senders.
	sentAt := make([]int, n)
	sentGen := 0
	deliver := func(queue []message) [][]message {
		inbox := make([][]message, n)
		sentGen++
		active := 0
		for _, m := range queue {
			counters.PerType[m.typ]++
			if sentAt[m.from] != sentGen {
				sentAt[m.from] = sentGen
				active++
			}
			for _, v := range g.Neighbors(m.from) {
				inbox[v] = append(inbox[v], m)
			}
		}
		if len(queue) > 0 {
			counters.Rounds++
			counters.ActivePerRound = append(counters.ActivePerRound, active)
		}
		return inbox
	}

	// ---- Phase A: HELLO. -------------------------------------------------
	var queue []message
	for v := 0; v < n; v++ {
		queue = append(queue, message{typ: Hello, from: v})
	}
	inbox := deliver(queue)
	for v := 0; v < n; v++ {
		for _, m := range inbox[v] {
			nodes[v].neighbors = append(nodes[v].neighbors, m.from)
			nodes[v].neighborState[m.from] = candidate
		}
		sort.Ints(nodes[v].neighbors)
	}

	// ---- Phase B: lowest-ID clusterhead election. ------------------------
	// Repeats until every node has decided. Each iteration is one
	// declaration round followed by one join round (two transmissions
	// rounds), mirroring the synchronous semantics of cluster.Elect.
	for {
		undecided := 0
		for _, nd := range nodes {
			if nd.state == candidate {
				undecided++
			}
		}
		if undecided == 0 {
			break
		}
		// Declaration round: a candidate declares when every smaller-ID
		// neighbor is known to be a member.
		queue = queue[:0]
		for _, nd := range nodes {
			if nd.state != candidate {
				continue
			}
			wins := true
			for _, u := range nd.neighbors {
				if u < nd.myID && nd.neighborState[u] != member {
					wins = false
					break
				}
			}
			if wins {
				nd.state = head
				nd.ownHead = nd.id
				queue = append(queue, message{typ: ClusterHead, from: nd.id})
			}
		}
		inbox = deliver(queue)
		// Join round: candidates hearing declarations join the smallest
		// head and announce NON_CLUSTER_HEAD.
		queue = queue[:0]
		for v := 0; v < n; v++ {
			nd := nodes[v]
			bestHead := -1
			for _, m := range inbox[v] {
				nd.neighborState[m.from] = head
				if nd.state == candidate && (bestHead == -1 || m.from < bestHead) {
					bestHead = m.from
				}
			}
			if nd.state == candidate && bestHead != -1 {
				nd.state = member
				nd.ownHead = bestHead
				queue = append(queue, message{typ: NonClusterHead, from: v, ownHead: bestHead})
			}
		}
		inbox = deliver(queue)
		for v := 0; v < n; v++ {
			for _, m := range inbox[v] {
				nodes[v].neighborState[m.from] = member
			}
		}
	}

	// ---- Phase C: CH_HOP1 / CH_HOP2 coverage exchange. -------------------
	// CH_HOP1: every non-clusterhead broadcasts its 1-hop clusterheads.
	queue = queue[:0]
	for _, nd := range nodes {
		if nd.state == head {
			continue
		}
		for _, u := range nd.neighbors {
			if nodes[u].state == head {
				nd.adjHeads = append(nd.adjHeads, u)
			}
		}
		sort.Ints(nd.adjHeads)
		queue = append(queue, message{typ: CHHop1, from: nd.id, ownHead: nd.ownHead, heads: nd.adjHeads})
	}
	inbox = deliver(queue)
	// Process CH_HOP1; non-clusterheads build 2-hop entries and broadcast
	// CH_HOP2; clusterheads stash the reports.
	queue = queue[:0]
	for v := 0; v < n; v++ {
		nd := nodes[v]
		adjacent := make(map[int]bool, len(nd.adjHeads))
		for _, w := range nd.adjHeads {
			adjacent[w] = true
		}
		for _, m := range inbox[v] {
			if nd.state == head {
				nd.gotHop1[m.from] = m.heads
				continue
			}
			switch mode {
			case coverage.Hop25:
				// Only the sender's own clusterhead generates an entry.
				w := m.ownHead
				if w >= 0 && !adjacent[w] {
					if prev, ok := nd.hop2[w]; !ok || m.from < prev {
						nd.hop2[w] = m.from
					}
				}
			case coverage.Hop3:
				for _, w := range m.heads {
					if !adjacent[w] {
						if prev, ok := nd.hop2[w]; !ok || m.from < prev {
							nd.hop2[w] = m.from
						}
					}
				}
			}
		}
		if nd.state != head {
			queue = append(queue, message{typ: CHHop2, from: v, entries: nd.hop2})
		}
	}
	inbox = deliver(queue)
	for v := 0; v < n; v++ {
		nd := nodes[v]
		if nd.state != head {
			continue
		}
		for _, m := range inbox[v] {
			nd.gotHop2[m.from] = m.entries
		}
	}

	// ---- Phase D: gateway selection and GATEWAY designation. -------------
	queue = queue[:0]
	for _, nd := range nodes {
		if nd.state != head {
			continue
		}
		cov := nd.assembleCoverage(mode, n)
		out.Coverage[nd.id] = cov
		sel := backbone.SelectGateways(cov, nil, nil)
		out.PerHead[nd.id] = sel
		queue = append(queue, message{typ: Gateway, from: nd.id, selected: sel.Gateways, ttl: 2})
	}
	// GATEWAY travels up to 2 hops; only selected nodes forward it.
	for hop := 0; hop < 2 && len(queue) > 0; hop++ {
		inbox = deliver(queue)
		queue = queue[:0]
		for v := 0; v < n; v++ {
			nd := nodes[v]
			for _, m := range inbox[v] {
				selected := false
				for _, s := range m.selected {
					if s == v {
						selected = true
						break
					}
				}
				if !selected {
					continue
				}
				nd.isGateway = true
				// A selected gateway forwards each head's GATEWAY message
				// (a gateway can serve several heads), decrementing TTL.
				if m.ttl-1 > 0 {
					queue = append(queue, message{typ: Gateway, from: v, selected: m.selected, ttl: m.ttl - 1})
				}
			}
		}
	}

	// ---- Assemble the outcome. -------------------------------------------
	for v := 0; v < n; v++ {
		out.Head[v] = nodes[v].ownHead
		if nodes[v].state == head {
			out.Heads = append(out.Heads, v)
			out.Backbone[v] = true
		}
		if nodes[v].isGateway {
			out.Backbone[v] = true
		}
	}
	out.Counters = counters
	return out
}

// assembleCoverage builds the head's coverage.Coverage from the gathered
// CH_HOP1/CH_HOP2 reports, mirroring coverage.Builder.Of.
func (nd *node) assembleCoverage(mode coverage.Mode, n int) *coverage.Coverage {
	cov := &coverage.Coverage{
		Head: nd.id, Mode: mode,
		C2: graph.NewHybridSet(n), C3: graph.NewHybridSet(n),
	}
	// First pass over the (sorted) neighbors fills C² completely, because
	// the C³ pass below must filter against it. Per-neighbor lists are
	// collected into the connector layout coverage.Builder.Of produces.
	direct := make([][]int, len(nd.neighbors))
	for i, v := range nd.neighbors {
		heads, ok := nd.gotHop1[v]
		if !ok {
			continue
		}
		var d []int
		for _, w := range heads {
			if w == nd.id {
				continue
			}
			cov.C2.Add(w)
			d = append(d, w)
		}
		sort.Ints(d)
		direct[i] = d
	}
	for i, v := range nd.neighbors {
		var ind []coverage.Hop2Entry
		for w, r := range nd.gotHop2[v] {
			if w == nd.id || cov.C2.Has(w) {
				continue
			}
			cov.C3.Add(w)
			ind = append(ind, coverage.Hop2Entry{W: w, R: r})
		}
		sort.Slice(ind, func(a, b int) bool { return ind[a].W < ind[b].W })
		if len(direct[i]) == 0 && len(ind) == 0 {
			continue
		}
		cov.Conns = append(cov.Conns, coverage.Connector{V: v, Direct: direct[i], Indirect: ind})
	}
	return cov
}
