package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"clustercast/internal/backbone"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func paperGraph() *graph.Graph {
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	return graph.FromEdges(10, zero)
}

func TestDistributedMatchesPaperExample(t *testing.T) {
	g := paperGraph()
	out := Run(g, coverage.Hop25)
	if !reflect.DeepEqual(out.Heads, []int{0, 1, 2, 3}) {
		t.Fatalf("Heads = %v", out.Heads)
	}
	want := graph.SetOf(0, 1, 2, 3, 4, 5, 6, 7, 8)
	if !reflect.DeepEqual(out.Backbone, want) {
		t.Fatalf("distributed backbone = %v, want %v",
			graph.SortedMembers(out.Backbone), graph.SortedMembers(want))
	}
}

func TestMessageCountsPaperExample(t *testing.T) {
	g := paperGraph()
	out := Run(g, coverage.Hop25)
	c := out.Counters
	n := g.N()
	heads := len(out.Heads)
	nonHeads := n - heads
	if c.PerType[Hello] != n {
		t.Fatalf("HELLO = %d, want %d", c.PerType[Hello], n)
	}
	if c.PerType[ClusterHead]+c.PerType[NonClusterHead] != n {
		t.Fatalf("CLUSTER_HEAD+NON_CLUSTER_HEAD = %d, want %d",
			c.PerType[ClusterHead]+c.PerType[NonClusterHead], n)
	}
	if c.PerType[ClusterHead] != heads {
		t.Fatalf("CLUSTER_HEAD = %d, want %d", c.PerType[ClusterHead], heads)
	}
	if c.PerType[CHHop1] != nonHeads || c.PerType[CHHop2] != nonHeads {
		t.Fatalf("CH_HOP1/CH_HOP2 = %d/%d, want %d each",
			c.PerType[CHHop1], c.PerType[CHHop2], nonHeads)
	}
	// GATEWAY: one per head plus at most one forward per selected gateway
	// per head that selected it.
	maxForwards := 0
	for _, sel := range out.PerHead {
		maxForwards += len(sel.Gateways)
	}
	if c.PerType[Gateway] < heads || c.PerType[Gateway] > heads+maxForwards {
		t.Fatalf("GATEWAY = %d, want in [%d, %d]", c.PerType[Gateway], heads, heads+maxForwards)
	}
}

// cross-checks the distributed run against the centralized constructions.
func crossCheck(t testing.TB, g *graph.Graph, mode coverage.Mode) {
	t.Helper()
	out := Run(g, mode)
	cl := cluster.LowestID(g)
	if !reflect.DeepEqual(out.Heads, cl.Heads) {
		t.Fatalf("%v: heads differ: distributed %v vs centralized %v", mode, out.Heads, cl.Heads)
	}
	for v := range out.Head {
		if out.Head[v] != cl.Head[v] {
			t.Fatalf("%v: node %d head %d vs centralized %d", mode, v, out.Head[v], cl.Head[v])
		}
	}
	b := coverage.NewBuilder(g, cl, mode)
	for _, h := range cl.Heads {
		want := b.Of(h)
		got := out.Coverage[h]
		if !got.C2.Equal(want.C2) {
			t.Fatalf("%v: head %d C² differs: %v vs %v", mode, h, got.C2.Members(), want.C2.Members())
		}
		if !got.C3.Equal(want.C3) {
			t.Fatalf("%v: head %d C³ differs: %v vs %v", mode, h, got.C3.Members(), want.C3.Members())
		}
	}
	st := backbone.BuildStaticFrom(b, cl)
	if !reflect.DeepEqual(out.Backbone, st.Nodes) {
		t.Fatalf("%v: backbone differs: distributed %v vs centralized %v",
			mode, graph.SortedMembers(out.Backbone), graph.SortedMembers(st.Nodes))
	}
}

func setKeys(m map[int]bool) []int { return graph.SortedMembers(m) }

func TestDistributedMatchesCentralizedPaperGraph(t *testing.T) {
	crossCheck(t, paperGraph(), coverage.Hop25)
	crossCheck(t, paperGraph(), coverage.Hop3)
}

func TestDistributedMatchesCentralizedLine(t *testing.T) {
	nw := topology.LineTopology(25, 1.0, 1.2)
	crossCheck(t, nw.G, coverage.Hop25)
	crossCheck(t, nw.G, coverage.Hop3)
}

// Property: distributed == centralized on random connected networks, both
// modes, both paper densities.
func TestQuickDistributedMatchesCentralized(t *testing.T) {
	f := func(seed uint64, dense bool) bool {
		deg := 6.0
		if dense {
			deg = 18.0
		}
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 45, Bounds: geom.Square(100), AvgDegree: deg,
			RequireConnected: true, MaxAttempts: 400,
		}, r)
		if err != nil {
			return true
		}
		for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
			out := Run(nw.G, mode)
			cl := cluster.LowestID(nw.G)
			if !reflect.DeepEqual(out.Heads, cl.Heads) {
				return false
			}
			st := backbone.BuildStatic(nw.G, cl, mode)
			if !reflect.DeepEqual(out.Backbone, st.Nodes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMessageComplexityLinear verifies the §4 message-optimality claim:
// total construction messages grow linearly in n. We check that messages
// per node stay bounded by a small constant across a 5× size range.
func TestMessageComplexityLinear(t *testing.T) {
	r := rng.New(77)
	perNode := map[int]float64{}
	for _, n := range []int{20, 50, 100} {
		sum := 0.0
		const samples = 5
		for i := 0; i < samples; i++ {
			nw, err := topology.Generate(topology.Config{
				N: n, Bounds: geom.Square(100), AvgDegree: 6,
				RequireConnected: true, MaxAttempts: 2000,
			}, r)
			if err != nil {
				t.Fatal(err)
			}
			out := Run(nw.G, coverage.Hop25)
			sum += float64(out.Counters.Total())
		}
		perNode[n] = sum / samples / float64(n)
	}
	for n, v := range perNode {
		if v > 5 {
			t.Fatalf("n=%d: %.2f messages per node exceeds the O(n) budget", n, v)
		}
	}
	// Per-node cost must not grow with n (allow 20% noise).
	if perNode[100] > perNode[20]*1.2 {
		t.Fatalf("messages per node grew: n=20: %.2f, n=100: %.2f", perNode[20], perNode[100])
	}
}

func TestRoundsLinearOnChain(t *testing.T) {
	// The ID-monotone chain is the worst case: Θ(n) election rounds.
	nw := topology.LineTopology(30, 1.0, 1.2)
	out := Run(nw.G, coverage.Hop25)
	if out.Counters.Rounds < 15 {
		t.Fatalf("chain of 30 should need ≥15 rounds, got %d", out.Counters.Rounds)
	}
	if out.Counters.Rounds > 4*30 {
		t.Fatalf("rounds %d exceed the O(n) bound", out.Counters.Rounds)
	}
}

func TestCountersString(t *testing.T) {
	g := paperGraph()
	out := Run(g, coverage.Hop25)
	s := out.Counters.String()
	for _, want := range []string{"total=", "HELLO=", "GATEWAY="} {
		if !contains(s, want) {
			t.Fatalf("Counters.String() missing %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		Hello: "HELLO", ClusterHead: "CLUSTER_HEAD", NonClusterHead: "NON_CLUSTER_HEAD",
		CHHop1: "CH_HOP1", CHHop2: "CH_HOP2", Gateway: "GATEWAY",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Fatalf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if MsgType(99).String() != "UNKNOWN" {
		t.Fatal("unknown type string")
	}
}

func TestSingleNode(t *testing.T) {
	g := graph.New(1)
	out := Run(g, coverage.Hop25)
	if !reflect.DeepEqual(out.Heads, []int{0}) {
		t.Fatalf("single node must elect itself: %v", out.Heads)
	}
	if !out.Backbone[0] || len(out.Backbone) != 1 {
		t.Fatalf("backbone = %v", out.Backbone)
	}
}

func BenchmarkDistributedRun100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(nw.G, coverage.Hop25)
	}
}
