package sim

import (
	"reflect"
	"testing"

	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// sameOutcome demands bit-identical results from Run and RunDES. All
// fields compare with DeepEqual except the Coverage sets: HybridSet
// retains its sparse remnant after dense promotion and the scalar Run's
// C³ inserts in map-iteration order, so C²/C³ compare semantically
// (Equal) while the derived Conns layout — which both engines emit fully
// sorted — still compares structurally.
func sameOutcome(t *testing.T, label string, a, b *Outcome) {
	t.Helper()
	if !reflect.DeepEqual(a.Head, b.Head) {
		t.Fatalf("%s: Head differs:\n  scalar %v\n  des    %v", label, a.Head, b.Head)
	}
	if !reflect.DeepEqual(a.Heads, b.Heads) {
		t.Fatalf("%s: Heads differ: scalar %v, des %v", label, a.Heads, b.Heads)
	}
	if !reflect.DeepEqual(a.Backbone, b.Backbone) {
		t.Fatalf("%s: Backbone differs: scalar %v, des %v",
			label, graph.SortedMembers(a.Backbone), graph.SortedMembers(b.Backbone))
	}
	if !reflect.DeepEqual(a.PerHead, b.PerHead) {
		t.Fatalf("%s: PerHead differs:\n  scalar %v\n  des    %v", label, a.PerHead, b.PerHead)
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Fatalf("%s: Counters differ:\n  scalar %v %v\n  des    %v %v",
			label, a.Counters.String(), a.Counters.ActivePerRound,
			b.Counters.String(), b.Counters.ActivePerRound)
	}
	if len(a.Coverage) != len(b.Coverage) {
		t.Fatalf("%s: Coverage sizes differ: %d vs %d", label, len(a.Coverage), len(b.Coverage))
	}
	for h, ca := range a.Coverage {
		cb := b.Coverage[h]
		if cb == nil {
			t.Fatalf("%s: head %d missing from des Coverage", label, h)
		}
		if ca.Head != cb.Head || ca.Mode != cb.Mode {
			t.Fatalf("%s: head %d identity differs", label, h)
		}
		if !ca.C2.Equal(cb.C2) {
			t.Fatalf("%s: head %d C² differs: %v vs %v", label, h, ca.C2.Members(), cb.C2.Members())
		}
		if !ca.C3.Equal(cb.C3) {
			t.Fatalf("%s: head %d C³ differs: %v vs %v", label, h, ca.C3.Members(), cb.C3.Members())
		}
		if !reflect.DeepEqual(ca.Conns, cb.Conns) {
			t.Fatalf("%s: head %d connectors differ:\n  scalar %v\n  des    %v", label, h, ca.Conns, cb.Conns)
		}
	}
}

func TestDESSimEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"paper":  paperGraph(),
		"line":   topology.LineTopology(25, 1.0, 1.2).G,
		"single": graph.New(1),
		"empty3": graph.New(3), // disconnected: every node elects itself
	}
	r := rng.New(404)
	for i := 0; i < 8; i++ {
		deg := 6.0
		if i%2 == 1 {
			deg = 18.0
		}
		nw, err := topology.Generate(topology.Config{
			N: 60, Bounds: geom.Square(100), AvgDegree: deg,
			RequireConnected: true, MaxAttempts: 400,
		}, r)
		if err != nil {
			continue
		}
		graphs["random-"+string(rune('a'+i))] = nw.G
	}
	for name, g := range graphs {
		for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
			label := name + "/" + mode.String()
			sameOutcome(t, label, Run(g, mode), RunDES(g, mode))
		}
	}
}

// The per-round activity series must be internally consistent: one entry
// per counted round, each within [1, n], summing to at least the number
// of rounds (every counted round has at least one sender).
func TestActivePerRoundInvariants(t *testing.T) {
	g := paperGraph()
	for _, out := range []*Outcome{Run(g, coverage.Hop25), RunDES(g, coverage.Hop25)} {
		c := out.Counters
		if len(c.ActivePerRound) != c.Rounds {
			t.Fatalf("len(ActivePerRound)=%d, Rounds=%d", len(c.ActivePerRound), c.Rounds)
		}
		for i, a := range c.ActivePerRound {
			if a < 1 || a > g.N() {
				t.Fatalf("round %d: %d active nodes out of range [1,%d]", i, a, g.N())
			}
		}
		if c.ActivePerRound[0] != g.N() {
			t.Fatalf("HELLO round must have all %d nodes active, got %d", g.N(), c.ActivePerRound[0])
		}
		if m := c.MeanActive(); m <= 0 || m > float64(g.N()) {
			t.Fatalf("MeanActive = %v out of range", m)
		}
	}
	var empty Counters
	if empty.MeanActive() != 0 {
		t.Fatal("MeanActive on empty counters must be 0")
	}
}

func FuzzDESSimAgree(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(7), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, m uint8) {
		mode := coverage.Hop25
		if m%2 == 1 {
			mode = coverage.Hop3
		}
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 30, Bounds: geom.Square(100), AvgDegree: 7,
			RequireConnected: true, MaxAttempts: 200,
		}, r)
		if err != nil {
			t.Skip()
		}
		sameOutcome(t, "fuzz", Run(nw.G, mode), RunDES(nw.G, mode))
	})
}
