package passive

import (
	"testing"
	"testing/quick"

	"clustercast/internal/broadcast"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func TestStateString(t *testing.T) {
	want := map[State]string{
		Initial: "initial", Clusterhead: "clusterhead",
		Gateway: "gateway", Ordinary: "ordinary", State(9): "unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestSourceDeclaresClusterhead(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	p := NewProtocol(g)
	res := broadcast.Run(g, 0, p)
	if p.StateOf(0) != Clusterhead {
		t.Fatalf("source state = %v, want clusterhead (first declaration wins)", p.StateOf(0))
	}
	if len(res.Received) != 3 {
		t.Fatalf("delivered %d/3", len(res.Received))
	}
}

func TestFirstDeclarationWins(t *testing.T) {
	// Star: source center declares CH; the leaves hear exactly one CH and
	// no gateway → they become gateways (and forward, harmlessly).
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	p := NewProtocol(g)
	broadcast.Run(g, 0, p)
	if p.StateOf(0) != Clusterhead {
		t.Fatal("center must be clusterhead")
	}
	for v := 1; v <= 3; v++ {
		if p.StateOf(v) == Clusterhead {
			t.Fatalf("leaf %d must not become clusterhead after hearing one", v)
		}
	}
}

func TestOrdinaryNodesEmerge(t *testing.T) {
	// In a dense neighborhood, after a couple of floods nodes hearing one
	// clusterhead and an existing gateway settle as ordinary.
	r := rng.New(5)
	nw, err := topology.Generate(topology.Config{
		N: 60, Bounds: geom.Square(60), AvgDegree: 20,
		RequireConnected: true, MaxAttempts: 300,
	}, r)
	if err != nil {
		t.Skip(err)
	}
	p := NewProtocol(nw.G)
	broadcast.Run(nw.G, 0, p)
	broadcast.Run(nw.G, 30, p)
	ordinary := 0
	for v := 0; v < nw.G.N(); v++ {
		if p.StateOf(v) == Ordinary {
			ordinary++
		}
	}
	if ordinary == 0 {
		t.Fatal("dense network should produce ordinary (non-forwarding) nodes after convergence")
	}
}

func TestConvergenceSavesForwards(t *testing.T) {
	// The structure forms during the first floods; once converged, later
	// floods forward less than blind flooding.
	r := rng.New(9)
	nw, err := topology.Generate(topology.Config{
		N: 80, Bounds: geom.Square(100), AvgDegree: 18,
		RequireConnected: true, MaxAttempts: 300,
	}, r)
	if err != nil {
		t.Skip(err)
	}
	sources := []int{0, 17, 33, 5, 61}
	series := RunSeries(nw.G, sources)
	flood := broadcast.Run(nw.G, sources[len(sources)-1], broadcast.Flooding{})
	last := series[len(series)-1]
	if last.ForwardCount() >= flood.ForwardCount() {
		t.Fatalf("converged passive clustering (%d) should forward less than flooding (%d)",
			last.ForwardCount(), flood.ForwardCount())
	}
	if series[0].ForwardCount() < last.ForwardCount() {
		t.Logf("note: first flood (%d) already cheaper than converged (%d)",
			series[0].ForwardCount(), last.ForwardCount())
	}
}

func TestDeterministic(t *testing.T) {
	r := rng.New(3)
	nw, err := topology.Generate(topology.Config{
		N: 50, Bounds: geom.Square(100), AvgDegree: 10,
		RequireConnected: true, MaxAttempts: 300,
	}, r)
	if err != nil {
		t.Skip(err)
	}
	a := Run(nw.G, 7)
	b := Run(nw.G, 7)
	if a.ForwardCount() != b.ForwardCount() || len(a.Received) != len(b.Received) {
		t.Fatal("passive clustering must be deterministic")
	}
}

// Property: states are assigned consistently — every node that received
// the packet has decided (no Initial receivers that forwarded), ordinary
// nodes never forward, and the delivery ratio is at most flooding's.
func TestQuickStateConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 50, Bounds: geom.Square(100), AvgDegree: 10,
			RequireConnected: true, MaxAttempts: 300,
		}, r)
		if err != nil {
			return true
		}
		src := r.Intn(50)
		p := NewProtocol(nw.G)
		res := broadcast.Run(nw.G, src, p)
		_ = res
		// After the flood, every node that received has left the Initial
		// state unless it never transmitted and heard no declarations.
		for v := range res.Forwarders {
			if v != src && p.StateOf(v) == Initial {
				return false // forwarded without ever deciding
			}
		}
		flood := broadcast.Run(nw.G, src, broadcast.Flooding{})
		return len(res.Received) <= len(flood.Received)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeliveryTradeoff quantifies the paper's observation that passive
// clustering "suffers poor delivery rate": averaged over sparse networks,
// delivery is high but not guaranteed, unlike the CDS-based schemes.
func TestDeliveryTradeoff(t *testing.T) {
	root := rng.New(77)
	total, delivered := 0, 0
	for trial := 0; trial < 30; trial++ {
		nw, err := topology.Generate(topology.Config{
			N: 50, Bounds: geom.Square(100), AvgDegree: 6,
			RequireConnected: true, MaxAttempts: 300,
		}, root)
		if err != nil {
			t.Fatal(err)
		}
		series := RunSeries(nw.G, []int{root.Intn(50), root.Intn(50), root.Intn(50)})
		total += 50
		delivered += len(series[len(series)-1].Received)
	}
	ratio := float64(delivered) / float64(total)
	if ratio < 0.80 {
		t.Fatalf("delivery ratio %.3f implausibly low — protocol broken?", ratio)
	}
	t.Logf("sparse-network delivery ratio: %.3f (flooding: 1.000)", ratio)
}

func BenchmarkPassive100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(nw.G, i%100)
	}
}
