// Package passive implements the passive clustering scheme of Kwon and
// Gerla (ACM CCR 2002), discussed in the paper's related work: the cluster
// structure is constructed *during* data propagation instead of by an
// explicit setup phase. Each data packet piggybacks the sender's cluster
// state; a node decides its own state the moment it would forward:
//
//   - "First declaration wins": a node with no known clusterhead neighbor
//     declares itself clusterhead when it transmits.
//   - A node that has heard clusterheads becomes an ordinary node when at
//     least as many gateway neighbors as clusterhead neighbors are already
//     known (the "gateway selection heuristic": enough relays exist), and
//     a gateway otherwise.
//
// Forwarding rule: clusterheads and gateways forward; ordinary nodes do
// not. Roles keep refining as more packets are overheard, so the scheme
// converges over *successive* broadcasts: the first flood costs almost as
// much as blind flooding while the structure forms, and later floods reap
// the savings. It needs no setup traffic, but — as the paper notes — it
// "suffers poor delivery rate": ordinary nodes may be the only bridge to a
// corner of the network. The tests quantify exactly those trade-offs.
//
// A Protocol instance carries the evolving node states: reuse one across
// broadcasts to model the persistent structure, or create a fresh one to
// model a cold start.
package passive

import (
	"clustercast/internal/broadcast"
	"clustercast/internal/graph"
)

// State is a node's passive-clustering role.
type State uint8

// Roles in declaration order.
const (
	Initial State = iota
	Clusterhead
	Gateway
	Ordinary
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Initial:
		return "initial"
	case Clusterhead:
		return "clusterhead"
	case Gateway:
		return "gateway"
	case Ordinary:
		return "ordinary"
	default:
		return "unknown"
	}
}

// payload carries the sender's state with the data packet.
type payload struct {
	state State
	from  int
}

// Protocol is the stateful passive-clustering broadcast protocol.
type Protocol struct {
	g *graph.Graph
	// state of every node, evolving as packets propagate.
	state []State
	// heardHeads[v] collects the distinct clusterhead neighbors v heard.
	heardHeads []map[int]bool
	// heardGateways[v] collects the distinct gateway neighbors v heard.
	heardGateways []map[int]bool
}

var _ broadcast.Protocol = (*Protocol)(nil)

// NewProtocol returns a fresh protocol (all nodes in the Initial state).
func NewProtocol(g *graph.Graph) *Protocol {
	p := &Protocol{
		g:             g,
		state:         make([]State, g.N()),
		heardHeads:    make([]map[int]bool, g.N()),
		heardGateways: make([]map[int]bool, g.N()),
	}
	for i := range p.heardHeads {
		p.heardHeads[i] = make(map[int]bool)
		p.heardGateways[i] = make(map[int]bool)
	}
	return p
}

// State returns v's current role.
func (p *Protocol) StateOf(v int) State { return p.state[v] }

// Name implements broadcast.Protocol.
func (p *Protocol) Name() string { return "passive-clustering" }

// refine recomputes a non-clusterhead's role from accumulated neighbor
// knowledge. Clusterhead declarations are permanent ("first declaration
// wins" — the role is only given up on an explicit structure reset).
func (p *Protocol) refine(v int) {
	if p.state[v] == Clusterhead {
		return
	}
	heads := len(p.heardHeads[v])
	switch {
	case heads == 0:
		p.state[v] = Initial
	case len(p.heardGateways[v]) >= heads:
		// Enough gateways already serve the clusterheads v can hear.
		p.state[v] = Ordinary
	default:
		p.state[v] = Gateway
	}
}

// observe folds the piggybacked sender state into v's neighbor knowledge
// and refines v's role.
func (p *Protocol) observe(v int, pkt broadcast.Packet) {
	in, ok := pkt.(*payload)
	if !ok {
		return
	}
	switch in.state {
	case Clusterhead:
		p.heardHeads[v][in.from] = true
		delete(p.heardGateways[v], in.from)
	case Gateway:
		if !p.heardHeads[v][in.from] {
			p.heardGateways[v][in.from] = true
		}
	}
	p.refine(v)
}

// claim applies the first-declaration-wins rule at transmission time: a
// node about to transmit with no clusterhead in sight takes the role.
func (p *Protocol) claim(v int) {
	if p.state[v] == Initial {
		p.state[v] = Clusterhead
	}
}

// Start implements broadcast.Protocol.
func (p *Protocol) Start(source int) broadcast.Packet {
	p.claim(source)
	return &payload{state: p.state[source], from: source}
}

// OnReceive implements broadcast.Protocol.
func (p *Protocol) OnReceive(v, x int, pkt broadcast.Packet) (bool, broadcast.Packet) {
	p.observe(v, pkt)
	if p.state[v] == Ordinary {
		return false, nil
	}
	p.claim(v)
	return true, &payload{state: p.state[v], from: v}
}

// OnDuplicate implements broadcast.Protocol: forwarding is decided on the
// first copy only, but every overheard copy refines the structure.
func (p *Protocol) OnDuplicate(v, x int, pkt broadcast.Packet) (bool, broadcast.Packet) {
	p.observe(v, pkt)
	return false, nil
}

// Run is a convenience wrapper: fresh state, one broadcast.
func Run(g *graph.Graph, source int) *broadcast.Result {
	return broadcast.Run(g, source, NewProtocol(g))
}

// RunSeries broadcasts k packets from the given sources over one shared
// protocol instance, returning the per-broadcast results — the way passive
// clustering is meant to be used: the structure converges across packets.
func RunSeries(g *graph.Graph, sources []int) []*broadcast.Result {
	p := NewProtocol(g)
	out := make([]*broadcast.Result, len(sources))
	for i, src := range sources {
		out[i] = broadcast.Run(g, src, p)
	}
	return out
}
