package workload

import (
	"clustercast/internal/broadcast"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
	"clustercast/internal/routing"
)

// Workload telemetry: whole-run totals folded per RunTraffic /
// RunDiscovery, plus a flow-completion progress meter (rate + ETA in the
// heartbeat stream, like sweep.points).
var (
	mFlows      = obs.NewCounter("workload.flows")
	mDeliveries = obs.NewCounter("workload.deliveries")
	mCollided   = obs.NewCounter("workload.cross_collisions")
	mRequests   = obs.NewCounter("workload.discovery_requests")
	mFound      = obs.NewCounter("workload.discovery_found")
	mFailed     = obs.NewCounter("workload.discovery_failed")
	progFlows   = obs.NewProgress("workload.flows")
)

// Engine runs one multi-source MAC scenario — broadcast.RunMACMulti or
// its calendar port RunMACMultiDES (or a workspace-bound closure).
type Engine func(g *graph.Graph, flows []broadcast.MultiFlow, opt broadcast.MACOptions) *broadcast.MultiResult

// ProtoFactory returns the protocol instance flow i broadcasts with.
// Stateless protocols may return a shared instance; per-broadcast-state
// protocols must return a private one per flow (see broadcast.MultiFlow).
type ProtoFactory func(i int) broadcast.Protocol

// TrafficResult aggregates one traffic workload run.
type TrafficResult struct {
	// Flows is the number of flows offered.
	Flows int
	// DeliveryRatio is the mean per-flow delivery ratio over n nodes.
	DeliveryRatio float64
	// Throughput is end-to-end delivery throughput: total deliveries
	// (sources excluded) per slot of the run's makespan.
	Throughput float64
	// MeanLatency is the mean per-flow latency (slots from a flow's start
	// to its last delivery), over flows that delivered anything.
	MeanLatency float64
	// Collisions / CrossCollisions / Transmissions / Makespan echo the
	// medium-level accounting of the MultiResult.
	Collisions      int
	CrossCollisions int
	Transmissions   int
	Makespan        int
}

// MultiFlows converts generated flows to engine inputs with protocols
// attached.
func MultiFlows(flows []Flow, proto ProtoFactory) []broadcast.MultiFlow {
	out := make([]broadcast.MultiFlow, len(flows))
	for i, f := range flows {
		out[i] = broadcast.MultiFlow{
			Src:   f.Src,
			Dst:   f.Dst,
			Start: f.Start,
			Seed:  f.Seed,
			Proto: proto(i),
		}
	}
	return out
}

// RunTraffic drives one traffic workload through the multi-source MAC
// engine and aggregates the end-to-end load metrics.
func RunTraffic(g *graph.Graph, flows []Flow, proto ProtoFactory, opt broadcast.MACOptions, engine Engine) *TrafficResult {
	if engine == nil {
		engine = broadcast.RunMACMulti
	}
	mf := MultiFlows(flows, proto)
	progFlows.AddTotal(int64(len(mf)))
	res := engine(g, mf, opt)

	out := &TrafficResult{
		Flows:           len(res.Flows),
		Collisions:      res.SharedCollisions,
		CrossCollisions: res.CrossCollisions,
		Transmissions:   res.Transmissions,
		Makespan:        res.Makespan,
	}
	n := g.N()
	deliveries, latSum, latFlows := 0, 0, 0
	for _, fr := range res.Flows {
		out.DeliveryRatio += fr.DeliveryRatio(n)
		deliveries += len(fr.Received) - 1
		if fr.Latency > 0 {
			latSum += fr.Latency
			latFlows++
		}
		progFlows.Step()
	}
	if len(res.Flows) > 0 {
		out.DeliveryRatio /= float64(len(res.Flows))
	}
	if latFlows > 0 {
		out.MeanLatency = float64(latSum) / float64(latFlows)
	}
	// A run whose flows all start at slot 0 and never forward has zero
	// makespan; guard the division.
	if res.Makespan > 0 {
		out.Throughput = float64(deliveries) / float64(res.Makespan)
	}
	mFlows.Add(int64(len(res.Flows)))
	mDeliveries.Add(int64(deliveries))
	mCollided.Add(int64(res.CrossCollisions))
	return out
}

// DiscoveryResult aggregates one route-discovery workload run.
type DiscoveryResult struct {
	// Requests and Found count the offered RREQ floods and the ones whose
	// destination decoded the request.
	Requests int
	Found    int
	// SuccessRatio is Found / Requests.
	SuccessRatio float64
	// MeanLatency is the mean end-to-end discovery latency over found
	// routes: slots from the flow's start until the destination decoded
	// the RREQ, plus one slot per hop for the RREP unicast back over the
	// discovered parent chain.
	MeanLatency float64
	// MeanRouteLen and MeanStretch characterize the found routes.
	MeanRouteLen float64
	MeanStretch  float64
	// RequestCost is the total RREQ transmissions across all floods;
	// ReplyCost the total RREP unicasts.
	RequestCost int
	ReplyCost   int
}

// RunDiscovery drives one route-discovery workload: every flow is an
// RREQ flood from Src toward Dst through the shared MAC, and each found
// route is the delivery-tree parent chain at the destination (the RREP
// unicasts back over it, one slot per hop). Routes are extracted with
// the same routing.ExtractRoute that Discover/DiscoverOpts use.
func RunDiscovery(g *graph.Graph, flows []Flow, proto ProtoFactory, opt broadcast.MACOptions, engine Engine) *DiscoveryResult {
	if engine == nil {
		engine = broadcast.RunMACMulti
	}
	mf := MultiFlows(flows, proto)
	progFlows.AddTotal(int64(len(mf)))
	res := engine(g, mf, opt)

	out := &DiscoveryResult{Requests: len(res.Flows)}
	latSum := 0.0
	for i, fr := range res.Flows {
		progFlows.Step()
		f := &flows[i]
		out.RequestCost += fr.ForwardCount()
		if f.Dst < 0 || fr.DstSlot < 0 {
			continue
		}
		route, err := routing.ExtractRoute(g, f.Src, f.Dst, &fr.Result, fr.ForwardCount())
		if err != nil {
			continue
		}
		out.Found++
		out.ReplyCost += route.ReplyCost
		out.MeanRouteLen += float64(route.Len())
		out.MeanStretch += route.Stretch(g)
		// RREQ latency is the slot the destination decoded in, relative to
		// the flow's start; the RREP pays one slot per hop back.
		latSum += float64(fr.DstSlot-f.Start) + float64(route.ReplyCost)
	}
	if out.Found > 0 {
		out.MeanLatency = latSum / float64(out.Found)
		out.MeanRouteLen /= float64(out.Found)
		out.MeanStretch /= float64(out.Found)
	}
	if out.Requests > 0 {
		out.SuccessRatio = float64(out.Found) / float64(out.Requests)
	}
	mRequests.Add(int64(out.Requests))
	mFound.Add(int64(out.Found))
	mFailed.Add(int64(out.Requests - out.Found))
	return out
}
