// Package workload generates deterministic traffic for the multi-source
// broadcast engines: streams of flows (broadcasts, or RREQ floods with a
// destination) whose sources, destinations, arrival slots, and per-flow
// randomness are all pure functions of a Spec and its seed. This is the
// "heavy traffic" axis of the roadmap — the paper argues the cluster
// backbone pays off under load, and load is exactly what the single-shot
// figures never produced.
//
// Determinism discipline: each flow's seed is a counter-based key
// (rng.CoinWord of the flow index), not a draw from a shared stream, so a
// flow's randomness is independent of how many flows precede it and of
// which engine — scalar or calendar, any worker count — replays it.
package workload

import (
	"fmt"
	"strconv"
	"strings"

	"clustercast/internal/rng"
)

// Process selects the arrival process of a Spec.
type Process int

const (
	// Poisson arrivals: independent exponential gaps with mean 1/Rate
	// slots (the classic open-loop traffic model).
	Poisson Process = iota
	// Bursty arrivals: Burst flows injected together every Every slots —
	// the worst case for slot contention.
	Bursty
)

func (p Process) String() string {
	if p == Bursty {
		return "bursty"
	}
	return "poisson"
}

// flowSeedDomain separates the per-flow seed space from every other
// counter-based coin domain in the repository (see faults and broadcast
// for the other assignments).
const flowSeedDomain = 0x770A_D00D

// Spec declares a traffic workload. The zero value is invalid (no
// flows); DefaultSpec gives a small sane load.
type Spec struct {
	// Process selects Poisson or Bursty arrivals.
	Process Process
	// Rate is the offered load of the Poisson process in flow arrival
	// events per slot (each event injects FanOut flows).
	Rate float64
	// Burst and Every parameterize the bursty process: Burst arrival
	// events every Every slots.
	Burst int
	Every int
	// Flows is the total number of flows to generate.
	Flows int
	// FanOut is the number of flows injected per arrival event (>= 1;
	// 0 means 1). Sources within one event are drawn independently, so
	// FanOut > 1 models simultaneous uncorrelated broadcasts.
	FanOut int
	// Discovery marks the flows as route discoveries: each flow draws a
	// destination distinct from its source, and the runners report
	// discovery latency and success instead of raw broadcast metrics.
	Discovery bool
	// Seed drives every draw the generator makes.
	Seed uint64
}

// DefaultSpec is a modest Poisson load: 32 flows at 0.1 arrivals/slot.
func DefaultSpec(seed uint64) Spec {
	return Spec{Process: Poisson, Rate: 0.1, Flows: 32, FanOut: 1, Seed: seed}
}

// Validate checks the spec's parameter ranges.
func (s *Spec) Validate() error {
	if s.Flows <= 0 {
		return fmt.Errorf("workload: Flows = %d, want > 0", s.Flows)
	}
	if s.FanOut < 0 {
		return fmt.Errorf("workload: FanOut = %d, want >= 0", s.FanOut)
	}
	switch s.Process {
	case Poisson:
		if s.Rate <= 0 {
			return fmt.Errorf("workload: Poisson needs Rate > 0 (got %g)", s.Rate)
		}
	case Bursty:
		if s.Burst <= 0 || s.Every <= 0 {
			return fmt.Errorf("workload: Bursty needs Burst > 0 and Every > 0 (got %d/%d)", s.Burst, s.Every)
		}
	default:
		return fmt.Errorf("workload: unknown process %d", s.Process)
	}
	return nil
}

// Flow is one generated broadcast: a source injecting at an absolute
// slot, with a destination when the workload is a route discovery
// (Dst == -1 otherwise) and a private seed for its jitter draws.
type Flow struct {
	ID    int
	Src   int
	Dst   int
	Start int
	Seed  uint64
}

// FlowSeed returns flow id's seed under the spec: a pure counter-based
// key, independent of every other flow.
func (s *Spec) FlowSeed(id int) uint64 {
	return rng.CoinWord(s.Seed, uint64(id), 0, flowSeedDomain)
}

// Generate materializes the spec's flow list over an n-node network.
// The arrival timeline comes from one labeled stream; per-flow endpoint
// draws come from each flow's own seeded stream, so the flow list is
// bit-stable under any evaluation order.
func (s *Spec) Generate(n int) ([]Flow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: n = %d, want > 0", n)
	}
	fan := s.FanOut
	if fan < 1 {
		fan = 1
	}
	arrivals := rng.NewLabeled(s.Seed, "workload-arrivals")
	flows := make([]Flow, 0, s.Flows)
	slot, clock := 0, 0.0
	emit := func(at int) bool {
		for k := 0; k < fan && len(flows) < s.Flows; k++ {
			id := len(flows)
			f := Flow{ID: id, Start: at, Seed: s.FlowSeed(id), Dst: -1}
			ep := rng.NewLabeled(f.Seed, "workload-endpoints")
			f.Src = ep.Intn(n)
			if s.Discovery {
				if n > 1 {
					d := ep.Intn(n - 1)
					if d >= f.Src {
						d++
					}
					f.Dst = d
				} else {
					f.Dst = f.Src
				}
			}
			flows = append(flows, f)
		}
		return len(flows) < s.Flows
	}
	switch s.Process {
	case Poisson:
		for {
			clock += arrivals.ExpFloat64() / s.Rate
			if !emit(int(clock)) {
				break
			}
		}
	case Bursty:
		for {
			more := true
			for b := 0; b < s.Burst && more; b++ {
				more = emit(slot)
			}
			if !more {
				break
			}
			slot += s.Every
		}
	}
	return flows, nil
}

// String renders the spec in the canonical flag grammar ParseSpec
// accepts (the faults.Spec idiom).
func (s *Spec) String() string {
	var parts []string
	parts = append(parts, "proc="+s.Process.String())
	if s.Process == Poisson {
		parts = append(parts, "rate="+strconv.FormatFloat(s.Rate, 'g', -1, 64))
	} else {
		parts = append(parts, "burst="+strconv.Itoa(s.Burst), "every="+strconv.Itoa(s.Every))
	}
	parts = append(parts, "flows="+strconv.Itoa(s.Flows))
	if s.FanOut > 1 {
		parts = append(parts, "fanout="+strconv.Itoa(s.FanOut))
	}
	if s.Discovery {
		parts = append(parts, "discovery=1")
	}
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(s.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the comma-separated key=value workload grammar used
// by the -traffic CLI flags:
//
//	proc=poisson|bursty  arrival process (default poisson)
//	rate=F               Poisson arrival events per slot
//	burst=N every=M      bursty process: N events every M slots
//	flows=N              total flows
//	fanout=N             flows per arrival event (default 1)
//	discovery=0|1        route-discovery workload (draw destinations)
//	seed=N               workload seed
//
// An empty string parses to DefaultSpec(0).
func ParseSpec(s string) (Spec, error) {
	spec := DefaultSpec(0)
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	rateSet := false
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return spec, fmt.Errorf("workload: bad field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "proc":
			switch val {
			case "poisson":
				spec.Process = Poisson
			case "bursty":
				spec.Process = Bursty
				if !rateSet {
					spec.Rate = 0
				}
			default:
				err = fmt.Errorf("unknown process %q", val)
			}
		case "rate":
			spec.Rate, err = strconv.ParseFloat(val, 64)
			rateSet = true
		case "burst":
			spec.Burst, err = strconv.Atoi(val)
		case "every":
			spec.Every, err = strconv.Atoi(val)
		case "flows":
			spec.Flows, err = strconv.Atoi(val)
		case "fanout":
			spec.FanOut, err = strconv.Atoi(val)
		case "discovery":
			spec.Discovery = val == "1" || val == "true"
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("workload: field %q: %v", field, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}
