package workload

import (
	"reflect"
	"testing"

	"clustercast/internal/broadcast"
	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func testNet(t testing.TB, seed uint64, n int, deg float64) *topology.Network {
	t.Helper()
	r := rng.New(seed)
	nw, err := topology.Generate(topology.Config{
		N: n, Bounds: geom.Square(100), AvgDegree: deg,
		RequireConnected: true, MaxAttempts: 500,
	}, r)
	if err != nil {
		t.Skipf("could not generate network: %v", err)
	}
	return nw
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Process: Poisson, Rate: 0.25, Flows: 50, FanOut: 2, Discovery: true, Seed: 9}
	a, err := spec.Generate(40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the same spec differ")
	}
	if len(a) != 50 {
		t.Fatalf("generated %d flows, want 50", len(a))
	}
	for i, f := range a {
		if f.ID != i {
			t.Fatalf("flow %d has ID %d", i, f.ID)
		}
		if f.Src < 0 || f.Src >= 40 || f.Dst < 0 || f.Dst >= 40 {
			t.Fatalf("flow %d endpoints out of range: %+v", i, f)
		}
		if f.Dst == f.Src {
			t.Fatalf("discovery flow %d has Dst == Src", i)
		}
		if i > 0 && f.Start < a[i-1].Start {
			t.Fatalf("flow %d starts before its predecessor", i)
		}
		if f.Seed != spec.FlowSeed(i) {
			t.Fatalf("flow %d seed is not the counter key", i)
		}
	}
}

// TestFlowSeedsAreCounterKeys: a flow's seed does not depend on how many
// flows the spec generates (counter keys, not stream draws).
func TestFlowSeedsAreCounterKeys(t *testing.T) {
	small := Spec{Process: Bursty, Burst: 2, Every: 5, Flows: 4, Seed: 3}
	large := small
	large.Flows = 32
	a, err := small.Generate(30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := large.Generate(30)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b[:len(a)]) {
		t.Fatal("flow prefix changed when the spec generated more flows")
	}
}

func TestGenerateBursty(t *testing.T) {
	spec := Spec{Process: Bursty, Burst: 3, Every: 10, Flows: 9, Seed: 1}
	flows, err := spec.Generate(20)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range flows {
		if want := (i / 3) * 10; f.Start != want {
			t.Fatalf("flow %d starts at %d, want %d", i, f.Start, want)
		}
		if f.Dst != -1 {
			t.Fatalf("broadcast flow %d has a destination", i)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Process: Poisson, Rate: 0, Flows: 5},
		{Process: Poisson, Rate: -1, Flows: 5},
		{Process: Bursty, Burst: 0, Every: 5, Flows: 5},
		{Process: Bursty, Burst: 5, Every: 0, Flows: 5},
		{Process: Process(7), Flows: 5},
		{Process: Poisson, Rate: 1, Flows: 5, FanOut: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, s)
		}
	}
	ok := DefaultSpec(1)
	if _, err := ok.Generate(0); err == nil {
		t.Fatal("Generate accepted n = 0")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Process: Poisson, Rate: 0.2, Flows: 64, FanOut: 1, Seed: 7},
		{Process: Poisson, Rate: 1.5, Flows: 10, FanOut: 3, Discovery: true},
		{Process: Bursty, Burst: 8, Every: 20, Flows: 40, FanOut: 1, Seed: 12},
	}
	for i, want := range specs {
		got, err := ParseSpec(want.String())
		if err != nil {
			t.Fatalf("case %d: ParseSpec(%q): %v", i, want.String(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip %q → %+v, want %+v", i, want.String(), got, want)
		}
	}
	if _, err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{"nope", "proc=martian", "rate=x", "flows=0"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec accepted %q", bad)
		}
	}
}

// TestRunTrafficScalarDESIdentical: the traffic runner reports identical
// aggregates whichever engine drives it.
func TestRunTrafficScalarDESIdentical(t *testing.T) {
	nw := testNet(t, 5, 50, 9)
	spec := Spec{Process: Poisson, Rate: 0.5, Flows: 24, FanOut: 2, Seed: 11}
	flows, err := spec.Generate(nw.N())
	if err != nil {
		t.Fatal(err)
	}
	proto := func(int) broadcast.Protocol { return broadcast.Flooding{} }
	opt := broadcast.MACOptions{Jitter: 3}
	a := RunTraffic(nw.G, flows, proto, opt, broadcast.RunMACMulti)
	b := RunTraffic(nw.G, flows, proto, opt, broadcast.RunMACMultiDES)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scalar and DES traffic aggregates differ:\n%+v\n%+v", a, b)
	}
	if a.Flows != len(flows) || a.Transmissions == 0 || a.DeliveryRatio <= 0 {
		t.Fatalf("traffic run did no work: %+v", a)
	}
}

// TestRunDiscoveryScalarDESIdentical: same for the discovery runner.
func TestRunDiscoveryScalarDESIdentical(t *testing.T) {
	nw := testNet(t, 6, 50, 10)
	spec := Spec{Process: Bursty, Burst: 2, Every: 15, Flows: 16, Discovery: true, Seed: 13}
	flows, err := spec.Generate(nw.N())
	if err != nil {
		t.Fatal(err)
	}
	proto := func(int) broadcast.Protocol { return broadcast.Flooding{} }
	opt := broadcast.MACOptions{Jitter: 4}
	a := RunDiscovery(nw.G, flows, proto, opt, broadcast.RunMACMulti)
	b := RunDiscovery(nw.G, flows, proto, opt, broadcast.RunMACMultiDES)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scalar and DES discovery aggregates differ:\n%+v\n%+v", a, b)
	}
	if a.Requests != len(flows) {
		t.Fatalf("discovery run offered %d requests, want %d", a.Requests, len(flows))
	}
	if a.Found == 0 {
		t.Fatal("no route found under a light bursty load; the runner exercised nothing")
	}
	if a.Found > 0 && (a.MeanRouteLen <= 0 || a.MeanLatency <= 0 || a.MeanStretch < 1) {
		t.Fatalf("implausible discovery aggregates: %+v", a)
	}
}

// TestRunTrafficDefaultEngine: a nil engine falls back to the scalar
// reference.
func TestRunTrafficDefaultEngine(t *testing.T) {
	nw := testNet(t, 7, 30, 8)
	spec := DefaultSpec(3)
	spec.Flows = 8
	flows, err := spec.Generate(nw.N())
	if err != nil {
		t.Fatal(err)
	}
	proto := func(int) broadcast.Protocol { return broadcast.Flooding{} }
	a := RunTraffic(nw.G, flows, proto, broadcast.MACOptions{Jitter: 2}, nil)
	b := RunTraffic(nw.G, flows, proto, broadcast.MACOptions{Jitter: 2}, broadcast.RunMACMulti)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nil engine is not the scalar reference:\n%+v\n%+v", a, b)
	}
}
