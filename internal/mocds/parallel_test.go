package mocds

import (
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// TestNodesFromParallelBitIdentical proves the sharded MO_CDS fold returns
// the same membership as the sequential workspace path for every worker
// count, across reuse of a single parallel workspace. Run with -race to
// exercise the shard isolation.
func TestNodesFromParallelBitIdentical(t *testing.T) {
	ws := NewWorkspace()
	pw := NewParallelWorkspace()
	for rep := 0; rep < 8; rep++ {
		nw, err := topology.Generate(topology.Config{
			N: 150, Bounds: geom.Square(100), AvgDegree: 9,
			RequireConnected: true,
		}, rng.New(uint64(1300+rep)))
		if err != nil {
			t.Fatalf("rep %d: generate: %v", rep, err)
		}
		cl := cluster.LowestID(nw.G)
		b := coverage.NewBuilder(nw.G, cl, coverage.Hop3)
		want := ws.NodesFrom(b, cl)
		for _, workers := range []int{1, 2, 3, 7, 64} {
			got := pw.NodesFrom(b, cl, workers)
			if !got.Equal(want) {
				t.Fatalf("rep %d workers %d: parallel membership diverges: got %v want %v",
					rep, workers, got.Members(), want.Members())
			}
		}
	}
}
