package mocds

import (
	"testing"
	"testing/quick"

	"clustercast/internal/backbone"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func paperGraph() *graph.Graph {
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	return graph.FromEdges(10, zero)
}

func TestBuildPaperGraph(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	c := Build(g, cl)
	if err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
	// All four heads present.
	for _, h := range []int{0, 1, 2, 3} {
		if !c.Nodes[h] {
			t.Fatalf("head %d missing from MO_CDS", h)
		}
	}
	if !g.IsCDS(c.Nodes) {
		t.Fatal("MO_CDS must be a CDS")
	}
}

func TestConnectorsAreValidPaths(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	c := Build(g, cl)
	for h, con2 := range c.Connectors2 {
		for w, v := range con2 {
			if !g.HasEdge(h, v) || !g.HasEdge(v, w) {
				t.Fatalf("2-hop connector %d for %d→%d is not a path", v, h, w)
			}
		}
	}
	for h, con3 := range c.Connectors3 {
		for w, pair := range con3 {
			if !g.HasEdge(h, pair[0]) || !g.HasEdge(pair[0], pair[1]) || !g.HasEdge(pair[1], w) {
				t.Fatalf("3-hop pair %v for %d→%d is not a path", pair, h, w)
			}
		}
	}
}

func TestRequiresHop3Builder(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	defer func() {
		if recover() == nil {
			t.Fatal("BuildFrom must reject a 2.5-hop builder")
		}
	}()
	BuildFrom(b, cl)
}

func TestSingleCluster(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	cl := cluster.LowestID(g)
	c := Build(g, cl)
	if c.Size() != 1 {
		t.Fatalf("single-cluster MO_CDS should be the head only, got %v",
			graph.SortedMembers(c.Nodes))
	}
}

// Property: MO_CDS is a CDS on random connected networks.
func TestQuickIsCDS(t *testing.T) {
	f := func(seed uint64, dense bool) bool {
		deg := 6.0
		if dense {
			deg = 18.0
		}
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 50, Bounds: geom.Square(100), AvgDegree: deg,
			RequireConnected: true, MaxAttempts: 400,
		}, r)
		if err != nil {
			return true
		}
		cl := cluster.LowestID(nw.G)
		c := Build(nw.G, cl)
		return nw.G.IsCDS(c.Nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Figure 6's shape: averaged over instances, the greedy static backbone is
// no larger than MO_CDS built over the same clustering — the paper reports
// the static backbone as (insignificantly) better. A single instance can go
// either way (both are heuristics), so the comparison is on the mean.
func TestStaticBackboneBeatsMOCDSOnAverage(t *testing.T) {
	root := rng.New(20030422)
	var sumMO, sumStatic int
	const samples = 40
	for i := 0; i < samples; i++ {
		nw, err := topology.Generate(topology.Config{
			N: 60, Bounds: geom.Square(100), AvgDegree: 12,
			RequireConnected: true, MaxAttempts: 400,
		}, root)
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.LowestID(nw.G)
		sumMO += Build(nw.G, cl).Size()
		sumStatic += backbone.BuildStatic(nw.G, cl, coverage.Hop3).Size()
	}
	if sumStatic > sumMO {
		t.Fatalf("static backbone mean size %.2f exceeds MO_CDS mean %.2f over %d samples",
			float64(sumStatic)/samples, float64(sumMO)/samples, samples)
	}
	t.Logf("mean sizes over %d samples: static=%.2f mo_cds=%.2f",
		samples, float64(sumStatic)/samples, float64(sumMO)/samples)
}

func BenchmarkBuild100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	cl := cluster.LowestID(nw.G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(nw.G, cl)
	}
}
