package mocds

import (
	"sync"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// ParallelWorkspace owns the per-worker scratch of a sharded MO_CDS
// construction, mirroring backbone.ParallelWorkspace: each worker folds the
// connector selections of its share of the clusterheads with private
// scratch, and the shards are OR-merged afterwards.
type ParallelWorkspace struct {
	workers []parWorker
	nodes   graph.Bitset
}

// parWorker is one shard's private state: coverage assembly scratch, the
// coverage value refilled per head, the epoch-stamped seen arrays of the
// first-sighting fold, and the bitset accumulating its selections.
type parWorker struct {
	asm   coverage.AsmScratch
	cov   coverage.Coverage
	seen2 []uint32
	seen3 []uint32
	epoch uint32
	nodes graph.Bitset
}

// NewParallelWorkspace returns an empty workspace; per-worker buffers grow
// on first use.
func NewParallelWorkspace() *ParallelWorkspace { return &ParallelWorkspace{} }

// SizeFrom is NodesFrom(...).Count().
func (pw *ParallelWorkspace) SizeFrom(b *coverage.Builder, cl *cluster.Clustering, workers int) int {
	return pw.NodesFrom(b, cl, workers).Count()
}

// NodesFrom computes exactly Workspace.NodesFrom(b, cl) — the MO_CDS
// membership — sharding the per-clusterhead connector folds across the
// given number of goroutines. Heads are assigned round-robin; each head's
// fold depends only on its own coverage set (first sighting per clusterhead
// within one head's ascending connector scan), so the shard partition cannot
// change any selection and the OR-merged union is bit-identical to the
// sequential path for any worker count.
//
// The returned bitset is owned by the workspace and valid until the next
// call.
func (pw *ParallelWorkspace) NodesFrom(b *coverage.Builder, cl *cluster.Clustering, workers int) *graph.Bitset {
	if b.Mode() != coverage.Hop3 {
		panic("mocds: MO_CDS requires a 3-hop coverage builder")
	}
	n := b.N()
	heads := cl.Heads
	if workers > len(heads) {
		workers = len(heads)
	}
	if workers < 1 {
		workers = 1
	}
	for len(pw.workers) < workers {
		pw.workers = append(pw.workers, parWorker{})
	}
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		w := &pw.workers[k]
		w.nodes.Reset(n)
		if cap(w.seen2) < n {
			w.seen2 = make([]uint32, n)
			w.seen3 = make([]uint32, n)
			w.epoch = 0
		}
		w.seen2 = w.seen2[:n]
		w.seen3 = w.seen3[:n]
		wg.Add(1)
		go func(k int, w *parWorker) {
			defer wg.Done()
			for i := k; i < len(heads); i += workers {
				h := heads[i]
				w.nodes.Add(h)
				w.epoch++
				if w.epoch == 0 { // wrapped: stale marks could collide, start over
					clear(w.seen2)
					clear(w.seen3)
					w.epoch = 1
				}
				ep := w.epoch
				cov := b.OfScratch(h, &w.cov, &w.asm)
				for ci := range cov.Conns {
					cn := &cov.Conns[ci]
					for _, x := range cn.Direct {
						if w.seen2[x] != ep {
							w.seen2[x] = ep
							w.nodes.Add(cn.V)
						}
					}
					for _, e := range cn.Indirect {
						if w.seen3[e.W] != ep {
							w.seen3[e.W] = ep
							w.nodes.Add(cn.V)
							w.nodes.Add(e.R)
						}
					}
				}
			}
		}(k, w)
	}
	wg.Wait()
	pw.nodes.Reset(n)
	for k := 0; k < workers; k++ {
		pw.nodes.Or(&pw.workers[k].nodes)
	}
	return &pw.nodes
}
