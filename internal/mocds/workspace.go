package mocds

import (
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
)

// Baseline-construction metrics, folded once per CDS build.
var (
	mBuilds = obs.NewCounter("mocds.builds")
	mNodes  = obs.NewCounter("mocds.nodes_selected")
)

// Workspace owns the scratch one MO_CDS size computation needs, so a
// worker can evaluate the baseline across replicates without allocating.
type Workspace struct {
	nodes graph.Bitset
	seen2 []uint32 // epoch-stamped: 2-hop clusterhead already connected
	seen3 []uint32 // epoch-stamped: 3-hop clusterhead already connected
	epoch uint32
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// SizeFrom returns BuildFrom(b, cl).Size() without materializing the CDS.
func (ws *Workspace) SizeFrom(b *coverage.Builder, cl *cluster.Clustering) int {
	return ws.NodesFrom(b, cl).Count()
}

// NodesFrom computes the MO_CDS membership into a workspace-owned bitset
// (valid until the next call on the workspace).
//
// It relies on the deterministic layout of coverage sets: Conns is
// ascending by neighbor ID, and each connector's Indirect list keeps the
// lowest-ID relay per clusterhead. Scanning connectors in order and taking
// the FIRST sighting of each clusterhead therefore picks exactly the
// lowest-ID connector (2-hop) and the lexicographically smallest
// (gateway, relay) pair (3-hop) that BuildFrom's map folding selects.
func (ws *Workspace) NodesFrom(b *coverage.Builder, cl *cluster.Clustering) *graph.Bitset {
	if b.Mode() != coverage.Hop3 {
		panic("mocds: MO_CDS requires a 3-hop coverage builder")
	}
	n := b.N()
	ws.nodes.Reset(n)
	if cap(ws.seen2) < n {
		ws.seen2 = make([]uint32, n)
		ws.seen3 = make([]uint32, n)
		ws.epoch = 0
	}
	ws.seen2 = ws.seen2[:n]
	ws.seen3 = ws.seen3[:n]
	for _, h := range cl.Heads {
		ws.nodes.Add(h)
		ws.epoch++
		if ws.epoch == 0 { // wrapped: stale marks could collide, start over
			clear(ws.seen2)
			clear(ws.seen3)
			ws.epoch = 1
		}
		ep := ws.epoch
		cov := b.OfShared(h)
		for ci := range cov.Conns {
			cn := &cov.Conns[ci]
			for _, w := range cn.Direct {
				if ws.seen2[w] != ep {
					ws.seen2[w] = ep
					ws.nodes.Add(cn.V)
				}
			}
			for _, e := range cn.Indirect {
				if ws.seen3[e.W] != ep {
					ws.seen3[e.W] = ep
					ws.nodes.Add(cn.V)
					ws.nodes.Add(e.R)
				}
			}
		}
	}
	if obs.Enabled() {
		mBuilds.Inc()
		mNodes.Add(int64(ws.nodes.Count()))
	}
	return &ws.nodes
}
