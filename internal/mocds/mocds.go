// Package mocds implements the baseline the paper compares against: the
// message-optimal connected dominating set of Alzoubi, Wan and Frieder
// (MOBIHOC 2002).
//
// Construction (as summarized in the paper's §2): clusterheads are elected
// by the lowest-ID clustering algorithm; each clusterhead then learns its
// 2-hop and 3-hop clusterheads through two rounds of neighborhood exchange
// and selects *one node* to connect each 2-hop clusterhead and *one pair of
// nodes* to connect each 3-hop clusterhead. All clusterheads and selected
// nodes form the CDS.
//
// The crucial difference from the paper's static backbone is the missing
// greedy set-cover step: MO_CDS picks a connector per covered clusterhead
// independently (here: the lowest-ID connector, a deterministic stand-in
// for the arbitrary choice in the original), so one node serving several
// clusterheads is a coincidence rather than an objective. The paper calls
// MO_CDS "a modified version of the static backbone with the 3-hop
// coverage set".
package mocds

import (
	"fmt"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// CDS is the assembled message-optimal CDS.
type CDS struct {
	// Nodes is the CDS membership: clusterheads plus selected connectors.
	Nodes map[int]bool
	// Heads lists the clusterheads, ascending.
	Heads []int
	// Connectors2[h][w] is the node h selected to reach 2-hop clusterhead w.
	Connectors2 map[int]map[int]int
	// Connectors3[h][w] is the pair (gateway, relay) h selected to reach
	// 3-hop clusterhead w.
	Connectors3 map[int]map[int][2]int
}

// Size returns the number of CDS nodes (Figure 6's quantity).
func (c *CDS) Size() int { return graph.SetSize(c.Nodes) }

// Build constructs the MO_CDS over a clustered network. It uses the 3-hop
// coverage information, as in the original algorithm.
func Build(g *graph.Graph, cl *cluster.Clustering) *CDS {
	return BuildFrom(coverage.NewBuilder(g, cl, coverage.Hop3), cl)
}

// BuildFrom constructs the MO_CDS reusing an existing 3-hop coverage
// builder.
func BuildFrom(b *coverage.Builder, cl *cluster.Clustering) *CDS {
	if b.Mode() != coverage.Hop3 {
		panic("mocds: MO_CDS requires a 3-hop coverage builder")
	}
	c := &CDS{
		Nodes:       make(map[int]bool),
		Heads:       append([]int(nil), cl.Heads...),
		Connectors2: make(map[int]map[int]int),
		Connectors3: make(map[int]map[int][2]int),
	}
	for _, h := range cl.Heads {
		c.Nodes[h] = true
		cov := b.Of(h)

		// One connector per 2-hop clusterhead: the lowest-ID neighbor that
		// reaches it.
		con2 := make(map[int]int, cov.C2.Count())
		for _, cn := range cov.Conns {
			for _, w := range cn.Direct {
				if prev, ok := con2[w]; !ok || cn.V < prev {
					con2[w] = cn.V
				}
			}
		}
		for w, v := range con2 {
			c.Nodes[v] = true
			_ = w
		}
		c.Connectors2[h] = con2

		// One pair per 3-hop clusterhead: the lowest-ID (gateway, relay).
		con3 := make(map[int][2]int, cov.C3.Count())
		for _, cn := range cov.Conns {
			for _, e := range cn.Indirect {
				pair := [2]int{cn.V, e.R}
				if prev, ok := con3[e.W]; !ok || less(pair, prev) {
					con3[e.W] = pair
				}
			}
		}
		for _, pair := range con3 {
			c.Nodes[pair[0]] = true
			c.Nodes[pair[1]] = true
		}
		c.Connectors3[h] = con3
	}
	return c
}

// less orders connector pairs lexicographically.
func less(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// Verify checks that the constructed set is a CDS of g (for connected g).
func (c *CDS) Verify(g *graph.Graph) error {
	if !g.IsDominatingSet(c.Nodes) {
		return fmt.Errorf("mocds: not a dominating set")
	}
	if !g.InducedSubgraphConnected(c.Nodes) {
		return fmt.Errorf("mocds: induced subgraph not connected")
	}
	return nil
}
