package mocds

import (
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// TestSizeFromMatchesBuild proves the workspace size path selects exactly
// the node set BuildFrom materializes, across random networks and across
// reuse of a single workspace.
func TestSizeFromMatchesBuild(t *testing.T) {
	ws := NewWorkspace()
	for rep := 0; rep < 20; rep++ {
		nw, err := topology.Generate(topology.Config{
			N: 120, Bounds: geom.Square(100), AvgDegree: 8,
			RequireConnected: true,
		}, rng.New(uint64(300+rep)))
		if err != nil {
			t.Fatalf("rep %d: generate: %v", rep, err)
		}
		cl := cluster.LowestID(nw.G)
		b := coverage.NewBuilder(nw.G, cl, coverage.Hop3)
		want := BuildFrom(b, cl)
		got := ws.SizeFrom(b, cl)
		if got != want.Size() {
			t.Fatalf("rep %d: SizeFrom = %d, Build Size = %d", rep, got, want.Size())
		}
		for v := 0; v < nw.N(); v++ {
			if ws.nodes.Has(v) != want.Nodes[v] {
				t.Fatalf("rep %d: node %d membership: workspace %v, build %v",
					rep, v, ws.nodes.Has(v), want.Nodes[v])
			}
		}
	}
}
