// Package prof wires the conventional -cpuprofile/-memprofile flags into
// the repo's commands. Start begins a CPU profile; the returned stop
// function ends it and writes the heap profile, so a main needs exactly
// two calls around its workload.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two output paths (empty string = off).
// The returned stop function must run exactly once after the workload: it
// stops the CPU profile and writes the allocation (heap) profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle the live heap before snapshotting it
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
