package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start with no paths: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop with no paths: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// A tiny workload so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("Start must fail on an unwritable CPU profile path")
	}
}
