package dynamicb

import (
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// TestPiggybackIsFullCoverageSet pins the subtle rule of the paper's
// illustration: a clusterhead piggybacks its FULL coverage set, not the
// pruned one ("F(3)={9} and C(3)={1,2,4} are piggybacked"), because every
// clusterhead in C(v) either receives via F(v) or was excluded precisely
// because it already received.
func TestPiggybackIsFullCoverageSet(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	p := New(g, cl, coverage.Hop25)
	// Clusterhead 3 (0-based 2) receives from clusterhead 1 (0-based 0)
	// via node 7 (0-based 6), with C(1)∪{1} = {0,1,2} piggybacked.
	in := p.PacketForTest(0, graph.SetOf(0, 1, 2), graph.SetOf(5, 6))
	fwd, cov := p.HeadPacketForTest(2, in, 6)
	// The updated need is only {3} (paper head 4): forward set = {8}.
	if len(fwd) != 1 || !fwd[8] {
		t.Fatalf("F(3) = %v, want {9} (0-based {8})", graph.SortedMembers(fwd))
	}
	// The piggyback is the full C(3) ∪ {3} = {0,1,3} ∪ {2}.
	want := graph.SetOf(0, 1, 2, 3)
	if len(cov) != len(want) {
		t.Fatalf("piggybacked cov = %v, want full set %v",
			graph.SortedMembers(cov), graph.SortedMembers(want))
	}
	for w := range want {
		if !cov[w] {
			t.Fatalf("piggyback missing clusterhead %d: %v", w, graph.SortedMembers(cov))
		}
	}
}

// TestRelayNeighborExclusion pins the paper's 2.5-hop special case: "if
// clusterhead v is 3 hops away from u, and u uses a path (u, f, r, v) ...
// clusterheads in N(r) also receive the broadcast packet. These
// clusterheads can also be excluded: C(v) = C(v) − C(u) − {u} − N(r)".
func TestRelayNeighborExclusion(t *testing.T) {
	// Hand-built scenario:
	//   u=0 (head) — f=3 — r=4 — v=1 (head), and w=2 (head) adjacent to
	//   the relay r. v can also reach w via its member 5 (path 1-5-2).
	g := graph.FromEdges(6, [][2]int{
		{0, 3}, {3, 4}, {4, 1}, {4, 2}, {1, 5}, {5, 2},
	})
	cl := cluster.LowestID(g)
	// Validate the intended cluster structure before testing pruning.
	for _, h := range []int{0, 1, 2} {
		if !cl.IsHead(h) {
			t.Skipf("election gave heads %v; scenario needs 0,1,2 as heads", cl.Heads)
		}
	}
	p := New(g, cl, coverage.Hop25)
	// v=1 receives the packet from transmitter r=4. Regardless of what the
	// upstream head piggybacked, the N(r) rule alone must remove w=2 from
	// v's need: 2 is adjacent to the transmitter 4 and heard the same copy.
	in := p.PacketForTest(0, graph.SetOf(0), nil) // minimal piggyback: {u} only
	fwd, _ := p.HeadPacketForTest(1, in, 4)
	// Without the N(r) exclusion, v=1 would select node 5 to reach w=2.
	if fwd[5] {
		t.Fatalf("F(1) = %v: selected a gateway toward clusterhead 2, which "+
			"already heard relay 4's transmission (N(r) exclusion violated)",
			graph.SortedMembers(fwd))
	}
}

// TestExclusionSoundness: pruning must never cause delivery failure — for
// every source on the hand-built scenario, everyone receives.
func TestExclusionSoundnessHandBuilt(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{
		{0, 3}, {3, 4}, {4, 1}, {4, 2}, {1, 5}, {5, 2},
	})
	cl := cluster.LowestID(g)
	for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
		p := New(g, cl, mode)
		for src := 0; src < g.N(); src++ {
			res := p.Broadcast(src)
			if len(res.Received) != g.N() {
				t.Fatalf("%v: source %d delivered %d/%d", mode, src, len(res.Received), g.N())
			}
		}
	}
}
