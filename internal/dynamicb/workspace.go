package dynamicb

import (
	"clustercast/internal/backbone"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// Workspace owns a coverage builder, a protocol and its packet/bitset
// arenas, so a worker can rebuild the dynamic-backbone protocol for a new
// network every replicate without allocating in steady state.
type Workspace struct {
	// BuildWorkers shards the coverage digest inside NewWith over this many
	// goroutines when > 0 (through coverage.Builder.ResetParallel, which is
	// bit-identical to Reset for any worker count). Zero keeps the
	// reference sequential digest.
	BuildWorkers int

	builder coverage.Builder
	proto   Protocol
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	ws := &Workspace{}
	ws.proto.sel = backbone.NewWorkspace()
	ws.proto.reuse = true
	return ws
}

// NewWith builds the dynamic-backbone protocol for a clustered network
// under the given coverage-set mode, reusing every workspace buffer. The
// returned protocol — and any result derived from a prior one — is valid
// only until the next NewWith call on the same workspace.
func (ws *Workspace) NewWith(g *graph.Graph, cl *cluster.Clustering, mode coverage.Mode) *Protocol {
	if ws.BuildWorkers > 0 {
		ws.builder.ResetParallel(g, cl, mode, ws.BuildWorkers)
	} else {
		ws.builder.Reset(g, cl, mode)
	}
	ws.proto.initWorkers = ws.BuildWorkers
	ws.proto.init(&ws.builder, g, cl)
	return &ws.proto
}
