package dynamicb

import (
	"reflect"
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/obs"
)

// TestTracedBroadcastIdentical: attaching a tracer switches headPacket to
// the element-wise pruning path, which must compute exactly the same need
// sets (and therefore the same broadcast) as the wholesale path.
func TestTracedBroadcastIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		nw, ok := randomNet(seed, 80, 8)
		if !ok {
			continue
		}
		cl := cluster.LowestID(nw.G)
		for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
			plain := New(nw.G, cl, mode).Broadcast(0)

			traced := New(nw.G, cl, mode)
			tr := obs.NewTracer(1 << 16)
			traced.SetTracer(tr)
			got := traced.Broadcast(0)

			if !reflect.DeepEqual(got.Forwarders, plain.Forwarders) ||
				!reflect.DeepEqual(got.Received, plain.Received) ||
				got.Duplicates != plain.Duplicates || got.Latency != plain.Latency {
				t.Fatalf("seed %d mode %v: traced broadcast diverged", seed, mode)
			}
		}
	}
}

// TestTracedBroadcastReconciles: the event stream accounts for the
// broadcast it recorded — distinct senders are the forward node set,
// deliveries cover every non-source receiver, and every prune carries one
// of the three rules of the paper's updated-coverage formula.
func TestTracedBroadcastReconciles(t *testing.T) {
	nw, ok := randomNet(3, 80, 8)
	if !ok {
		t.Skip("no connected topology")
	}
	cl := cluster.LowestID(nw.G)
	p := New(nw.G, cl, coverage.Hop25)
	tr := obs.NewTracer(1 << 16)
	p.SetTracer(tr)
	res := p.Broadcast(0)
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events", tr.Dropped())
	}

	senders := map[int]bool{}
	delivered := map[int]bool{0: true}
	sawSourceSend := false
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.EvSend:
			senders[ev.Node] = true
			sawSourceSend = sawSourceSend || ev.Peer == -1
		case obs.EvDeliver:
			delivered[ev.Node] = true
		case obs.EvCoveragePrune:
			switch ev.Rule {
			case obs.RuleUpstreamSender, obs.RulePiggybackedSet, obs.RuleSecondHopAdjacent:
			default:
				t.Fatalf("prune event without a rule: %+v", ev)
			}
		case obs.EvGatewaySelect:
			if !cl.IsHead(ev.Node) {
				t.Fatalf("gateway-select by non-clusterhead %d", ev.Node)
			}
		}
	}
	if !sawSourceSend {
		t.Fatal("no source send (peer=-1) recorded")
	}
	if !reflect.DeepEqual(senders, res.Forwarders) {
		t.Fatalf("distinct send nodes %d != forward node set %d", len(senders), res.ForwardCount())
	}
	if !reflect.DeepEqual(delivered, res.Received) {
		t.Fatalf("delivered nodes %d != received set %d", len(delivered), len(res.Received))
	}
}

// TestPruneCountersMatchTrace: the metrics-only wholesale path and the
// traced element-wise path attribute identical per-rule totals.
func TestPruneCountersMatchTrace(t *testing.T) {
	nw, ok := randomNet(5, 80, 8)
	if !ok {
		t.Skip("no connected topology")
	}
	cl := cluster.LowestID(nw.G)
	obs.Enable()
	defer obs.Disable()
	defer obs.Default.Reset()

	count := func(traced bool) (up, piggy, second int64, events map[obs.PruneRule]int) {
		obs.Default.Reset()
		p := New(nw.G, cl, coverage.Hop25)
		events = map[obs.PruneRule]int{}
		if traced {
			tr := obs.NewTracer(1 << 16)
			p.SetTracer(tr)
			p.Broadcast(0)
			for _, ev := range tr.Events() {
				if ev.Kind == obs.EvCoveragePrune {
					events[ev.Rule]++
				}
			}
		} else {
			p.Broadcast(0)
		}
		return mPruneUpstream.Value(), mPrunePiggyback.Value(), mPruneSecondHop.Value(), events
	}

	tu, tp, ts, events := count(true)
	if int64(events[obs.RuleUpstreamSender]) != tu ||
		int64(events[obs.RulePiggybackedSet]) != tp ||
		int64(events[obs.RuleSecondHopAdjacent]) != ts {
		t.Fatalf("traced counters (%d,%d,%d) != traced events %v", tu, tp, ts, events)
	}
	wu, wp, wsd, _ := count(false)
	if tu != wu || tp != wp || ts != wsd {
		t.Fatalf("traced per-rule totals (%d,%d,%d) != wholesale totals (%d,%d,%d)", tu, tp, ts, wu, wp, wsd)
	}
	if tu+tp+ts == 0 {
		t.Fatal("test network produced no prunes — pick a denser seed")
	}
}
