// Package dynamicb implements the paper's *dynamic backbone*: the
// cluster-based source-dependent CDS built on demand, step by step, as a
// broadcast packet traverses the network.
//
// The clusterheads are fixed (lowest-ID clustering); the gateways are
// selected per broadcast. The protocol (paper §3, "Broadcasting in a
// Cluster-Based SD-CDS Backbone"):
//
//  1. A non-clusterhead source sends the packet to its clusterhead.
//  2. A clusterhead receiving the packet for the first time selects forward
//     nodes (gateways) that connect all clusterheads in its *updated*
//     coverage set: C(v) ← C(v) − C(u) − {u} − CH(N(r)), where u is the
//     upstream clusterhead whose coverage set arrived piggybacked with the
//     packet and r is the immediate transmitter (the second-hop relay in
//     the 2.5-hop case — the clusterheads adjacent to r heard r's
//     transmission themselves). It then broadcasts the packet, piggybacking
//     its own full coverage set C(v) and forward node set F(v). A
//     clusterhead always transmits once, even when the updated coverage set
//     is empty (the paper's "locally broadcasts").
//  3. A non-clusterhead relays iff it is named in the packet's forward node
//     set (possibly learning this from a duplicate copy).
//
// The nodes that end up transmitting form a source-dependent CDS
// (Theorem 2).
package dynamicb

import (
	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/des"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
)

// Per-rule pruning metrics: how often each exclusion of the updated
// coverage rule C(v) ← C(v) − C(u) − {u} − CH(N(r)) fired, plus the
// gateways the selections designated. The untraced-but-enabled path
// counts them from set-cardinality deltas (no per-element work); the
// traced path counts exactly the recorded events.
var (
	mPruneUpstream  = obs.NewCounter("dynamicb.prune.upstream_sender")
	mPrunePiggyback = obs.NewCounter("dynamicb.prune.piggybacked_set")
	mPruneSecondHop = obs.NewCounter("dynamicb.prune.second_hop_adjacent")
	mGateways       = obs.NewCounter("dynamicb.gateways_selected")
	mHeadPackets    = obs.NewCounter("dynamicb.head_packets")
)

// packet is the piggybacked payload of a dynamic-backbone transmission.
type packet struct {
	// fromCH is the last clusterhead that processed the packet (-1 when
	// the packet is fresh from a non-clusterhead source).
	fromCH int
	// cov holds C(u) ∪ {u} of that clusterhead: every clusterhead known to
	// be covered by its transmission. Hybrid because coverage sets are
	// neighborhood-sized, not Θ(n).
	cov *graph.HybridSet
	// forward is F(u): the non-clusterhead nodes asked to relay. Hybrid for
	// the same reason as cov: a handful of gateways, not Θ(n).
	forward *graph.HybridSet
}

// Protocol is the broadcast.Protocol implementation of the dynamic
// backbone. Construct once per clustered network with New; it is reusable
// across broadcasts from any source (the clusterheads and coverage sets
// are fixed; only gateway selection happens per broadcast).
type Protocol struct {
	g         *graph.Graph
	cl        *cluster.Clustering
	b         *coverage.Builder
	covArena  []coverage.Coverage  // per-head full coverage sets
	covByNode []*coverage.Coverage // head ID -> its arena entry
	sel       *backbone.Workspace  // gateway-selection scratch

	// tracer, when non-nil, receives gateway-select and per-rule
	// coverage-prune events from every head packet this protocol builds.
	// Attach the same tracer to the engine run (Broadcast/BroadcastWS do
	// this automatically) so protocol events interleave with the packet
	// events at the right simulation times.
	tracer *obs.Tracer

	// Packet/set arenas, active only for workspace-backed protocols:
	// several head packets are alive within one broadcast, so the arenas
	// are bump-allocated and rewound once per broadcast (in Start).
	reuse   bool
	bws     *broadcast.Workspace
	des     bool // route broadcasts through the event-calendar engine
	need    graph.HybridSet
	hsets   []*graph.HybridSet
	hcur    int
	packets []*packet
	pcur    int

	// Parallel per-clusterhead coverage assembly (initWorkers > 1): the
	// head-strip partitioner and one assembly scratch per worker. Each
	// head's Coverage is assembled into its own covArena slot by exactly
	// one worker, so the arena contents are identical to the sequential
	// loop's for any worker count.
	initWorkers int
	sh          des.Shards
	scrs        []coverage.AsmScratch
}

var _ broadcast.Protocol = (*Protocol)(nil)

// New builds the dynamic-backbone protocol for a clustered network under
// the given coverage-set mode.
func New(g *graph.Graph, cl *cluster.Clustering, mode coverage.Mode) *Protocol {
	return NewFrom(coverage.NewBuilder(g, cl, mode), g, cl)
}

// NewFrom builds the protocol reusing an existing coverage builder.
func NewFrom(b *coverage.Builder, g *graph.Graph, cl *cluster.Clustering) *Protocol {
	p := &Protocol{sel: backbone.NewWorkspace()}
	p.init(b, g, cl)
	return p
}

// init (re)points the protocol at a clustered network, computing the
// per-head coverage sets into the reused arena.
func (p *Protocol) init(b *coverage.Builder, g *graph.Graph, cl *cluster.Clustering) {
	p.g, p.cl, p.b = g, cl, b
	n := g.N()
	if cap(p.covArena) < len(cl.Heads) {
		p.covArena = make([]coverage.Coverage, len(cl.Heads))
	}
	p.covArena = p.covArena[:len(cl.Heads)]
	if cap(p.covByNode) < n {
		p.covByNode = make([]*coverage.Coverage, n)
	}
	p.covByNode = p.covByNode[:n]
	for i := range p.covByNode {
		p.covByNode[i] = nil
	}
	if p.initWorkers > 1 {
		p.sh.ResetRange(len(cl.Heads), p.initWorkers)
		k := p.sh.K()
		if cap(p.scrs) < k {
			p.scrs = make([]coverage.AsmScratch, k)
		}
		p.scrs = p.scrs[:k]
		sh := &p.sh
		sh.Each(p.initWorkers, func(s int) {
			scr := &p.scrs[s]
			lo, hi := sh.Range(s)
			for i := lo; i < hi; i++ {
				h := cl.Heads[i]
				c := &p.covArena[i]
				b.OfScratch(h, c, scr)
				p.covByNode[h] = c // distinct h per head index: single writer
			}
		})
		return
	}
	for i, h := range cl.Heads {
		c := &p.covArena[i]
		b.OfReuse(h, c)
		p.covByNode[h] = c
	}
}

// allocHybrid returns a cleared n-hybrid-set: fresh for plain protocols,
// from the bump arena for workspace-backed ones.
func (p *Protocol) allocHybrid(n int) *graph.HybridSet {
	if !p.reuse {
		return graph.NewHybridSet(n)
	}
	if p.hcur == len(p.hsets) {
		p.hsets = append(p.hsets, graph.NewHybridSet(n))
	}
	h := p.hsets[p.hcur]
	p.hcur++
	h.Reset(n)
	return h
}

// allocPacket returns a packet to fill, analogous to allocHybrid.
func (p *Protocol) allocPacket() *packet {
	if !p.reuse {
		return &packet{}
	}
	if p.pcur == len(p.packets) {
		p.packets = append(p.packets, &packet{})
	}
	pk := p.packets[p.pcur]
	p.pcur++
	return pk
}

// SetTracer attaches (or, with nil, detaches) a trace recorder. Broadcast
// and BroadcastWS hand the same tracer to the engine, so one attachment
// yields the full interleaved event stream.
func (p *Protocol) SetTracer(tr *obs.Tracer) { p.tracer = tr }

// Tracer returns the attached trace recorder (nil when untraced).
func (p *Protocol) Tracer() *obs.Tracer { return p.tracer }

// Mode returns the coverage-set variant in use.
func (p *Protocol) Mode() coverage.Mode { return p.b.Mode() }

// Name implements broadcast.Protocol.
func (p *Protocol) Name() string {
	return "dynamic-" + p.b.Mode().String()
}

// Start implements broadcast.Protocol. For workspace-backed protocols the
// packet/bitset arenas rewind here — the engine retains nothing across
// broadcasts, so everything handed out during the previous broadcast is
// dead by the next Start.
func (p *Protocol) Start(source int) broadcast.Packet {
	p.hcur, p.pcur = 0, 0
	if p.cl.IsHead(source) {
		return p.headPacket(source, nil, -1)
	}
	// Rule 1: a non-clusterhead source just sends the packet toward its
	// clusterhead; it designates no other relays.
	pk := p.allocPacket()
	*pk = packet{fromCH: -1, cov: nil, forward: nil}
	return pk
}

// headPacket runs clusterhead v's selection against the exclusions implied
// by the incoming packet (nil for a source clusterhead) and the immediate
// transmitter x (-1 for none), returning the outgoing payload.
func (p *Protocol) headPacket(v int, in *packet, x int) *packet {
	cov := p.covByNode[v]
	n := p.g.N()
	// Updated coverage set: start from the full C(v), drop everything the
	// upstream transmission already covers. The need set is consumed by
	// the selection below and never escapes, so one scratch set serves
	// every head packet.
	need := &p.need
	need.Reset(n)
	need.CopyFrom(cov.C2)
	need.Or(cov.C3)
	switch {
	case p.tracer != nil:
		// Traced: apply the exclusions element-wise so every pruned
		// clusterhead is attributed to the rule that removed it. The
		// resulting need set is identical to the wholesale path — the
		// exclusions are plain set differences.
		p.pruneTraced(need, in, v, x)
	case obs.Enabled():
		// Metrics only: wholesale set ops, per-rule totals recovered from
		// cardinality deltas (Count on a sparse set is O(1)).
		p.pruneCounted(need, in, x)
	default:
		if in != nil {
			if in.cov != nil {
				need.AndNot(in.cov)
			}
			if in.fromCH >= 0 {
				need.Remove(in.fromCH)
			}
		}
		if x >= 0 {
			// Clusterheads adjacent to the immediate transmitter heard the
			// same transmission v heard (the paper's N(r) exclusion).
			for _, w := range p.b.CH1(x) {
				need.Remove(w)
			}
		}
	}
	fwd := p.allocHybrid(n)
	p.sel.SelectInto(cov, need, need, backbone.Options{}, fwd)
	if obs.Enabled() {
		mHeadPackets.Inc()
		mGateways.Add(int64(fwd.Count()))
	}
	if tr := p.tracer; tr != nil {
		fwd.ForEach(func(w int) { tr.GatewaySelect(v, w) })
	}
	// Piggyback the FULL coverage set (paper: "F(3)={9} and C(3)={1,2,4}
	// are piggybacked"): everything in C(v) either receives via F(v) or
	// was excluded precisely because it already received.
	full := p.allocHybrid(n)
	full.CopyFrom(cov.C2)
	full.Or(cov.C3)
	full.Add(v)
	pk := p.allocPacket()
	*pk = packet{fromCH: v, cov: full, forward: fwd}
	return pk
}

// pruneTraced applies the updated-coverage exclusions to need one element
// at a time, recording a coverage-prune event (and bumping the per-rule
// counter) for every clusterhead removed. Attribution order follows the
// paper's formula: the upstream sender u first, then the piggybacked set
// C(u), then the second-hop-adjacent heads CH(N(r)) — a head excluded by
// several terms is attributed to the first.
func (p *Protocol) pruneTraced(need *graph.HybridSet, in *packet, v, x int) {
	tr := p.tracer
	if in != nil {
		if in.fromCH >= 0 && need.Has(in.fromCH) {
			tr.CoveragePrune(v, in.fromCH, obs.RuleUpstreamSender)
			mPruneUpstream.Inc()
			need.Remove(in.fromCH)
		}
		if in.cov != nil {
			in.cov.ForEach(func(w int) {
				if need.Has(w) {
					tr.CoveragePrune(v, w, obs.RulePiggybackedSet)
					mPrunePiggyback.Inc()
					need.Remove(w)
				}
			})
		}
	}
	if x >= 0 {
		for _, w := range p.b.CH1(x) {
			if need.Has(w) {
				tr.CoveragePrune(v, w, obs.RuleSecondHopAdjacent)
				mPruneSecondHop.Inc()
				need.Remove(w)
			}
		}
	}
}

// pruneCounted is the wholesale exclusion path with per-rule totals
// recovered from cardinality deltas. Attribution matches pruneTraced: the
// upstream sender is removed (and counted) before the piggybacked set.
func (p *Protocol) pruneCounted(need *graph.HybridSet, in *packet, x int) {
	if in != nil {
		if in.fromCH >= 0 && need.Has(in.fromCH) {
			mPruneUpstream.Inc()
			need.Remove(in.fromCH)
		}
		if in.cov != nil {
			before := need.Count()
			need.AndNot(in.cov)
			mPrunePiggyback.Add(int64(before - need.Count()))
		}
	}
	if x >= 0 {
		before := need.Count()
		for _, w := range p.b.CH1(x) {
			need.Remove(w)
		}
		mPruneSecondHop.Add(int64(before - need.Count()))
	}
}

// OnReceive implements broadcast.Protocol.
func (p *Protocol) OnReceive(v, x int, pkt broadcast.Packet) (bool, broadcast.Packet) {
	in, _ := pkt.(*packet)
	if p.cl.IsHead(v) {
		// Rule 2: a clusterhead always transmits on first reception.
		return true, p.headPacket(v, in, x)
	}
	// Rule 3: a non-clusterhead relays iff designated. A fresh packet from
	// a non-clusterhead source implicitly designates the source's
	// clusterhead only, which is handled above; other members stay quiet.
	if in != nil && in.forward != nil && in.forward.Has(v) {
		return true, in
	}
	return false, nil
}

// OnDuplicate implements broadcast.Protocol: a gateway may first hear the
// packet from a transmission that does not designate it and must still
// relay when a designating copy arrives.
func (p *Protocol) OnDuplicate(v, x int, pkt broadcast.Packet) (bool, broadcast.Packet) {
	if p.cl.IsHead(v) {
		return false, nil // clusterheads act on first reception only
	}
	in, _ := pkt.(*packet)
	if in != nil && in.forward != nil && in.forward.Has(v) {
		return true, in
	}
	return false, nil
}

// SetDES routes subsequent Broadcast/BroadcastWS calls through the
// event-calendar engine (broadcast.RunDESOpts). The result is
// bit-identical to the default engine; only slot bookkeeping changes.
func (p *Protocol) SetDES(on bool) { p.des = on }

// Broadcast runs one dynamic-backbone broadcast and returns the engine
// result. The forward node set of the paper's Figures 7 and 8 is
// res.ForwardCount().
func (p *Protocol) Broadcast(source int) *broadcast.Result {
	if p.des {
		return broadcast.RunDESOpts(p.g, source, p, broadcast.Options{Tracer: p.tracer})
	}
	return broadcast.RunOpts(p.g, source, p, broadcast.Options{Tracer: p.tracer})
}

// BroadcastWS runs one broadcast on the protocol's dense engine workspace
// and returns the workspace-owned result — the allocation-free path for
// replicate loops. The result is valid until the next BroadcastWS call.
func (p *Protocol) BroadcastWS(source int) *broadcast.WSResult {
	if p.bws == nil {
		p.bws = broadcast.NewWorkspace()
	}
	if p.des {
		return p.bws.RunDESOpts(p.g, source, p, broadcast.Options{Tracer: p.tracer})
	}
	return p.bws.RunOpts(p.g, source, p, broadcast.Options{Tracer: p.tracer})
}
