package dynamicb

import (
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// TestBuildWorkersProtocolBitIdentical proves the sharded construction
// path — parallel coverage digest plus parallel per-clusterhead coverage
// assembly — changes no broadcast decision: forward counts and
// transmitting sets equal the sequential workspace's for every source,
// both modes, across worker counts.
func TestBuildWorkersProtocolBitIdentical(t *testing.T) {
	seq := NewWorkspace()
	par := NewWorkspace()
	for rep := 0; rep < 4; rep++ {
		nw, err := topology.Generate(topology.Config{
			N: 120, Bounds: geom.Square(100), AvgDegree: 10,
			RequireConnected: true,
		}, rng.New(uint64(900+rep)))
		if err != nil {
			t.Fatalf("rep %d: generate: %v", rep, err)
		}
		cl := cluster.LowestID(nw.G)
		for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
			want := seq.NewWith(nw.G, cl, mode)
			wres := make([]int, nw.N())
			for src := 0; src < nw.N(); src++ {
				wres[src] = want.Broadcast(src).ForwardCount()
			}
			for _, workers := range []int{2, 3, 8} {
				par.BuildWorkers = workers
				got := par.NewWith(nw.G, cl, mode)
				for src := 0; src < nw.N(); src++ {
					if fc := got.Broadcast(src).ForwardCount(); fc != wres[src] {
						t.Fatalf("rep %d mode %v workers %d src %d: forward count %d, want %d",
							rep, mode, workers, src, fc, wres[src])
					}
				}
			}
		}
	}
}
