package dynamicb

import (
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// TestWorkspaceProtocolMatchesNew proves the arena-backed protocol makes
// exactly the decisions of the allocating one: same forward counts and
// same transmitting sets, for every source, both modes, across reuse of a
// single workspace over several networks.
func TestWorkspaceProtocolMatchesNew(t *testing.T) {
	ws := NewWorkspace()
	for rep := 0; rep < 6; rep++ {
		nw, err := topology.Generate(topology.Config{
			N: 90, Bounds: geom.Square(100), AvgDegree: 8,
			RequireConnected: true,
		}, rng.New(uint64(700+rep)))
		if err != nil {
			t.Fatalf("rep %d: generate: %v", rep, err)
		}
		cl := cluster.LowestID(nw.G)
		for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
			want := New(nw.G, cl, mode)
			got := ws.NewWith(nw.G, cl, mode)
			for src := 0; src < nw.N(); src++ {
				wres := want.Broadcast(src)
				gres := got.Broadcast(src)
				if gres.ForwardCount() != wres.ForwardCount() {
					t.Fatalf("rep %d mode %v src %d: forward count %d, want %d",
						rep, mode, src, gres.ForwardCount(), wres.ForwardCount())
				}
				for v := 0; v < nw.N(); v++ {
					if gres.Forwarders[v] != wres.Forwarders[v] {
						t.Fatalf("rep %d mode %v src %d: node %d forwarded %v, want %v",
							rep, mode, src, v, gres.Forwarders[v], wres.Forwarders[v])
					}
				}
			}
		}
	}
}
