package dynamicb

import (
	"clustercast/internal/broadcast"
	"clustercast/internal/graph"
)

// HeadPacketForTest exposes the clusterhead selection step for white-box
// tests of the pruning rules.
func (p *Protocol) HeadPacketForTest(v int, in broadcast.Packet, x int) (forward map[int]bool, piggyCov map[int]bool) {
	pkt, _ := in.(*packet)
	out := p.headPacket(v, pkt, x)
	return out.forward.ToBitset().ToSet(), out.cov.ToBitset().ToSet()
}

// PacketForTest builds an incoming packet for white-box tests. Sets are
// membership maps over the protocol's node universe.
func (p *Protocol) PacketForTest(fromCH int, cov map[int]bool, forward map[int]bool) broadcast.Packet {
	n := p.g.N()
	pk := &packet{fromCH: fromCH}
	if cov != nil {
		pk.cov = graph.NewHybridSet(n)
		for v, ok := range cov {
			if ok {
				pk.cov.Add(v)
			}
		}
	}
	if forward != nil {
		pk.forward = graph.NewHybridSet(n)
		for v, ok := range forward {
			if ok {
				pk.forward.Add(v)
			}
		}
	}
	return pk
}
