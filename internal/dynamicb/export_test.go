package dynamicb

import "clustercast/internal/broadcast"

// HeadPacketForTest exposes the clusterhead selection step for white-box
// tests of the pruning rules.
func (p *Protocol) HeadPacketForTest(v int, in broadcast.Packet, x int) (forward map[int]bool, piggyCov map[int]bool) {
	pkt, _ := in.(*packet)
	out := p.headPacket(v, pkt, x)
	return out.forward, out.cov
}

// PacketForTest builds an incoming packet for white-box tests.
func PacketForTest(fromCH int, cov map[int]bool, forward map[int]bool) broadcast.Packet {
	return &packet{fromCH: fromCH, cov: cov, forward: forward}
}
