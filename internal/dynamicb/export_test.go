package dynamicb

import (
	"clustercast/internal/broadcast"
	"clustercast/internal/graph"
)

// HeadPacketForTest exposes the clusterhead selection step for white-box
// tests of the pruning rules.
func (p *Protocol) HeadPacketForTest(v int, in broadcast.Packet, x int) (forward map[int]bool, piggyCov map[int]bool) {
	pkt, _ := in.(*packet)
	out := p.headPacket(v, pkt, x)
	return out.forward.ToSet(), out.cov.ToSet()
}

// PacketForTest builds an incoming packet for white-box tests. Sets are
// membership maps over the protocol's node universe.
func (p *Protocol) PacketForTest(fromCH int, cov map[int]bool, forward map[int]bool) broadcast.Packet {
	n := p.g.N()
	pk := &packet{fromCH: fromCH}
	if cov != nil {
		pk.cov = graph.BitsetFromSet(n, cov)
	}
	if forward != nil {
		pk.forward = graph.BitsetFromSet(n, forward)
	}
	return pk
}
