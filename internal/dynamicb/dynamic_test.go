package dynamicb

import (
	"reflect"
	"testing"
	"testing/quick"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// paperGraph builds the 10-node network of the paper's Figure 3, 0-based.
func paperGraph() *graph.Graph {
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	return graph.FromEdges(10, zero)
}

// TestPaperIllustration reproduces the paper's §3 walk-through: a dynamic
// broadcast from clusterhead 1 uses exactly 7 forward nodes
// {1,2,3,4,6,7,9} versus the static backbone's 9.
func TestPaperIllustration(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	p := New(g, cl, coverage.Hop25)
	res := p.Broadcast(0) // paper node 1
	want := graph.SetOf(0, 1, 2, 3, 5, 6, 8)
	if !reflect.DeepEqual(res.Forwarders, want) {
		t.Fatalf("forwarders = %v, want %v (paper {1,2,3,4,6,7,9})",
			graph.SortedMembers(res.Forwarders), graph.SortedMembers(want))
	}
	if res.ForwardCount() != 7 {
		t.Fatalf("forward count = %d, want 7", res.ForwardCount())
	}
	if len(res.Received) != g.N() {
		t.Fatalf("delivered %d/%d", len(res.Received), g.N())
	}
}

// TestPaperStaticComparison: the same broadcast over the static backbone
// uses all 9 backbone nodes (paper: "In total, 9 nodes ... will forward").
func TestPaperStaticComparison(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	s := backbone.BuildStatic(g, cl, coverage.Hop25)
	res := broadcast.Run(g, 0, broadcast.StaticCDS{Set: s.Nodes, Label: "static"})
	if res.ForwardCount() != 9 {
		t.Fatalf("static forward count = %d, want 9", res.ForwardCount())
	}
	dyn := New(g, cl, coverage.Hop25).Broadcast(0)
	if dyn.ForwardCount() >= res.ForwardCount() {
		t.Fatalf("dynamic (%d) must beat static (%d) on the paper example",
			dyn.ForwardCount(), res.ForwardCount())
	}
}

func TestNonClusterheadSource(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	p := New(g, cl, coverage.Hop25)
	// Source 9 (paper 10) is a member of cluster 3.
	res := p.Broadcast(9)
	if len(res.Received) != g.N() {
		t.Fatalf("delivered %d/%d from member source", len(res.Received), g.N())
	}
	if !res.Forwarders[9] {
		t.Fatal("source must count as forwarder")
	}
	if !res.Forwarders[2] {
		t.Fatal("the source's clusterhead (paper 3) must forward")
	}
}

func TestAllSourcesDeliverPaperGraph(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
		p := New(g, cl, mode)
		for src := 0; src < g.N(); src++ {
			res := p.Broadcast(src)
			if len(res.Received) != g.N() {
				t.Fatalf("%v: source %d delivered %d/%d",
					mode, src, len(res.Received), g.N())
			}
		}
	}
}

func TestBroadcastDeterministic(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	p := New(g, cl, coverage.Hop25)
	a := p.Broadcast(4)
	b := p.Broadcast(4)
	if !reflect.DeepEqual(a.Forwarders, b.Forwarders) {
		t.Fatal("dynamic broadcast must be deterministic")
	}
}

func TestName(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	if got := New(g, cl, coverage.Hop25).Name(); got != "dynamic-2.5-hop" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(g, cl, coverage.Hop3).Name(); got != "dynamic-3-hop" {
		t.Fatalf("Name = %q", got)
	}
}

func randomNet(seed uint64, n int, deg float64) (*topology.Network, bool) {
	r := rng.New(seed)
	nw, err := topology.Generate(topology.Config{
		N: n, Bounds: geom.Square(100), AvgDegree: deg,
		RequireConnected: true, MaxAttempts: 400,
	}, r)
	return nw, err == nil
}

// Property (Theorem 2 + delivery): on random connected networks, every
// dynamic broadcast reaches all nodes, the forwarder set is a CDS, and all
// clusterheads forward.
func TestQuickDynamicDeliversAndFormsCDS(t *testing.T) {
	check := func(seed uint64, mode coverage.Mode, deg float64) bool {
		nw, ok := randomNet(seed, 50, deg)
		if !ok {
			return true
		}
		cl := cluster.LowestID(nw.G)
		p := New(nw.G, cl, mode)
		r := rng.New(seed ^ 0x5eed)
		for trial := 0; trial < 3; trial++ {
			src := r.Intn(50)
			res := p.Broadcast(src)
			if len(res.Received) != 50 {
				return false
			}
			for _, h := range cl.Heads {
				if !res.Forwarders[h] {
					return false
				}
			}
			if !nw.G.IsCDS(res.Forwarders) {
				return false
			}
		}
		return true
	}
	f := func(seed uint64, dense bool) bool {
		deg := 6.0
		if dense {
			deg = 18.0
		}
		return check(seed, coverage.Hop25, deg) && check(seed, coverage.Hop3, deg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Figure 8's shape: averaged over topologies and sources, the dynamic
// backbone uses fewer forwarders than broadcasting over the static
// backbone. The ordering is NOT a per-instance theorem — on compact
// topologies the static greedy selection amortizes gateways across heads
// while per-broadcast selection cannot, and the dynamic count can exceed
// the static one by a node or two (e.g. the connected 60-node topology of
// seed 0xaef8e3b2c20615bb) — so the assertion is on the mean, with fixed
// seeds for determinism.
func TestDynamicBeatsStaticOnAverage(t *testing.T) {
	var sumStatic, sumDyn int
	topologies := 0
	for seed := uint64(1); topologies < 25 && seed < 200; seed++ {
		nw, ok := randomNet(seed, 60, 12)
		if !ok {
			continue
		}
		topologies++
		cl := cluster.LowestID(nw.G)
		stat := backbone.BuildStatic(nw.G, cl, coverage.Hop25)
		dyn := New(nw.G, cl, coverage.Hop25)
		r := rng.New(seed ^ 0xfeed)
		for trial := 0; trial < 4; trial++ {
			src := r.Intn(60)
			sres := broadcast.Run(nw.G, src, broadcast.StaticCDS{Set: stat.Nodes})
			dres := dyn.Broadcast(src)
			sumStatic += sres.ForwardCount()
			sumDyn += dres.ForwardCount()
		}
	}
	if topologies < 10 {
		t.Fatalf("only %d topologies generated", topologies)
	}
	if sumDyn >= sumStatic {
		t.Fatalf("dynamic total %d should be below static total %d over %d topologies",
			sumDyn, sumStatic, topologies)
	}
	t.Logf("forward totals over %d topologies × 4 sources: static=%d dynamic=%d (−%.1f%%)",
		topologies, sumStatic, sumDyn, 100*(1-float64(sumDyn)/float64(sumStatic)))
}

// Property: forwarding gateways are always non-clusterheads designated by
// some clusterhead; i.e. the forwarder set is heads + source + designated
// gateways only.
func TestQuickForwardersAreLegitimate(t *testing.T) {
	f := func(seed uint64) bool {
		nw, ok := randomNet(seed, 40, 8)
		if !ok {
			return true
		}
		cl := cluster.LowestID(nw.G)
		p := New(nw.G, cl, coverage.Hop25)
		src := rng.New(seed).Intn(40)
		res := p.Broadcast(src)
		for v := range res.Forwarders {
			if v == src || cl.IsHead(v) {
				continue
			}
			// Non-head forwarders must be within 2 hops of some head
			// (gateway or relay position).
			dist := nw.G.BFS(v)
			ok := false
			for _, h := range cl.Heads {
				if dist[h] <= 2 {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodeBroadcast(t *testing.T) {
	g := graph.New(1)
	cl := cluster.LowestID(g)
	p := New(g, cl, coverage.Hop25)
	res := p.Broadcast(0)
	if res.ForwardCount() != 1 || len(res.Received) != 1 {
		t.Fatalf("trivial broadcast wrong: %+v", res)
	}
}

func TestTwoNodeBroadcast(t *testing.T) {
	g := graph.FromEdges(2, [][2]int{{0, 1}})
	cl := cluster.LowestID(g)
	p := New(g, cl, coverage.Hop25)
	for src := 0; src < 2; src++ {
		res := p.Broadcast(src)
		if len(res.Received) != 2 {
			t.Fatalf("source %d: delivered %d/2", src, len(res.Received))
		}
	}
}

func BenchmarkDynamicBroadcast100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	cl := cluster.LowestID(nw.G)
	p := New(nw.G, cl, coverage.Hop25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Broadcast(i % 100)
	}
}
