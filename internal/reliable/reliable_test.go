package reliable

import (
	"testing"
	"testing/quick"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/fwdtree"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func paperGraph() *graph.Graph {
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	return graph.FromEdges(10, zero)
}

func buildTree(t testing.TB, g *graph.Graph, source int) (*fwdtree.Tree, *cluster.Clustering) {
	t.Helper()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	tree, err := fwdtree.Build(b, cl, source)
	if err != nil {
		t.Fatal(err)
	}
	return tree, cl
}

func TestIdealRadioDelivers(t *testing.T) {
	g := paperGraph()
	for src := 0; src < g.N(); src++ {
		tree, _ := buildTree(t, g, src)
		res, err := Run(g, tree, src, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			t.Fatalf("source %d: not delivered under ideal radio", src)
		}
		if res.Transmissions == 0 || res.Rounds == 0 {
			t.Fatalf("source %d: implausible counters %+v", src, res)
		}
	}
}

func TestIdealTransmissionsBounded(t *testing.T) {
	// Without loss, every tree node transmits O(1) times (down once, up at
	// most once, plus ack-resolution slack).
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	res, err := Run(g, tree, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions > 3*tree.Size()+3 {
		t.Fatalf("ideal radio used %d transmissions for a %d-node tree",
			res.Transmissions, tree.Size())
	}
}

func TestLossyStillDelivers(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Run(g, tree, 0, Config{Loss: 0.3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			t.Fatalf("seed %d: reliable broadcast failed under 30%% loss", seed)
		}
	}
}

func TestLossCostsRetransmissions(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	ideal, _ := Run(g, tree, 0, Config{})
	sum := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		res, _ := Run(g, tree, 0, Config{Loss: 0.4, Seed: seed})
		sum += res.Transmissions
	}
	if sum/trials <= ideal.Transmissions {
		t.Fatalf("40%% loss should cost retransmissions: ideal=%d lossy-avg=%d",
			ideal.Transmissions, sum/trials)
	}
}

func TestSourceOutOfRange(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	if _, err := Run(g, tree, -1, Config{}); err == nil {
		t.Fatal("negative source must error")
	}
	if _, err := Run(g, tree, 99, Config{}); err == nil {
		t.Fatal("oversized source must error")
	}
}

func TestOffTreeSource(t *testing.T) {
	g := paperGraph()
	// Node 9 (paper 10) is outside the 2.5-hop backbone/tree for root
	// cluster 3; ensure an off-tree source still boots dissemination.
	tree, cl := buildTree(t, g, 9)
	if tree.Nodes[9] {
		t.Skip("node 9 landed on the tree in this construction")
	}
	_ = cl
	res, err := Run(g, tree, 9, Config{Loss: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatal("off-tree source failed to deliver")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	a, _ := Run(g, tree, 0, Config{Loss: 0.25, Seed: 7})
	b, _ := Run(g, tree, 0, Config{Loss: 0.25, Seed: 7})
	if a.Transmissions != b.Transmissions || a.Rounds != b.Rounds || a.Acks != b.Acks {
		t.Fatal("equal seeds must replicate exactly")
	}
}

// Property: on random connected networks, reliable broadcast delivers to
// every node under moderate loss, from any source.
func TestQuickReliableDelivers(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 40, Bounds: geom.Square(100), AvgDegree: 8,
			RequireConnected: true, MaxAttempts: 400,
		}, r)
		if err != nil {
			return true
		}
		src := r.Intn(40)
		cl := cluster.LowestID(nw.G)
		b := coverage.NewBuilder(nw.G, cl, coverage.Hop25)
		tree, err := fwdtree.Build(b, cl, src)
		if err != nil {
			return false
		}
		res, err := Run(nw.G, tree, src, Config{Loss: 0.2, Seed: seed})
		if err != nil {
			return false
		}
		return res.Delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReliable100Loss20(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	cl := cluster.LowestID(nw.G)
	cb := coverage.NewBuilder(nw.G, cl, coverage.Hop25)
	tree, err := fwdtree.Build(cb, cl, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(nw.G, tree, 0, Config{Loss: 0.2, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
