package reliable

import (
	"testing"

	"clustercast/internal/faults"
	"clustercast/internal/geom"
)

func TestFaultsZeroSpecMatchesClassic(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	classic, err := Run(g, tree, 0, Config{Loss: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A no-fault oracle must not change the classic outcome except for the
	// (gated) backoff bookkeeping; with no copies ever fault-dropped, no
	// sender backs off past a round in which it would have succeeded —
	// delivery must still happen.
	o := faults.New(faults.Spec{}, g.N())
	faulted, err := Run(g, tree, 0, Config{Loss: 0.2, Seed: 7, Faults: o})
	if err != nil {
		t.Fatal(err)
	}
	if !faulted.Delivered || faulted.Degraded {
		t.Fatalf("zero-spec oracle degraded the run: %+v", faulted)
	}
	if !classic.Delivered {
		t.Fatalf("classic run failed: %+v", classic)
	}
}

func TestFaultsSeveredTreeReturnsDegradedNotError(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	// A permanent full partition between x<0.5 and the rest: node 0 on one
	// side, everyone else on the other. The tree is severed for the whole
	// run; Run must give up with Degraded instead of erroring or spinning.
	spec := faults.Spec{Partitions: []faults.Partition{
		{Start: 0, End: 1 << 30, Vertical: true, Coord: 0.5},
	}}
	o := faults.New(spec, g.N())
	pos := positionsSplit(g.N(), 0)
	o.SetPositions(pos)
	res, err := Run(g, tree, 0, Config{Faults: o, MaxRounds: 5000})
	if err != nil {
		t.Fatalf("severed tree must not error: %v", err)
	}
	if res.Delivered {
		t.Fatal("nothing can cross a full partition")
	}
	if !res.Degraded {
		t.Fatal("undelivered faulted run must report Degraded")
	}
	if res.Rounds >= 5000 {
		t.Fatalf("stall exit did not engage: ran %d rounds", res.Rounds)
	}
}

func TestFaultsTransientOutageRidesThrough(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	// Partition only for rounds [1, 15): after it lifts, retransmissions
	// must complete the delivery.
	spec := faults.Spec{Partitions: []faults.Partition{
		{Start: 1, End: 15, Vertical: true, Coord: 0.5},
	}}
	o := faults.New(spec, g.N())
	o.SetPositions(positionsSplit(g.N(), 0))
	res, err := Run(g, tree, 0, Config{Faults: o})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Degraded {
		t.Fatalf("delivery must complete after the outage lifts: %+v", res)
	}
	if res.Rounds < 15 {
		t.Fatalf("delivery finished in %d rounds, inside the outage window", res.Rounds)
	}
}

func TestFaultsBackoffReducesTransmissions(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	spec := faults.Spec{Partitions: []faults.Partition{
		{Start: 0, End: 40, Vertical: true, Coord: 0.5},
	}}
	mk := func() *faults.Oracle {
		o := faults.New(spec, g.N())
		o.SetPositions(positionsSplit(g.N(), 0))
		return o
	}
	res, err := Run(g, tree, 0, Config{Faults: mk()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("delivery must complete after the outage: %+v", res)
	}
	// During the 40-round outage the source is the only sender (nobody
	// else holds the packet) and capped exponential backoff bounds its
	// retries well below one per round.
	if res.Transmissions > 15+g.N()*4 {
		t.Fatalf("backoff did not engage: %d transmissions", res.Transmissions)
	}
}

func TestFaultsDeterministicUnderOracle(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	spec := faults.Spec{MeanUp: 25, MeanDown: 10, Seed: 3, LossGood: 0.1, LossBad: 0.1}
	run := func() *Result {
		o := faults.New(spec, g.N())
		res, err := Run(g, tree, 0, Config{Loss: 0.1, Seed: 9, Faults: o})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("faulted reliable runs diverge: %+v vs %+v", a, b)
	}
}

// The idle-window fast-forward must be invisible: every skipped round had
// no eligible sender, so the polling reference and the jumping run return
// identical results — under churn outages, loss chains, and the severed
// stall exit alike.
func TestFaultsFastForwardBitIdentical(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	specs := []faults.Spec{
		{MeanUp: 25, MeanDown: 10, Seed: 3, LossGood: 0.1, LossBad: 0.4, PGoodBad: 0.05, PBadGood: 0.2},
		{MeanUp: 8, MeanDown: 30, Seed: 11}, // long outages: deep idle windows
		{MeanUp: 40, MeanDown: 3, Seed: 5, LossGood: 0.05},
		{}, // no churn: fast-forward only jumps backoffs
	}
	for si, spec := range specs {
		for seed := uint64(0); seed < 6; seed++ {
			run := func(noFF bool) *Result {
				o := faults.New(spec, g.N())
				res, err := Run(g, tree, 0, Config{
					Loss: 0.15, Seed: seed, Faults: o, NoFastForward: noFF,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref, ff := run(true), run(false)
			if *ref != *ff {
				t.Fatalf("spec %d seed %d: fast-forward changed the result:\n  poll %+v\n  jump %+v",
					si, seed, ref, ff)
			}
		}
	}
	// The severed-tree case: the stall exit must concede at the identical
	// round with and without the jump.
	spec := faults.Spec{Partitions: []faults.Partition{
		{Start: 0, End: 1 << 30, Vertical: true, Coord: 0.5},
	}}
	run := func(noFF bool) *Result {
		o := faults.New(spec, g.N())
		o.SetPositions(positionsSplit(g.N(), 0))
		res, err := Run(g, tree, 0, Config{Faults: o, MaxRounds: 5000, NoFastForward: noFF})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if ref, ff := run(true), run(false); *ref != *ff {
		t.Fatalf("severed tree: fast-forward changed the stall exit: %+v vs %+v", ref, ff)
	}
}

// positionsSplit puts node `left` at x = 0 and everyone else at x = 1, so
// a vertical cut at 0.5 isolates it.
func positionsSplit(n, left int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		if i == left {
			pts[i] = geom.Point{X: 0, Y: 0}
		} else {
			pts[i] = geom.Point{X: 1, Y: 0}
		}
	}
	return pts
}
