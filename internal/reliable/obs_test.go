package reliable

import (
	"testing"

	"clustercast/internal/faults"
	"clustercast/internal/obs"
)

// counterDelta runs f and returns how much each named reliable.* counter
// moved (the Default registry is shared across the test binary, so tests
// assert deltas, never absolutes).
func counterDelta(t *testing.T, names []string, f func()) map[string]int64 {
	t.Helper()
	before := make(map[string]int64, len(names))
	for _, n := range names {
		before[n] = obs.Default.Counter(n).Value()
	}
	obs.Enable()
	defer obs.Disable()
	f()
	out := make(map[string]int64, len(names))
	for _, n := range names {
		out[n] = obs.Default.Counter(n).Value() - before[n]
	}
	return out
}

func TestObsCountersUnderLoss(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	d := counterDelta(t, []string{
		"reliable.runs", "reliable.transmissions", "reliable.acks",
		"reliable.retransmissions", "reliable.retransmission_rounds",
	}, func() {
		if _, err := Run(g, tree, 0, Config{Loss: 0.4, Seed: 11}); err != nil {
			t.Fatal(err)
		}
	})
	if d["reliable.runs"] != 1 {
		t.Fatalf("runs delta = %d", d["reliable.runs"])
	}
	if d["reliable.transmissions"] == 0 || d["reliable.acks"] == 0 {
		t.Fatalf("traffic counters empty: %+v", d)
	}
	if d["reliable.retransmissions"] == 0 || d["reliable.retransmission_rounds"] == 0 {
		t.Fatalf("40%% loss produced no retransmissions: %+v", d)
	}
	if d["reliable.retransmission_rounds"] > d["reliable.retransmissions"] {
		t.Fatalf("more retransmission rounds than retransmissions: %+v", d)
	}
}

func TestObsDegradedAndStallTrace(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	spec := faults.Spec{Partitions: []faults.Partition{
		{Start: 0, End: 1 << 30, Vertical: true, Coord: 0.5},
	}}
	o := faults.New(spec, g.N())
	o.SetPositions(positionsSplit(g.N(), 0))
	tr := obs.NewTracer(0)
	d := counterDelta(t, []string{"reliable.degraded", "reliable.backoff_waits"}, func() {
		res, err := Run(g, tree, 0, Config{Faults: o, MaxRounds: 5000, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded {
			t.Fatalf("full partition must degrade: %+v", res)
		}
	})
	if d["reliable.degraded"] != 1 {
		t.Fatalf("degraded delta = %d", d["reliable.degraded"])
	}
	stalls := 0
	for _, ev := range tr.Events() {
		if ev.Kind == obs.EvStall {
			stalls++
			if ev.Node < 1 {
				t.Fatalf("stall event with no uncovered nodes: %+v", ev)
			}
		}
	}
	if stalls != 1 {
		t.Fatalf("got %d stall events, want 1", stalls)
	}
}

func TestObsFastForwardJumps(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	spec := faults.Spec{Partitions: []faults.Partition{
		{Start: 0, End: 40, Vertical: true, Coord: 0.5},
	}}
	o := faults.New(spec, g.N())
	o.SetPositions(positionsSplit(g.N(), 0))
	d := counterDelta(t, []string{
		"reliable.fastforward_jumps", "reliable.fastforward_rounds", "reliable.backoff_waits",
	}, func() {
		res, err := Run(g, tree, 0, Config{Faults: o})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			t.Fatalf("outage must be ridden out: %+v", res)
		}
	})
	if d["reliable.fastforward_jumps"] == 0 {
		t.Fatal("40-round outage took no fast-forward jumps")
	}
	if d["reliable.fastforward_rounds"] < d["reliable.fastforward_jumps"] {
		t.Fatalf("jumps skipped fewer rounds than jumps taken: %+v", d)
	}
}

func TestObsRetransmitTraceEvents(t *testing.T) {
	g := paperGraph()
	tree, _ := buildTree(t, g, 0)
	tr := obs.NewTracer(0)
	res, err := Run(g, tree, 0, Config{Loss: 0.4, Seed: 11, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	retrans := 0
	for _, ev := range tr.Events() {
		if ev.Kind == obs.EvRetransmit {
			retrans++
			if ev.Peer < 1 {
				t.Fatalf("retransmit with no outstanding peers: %+v", ev)
			}
		}
	}
	if retrans == 0 {
		t.Fatal("no retransmit events under 40% loss")
	}
	// A tracer attaches the measuring path even with obs disabled; the
	// result must not change versus the unobserved run.
	bare, err := Run(g, tree, 0, Config{Loss: 0.4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if *bare != *res {
		t.Fatalf("instrumentation changed the result: %+v vs %+v", bare, res)
	}
}
