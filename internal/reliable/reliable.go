// Package reliable implements reliable broadcast delivery over the
// cluster-based forwarding tree, after Pagani and Rossi (1999): the tree
// (clusterhead → gateway → clusterhead levels) gives every node a parent
// responsible for its delivery, so lost copies are repaired by
// retransmission instead of by flooding redundancy.
//
// The simulation model extends the repository's broadcast engine with
// acknowledgements. The packet first climbs from the source's attachment
// point to the tree root, then flows down every branch; in each round a
// tree node holding the packet retransmits while some peer it is
// responsible for — its unconfirmed tree children, its unconfirmed
// dominated (non-tree) neighbors, or a parent that has not yet been heard
// holding the packet — is outstanding. Per-copy loss is Bernoulli;
// acknowledgements are assumed reliable (short ARQ control frames in the
// real protocol).
package reliable

import (
	"fmt"

	"clustercast/internal/faults"
	"clustercast/internal/fwdtree"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
	"clustercast/internal/rng"
)

// Retransmission-engine metrics, accumulated in per-run locals and folded
// once per Run (the engines' fold-then-Add discipline: the round loop
// never touches atomics). All zero-cost when obs is disabled.
var (
	mRuns          = obs.NewCounter("reliable.runs")
	mTransmissions = obs.NewCounter("reliable.transmissions")
	mAcks          = obs.NewCounter("reliable.acks")
	mRetrans       = obs.NewCounter("reliable.retransmissions")       // re-sends by nodes that already transmitted
	mRetransRounds = obs.NewCounter("reliable.retransmission_rounds") // rounds containing >= 1 retransmission
	mBackoffWaits  = obs.NewCounter("reliable.backoff_waits")         // sender-rounds sat out in exponential backoff
	mFFJumps       = obs.NewCounter("reliable.fastforward_jumps")     // idle-window jumps taken (faults.Oracle.NextUp)
	mFFRounds      = obs.NewCounter("reliable.fastforward_rounds")    // rounds those jumps skipped
	mDegraded      = obs.NewCounter("reliable.degraded")              // runs conceding degradation
)

// Result summarizes one reliable broadcast.
type Result struct {
	// Delivered reports whether every node received the packet.
	Delivered bool
	// Degraded reports that the run ended without full delivery because the
	// fault schedule severed the tree (or outlasted the retransmission
	// budget): no sender made progress for a long stretch, so the engine
	// gave up instead of spinning to MaxRounds. Only set under a fault
	// oracle; a severed tree is an operating condition there, not an error.
	Degraded bool
	// Transmissions counts data transmissions (retransmissions included).
	Transmissions int
	// Acks counts acknowledgement messages sent.
	Acks int
	// Rounds is the number of rounds until quiescence (or the cutoff).
	Rounds int
}

// Config tunes the run.
type Config struct {
	// Loss is the per-copy Bernoulli loss probability (0 = ideal radio).
	Loss float64
	// Seed drives the loss draws.
	Seed uint64
	// MaxRounds cuts off pathological runs (default 10·n, at least 100).
	MaxRounds int
	// Faults, when non-nil, injects the fault schedule (one oracle slot per
	// round): a crashed node neither transmits nor receives — its radio is
	// off but its packet memory survives the outage — and copies drop per
	// the oracle's link and loss-chain state. Senders whose copies keep
	// being lost back off exponentially (capped at 8 rounds between
	// retries) instead of retransmitting every round, and a run that makes
	// no progress for a long stretch returns Degraded instead of burning
	// rounds to the cutoff. nil leaves the classic behavior bit-identical.
	Faults faults.Model
	// NoFastForward disables the idle-window fast-forward (the jump over
	// rounds in which every outstanding sender is crashed or backing off,
	// available when Faults is a *faults.Oracle) and polls round by round
	// instead. Results are bit-identical either way — the flag exists as
	// the golden reference for the equivalence test and for timing the
	// savings.
	NoFastForward bool
	// Tracer, when non-nil, records retransmit events (one per re-send,
	// with the sender's outstanding-peer count) and a stall event if the
	// run concedes degradation. nil is the Nop default and costs one
	// predicted branch per round.
	Tracer *obs.Tracer
}

// Run performs one reliable broadcast of a packet originating at source
// over the forwarding tree t in graph g.
func Run(g *graph.Graph, t *fwdtree.Tree, source int, cfg Config) (*Result, error) {
	n := g.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("reliable: source %d out of range", source)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10 * n
		if maxRounds < 100 {
			maxRounds = 100
		}
	}
	loss := rng.NewLabeled(cfg.Seed, "reliable-loss")

	// children[v]: tree children of v.
	children := make(map[int][]int)
	for v, p := range t.Parent {
		children[p] = append(children[p], v)
	}
	// dominator[v]: for non-tree v, the lowest-ID tree neighbor, which is
	// responsible for v's delivery. responsible is its inverse.
	responsible := make(map[int][]int)
	dominator := make([]int, n)
	for v := 0; v < n; v++ {
		dominator[v] = -1
		if t.Nodes[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if t.Nodes[u] && (dominator[v] == -1 || u < dominator[v]) {
				dominator[v] = u
			}
		}
		if dominator[v] != -1 {
			responsible[dominator[v]] = append(responsible[dominator[v]], v)
		}
	}

	has := make([]bool, n)
	has[source] = true
	// confirmed[v][x]: v knows x holds the packet (x acked v, or v heard
	// the packet from x).
	confirmed := make([]map[int]bool, n)
	confirm := func(v, x int) {
		if confirmed[v] == nil {
			confirmed[v] = make(map[int]bool)
		}
		confirmed[v][x] = true
	}
	knows := func(v, x int) bool { return confirmed[v][x] }

	parentOf := func(v int) (int, bool) {
		p, ok := t.Parent[v]
		return p, ok
	}

	// wantsToSend reports whether v still owes somebody the packet.
	wantsToSend := func(v int) bool {
		if !has[v] {
			return false
		}
		if !t.Nodes[v] {
			// Off-tree holder (only ever the source): push until some tree
			// neighbor is known to hold the packet.
			if v != source {
				return false
			}
			for _, u := range g.Neighbors(v) {
				if t.Nodes[u] && knows(v, u) {
					return false
				}
			}
			return true
		}
		if p, ok := parentOf(v); ok && !knows(v, p) {
			return true // climb toward the root
		}
		for _, c := range children[v] {
			if !knows(v, c) {
				return true
			}
		}
		for _, w := range responsible[v] {
			if !knows(v, w) {
				return true
			}
		}
		return false
	}

	fo := cfg.Faults
	var attempts, nextTry []int
	if fo != nil {
		attempts = make([]int, n)
		nextTry = make([]int, n)
	}
	// Retransmission bookkeeping exists only when someone is watching:
	// sent[] and the stat locals feed the reliable.* counters and the
	// trace events, and an unobserved run allocates neither.
	tr := cfg.Tracer
	measure := tr != nil || obs.Enabled()
	var sent []bool
	if measure {
		sent = make([]bool, n)
	}
	var cRetrans, cRetransRounds, cBackoff, cFFJumps, cFFRounds int64
	// owes counts the peers v still has to reach — the retransmit events'
	// payload. Only called under a tracer.
	owes := func(v int) int {
		c := 0
		if !t.Nodes[v] {
			for _, u := range g.Neighbors(v) {
				if t.Nodes[u] && !knows(v, u) {
					c++
				}
			}
			return c
		}
		if p, ok := parentOf(v); ok && !knows(v, p) {
			c++
		}
		for _, x := range children[v] {
			if !knows(v, x) {
				c++
			}
		}
		for _, w := range responsible[v] {
			if !knows(v, w) {
				c++
			}
		}
		return c
	}
	ora, _ := fo.(*faults.Oracle)
	fastForward := ora != nil && !cfg.NoFastForward
	// stallRounds bounds how long a faulted run keeps retrying without a
	// single new delivery or acknowledgement before conceding degradation.
	// It comfortably exceeds the backoff cap (8) plus any realistic outage
	// the retransmission budget is meant to ride out.
	const stallRounds = 64

	res := &Result{}
	lastProgress := 0
	for round := 1; round <= maxRounds; round++ {
		var senders []int
		for v := 0; v < n; v++ {
			if !wantsToSend(v) {
				continue
			}
			if fo != nil {
				if !fo.NodeUp(v, round) {
					continue // crashed
				}
				if round < nextTry[v] {
					cBackoff++
					continue // backing off after lost retries
				}
			}
			senders = append(senders, v)
		}
		if len(senders) == 0 && fo == nil {
			break
		}
		if fo != nil && round-lastProgress > stallRounds {
			if tr != nil {
				uncovered := 0
				for v := 0; v < n; v++ {
					if !has[v] {
						uncovered++
					}
				}
				tr.Stall(round, uncovered)
			}
			break // nobody is getting through; the tree is severed
		}
		if len(senders) == 0 {
			// Everyone owed something is down or backing off; idle until a
			// sender can get back on the air. Quiescence under faults means
			// nobody *wants* to send at all.
			idle := true
			next := maxRounds + 1
			for v := 0; v < n; v++ {
				if !wantsToSend(v) {
					continue
				}
				idle = false
				if !fastForward {
					break
				}
				// v's first eligible round: past its backoff, then alive.
				r := round + 1
				if nextTry[v] > r {
					r = nextTry[v]
				}
				if r = ora.NextUp(v, r); r < next {
					next = r
				}
			}
			if idle {
				break
			}
			if fastForward {
				// Jump to the earliest eligible round — capped at the round
				// the stall check above would concede at, so a severed tree
				// still degrades at the identical point. Every skipped round
				// provably had no eligible sender, making the jump invisible
				// to the result.
				if cap := lastProgress + stallRounds + 1; next > cap {
					next = cap
				}
				if next > round+1 {
					cFFJumps++
					cFFRounds += int64(next - 1 - round)
					round = next - 1
				}
			}
			continue
		}
		res.Rounds = round
		retransInRound := false
		for _, s := range senders {
			res.Transmissions++
			if measure {
				if sent[s] {
					cRetrans++
					retransInRound = true
					if tr != nil {
						tr.Retransmit(round, s, owes(s))
					}
				}
				sent[s] = true
			}
			if fo != nil {
				attempts[s]++
				backoff := 1 << (attempts[s] - 1)
				if backoff > 8 {
					backoff = 8
				}
				nextTry[s] = round + backoff
			}
			for _, v := range g.Neighbors(s) {
				if loss.Bool(cfg.Loss) {
					continue
				}
				if fo != nil && (!fo.NodeUp(v, round) || !fo.LinkUp(s, v, round) ||
					fo.CopyLost(s, v, round)) {
					continue // receiver down, partitioned away, or a loss burst
				}
				if !has[v] {
					has[v] = true
					lastProgress = round
				}
				confirm(v, s) // hearing the packet from s proves s holds it
				// v acknowledges the senders that wait on it: its parent
				// pushing down, its dominator, its child pushing up, or an
				// off-tree source booting the dissemination.
				pv, okv := parentOf(v)
				ps, oks := parentOf(s)
				waiting := (okv && pv == s) || dominator[v] == s || (oks && ps == v) ||
					(s == source && !t.Nodes[source] && t.Nodes[v])
				if waiting && !knows(s, v) {
					confirm(s, v)
					res.Acks++
					lastProgress = round
					if fo != nil {
						attempts[s] = 0 // fresh progress resets the backoff
						nextTry[s] = 0
					}
				}
			}
		}
		if retransInRound {
			cRetransRounds++
		}
	}

	res.Delivered = true
	for v := 0; v < n; v++ {
		if !has[v] {
			res.Delivered = false
			break
		}
	}
	res.Degraded = fo != nil && !res.Delivered
	mRuns.Inc()
	mTransmissions.Add(int64(res.Transmissions))
	mAcks.Add(int64(res.Acks))
	mRetrans.Add(cRetrans)
	mRetransRounds.Add(cRetransRounds)
	mBackoffWaits.Add(cBackoff)
	mFFJumps.Add(cFFJumps)
	mFFRounds.Add(cFFRounds)
	if res.Degraded {
		mDegraded.Inc()
	}
	return res, nil
}
