// Package reliable implements reliable broadcast delivery over the
// cluster-based forwarding tree, after Pagani and Rossi (1999): the tree
// (clusterhead → gateway → clusterhead levels) gives every node a parent
// responsible for its delivery, so lost copies are repaired by
// retransmission instead of by flooding redundancy.
//
// The simulation model extends the repository's broadcast engine with
// acknowledgements. The packet first climbs from the source's attachment
// point to the tree root, then flows down every branch; in each round a
// tree node holding the packet retransmits while some peer it is
// responsible for — its unconfirmed tree children, its unconfirmed
// dominated (non-tree) neighbors, or a parent that has not yet been heard
// holding the packet — is outstanding. Per-copy loss is Bernoulli;
// acknowledgements are assumed reliable (short ARQ control frames in the
// real protocol).
package reliable

import (
	"fmt"

	"clustercast/internal/fwdtree"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// Result summarizes one reliable broadcast.
type Result struct {
	// Delivered reports whether every node received the packet.
	Delivered bool
	// Transmissions counts data transmissions (retransmissions included).
	Transmissions int
	// Acks counts acknowledgement messages sent.
	Acks int
	// Rounds is the number of rounds until quiescence (or the cutoff).
	Rounds int
}

// Config tunes the run.
type Config struct {
	// Loss is the per-copy Bernoulli loss probability (0 = ideal radio).
	Loss float64
	// Seed drives the loss draws.
	Seed uint64
	// MaxRounds cuts off pathological runs (default 10·n, at least 100).
	MaxRounds int
}

// Run performs one reliable broadcast of a packet originating at source
// over the forwarding tree t in graph g.
func Run(g *graph.Graph, t *fwdtree.Tree, source int, cfg Config) (*Result, error) {
	n := g.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("reliable: source %d out of range", source)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10 * n
		if maxRounds < 100 {
			maxRounds = 100
		}
	}
	loss := rng.NewLabeled(cfg.Seed, "reliable-loss")

	// children[v]: tree children of v.
	children := make(map[int][]int)
	for v, p := range t.Parent {
		children[p] = append(children[p], v)
	}
	// dominator[v]: for non-tree v, the lowest-ID tree neighbor, which is
	// responsible for v's delivery. responsible is its inverse.
	responsible := make(map[int][]int)
	dominator := make([]int, n)
	for v := 0; v < n; v++ {
		dominator[v] = -1
		if t.Nodes[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if t.Nodes[u] && (dominator[v] == -1 || u < dominator[v]) {
				dominator[v] = u
			}
		}
		if dominator[v] != -1 {
			responsible[dominator[v]] = append(responsible[dominator[v]], v)
		}
	}

	has := make([]bool, n)
	has[source] = true
	// confirmed[v][x]: v knows x holds the packet (x acked v, or v heard
	// the packet from x).
	confirmed := make([]map[int]bool, n)
	confirm := func(v, x int) {
		if confirmed[v] == nil {
			confirmed[v] = make(map[int]bool)
		}
		confirmed[v][x] = true
	}
	knows := func(v, x int) bool { return confirmed[v][x] }

	parentOf := func(v int) (int, bool) {
		p, ok := t.Parent[v]
		return p, ok
	}

	// wantsToSend reports whether v still owes somebody the packet.
	wantsToSend := func(v int) bool {
		if !has[v] {
			return false
		}
		if !t.Nodes[v] {
			// Off-tree holder (only ever the source): push until some tree
			// neighbor is known to hold the packet.
			if v != source {
				return false
			}
			for _, u := range g.Neighbors(v) {
				if t.Nodes[u] && knows(v, u) {
					return false
				}
			}
			return true
		}
		if p, ok := parentOf(v); ok && !knows(v, p) {
			return true // climb toward the root
		}
		for _, c := range children[v] {
			if !knows(v, c) {
				return true
			}
		}
		for _, w := range responsible[v] {
			if !knows(v, w) {
				return true
			}
		}
		return false
	}

	res := &Result{}
	for round := 1; round <= maxRounds; round++ {
		var senders []int
		for v := 0; v < n; v++ {
			if wantsToSend(v) {
				senders = append(senders, v)
			}
		}
		if len(senders) == 0 {
			break
		}
		res.Rounds = round
		for _, s := range senders {
			res.Transmissions++
			for _, v := range g.Neighbors(s) {
				if loss.Bool(cfg.Loss) {
					continue
				}
				has[v] = true
				confirm(v, s) // hearing the packet from s proves s holds it
				// v acknowledges the senders that wait on it: its parent
				// pushing down, its dominator, its child pushing up, or an
				// off-tree source booting the dissemination.
				pv, okv := parentOf(v)
				ps, oks := parentOf(s)
				waiting := (okv && pv == s) || dominator[v] == s || (oks && ps == v) ||
					(s == source && !t.Nodes[source] && t.Nodes[v])
				if waiting && !knows(s, v) {
					confirm(s, v)
					res.Acks++
				}
			}
		}
	}

	res.Delivered = true
	for v := 0; v < n; v++ {
		if !has[v] {
			res.Delivered = false
			break
		}
	}
	return res, nil
}
