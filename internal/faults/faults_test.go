package faults

import (
	"math"
	"testing"

	"clustercast/internal/geom"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"mtbf=200,mttr=50",
		"loss=0.2",
		"lg=0.05,lb=0.9,pgb=0.01,pbg=0.2",
		"mtbf=100,mttr=25,lg=0.1,part=5:20:x:50,part=30:40:y:25,warmup=100,seed=42",
	}
	for _, s := range cases {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", spec.String(), err)
		}
		if spec.String() != again.String() {
			t.Errorf("round trip of %q: %q != %q", s, spec.String(), again.String())
		}
	}
}

func TestParseSpecDefaultsAndErrors(t *testing.T) {
	spec, err := ParseSpec("mtbf=200")
	if err != nil {
		t.Fatal(err)
	}
	if spec.MeanDown != 50 {
		t.Errorf("default mttr = %g, want mtbf/4 = 50", spec.MeanDown)
	}
	if !spec.Enabled() {
		t.Error("churn spec should be enabled")
	}
	empty, err := ParseSpec("  ")
	if err != nil || empty.Enabled() {
		t.Errorf("blank spec: err=%v enabled=%v", err, empty.Enabled())
	}
	for _, bad := range []string{
		"nope=1", "mtbf", "loss=2", "pgb=0.1",
		"part=1:1:x:5", "part=1:2:z:5", "burst=0.5", "warmup=-3",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestSetBurstStationaryRate(t *testing.T) {
	var spec Spec
	if err := spec.SetBurst(0.2, 5); err != nil {
		t.Fatal(err)
	}
	// Stationary bad fraction pGB/(pGB+pBG) must equal the target rate.
	got := spec.PGoodBad / (spec.PGoodBad + spec.PBadGood)
	if math.Abs(got-0.2) > 1e-12 {
		t.Errorf("stationary loss = %g, want 0.2", got)
	}
	if spec.PBadGood != 0.2 {
		t.Errorf("mean burst length = %g, want 5", 1/spec.PBadGood)
	}
}

func TestNodeUpDeterministicAndOrderIndependent(t *testing.T) {
	spec := Spec{MeanUp: 40, MeanDown: 10, Seed: 99}
	a := New(spec, 20)
	b := New(spec, 20)
	// Query a forward, b in a scrambled order; answers must agree.
	type q struct{ v, t int }
	var qs []q
	for tm := 0; tm < 200; tm++ {
		for v := 0; v < 20; v++ {
			qs = append(qs, q{v, tm})
		}
	}
	want := make(map[q]bool, len(qs))
	for _, x := range qs {
		want[x] = a.NodeUp(x.v, x.t)
	}
	for i := len(qs) - 1; i >= 0; i-- {
		x := qs[i]
		if got := b.NodeUp(x.v, x.t); got != want[x] {
			t.Fatalf("NodeUp(%d, %d) order-dependent: %v vs %v", x.v, x.t, got, want[x])
		}
	}
	// And some churn must actually happen over 200 slots at MTBF 40.
	crashes, recoveries := a.Transitions(0, 200)
	if crashes == 0 || recoveries == 0 {
		t.Errorf("no churn over 200 slots: crashes=%d recoveries=%d", crashes, recoveries)
	}
}

func TestCopyLostChainIsSlotPure(t *testing.T) {
	var spec Spec
	if err := spec.SetBurst(0.3, 4); err != nil {
		t.Fatal(err)
	}
	spec.Seed = 7
	a := New(spec, 10)
	b := New(spec, 10)
	// Walk a forward through slots 0..99; then query b at the same slots.
	// First-copy answers must agree (the chain state is a pure function of
	// the slot).
	var want []bool
	for tm := 0; tm < 100; tm++ {
		want = append(want, a.CopyLost(1, 2, tm))
	}
	for tm := 0; tm < 100; tm++ {
		if got := b.CopyLost(1, 2, tm); got != want[tm] {
			t.Fatalf("CopyLost(1, 2, %d) diverges between oracles", tm)
		}
	}
	// Rewinding a reused oracle replays identically.
	for tm := 0; tm < 100; tm++ {
		if got := a.CopyLost(1, 2, tm); got != want[tm] {
			t.Fatalf("CopyLost(1, 2, %d) diverges after rewind", tm)
		}
	}
}

func TestGilbertElliottDegeneratesToIID(t *testing.T) {
	// With no transitions the chain never leaves the good state and
	// LossGood acts as an independent per-copy probability.
	spec := Spec{LossGood: 0.25, Seed: 3}
	o := New(spec, 2)
	lost, total := 0, 20000
	for tm := 0; tm < total; tm++ {
		if o.CopyLost(0, 1, tm) {
			lost++
		}
	}
	rate := float64(lost) / float64(total)
	if math.Abs(rate-0.25) > 0.01 {
		t.Errorf("i.i.d. loss rate = %g, want 0.25±0.01", rate)
	}
}

func TestBurstLossMatchesRateAndBurstiness(t *testing.T) {
	var spec Spec
	if err := spec.SetBurst(0.2, 8); err != nil {
		t.Fatal(err)
	}
	spec.Seed = 11
	o := New(spec, 2)
	const total = 60000
	lost, runs := 0, 0
	prev := false
	for tm := 0; tm < total; tm++ {
		l := o.CopyLost(0, 1, tm)
		if l {
			lost++
			if !prev {
				runs++
			}
		}
		prev = l
	}
	rate := float64(lost) / float64(total)
	if math.Abs(rate-0.2) > 0.02 {
		t.Errorf("burst loss rate = %g, want 0.2±0.02", rate)
	}
	meanBurst := float64(lost) / float64(runs)
	if meanBurst < 6 || meanBurst > 10 {
		t.Errorf("mean burst length = %g, want ≈8", meanBurst)
	}
}

func TestPartitionsCutCrossingLinksOnly(t *testing.T) {
	spec := Spec{Partitions: []Partition{{Start: 10, End: 20, Vertical: true, Coord: 50}}}
	o := New(spec, 3)
	o.SetPositions([]geom.Point{{X: 10, Y: 0}, {X: 90, Y: 0}, {X: 20, Y: 0}})
	if !o.LinkUp(0, 1, 5) {
		t.Error("link should be up before the window")
	}
	if o.LinkUp(0, 1, 10) || o.LinkUp(0, 1, 19) {
		t.Error("crossing link should be down inside the window")
	}
	if !o.LinkUp(0, 1, 20) {
		t.Error("link should be up at End (half-open window)")
	}
	if !o.LinkUp(0, 2, 15) {
		t.Error("same-side link should stay up")
	}
	// Without positions the partition clause is inert.
	o2 := New(spec, 3)
	if !o2.LinkUp(0, 1, 15) {
		t.Error("partition without positions should be ignored")
	}
}

func TestWarmupShiftsChurnNotPartitions(t *testing.T) {
	base := Spec{MeanUp: 30, MeanDown: 10, Seed: 5}
	warm := base
	warm.Warmup = 100
	a, b := New(base, 8), New(warm, 8)
	for v := 0; v < 8; v++ {
		for tm := 0; tm < 50; tm++ {
			if a.NodeUp(v, tm+100) != b.NodeUp(v, tm) {
				t.Fatalf("warmup shift broken at node %d slot %d", v, tm)
			}
		}
	}
	// Partition windows must not shift.
	spec := Spec{Warmup: 100, Partitions: []Partition{{Start: 0, End: 10, Vertical: true, Coord: 5}}}
	o := New(spec, 2)
	o.SetPositions([]geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	if o.LinkUp(0, 1, 5) {
		t.Error("partition window should apply at engine time 5 regardless of warmup")
	}
}

func TestNilOracleIsTransparent(t *testing.T) {
	var o *Oracle
	if !o.NodeUp(3, 7) || !o.LinkUp(1, 2, 7) || o.CopyLost(1, 2, 7) {
		t.Error("nil oracle must report everything healthy")
	}
	if c, r := o.Transitions(0, 100); c != 0 || r != 0 {
		t.Error("nil oracle must report no transitions")
	}
}

func TestAliveCountAndPredicateAgree(t *testing.T) {
	spec := Spec{MeanUp: 20, MeanDown: 20, Seed: 17}
	o := New(spec, 30)
	for _, tm := range []int{0, 13, 57, 200} {
		alive := o.Alive(tm)
		k := 0
		for v := 0; v < 30; v++ {
			if alive(v) {
				k++
			}
		}
		if k != o.AliveCount(tm) {
			t.Fatalf("slot %d: predicate count %d != AliveCount %d", tm, k, o.AliveCount(tm))
		}
	}
}

func TestTransitionsAreConsistentWithNodeUp(t *testing.T) {
	spec := Spec{MeanUp: 25, MeanDown: 15, Seed: 23}
	o := New(spec, 12)
	// Crashes minus recoveries over [0, T) must equal the number of nodes
	// that are down at T−ε... (toggle parity). Cross-check per-slot.
	o2 := New(spec, 12)
	for tm := 1; tm <= 150; tm++ {
		c, r := o.Transitions(tm-1, tm)
		downBefore, downAfter := 0, 0
		for v := 0; v < 12; v++ {
			if !o2.NodeUp(v, tm-1) {
				downBefore++
			}
		}
		for v := 0; v < 12; v++ {
			if !o2.NodeUp(v, tm) {
				downAfter++
			}
		}
		// Net flips between consecutive integer slots must match the
		// transition tally parity-wise (events inside (t−1, t] move state
		// observed at t).
		_ = c
		_ = r
		if downAfter-downBefore > c || downBefore-downAfter > r {
			t.Fatalf("slot %d: down %d→%d but transitions c=%d r=%d",
				tm, downBefore, downAfter, c, r)
		}
	}
}
