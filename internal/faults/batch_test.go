package faults

import (
	"math"
	"math/bits"
	"testing"

	"clustercast/internal/rng"
)

func TestBatchSupported(t *testing.T) {
	var iid Spec
	iid.LossGood = 0.2
	var burst Spec
	if err := burst.SetBurst(0.2, 4); err != nil {
		t.Fatal(err)
	}
	var churn Spec
	churn.MeanUp, churn.MeanDown = 100, 25
	var part Spec
	part.Partitions = []Partition{{Start: 0, End: 10, Coord: 500}}
	for _, tc := range []struct {
		name string
		spec Spec
		want bool
	}{
		{"zero", Spec{}, true},
		{"iid", iid, true},
		{"burst", burst, true},
		{"churn", churn, false},
		{"partition", part, false},
	} {
		if got := BatchSupported(tc.spec); got != tc.want {
			t.Errorf("%s: BatchSupported = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestChainBatchDeterministicAndReplayable: words are a pure function of
// (spec, link, slot) — a second batch and a behind-the-memo requery agree.
func TestChainBatchDeterministicAndReplayable(t *testing.T) {
	var spec Spec
	if err := spec.SetBurst(0.3, 4); err != nil {
		t.Fatal(err)
	}
	spec.Seed = 99
	b1 := NewChainBatch(spec)
	b2 := NewChainBatch(spec)
	var forward []uint64
	for s := 0; s < 50; s++ {
		forward = append(forward, b1.LossWord(3, 7, s))
	}
	// Fresh batch, reverse query order: replay-from-zero must reproduce.
	for s := 49; s >= 0; s-- {
		if w := b2.LossWord(3, 7, s); w != forward[s] {
			t.Fatalf("slot %d: reverse query %#x != forward %#x", s, w, forward[s])
		}
	}
	// Behind-the-memo requery on the same batch.
	if w := b1.LossWord(3, 7, 10); w != forward[10] {
		t.Fatalf("requery slot 10: %#x != %#x", w, forward[10])
	}
}

// TestChainBatchWarmupShifts: a warmed-up spec observes the same process
// shifted by Warmup slots.
func TestChainBatchWarmupShifts(t *testing.T) {
	var spec Spec
	if err := spec.SetBurst(0.25, 6); err != nil {
		t.Fatal(err)
	}
	spec.Seed = 7
	cold := NewChainBatch(spec)
	spec.Warmup = 500
	warm := NewChainBatch(spec)
	for s := 0; s < 40; s++ {
		if got, want := warm.LossWord(1, 2, s), cold.LossWord(1, 2, s+500); got != want {
			t.Fatalf("slot %d: warm %#x != cold-shifted %#x", s, got, want)
		}
	}
}

// TestLaneModelMatchesWord: the scalar lane view is exactly bit r of the
// batch word — the contract the equivalence suite rests on.
func TestLaneModelMatchesWord(t *testing.T) {
	var spec Spec
	if err := spec.SetBurst(0.2, 4); err != nil {
		t.Fatal(err)
	}
	spec.Seed = 11
	batch := NewChainBatch(spec)
	ref := NewChainBatch(spec)
	for s := 0; s < 30; s++ {
		w := batch.LossWord(0, 1, s)
		for r := 0; r < 64; r++ {
			m := LaneModel{Batch: ref, Lane: r}
			if m.CopyLost(0, 1, s) != rng.Lane(w, r) {
				t.Fatalf("slot %d lane %d mismatch", s, r)
			}
		}
	}
	m := LaneModel{Batch: ref}
	if !m.NodeUp(0, 3) || !m.LinkUp(0, 1, 3) {
		t.Fatal("LaneModel must report all nodes and links up")
	}
}

// TestChainBatchIIDRate: the static (no-transition) path delivers i.i.d.
// loss at the configured rate.
func TestChainBatchIIDRate(t *testing.T) {
	spec := Spec{LossGood: 0.3, Seed: 5}
	b := NewChainBatch(spec)
	const slots = 20000
	total := 0
	for s := 0; s < slots; s++ {
		total += bits.OnesCount64(b.LossWord(0, 1, s))
	}
	got := float64(total) / (64 * slots)
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("iid loss rate %g, want ~0.3", got)
	}
}

// geStats folds a loss sequence into (loss rate, mean burst length).
type geStats struct {
	slots, lost, runs, runLen int
}

func (g *geStats) observe(lost bool) {
	g.slots++
	if lost {
		g.lost++
		if g.runLen == 0 {
			g.runs++
		}
		g.runLen++
	} else {
		g.runLen = 0
	}
}

func (g *geStats) rate() float64 { return float64(g.lost) / float64(g.slots) }
func (g *geStats) meanBurst() float64 {
	if g.runs == 0 {
		return 0
	}
	return float64(g.lost) / float64(g.runs)
}

// TestOracleGilbertElliottStationary is the statistical validation of the
// scalar chain: under SetBurst(p, L) the long-run empirical loss rate must
// converge to p and the mean length of consecutive-loss runs to L (the bad
// state always loses and sojourns are geometric with mean L).
func TestOracleGilbertElliottStationary(t *testing.T) {
	const slots = 200000
	for _, tc := range []struct{ p, L float64 }{
		{0.1, 4}, {0.3, 8}, {0.2, 1},
	} {
		var spec Spec
		if err := spec.SetBurst(tc.p, tc.L); err != nil {
			t.Fatal(err)
		}
		spec.Seed = 20260808
		o := New(spec, 2)
		var g geStats
		for s := 0; s < slots; s++ {
			g.observe(o.CopyLost(0, 1, s))
		}
		if math.Abs(g.rate()-tc.p) > 0.05*tc.p+0.01 {
			t.Errorf("(p=%g, L=%g): loss rate %g", tc.p, tc.L, g.rate())
		}
		if math.Abs(g.meanBurst()-tc.L) > 0.15*tc.L+0.1 {
			t.Errorf("(p=%g, L=%g): mean burst %g", tc.p, tc.L, g.meanBurst())
		}
	}
}

// TestChainBatchStationary: every lane of the 64-wide chain follows the
// same stationary law as the scalar chain.
func TestChainBatchStationary(t *testing.T) {
	const slots = 20000
	for _, tc := range []struct{ p, L float64 }{
		{0.1, 4}, {0.3, 8},
	} {
		var spec Spec
		if err := spec.SetBurst(tc.p, tc.L); err != nil {
			t.Fatal(err)
		}
		spec.Seed = 31337
		b := NewChainBatch(spec)
		var lanes [64]geStats
		for s := 0; s < slots; s++ {
			w := b.LossWord(0, 1, s)
			for r := 0; r < 64; r++ {
				lanes[r].observe(rng.Lane(w, r))
			}
		}
		var agg geStats
		for r := 0; r < 64; r++ {
			agg.slots += lanes[r].slots
			agg.lost += lanes[r].lost
			agg.runs += lanes[r].runs
		}
		if math.Abs(agg.rate()-tc.p) > 0.05*tc.p+0.005 {
			t.Errorf("(p=%g, L=%g): aggregate loss rate %g", tc.p, tc.L, agg.rate())
		}
		if math.Abs(agg.meanBurst()-tc.L) > 0.1*tc.L+0.05 {
			t.Errorf("(p=%g, L=%g): aggregate mean burst %g", tc.p, tc.L, agg.meanBurst())
		}
		// And no individual lane far off the rate (loose per-lane band).
		for r := 0; r < 64; r++ {
			if math.Abs(lanes[r].rate()-tc.p) > 0.5*tc.p {
				t.Errorf("(p=%g, L=%g) lane %d: loss rate %g", tc.p, tc.L, r, lanes[r].rate())
			}
		}
	}
}
