// Package faults injects deterministic failures into the simulation: node
// crash/recovery churn, Gilbert–Elliott bursty per-link loss, and scripted
// area partitions. The broadcast engines, the reliable layer and the repair
// pass consult a single Oracle for the link/node state of every time slot,
// so one fault schedule composes with every protocol under test.
//
// Everything is derived from Spec.Seed: the same spec and seed reproduce
// the same crash timelines and loss bursts bit for bit, regardless of how
// many worker goroutines drive the replication (each replicate owns its own
// Oracle, exactly like the engines' workspaces).
//
// The Gilbert–Elliott channel is a strict generalization of the engines'
// i.i.d. Bernoulli loss: with PGoodBad == PBadGood == 0 the chain never
// leaves the good state and LossGood is an independent per-copy loss
// probability, identical in distribution to broadcast.Options.Loss.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Partition scripts one area split: while active, every link crossing the
// cut line is down. Node state is unaffected (nodes keep running on both
// sides; they just cannot hear across the cut).
type Partition struct {
	// Start and End bound the active window in engine time slots:
	// the partition is up for Start <= t < End.
	Start, End int
	// Vertical selects the cut axis: a vertical line x == Coord when true,
	// a horizontal line y == Coord when false.
	Vertical bool
	// Coord is the cut coordinate.
	Coord float64
}

// Spec declares a fault schedule. The zero value injects nothing.
type Spec struct {
	// MeanUp and MeanDown parameterize node churn: each node alternates
	// exponentially distributed up and down periods with these means (in
	// time slots), drawn from its own seeded stream. MeanUp <= 0 disables
	// churn.
	MeanUp   float64
	MeanDown float64

	// LossGood and LossBad are the per-copy loss probabilities of the
	// Gilbert–Elliott link channel in its good and bad state. PGoodBad and
	// PBadGood are the per-slot transition probabilities good→bad and
	// bad→good. Every link runs its own chain, starting good.
	LossGood float64
	LossBad  float64
	PGoodBad float64
	PBadGood float64

	// Partitions lists scripted area splits (needs node positions).
	Partitions []Partition

	// Warmup shifts the churn timelines and loss chains forward by this
	// many slots, so a broadcast starting at engine time 0 observes the
	// processes in steady state rather than the everyone-up, all-good
	// initial condition. Partition windows are not shifted: they script
	// the broadcast timeline directly.
	Warmup int

	// Seed drives every draw the oracle makes.
	Seed uint64
}

// Enabled reports whether the spec injects any fault at all.
func (s *Spec) Enabled() bool {
	return s.MeanUp > 0 || s.LossGood > 0 || s.PGoodBad > 0 || len(s.Partitions) > 0
}

// SetBurst configures the link channel as a classic two-parameter
// Gilbert–Elliott burst model: mean loss rate p with mean burst length
// burstLen slots (the bad state always loses, the good state never does).
// burstLen == 1 degenerates to i.i.d. loss of rate p.
func (s *Spec) SetBurst(p, burstLen float64) error {
	if p < 0 || p >= 1 {
		return fmt.Errorf("faults: burst loss rate %g out of [0, 1)", p)
	}
	if burstLen < 1 {
		return fmt.Errorf("faults: burst length %g < 1", burstLen)
	}
	s.LossGood, s.LossBad = 0, 1
	s.PBadGood = 1 / burstLen
	// Stationary bad fraction pGB/(pGB+pBG) must equal p.
	s.PGoodBad = s.PBadGood * p / (1 - p)
	return nil
}

// Validate checks the spec's parameter ranges.
func (s *Spec) Validate() error {
	if s.MeanUp > 0 && s.MeanDown <= 0 {
		return fmt.Errorf("faults: churn needs MeanDown > 0 (got %g)", s.MeanDown)
	}
	for _, p := range [...]struct {
		name string
		v    float64
	}{
		{"LossGood", s.LossGood}, {"LossBad", s.LossBad},
		{"PGoodBad", s.PGoodBad}, {"PBadGood", s.PBadGood},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s = %g out of [0, 1]", p.name, p.v)
		}
	}
	if s.PGoodBad > 0 && s.PBadGood == 0 {
		return fmt.Errorf("faults: PGoodBad > 0 with PBadGood == 0 traps every link in the bad state")
	}
	for _, pt := range s.Partitions {
		if pt.End <= pt.Start {
			return fmt.Errorf("faults: partition window [%d, %d) is empty", pt.Start, pt.End)
		}
	}
	if s.Warmup < 0 {
		return fmt.Errorf("faults: negative warmup %d", s.Warmup)
	}
	return nil
}

// String renders the spec in the canonical flag grammar ParseSpec accepts.
func (s *Spec) String() string {
	var parts []string
	add := func(k string, v float64) { parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64)) }
	if s.MeanUp > 0 {
		add("mtbf", s.MeanUp)
		add("mttr", s.MeanDown)
	}
	if s.LossGood > 0 {
		add("lg", s.LossGood)
	}
	if s.LossBad > 0 {
		add("lb", s.LossBad)
	}
	if s.PGoodBad > 0 {
		add("pgb", s.PGoodBad)
	}
	if s.PBadGood > 0 {
		add("pbg", s.PBadGood)
	}
	for _, pt := range s.Partitions {
		axis := "y"
		if pt.Vertical {
			axis = "x"
		}
		parts = append(parts, fmt.Sprintf("part=%d:%d:%s:%s",
			pt.Start, pt.End, axis, strconv.FormatFloat(pt.Coord, 'g', -1, 64)))
	}
	if s.Warmup > 0 {
		parts = append(parts, "warmup="+strconv.Itoa(s.Warmup))
	}
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(s.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the comma-separated key=value fault grammar used by the
// -faults CLI flags:
//
//	mtbf=F     mean up time between crashes (slots); enables churn
//	mttr=F     mean down time until recovery (default mtbf/4)
//	loss=F     i.i.d. per-copy loss probability (LossGood=F, no transitions)
//	burst=F:L  bursty loss: mean rate F with mean burst length L slots
//	lg= lb= pgb= pbg=   raw Gilbert–Elliott parameters
//	part=T0:T1:x|y:C    scripted partition cutting at x==C (or y==C)
//	warmup=N   start the churn/loss processes N slots in
//	seed=N     fault seed (default 0; callers usually mix in their run seed)
//
// An empty string parses to the disabled zero Spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	mttrSet := false
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return spec, fmt.Errorf("faults: bad field %q (want key=value)", field)
		}
		num := func() (float64, error) { return strconv.ParseFloat(val, 64) }
		var err error
		switch key {
		case "mtbf":
			spec.MeanUp, err = num()
		case "mttr":
			spec.MeanDown, err = num()
			mttrSet = true
		case "loss":
			spec.LossGood, err = num()
		case "lg":
			spec.LossGood, err = num()
		case "lb":
			spec.LossBad, err = num()
		case "pgb":
			spec.PGoodBad, err = num()
		case "pbg":
			spec.PBadGood, err = num()
		case "burst":
			p, l, ok := strings.Cut(val, ":")
			if !ok {
				return spec, fmt.Errorf("faults: burst wants rate:length, got %q", val)
			}
			var pf, lf float64
			if pf, err = strconv.ParseFloat(p, 64); err == nil {
				if lf, err = strconv.ParseFloat(l, 64); err == nil {
					err = spec.SetBurst(pf, lf)
				}
			}
		case "part":
			var pt Partition
			pt, err = parsePartition(val)
			spec.Partitions = append(spec.Partitions, pt)
		case "warmup":
			spec.Warmup, err = strconv.Atoi(val)
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return spec, fmt.Errorf("faults: unknown field %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("faults: field %q: %w", field, err)
		}
	}
	if spec.MeanUp > 0 && !mttrSet {
		spec.MeanDown = spec.MeanUp / 4
	}
	sortPartitions(spec.Partitions)
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// parsePartition parses one T0:T1:x|y:C partition clause.
func parsePartition(val string) (Partition, error) {
	var pt Partition
	fields := strings.Split(val, ":")
	if len(fields) != 4 {
		return pt, fmt.Errorf("want t0:t1:x|y:coord, got %q", val)
	}
	var err error
	if pt.Start, err = strconv.Atoi(fields[0]); err != nil {
		return pt, err
	}
	if pt.End, err = strconv.Atoi(fields[1]); err != nil {
		return pt, err
	}
	switch fields[2] {
	case "x":
		pt.Vertical = true
	case "y":
		pt.Vertical = false
	default:
		return pt, fmt.Errorf("axis %q is neither x nor y", fields[2])
	}
	if pt.Coord, err = strconv.ParseFloat(fields[3], 64); err != nil {
		return pt, err
	}
	return pt, nil
}

// sortPartitions orders partitions by start time (stable presentation for
// String; the oracle scans all of them anyway).
func sortPartitions(ps []Partition) {
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
}
