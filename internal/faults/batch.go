package faults

import "clustercast/internal/rng"

// Model is the per-slot fault interface the broadcast engines consult. The
// scalar *Oracle implements it (with nil-receiver-safe methods, so a typed
// nil injects nothing), and LaneModel implements it as the single-lane view
// of a 64-wide ChainBatch — which is how the batch/scalar equivalence suite
// runs the real dense engine against exactly the coins the batched kernels
// consume.
type Model interface {
	// NodeUp reports whether node v is alive in slot t.
	NodeUp(v, t int) bool
	// LinkUp reports whether the (u, v) link is up in slot t.
	LinkUp(u, v, t int) bool
	// CopyLost draws the per-copy loss coin for a transmission from u
	// heard by v in slot t.
	CopyLost(u, v, t int) bool
}

var _ Model = (*Oracle)(nil)

// BatchSupported reports whether the spec can drive the 64-wide replication
// path: pure link loss (i.i.d. or Gilbert–Elliott, warmup included). Node
// churn and scripted partitions change the engine's control flow per lane
// and stay on the scalar path.
func BatchSupported(spec Spec) bool {
	return spec.MeanUp <= 0 && len(spec.Partitions) == 0
}

// Coin identity domains of the batched randomness. Every batch coin is a
// pure function of (Spec.Seed, key, slot, domain) via the lane-indexed
// generator in internal/rng — no stream state — so the 64-wide kernels and
// a scalar lane-r reference read the very same words. The domains keep the
// identity spaces disjoint:
//
//	chain transitions use the undirected link key (one chain per link,
//	as in the scalar oracle); per-copy loss uses the *directed* key, so
//	the u→v and v→u copies of one slot draw independent coins. Covered
//	protocols transmit at most once per node per broadcast, so a
//	(directed link, slot) pair names at most one copy and no per-copy
//	query counter is needed.
const (
	domChainGB = 1 // good→bad transition coin, undirected link key
	domChainBG = 2 // bad→good transition coin, undirected link key
	domLossG   = 3 // per-copy loss coin in the good state, directed key
	domLossB   = 4 // per-copy loss coin in the bad state, directed key
)

// dirKey names a directed link.
func dirKey(u, v int) uint64 { return uint64(u)<<32 | uint64(v) }

// laneChain is the memoized 64-lane Gilbert–Elliott state of one undirected
// link: bit r of bad is lane r's channel state.
type laneChain struct {
	slot int
	bad  uint64
}

// ChainBatch advances 64 independent Gilbert–Elliott chains per link, one
// lane per replicate, and answers 64-wide per-copy loss queries. Like the
// scalar oracle it memoizes lazily per link and replays from slot zero when
// queried behind the memo — every answer is a pure function of
// (Spec, link, slot). Single-goroutine state; one per worker.
type ChainBatch struct {
	spec   Spec
	links  map[uint64]*laneChain
	static bool // no transitions: every lane stays in the good state
}

// NewChainBatch builds the 64-lane chain set for a spec (the caller is
// expected to have checked BatchSupported).
func NewChainBatch(spec Spec) *ChainBatch {
	return &ChainBatch{
		spec:   spec,
		links:  make(map[uint64]*laneChain),
		static: spec.PGoodBad <= 0,
	}
}

// Spec returns the schedule the batch was built from.
func (b *ChainBatch) Spec() Spec { return b.spec }

// chainWord returns the 64-lane bad-state word of the (u, v) link at the
// absolute slot (warmup already applied by the caller).
func (b *ChainBatch) chainWord(key uint64, slot int) uint64 {
	ch := b.links[key]
	if ch == nil {
		ch = &laneChain{}
		b.links[key] = ch
	}
	if slot < ch.slot {
		// Behind the memo (a lane-reference rerun): replay from zero.
		*ch = laneChain{}
	}
	for ch.slot < slot {
		s := uint64(ch.slot)
		flipGB := rng.BernoulliWord(b.spec.PGoodBad, b.spec.Seed, key, s, domChainGB)
		flipBG := rng.BernoulliWord(b.spec.PBadGood, b.spec.Seed, key, s, domChainBG)
		// Good lanes flip on their good→bad coin, bad lanes on bad→good:
		// each lane consumes only the coin matching its state, so every
		// lane follows the exact scalar transition law.
		ch.bad = (ch.bad &^ flipBG) | (^ch.bad & flipGB)
		ch.slot++
	}
	return ch.bad
}

// LossWord returns the 64-lane per-copy loss word for a transmission from u
// heard by v in slot t: bit r set means lane r's copy is lost. The
// Gilbert–Elliott chain of the undirected link decides each lane's loss
// probability; the copy coin itself is keyed by the directed link.
func (b *ChainBatch) LossWord(u, v, t int) uint64 {
	slot := uint64(t + b.spec.Warmup)
	key := dirKey(u, v)
	if b.static {
		// i.i.d. loss: no chain to advance, one Bernoulli word per copy.
		if b.spec.LossGood <= 0 {
			return 0
		}
		return rng.BernoulliWord(b.spec.LossGood, b.spec.Seed, key, slot, domLossG)
	}
	bad := b.chainWord(linkKey(u, v), t+b.spec.Warmup)
	if b.spec.LossGood <= 0 && b.spec.LossBad >= 1 {
		// The SetBurst family: the bad state always loses, the good state
		// never does — the chain word is the loss word.
		return bad
	}
	var lost uint64
	if b.spec.LossGood > 0 {
		lost |= ^bad & rng.BernoulliWord(b.spec.LossGood, b.spec.Seed, key, slot, domLossG)
	}
	if b.spec.LossBad > 0 {
		lost |= bad & rng.BernoulliWord(b.spec.LossBad, b.spec.Seed, key, slot, domLossB)
	}
	return lost
}

// LaneModel is the scalar, single-lane view of a ChainBatch: lane r of
// every coin word the batched kernels read, exposed through the Model
// interface so the unmodified dense engine can replay exactly one replicate
// of a 64-wide batch. This is the reference side of the batch/scalar
// equivalence suite.
type LaneModel struct {
	Batch *ChainBatch
	Lane  int
}

// NodeUp always reports alive: batch specs carry no churn.
func (m LaneModel) NodeUp(v, t int) bool { return true }

// LinkUp always reports up: batch specs carry no partitions.
func (m LaneModel) LinkUp(u, v, t int) bool { return true }

// CopyLost extracts this lane's bit of the batch loss word.
func (m LaneModel) CopyLost(u, v, t int) bool {
	return rng.Lane(m.Batch.LossWord(u, v, t), m.Lane)
}
