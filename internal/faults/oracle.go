package faults

import (
	"math"
	"sort"

	"clustercast/internal/geom"
	"clustercast/internal/obs"
	"clustercast/internal/rng"
)

// Fault metrics, folded when Transitions tallies a window.
var (
	mCrashes    = obs.NewCounter("faults.crashes")
	mRecoveries = obs.NewCounter("faults.recoveries")
)

// Oracle answers per-slot node and link state queries for one fault
// schedule. It memoizes lazily: churn timelines extend on demand per node,
// and each link's loss chain advances slot by slot as it is queried. All
// state is a pure function of (Spec, node/link, slot) — the per-slot
// transition coins are hashed, not streamed — so query order never changes
// an answer. An oracle is single-goroutine state, like the engine
// workspaces it rides along with; replication gives each replicate its own.
type Oracle struct {
	spec Spec
	n    int
	pos  []geom.Point

	churn []nodeChurn
	links map[uint64]*linkChain

	lossy bool // any nonzero loss parameter
}

// nodeChurn is one node's lazily extended up/down timeline: toggles[i] is
// the time of the i-th state flip, the node starts up, so it is up on
// [0, toggles[0]), down on [toggles[0], toggles[1]), and so on.
type nodeChurn struct {
	r       *rng.Stream
	toggles []float64
	idx     int // cursor of the last lookup (queries are nearly monotone)
}

// linkChain is the memoized Gilbert–Elliott state of one undirected link.
type linkChain struct {
	slot int    // absolute slot the chain has advanced to
	bad  bool   // current channel state
	nq   uint64 // per-copy query counter within the current slot
}

// New builds an oracle for n nodes under the given spec. Specs with
// partitions also need SetPositions before link queries.
func New(spec Spec, n int) *Oracle {
	o := &Oracle{
		spec:  spec,
		n:     n,
		lossy: spec.LossGood > 0 || (spec.PGoodBad > 0 && spec.LossBad > 0),
	}
	if spec.MeanUp > 0 {
		o.churn = make([]nodeChurn, n)
	}
	if o.lossy {
		o.links = make(map[uint64]*linkChain)
	}
	return o
}

// SetPositions attaches node coordinates, which scripted partitions need to
// decide which side of the cut each endpoint is on. Partition clauses are
// ignored until positions are set.
func (o *Oracle) SetPositions(pos []geom.Point) { o.pos = pos }

// Spec returns the schedule the oracle was built from.
func (o *Oracle) Spec() Spec { return o.spec }

// N returns the node count the oracle serves.
func (o *Oracle) N() int { return o.n }

// mix64 is the splitmix64/murmur finalizer used to hash coin identities.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// coin maps a (seed, a, b, c) identity to a uniform float64 in [0, 1).
func coin(seed, a, b, c uint64) float64 {
	h := mix64(seed ^ mix64(a*0x9E3779B97F4A7C15^b) ^ c*0xFF51AFD7ED558CCD)
	return float64(h>>11) / (1 << 53)
}

// extendChurn grows v's toggle timeline until it covers absolute time T.
func (o *Oracle) extendChurn(v int, T float64) *nodeChurn {
	c := &o.churn[v]
	if c.r == nil {
		c.r = rng.NewLabeled(o.spec.Seed^uint64(v)*0x9E3779B97F4A7C15, "faults-churn")
	}
	for len(c.toggles) == 0 || c.toggles[len(c.toggles)-1] <= T {
		last := 0.0
		if len(c.toggles) > 0 {
			last = c.toggles[len(c.toggles)-1]
		}
		var mean float64
		if len(c.toggles)%2 == 0 {
			mean = o.spec.MeanUp // currently up: draw time to the next crash
		} else {
			mean = o.spec.MeanDown
		}
		d := c.r.ExpFloat64() * mean
		if d < 1e-9 {
			d = 1e-9 // a zero-length period would stall the extension loop
		}
		c.toggles = append(c.toggles, last+d)
	}
	return c
}

// NodeUp reports whether node v is alive in slot t. Without churn every
// node is always up.
func (o *Oracle) NodeUp(v, t int) bool {
	if o == nil || o.churn == nil {
		return true
	}
	T := float64(t + o.spec.Warmup)
	c := o.extendChurn(v, T)
	// Count toggles at or before T, resuming from the last cursor: engine
	// queries move forward a slot at a time, so this is O(1) amortized.
	i := c.idx
	if i > len(c.toggles) {
		i = len(c.toggles)
	}
	for i > 0 && c.toggles[i-1] > T {
		i--
	}
	for i < len(c.toggles) && c.toggles[i] <= T {
		i++
	}
	c.idx = i
	return i%2 == 0
}

// NextUp returns the first slot r ≥ t in which node v is alive (t itself
// when it already is, or always, absent a churn schedule). Like NodeUp
// the answer is a pure function of (spec, v, r), so engines can use it to
// fast-forward over an outage instead of polling NodeUp slot by slot.
func (o *Oracle) NextUp(v, t int) int {
	if o == nil || o.churn == nil {
		return t
	}
	for {
		T := float64(t + o.spec.Warmup)
		c := o.extendChurn(v, T)
		i := c.idx
		if i > len(c.toggles) {
			i = len(c.toggles)
		}
		for i > 0 && c.toggles[i-1] > T {
			i--
		}
		for i < len(c.toggles) && c.toggles[i] <= T {
			i++
		}
		c.idx = i
		if i%2 == 0 {
			return t
		}
		// Down on [toggles[i-1], toggles[i]): the next chance is the first
		// slot whose absolute time reaches the recovery toggle. Loop in case
		// a sub-slot up period has already ended again by then.
		nt := int(math.Ceil(c.toggles[i])) - o.spec.Warmup
		if nt <= t {
			nt = t + 1
		}
		t = nt
	}
}

// LinkUp reports whether the (u, v) link is up in slot t — false only while
// a scripted partition separates the endpoints. Loss is separate: a link
// can be up and still drop a copy (CopyLost).
func (o *Oracle) LinkUp(u, v, t int) bool {
	if o == nil || len(o.spec.Partitions) == 0 || o.pos == nil {
		return true
	}
	pu, pv := o.pos[u], o.pos[v]
	for _, pt := range o.spec.Partitions {
		if t < pt.Start || t >= pt.End {
			continue
		}
		var cu, cv float64
		if pt.Vertical {
			cu, cv = pu.X, pv.X
		} else {
			cu, cv = pu.Y, pv.Y
		}
		if (cu < pt.Coord) != (cv < pt.Coord) {
			return false
		}
	}
	return true
}

// linkKey canonicalizes an undirected link.
func linkKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// chainAt advances (or rebuilds) the link's chain to the absolute slot.
func (o *Oracle) chainAt(key uint64, slot int) *linkChain {
	ch := o.links[key]
	if ch == nil {
		ch = &linkChain{}
		o.links[key] = ch
	}
	if slot < ch.slot {
		// Queried behind the memo (a fresh engine run on a reused oracle):
		// the chain is a pure function of the slot, so replay from zero.
		*ch = linkChain{}
	}
	for ch.slot < slot {
		p := o.spec.PGoodBad
		if ch.bad {
			p = o.spec.PBadGood
		}
		if coin(o.spec.Seed, key, uint64(ch.slot), 1) < p {
			ch.bad = !ch.bad
		}
		ch.slot++
		ch.nq = 0
	}
	return ch
}

// CopyLost draws the per-copy loss coin for a transmission from u heard by
// v in slot t: the Gilbert–Elliott chain of the (u, v) link decides the
// loss probability, and each copy in a slot gets its own coin.
func (o *Oracle) CopyLost(u, v, t int) bool {
	if o == nil || o.links == nil {
		return false
	}
	key := linkKey(u, v)
	ch := o.chainAt(key, t+o.spec.Warmup)
	p := o.spec.LossGood
	if ch.bad {
		p = o.spec.LossBad
	}
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	q := ch.nq
	ch.nq++
	return coin(o.spec.Seed, key, uint64(ch.slot), 2+q) < p
}

// Transitions counts the crash and recovery events across all nodes in the
// engine-slot window [t0, t1), folding them into the fault counters.
func (o *Oracle) Transitions(t0, t1 int) (crashes, recoveries int) {
	if o == nil || o.churn == nil {
		return 0, 0
	}
	lo, hi := float64(t0+o.spec.Warmup), float64(t1+o.spec.Warmup)
	for v := 0; v < o.n; v++ {
		c := o.extendChurn(v, hi)
		for i, tt := range c.toggles {
			if tt < lo {
				continue
			}
			if tt >= hi {
				break
			}
			if i%2 == 0 {
				crashes++
			} else {
				recoveries++
			}
		}
	}
	mCrashes.Add(int64(crashes))
	mRecoveries.Add(int64(recoveries))
	return crashes, recoveries
}

// TraceTransitions emits node-crash / node-recover trace events for the
// engine-slot window [t0, t1), in (time, node) order.
func (o *Oracle) TraceTransitions(tr *obs.Tracer, t0, t1 int) {
	if o == nil || o.churn == nil || tr == nil {
		return
	}
	lo, hi := float64(t0+o.spec.Warmup), float64(t1+o.spec.Warmup)
	type ev struct {
		t     float64
		v     int
		crash bool
	}
	var evs []ev
	for v := 0; v < o.n; v++ {
		c := o.extendChurn(v, hi)
		for i, tt := range c.toggles {
			if tt < lo {
				continue
			}
			if tt >= hi {
				break
			}
			evs = append(evs, ev{t: tt, v: v, crash: i%2 == 0})
		}
	}
	// Stable (time, node) order regardless of the per-node scan above.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].v < evs[j].v
	})
	for _, e := range evs {
		slot := int(e.t) - o.spec.Warmup
		if e.crash {
			tr.NodeCrash(slot, e.v)
		} else {
			tr.NodeRecover(slot, e.v)
		}
	}
}

// Alive returns the liveness predicate of slot t, in the form
// backbone.Repair consumes.
func (o *Oracle) Alive(t int) func(int) bool {
	return func(v int) bool { return o.NodeUp(v, t) }
}

// AliveCount counts the nodes alive in slot t.
func (o *Oracle) AliveCount(t int) int {
	if o == nil || o.churn == nil {
		return o.n
	}
	k := 0
	for v := 0; v < o.n; v++ {
		if o.NodeUp(v, t) {
			k++
		}
	}
	return k
}
