package broadcast

import (
	"clustercast/internal/des"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// Workspace owns the dense per-node state of the broadcast engine:
// epoch-stamped reception/forwarding marks, parent pointers, the per-node
// acted-payload lists and the FIFO transmission queue. One workspace run
// replaces the four maps of the legacy engine — at 10k+ nodes the map
// operations (hashing, bucket probing, incremental growth) dominate the
// whole broadcast simulation, while the dense engine touches each node's
// state by direct index and clears between broadcasts with a single epoch
// bump.
//
// A workspace is not safe for concurrent use; give each worker its own.
type Workspace struct {
	epoch     uint32
	received  []uint32 // epoch stamp: v has the packet
	forwarded []uint32 // epoch stamp: v transmitted
	actedAt   []uint32 // epoch stamp: acted[v] is current
	parent    []int    // first-delivery sender, valid when received
	acted     [][]Packet
	queue     []transmission
	wheel     des.Wheel[transmission] // RunDESOpts event calendar
	res       WSResult
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// WSResult is the dense, allocation-free result of a workspace broadcast.
// It is owned by the workspace and valid only until the workspace's next
// Run; call Materialize for an independent map-based Result.
type WSResult struct {
	Source     int
	Latency    int
	Duplicates int
	nReceived  int
	nForward   int
	ws         *Workspace
}

// ForwardCount returns the size of the forward node set (including the
// source), the paper's Figures 7/8 metric.
func (r *WSResult) ForwardCount() int { return r.nForward }

// ReceivedCount returns the number of nodes that received (or originated)
// the packet.
func (r *WSResult) ReceivedCount() int { return r.nReceived }

// DeliveryRatio returns the fraction of the n nodes that received the
// packet.
func (r *WSResult) DeliveryRatio(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(r.nReceived) / float64(n)
}

// Redundancy returns the average number of redundant copies per reached
// node. The received count always includes the source, so the divisor is
// at least 1 for any simulated broadcast; the 0 return covers only the
// zero-value result.
func (r *WSResult) Redundancy() float64 {
	if r.nReceived == 0 {
		return 0
	}
	return float64(r.Duplicates) / float64(r.nReceived)
}

// Received reports whether v received the packet.
func (r *WSResult) Received(v int) bool { return r.ws.received[v] == r.ws.epoch }

// Forwarder reports whether v transmitted the packet.
func (r *WSResult) Forwarder(v int) bool { return r.ws.forwarded[v] == r.ws.epoch }

// Parent returns the neighbor whose transmission first delivered the
// packet to v (false for the source and unreached nodes).
func (r *WSResult) Parent(v int) (int, bool) {
	if v == r.Source || !r.Received(v) {
		return 0, false
	}
	return r.ws.parent[v], true
}

// Materialize converts the dense result into the legacy map-based Result,
// independent of the workspace.
func (r *WSResult) Materialize() *Result {
	res := &Result{
		Source:     r.Source,
		Latency:    r.Latency,
		Duplicates: r.Duplicates,
		Forwarders: make(map[int]bool, r.nForward),
		Received:   make(map[int]bool, r.nReceived),
		Parent:     make(map[int]int, r.nReceived),
	}
	ws, epoch := r.ws, r.ws.epoch
	for v := range ws.received {
		if ws.received[v] != epoch {
			continue
		}
		res.Received[v] = true
		if v != r.Source {
			res.Parent[v] = ws.parent[v]
		}
		if ws.forwarded[v] == epoch {
			res.Forwarders[v] = true
		}
	}
	return res
}

// ensure sizes the per-node arrays for n nodes. Stamps exposed by growth
// are from strictly older epochs (the epoch is bumped after ensure), so no
// clearing is needed outside the wrap path.
func (ws *Workspace) ensure(n int) {
	if cap(ws.received) < n {
		ws.received = make([]uint32, n)
		ws.forwarded = make([]uint32, n)
		ws.actedAt = make([]uint32, n)
		ws.parent = make([]int, n)
		ws.acted = make([][]Packet, n)
		ws.epoch = 0
	}
	ws.received = ws.received[:n]
	ws.forwarded = ws.forwarded[:n]
	ws.actedAt = ws.actedAt[:n]
	ws.parent = ws.parent[:n]
	ws.acted = ws.acted[:n]
}

// markActed records that v acted on pkt this broadcast (deduplicated, like
// the legacy per-node payload map — the lists hold one or two payloads in
// practice).
func (ws *Workspace) markActed(v int, pkt Packet) {
	if ws.actedAt[v] != ws.epoch {
		ws.actedAt[v] = ws.epoch
		ws.acted[v] = ws.acted[v][:0]
	}
	for _, q := range ws.acted[v] {
		if q == pkt {
			return
		}
	}
	ws.acted[v] = append(ws.acted[v], pkt)
}

// actedOn reports whether v already acted on pkt this broadcast.
func (ws *Workspace) actedOn(v int, pkt Packet) bool {
	if ws.actedAt[v] != ws.epoch {
		return false
	}
	for _, q := range ws.acted[v] {
		if q == pkt {
			return true
		}
	}
	return false
}

// Run simulates one broadcast with the ideal radio model, reusing the
// workspace. The result is valid until the next Run on the workspace.
func (ws *Workspace) Run(g *graph.Graph, source int, p Protocol) *WSResult {
	return ws.RunOpts(g, source, p, Options{})
}

// RunOpts is Run with an explicit radio model. Event order, protocol
// callbacks and randomness consumption are identical to the package-level
// RunOpts, so results are bit-identical.
func (ws *Workspace) RunOpts(g *graph.Graph, source int, p Protocol, opt Options) *WSResult {
	n := g.N()
	ws.ensure(n)
	ws.epoch++
	if ws.epoch == 0 { // wrapped: flush stale stamps over the full capacity
		for _, s := range [][]uint32{ws.received[:cap(ws.received)], ws.forwarded[:cap(ws.forwarded)], ws.actedAt[:cap(ws.actedAt)]} {
			for i := range s {
				s[i] = 0
			}
		}
		ws.epoch = 1
	}
	epoch := ws.epoch
	res := &ws.res
	*res = WSResult{Source: source, ws: ws}
	ws.received[source] = epoch
	ws.forwarded[source] = epoch
	res.nReceived, res.nForward = 1, 1
	var loss *rng.Stream
	if opt.Loss > 0 {
		loss = rng.NewLabeled(opt.Seed, "radio-loss")
	}
	fo := opt.Faults
	faultSkips, faultDrops := 0, 0
	tr := opt.Tracer
	if tr != nil {
		tr.SetTime(0)
	}
	start := p.Start(source)
	if tr != nil {
		tr.Send(0, source, -1)
	}
	ws.markActed(source, start)
	queue := append(ws.queue[:0], transmission{sender: source, pkt: start, time: 0})
	for qi := 0; qi < len(queue); qi++ {
		tx := queue[qi]
		if fo != nil && !fo.NodeUp(tx.sender, tx.time) {
			faultSkips++
			continue // the sender crashed before its slot came up
		}
		if tr != nil {
			tr.SetTime(tx.time + 1)
		}
		for _, v := range g.Neighbors(tx.sender) {
			if loss != nil && loss.Bool(opt.Loss) {
				continue // this copy was lost on the air
			}
			if fo != nil && (!fo.NodeUp(v, tx.time+1) || !fo.LinkUp(tx.sender, v, tx.time+1) ||
				fo.CopyLost(tx.sender, v, tx.time+1)) {
				faultDrops++
				continue // receiver down, partitioned away, or a loss burst
			}
			var forward bool
			var out Packet
			if ws.received[v] != epoch {
				ws.received[v] = epoch
				res.nReceived++
				ws.parent[v] = tx.sender
				if tx.time+1 > res.Latency {
					res.Latency = tx.time + 1
				}
				if tr != nil {
					tr.Deliver(tx.time+1, v, tx.sender)
				}
				forward, out = p.OnReceive(v, tx.sender, tx.pkt)
			} else {
				res.Duplicates++
				if tr != nil {
					tr.Duplicate(tx.time+1, v, tx.sender)
				}
				if ws.actedOn(v, tx.pkt) {
					continue
				}
				forward, out = p.OnDuplicate(v, tx.sender, tx.pkt)
			}
			if forward {
				if ws.forwarded[v] != epoch {
					ws.forwarded[v] = epoch
					res.nForward++
				}
				ws.markActed(v, tx.pkt)
				ws.markActed(v, out)
				if tr != nil {
					tr.Send(tx.time+1, v, tx.sender)
				}
				queue = append(queue, transmission{sender: v, pkt: out, time: tx.time + 1})
			}
		}
	}
	ws.queue = queue
	mRuns.Inc()
	mTransmissions.Add(int64(len(queue) - faultSkips))
	mDeliveries.Add(int64(res.nReceived - 1))
	mDuplicates.Add(int64(res.Duplicates))
	if fo != nil {
		mFaultSkips.Add(int64(faultSkips))
		mFaultDrops.Add(int64(faultDrops))
	}
	return res
}
