package broadcast

import (
	"container/heap"

	"clustercast/internal/faults"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
)

// TimedProtocol is the interface for protocols that defer their forwarding
// decision — the paper's first pruning technique (§3): "if it can back-off
// a short period of time before it relays the packet, it may receive more
// copies of the same packet ... if all of its neighbors can be covered by
// these already received broadcast copies, it can resign its role".
//
// When a node first receives the packet, Delay returns how many time units
// it waits. During the wait the engine keeps delivering duplicate copies;
// when the timer fires, Decide sees every transmitter heard so far and
// rules on forwarding.
type TimedProtocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Delay returns the back-off (in whole time units, ≥ 0) node v applies
	// before deciding. Deterministic protocols derive it from v.
	Delay(v int) int
	// Decide is called when v's back-off expires; heard lists every
	// neighbor whose transmission v received so far (in receive order).
	// Returning true makes v transmit.
	Decide(v int, heard []int) bool
}

// timedEvent is an entry of the simulation's time-ordered queue.
type timedEvent struct {
	time int
	seq  int // FIFO tie-break for equal times
	// kind 0: transmission by node; kind 1: decision timeout at node.
	kind int
	node int
}

// eventQueue is a min-heap over (time, seq).
type eventQueue []timedEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(timedEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// TimedOptions tunes a back-off broadcast run. The zero value is the
// untraced default.
type TimedOptions struct {
	// Tracer, when non-nil, records the run's typed event stream.
	Tracer *obs.Tracer
	// Faults, when non-nil, injects the fault schedule: a node that is down
	// when its transmission or back-off decision is due stays silent (a
	// crashed node misses its decision window for good), and copies are
	// dropped per the oracle's link and receiver state.
	Faults faults.Model
}

// RunTimed simulates one broadcast under a back-off protocol. Transmission
// takes one time unit; the source transmits at time 0 unconditionally.
func RunTimed(g *graph.Graph, source int, p TimedProtocol) *Result {
	return RunTimedOpts(g, source, p, TimedOptions{})
}

// RunTimedOpts is RunTimed with explicit options.
func RunTimedOpts(g *graph.Graph, source int, p TimedProtocol, opt TimedOptions) *Result {
	res := &Result{
		Source:     source,
		Forwarders: map[int]bool{source: true},
		Received:   map[int]bool{source: true},
		Parent:     make(map[int]int),
	}
	heard := make(map[int][]int)
	decided := map[int]bool{source: true}
	tr := opt.Tracer
	fo := opt.Faults

	var q eventQueue
	seq := 0
	push := func(t, kind, node int) {
		heap.Push(&q, timedEvent{time: t, seq: seq, kind: kind, node: node})
		seq++
	}
	push(0, 0, source)
	if tr != nil {
		tr.Send(0, source, -1)
	}
	transmissions := 0

	for q.Len() > 0 {
		ev := heap.Pop(&q).(timedEvent)
		switch ev.kind {
		case 0: // transmission
			if fo != nil && !fo.NodeUp(ev.node, ev.time) {
				break // the sender crashed before its slot
			}
			transmissions++
			if tr != nil {
				tr.SetTime(ev.time + 1)
			}
			for _, v := range g.Neighbors(ev.node) {
				if fo != nil && (!fo.NodeUp(v, ev.time+1) || !fo.LinkUp(ev.node, v, ev.time+1) ||
					fo.CopyLost(ev.node, v, ev.time+1)) {
					continue // receiver down, partitioned away, or a loss burst
				}
				heard[v] = append(heard[v], ev.node)
				if res.Received[v] {
					res.Duplicates++
					if tr != nil {
						tr.Duplicate(ev.time+1, v, ev.node)
					}
				}
				if !res.Received[v] {
					res.Received[v] = true
					res.Parent[v] = ev.node
					if ev.time+1 > res.Latency {
						res.Latency = ev.time + 1
					}
					if tr != nil {
						tr.Deliver(ev.time+1, v, ev.node)
					}
					// Schedule the decision after the back-off.
					push(ev.time+1+p.Delay(v), 1, v)
				}
			}
		case 1: // decision timeout
			v := ev.node
			if decided[v] {
				break
			}
			decided[v] = true
			if fo != nil && !fo.NodeUp(v, ev.time) {
				break // crashed nodes miss their decision window
			}
			if p.Decide(v, heard[v]) {
				res.Forwarders[v] = true
				if tr != nil {
					tr.Send(ev.time, v, res.Parent[v])
				}
				push(ev.time, 0, v)
			}
		}
	}
	mRuns.Inc()
	mTransmissions.Add(int64(transmissions))
	mDeliveries.Add(int64(len(res.Received) - 1))
	mDuplicates.Add(int64(res.Duplicates))
	return res
}

// SBA is neighbor-coverage self-pruning with back-off (in the spirit of
// Peng & Lu's scalable broadcast algorithm, and exactly the paper's §3
// back-off discussion): after a deterministic pseudo-random delay, a node
// forwards only when the transmissions it has overheard do not already
// cover its whole neighborhood.
type SBA struct {
	nb *Neighborhood
	// MaxDelay bounds the back-off window (time units). Larger windows
	// prune more (more copies overheard) at the price of latency.
	MaxDelay int
	// Seed drives the per-node delay draw.
	Seed uint64
}

// NewSBA builds the protocol over a neighborhood cache.
func NewSBA(nb *Neighborhood, maxDelay int, seed uint64) *SBA {
	return &SBA{nb: nb, MaxDelay: maxDelay, Seed: seed}
}

// Name implements TimedProtocol.
func (s *SBA) Name() string { return "sba" }

// Delay implements TimedProtocol: a deterministic per-node draw from
// [0, MaxDelay].
func (s *SBA) Delay(v int) int {
	return backoffDelay(s.Seed, v, s.MaxDelay)
}

// Decide implements TimedProtocol: forward iff some neighbor is not
// covered by the senders heard so far (a neighbor x is covered when it is
// a heard sender itself or adjacent to one).
func (s *SBA) Decide(v int, heard []int) bool {
	covered := make(map[int]bool, 8)
	for _, x := range heard {
		covered[x] = true
		for w := range s.nb.N1(x) {
			covered[w] = true
		}
	}
	for _, w := range s.nb.Graph().Neighbors(v) {
		if !covered[w] {
			return true
		}
	}
	return false
}
