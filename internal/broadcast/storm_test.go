package broadcast

import (
	"testing"

	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

func TestCounterBasedThresholdOneIsMinimal(t *testing.T) {
	// Threshold 1: every node overheard ≥1 copy (the one that delivered
	// the packet), so nobody but the source forwards.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	res := RunTimed(g, 0, CounterBased{Threshold: 1, MaxDelay: 2, Seed: 1})
	if res.ForwardCount() != 1 {
		t.Fatalf("threshold 1 should silence everyone: %d forwarders", res.ForwardCount())
	}
	if len(res.Received) == g.N() {
		t.Fatal("threshold 1 on a path cannot deliver past the first hop")
	}
}

func TestCounterBasedHighThresholdFloods(t *testing.T) {
	nw := randomNet(t, 71, 50, 10)
	res := RunTimed(nw.G, 0, CounterBased{Threshold: 1000, MaxDelay: 2, Seed: 1})
	if len(res.Received) != 50 || res.ForwardCount() != 50 {
		t.Fatalf("huge threshold must behave like flooding: %d received, %d forwarded",
			len(res.Received), res.ForwardCount())
	}
}

func TestCounterBasedKneeTradesDeliveryForCost(t *testing.T) {
	// The storm paper's knee: c=3..4 keeps delivery high while cutting
	// forwarders substantially on dense networks.
	root := rng.New(8)
	var fwd3, recv3 int
	const trials = 10
	for i := 0; i < trials; i++ {
		nw := randomNet(t, 300+uint64(i), 80, 18)
		src := root.Intn(80)
		r3 := RunTimed(nw.G, src, CounterBased{Threshold: 3, MaxDelay: 4, Seed: uint64(i)})
		fwd3 += r3.ForwardCount()
		recv3 += len(r3.Received)
	}
	if recv3 < trials*80*95/100 {
		t.Fatalf("counter(3) delivery too low: %d/%d", recv3, trials*80)
	}
	if fwd3 >= trials*80*2/3 {
		t.Fatalf("counter(3) should cut forwarders on dense nets: %d of %d", fwd3, trials*80)
	}
	t.Logf("counter(3): delivered %d/%d with %d forwarders", recv3, trials*80, fwd3)
}

func TestDistanceBasedZeroThresholdFloods(t *testing.T) {
	nw := randomNet(t, 73, 50, 10)
	res := RunTimed(nw.G, 0, DistanceBased{
		Positions: nw.Positions, MinDistance: 0, MaxDelay: 2, Seed: 1,
	})
	if len(res.Received) != 50 {
		t.Fatalf("distance 0 must flood: %d received", len(res.Received))
	}
}

func TestDistanceBasedPrunesCloseNodes(t *testing.T) {
	root := rng.New(9)
	var fwd, recv, floodFwd int
	const trials = 10
	for i := 0; i < trials; i++ {
		nw := randomNet(t, 400+uint64(i), 80, 18)
		src := root.Intn(80)
		res := RunTimed(nw.G, src, DistanceBased{
			Positions:   nw.Positions,
			MinDistance: nw.Radius * 0.4,
			MaxDelay:    4,
			Seed:        uint64(i),
		})
		fwd += res.ForwardCount()
		recv += len(res.Received)
		floodFwd += 80
	}
	if fwd >= floodFwd {
		t.Fatalf("distance-based should prune: %d vs %d", fwd, floodFwd)
	}
	if recv < trials*80*9/10 {
		t.Fatalf("distance-based delivery too low: %d/%d", recv, trials*80)
	}
	t.Logf("distance(0.4r): delivered %d/%d with %d forwarders (flooding: %d)",
		recv, trials*80, fwd, floodFwd)
}

func TestStormSchemeNames(t *testing.T) {
	if (CounterBased{Threshold: 3}).Name() != "counter(3)" {
		t.Fatal("counter name")
	}
	if (DistanceBased{MinDistance: 2.5}).Name() != "distance(2.5)" {
		t.Fatal("distance name")
	}
}
