package broadcast

// nodeHash mixes a protocol seed with a node id into a well-distributed
// 64-bit value (murmur-style finalizer). It is the single source of the
// per-node pseudo-randomness behind the deterministic back-off delays and
// the gossip coin streams: distinct (seed, v) pairs land at unrelated
// points of the hash space. Additive mixing (seed + v·odd) does not have
// that property — (seed, v+1) and (seed+odd, v) would share a stream, so
// adjacent nodes across adjacent replicate seeds would flip the same coins.
func nodeHash(seed uint64, v int) uint64 {
	h := seed ^ (uint64(v)+1)*0x9E3779B97F4A7C15
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

// backoffDelay maps a (seed, node) hash onto the back-off window
// [0, maxDelay] — the shared implementation of every TimedProtocol.Delay.
func backoffDelay(seed uint64, v, maxDelay int) int {
	if maxDelay <= 0 {
		return 0
	}
	return int(nodeHash(seed, v) % uint64(maxDelay+1))
}
