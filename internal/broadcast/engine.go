// Package broadcast provides a network-layer broadcast simulation engine
// for unit-disk-graph MANETs, plus the classic forwarding protocols the
// paper's related-work section discusses: blind flooding, probabilistic
// gossip, static-CDS forwarding (used for both the cluster-based SI-CDS and
// the MO_CDS baseline), multipoint relaying (MPR), dominant pruning (DP)
// and partial dominant pruning (PDP).
//
// The engine follows the paper's evaluation model: only network-layer
// traffic is simulated; the MAC/PHY layers are assumed to resolve collision
// and contention. A transmission by node x is received simultaneously by
// every neighbor of x one time unit later. Each node transmits a given
// packet at most once.
//
// Forwarding decisions are made when a node receives the packet for the
// first time; protocols whose senders *designate* forwarders (SD-CDS,
// dominant pruning, MPR) additionally get a chance on duplicate copies,
// because a node may hear its first copy from a transmission that does not
// designate it and only later be named a forward node.
package broadcast

import (
	"fmt"
	"sort"
	"strings"

	"clustercast/internal/faults"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
)

// Engine-level metrics. Recording is gated inside obs (one atomic bool
// load per Add when disabled), and the engines fold whole-run totals in a
// single Add per run, so the per-neighbor hot loops stay untouched.
var (
	mRuns          = obs.NewCounter("broadcast.runs")
	mTransmissions = obs.NewCounter("broadcast.transmissions")
	mDeliveries    = obs.NewCounter("broadcast.deliveries")
	mDuplicates    = obs.NewCounter("broadcast.duplicates")
	mFaultSkips    = obs.NewCounter("broadcast.fault_skipped_tx")
	mFaultDrops    = obs.NewCounter("broadcast.fault_dropped_copies")
)

// Packet is the protocol-specific payload piggybacked on a transmission.
// The engine treats it as opaque.
type Packet interface{}

// Protocol decides which receivers forward a broadcast packet.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Start returns the payload the source attaches to its initial
	// transmission.
	Start(source int) Packet
	// OnReceive is invoked when node v receives the packet for the first
	// time from neighbor x carrying payload pkt. It reports whether v
	// forwards the packet and, if so, the payload v attaches.
	OnReceive(v, x int, pkt Packet) (forward bool, out Packet)
	// OnDuplicate is invoked when v, which has already received the packet
	// but not forwarded it, hears another copy. Returning true upgrades v
	// to a forwarder. Protocols without sender-side designation simply
	// return false.
	OnDuplicate(v, x int, pkt Packet) (forward bool, out Packet)
}

// Result summarizes one simulated broadcast.
type Result struct {
	Source int
	// Forwarders holds every node that transmitted the packet, including
	// the source. len(Forwarders) is the paper's "size of the forward node
	// set".
	Forwarders map[int]bool
	// Received holds every node that received (or originated) the packet.
	Received map[int]bool
	// Latency is the time unit at which the last node received the packet
	// (0 when nothing was delivered beyond the source).
	Latency int
	// Parent records, for every node that received the packet (except the
	// source), the neighbor whose transmission delivered the first copy.
	// Following Parent pointers from any receiver reaches the source: the
	// delivery tree of the broadcast.
	Parent map[int]int
	// Duplicates counts redundant receptions: copies delivered to nodes
	// that already had the packet. The broadcast storm problem (Ni et al.)
	// is exactly this number exploding with density — flooding a clique of
	// n nodes yields n·(n−2)+1 duplicates, a CDS backbone only a handful.
	Duplicates int
}

// Redundancy returns the average number of redundant copies per reached
// node. Received always contains the source, so the divisor is at least 1
// for any simulated broadcast; the 0 return covers only the zero-value
// Result.
func (r *Result) Redundancy() float64 {
	if len(r.Received) == 0 {
		return 0
	}
	return float64(r.Duplicates) / float64(len(r.Received))
}

// ForwardCount returns the size of the forward node set.
func (r *Result) ForwardCount() int { return len(r.Forwarders) }

// DeliveryRatio returns the fraction of the n nodes that received the
// packet.
func (r *Result) DeliveryRatio(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(len(r.Received)) / float64(n)
}

// transmission is one queued radio transmission.
type transmission struct {
	sender int
	pkt    Packet
	time   int
}

// Options tunes the radio model of a simulated broadcast. The zero value
// is the paper's ideal model (every transmission reaches every neighbor).
type Options struct {
	// Loss is the independent per-link, per-transmission loss
	// probability. The paper assumes the MAC/PHY layers deliver
	// everything; the lossy model quantifies how much protocol redundancy
	// buys reliability (ABL-LOSSY).
	Loss float64
	// Seed drives the loss coin flips; equal seeds replicate exactly.
	Seed uint64
	// Tracer, when non-nil, records a typed event stream of the broadcast
	// (sends, deliveries, duplicate suppressions, plus the protocol-side
	// gateway-select/coverage-prune events of protocols that carry the
	// same tracer). nil — the default — costs one predicted branch per
	// event site.
	Tracer *obs.Tracer
	// Faults, when non-nil, consults the fault oracle every slot: a crashed
	// sender skips its queued transmission, and a copy is dropped when the
	// receiver is down, a scripted partition separates the link, or the
	// link's Gilbert–Elliott loss chain eats it. Independent of Loss (both
	// can be active). nil — the default — adds one predicted branch per
	// transmission and zero allocations. A down source yields a broadcast
	// that never leaves the source. Usually a *faults.Oracle (whose methods
	// tolerate a typed nil); the equivalence suite plugs in a
	// faults.LaneModel to replay one lane of a 64-wide batch.
	Faults faults.Model
}

// Run simulates one broadcast from source over g under the protocol with
// the ideal radio model.
//
// A node relays at most once per distinct received payload: a designated
// forward node that has already transmitted (e.g. the broadcast source
// itself, later named a gateway by its clusterhead) relays again when a new
// designating payload arrives, exactly as a real node would treat the
// upstream's forward request. This keeps the simulation finite — payload
// identities are only minted by OnReceive decisions, each node acts on each
// payload once — while preserving the designation semantics the SD-CDS,
// MPR and dominant-pruning protocols rely on.
func Run(g *graph.Graph, source int, p Protocol) *Result {
	return RunOpts(g, source, p, Options{})
}

// RunOpts is Run with an explicit radio model. It delegates to the dense
// workspace engine (see Workspace.RunOpts) and materializes the map-based
// Result; hot paths that run many broadcasts hold a Workspace instead and
// skip the materialization.
func RunOpts(g *graph.Graph, source int, p Protocol, opt Options) *Result {
	var ws Workspace
	return ws.RunOpts(g, source, p, opt).Materialize()
}

// NoDuplicates is a mixin for protocols that never act on duplicate
// copies.
type NoDuplicates struct{}

// OnDuplicate implements Protocol by always declining.
func (NoDuplicates) OnDuplicate(v, x int, pkt Packet) (bool, Packet) { return false, nil }

// DeliveryTreeDOT renders the broadcast's delivery tree (first-reception
// parent pointers) in Graphviz DOT format, with forwarders filled. Output
// is deterministic.
func (r *Result) DeliveryTreeDOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	nodes := make([]int, 0, len(r.Received))
	for v := range r.Received {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	for _, v := range nodes {
		if r.Forwarders[v] {
			fmt.Fprintf(&b, "  %d [style=filled fillcolor=black fontcolor=white];\n", v)
		} else {
			fmt.Fprintf(&b, "  %d;\n", v)
		}
	}
	for _, v := range nodes {
		if p, ok := r.Parent[v]; ok {
			fmt.Fprintf(&b, "  %d -> %d;\n", p, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
