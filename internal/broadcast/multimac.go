package broadcast

import (
	"sort"

	"clustercast/internal/graph"
	"clustercast/internal/obs"
	"clustercast/internal/rng"
)

// Multi-source MAC metrics, folded once per RunMACMulti.
var (
	mMultiRuns       = obs.NewCounter("mac.multi_runs")
	mMultiFlows      = obs.NewCounter("mac.multi_flows")
	mCrossCollisions = obs.NewCounter("mac.cross_collisions")
)

// MultiFlow is one broadcast of a multi-source traffic workload: a source
// injecting a packet at an absolute slot, carrying its own protocol
// instance and its own jitter seed.
//
// Proto must be private to the flow when the protocol keeps per-broadcast
// state (the engine interleaves OnReceive callbacks of concurrently active
// flows); stateless protocols (Flooding, StaticCDS, Gossip) and the
// non-reusing dynamic-backbone protocol may be shared across flows.
type MultiFlow struct {
	// Src is the broadcast source.
	Src int
	// Dst, when >= 0, names the node whose first decode the engine
	// timestamps (FlowResult.DstSlot) — the RREQ destination of a route
	// discovery. -1 for a plain broadcast.
	Dst int
	// Start is the absolute slot the source transmits in.
	Start int
	// Seed drives this flow's jitter draws. In the zero-contention limit
	// (no other flow shares a slot with this one) the flow's result is
	// bit-identical to RunMAC(g, Src, Proto, MACOptions{Jitter, Seed}).
	Seed uint64
	// Proto decides forwarding for this flow's packet.
	Proto Protocol
}

// FlowResult is one flow's outcome within a multi-source run. Latency is
// relative to the flow's Start slot, so in the zero-contention limit the
// embedded CollisionResult equals the flow's single-source RunMAC result
// field for field.
type FlowResult struct {
	CollisionResult
	// Start echoes the flow's injection slot.
	Start int
	// DstSlot is the absolute slot at which the flow's Dst first decoded
	// the packet (-1 when the flow has no Dst or it was never reached;
	// Start when Dst == Src).
	DstSlot int
}

// MultiResult aggregates one multi-source slotted-MAC run.
type MultiResult struct {
	// Flows holds the per-flow results, index-aligned with the input.
	Flows []*FlowResult
	// SharedCollisions counts receiver-slot collision events on the shared
	// medium, each counted once regardless of how many flows collided.
	SharedCollisions int
	// CrossCollisions counts the subset of SharedCollisions whose destroyed
	// copies came from at least two distinct flows — the inter-flow
	// contention a single-source run can never exhibit.
	CrossCollisions int
	// Transmissions counts transmissions that went on the air across all
	// flows (crashed senders excluded).
	Transmissions int
	// Makespan is the last delivery slot of the run (absolute; 0 when
	// nothing was delivered beyond the sources).
	Makespan int
}

// DeliveredTotal sums the nodes reached across all flows (sources
// included), the numerator of the workload's aggregate delivery ratio.
func (m *MultiResult) DeliveredTotal() int {
	total := 0
	for _, f := range m.Flows {
		total += len(f.Received)
	}
	return total
}

// DeliveryRatio returns the mean per-flow delivery ratio over n nodes.
func (m *MultiResult) DeliveryRatio(n int) float64 {
	if len(m.Flows) == 0 || n == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range m.Flows {
		sum += f.DeliveryRatio(n)
	}
	return sum / float64(len(m.Flows))
}

// multiTx is one queued transmission of the multi-source engine.
type multiTx struct {
	flow    int32
	sender  int32
	trigger int32 // upstream sender that caused this relay (-1: source)
	pkt     Packet
}

// RunMACMulti simulates concurrently active broadcasts under the slotted
// collision model: transmissions of *all* flows scheduled in the same slot
// contend, and a receiver that hears more than one — regardless of which
// flows they belong to — decodes none. Per-flow forwarding state
// (reception, duplicates, acted payloads, jitter stream) is independent,
// so with disjoint slot schedules the run degenerates to len(flows)
// serialized single-source RunMAC runs, bit for bit (gated by
// TestMultiMACZeroContentionEquivalence).
//
// opt.Seed is unused: each flow's jitter stream derives from its own Seed,
// which is what makes a flow's randomness independent of which other flows
// share the air. opt.Workers is ignored (the calendar port is sequential);
// opt.Tracer and opt.Faults apply to the shared medium exactly as in
// RunMAC.
func RunMACMulti(g *graph.Graph, flows []MultiFlow, opt MACOptions) *MultiResult {
	res := &MultiResult{Flows: make([]*FlowResult, len(flows))}
	if len(flows) == 0 {
		return res
	}

	jitters := make([]rng.Stream, len(flows))
	draw := func(fi int32) int {
		if opt.Jitter <= 0 {
			return 0
		}
		return jitters[fi].Intn(opt.Jitter + 1)
	}

	// Per-flow acted-payload sets, exactly RunMAC's per-node bookkeeping
	// lifted to (flow, node).
	acted := make([]map[int]map[Packet]bool, len(flows))
	mark := func(fi int32, v int, pkt Packet) {
		m := acted[fi][v]
		if m == nil {
			m = make(map[Packet]bool)
			acted[fi][v] = m
		}
		m[pkt] = true
	}

	// slots[t] holds the transmissions scheduled for slot t; occ is the
	// min-heap of occupied slots (see RunMAC).
	slots := map[int][]multiTx{}
	var occ []int
	schedule := func(slot int, x multiTx) {
		if len(slots[slot]) == 0 {
			occ = append(occ, slot)
			for i := len(occ) - 1; i > 0; { // sift up
				p := (i - 1) / 2
				if occ[p] <= occ[i] {
					break
				}
				occ[p], occ[i] = occ[i], occ[p]
				i = p
			}
		}
		slots[slot] = append(slots[slot], x)
	}
	popSlot := func() int {
		t := occ[0]
		last := len(occ) - 1
		occ[0] = occ[last]
		occ = occ[:last]
		for i := 0; ; { // sift down
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && occ[c+1] < occ[c] {
				c++
			}
			if occ[i] <= occ[c] {
				break
			}
			occ[i], occ[c] = occ[c], occ[i]
			i = c
		}
		return t
	}

	tr := opt.Tracer
	if tr != nil {
		tr.SetTime(0)
	}
	for i := range flows {
		f := &flows[i]
		fr := &FlowResult{Start: f.Start, DstSlot: -1}
		fr.Result = Result{
			Source:     f.Src,
			Forwarders: map[int]bool{f.Src: true},
			Received:   map[int]bool{f.Src: true},
			Parent:     make(map[int]int),
		}
		if f.Dst == f.Src {
			fr.DstSlot = f.Start
		}
		res.Flows[i] = fr
		jitters[i].SeedLabeled(f.Seed, "mac-jitter")
		acted[i] = make(map[int]map[Packet]bool)
		start := f.Proto.Start(f.Src)
		mark(int32(i), f.Src, start)
		schedule(f.Start, multiTx{flow: int32(i), sender: int32(f.Src), trigger: -1, pkt: start})
	}

	fo := opt.Faults
	for len(occ) > 0 {
		t := popSlot()
		batch := slots[t]
		delete(slots, t)
		if fo != nil {
			// Crashed forwarders stay silent; their slot reservation lapses.
			live := batch[:0]
			for _, x := range batch {
				if fo.NodeUp(int(x.sender), t) {
					live = append(live, x)
				}
			}
			batch = live
		}
		if tr != nil {
			tr.SetTime(t + 1)
			for _, x := range batch {
				tr.Send(t, int(x.sender), int(x.trigger))
			}
		}
		res.Transmissions += len(batch)

		// Receiver-side resolution over the shared medium: every copy of
		// every flow counts toward the same per-receiver tally.
		heardBy := map[int][]int32{}
		for bi, x := range batch {
			for _, v := range g.Neighbors(int(x.sender)) {
				if fo != nil && (!fo.NodeUp(v, t+1) || !fo.LinkUp(int(x.sender), v, t+1) ||
					fo.CopyLost(int(x.sender), v, t+1)) {
					continue // the copy faded before reaching v
				}
				heardBy[v] = append(heardBy[v], int32(bi))
			}
		}
		receivers := make([]int, 0, len(heardBy))
		for v := range heardBy {
			receivers = append(receivers, v)
		}
		sort.Ints(receivers)
		for _, v := range receivers {
			copies := heardBy[v]
			res.commit(g, flows, batch, t, v, copies, tr, func(fi int32) int { return draw(fi) },
				func(fi int32, node int, pkt Packet) { mark(fi, node, pkt) },
				func(fi int32, node int, pkt Packet) bool { return acted[fi][node][pkt] },
				func(slot int, x multiTx) { schedule(slot, x) })
		}
	}

	res.fold()
	return res
}

// commit resolves one (receiver, slot) cell: the collision rule first,
// then delivery/duplicate dispatch into the decoded copy's flow. Shared
// verbatim by the scalar and calendar engines so their per-slot semantics
// cannot drift.
func (m *MultiResult) commit(g *graph.Graph, flows []MultiFlow, batch []multiTx, t, v int,
	copies []int32, tr *obs.Tracer, draw func(int32) int,
	mark func(int32, int, Packet), actedOn func(int32, int, Packet) bool,
	schedule func(int, multiTx)) {
	if len(copies) > 1 {
		m.SharedCollisions++
		// Attribute the destroyed copies flow by flow: each involved flow
		// records one collision event plus its own lost copies, exactly
		// what its single-source run would have recorded had the copies
		// all been its own.
		first := batch[copies[0]].flow
		cross := false
		for ci, bi := range copies {
			fi := batch[bi].flow
			m.Flows[fi].LostCopies++
			if fi != first {
				cross = true
			}
			newFlow := true
			for _, bj := range copies[:ci] {
				if batch[bj].flow == fi {
					newFlow = false
					break
				}
			}
			if newFlow {
				m.Flows[fi].Collisions++
			}
		}
		if cross {
			m.CrossCollisions++
		}
		if tr != nil {
			tr.Collision(t+1, v)
		}
		return
	}
	x := batch[copies[0]]
	fi := x.flow
	fr := m.Flows[fi]
	f := &flows[fi]
	var forward bool
	var out Packet
	if !fr.Received[v] {
		fr.Received[v] = true
		fr.Parent[v] = int(x.sender)
		if rel := t + 1 - f.Start; rel > fr.Latency {
			fr.Latency = rel
		}
		if t+1 > m.Makespan {
			m.Makespan = t + 1
		}
		if v == f.Dst && fr.DstSlot < 0 {
			fr.DstSlot = t + 1
		}
		if tr != nil {
			tr.Deliver(t+1, v, int(x.sender))
		}
		forward, out = f.Proto.OnReceive(v, int(x.sender), x.pkt)
	} else {
		fr.Duplicates++
		if tr != nil {
			tr.Duplicate(t+1, v, int(x.sender))
		}
		if actedOn(fi, v, x.pkt) {
			return
		}
		forward, out = f.Proto.OnDuplicate(v, int(x.sender), x.pkt)
	}
	if forward {
		fr.Forwarders[v] = true
		mark(fi, v, x.pkt)
		mark(fi, v, out)
		schedule(t+1+draw(fi), multiTx{flow: fi, sender: int32(v), trigger: x.sender, pkt: out})
	}
}

// fold records the run's totals in the metrics registry: the broadcast.*
// and mac.* totals a serialized sequence of single-source runs would have
// folded, plus the multi-source-only counters.
func (m *MultiResult) fold() {
	deliveries, duplicates, collisions, lost := 0, 0, 0, 0
	for _, f := range m.Flows {
		deliveries += len(f.Received) - 1
		duplicates += f.Duplicates
		collisions += f.Collisions
		lost += f.LostCopies
	}
	mRuns.Add(int64(len(m.Flows)))
	mTransmissions.Add(int64(m.Transmissions))
	mDeliveries.Add(int64(deliveries))
	mDuplicates.Add(int64(duplicates))
	mMACCollisions.Add(int64(collisions))
	mMACLostCopies.Add(int64(lost))
	mMultiRuns.Inc()
	mMultiFlows.Add(int64(len(m.Flows)))
	mCrossCollisions.Add(int64(m.CrossCollisions))
}
