package broadcast

import (
	"fmt"
	"testing"

	"clustercast/internal/faults"
	"clustercast/internal/graph"
)

// batchSpecs is the fault-spec matrix the equivalence suite claims: ideal
// radio, i.i.d. loss, the SetBurst family, raw Gilbert–Elliott parameters,
// and a warmed-up burst chain.
func batchSpecs(t *testing.T) map[string]*faults.Spec {
	t.Helper()
	iid := &faults.Spec{LossGood: 0.2, Seed: 41}
	burst := &faults.Spec{Seed: 42}
	if err := burst.SetBurst(0.2, 4); err != nil {
		t.Fatal(err)
	}
	raw := &faults.Spec{LossGood: 0.05, LossBad: 0.8, PGoodBad: 0.1, PBadGood: 0.3, Seed: 43}
	warm := &faults.Spec{Seed: 44, Warmup: 200}
	if err := warm.SetBurst(0.3, 8); err != nil {
		t.Fatal(err)
	}
	return map[string]*faults.Spec{
		"ideal": nil,
		"iid":   iid,
		"burst": burst,
		"rawGE": raw,
		"warm":  warm,
	}
}

// batchProtocols builds the protocol matrix over a given node count.
func batchProtocols(n int) map[string]BatchProtocol {
	cds := graph.NewBitset(n)
	for v := 0; v < n; v += 2 {
		cds.Add(v)
	}
	return map[string]BatchProtocol{
		"flooding":   BatchFlooding{},
		"gossip":     BatchGossip{P: 0.6, Seed: 9},
		"static-cds": BatchStaticCDS{Set: cds, Label: "static-even"},
	}
}

// TestBatchScalarEquivalence is the tentpole's correctness bar at the
// engine level: for every claimed protocol × fault-spec combination, every
// lane of one 64-wide run must match a scalar run of the real dense engine
// driving that lane's Protocol view under that lane's fault view —
// ReceivedCount, ForwardCount and Latency all bit-identical.
func TestBatchScalarEquivalence(t *testing.T) {
	nw := randomNet(t, 77, 50, 8)
	g := nw.G
	n := g.N()
	source := 0
	var bw BatchWorkspace
	var sw Workspace
	for pname, proto := range batchProtocols(n) {
		for sname, spec := range batchSpecs(t) {
			t.Run(pname+"/"+sname, func(t *testing.T) {
				var opt BatchOptions
				var ref *faults.ChainBatch
				if spec != nil {
					opt.Chains = faults.NewChainBatch(*spec)
					ref = faults.NewChainBatch(*spec)
				}
				batch := bw.Run(g, source, proto, opt)
				got := *batch // bw.res is reused; copy before the scalar runs
				for r := 0; r < graph.LaneCount; r++ {
					var sopt Options
					if ref != nil {
						sopt.Faults = faults.LaneModel{Batch: ref, Lane: r}
					}
					want := sw.RunOpts(g, source, proto.Lane(r), sopt)
					if got.Received[r] != want.ReceivedCount() ||
						got.Forwards[r] != want.ForwardCount() ||
						got.Latency[r] != want.Latency {
						t.Fatalf("lane %d: batch (recv=%d fwd=%d lat=%d) != scalar (recv=%d fwd=%d lat=%d)",
							r, got.Received[r], got.Forwards[r], got.Latency[r],
							want.ReceivedCount(), want.ForwardCount(), want.Latency)
					}
				}
			})
		}
	}
}

// TestBatchDeterministicReplay: a batch run is a pure function of its
// inputs — rerunning with a fresh workspace and fresh chains replicates
// every lane.
func TestBatchDeterministicReplay(t *testing.T) {
	nw := randomNet(t, 78, 60, 9)
	spec := &faults.Spec{Seed: 5}
	if err := spec.SetBurst(0.25, 4); err != nil {
		t.Fatal(err)
	}
	run := func() BatchResult {
		var ws BatchWorkspace
		return *ws.Run(nw.G, 0, BatchGossip{P: 0.7, Seed: 3}, BatchOptions{Chains: faults.NewChainBatch(*spec)})
	}
	if a, b := run(), run(); a != b {
		t.Fatal("same inputs must replicate the batch run exactly")
	}
}

// TestBatchWorkspaceReuse: reusing one workspace across runs of different
// sizes leaks no state between runs.
func TestBatchWorkspaceReuse(t *testing.T) {
	big := randomNet(t, 79, 80, 9)
	small := randomNet(t, 80, 30, 8)
	var ws BatchWorkspace
	first := *ws.Run(small.G, 0, BatchFlooding{}, BatchOptions{})
	ws.Run(big.G, 0, BatchFlooding{}, BatchOptions{})
	again := *ws.Run(small.G, 0, BatchFlooding{}, BatchOptions{})
	if first != again {
		t.Fatal("workspace reuse changed a run's result")
	}
	for r := 0; r < graph.LaneCount; r++ {
		if first.Received[r] != small.G.N() {
			t.Fatalf("lane %d: flooding on a connected graph covered %d/%d", r, first.Received[r], small.G.N())
		}
	}
}

// TestBatchSingleNode: a one-node graph terminates immediately with the
// source covered and forwarding in every lane.
func TestBatchSingleNode(t *testing.T) {
	g := graph.New(1)
	res := RunBatch(g, 0, BatchFlooding{}, BatchOptions{})
	for r := 0; r < graph.LaneCount; r++ {
		if res.Received[r] != 1 || res.Forwards[r] != 1 || res.Latency[r] != 0 {
			t.Fatalf("lane %d: recv=%d fwd=%d lat=%d", r, res.Received[r], res.Forwards[r], res.Latency[r])
		}
	}
}

// TestNewBatchKernel: the registry maps each covered scalar Protocol onto
// its kernel and declines the scalar-only ones.
func TestNewBatchKernel(t *testing.T) {
	set := map[int]bool{0: true, 2: true}
	for _, tc := range []struct {
		p    Protocol
		want bool
	}{
		{Flooding{}, true},
		{Gossip{P: 0.5, Seed: 1}, true},
		{StaticCDS{Set: set, Label: "x"}, true},
		{StaticCDSBits{Set: graph.BitsetOf(4, 0, 2), Label: "x"}, true},
		{&MPR{}, false},
		{&DP{}, false},
		{&PDP{}, false},
	} {
		k, ok := NewBatchKernel(tc.p, 4)
		if ok != tc.want {
			t.Errorf("%T: batchable = %v, want %v", tc.p, ok, tc.want)
		}
		if ok && k == nil {
			t.Errorf("%T: ok with nil kernel", tc.p)
		}
	}
	// The map-backed CDS packs into the same kernel as the bitset one.
	k, _ := NewBatchKernel(StaticCDS{Set: set}, 4)
	if k.ForwardWord(0) == 0 || k.ForwardWord(1) != 0 || k.ForwardWord(2) == 0 {
		t.Error("map-backed CDS kernel has wrong membership")
	}
}

// FuzzBatchScalarAgree fuzzes the tentpole's equivalence over topology
// size, loss rate, burst length and seed: spot-check lanes of a batched
// flooding and gossip run against the scalar engine.
func FuzzBatchScalarAgree(f *testing.F) {
	f.Add(uint8(20), 0.2, uint8(4), uint64(1))
	f.Add(uint8(40), 0.0, uint8(1), uint64(2))
	f.Add(uint8(8), 0.45, uint8(8), uint64(3))
	f.Add(uint8(33), 0.08, uint8(2), uint64(99))
	f.Fuzz(func(t *testing.T, nRaw uint8, lossRaw float64, burstRaw uint8, seed uint64) {
		n := 5 + int(nRaw)%60
		loss := lossRaw
		if loss < 0 || loss >= 0.95 {
			loss = 0.95 / 2
		}
		burst := 1 + float64(burstRaw%16)
		nw := randomNet(t, seed|1, n, 6)
		g := nw.G
		var spec faults.Spec
		if err := spec.SetBurst(loss, burst); err != nil {
			t.Skip(err)
		}
		spec.Seed = seed ^ 0xABCD
		for i, proto := range []BatchProtocol{BatchFlooding{}, BatchGossip{P: 0.55, Seed: seed}} {
			batch := RunBatch(g, 0, proto, BatchOptions{Chains: faults.NewChainBatch(spec)})
			ref := faults.NewChainBatch(spec)
			var sw Workspace
			for _, r := range []int{0, 31, 63} {
				want := sw.RunOpts(g, 0, proto.Lane(r), Options{Faults: faults.LaneModel{Batch: ref, Lane: r}})
				if batch.Received[r] != want.ReceivedCount() ||
					batch.Forwards[r] != want.ForwardCount() ||
					batch.Latency[r] != want.Latency {
					t.Fatalf("proto %d lane %d: batch (recv=%d fwd=%d lat=%d) != scalar (recv=%d fwd=%d lat=%d)",
						i, r, batch.Received[r], batch.Forwards[r], batch.Latency[r],
						want.ReceivedCount(), want.ForwardCount(), want.Latency)
				}
			}
		}
	})
}

// TestBatchGossipLaneNamesDistinct pins the lane protocols' debug names so
// two lanes never alias in trace output.
func TestBatchGossipLaneNamesDistinct(t *testing.T) {
	g := BatchGossip{P: 0.3, Seed: 1}
	if g.Lane(3).Name() == g.Lane(4).Name() {
		t.Fatal("lane names alias")
	}
	if got := g.Name(); got != fmt.Sprintf("gossip(%.2f)", 0.3) {
		t.Fatalf("batch gossip name %q", got)
	}
}
