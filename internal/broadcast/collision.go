package broadcast

import (
	"sort"

	"clustercast/internal/faults"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
	"clustercast/internal/rng"
)

// MAC-level metrics, folded once per RunMAC.
var (
	mMACCollisions = obs.NewCounter("mac.collisions")
	mMACLostCopies = obs.NewCounter("mac.lost_copies")
)

// MACOptions configures the slotted collision model. The paper assumes
// "all the transmission collision and contention are taken care of at the
// underground physical and MAC layers"; this engine drops that assumption
// to show what the broadcast storm actually does: transmissions scheduled
// in the same slot collide at any receiver that hears more than one, and
// collided copies are lost (no link-layer retransmission for broadcast
// frames, as in 802.11).
type MACOptions struct {
	// Jitter is the contention window: each forwarder delays its
	// transmission by a uniform number of slots in [0, Jitter]. Larger
	// windows spread transmissions out and reduce collisions at a latency
	// cost — a stand-in for CSMA back-off.
	Jitter int
	// Seed drives the jitter draws.
	Seed uint64
	// Tracer, when non-nil, records the run's typed event stream
	// (including receiver-side collision events).
	Tracer *obs.Tracer
	// Faults, when non-nil, injects the fault schedule: crashed forwarders
	// stay silent in their slot, and copies the oracle drops (receiver
	// down, partition, loss burst) never reach the receiver — so they do
	// not take part in collision resolution either (fading happens before
	// decoding).
	Faults faults.Model
	// Workers enables the sharded receiver fan-out of the calendar engine
	// (MACWorkspace.Run) when > 1. The scalar engine ignores it, and the
	// calendar engine's results are bit-identical for any value — it only
	// trades wall-clock for cores on large slot batches.
	Workers int
}

// CollisionResult extends Result with MAC-level accounting.
type CollisionResult struct {
	Result
	// Collisions counts receiver-side collision events (a slot in which a
	// node heard ≥ 2 transmissions and therefore decoded none).
	Collisions int
	// LostCopies counts the individual copies destroyed by collisions.
	LostCopies int
}

// RunMAC simulates one broadcast under the slotted collision model. The
// forwarding policy is the same Protocol interface as the ideal engine;
// nodes decide on their first successfully decoded copy (and on decoded
// duplicates, as in RunOpts).
func RunMAC(g *graph.Graph, source int, p Protocol, opt MACOptions) *CollisionResult {
	res := &CollisionResult{Result: Result{
		Source:     source,
		Forwarders: make(map[int]bool),
		Received:   make(map[int]bool),
		Parent:     make(map[int]int),
	}}
	res.Received[source] = true
	res.Forwarders[source] = true

	jitter := rng.NewLabeled(opt.Seed, "mac-jitter")
	draw := func() int {
		if opt.Jitter <= 0 {
			return 0
		}
		return jitter.Intn(opt.Jitter + 1)
	}

	acted := make(map[int]map[Packet]bool)
	mark := func(v int, pkt Packet) {
		m := acted[v]
		if m == nil {
			m = make(map[Packet]bool)
			acted[v] = m
		}
		m[pkt] = true
	}

	type tx struct {
		sender  int
		trigger int // upstream sender that caused this relay (-1: source)
		pkt     Packet
	}
	// slots[t] holds the transmissions scheduled for slot t. occ is a
	// min-heap of the occupied slot numbers, pushed once when a slot gains
	// its first transmission, so the loop jumps between occupied slots
	// instead of scanning every empty slot of the jitter window — with a
	// large Jitter and a thinned forwarder set (gossip tails, faults) most
	// slots are empty and the scan is pure waste. All pushes land strictly
	// after the slot being drained, so the popped sequence is exactly the
	// ascending occupied subsequence the scalar scan visited.
	slots := map[int][]tx{}
	var occ []int
	schedule := func(slot int, x tx) {
		if len(slots[slot]) == 0 {
			occ = append(occ, slot)
			for i := len(occ) - 1; i > 0; { // sift up
				p := (i - 1) / 2
				if occ[p] <= occ[i] {
					break
				}
				occ[p], occ[i] = occ[i], occ[p]
				i = p
			}
		}
		slots[slot] = append(slots[slot], x)
	}
	popSlot := func() int {
		t := occ[0]
		last := len(occ) - 1
		occ[0] = occ[last]
		occ = occ[:last]
		for i := 0; ; { // sift down
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && occ[c+1] < occ[c] {
				c++
			}
			if occ[i] <= occ[c] {
				break
			}
			occ[i], occ[c] = occ[c], occ[i]
			i = c
		}
		return t
	}
	tr := opt.Tracer
	if tr != nil {
		tr.SetTime(0)
	}
	start := p.Start(source)
	mark(source, start)
	schedule(0, tx{source, -1, start})
	transmissions := 0

	fo := opt.Faults
	for len(occ) > 0 {
		t := popSlot()
		batch := slots[t]
		delete(slots, t)
		if fo != nil {
			// Crashed forwarders stay silent; their slot reservation lapses.
			live := batch[:0]
			for _, x := range batch {
				if fo.NodeUp(x.sender, t) {
					live = append(live, x)
				}
			}
			batch = live
		}
		if tr != nil {
			tr.SetTime(t + 1)
			for _, x := range batch {
				tr.Send(t, x.sender, x.trigger)
			}
		}
		transmissions += len(batch)
		// Receiver-side resolution: count transmitting neighbors per node.
		heardBy := map[int][]tx{}
		for _, x := range batch {
			for _, v := range g.Neighbors(x.sender) {
				if fo != nil && (!fo.NodeUp(v, t+1) || !fo.LinkUp(x.sender, v, t+1) ||
					fo.CopyLost(x.sender, v, t+1)) {
					continue // the copy faded before reaching v
				}
				heardBy[v] = append(heardBy[v], x)
			}
		}
		// Receivers process in ascending order for determinism (protocol
		// state mutations must not depend on map iteration order).
		receivers := make([]int, 0, len(heardBy))
		for v := range heardBy {
			receivers = append(receivers, v)
		}
		sort.Ints(receivers)
		for _, v := range receivers {
			copies := heardBy[v]
			if len(copies) > 1 {
				res.Collisions++
				res.LostCopies += len(copies)
				if tr != nil {
					tr.Collision(t+1, v)
				}
				continue // all copies destroyed at this receiver
			}
			x := copies[0]
			var forward bool
			var out Packet
			if !res.Received[v] {
				res.Received[v] = true
				res.Parent[v] = x.sender
				if t+1 > res.Latency {
					res.Latency = t + 1
				}
				if tr != nil {
					tr.Deliver(t+1, v, x.sender)
				}
				forward, out = p.OnReceive(v, x.sender, x.pkt)
			} else {
				res.Duplicates++
				if tr != nil {
					tr.Duplicate(t+1, v, x.sender)
				}
				if acted[v][x.pkt] {
					continue
				}
				forward, out = p.OnDuplicate(v, x.sender, x.pkt)
			}
			if forward {
				res.Forwarders[v] = true
				mark(v, x.pkt)
				mark(v, out)
				schedule(t+1+draw(), tx{v, x.sender, out})
			}
		}
	}
	mRuns.Inc()
	mTransmissions.Add(int64(transmissions))
	mDeliveries.Add(int64(len(res.Received) - 1))
	mDuplicates.Add(int64(res.Duplicates))
	mMACCollisions.Add(int64(res.Collisions))
	mMACLostCopies.Add(int64(res.LostCopies))
	return res
}
