package broadcast

import "sort"

// designation is the payload of the sender-designating protocols: the set
// of neighbors the sender requests to relay.
type designation struct {
	forward map[int]bool
}

// designated reports whether v is asked to relay by pkt.
func designated(v int, pkt Packet) bool {
	d, ok := pkt.(*designation)
	return ok && d.forward[v]
}

// MPR implements broadcast by multipoint relaying (Qayyum, Viennot,
// Laouiti): every node v precomputes a multipoint relay set MPR(v) ⊆ N(v)
// covering its entire 2-hop neighborhood; a node relays iff the neighbor it
// heard the packet from has selected it as an MPR.
//
// The MPR selection is the standard two-stage heuristic: first take the
// neighbors that are the sole cover of some 2-hop node, then greedily add
// the neighbor covering the most uncovered 2-hop nodes.
type MPR struct {
	nb   *Neighborhood
	mpr  []map[int]bool // v -> MPR(v)
	pkts []*designation // cached payloads, one per node, so the engine can
	// deduplicate repeat designations by payload identity
}

// NewMPR precomputes MPR sets for every node of the neighborhood's graph.
func NewMPR(nb *Neighborhood) *MPR {
	n := nb.Graph().N()
	m := &MPR{nb: nb, mpr: make([]map[int]bool, n), pkts: make([]*designation, n)}
	for v := 0; v < n; v++ {
		m.mpr[v] = selectMPR(nb, v)
		m.pkts[v] = &designation{forward: m.mpr[v]}
	}
	return m
}

// selectMPR computes the multipoint relay set of v.
func selectMPR(nb *Neighborhood, v int) map[int]bool {
	targets := make(map[int]bool, len(nb.N2(v)))
	for w := range nb.N2(v) {
		targets[w] = true
	}
	selected := make(map[int]bool)
	neighbors := nb.Graph().Neighbors(v)

	// Stage 1: neighbors that are the only path to some 2-hop node.
	coverCount := make(map[int]int, len(targets))
	soleCover := make(map[int]int, len(targets))
	for _, u := range neighbors {
		for w := range nb.N1(u) {
			if targets[w] {
				coverCount[w]++
				soleCover[w] = u
			}
		}
	}
	for w, c := range coverCount {
		if c == 1 {
			selected[soleCover[w]] = true
		}
	}
	for u := range selected {
		for w := range nb.N1(u) {
			delete(targets, w)
		}
	}

	// Stage 2: greedy max cover for the rest.
	rest := greedyCover(targets, neighbors, func(c int) map[int]bool { return nb.N1(c) })
	for _, u := range rest {
		selected[u] = true
	}
	return selected
}

// Set returns MPR(v) (owned by the protocol).
func (m *MPR) Set(v int) map[int]bool { return m.mpr[v] }

// Name implements Protocol.
func (m *MPR) Name() string { return "mpr" }

// Start implements Protocol.
func (m *MPR) Start(source int) Packet { return m.pkts[source] }

// OnReceive implements Protocol: relay iff the transmitter selected v.
func (m *MPR) OnReceive(v, x int, pkt Packet) (bool, Packet) {
	if designated(v, pkt) {
		return true, m.pkts[v]
	}
	return false, nil
}

// OnDuplicate implements Protocol: a later transmitter may designate v.
func (m *MPR) OnDuplicate(v, x int, pkt Packet) (bool, Packet) {
	return m.OnReceive(v, x, pkt)
}

// DP implements dominant pruning (Lim, Kim): the sender picks a forward
// list from its neighbors that covers its 2-hop neighborhood, excluding
// nodes already covered by the upstream sender's transmission.
type DP struct {
	nb *Neighborhood
	// pkts caches the payload minted for each (sender, upstream) pair.
	// Forward lists are deterministic in that pair, and reusing one payload
	// identity per pair lets the engine bound repeat designations.
	pkts map[[2]int]*designation
}

// NewDP builds the protocol over a neighborhood cache.
func NewDP(nb *Neighborhood) *DP { return &DP{nb: nb, pkts: make(map[[2]int]*designation)} }

// Name implements Protocol.
func (d *DP) Name() string { return "dp" }

// forwardList computes v's forward list given that v heard the packet from
// upstream u (u < 0 for the source).
func (d *DP) forwardList(v, u int) map[int]bool {
	nb := d.nb
	// Targets: 2-hop neighbors of v not already reached by u's
	// transmission and not reached by v's own upcoming transmission.
	targets := make(map[int]bool)
	for w := range nb.N2(v) {
		if u >= 0 && (w == u || nb.N1(u)[w]) {
			continue
		}
		targets[w] = true
	}
	// Candidates: v's neighbors that did not already receive from u.
	var candidates []int
	for _, c := range nb.Graph().Neighbors(v) {
		if u >= 0 && (c == u || nb.N1(u)[c]) {
			continue
		}
		candidates = append(candidates, c)
	}
	sort.Ints(candidates)
	chosen := greedyCover(targets, candidates, func(c int) map[int]bool { return nb.N1(c) })
	out := make(map[int]bool, len(chosen))
	for _, c := range chosen {
		out[c] = true
	}
	return out
}

// packetFor returns the cached payload for sender v with upstream u.
func (d *DP) packetFor(v, u int) *designation {
	key := [2]int{v, u}
	if p, ok := d.pkts[key]; ok {
		return p
	}
	p := &designation{forward: d.forwardList(v, u)}
	d.pkts[key] = p
	return p
}

// Start implements Protocol.
func (d *DP) Start(source int) Packet {
	return d.packetFor(source, -1)
}

// OnReceive implements Protocol.
func (d *DP) OnReceive(v, x int, pkt Packet) (bool, Packet) {
	if designated(v, pkt) {
		return true, d.packetFor(v, x)
	}
	return false, nil
}

// OnDuplicate implements Protocol.
func (d *DP) OnDuplicate(v, x int, pkt Packet) (bool, Packet) {
	return d.OnReceive(v, x, pkt)
}

// PDP implements partial dominant pruning (Lou, Wu 2002), the tighter
// variant of DP: in addition to N(u), the nodes covered by the common
// neighbors of u and v — N(N(u) ∩ N(v)) — are excluded from the target
// set, because those common neighbors received the packet simultaneously
// with v and will have their own chance to cover them.
type PDP struct {
	nb   *Neighborhood
	pkts map[[2]int]*designation // see DP.pkts
}

// NewPDP builds the protocol over a neighborhood cache.
func NewPDP(nb *Neighborhood) *PDP { return &PDP{nb: nb, pkts: make(map[[2]int]*designation)} }

// Name implements Protocol.
func (p *PDP) Name() string { return "pdp" }

func (p *PDP) forwardList(v, u int) map[int]bool {
	nb := p.nb
	excluded := make(map[int]bool)
	if u >= 0 {
		excluded[u] = true
		for w := range nb.N1(u) {
			excluded[w] = true
		}
		// N(N(u) ∩ N(v)): neighbors of the common neighbors.
		for c := range nb.N1(u) {
			if !nb.N1(v)[c] {
				continue
			}
			for w := range nb.N1(c) {
				excluded[w] = true
			}
		}
	}
	targets := make(map[int]bool)
	for w := range nb.N2(v) {
		if !excluded[w] {
			targets[w] = true
		}
	}
	var candidates []int
	for _, c := range nb.Graph().Neighbors(v) {
		if u >= 0 && (c == u || nb.N1(u)[c]) {
			continue
		}
		candidates = append(candidates, c)
	}
	sort.Ints(candidates)
	chosen := greedyCover(targets, candidates, func(c int) map[int]bool { return nb.N1(c) })
	out := make(map[int]bool, len(chosen))
	for _, c := range chosen {
		out[c] = true
	}
	return out
}

// packetFor returns the cached payload for sender v with upstream u.
func (p *PDP) packetFor(v, u int) *designation {
	key := [2]int{v, u}
	if d, ok := p.pkts[key]; ok {
		return d
	}
	d := &designation{forward: p.forwardList(v, u)}
	p.pkts[key] = d
	return d
}

// Start implements Protocol.
func (p *PDP) Start(source int) Packet {
	return p.packetFor(source, -1)
}

// OnReceive implements Protocol.
func (p *PDP) OnReceive(v, x int, pkt Packet) (bool, Packet) {
	if designated(v, pkt) {
		return true, p.packetFor(v, x)
	}
	return false, nil
}

// OnDuplicate implements Protocol.
func (p *PDP) OnDuplicate(v, x int, pkt Packet) (bool, Packet) {
	return p.OnReceive(v, x, pkt)
}
