package broadcast

import (
	"fmt"

	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// Flooding is blind flooding: every node forwards the packet on first
// reception. It is the upper baseline of the broadcast storm problem — the
// forward node set is the entire (reached) network.
type Flooding struct{ NoDuplicates }

// Name implements Protocol.
func (Flooding) Name() string { return "flooding" }

// Start implements Protocol.
func (Flooding) Start(source int) Packet { return nil }

// OnReceive implements Protocol.
func (Flooding) OnReceive(v, x int, pkt Packet) (bool, Packet) { return true, nil }

// Gossip forwards with fixed probability P. The per-node coin flips are
// derived deterministically from Seed so that repeated runs of one
// experiment replicate exactly.
type Gossip struct {
	NoDuplicates
	P    float64
	Seed uint64
}

// Name implements Protocol.
func (g Gossip) Name() string { return fmt.Sprintf("gossip(%.2f)", g.P) }

// Start implements Protocol.
func (g Gossip) Start(source int) Packet { return nil }

// OnReceive implements Protocol.
func (g Gossip) OnReceive(v, x int, pkt Packet) (bool, Packet) {
	// The stream must depend on seed and node jointly (nodeHash), not
	// additively: Seed+v·odd made node v+1 under seed s share its coin with
	// node v under seed s+odd, correlating adjacent replicates.
	r := rng.NewLabeled(nodeHash(g.Seed, v), "gossip")
	return r.Bool(g.P), nil
}

// StaticCDS forwards through a precomputed source-independent CDS: a node
// relays iff it belongs to the set. Used to broadcast over the cluster-based
// static backbone and over the MO_CDS baseline (paper §3, "Broadcasting in
// a Cluster-Based SI-CDS Backbone").
type StaticCDS struct {
	NoDuplicates
	// Set is the CDS membership.
	Set map[int]bool
	// Label distinguishes which CDS is in use in experiment output.
	Label string
}

// Name implements Protocol.
func (s StaticCDS) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "static-cds"
}

// Start implements Protocol.
func (s StaticCDS) Start(source int) Packet { return nil }

// OnReceive implements Protocol.
func (s StaticCDS) OnReceive(v, x int, pkt Packet) (bool, Packet) {
	return s.Set[v], nil
}

// StaticCDSBits is StaticCDS with the membership held as a bitset — the
// allocation-free variant used by workspace-backed estimators (a bitset
// borrowed from a workspace instead of a materialized map).
type StaticCDSBits struct {
	NoDuplicates
	// Set is the CDS membership.
	Set *graph.Bitset
	// Label distinguishes which CDS is in use in experiment output.
	Label string
}

// Name implements Protocol.
func (s StaticCDSBits) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "static-cds"
}

// Start implements Protocol.
func (s StaticCDSBits) Start(source int) Packet { return nil }

// OnReceive implements Protocol.
func (s StaticCDSBits) OnReceive(v, x int, pkt Packet) (bool, Packet) {
	return s.Set.Has(v), nil
}
