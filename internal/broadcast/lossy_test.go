package broadcast

import (
	"strings"
	"testing"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func TestLossyZeroMatchesIdeal(t *testing.T) {
	nw := randomNet(t, 21, 50, 10)
	ideal := Run(nw.G, 0, Flooding{})
	lossy := RunOpts(nw.G, 0, Flooding{}, Options{Loss: 0, Seed: 1})
	if len(ideal.Received) != len(lossy.Received) || ideal.ForwardCount() != lossy.ForwardCount() {
		t.Fatal("Loss=0 must behave exactly like the ideal model")
	}
}

func TestLossyTotalLossDeliversNothing(t *testing.T) {
	nw := randomNet(t, 22, 40, 8)
	res := RunOpts(nw.G, 0, Flooding{}, Options{Loss: 1, Seed: 1})
	if len(res.Received) != 1 {
		t.Fatalf("Loss=1 should deliver to nobody, got %d receivers", len(res.Received))
	}
}

func TestLossyDeterministic(t *testing.T) {
	nw := randomNet(t, 23, 50, 10)
	a := RunOpts(nw.G, 3, Flooding{}, Options{Loss: 0.3, Seed: 99})
	b := RunOpts(nw.G, 3, Flooding{}, Options{Loss: 0.3, Seed: 99})
	if len(a.Received) != len(b.Received) || a.ForwardCount() != b.ForwardCount() {
		t.Fatal("equal seeds must replicate the lossy run exactly")
	}
	c := RunOpts(nw.G, 3, Flooding{}, Options{Loss: 0.3, Seed: 100})
	if len(a.Received) == len(c.Received) && a.ForwardCount() == c.ForwardCount() &&
		len(a.Received) == nw.G.N() {
		// Different seeds usually differ; identical full delivery on both is
		// possible but then the test is vacuous — just accept.
		t.Log("both seeds delivered fully")
	}
}

// TestLossyRedundancyHelps quantifies the redundancy/reliability
// trade-off: under 20% loss, flooding (massive redundancy) delivers to
// more nodes than the minimal static backbone broadcast.
func TestLossyRedundancyHelps(t *testing.T) {
	root := rng.New(4)
	floodSum, cdsSum := 0, 0
	const trials = 25
	for i := 0; i < trials; i++ {
		nw, err := topology.Generate(topology.Config{
			N: 60, Bounds: geom.Square(100), AvgDegree: 10,
			RequireConnected: true, MaxAttempts: 300,
		}, root)
		if err != nil {
			t.Fatal(err)
		}
		// A thin CDS: same set used by both runs below would be ideal, but
		// a simple 2-hop dominator chain suffices — use flooding's forward
		// set on an ideal run minus redundancy via gossip 0.3 membership.
		// Instead, use a deterministic thin set: BFS layers mod 3 == 0.
		dist := nw.G.BFS(0)
		thin := map[int]bool{}
		for v, d := range dist {
			if d%3 == 0 {
				thin[v] = true
			}
		}
		opt := Options{Loss: 0.2, Seed: uint64(i)}
		flood := RunOpts(nw.G, 0, Flooding{}, opt)
		cds := RunOpts(nw.G, 0, StaticCDS{Set: thin}, opt)
		floodSum += len(flood.Received)
		cdsSum += len(cds.Received)
	}
	if floodSum <= cdsSum {
		t.Fatalf("flooding under loss (%d) should out-deliver a thin forward set (%d)",
			floodSum, cdsSum)
	}
	t.Logf("delivered under 20%% loss over %d trials: flooding=%d thin-set=%d", trials, floodSum, cdsSum)
}

func TestDeliveryTreeParents(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	res := Run(g, 0, Flooding{})
	// On a path the delivery tree is the path itself.
	want := map[int]int{1: 0, 2: 1, 3: 2}
	for v, p := range want {
		if res.Parent[v] != p {
			t.Fatalf("Parent[%d] = %d, want %d", v, res.Parent[v], p)
		}
	}
	if _, ok := res.Parent[0]; ok {
		t.Fatal("source must have no parent")
	}
}

func TestDeliveryTreeReachesSource(t *testing.T) {
	nw := randomNet(t, 31, 60, 10)
	res := Run(nw.G, 5, Flooding{})
	for v := range res.Received {
		steps := 0
		for x := v; x != 5; x = res.Parent[x] {
			if _, ok := res.Parent[x]; !ok {
				t.Fatalf("node %d: broken parent chain at %d", v, x)
			}
			steps++
			if steps > nw.G.N() {
				t.Fatalf("node %d: parent cycle", v)
			}
		}
	}
}

func TestDeliveryTreeDOT(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	res := Run(g, 0, Flooding{})
	dot := res.DeliveryTreeDOT("bc")
	for _, want := range []string{"digraph bc", "0 -> 1", "1 -> 2", "fillcolor=black"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	if res.DeliveryTreeDOT("bc") != dot {
		t.Fatal("DOT output must be deterministic")
	}
}

func TestDuplicatesCounting(t *testing.T) {
	// Triangle, flooding: source transmits (2 deliveries), both others
	// forward; each of their transmissions delivers 2 copies, of which all
	// 4 land on nodes that already have the packet.
	g := graph.FromEdges(3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	res := Run(g, 0, Flooding{})
	if res.Duplicates != 4 {
		t.Fatalf("Duplicates = %d, want 4", res.Duplicates)
	}
	if got := res.Redundancy(); got != 4.0/3 {
		t.Fatalf("Redundancy = %g, want 4/3", got)
	}
}

func TestBackboneReducesRedundancy(t *testing.T) {
	nw := randomNet(t, 51, 80, 18)
	flood := Run(nw.G, 0, Flooding{})
	dist := nw.G.BFS(0)
	thin := map[int]bool{}
	for v, d := range dist {
		if d%2 == 0 {
			thin[v] = true
		}
	}
	cds := Run(nw.G, 0, StaticCDS{Set: thin})
	if cds.Duplicates >= flood.Duplicates {
		t.Fatalf("thin set duplicates %d should be below flooding's %d",
			cds.Duplicates, flood.Duplicates)
	}
}
