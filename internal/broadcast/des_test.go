package broadcast

import (
	"bytes"
	"reflect"
	"testing"

	"clustercast/internal/faults"
	"clustercast/internal/obs"
	"clustercast/internal/rng"
)

// Equivalence gates for the internal/des calendar ports: the scalar
// engines are the golden reference, and every port must replay them
// bit-identically — results, protocol callbacks (observed through the
// results), randomness consumption, and the typed trace stream
// (compared as JSONL bytes).

// traceBytes drains a tracer to its canonical JSONL form.
func traceBytes(t *testing.T, tr *obs.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// burstOracle builds a deterministic fault oracle with churn, bursty
// loss, and a partition window — every fault axis at once.
func burstOracle(t *testing.T, n int, seed uint64) *faults.Oracle {
	t.Helper()
	spec := faults.Spec{MeanUp: 40, MeanDown: 12, Seed: seed}
	if err := spec.SetBurst(0.15, 3); err != nil {
		t.Fatal(err)
	}
	spec.MeanUp, spec.MeanDown = 40, 12
	return faults.New(spec, n)
}

func TestDESIdealEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  func(n int) Options
	}{
		{"ideal", func(int) Options { return Options{} }},
		{"lossy", func(int) Options { return Options{Loss: 0.25, Seed: 99} }},
		{"faults", func(n int) Options { return Options{Faults: burstOracle(t, n, 7)} }},
		{"lossy-faults", func(n int) Options { return Options{Loss: 0.1, Seed: 3, Faults: burstOracle(t, n, 8)} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				nw := randomNet(t, 100+uint64(trial), 40+10*trial, 8)
				n := nw.G.N()
				ps := []Protocol{
					Flooding{},
					Gossip{P: 0.7, Seed: 11},
					StaticCDS{Set: map[int]bool{0: true, 1: true, 2: true, 5: true, 7: true}, Label: "cds"},
					NewDP(NewNeighborhood(nw.G)),
				}
				for _, p := range ps {
					source := trial % n
					trA, trB := obs.NewTracer(1<<14), obs.NewTracer(1<<14)
					optA, optB := tc.opt(n), tc.opt(n)
					optA.Tracer, optB.Tracer = trA, trB
					// Fresh oracles per engine: the oracle's per-link query
					// cursors are part of the replayed sequence.
					if optA.Faults != nil {
						optA.Faults = burstOracle(t, n, uint64(7+trial))
						optB.Faults = burstOracle(t, n, uint64(7+trial))
					}
					wsA, wsB := NewWorkspace(), NewWorkspace()
					a := wsA.RunOpts(nw.G, source, p, optA).Materialize()
					b := wsB.RunDESOpts(nw.G, source, p, optB).Materialize()
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("trial %d %s: scalar and DES results differ:\n%+v\n%+v", trial, p.Name(), a, b)
					}
					if !bytes.Equal(traceBytes(t, trA), traceBytes(t, trB)) {
						t.Fatalf("trial %d %s: trace streams differ", trial, p.Name())
					}
				}
			}
		})
	}
}

func TestDESIdealMatchesLegacyRun(t *testing.T) {
	nw := randomNet(t, 5, 60, 9)
	a := Run(nw.G, 3, Flooding{})
	b := RunDESIdeal(nw.G, 3, Flooding{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("package-level RunDESIdeal differs from Run:\n%+v\n%+v", a, b)
	}
}

func TestDESTimedEquivalence(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		nw := randomNet(t, 200+uint64(trial), 40+10*trial, 8)
		n := nw.G.N()
		nb := NewNeighborhood(nw.G)
		ps := []TimedProtocol{
			NewSBA(nb, 6, 17),
			CounterBased{Threshold: 3, MaxDelay: 5, Seed: 23},
			DistanceBased{Positions: nw.Positions, MinDistance: 20, MaxDelay: 4, Seed: 29},
		}
		for _, withFaults := range []bool{false, true} {
			for _, p := range ps {
				source := (trial * 3) % n
				trA, trB := obs.NewTracer(1<<14), obs.NewTracer(1<<14)
				optA, optB := TimedOptions{Tracer: trA}, TimedOptions{Tracer: trB}
				if withFaults {
					optA.Faults = burstOracle(t, n, uint64(40+trial))
					optB.Faults = burstOracle(t, n, uint64(40+trial))
				}
				a := RunTimedOpts(nw.G, source, p, optA)
				tw := NewTimedWorkspace()
				b := tw.Run(nw.G, source, p, optB)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("trial %d %s faults=%v: scalar and DES results differ:\n%+v\n%+v",
						trial, p.Name(), withFaults, a, b)
				}
				if !bytes.Equal(traceBytes(t, trA), traceBytes(t, trB)) {
					t.Fatalf("trial %d %s faults=%v: trace streams differ", trial, p.Name(), withFaults)
				}
			}
		}
	}
}

func TestDESMACEquivalence(t *testing.T) {
	defer func(old int) { desMACParallelMin = old }(desMACParallelMin)
	desMACParallelMin = 1 // force the sharded path even on small slot batches
	for trial := 0; trial < 5; trial++ {
		nw := randomNet(t, 300+uint64(trial), 40+12*trial, 9)
		n := nw.G.N()
		ps := []Protocol{
			Flooding{},
			Gossip{P: 0.8, Seed: 31},
			StaticCDS{Set: map[int]bool{0: true, 2: true, 4: true, 6: true, 9: true}, Label: "cds"},
		}
		for _, jit := range []int{0, 3, 8} {
			for _, withFaults := range []bool{false, true} {
				for _, p := range ps {
					source := (trial * 5) % n
					trA := obs.NewTracer(1 << 14)
					optA := MACOptions{Jitter: jit, Seed: uint64(60 + trial), Tracer: trA}
					if withFaults {
						optA.Faults = burstOracle(t, n, uint64(70+trial))
					}
					a := RunMAC(nw.G, source, p, optA)
					workerSet := []int{0, 2, 5, 8}
					if withFaults {
						workerSet = []int{0} // oracle query order pins the sequential path
					}
					for _, workers := range workerSet {
						trB := obs.NewTracer(1 << 14)
						optB := optA
						optB.Tracer, optB.Workers = trB, workers
						if withFaults {
							optB.Faults = burstOracle(t, n, uint64(70+trial))
						}
						mw := NewMACWorkspace()
						b := mw.Run(nw.G, source, p, optB).Materialize()
						if !reflect.DeepEqual(&a.Result, &b.Result) ||
							a.Collisions != b.Collisions || a.LostCopies != b.LostCopies {
							t.Fatalf("trial %d %s jit=%d faults=%v workers=%d: scalar and DES differ:\n%+v\n%+v",
								trial, p.Name(), jit, withFaults, workers, a, b)
						}
						if !bytes.Equal(traceBytes(t, trA), traceBytes(t, trB)) {
							t.Fatalf("trial %d %s jit=%d faults=%v workers=%d: trace streams differ",
								trial, p.Name(), jit, withFaults, workers)
						}
					}
				}
			}
		}
	}
}

// TestDESMACScheduleProperty is the randomized slot-schedule property
// gate: across random topologies, sources, seeds and contention
// windows, the calendar port reproduces the scalar collision table's
// (slot, sender, trigger) schedule exactly — including slots assigned
// through the `slot := t + 1 + draw()` backoff path (Jitter > 0 makes
// every forward take it).
func TestDESMACScheduleProperty(t *testing.T) {
	schedule := func(tr *obs.Tracer) [][3]int {
		var out [][3]int
		for _, ev := range tr.Events() {
			if ev.Kind == obs.EvSend {
				out = append(out, [3]int{ev.T, ev.Node, ev.Peer})
			}
		}
		return out
	}
	r := rng.New(0xDE5)
	for trial := 0; trial < 40; trial++ {
		n := 20 + r.Intn(60)
		nw := randomNet(t, 500+uint64(trial), n, 6+float64(r.Intn(5)))
		n = nw.G.N()
		opt := MACOptions{
			Jitter: 1 + r.Intn(9), // always > 0: every relay goes through the backoff draw
			Seed:   r.Uint64(),
		}
		source := r.Intn(n)
		p := Gossip{P: 0.9, Seed: r.Uint64()}
		trA := obs.NewTracer(1 << 14)
		optA := opt
		optA.Tracer = trA
		RunMAC(nw.G, source, p, optA)
		trB := obs.NewTracer(1 << 14)
		optB := opt
		optB.Tracer = trB
		NewMACWorkspace().Run(nw.G, source, p, optB)
		a, b := schedule(trA), schedule(trB)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d (n=%d jitter=%d): (slot, sender, trigger) schedules diverge:\nscalar %v\ndes    %v",
				trial, n, opt.Jitter, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("trial %d: empty schedule — property exercised nothing", trial)
		}
	}
}

// FuzzDESMACAgree cross-checks the scalar and calendar MAC engines on
// fuzzer-chosen (size, degree, jitter, seed, gossip) points.
func FuzzDESMACAgree(f *testing.F) {
	f.Add(uint64(1), 40, 8, 3, uint64(9), float64(0.8))
	f.Add(uint64(7), 25, 6, 0, uint64(2), float64(1.0))
	f.Add(uint64(42), 60, 10, 12, uint64(77), float64(0.5))
	f.Fuzz(func(t *testing.T, topoSeed uint64, n, deg, jitter int, seed uint64, gp float64) {
		if n < 5 || n > 120 || deg < 3 || deg > 14 || jitter < 0 || jitter > 20 || gp < 0 || gp > 1 {
			t.Skip()
		}
		nw := randomNet(t, topoSeed, n, float64(deg))
		n = nw.G.N()
		p := Gossip{P: gp, Seed: seed + 1}
		opt := MACOptions{Jitter: jitter, Seed: seed}
		a := RunMAC(nw.G, 0, p, opt)
		b := NewMACWorkspace().Run(nw.G, 0, p, opt).Materialize()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scalar and DES MAC runs differ:\n%+v\n%+v", a, b)
		}
	})
}

// FuzzDESIdealAgree cross-checks the scalar and calendar ideal engines
// under fuzzer-chosen loss.
func FuzzDESIdealAgree(f *testing.F) {
	f.Add(uint64(1), 40, 8, float64(0.2), uint64(5))
	f.Add(uint64(3), 70, 6, float64(0.0), uint64(1))
	f.Fuzz(func(t *testing.T, topoSeed uint64, n, deg int, loss float64, seed uint64) {
		if n < 5 || n > 120 || deg < 3 || deg > 14 || loss < 0 || loss > 0.9 {
			t.Skip()
		}
		nw := randomNet(t, topoSeed, n, float64(deg))
		opt := Options{Loss: loss, Seed: seed}
		a := NewWorkspace().RunOpts(nw.G, 0, Flooding{}, opt).Materialize()
		b := NewWorkspace().RunDESOpts(nw.G, 0, Flooding{}, opt).Materialize()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scalar and DES ideal runs differ:\n%+v\n%+v", a, b)
		}
	})
}

// TestDESIdealSteadyStateAllocs pins the zero-allocation contract of
// the calendar event loop (ideal engine, alloc-free protocol).
func TestDESIdealSteadyStateAllocs(t *testing.T) {
	nw := randomNet(t, 9, 80, 8)
	ws := NewWorkspace()
	run := func() { ws.RunDESOpts(nw.G, 0, Flooding{}, Options{}) }
	run()
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Fatalf("DES ideal event loop allocates %.1f/run, want 0", avg)
	}
}

// TestDESMACSteadyStateAllocs pins the same contract for the MAC
// engine's sequential path (the dense result is not materialized).
func TestDESMACSteadyStateAllocs(t *testing.T) {
	nw := randomNet(t, 10, 80, 8)
	mw := NewMACWorkspace()
	opt := MACOptions{Jitter: 6, Seed: 4}
	run := func() { mw.Run(nw.G, 0, Flooding{}, opt) }
	run()
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Fatalf("DES MAC event loop allocates %.1f/run, want 0", avg)
	}
}
