package broadcast

import (
	"fmt"

	"clustercast/internal/geom"
)

// CounterBased implements the counter-based scheme of the broadcast storm
// paper (Ni, Tseng, Chen, Sheu — the paper's [9]): a node waits a random
// back-off and forwards only if it overheard fewer than Threshold copies.
// The intuition: after c copies, the expected additional coverage of one
// more transmission is marginal (the paper's analysis puts the knee at
// c ≈ 3–4).
type CounterBased struct {
	// Threshold is the copy count at which a node resigns (≥ 1).
	Threshold int
	// MaxDelay is the back-off window in time units.
	MaxDelay int
	// Seed drives the per-node delay draw.
	Seed uint64
}

var _ TimedProtocol = CounterBased{}

// Name implements TimedProtocol.
func (c CounterBased) Name() string { return fmt.Sprintf("counter(%d)", c.Threshold) }

// Delay implements TimedProtocol.
func (c CounterBased) Delay(v int) int {
	return backoffDelay(c.Seed, v, c.MaxDelay)
}

// Decide implements TimedProtocol: forward iff fewer than Threshold copies
// were overheard during the back-off.
func (c CounterBased) Decide(v int, heard []int) bool {
	return len(heard) < c.Threshold
}

// DistanceBased implements the distance-based scheme of the same paper: a
// node forwards only when every transmitter it overheard is closer than
// MinDistance — a nearby transmitter's disk already covers almost all of
// the node's own disk, so relaying adds little area.
type DistanceBased struct {
	// Positions are the node coordinates (the scheme needs geometry).
	Positions []geom.Point
	// MinDistance is the threshold: resign when some heard transmitter is
	// closer than this.
	MinDistance float64
	// MaxDelay and Seed configure the back-off as in CounterBased.
	MaxDelay int
	Seed     uint64
}

var _ TimedProtocol = DistanceBased{}

// Name implements TimedProtocol.
func (d DistanceBased) Name() string { return fmt.Sprintf("distance(%.1f)", d.MinDistance) }

// Delay implements TimedProtocol.
func (d DistanceBased) Delay(v int) int {
	return backoffDelay(d.Seed, v, d.MaxDelay)
}

// Decide implements TimedProtocol: forward iff all heard transmitters are
// at least MinDistance away.
func (d DistanceBased) Decide(v int, heard []int) bool {
	pv := d.Positions[v]
	for _, x := range heard {
		if pv.Dist(d.Positions[x]) < d.MinDistance {
			return false
		}
	}
	return true
}
