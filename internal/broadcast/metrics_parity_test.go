package broadcast

import (
	"fmt"
	"reflect"
	"testing"

	"clustercast/internal/faults"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
)

// parityCounters are the whole-run totals every broadcast engine folds; an
// engine swap (scalar ↔ calendar ↔ 64-wide batch) must leave them invariant.
var parityCounters = []string{
	"broadcast.runs", "broadcast.transmissions", "broadcast.deliveries",
	"broadcast.duplicates", "broadcast.fault_dropped_copies",
}

// counterTotals runs f with metrics enabled and returns how much each named
// counter moved (the Default registry is shared across the test binary, so
// parity is asserted on deltas, never absolutes).
func counterTotals(t *testing.T, names []string, f func()) map[string]int64 {
	t.Helper()
	before := make(map[string]int64, len(names))
	for _, n := range names {
		before[n] = obs.Default.Counter(n).Value()
	}
	obs.Enable()
	defer obs.Disable()
	f()
	out := make(map[string]int64, len(names))
	for _, n := range names {
		out[n] = obs.Default.Counter(n).Value() - before[n]
	}
	return out
}

// TestMetricsParityScalarDESBatch: one 64-wide batch run folds exactly the
// broadcast.* totals of its 64 scalar lane replays, and the calendar engine
// folds the same totals as the scalar engine — for a deterministic protocol,
// a lane-coin gossip, and a loss-chain fault spec.
func TestMetricsParityScalarDESBatch(t *testing.T) {
	nw := randomNet(t, 91, 50, 8)
	g := nw.G
	spec := &faults.Spec{Seed: 13}
	if err := spec.SetBurst(0.2, 1); err != nil { // burstLen 1 = i.i.d. loss
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		proto BatchProtocol
		spec  *faults.Spec
	}{
		{"flooding-ideal", BatchFlooding{}, nil},
		{"gossip-ideal", BatchGossip{P: 0.6, Seed: 9}, nil},
		{"flooding-loss", BatchFlooding{}, spec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			laneOpts := func() []Options {
				opts := make([]Options, graph.LaneCount)
				if tc.spec != nil {
					ref := faults.NewChainBatch(*tc.spec)
					for r := range opts {
						opts[r].Faults = faults.LaneModel{Batch: ref, Lane: r}
					}
				}
				return opts
			}
			scalar := counterTotals(t, parityCounters, func() {
				var sw Workspace
				for r, o := range laneOpts() {
					sw.RunOpts(g, 0, tc.proto.Lane(r), o)
				}
			})
			des := counterTotals(t, parityCounters, func() {
				var dw Workspace
				for r, o := range laneOpts() {
					dw.RunDESOpts(g, 0, tc.proto.Lane(r), o)
				}
			})
			batch := counterTotals(t, parityCounters, func() {
				var opt BatchOptions
				if tc.spec != nil {
					opt.Chains = faults.NewChainBatch(*tc.spec)
				}
				var bw BatchWorkspace
				bw.Run(g, 0, tc.proto, opt)
			})
			if !reflect.DeepEqual(scalar, des) {
				t.Fatalf("scalar %v != calendar %v", scalar, des)
			}
			if !reflect.DeepEqual(scalar, batch) {
				t.Fatalf("scalar %v != batch %v", scalar, batch)
			}
			if scalar["broadcast.runs"] != graph.LaneCount {
				t.Fatalf("runs = %d, want %d", scalar["broadcast.runs"], graph.LaneCount)
			}
			if scalar["broadcast.deliveries"] == 0 {
				t.Fatal("parity on all-zero totals proves nothing")
			}
		})
	}
}

// TestMetricsParityMACWorkers: the sharded MAC calendar engine folds the
// same mac.* and broadcast.* totals as the sequential scalar MAC engine for
// every worker count — the shard exchange may reorder work but never
// invents or loses an event.
func TestMetricsParityMACWorkers(t *testing.T) {
	nw := randomNet(t, 92, 60, 9)
	g := nw.G
	macCounters := append([]string{"mac.collisions", "mac.lost_copies"}, parityCounters...)
	opt := MACOptions{Jitter: 3, Seed: 7}
	want := counterTotals(t, macCounters, func() {
		RunMAC(g, 0, Flooding{}, opt)
	})
	if want["mac.collisions"] == 0 && want["mac.lost_copies"] == 0 {
		t.Fatal("baseline run exercised no MAC contention")
	}
	for w := 1; w <= 8; w++ {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			o := opt
			o.Workers = w
			got := counterTotals(t, macCounters, func() {
				RunMACDES(g, 0, Flooding{}, o)
			})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d totals %v != scalar %v", w, got, want)
			}
		})
	}
}
