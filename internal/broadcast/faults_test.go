package broadcast

import (
	"testing"

	"clustercast/internal/faults"
	"clustercast/internal/geom"
)

func TestFaultsNilOracleMatchesIdeal(t *testing.T) {
	nw := randomNet(t, 31, 50, 10)
	ideal := Run(nw.G, 0, Flooding{})
	faulted := RunOpts(nw.G, 0, Flooding{}, Options{Faults: nil})
	if len(ideal.Received) != len(faulted.Received) || ideal.ForwardCount() != faulted.ForwardCount() {
		t.Fatal("nil oracle must behave exactly like the ideal model")
	}
	// A zero-spec oracle injects nothing either.
	o := faults.New(faults.Spec{}, nw.G.N())
	zero := RunOpts(nw.G, 0, Flooding{}, Options{Faults: o})
	if len(ideal.Received) != len(zero.Received) || ideal.ForwardCount() != zero.ForwardCount() {
		t.Fatal("zero-spec oracle must behave exactly like the ideal model")
	}
}

func TestFaultsDeterministicReplay(t *testing.T) {
	nw := randomNet(t, 32, 60, 10)
	spec := faults.Spec{MeanUp: 30, MeanDown: 10, Seed: 5}
	if err := spec.SetBurst(0.2, 4); err != nil {
		t.Fatal(err)
	}
	spec.MeanUp, spec.MeanDown = 30, 10 // SetBurst does not touch churn
	run := func() *Result {
		return RunOpts(nw.G, 0, Flooding{}, Options{Faults: faults.New(spec, nw.G.N())})
	}
	a, b := run(), run()
	if len(a.Received) != len(b.Received) || a.ForwardCount() != b.ForwardCount() ||
		a.Duplicates != b.Duplicates {
		t.Fatal("same spec + seed must replicate the faulted run exactly")
	}
}

func TestFaultsDownSourceNeverSpreads(t *testing.T) {
	g := pathGraph(5)
	// MeanUp tiny, MeanDown huge: every node crashes almost immediately and
	// stays down past the horizon; with warmup the source is dead at t=0.
	spec := faults.Spec{MeanUp: 1e-6, MeanDown: 1e9, Seed: 1, Warmup: 10}
	o := faults.New(spec, 5)
	if o.NodeUp(0, 0) {
		t.Skip("source drew an unlikely long up period")
	}
	res := RunOpts(g, 0, Flooding{}, Options{Faults: o})
	if len(res.Received) != 1 {
		t.Fatalf("a down source must not spread, got %d receivers", len(res.Received))
	}
}

func TestFaultsLossBurstBlocksPath(t *testing.T) {
	g := pathGraph(4)
	// Bad state from a long burst with rate→1 loses everything; verify the
	// engines drop copies when the chain is bad at the transmission slot.
	spec := faults.Spec{LossGood: 1, LossBad: 1, Seed: 2}
	o := faults.New(spec, 4)
	res := RunOpts(g, 0, Flooding{}, Options{Faults: o})
	if len(res.Received) != 1 {
		t.Fatalf("total fault loss should deliver to nobody, got %d", len(res.Received))
	}
}

func TestFaultsPartitionSplitsDelivery(t *testing.T) {
	// Path 0-1-2-3 with a partition between 1 and 2 for the whole run.
	g := pathGraph(4)
	spec := faults.Spec{Partitions: []faults.Partition{
		{Start: 0, End: 1 << 30, Vertical: true, Coord: 1.5},
	}}
	o := faults.New(spec, 4)
	o.SetPositions(positionsOnLine(4))
	res := RunOpts(g, 0, Flooding{}, Options{Faults: o})
	if res.Received[2] || res.Received[3] {
		t.Fatal("partitioned nodes must not receive")
	}
	if !res.Received[1] {
		t.Fatal("same-side neighbor must receive")
	}
}

func TestFaultsTimedEngineRespectsOracle(t *testing.T) {
	g := pathGraph(4)
	spec := faults.Spec{Partitions: []faults.Partition{
		{Start: 0, End: 1 << 30, Vertical: true, Coord: 1.5},
	}}
	o := faults.New(spec, 4)
	o.SetPositions(positionsOnLine(4))
	res := RunTimedOpts(g, 0, CounterBased{Threshold: 3, MaxDelay: 2, Seed: 9}, TimedOptions{Faults: o})
	if res.Received[2] || res.Received[3] {
		t.Fatal("timed engine ignored the partition")
	}
}

func TestFaultsMACEngineRespectsOracle(t *testing.T) {
	g := pathGraph(4)
	spec := faults.Spec{Partitions: []faults.Partition{
		{Start: 0, End: 1 << 30, Vertical: true, Coord: 1.5},
	}}
	o := faults.New(spec, 4)
	o.SetPositions(positionsOnLine(4))
	res := RunMAC(g, 0, Flooding{}, MACOptions{Jitter: 3, Seed: 9, Faults: o})
	if res.Received[2] || res.Received[3] {
		t.Fatal("MAC engine ignored the partition")
	}
	if res.Received[2] == false && !res.Received[1] {
		t.Fatal("same-side neighbor must receive")
	}
}

// TestFaultsDisabledPathAllocsFree is the acceptance criterion: a nil
// oracle must add zero allocations to the workspace engine's hot path.
func TestFaultsDisabledPathAllocsFree(t *testing.T) {
	nw := randomNet(t, 33, 80, 10)
	ws := NewWorkspace()
	ws.RunOpts(nw.G, 0, Flooding{}, Options{}) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		ws.RunOpts(nw.G, 0, Flooding{}, Options{})
	})
	if allocs != 0 {
		t.Fatalf("nil-oracle workspace run allocates %g per op, want 0", allocs)
	}
}

// TestGossipSeedDecorrelation is the regression test for the additive seed
// bug: node v+1 under seed s must not share its coin with node v under
// seed s+0x9E3779B97F4A7C15 (they did before nodeHash).
func TestGossipSeedDecorrelation(t *testing.T) {
	const odd = 0x9E3779B97F4A7C15
	agree, total := 0, 0
	for v := 0; v < 200; v++ {
		for _, s := range []uint64{1, 99, 12345} {
			a := Gossip{P: 0.5, Seed: s}
			b := Gossip{P: 0.5, Seed: s + odd}
			fa, _ := a.OnReceive(v+1, 0, nil)
			fb, _ := b.OnReceive(v, 0, nil)
			if fa == fb {
				agree++
			}
			total++
		}
	}
	// Decorrelated fair coins agree about half the time; the old additive
	// derivation agreed always.
	if agree == total {
		t.Fatalf("gossip coins fully correlated across (seed, node) shift: %d/%d", agree, total)
	}
	if frac := float64(agree) / float64(total); frac > 0.65 || frac < 0.35 {
		t.Errorf("gossip coin agreement %.2f, want ≈0.5", frac)
	}
}

func TestBackoffDelayHelperSharedByProtocols(t *testing.T) {
	// The three timed protocols must draw identical delays for identical
	// (seed, node, window): one shared hash, no per-protocol drift.
	nb := NewNeighborhood(pathGraph(4))
	for v := 0; v < 64; v++ {
		c := CounterBased{Threshold: 2, MaxDelay: 7, Seed: 42}.Delay(v)
		d := DistanceBased{MinDistance: 1, MaxDelay: 7, Seed: 42}.Delay(v)
		s := NewSBA(nb, 7, 42).Delay(v)
		if c != d || d != s {
			t.Fatalf("delay drift at node %d: counter=%d distance=%d sba=%d", v, c, d, s)
		}
		if c < 0 || c > 7 {
			t.Fatalf("delay %d outside [0, 7]", c)
		}
	}
}

// positionsOnLine places node i at x == i on the x-axis (matching
// pathGraph's adjacency).
func positionsOnLine(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: 0}
	}
	return pts
}
