package broadcast

import (
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func randomNet(t testing.TB, seed uint64, n int, deg float64) *topology.Network {
	t.Helper()
	r := rng.New(seed)
	nw, err := topology.Generate(topology.Config{
		N: n, Bounds: geom.Square(100), AvgDegree: deg,
		RequireConnected: true, MaxAttempts: 500,
	}, r)
	if err != nil {
		t.Skipf("could not generate network: %v", err)
	}
	return nw
}

func TestFloodingReachesEveryone(t *testing.T) {
	g := pathGraph(6)
	res := Run(g, 0, Flooding{})
	if len(res.Received) != 6 {
		t.Fatalf("flooding delivered to %d/6", len(res.Received))
	}
	if res.ForwardCount() != 6 {
		t.Fatalf("flooding forwarders = %d, want all 6", res.ForwardCount())
	}
	if res.Latency != 5 {
		t.Fatalf("latency = %d, want 5", res.Latency)
	}
	if res.DeliveryRatio(6) != 1 {
		t.Fatalf("delivery ratio = %g", res.DeliveryRatio(6))
	}
}

func TestFloodingFromMiddle(t *testing.T) {
	g := pathGraph(7)
	res := Run(g, 3, Flooding{})
	if res.Latency != 3 {
		t.Fatalf("latency from middle = %d, want 3", res.Latency)
	}
}

func TestFloodingDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	res := Run(g, 0, Flooding{})
	if len(res.Received) != 2 {
		t.Fatalf("flooding crossed a partition: %v", res.Received)
	}
	if res.DeliveryRatio(4) != 0.5 {
		t.Fatalf("delivery ratio = %g, want 0.5", res.DeliveryRatio(4))
	}
}

func TestGossipZeroAndOne(t *testing.T) {
	nw := randomNet(t, 3, 40, 8)
	all := Run(nw.G, 0, Gossip{P: 1, Seed: 7})
	if len(all.Received) != 40 {
		t.Fatalf("gossip p=1 must behave like flooding: %d/40", len(all.Received))
	}
	none := Run(nw.G, 0, Gossip{P: 0, Seed: 7})
	if none.ForwardCount() != 1 {
		t.Fatalf("gossip p=0 must have only the source forward: %d", none.ForwardCount())
	}
}

func TestGossipDeterministic(t *testing.T) {
	nw := randomNet(t, 5, 40, 8)
	a := Run(nw.G, 2, Gossip{P: 0.6, Seed: 11})
	b := Run(nw.G, 2, Gossip{P: 0.6, Seed: 11})
	if a.ForwardCount() != b.ForwardCount() || len(a.Received) != len(b.Received) {
		t.Fatal("gossip with equal seed must replicate exactly")
	}
}

func TestStaticCDSForwardsOnlyMembers(t *testing.T) {
	g := pathGraph(5)
	set := graph.SetOf(1, 2, 3)
	res := Run(g, 0, StaticCDS{Set: set, Label: "test-cds"})
	if len(res.Received) != 5 {
		t.Fatalf("CDS broadcast should reach everyone: %d/5", len(res.Received))
	}
	// Forwarders: source + CDS members.
	want := graph.SetOf(0, 1, 2, 3)
	if res.ForwardCount() != 4 {
		t.Fatalf("forwarders = %v, want %v",
			graph.SortedMembers(res.Forwarders), graph.SortedMembers(want))
	}
	if res.Forwarders[4] {
		t.Fatal("non-member endpoint must not forward")
	}
}

func TestStaticCDSName(t *testing.T) {
	if (StaticCDS{Label: "mo-cds"}).Name() != "mo-cds" {
		t.Fatal("label not used")
	}
	if (StaticCDS{}).Name() != "static-cds" {
		t.Fatal("default name wrong")
	}
}

func TestMPRSelectionCoversTwoHop(t *testing.T) {
	nw := randomNet(t, 9, 50, 8)
	nb := NewNeighborhood(nw.G)
	m := NewMPR(nb)
	for v := 0; v < nw.G.N(); v++ {
		covered := make(map[int]bool)
		for u := range m.Set(v) {
			if !nb.N1(v)[u] {
				t.Fatalf("MPR(%d) contains non-neighbor %d", v, u)
			}
			for w := range nb.N1(u) {
				covered[w] = true
			}
		}
		for w := range nb.N2(v) {
			if !covered[w] {
				t.Fatalf("MPR(%d) fails to cover 2-hop node %d", v, w)
			}
		}
	}
}

func TestNeighborhoodSets(t *testing.T) {
	g := pathGraph(5)
	nb := NewNeighborhood(g)
	if !nb.N1(2)[1] || !nb.N1(2)[3] || nb.N1(2)[2] || nb.N1(2)[0] {
		t.Fatalf("N1(2) = %v", nb.N1(2))
	}
	if !nb.N2(2)[0] || !nb.N2(2)[4] || nb.N2(2)[1] {
		t.Fatalf("N2(2) = %v", nb.N2(2))
	}
	if nb.Graph() != g {
		t.Fatal("Graph accessor broken")
	}
}

func TestGreedyCoverBasic(t *testing.T) {
	// Candidates: 1 covers {a=10,b=11}, 2 covers {b}, 3 covers {c=12}.
	cov := map[int]map[int]bool{
		1: {10: true, 11: true},
		2: {11: true},
		3: {12: true},
	}
	targets := map[int]bool{10: true, 11: true, 12: true}
	got := greedyCover(targets, []int{1, 2, 3}, func(c int) map[int]bool { return cov[c] })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("greedyCover = %v, want [1 3]", got)
	}
}

func TestGreedyCoverUncoverable(t *testing.T) {
	targets := map[int]bool{99: true}
	got := greedyCover(targets, []int{1}, func(c int) map[int]bool { return nil })
	if len(got) != 0 {
		t.Fatalf("uncoverable targets must yield empty selection, got %v", got)
	}
}

// deliveryAndEfficiency verifies full delivery on a connected graph and
// that the protocol forwards no more than flooding.
func deliveryAndEfficiency(t *testing.T, seed uint64, n int, deg float64, build func(*Neighborhood) Protocol) {
	t.Helper()
	nw := randomNet(t, seed, n, deg)
	nb := NewNeighborhood(nw.G)
	p := build(nb)
	r := rng.New(seed ^ 0xabcdef)
	for trial := 0; trial < 5; trial++ {
		src := r.Intn(n)
		res := Run(nw.G, src, p)
		if len(res.Received) != n {
			t.Fatalf("%s: delivered %d/%d from source %d (seed %d)",
				p.Name(), len(res.Received), n, src, seed)
		}
		if res.ForwardCount() > n {
			t.Fatalf("%s: forward count %d exceeds n", p.Name(), res.ForwardCount())
		}
	}
}

func TestMPRFullDelivery(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		deliveryAndEfficiency(t, seed, 50, 8, func(nb *Neighborhood) Protocol { return NewMPR(nb) })
	}
}

func TestDPFullDelivery(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		deliveryAndEfficiency(t, seed, 50, 8, func(nb *Neighborhood) Protocol { return NewDP(nb) })
	}
}

func TestPDPFullDelivery(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		deliveryAndEfficiency(t, seed, 50, 8, func(nb *Neighborhood) Protocol { return NewPDP(nb) })
	}
}

// Property: on dense networks the pruning protocols use far fewer
// forwarders than flooding, and PDP never reaches fewer nodes than DP
// covers (both must deliver fully on connected graphs anyway).
func TestQuickPruningBeatsFlooding(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 60, Bounds: geom.Square(100), AvgDegree: 15,
			RequireConnected: true, MaxAttempts: 300,
		}, r)
		if err != nil {
			return true
		}
		nb := NewNeighborhood(nw.G)
		src := r.Intn(60)
		flood := Run(nw.G, src, Flooding{})
		dp := Run(nw.G, src, NewDP(nb))
		pdp := Run(nw.G, src, NewPDP(nb))
		mpr := Run(nw.G, src, NewMPR(nb))
		if len(dp.Received) != 60 || len(pdp.Received) != 60 || len(mpr.Received) != 60 {
			return false
		}
		// On a dense 60-node network, pruning must strictly beat flooding.
		return dp.ForwardCount() < flood.ForwardCount() &&
			pdp.ForwardCount() < flood.ForwardCount() &&
			mpr.ForwardCount() < flood.ForwardCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleNode(t *testing.T) {
	g := graph.New(1)
	res := Run(g, 0, Flooding{})
	if res.ForwardCount() != 1 || len(res.Received) != 1 || res.Latency != 0 {
		t.Fatalf("single-node broadcast wrong: %+v", res)
	}
}

func BenchmarkFlooding100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(nw.G, i%100, Flooding{})
	}
}

func BenchmarkPDP100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	nb := NewNeighborhood(nw.G)
	p := NewPDP(nb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(nw.G, i%100, p)
	}
}
