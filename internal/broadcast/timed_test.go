package broadcast

import (
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// alwaysForward is a timed protocol that behaves like flooding with a
// fixed delay — used to validate the timed engine itself.
type alwaysForward struct{ delay int }

func (a alwaysForward) Name() string                   { return "always" }
func (a alwaysForward) Delay(v int) int                { return a.delay }
func (a alwaysForward) Decide(v int, heard []int) bool { return true }

func TestRunTimedMatchesFloodingWithZeroDelay(t *testing.T) {
	nw := randomNet(t, 41, 50, 10)
	timed := RunTimed(nw.G, 0, alwaysForward{})
	flood := Run(nw.G, 0, Flooding{})
	if len(timed.Received) != len(flood.Received) {
		t.Fatalf("timed engine delivered %d, plain engine %d",
			len(timed.Received), len(flood.Received))
	}
	if timed.ForwardCount() != flood.ForwardCount() {
		t.Fatalf("forwarders differ: %d vs %d", timed.ForwardCount(), flood.ForwardCount())
	}
	if timed.Latency != flood.Latency {
		t.Fatalf("latency differs: %d vs %d", timed.Latency, flood.Latency)
	}
}

func TestRunTimedDelayIncreasesLatency(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	fast := RunTimed(g, 0, alwaysForward{delay: 0})
	slow := RunTimed(g, 0, alwaysForward{delay: 3})
	if slow.Latency <= fast.Latency {
		t.Fatalf("delay should raise latency: %d vs %d", slow.Latency, fast.Latency)
	}
	if len(slow.Received) != 4 {
		t.Fatal("delayed flooding must still deliver")
	}
}

func TestSBAPaperFigure5(t *testing.T) {
	// The paper's Figure 5: a triangle u,v,w. Naive flooding costs two
	// redundant transmissions (v and w rebroadcast to each other). With
	// coverage-aware self-pruning both resign — the transmission by u
	// already covers everything each of them can reach — matching the
	// paper's "two redundant transmissions are saved" outcome.
	g := graph.FromEdges(3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	nb := NewNeighborhood(g)
	res := RunTimed(g, 0, NewSBA(nb, 4, 1))
	if len(res.Received) != 3 {
		t.Fatal("delivery incomplete")
	}
	if res.ForwardCount() != 1 {
		t.Fatalf("forwarders = %d, want 1 (both redundant transmissions saved)",
			res.ForwardCount())
	}
	flood := Run(g, 0, Flooding{})
	if saved := flood.ForwardCount() - res.ForwardCount(); saved != 2 {
		t.Fatalf("saved %d transmissions vs flooding, want 2", saved)
	}
}

func TestSBAZeroDelayStillDelivers(t *testing.T) {
	nw := randomNet(t, 43, 60, 10)
	nb := NewNeighborhood(nw.G)
	res := RunTimed(nw.G, 0, NewSBA(nb, 0, 1))
	if len(res.Received) != 60 {
		t.Fatalf("SBA with zero back-off delivered %d/60", len(res.Received))
	}
}

func TestSBADeterministic(t *testing.T) {
	nw := randomNet(t, 44, 50, 12)
	nb := NewNeighborhood(nw.G)
	a := RunTimed(nw.G, 3, NewSBA(nb, 5, 9))
	b := RunTimed(nw.G, 3, NewSBA(nb, 5, 9))
	if a.ForwardCount() != b.ForwardCount() || a.Latency != b.Latency {
		t.Fatal("SBA runs with equal seeds must replicate")
	}
}

// Property: SBA always delivers to the whole connected network and — with
// a positive back-off window — uses no more forwarders than flooding.
func TestQuickSBADeliversAndPrunes(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 50, Bounds: geom.Square(100), AvgDegree: 12,
			RequireConnected: true, MaxAttempts: 300,
		}, r)
		if err != nil {
			return true
		}
		nb := NewNeighborhood(nw.G)
		src := r.Intn(50)
		res := RunTimed(nw.G, src, NewSBA(nb, 4, seed))
		if len(res.Received) != 50 {
			return false
		}
		return res.ForwardCount() <= 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSBABackoffPrunes quantifies the delay/pruning trade-off of §3: a
// larger back-off window saves transmissions and costs latency.
func TestSBABackoffPrunes(t *testing.T) {
	root := rng.New(2025)
	var fwd0, fwd8, lat0, lat8 int
	const trials = 15
	for i := 0; i < trials; i++ {
		nw, err := topology.Generate(topology.Config{
			N: 80, Bounds: geom.Square(100), AvgDegree: 18,
			RequireConnected: true, MaxAttempts: 300,
		}, root)
		if err != nil {
			t.Fatal(err)
		}
		nb := NewNeighborhood(nw.G)
		src := root.Intn(80)
		r0 := RunTimed(nw.G, src, NewSBA(nb, 0, uint64(i)))
		r8 := RunTimed(nw.G, src, NewSBA(nb, 8, uint64(i)))
		if len(r0.Received) != 80 || len(r8.Received) != 80 {
			t.Fatal("delivery incomplete")
		}
		fwd0 += r0.ForwardCount()
		fwd8 += r8.ForwardCount()
		lat0 += r0.Latency
		lat8 += r8.Latency
	}
	if fwd8 >= fwd0 {
		t.Fatalf("longer back-off should prune more: window 0 → %d forwards, window 8 → %d",
			fwd0, fwd8)
	}
	if lat8 <= lat0 {
		t.Fatalf("longer back-off should cost latency: %d vs %d", lat0, lat8)
	}
	t.Logf("avg forwards: window0=%.1f window8=%.1f; avg latency: %.1f vs %.1f",
		float64(fwd0)/trials, float64(fwd8)/trials, float64(lat0)/trials, float64(lat8)/trials)
}

func BenchmarkSBA100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	nb := NewNeighborhood(nw.G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RunTimed(nw.G, i%100, NewSBA(nb, 4, uint64(i)))
	}
}
