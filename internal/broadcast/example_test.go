package broadcast_test

import (
	"fmt"

	"clustercast/internal/broadcast"
	"clustercast/internal/graph"
)

// A 6-node network: two triangles joined by a bridge.
func bridgeGraph() *graph.Graph {
	return graph.FromEdges(6, [][2]int{
		{0, 1}, {0, 2}, {1, 2},
		{2, 3},
		{3, 4}, {3, 5}, {4, 5},
	})
}

// Blind flooding makes every node transmit once.
func ExampleRun() {
	g := bridgeGraph()
	res := broadcast.Run(g, 0, broadcast.Flooding{})
	fmt.Println("forwarders:", res.ForwardCount())
	fmt.Println("delivery:", res.DeliveryRatio(g.N()))
	// Output:
	// forwarders: 6
	// delivery: 1
}

// A static CDS confines forwarding to the bridge {2, 3}.
func ExampleStaticCDS() {
	g := bridgeGraph()
	res := broadcast.Run(g, 0, broadcast.StaticCDS{Set: graph.SetOf(2, 3)})
	fmt.Println("forwarders:", res.ForwardCount()) // source + the two bridge nodes
	fmt.Println("delivered to all:", len(res.Received) == g.N())
	// Output:
	// forwarders: 3
	// delivered to all: true
}

// Back-off self-pruning (the paper's §3 first technique): with 2-hop
// knowledge only the bridge nodes relay — every triangle peer sees its
// whole neighborhood already covered and resigns.
func ExampleRunTimed() {
	g := bridgeGraph()
	nb := broadcast.NewNeighborhood(g)
	res := broadcast.RunTimed(g, 0, broadcast.NewSBA(nb, 4, 1))
	fmt.Println("delivered to all:", len(res.Received) == g.N())
	fmt.Println("saved vs flooding:", 6-res.ForwardCount())
	// Output:
	// delivered to all: true
	// saved vs flooding: 3
}

// The collision model shows the broadcast storm: in the diamond, both
// relays transmit in the same slot and destroy each other's copy at the
// far node.
func ExampleRunMAC() {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	res := broadcast.RunMAC(g, 0, broadcast.Flooding{}, broadcast.MACOptions{})
	// Both relays fire in the same slot: their copies collide at node 3
	// (which gets nothing) and at the source (which already had the packet).
	fmt.Println("collisions:", res.Collisions)
	fmt.Println("node 3 reached:", res.Received[3])
	// Output:
	// collisions: 2
	// node 3 reached: false
}
