package broadcast

import (
	"clustercast/internal/des"
	"clustercast/internal/graph"
)

// tdEvent is a calendar entry of the timed engine: the wheel supplies
// the time and the (time, push order) discipline, so unlike timedEvent
// no time/seq fields are carried.
type tdEvent struct {
	kind uint8 // 0: transmission by node; 1: decision timeout at node
	node int32
}

// TimedWorkspace owns the dense per-node state of the calendar port of
// RunTimed: epoch-stamped reception/decision marks and pooled per-node
// heard lists replace the scalar engine's maps, and the timestamp wheel
// replaces its binary heap. Event order, protocol callbacks, trace
// stream and counters are identical to RunTimedOpts (the wheel dequeues
// in (time, push order), exactly the heap's (time, seq)); the scalar
// engine stays the golden reference, gated by the equivalence tests.
//
// Not safe for concurrent use; give each worker its own.
type TimedWorkspace struct {
	wheel     des.Wheel[tdEvent]
	epoch     uint32
	received  []uint32 // epoch stamp: v has the packet
	forwarded []uint32 // epoch stamp: v transmitted (or is the source)
	decided   []uint32 // epoch stamp: v's back-off already fired
	heardAt   []uint32 // epoch stamp: heard[v] is current
	parent    []int32
	heard     [][]int // transmitters heard by v, in receive order
}

// NewTimedWorkspace returns an empty workspace; buffers grow on first
// use.
func NewTimedWorkspace() *TimedWorkspace { return &TimedWorkspace{} }

// ensure sizes the per-node arrays and bumps the epoch (with the usual
// wrap flush).
func (tw *TimedWorkspace) ensure(n int) {
	if cap(tw.received) < n {
		tw.received = make([]uint32, n)
		tw.forwarded = make([]uint32, n)
		tw.decided = make([]uint32, n)
		tw.heardAt = make([]uint32, n)
		tw.parent = make([]int32, n)
		tw.heard = make([][]int, n)
		tw.epoch = 0
	}
	tw.received = tw.received[:n]
	tw.forwarded = tw.forwarded[:n]
	tw.decided = tw.decided[:n]
	tw.heardAt = tw.heardAt[:n]
	tw.parent = tw.parent[:n]
	tw.heard = tw.heard[:n]
	tw.epoch++
	if tw.epoch == 0 {
		for _, s := range [][]uint32{tw.received[:cap(tw.received)], tw.forwarded[:cap(tw.forwarded)],
			tw.decided[:cap(tw.decided)], tw.heardAt[:cap(tw.heardAt)]} {
			for i := range s {
				s[i] = 0
			}
		}
		tw.epoch = 1
	}
}

// heardBy returns v's current heard list, resetting it on first touch
// this run.
func (tw *TimedWorkspace) heardBy(v int) []int {
	if tw.heardAt[v] != tw.epoch {
		return nil
	}
	return tw.heard[v]
}

// hear appends a transmitter to v's heard list.
func (tw *TimedWorkspace) hear(v, from int) {
	if tw.heardAt[v] != tw.epoch {
		tw.heardAt[v] = tw.epoch
		tw.heard[v] = tw.heard[v][:0]
	}
	tw.heard[v] = append(tw.heard[v], from)
}

// Run simulates one back-off broadcast on the event calendar,
// bit-identical to RunTimedOpts.
func (tw *TimedWorkspace) Run(g *graph.Graph, source int, p TimedProtocol, opt TimedOptions) *Result {
	n := g.N()
	tw.ensure(n)
	epoch := tw.epoch
	tr := opt.Tracer
	fo := opt.Faults

	res := &Result{
		Source:     source,
		Forwarders: map[int]bool{source: true},
		Received:   map[int]bool{source: true},
		Parent:     make(map[int]int),
	}
	tw.received[source] = epoch
	tw.forwarded[source] = epoch
	tw.decided[source] = epoch

	w := &tw.wheel
	w.Reset(64) // typical back-off windows; longer delays overflow to the far heap
	w.Push(0, tdEvent{kind: 0, node: int32(source)})
	if tr != nil {
		tr.Send(0, source, -1)
	}
	transmissions := 0

	for w.Len() > 0 {
		t := w.OpenSlot()
		for i := 0; i < w.SlotLen(); i++ {
			ev := w.Event(i)
			switch ev.kind {
			case 0: // transmission
				sender := int(ev.node)
				if fo != nil && !fo.NodeUp(sender, t) {
					continue // the sender crashed before its slot
				}
				transmissions++
				if tr != nil {
					tr.SetTime(t + 1)
				}
				for _, v := range g.Neighbors(sender) {
					if fo != nil && (!fo.NodeUp(v, t+1) || !fo.LinkUp(sender, v, t+1) ||
						fo.CopyLost(sender, v, t+1)) {
						continue // receiver down, partitioned away, or a loss burst
					}
					tw.hear(v, sender)
					if tw.received[v] == epoch {
						res.Duplicates++
						if tr != nil {
							tr.Duplicate(t+1, v, sender)
						}
					} else {
						tw.received[v] = epoch
						tw.parent[v] = int32(sender)
						res.Received[v] = true
						res.Parent[v] = sender
						if t+1 > res.Latency {
							res.Latency = t + 1
						}
						if tr != nil {
							tr.Deliver(t+1, v, sender)
						}
						// Schedule the decision after the back-off.
						w.Push(t+1+p.Delay(v), tdEvent{kind: 1, node: int32(v)})
					}
				}
			case 1: // decision timeout
				v := int(ev.node)
				if tw.decided[v] == epoch {
					continue
				}
				tw.decided[v] = epoch
				if fo != nil && !fo.NodeUp(v, t) {
					continue // crashed nodes miss their decision window
				}
				if p.Decide(v, tw.heardBy(v)) {
					tw.forwarded[v] = epoch
					res.Forwarders[v] = true
					if tr != nil {
						tr.Send(t, v, int(tw.parent[v]))
					}
					w.Push(t, tdEvent{kind: 0, node: int32(v)}) // same-slot transmission
				}
			}
		}
		w.CloseSlot()
	}
	w.FoldStats()
	mRuns.Inc()
	mTransmissions.Add(int64(transmissions))
	mDeliveries.Add(int64(len(res.Received) - 1))
	mDuplicates.Add(int64(res.Duplicates))
	return res
}

// RunTimedDES is the package-level calendar drop-in for RunTimedOpts,
// used by the -des figure paths.
func RunTimedDES(g *graph.Graph, source int, p TimedProtocol, opt TimedOptions) *Result {
	var tw TimedWorkspace
	return tw.Run(g, source, p, opt)
}
