package broadcast

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// protocolImplDirs lists every package directory that implements
// broadcast.Protocol (receivers with an OnReceive method). A package
// growing its first Protocol must be added here AND to BatchCoverage.
var protocolImplDirs = []string{".", "../dynamicb", "../passive"}

// TestBatchCoverageComplete is the batch/scalar boundary gate: it scans the
// protocol-implementing packages for OnReceive receivers and requires every
// one to appear in BatchCoverage — either registered batchable (and then
// NewBatchKernel must actually accept it, checked in TestNewBatchKernel) or
// explicitly declared scalar-only. A new Protocol implementation fails this
// test until its author decides which side of the boundary it lives on, so
// batch support can never be claimed (or denied) silently.
func TestBatchCoverageComplete(t *testing.T) {
	found := map[string]bool{}
	for _, dir := range protocolImplDirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, ent := range ents {
			name := ent.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			pkg := file.Name.Name
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != "OnReceive" || fd.Recv == nil || len(fd.Recv.List) == 0 {
					continue
				}
				found[pkg+"."+receiverTypeName(fd.Recv.List[0].Type)] = true
			}
		}
	}
	if len(found) == 0 {
		t.Fatal("source scan found no Protocol implementations — scan broken?")
	}
	for impl := range found {
		if _, ok := BatchCoverage[impl]; !ok {
			t.Errorf("Protocol implementation %s is missing from BatchCoverage: register a batch kernel or declare it scalar-only", impl)
		}
	}
	for entry := range BatchCoverage {
		if !found[entry] {
			t.Errorf("BatchCoverage entry %s matches no OnReceive implementation — stale?", entry)
		}
	}
}

// receiverTypeName unwraps a method receiver's type expression to its bare
// type name (dropping any pointer and type parameters).
func receiverTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
