package broadcast

import (
	"testing"

	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

func TestMACNoCollisionOnPath(t *testing.T) {
	// A path has one transmitter per slot: no collisions, full delivery.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	res := RunMAC(g, 0, Flooding{}, MACOptions{})
	if res.Collisions != 0 {
		t.Fatalf("path flooding had %d collisions", res.Collisions)
	}
	if len(res.Received) != 5 {
		t.Fatalf("delivered %d/5", len(res.Received))
	}
}

func TestMACCollisionOnDiamond(t *testing.T) {
	// Diamond 0-{1,2}-3: 1 and 2 both hear the source in slot 0 and, with
	// no jitter, transmit simultaneously in slot 1 — node 3 hears both and
	// decodes neither.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	res := RunMAC(g, 0, Flooding{}, MACOptions{})
	if res.Collisions == 0 {
		t.Fatal("diamond must produce a collision at node 3")
	}
	if res.Received[3] {
		t.Fatal("node 3 must lose both copies without jitter")
	}
	if res.DeliveryRatio(4) != 0.75 {
		t.Fatalf("delivery = %g, want 0.75", res.DeliveryRatio(4))
	}
}

func TestMACJitterResolvesDiamond(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	// Find a seed where the two relays draw different jitter.
	for seed := uint64(0); seed < 64; seed++ {
		res := RunMAC(g, 0, Flooding{}, MACOptions{Jitter: 3, Seed: seed})
		if res.Received[3] {
			if res.Collisions != 0 {
				t.Fatalf("seed %d: node 3 received yet collisions=%d at it?", seed, res.Collisions)
			}
			return
		}
	}
	t.Fatal("no seed separated the relays within 64 tries")
}

func TestMACDeterministic(t *testing.T) {
	nw := randomNet(t, 61, 60, 12)
	a := RunMAC(nw.G, 0, Flooding{}, MACOptions{Jitter: 4, Seed: 9})
	b := RunMAC(nw.G, 0, Flooding{}, MACOptions{Jitter: 4, Seed: 9})
	if len(a.Received) != len(b.Received) || a.Collisions != b.Collisions {
		t.Fatal("equal seeds must replicate")
	}
}

// TestMACStormCollapse demonstrates the broadcast storm: on dense
// networks, flooding under collisions delivers far worse than the dynamic
// backbone under the same MAC, and suffers far more collisions.
func TestMACStormCollapse(t *testing.T) {
	root := rng.New(6)
	var floodDelivered, floodCollisions int
	var cdsDelivered, cdsCollisions int
	const trials = 15
	for i := 0; i < trials; i++ {
		nw := randomNet(t, 100+uint64(i), 80, 18)
		src := root.Intn(80)
		dist := nw.G.BFS(src)
		thin := map[int]bool{}
		for v, d := range dist {
			if d%2 == 0 {
				thin[v] = true
			}
		}
		opt := MACOptions{Jitter: 3, Seed: uint64(i)}
		flood := RunMAC(nw.G, src, Flooding{}, opt)
		cds := RunMAC(nw.G, src, StaticCDS{Set: thin}, opt)
		floodDelivered += len(flood.Received)
		cdsDelivered += len(cds.Received)
		floodCollisions += flood.Collisions
		cdsCollisions += cds.Collisions
	}
	if floodCollisions <= cdsCollisions {
		t.Fatalf("flooding collisions %d should exceed thin-set collisions %d",
			floodCollisions, cdsCollisions)
	}
	t.Logf("delivered over %d trials of 80 nodes: flooding=%d (collisions %d), thin-set=%d (collisions %d)",
		trials, floodDelivered, floodCollisions, cdsDelivered, cdsCollisions)
}

// TestMACJitterImprovesDelivery shows the contention-window effect: a
// wider window spreads transmissions over more slots, so more copies
// decode and the flood reaches more nodes. (Raw collision counts can go
// either way — a collapsed flood stops early and stops colliding — so
// delivery is the meaningful metric.)
func TestMACJitterImprovesDelivery(t *testing.T) {
	var tight, wide int
	for i := uint64(0); i < 10; i++ {
		nw := randomNet(t, 200+i, 60, 18)
		tight += len(RunMAC(nw.G, 0, Flooding{}, MACOptions{Jitter: 0, Seed: i}).Received)
		wide += len(RunMAC(nw.G, 0, Flooding{}, MACOptions{Jitter: 8, Seed: i}).Received)
	}
	if wide <= tight {
		t.Fatalf("jitter 8 delivered %d, should beat jitter 0's %d", wide, tight)
	}
	t.Logf("delivered: jitter0=%d jitter8=%d (of 600)", tight, wide)
}

func BenchmarkMAC100(b *testing.B) {
	nw := randomNet(b, 1, 100, 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RunMAC(nw.G, i%100, Flooding{}, MACOptions{Jitter: 4, Seed: uint64(i)})
	}
}
