package broadcast

import (
	"reflect"
	"sync"
	"testing"

	"clustercast/internal/graph"
	"clustercast/internal/obs"
)

// TestMACAccountingExact pins the collision arithmetic on the diamond
// 0-{1,2}-3: with no jitter, relays 1 and 2 share slot 1, so BOTH of their
// receivers (the source and node 3) hear two copies and decode neither —
// two collision events destroying four copies, and no duplicate is ever
// delivered.
func TestMACAccountingExact(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	res := RunMAC(g, 0, Flooding{}, MACOptions{})
	if res.Collisions != 2 {
		t.Fatalf("collisions = %d, want 2 (node 0 and node 3)", res.Collisions)
	}
	if res.LostCopies != 4 {
		t.Fatalf("lost copies = %d, want 4", res.LostCopies)
	}
	if res.Duplicates != 0 {
		t.Fatalf("duplicates = %d, want 0 (every redundant copy collided)", res.Duplicates)
	}
	if res.Latency != 1 || len(res.Received) != 3 {
		t.Fatalf("latency=%d received=%d, want 1 and 3", res.Latency, len(res.Received))
	}
}

// TestMACJitterAccounting pins the resolved schedule: jitter separating the
// two relays turns the collisions into ordinary receptions — node 3 decodes
// the earlier relay, and every other redundant copy surfaces as a duplicate
// instead of a lost copy.
func TestMACJitterAccounting(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	for seed := uint64(0); seed < 64; seed++ {
		res := RunMAC(g, 0, Flooding{}, MACOptions{Jitter: 3, Seed: seed})
		if !res.Received[3] {
			continue
		}
		if res.Collisions != 0 || res.LostCopies != 0 {
			t.Fatalf("seed %d: full delivery with collisions=%d lost=%d", seed, res.Collisions, res.LostCopies)
		}
		// 0's copy back from each relay and 3's second copy: node 3 forwards
		// too, returning copies to 1 and 2. Exactly: relays' sends reach 0
		// twice (dups) and 3 once-first/once-dup; 3's send reaches 1 and 2
		// as dups. Total duplicates = 2 (at 0) + 1 (at 3) + 2 (at 1,2) = 5.
		if res.Duplicates != 5 {
			t.Fatalf("seed %d: duplicates = %d, want 5", seed, res.Duplicates)
		}
		return
	}
	t.Fatal("no seed separated the relays within 64 tries")
}

// TestMACTraceReconciles: the MAC engine's event stream accounts exactly
// for its result — per-kind event counts equal the result's counters, and
// the distinct senders are the forward node set.
func TestMACTraceReconciles(t *testing.T) {
	nw := randomNet(t, 61, 60, 12)
	tr := obs.NewTracer(1 << 16)
	res := RunMAC(nw.G, 0, Flooding{}, MACOptions{Jitter: 4, Seed: 9, Tracer: tr})
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events", tr.Dropped())
	}
	senders := map[int]bool{}
	delivered := map[int]bool{0: true}
	kinds := map[obs.EventKind]int{}
	for _, ev := range tr.Events() {
		kinds[ev.Kind]++
		switch ev.Kind {
		case obs.EvSend:
			senders[ev.Node] = true
		case obs.EvDeliver:
			delivered[ev.Node] = true
		}
	}
	if !reflect.DeepEqual(senders, res.Forwarders) {
		t.Fatalf("send nodes %d != forwarders %d", len(senders), len(res.Forwarders))
	}
	if !reflect.DeepEqual(delivered, res.Received) {
		t.Fatalf("delivered %d != received %d", len(delivered), len(res.Received))
	}
	if kinds[obs.EvCollision] != res.Collisions {
		t.Fatalf("collision events %d != result collisions %d", kinds[obs.EvCollision], res.Collisions)
	}
	if kinds[obs.EvDuplicate] != res.Duplicates {
		t.Fatalf("duplicate events %d != result duplicates %d", kinds[obs.EvDuplicate], res.Duplicates)
	}
}

// TestEngineMetricsFold: one run folds its whole-run totals into the shared
// registry exactly once.
func TestEngineMetricsFold(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	obs.Enable()
	defer obs.Disable()
	defer obs.Default.Reset()
	obs.Default.Reset()

	res := Run(g, 0, Flooding{})
	if got := obs.NewCounter("broadcast.runs").Value(); got != 1 {
		t.Fatalf("broadcast.runs = %d", got)
	}
	if got := obs.NewCounter("broadcast.deliveries").Value(); got != int64(len(res.Received)-1) {
		t.Fatalf("broadcast.deliveries = %d, want %d", got, len(res.Received)-1)
	}
	if got := obs.NewCounter("broadcast.duplicates").Value(); got != int64(res.Duplicates) {
		t.Fatalf("broadcast.duplicates = %d, want %d", got, res.Duplicates)
	}

	obs.Default.Reset()
	mres := RunMAC(g, 0, Flooding{}, MACOptions{})
	if got := obs.NewCounter("mac.collisions").Value(); got != int64(mres.Collisions) {
		t.Fatalf("mac.collisions = %d, want %d", got, mres.Collisions)
	}
	if got := obs.NewCounter("mac.lost_copies").Value(); got != int64(mres.LostCopies) {
		t.Fatalf("mac.lost_copies = %d, want %d", got, mres.LostCopies)
	}
}

// TestMACConcurrentMetrics drives RunMAC (and the ideal engines) from many
// goroutines with metrics enabled: the shared counters are atomics and the
// per-run state is goroutine-local, so the race detector must stay quiet
// and the folded totals must be the exact sum.
func TestMACConcurrentMetrics(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	defer obs.Default.Reset()
	obs.Default.Reset()

	const workers = 8
	collisions := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nw := randomNet(t, 300+uint64(w), 50, 12)
			tr := obs.NewTracer(4096)
			for i := 0; i < 5; i++ {
				res := RunMAC(nw.G, i%50, Flooding{}, MACOptions{Jitter: 2, Seed: uint64(i), Tracer: tr})
				collisions[w] += res.Collisions
				tr.Reset()
				var ws Workspace
				ws.Run(nw.G, i%50, Flooding{})
				RunTimed(nw.G, i%50, NewSBA(NewNeighborhood(nw.G), 3, uint64(i)))
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range collisions {
		total += c
	}
	if got := obs.NewCounter("mac.collisions").Value(); got != int64(total) {
		t.Fatalf("mac.collisions = %d, want %d", got, total)
	}
	if got := obs.NewCounter("broadcast.runs").Value(); got != workers*5*3 {
		t.Fatalf("broadcast.runs = %d, want %d", got, workers*5*3)
	}
}
