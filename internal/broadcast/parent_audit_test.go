package broadcast

import (
	"reflect"
	"testing"

	"clustercast/internal/graph"
)

// auditParentChains is the engine-independent delivery-tree contract:
// every received node except the source has a parent; the parent itself
// received the packet; parent links are edges of g; every chain reaches
// the source without revisiting a node (acyclic, source-rooted); and no
// unreached node — in particular none whose copies were all collided or
// suppressed — records a parent.
func auditParentChains(t *testing.T, g *graph.Graph, engine string, res *Result) {
	t.Helper()
	src := res.Source
	if !res.Received[src] {
		t.Fatalf("%s: source %d not in its own Received set", engine, src)
	}
	if _, ok := res.Parent[src]; ok {
		t.Fatalf("%s: source %d records a parent", engine, src)
	}
	for v := range res.Parent {
		if !res.Received[v] {
			t.Fatalf("%s: node %d has a parent but never received", engine, v)
		}
	}
	for v := range res.Received {
		if v == src {
			continue
		}
		seen := map[int]bool{}
		for x := v; x != src; {
			if seen[x] {
				t.Fatalf("%s: parent cycle through node %d (start %d)", engine, x, v)
			}
			seen[x] = true
			p, ok := res.Parent[x]
			if !ok {
				t.Fatalf("%s: broken parent chain at node %d (start %d)", engine, x, v)
			}
			if !g.HasEdge(p, x) {
				t.Fatalf("%s: parent link %d→%d is not an edge", engine, p, x)
			}
			if !res.Received[p] {
				t.Fatalf("%s: parent %d of %d never received", engine, p, x)
			}
			x = p
		}
	}
}

// TestParentChainAudit runs the delivery-tree contract against every
// engine — scalar and calendar, ideal/lossy/faulted/timed/MAC/multi-MAC —
// over random topologies and protocols.
func TestParentChainAudit(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		nw := randomNet(t, 1100+uint64(trial), 40+10*trial, 8)
		n := nw.G.N()
		source := (trial * 3) % n

		type run struct {
			name string
			res  *Result
		}
		var runs []run
		add := func(name string, res *Result) { runs = append(runs, run{name, res}) }

		for _, p := range []Protocol{
			Flooding{},
			Gossip{P: 0.7, Seed: 11},
			StaticCDS{Set: map[int]bool{0: true, 1: true, 3: true, 5: true, 8: true}, Label: "cds"},
		} {
			add("Run/"+p.Name(), Run(nw.G, source, p))

			lossy := Options{Loss: 0.2, Seed: uint64(trial)}
			add("RunOpts-lossy/"+p.Name(),
				NewWorkspace().RunOpts(nw.G, source, p, lossy).Materialize())
			add("RunDESOpts-lossy/"+p.Name(),
				NewWorkspace().RunDESOpts(nw.G, source, p, lossy).Materialize())

			faulted := Options{Faults: burstOracle(t, n, uint64(20+trial))}
			add("RunOpts-faults/"+p.Name(),
				NewWorkspace().RunOpts(nw.G, source, p, faulted).Materialize())

			mac := MACOptions{Jitter: 3, Seed: uint64(trial)}
			add("RunMAC/"+p.Name(), &RunMAC(nw.G, source, p, mac).Result)
			add("RunMACDES/"+p.Name(), &RunMACDES(nw.G, source, p, mac).Result)
			macF := MACOptions{Jitter: 2, Seed: uint64(trial), Faults: burstOracle(t, n, uint64(30+trial))}
			add("RunMAC-faults/"+p.Name(), &RunMAC(nw.G, source, p, macF).Result)

			flows := multiFlows(n, 5, 1, p)
			for i, fr := range RunMACMulti(nw.G, flows, MACOptions{Jitter: 2}).Flows {
				if i == 0 {
					add("RunMACMulti/"+p.Name(), &fr.Result)
				}
				auditParentChains(t, nw.G, "RunMACMulti/"+p.Name(), &fr.Result)
			}
			for _, fr := range RunMACMultiDES(nw.G, flows, MACOptions{Jitter: 2}).Flows {
				auditParentChains(t, nw.G, "RunMACMultiDES/"+p.Name(), &fr.Result)
			}
		}

		nb := NewNeighborhood(nw.G)
		for _, tp := range []TimedProtocol{
			NewSBA(nb, 6, 17),
			CounterBased{Threshold: 3, MaxDelay: 5, Seed: 23},
		} {
			add("RunTimed/"+tp.Name(), RunTimedOpts(nw.G, source, tp, TimedOptions{}))
			add("RunTimedDES/"+tp.Name(), NewTimedWorkspace().Run(nw.G, source, tp, TimedOptions{}))
			tf := TimedOptions{Faults: burstOracle(t, n, uint64(40+trial))}
			add("RunTimed-faults/"+tp.Name(), RunTimedOpts(nw.G, source, tp, tf))
		}

		for _, r := range runs {
			auditParentChains(t, nw.G, r.name, r.res)
		}
	}
}

// TestCollidedDeliveriesRecordNoParent pins the collision/parent
// interaction directly: on the diamond every copy reaching node 3
// collides (Jitter 0), so 3 must appear in neither Received nor Parent.
func TestCollidedDeliveriesRecordNoParent(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	for name, res := range map[string]*CollisionResult{
		"scalar": RunMAC(g, 0, Flooding{}, MACOptions{}),
		"des":    RunMACDES(g, 0, Flooding{}, MACOptions{}),
	} {
		if res.Received[3] {
			t.Fatalf("%s: node 3 decoded through a guaranteed collision", name)
		}
		if _, ok := res.Parent[3]; ok {
			t.Fatalf("%s: collided node 3 recorded a parent", name)
		}
		if res.Collisions == 0 {
			t.Fatalf("%s: no collision recorded on the diamond", name)
		}
	}
}

// FuzzParentScalarDESAgree pins the scalar and calendar Parent maps
// bit-identical on fuzzer-chosen points for the ideal, lossy, and MAC
// engines — the delivery tree, not just the delivery set, is part of the
// equivalence contract (routes are extracted from it).
func FuzzParentScalarDESAgree(f *testing.F) {
	f.Add(uint64(1), 40, 8, 3, uint64(9), float64(0.2))
	f.Add(uint64(7), 25, 6, 0, uint64(2), float64(0.0))
	f.Add(uint64(42), 60, 10, 12, uint64(77), float64(0.4))
	f.Fuzz(func(t *testing.T, topoSeed uint64, n, deg, jitter int, seed uint64, loss float64) {
		if n < 5 || n > 100 || deg < 3 || deg > 14 || jitter < 0 || jitter > 16 || loss < 0 || loss > 0.9 {
			t.Skip()
		}
		nw := randomNet(t, topoSeed, n, float64(deg))
		nn := nw.G.N()
		p := Gossip{P: 0.85, Seed: seed + 1}

		opt := Options{Loss: loss, Seed: seed}
		a := NewWorkspace().RunOpts(nw.G, 0, p, opt).Materialize()
		b := NewWorkspace().RunDESOpts(nw.G, 0, p, opt).Materialize()
		if !reflect.DeepEqual(a.Parent, b.Parent) {
			t.Fatalf("ideal/lossy Parent maps differ:\n%v\n%v", a.Parent, b.Parent)
		}
		auditParentChains(t, nw.G, "fuzz-ideal", a)

		mo := MACOptions{Jitter: jitter, Seed: seed}
		ma := RunMAC(nw.G, 0, p, mo)
		mb := RunMACDES(nw.G, 0, p, mo)
		if !reflect.DeepEqual(ma.Parent, mb.Parent) {
			t.Fatalf("MAC Parent maps differ:\n%v\n%v", ma.Parent, mb.Parent)
		}
		auditParentChains(t, nw.G, "fuzz-mac", &ma.Result)

		flows := []MultiFlow{
			{Src: 0, Dst: nn - 1, Start: 0, Seed: seed, Proto: p},
			{Src: nn / 2, Dst: 1 % nn, Start: 1, Seed: seed + 2, Proto: p},
		}
		wa := RunMACMulti(nw.G, flows, MACOptions{Jitter: jitter})
		wb := RunMACMultiDES(nw.G, flows, MACOptions{Jitter: jitter})
		for i := range flows {
			if !reflect.DeepEqual(wa.Flows[i].Parent, wb.Flows[i].Parent) {
				t.Fatalf("multi flow %d Parent maps differ:\n%v\n%v",
					i, wa.Flows[i].Parent, wb.Flows[i].Parent)
			}
			auditParentChains(t, nw.G, "fuzz-multi", &wa.Flows[i].Result)
		}
	})
}
