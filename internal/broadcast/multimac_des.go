package broadcast

import (
	"slices"

	"clustercast/internal/des"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// MultiMACWorkspace owns the calendar state of the multi-source MAC
// engine. The scalar engine's slot map + occupied-slot heap become wheel
// buckets (flow starts beyond the jitter window park in the wheel's far
// heap and promote in push order, so a slot's batch order is exactly the
// scalar engine's append order); receiver-side resolution keeps per-slot
// epoch-stamped *copy lists* rather than the single-source engine's
// (count, first) pair, because cross-flow collision attribution needs to
// know which flow owned each destroyed copy. Per-flow result state stays
// map-based and the per-receiver commit is shared verbatim with
// RunMACMulti, so scalar and calendar runs are bit-identical by
// construction (gated by TestMultiMACScalarDESEquivalence and the fuzz
// target).
//
// Not safe for concurrent use; give each worker its own.
type MultiMACWorkspace struct {
	wheel des.Wheel[multiTx]

	// Per-slot epoch-stamped receiver state.
	slotEpoch uint32
	stamp     []uint32
	copies    [][]int32 // batch indices heard by v this slot (append order)
	touched   []int32   // receivers touched this slot (commit order after sort)

	jitters []rng.Stream // one per flow, reseeded per run
	acted   []map[int]map[Packet]bool
}

// NewMultiMACWorkspace returns an empty workspace; buffers grow on first
// use.
func NewMultiMACWorkspace() *MultiMACWorkspace { return &MultiMACWorkspace{} }

// ensure sizes the per-receiver arrays and resets the per-flow state.
func (mw *MultiMACWorkspace) ensure(n, nflows int) {
	if cap(mw.stamp) < n {
		mw.stamp = make([]uint32, n)
		mw.copies = make([][]int32, n)
		mw.slotEpoch = 0
	}
	mw.stamp = mw.stamp[:n]
	mw.copies = mw.copies[:n]
	if cap(mw.jitters) < nflows {
		mw.jitters = make([]rng.Stream, nflows)
		mw.acted = make([]map[int]map[Packet]bool, nflows)
	}
	mw.jitters = mw.jitters[:nflows]
	mw.acted = mw.acted[:nflows]
}

// bumpSlot advances the per-slot receiver stamp (wrap-flushing).
func (mw *MultiMACWorkspace) bumpSlot() {
	mw.slotEpoch++
	if mw.slotEpoch == 0 {
		s := mw.stamp[:cap(mw.stamp)]
		for i := range s {
			s[i] = 0
		}
		mw.slotEpoch = 1
	}
}

// hear records one copy of batch index bi reaching receiver v this slot,
// returning true when v is newly touched.
func (mw *MultiMACWorkspace) hear(v int, bi int32) bool {
	fresh := mw.stamp[v] != mw.slotEpoch
	if fresh {
		mw.stamp[v] = mw.slotEpoch
		mw.copies[v] = mw.copies[v][:0]
	}
	mw.copies[v] = append(mw.copies[v], bi)
	return fresh
}

// Run simulates concurrently active broadcasts on the event calendar,
// bit-identical to RunMACMulti. opt.Seed and opt.Workers are ignored for
// the same reasons as in the scalar engine.
func (mw *MultiMACWorkspace) Run(g *graph.Graph, flows []MultiFlow, opt MACOptions) *MultiResult {
	res := &MultiResult{Flows: make([]*FlowResult, len(flows))}
	if len(flows) == 0 {
		return res
	}
	mw.ensure(g.N(), len(flows))

	draw := func(fi int32) int {
		if opt.Jitter <= 0 {
			return 0
		}
		return mw.jitters[fi].Intn(opt.Jitter + 1)
	}
	mark := func(fi int32, v int, pkt Packet) {
		m := mw.acted[fi][v]
		if m == nil {
			m = make(map[Packet]bool)
			mw.acted[fi][v] = m
		}
		m[pkt] = true
	}

	tr := opt.Tracer
	if tr != nil {
		tr.SetTime(0)
	}
	w := &mw.wheel
	w.Reset(opt.Jitter + 2) // forwards land in [t+1, t+1+Jitter]
	for i := range flows {
		f := &flows[i]
		fr := &FlowResult{Start: f.Start, DstSlot: -1}
		fr.Result = Result{
			Source:     f.Src,
			Forwarders: map[int]bool{f.Src: true},
			Received:   map[int]bool{f.Src: true},
			Parent:     make(map[int]int),
		}
		if f.Dst == f.Src {
			fr.DstSlot = f.Start
		}
		res.Flows[i] = fr
		mw.jitters[i].SeedLabeled(f.Seed, "mac-jitter")
		mw.acted[i] = make(map[int]map[Packet]bool)
		start := f.Proto.Start(f.Src)
		mark(int32(i), f.Src, start)
		w.Push(f.Start, multiTx{flow: int32(i), sender: int32(f.Src), trigger: -1, pkt: start})
	}

	fo := opt.Faults
	for w.Len() > 0 {
		t := w.OpenSlot()
		batch := w.Bucket() // MAC never pushes into its own slot
		if fo != nil {
			// Crashed forwarders stay silent; their slot reservation lapses.
			live := batch[:0]
			for _, x := range batch {
				if fo.NodeUp(int(x.sender), t) {
					live = append(live, x)
				}
			}
			batch = live
		}
		if tr != nil {
			tr.SetTime(t + 1)
			for _, x := range batch {
				tr.Send(t, int(x.sender), int(x.trigger))
			}
		}
		res.Transmissions += len(batch)

		// Receiver-side resolution over the shared medium, per-flow copy
		// lists in the scalar engine's heardBy append order.
		mw.bumpSlot()
		mw.touched = mw.touched[:0]
		for bi, x := range batch {
			for _, v := range g.Neighbors(int(x.sender)) {
				if fo != nil && (!fo.NodeUp(v, t+1) || !fo.LinkUp(int(x.sender), v, t+1) ||
					fo.CopyLost(int(x.sender), v, t+1)) {
					continue // the copy faded before reaching v
				}
				if mw.hear(v, int32(bi)) {
					mw.touched = append(mw.touched, int32(v))
				}
			}
		}
		slices.Sort(mw.touched)

		// Commit: receivers in ascending ID order through the shared
		// per-receiver resolution, exactly the scalar engine's loop.
		for _, v32 := range mw.touched {
			v := int(v32)
			res.commit(g, flows, batch, t, v, mw.copies[v], tr, draw,
				mark,
				func(fi int32, node int, pkt Packet) bool { return mw.acted[fi][node][pkt] },
				func(slot int, x multiTx) { w.Push(slot, x) })
		}
		w.CloseSlot()
	}
	w.FoldStats()
	for i := range mw.acted {
		mw.acted[i] = nil // release per-run maps; sizes vary run to run
	}

	res.fold()
	return res
}

// RunMACMultiDES is the package-level calendar drop-in for RunMACMulti,
// used by the -des figure paths.
func RunMACMultiDES(g *graph.Graph, flows []MultiFlow, opt MACOptions) *MultiResult {
	var mw MultiMACWorkspace
	return mw.Run(g, flows, opt)
}
