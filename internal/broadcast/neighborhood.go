package broadcast

import (
	"sort"

	"clustercast/internal/graph"
)

// Neighborhood caches the 1-hop and 2-hop neighbor sets the
// neighbor-designating protocols (MPR, DP, PDP) rely on. In a real MANET
// this is exactly the knowledge two rounds of HELLO exchanges provide.
type Neighborhood struct {
	g  *graph.Graph
	n1 []map[int]bool // open 1-hop neighborhoods
	n2 []map[int]bool // nodes at distance exactly 2
}

// NewNeighborhood digests g.
func NewNeighborhood(g *graph.Graph) *Neighborhood {
	n := g.N()
	nb := &Neighborhood{g: g, n1: make([]map[int]bool, n), n2: make([]map[int]bool, n)}
	for v := 0; v < n; v++ {
		m := make(map[int]bool, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			m[u] = true
		}
		nb.n1[v] = m
	}
	for v := 0; v < n; v++ {
		m := make(map[int]bool)
		for _, u := range g.Neighbors(v) {
			for _, w := range g.Neighbors(u) {
				if w != v && !nb.n1[v][w] {
					m[w] = true
				}
			}
		}
		nb.n2[v] = m
	}
	return nb
}

// Graph returns the underlying graph.
func (nb *Neighborhood) Graph() *graph.Graph { return nb.g }

// N1 returns the open 1-hop neighborhood of v (owned by the cache).
func (nb *Neighborhood) N1(v int) map[int]bool { return nb.n1[v] }

// N2 returns the set of nodes at distance exactly 2 from v (owned by the
// cache).
func (nb *Neighborhood) N2(v int) map[int]bool { return nb.n2[v] }

// greedyCover selects, from the sorted candidate list, a minimal-ish set of
// candidates whose neighborhoods cover all targets: repeatedly the
// candidate covering the most uncovered targets (ties to the lowest ID).
// Targets no candidate can cover are ignored (they are unreachable for the
// caller's purposes). The input targets map is consumed.
func greedyCover(targets map[int]bool, candidates []int, coverage func(c int) map[int]bool) []int {
	var out []int
	for len(targets) > 0 {
		best, bestGain := -1, 0
		for _, c := range candidates {
			gain := 0
			for w := range coverage(c) {
				if targets[w] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = c, gain
			}
		}
		if best == -1 {
			break // leftover targets are uncoverable
		}
		out = append(out, best)
		for w := range coverage(best) {
			delete(targets, w)
		}
	}
	sort.Ints(out)
	return out
}
