package broadcast

import (
	"slices"

	"clustercast/internal/des"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// macTx is a calendar entry of the MAC engine: one scheduled
// transmission. The slot is supplied by the wheel.
type macTx struct {
	sender  int32
	trigger int32 // upstream sender that caused this relay (-1: source)
	pkt     Packet
}

// desMACParallelMin is the slot batch size below which the sharded
// fan-out is not worth its barrier cost and the sequential path runs
// instead. A package variable so the equivalence tests can force the
// parallel path on small graphs.
var desMACParallelMin = 32

// MACWorkspace owns the dense state of the calendar port of RunMAC. The
// scalar engine's per-slot transmission table (a map keyed by slot,
// scanned slot by slot) becomes wheel buckets: empty slots inside a
// contention window cost one bitmap word scan instead of a map lookup,
// and the quiescent tail costs nothing at all. Receiver-side collision
// resolution becomes a fan-out into per-slot epoch-stamped copy
// counters — only the copy multiset matters at a receiver (≥2 copies
// collide regardless of order; a single copy's sender is the minimum
// batch index) — which is what makes the fan-out safe to shard: with
// Workers > 1 and no fault oracle, transmissions are partitioned over
// contiguous-ID shards (des.Shards) and delivered via the deterministic
// mailbox exchange, bit-identical for any worker count. With a fault
// oracle the fan-out stays sequential: CopyLost answers depend on the
// per-link query sequence, which is part of the reference semantics.
//
// Protocol callbacks, jitter draws, trace stream and counters replay
// the scalar engine exactly (receivers commit in ascending ID order, as
// RunMAC sorts them); the scalar engine stays the golden reference.
//
// Not safe for concurrent use; give each worker its own.
type MACWorkspace struct {
	wheel  des.Wheel[macTx]
	shards des.Shards

	// Per-run epoch-stamped node state (as in Workspace).
	epoch     uint32
	received  []uint32
	forwarded []uint32
	actedAt   []uint32
	parent    []int32
	acted     [][]Packet

	// Per-slot epoch-stamped receiver state.
	slotEpoch uint32
	stamp     []uint32
	cnt       []int32   // copies heard this slot
	first     []int32   // minimum batch index heard (the decoded copy)
	touched   []int32   // receivers touched this slot (commit order after sort)
	perShard  [][]int32 // parallel path: per-shard touched lists
	byShard   [][]int32 // parallel path: batch indices grouped by sender shard

	jitter rng.Stream // reseeded per run (the alloc-free NewLabeled path)
	res    MACWSResult
}

// NewMACWorkspace returns an empty workspace; buffers grow on first use.
func NewMACWorkspace() *MACWorkspace { return &MACWorkspace{} }

// MACWSResult is the dense, allocation-free result of a calendar MAC
// broadcast, owned by the workspace and valid until its next Run. Call
// Materialize for an independent CollisionResult.
type MACWSResult struct {
	Source     int
	Latency    int
	Duplicates int
	Collisions int
	LostCopies int
	// Transmissions counts the transmissions that actually went on the
	// air (calendar events drained, minus crashed senders) — the event
	// count of the run.
	Transmissions int
	nReceived     int
	nForward      int
	ws            *MACWorkspace
}

// ForwardCount returns the size of the forward node set (including the
// source).
func (r *MACWSResult) ForwardCount() int { return r.nForward }

// ReceivedCount returns the number of nodes that received (or
// originated) the packet.
func (r *MACWSResult) ReceivedCount() int { return r.nReceived }

// DeliveryRatio returns the fraction of the n nodes that received the
// packet.
func (r *MACWSResult) DeliveryRatio(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(r.nReceived) / float64(n)
}

// Materialize converts the dense result into the map-based
// CollisionResult of the scalar engine.
func (r *MACWSResult) Materialize() *CollisionResult {
	res := &CollisionResult{Result: Result{
		Source:     r.Source,
		Latency:    r.Latency,
		Duplicates: r.Duplicates,
		Forwarders: make(map[int]bool, r.nForward),
		Received:   make(map[int]bool, r.nReceived),
		Parent:     make(map[int]int, r.nReceived),
	}}
	res.Collisions = r.Collisions
	res.LostCopies = r.LostCopies
	ws, epoch := r.ws, r.ws.epoch
	for v := range ws.received {
		if ws.received[v] != epoch {
			continue
		}
		res.Received[v] = true
		if v != r.Source {
			res.Parent[v] = int(ws.parent[v])
		}
	}
	for v := range ws.forwarded {
		if ws.forwarded[v] == epoch {
			res.Forwarders[v] = true
		}
	}
	return res
}

// ensure sizes the arrays and bumps the run epoch (wrap-flushing stale
// stamps).
func (mw *MACWorkspace) ensure(n int) {
	if cap(mw.received) < n {
		mw.received = make([]uint32, n)
		mw.forwarded = make([]uint32, n)
		mw.actedAt = make([]uint32, n)
		mw.parent = make([]int32, n)
		mw.acted = make([][]Packet, n)
		mw.stamp = make([]uint32, n)
		mw.cnt = make([]int32, n)
		mw.first = make([]int32, n)
		mw.epoch, mw.slotEpoch = 0, 0
	}
	mw.received = mw.received[:n]
	mw.forwarded = mw.forwarded[:n]
	mw.actedAt = mw.actedAt[:n]
	mw.parent = mw.parent[:n]
	mw.acted = mw.acted[:n]
	mw.stamp = mw.stamp[:n]
	mw.cnt = mw.cnt[:n]
	mw.first = mw.first[:n]
	mw.epoch++
	if mw.epoch == 0 {
		for _, s := range [][]uint32{mw.received[:cap(mw.received)], mw.forwarded[:cap(mw.forwarded)], mw.actedAt[:cap(mw.actedAt)]} {
			for i := range s {
				s[i] = 0
			}
		}
		mw.epoch = 1
	}
}

// bumpSlot advances the per-slot receiver stamp (wrap-flushing).
func (mw *MACWorkspace) bumpSlot() {
	mw.slotEpoch++
	if mw.slotEpoch == 0 {
		s := mw.stamp[:cap(mw.stamp)]
		for i := range s {
			s[i] = 0
		}
		mw.slotEpoch = 1
	}
}

// markActed / actedOn mirror Workspace's per-node payload lists.
func (mw *MACWorkspace) markActed(v int, pkt Packet) {
	if mw.actedAt[v] != mw.epoch {
		mw.actedAt[v] = mw.epoch
		mw.acted[v] = mw.acted[v][:0]
	}
	for _, q := range mw.acted[v] {
		if q == pkt {
			return
		}
	}
	mw.acted[v] = append(mw.acted[v], pkt)
}

func (mw *MACWorkspace) actedOn(v int, pkt Packet) bool {
	if mw.actedAt[v] != mw.epoch {
		return false
	}
	for _, q := range mw.acted[v] {
		if q == pkt {
			return true
		}
	}
	return false
}

// hearCopy records one copy of batch index bi reaching receiver v this
// slot, returning true when v is newly touched.
func (mw *MACWorkspace) hearCopy(v int, bi int32) bool {
	if mw.stamp[v] != mw.slotEpoch {
		mw.stamp[v] = mw.slotEpoch
		mw.cnt[v] = 1
		mw.first[v] = bi
		return true
	}
	mw.cnt[v]++
	if bi < mw.first[v] {
		mw.first[v] = bi
	}
	return false
}

// Run simulates one broadcast under the slotted collision model on the
// event calendar, bit-identical to RunMAC. opt.Workers > 1 enables the
// sharded fan-out (only taken when opt.Faults is nil; see the type
// comment).
func (mw *MACWorkspace) Run(g *graph.Graph, source int, p Protocol, opt MACOptions) *MACWSResult {
	n := g.N()
	mw.ensure(n)
	epoch := mw.epoch
	res := &mw.res
	*res = MACWSResult{Source: source, ws: mw}
	mw.received[source] = epoch
	mw.forwarded[source] = epoch
	res.nReceived, res.nForward = 1, 1

	mw.jitter.SeedLabeled(opt.Seed, "mac-jitter")
	draw := func() int {
		if opt.Jitter <= 0 {
			return 0
		}
		return mw.jitter.Intn(opt.Jitter + 1)
	}

	tr := opt.Tracer
	if tr != nil {
		tr.SetTime(0)
	}
	start := p.Start(source)
	mw.markActed(source, start)

	w := &mw.wheel
	w.Reset(opt.Jitter + 2) // forwards land in [t+1, t+1+Jitter]
	w.Push(0, macTx{sender: int32(source), trigger: -1, pkt: start})

	fo := opt.Faults
	par := opt.Workers > 1 && fo == nil
	if par {
		mw.shards.ResetRange(n, opt.Workers)
		if len(mw.perShard) < opt.Workers {
			mw.perShard = make([][]int32, opt.Workers)
			mw.byShard = make([][]int32, opt.Workers)
		}
	}

	for w.Len() > 0 {
		t := w.OpenSlot()
		batch := w.Bucket() // MAC never pushes into its own slot
		if fo != nil {
			// Crashed forwarders stay silent; their slot reservation lapses.
			live := batch[:0]
			for _, x := range batch {
				if fo.NodeUp(int(x.sender), t) {
					live = append(live, x)
				}
			}
			batch = live
		}
		if tr != nil {
			tr.SetTime(t + 1)
			for _, x := range batch {
				tr.Send(t, int(x.sender), int(x.trigger))
			}
		}
		res.Transmissions += len(batch)

		// Receiver-side resolution: count copies per node, remembering
		// the minimum batch index (= the first copy in the scalar
		// engine's heardBy order).
		mw.bumpSlot()
		mw.touched = mw.touched[:0]
		if par && len(batch) >= desMACParallelMin {
			mw.fanoutSharded(g, batch, opt.Workers)
		} else {
			for bi, x := range batch {
				for _, v := range g.Neighbors(int(x.sender)) {
					if fo != nil && (!fo.NodeUp(v, t+1) || !fo.LinkUp(int(x.sender), v, t+1) ||
						fo.CopyLost(int(x.sender), v, t+1)) {
						continue // the copy faded before reaching v
					}
					if mw.hearCopy(v, int32(bi)) {
						mw.touched = append(mw.touched, int32(v))
					}
				}
			}
			slices.Sort(mw.touched)
		}

		// Commit: receivers in ascending ID order, exactly the scalar
		// engine's sorted receiver loop.
		for _, v32 := range mw.touched {
			v := int(v32)
			if mw.cnt[v] > 1 {
				res.Collisions++
				res.LostCopies += int(mw.cnt[v])
				if tr != nil {
					tr.Collision(t+1, v)
				}
				continue // all copies destroyed at this receiver
			}
			x := batch[mw.first[v]]
			var forward bool
			var out Packet
			if mw.received[v] != epoch {
				mw.received[v] = epoch
				res.nReceived++
				mw.parent[v] = x.sender
				if t+1 > res.Latency {
					res.Latency = t + 1
				}
				if tr != nil {
					tr.Deliver(t+1, v, int(x.sender))
				}
				forward, out = p.OnReceive(v, int(x.sender), x.pkt)
			} else {
				res.Duplicates++
				if tr != nil {
					tr.Duplicate(t+1, v, int(x.sender))
				}
				if mw.actedOn(v, x.pkt) {
					continue
				}
				forward, out = p.OnDuplicate(v, int(x.sender), x.pkt)
			}
			if forward {
				if mw.forwarded[v] != epoch {
					mw.forwarded[v] = epoch
					res.nForward++
				}
				mw.markActed(v, x.pkt)
				mw.markActed(v, out)
				w.Push(t+1+draw(), macTx{sender: int32(v), trigger: x.sender, pkt: out})
			}
		}
		w.CloseSlot()
	}
	w.FoldStats()
	if par {
		mw.shards.FoldStats()
	}
	mRuns.Inc()
	mTransmissions.Add(int64(res.Transmissions))
	mDeliveries.Add(int64(res.nReceived - 1))
	mDuplicates.Add(int64(res.Duplicates))
	mMACCollisions.Add(int64(res.Collisions))
	mMACLostCopies.Add(int64(res.LostCopies))
	return res
}

// fanoutSharded distributes one slot's receiver resolution over the
// shard exchange: senders are grouped by owning shard, each source
// shard emits (receiver, batch index) mail toward the receiver's shard,
// and each destination shard folds its mail into the copy counters it
// owns. Counter updates commute (count increments and a min), mailbox
// delivery order is deterministic, and per-shard touched lists are
// sorted and concatenated in shard order (contiguous ID ranges, so the
// concatenation is globally sorted) — making the result independent of
// the worker count.
func (mw *MACWorkspace) fanoutSharded(g *graph.Graph, batch []macTx, workers int) {
	sh := &mw.shards
	k := sh.K()
	for s := 0; s < k; s++ {
		mw.byShard[s] = mw.byShard[s][:0]
		mw.perShard[s] = mw.perShard[s][:0]
	}
	for bi, x := range batch {
		s := sh.Owner(int(x.sender))
		mw.byShard[s] = append(mw.byShard[s], int32(bi))
	}
	sh.Fanout(workers,
		func(src int, emit func(int, des.Mail)) {
			for _, bi := range mw.byShard[src] {
				x := batch[bi]
				for _, v := range g.Neighbors(int(x.sender)) {
					emit(sh.Owner(v), des.Mail{Node: int32(v), Val: bi})
				}
			}
		},
		func(dst int, mail []des.Mail) {
			for _, m := range mail {
				if mw.hearCopy(int(m.Node), m.Val) {
					mw.perShard[dst] = append(mw.perShard[dst], m.Node)
				}
			}
			slices.Sort(mw.perShard[dst])
		})
	for s := 0; s < k; s++ {
		mw.touched = append(mw.touched, mw.perShard[s]...)
	}
}

// RunMACDES is the package-level calendar drop-in for RunMAC, used by
// the -des figure paths.
func RunMACDES(g *graph.Graph, source int, p Protocol, opt MACOptions) *CollisionResult {
	var mw MACWorkspace
	return mw.Run(g, source, p, opt).Materialize()
}
