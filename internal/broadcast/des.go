package broadcast

import (
	"clustercast/internal/graph"
	"clustercast/internal/rng"
)

// This file ports the ideal-radio engine onto the internal/des calendar.
// The scalar RunOpts FIFO is already event-driven — its queue times are
// nondecreasing, so FIFO order equals (time, push order) — which makes
// the wheel drain a drop-in replacement: identical protocol callbacks,
// randomness consumption, trace stream and counters, proven by the
// equivalence tests. The scalar engine stays the golden reference.

// RunDES simulates one broadcast on the event calendar with the ideal
// radio model, reusing the workspace. Bit-identical to Run.
func (ws *Workspace) RunDES(g *graph.Graph, source int, p Protocol) *WSResult {
	return ws.RunDESOpts(g, source, p, Options{})
}

// RunDESOpts is RunDES with an explicit radio model. Event order,
// protocol callbacks and randomness consumption are identical to
// RunOpts, so results are bit-identical.
func (ws *Workspace) RunDESOpts(g *graph.Graph, source int, p Protocol, opt Options) *WSResult {
	n := g.N()
	ws.ensure(n)
	ws.epoch++
	if ws.epoch == 0 { // wrapped: flush stale stamps over the full capacity
		for _, s := range [][]uint32{ws.received[:cap(ws.received)], ws.forwarded[:cap(ws.forwarded)], ws.actedAt[:cap(ws.actedAt)]} {
			for i := range s {
				s[i] = 0
			}
		}
		ws.epoch = 1
	}
	epoch := ws.epoch
	res := &ws.res
	*res = WSResult{Source: source, ws: ws}
	ws.received[source] = epoch
	ws.forwarded[source] = epoch
	res.nReceived, res.nForward = 1, 1
	var loss *rng.Stream
	if opt.Loss > 0 {
		loss = rng.NewLabeled(opt.Seed, "radio-loss")
	}
	fo := opt.Faults
	faultSkips, faultDrops := 0, 0
	tr := opt.Tracer
	if tr != nil {
		tr.SetTime(0)
	}
	start := p.Start(source)
	if tr != nil {
		tr.Send(0, source, -1)
	}
	ws.markActed(source, start)
	w := &ws.wheel
	w.Reset(2) // every push is at slot t+1
	w.Push(0, transmission{sender: source, pkt: start, time: 0})
	pushed := 1
	for w.Len() > 0 {
		t := w.OpenSlot()
		for i := 0; i < w.SlotLen(); i++ {
			tx := w.Event(i)
			if fo != nil && !fo.NodeUp(tx.sender, t) {
				faultSkips++
				continue // the sender crashed before its slot came up
			}
			if tr != nil {
				tr.SetTime(t + 1)
			}
			for _, v := range g.Neighbors(tx.sender) {
				if loss != nil && loss.Bool(opt.Loss) {
					continue // this copy was lost on the air
				}
				if fo != nil && (!fo.NodeUp(v, t+1) || !fo.LinkUp(tx.sender, v, t+1) ||
					fo.CopyLost(tx.sender, v, t+1)) {
					faultDrops++
					continue // receiver down, partitioned away, or a loss burst
				}
				var forward bool
				var out Packet
				if ws.received[v] != epoch {
					ws.received[v] = epoch
					res.nReceived++
					ws.parent[v] = tx.sender
					if t+1 > res.Latency {
						res.Latency = t + 1
					}
					if tr != nil {
						tr.Deliver(t+1, v, tx.sender)
					}
					forward, out = p.OnReceive(v, tx.sender, tx.pkt)
				} else {
					res.Duplicates++
					if tr != nil {
						tr.Duplicate(t+1, v, tx.sender)
					}
					if ws.actedOn(v, tx.pkt) {
						continue
					}
					forward, out = p.OnDuplicate(v, tx.sender, tx.pkt)
				}
				if forward {
					if ws.forwarded[v] != epoch {
						ws.forwarded[v] = epoch
						res.nForward++
					}
					ws.markActed(v, tx.pkt)
					ws.markActed(v, out)
					if tr != nil {
						tr.Send(t+1, v, tx.sender)
					}
					w.Push(t+1, transmission{sender: v, pkt: out, time: t + 1})
					pushed++
				}
			}
		}
		w.CloseSlot()
	}
	w.FoldStats()
	mRuns.Inc()
	mTransmissions.Add(int64(pushed - faultSkips))
	mDeliveries.Add(int64(res.nReceived - 1))
	mDuplicates.Add(int64(res.Duplicates))
	if fo != nil {
		mFaultSkips.Add(int64(faultSkips))
		mFaultDrops.Add(int64(faultDrops))
	}
	return res
}

// RunDESOpts is the package-level calendar engine: a drop-in for the
// map-based RunOpts, used by the -des figure paths. It allocates a
// private workspace per call; the replicate-heavy paths hold a
// Workspace and call its RunDESOpts instead.
func RunDESOpts(g *graph.Graph, source int, p Protocol, opt Options) *Result {
	var ws Workspace
	return ws.RunDESOpts(g, source, p, opt).Materialize()
}

// RunDESIdeal is RunDESOpts with the ideal radio model (the calendar
// drop-in for Run).
func RunDESIdeal(g *graph.Graph, source int, p Protocol) *Result {
	return RunDESOpts(g, source, p, Options{})
}
