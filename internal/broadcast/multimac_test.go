package broadcast

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"clustercast/internal/graph"
	"clustercast/internal/obs"
	"clustercast/internal/rng"
)

// multiFlows builds a deterministic flow set over n nodes: sources cycle
// through the graph, starts follow the given gap, seeds derive from the
// flow index.
func multiFlows(n, count, gap int, p Protocol) []MultiFlow {
	flows := make([]MultiFlow, count)
	for i := range flows {
		flows[i] = MultiFlow{
			Src:   (i * 7) % n,
			Dst:   (i*7 + n/2) % n,
			Start: i * gap,
			Seed:  uint64(1000 + i),
			Proto: p,
		}
	}
	return flows
}

// TestMultiMACZeroContentionEquivalence is the acceptance gate of the
// multi-source engine: with flow starts spaced beyond any possible
// broadcast makespan (disjoint slot schedules), the multi-source run
// degenerates to N serialized single-source RunMAC runs, bit for bit —
// per-flow Result, Collisions, LostCopies, and the run's aggregate
// transmission count.
func TestMultiMACZeroContentionEquivalence(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		nw := randomNet(t, 700+uint64(trial), 40+8*trial, 8)
		n := nw.G.N()
		ps := []Protocol{
			Flooding{},
			Gossip{P: 0.8, Seed: 41},
			StaticCDS{Set: map[int]bool{0: true, 2: true, 4: true, 6: true, 9: true}, Label: "cds"},
		}
		for _, jit := range []int{0, 4} {
			for _, p := range ps {
				// gap > n*(Jitter+2) bounds any single broadcast's makespan.
				flows := multiFlows(n, 5, n*(jit+2)+10, p)
				opt := MACOptions{Jitter: jit}
				multi := RunMACMulti(nw.G, flows, opt)
				for i, f := range flows {
					single := RunMAC(nw.G, f.Src, p, MACOptions{Jitter: jit, Seed: f.Seed})
					fr := multi.Flows[i]
					if !reflect.DeepEqual(&single.Result, &fr.Result) ||
						single.Collisions != fr.Collisions || single.LostCopies != fr.LostCopies {
						t.Fatalf("trial %d %s jit=%d flow %d: multi-source result differs from serialized single run:\n%+v\n%+v",
							trial, p.Name(), jit, i, single, fr.CollisionResult)
					}
					// DstSlot, when reached, must equal Start + the slot the
					// single run delivered Dst in.
					if fr.Result.Received[f.Dst] && f.Dst != f.Src {
						if fr.DstSlot < f.Start {
							t.Fatalf("flow %d: DstSlot %d before Start %d", i, fr.DstSlot, f.Start)
						}
					}
					if multi.CrossCollisions != 0 {
						t.Fatalf("trial %d: cross-flow collisions under disjoint schedules", trial)
					}
				}
			}
		}
	}
}

// TestMultiMACMetricsParitySerialized: a zero-contention multi-source run
// folds exactly the broadcast.* and mac.* totals its serialized
// single-source replays fold, plus its own mac.multi_* accounting.
func TestMultiMACMetricsParitySerialized(t *testing.T) {
	nw := randomNet(t, 93, 50, 8)
	n := nw.G.N()
	p := Gossip{P: 0.7, Seed: 19}
	flows := multiFlows(n, 6, n*4+10, p)
	macCounters := append([]string{"mac.collisions", "mac.lost_copies"}, parityCounters...)
	want := counterTotals(t, macCounters, func() {
		for _, f := range flows {
			RunMAC(nw.G, f.Src, p, MACOptions{Jitter: 2, Seed: f.Seed})
		}
	})
	got := counterTotals(t, macCounters, func() {
		RunMACMulti(nw.G, flows, MACOptions{Jitter: 2})
	})
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("multi-source totals %v != serialized totals %v", got, want)
	}
	if want["broadcast.deliveries"] == 0 {
		t.Fatal("parity on all-zero totals proves nothing")
	}
}

// TestMultiMACScalarDESEquivalence pins the calendar port to the scalar
// multi-source engine across overlapping flow schedules, jitter windows,
// fault oracles, and worker counts (the port is sequential; Workers must
// not change results), including the typed trace stream.
func TestMultiMACScalarDESEquivalence(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		nw := randomNet(t, 800+uint64(trial), 40+10*trial, 9)
		n := nw.G.N()
		ps := []Protocol{
			Flooding{},
			Gossip{P: 0.8, Seed: 31},
			StaticCDS{Set: map[int]bool{0: true, 2: true, 4: true, 6: true, 9: true}, Label: "cds"},
		}
		for _, jit := range []int{0, 3, 8} {
			for _, withFaults := range []bool{false, true} {
				for _, p := range ps {
					// Overlapping starts: gap 1 guarantees heavy contention.
					flows := multiFlows(n, 6, 1, p)
					trA := obs.NewTracer(1 << 14)
					optA := MACOptions{Jitter: jit, Tracer: trA}
					if withFaults {
						optA.Faults = burstOracle(t, n, uint64(70+trial))
					}
					a := RunMACMulti(nw.G, flows, optA)
					for _, workers := range []int{0, 1, 4, 8} {
						trB := obs.NewTracer(1 << 14)
						optB := MACOptions{Jitter: jit, Tracer: trB, Workers: workers}
						if withFaults {
							optB.Faults = burstOracle(t, n, uint64(70+trial))
						}
						b := NewMultiMACWorkspace().Run(nw.G, flows, optB)
						if !reflect.DeepEqual(a, b) {
							t.Fatalf("trial %d %s jit=%d faults=%v workers=%d: scalar and DES multi-source runs differ:\n%+v\n%+v",
								trial, p.Name(), jit, withFaults, workers, a, b)
						}
						if !bytes.Equal(traceBytes(t, trA), traceBytes(t, trB)) {
							t.Fatalf("trial %d %s jit=%d faults=%v workers=%d: trace streams differ",
								trial, p.Name(), jit, withFaults, workers)
						}
					}
				}
			}
		}
	}
}

// TestMultiMACCrossCollision pins the cross-flow collision attribution on
// a hand-built path: sources at both ends of a 3-node path transmit in
// the same slot, so the middle node hears one copy of each flow and
// decodes neither.
func TestMultiMACCrossCollision(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	flows := []MultiFlow{
		{Src: 0, Dst: 2, Start: 0, Seed: 1, Proto: Flooding{}},
		{Src: 2, Dst: 0, Start: 0, Seed: 2, Proto: Flooding{}},
	}
	res := RunMACMulti(g, flows, MACOptions{})
	if res.SharedCollisions != 1 || res.CrossCollisions != 1 {
		t.Fatalf("shared=%d cross=%d, want 1/1", res.SharedCollisions, res.CrossCollisions)
	}
	for i, fr := range res.Flows {
		if fr.Collisions != 1 || fr.LostCopies != 1 {
			t.Fatalf("flow %d: collisions=%d lost=%d, want 1/1", i, fr.Collisions, fr.LostCopies)
		}
		if len(fr.Received) != 1 {
			t.Fatalf("flow %d: delivered through a collision: %v", i, fr.Received)
		}
		if fr.DstSlot != -1 {
			t.Fatalf("flow %d: DstSlot %d for an unreached destination", i, fr.DstSlot)
		}
		if len(fr.Parent) != 0 {
			t.Fatalf("flow %d: collided delivery recorded a parent: %v", i, fr.Parent)
		}
	}
	if res.Transmissions != 2 {
		t.Fatalf("transmissions = %d, want 2", res.Transmissions)
	}
}

// TestMultiMACSameFlowCollisionNotCross: two forwarders of the *same*
// flow colliding must not count as cross-flow contention.
func TestMultiMACSameFlowCollisionNotCross(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-3, 2-3. Flooding from 0 with Jitter 0: nodes 1
	// and 2 both relay in slot 1, and 3 hears both copies.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	flows := []MultiFlow{{Src: 0, Dst: 3, Start: 0, Seed: 5, Proto: Flooding{}}}
	res := RunMACMulti(g, flows, MACOptions{})
	if res.SharedCollisions == 0 {
		t.Fatal("diamond relay produced no collision")
	}
	if res.CrossCollisions != 0 {
		t.Fatalf("cross=%d for a single-flow run", res.CrossCollisions)
	}
	fr := res.Flows[0]
	if fr.Collisions != res.SharedCollisions || fr.LostCopies == 0 {
		t.Fatalf("single-flow attribution off: flow collisions=%d lost=%d shared=%d",
			fr.Collisions, fr.LostCopies, res.SharedCollisions)
	}
}

// TestMultiMACDstSlot pins destination timestamping: on a path with one
// flow, DstSlot is Start + hop distance (Jitter 0), and Latency stays
// relative to Start.
func TestMultiMACDstSlot(t *testing.T) {
	g := pathGraph(5)
	flows := []MultiFlow{{Src: 0, Dst: 4, Start: 17, Seed: 3, Proto: Flooding{}}}
	res := RunMACMulti(g, flows, MACOptions{})
	fr := res.Flows[0]
	if fr.DstSlot != 17+4 {
		t.Fatalf("DstSlot = %d, want %d", fr.DstSlot, 17+4)
	}
	if fr.Latency != 4 {
		t.Fatalf("relative latency = %d, want 4", fr.Latency)
	}
	if res.Makespan != 17+4 {
		t.Fatalf("makespan = %d, want %d", res.Makespan, 17+4)
	}
	// Dst == Src short-circuits to Start.
	res = RunMACMulti(g, []MultiFlow{{Src: 2, Dst: 2, Start: 9, Seed: 4, Proto: Flooding{}}}, MACOptions{})
	if res.Flows[0].DstSlot != 9 {
		t.Fatalf("Dst==Src DstSlot = %d, want 9", res.Flows[0].DstSlot)
	}
}

// FuzzMultiMACScalarDESAgree cross-checks the scalar and calendar
// multi-source engines on fuzzer-chosen flow schedules.
func FuzzMultiMACScalarDESAgree(f *testing.F) {
	f.Add(uint64(1), 40, 8, 3, 4, 2, uint64(9))
	f.Add(uint64(7), 25, 6, 0, 2, 0, uint64(2))
	f.Add(uint64(42), 60, 10, 12, 6, 5, uint64(77))
	f.Fuzz(func(t *testing.T, topoSeed uint64, n, deg, jitter, nflows, gap int, seed uint64) {
		if n < 5 || n > 100 || deg < 3 || deg > 14 || jitter < 0 || jitter > 16 ||
			nflows < 1 || nflows > 8 || gap < 0 || gap > 64 {
			t.Skip()
		}
		nw := randomNet(t, topoSeed, n, float64(deg))
		n = nw.G.N()
		r := rng.New(seed)
		flows := make([]MultiFlow, nflows)
		for i := range flows {
			flows[i] = MultiFlow{
				Src:   r.Intn(n),
				Dst:   r.Intn(n),
				Start: i * gap,
				Seed:  r.Uint64(),
				Proto: Gossip{P: 0.85, Seed: seed + uint64(i)},
			}
		}
		opt := MACOptions{Jitter: jitter}
		a := RunMACMulti(nw.G, flows, opt)
		b := RunMACMultiDES(nw.G, flows, opt)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scalar and DES multi-source runs differ:\n%+v\n%+v", a, b)
		}
	})
}

// TestMultiMACEmptyFlows: the degenerate call is total.
func TestMultiMACEmptyFlows(t *testing.T) {
	g := pathGraph(3)
	for name, run := range map[string]func() *MultiResult{
		"scalar": func() *MultiResult { return RunMACMulti(g, nil, MACOptions{}) },
		"des":    func() *MultiResult { return RunMACMultiDES(g, nil, MACOptions{}) },
	} {
		res := run()
		if len(res.Flows) != 0 || res.Transmissions != 0 || res.Makespan != 0 {
			t.Fatalf("%s: empty flow set produced work: %+v", name, res)
		}
		if got := res.DeliveryRatio(3); got != 0 {
			t.Fatalf("%s: delivery ratio %g for no flows", name, got)
		}
	}
}

// TestMultiMACWorkspaceReuse: a workspace survives runs of different
// sizes and flow counts without cross-run contamination.
func TestMultiMACWorkspaceReuse(t *testing.T) {
	mw := NewMultiMACWorkspace()
	for trial := 0; trial < 6; trial++ {
		nw := randomNet(t, 900+uint64(trial), 20+10*(trial%3), 7)
		n := nw.G.N()
		flows := multiFlows(n, 2+trial%4, 1+trial, Flooding{})
		got := mw.Run(nw.G, flows, MACOptions{Jitter: trial % 4})
		want := RunMACMulti(nw.G, flows, MACOptions{Jitter: trial % 4})
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: reused workspace diverged from scalar run", trial)
		}
	}
}

func BenchmarkMultiMAC(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		nw := randomNet(b, uint64(n), n, 10)
		flows := multiFlows(nw.G.N(), 8, 2, Flooding{})
		for _, eng := range []struct {
			name string
			run  func()
		}{
			{"scalar", func() { RunMACMulti(nw.G, flows, MACOptions{Jitter: 4}) }},
			{"des", func() {
				mw := NewMultiMACWorkspace()
				mw.Run(nw.G, flows, MACOptions{Jitter: 4})
			}},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, eng.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng.run()
				}
			})
		}
	}
}
