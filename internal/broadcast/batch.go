package broadcast

import (
	"fmt"
	"math/bits"

	"clustercast/internal/faults"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
	"clustercast/internal/rng"
)

// Batch-engine metrics.
var (
	mBatchRuns  = obs.NewCounter("broadcast.batch_runs")
	mBatchSlots = obs.NewCounter("broadcast.batch_slots")
)

// domGossipForward is the lane-coin identity domain of the gossip forward
// coin. It shares the (seed, key, slot, domain) identity space with the
// batched fault chains (domains 1–4 in internal/faults), so even when a
// figure reuses one seed for both the protocol and the fault spec the coin
// spaces stay disjoint.
const domGossipForward = 5

// BatchProtocol is a forwarding policy the 64-wide engine can drive: the
// forward decision is a pure function of the receiving node, answered for
// all 64 replicate lanes at once. Lane recovers the scalar Protocol that
// replays exactly one lane — the reference side of the batch/scalar
// equivalence suite, and the contract that pins the batched kernels to the
// sequential semantics.
type BatchProtocol interface {
	// Name labels the protocol in experiment output.
	Name() string
	// ForwardWord returns the lanes in which node v forwards on first
	// reception: bit r set means replicate r's copy is relayed. Must be a
	// pure function of v (same word on every call).
	ForwardWord(v int) uint64
	// Lane returns the scalar Protocol whose OnReceive decision at every
	// node is bit r of ForwardWord.
	Lane(r int) Protocol
}

// BatchFlooding is blind flooding, 64 lanes wide: every node forwards in
// every lane.
type BatchFlooding struct{}

// Name implements BatchProtocol.
func (BatchFlooding) Name() string { return "flooding" }

// ForwardWord implements BatchProtocol.
func (BatchFlooding) ForwardWord(v int) uint64 { return ^uint64(0) }

// Lane implements BatchProtocol.
func (BatchFlooding) Lane(r int) Protocol { return Flooding{} }

// BatchGossip forwards with fixed probability P, one independent coin per
// (node, lane). The coin word is a pure function of (Seed, v), drawn from
// the lane-indexed counter generator — a different randomness discipline
// than the scalar Gossip's per-node streams, which is why the batch opt-in
// resamples rather than replays legacy gossip figures.
type BatchGossip struct {
	P    float64
	Seed uint64
}

// Name implements BatchProtocol.
func (g BatchGossip) Name() string { return fmt.Sprintf("gossip(%.2f)", g.P) }

// ForwardWord implements BatchProtocol.
func (g BatchGossip) ForwardWord(v int) uint64 {
	return rng.BernoulliWord(g.P, g.Seed, uint64(v), 0, domGossipForward)
}

// Lane implements BatchProtocol.
func (g BatchGossip) Lane(r int) Protocol { return laneGossip{batch: g, lane: r} }

// laneGossip is the scalar single-lane view of BatchGossip: node v's coin
// is bit lane of the batch coin word.
type laneGossip struct {
	NoDuplicates
	batch BatchGossip
	lane  int
}

// Name implements Protocol.
func (g laneGossip) Name() string { return fmt.Sprintf("gossip-lane(%.2f/%d)", g.batch.P, g.lane) }

// Start implements Protocol.
func (g laneGossip) Start(source int) Packet { return nil }

// OnReceive implements Protocol.
func (g laneGossip) OnReceive(v, x int, pkt Packet) (bool, Packet) {
	return rng.Lane(g.batch.ForwardWord(v), g.lane), nil
}

// BatchStaticCDS forwards through a precomputed CDS in every lane: the
// forward set is deterministic, so all 64 lanes share it.
type BatchStaticCDS struct {
	Set   *graph.Bitset
	Label string
}

// Name implements BatchProtocol.
func (s BatchStaticCDS) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "static-cds"
}

// ForwardWord implements BatchProtocol.
func (s BatchStaticCDS) ForwardWord(v int) uint64 {
	if s.Set.Has(v) {
		return ^uint64(0)
	}
	return 0
}

// Lane implements BatchProtocol.
func (s BatchStaticCDS) Lane(r int) Protocol { return StaticCDSBits{Set: s.Set, Label: s.Label} }

// NewBatchKernel maps a scalar Protocol onto its 64-wide kernel, or reports
// that the protocol is scalar-only. n is the node count (needed to pack a
// map-backed CDS). BatchCoverage documents the full decision table; the
// boundary test in batch_boundary_test.go keeps the two in sync with the
// actual Protocol implementations in the tree.
func NewBatchKernel(p Protocol, n int) (BatchProtocol, bool) {
	switch q := p.(type) {
	case Flooding:
		return BatchFlooding{}, true
	case Gossip:
		return BatchGossip{P: q.P, Seed: q.Seed}, true
	case StaticCDS:
		return BatchStaticCDS{Set: graph.BitsetFromSet(n, q.Set), Label: q.Label}, true
	case StaticCDSBits:
		return BatchStaticCDS{Set: q.Set, Label: q.Label}, true
	}
	return nil, false
}

// BatchCoverage is the authoritative batch/scalar boundary: every Protocol
// implementation in the tree appears here, mapped to whether NewBatchKernel
// covers it. The scalar-only entries carry state the bit-plane engine
// cannot express — forward decisions driven by upstream packet contents
// (MPR/DP/PDP relay lists), duplicate-triggered behavior, or mutable
// per-run protocol state (dynamicb, passive). The boundary test fails when
// a new Protocol implementation is missing from this table, so batch
// support can never be claimed silently.
var BatchCoverage = map[string]bool{
	"broadcast.Flooding":      true,
	"broadcast.Gossip":        true,
	"broadcast.StaticCDS":     true,
	"broadcast.StaticCDSBits": true,
	"broadcast.laneGossip":    true, // lane view of BatchGossip, trivially covered
	"broadcast.MPR":           false,
	"broadcast.DP":            false,
	"broadcast.PDP":           false,
	"dynamicb.Protocol":       false,
	"passive.Protocol":        false,
}

// BatchOptions tunes a 64-wide run. The zero value is the ideal radio.
type BatchOptions struct {
	// Chains, when non-nil, injects per-copy loss (i.i.d. or
	// Gilbert–Elliott) lane by lane. Specs with churn or partitions are
	// not batchable (faults.BatchSupported); callers fall back to the
	// scalar path for those.
	Chains *faults.ChainBatch
}

// BatchResult holds the per-lane observations of one 64-wide run, indexed
// by replicate lane. Received, Forwards and Latency are defined exactly as
// WSResult's ReceivedCount, ForwardCount and Latency; duplicates and
// delivery parents are not tracked (covered protocols never act on
// duplicates, and no estimator consumes parents).
type BatchResult struct {
	Received [graph.LaneCount]int
	Forwards [graph.LaneCount]int
	Latency  [graph.LaneCount]int
}

// DeliveryRatio returns lane r's delivered fraction over n nodes.
func (r *BatchResult) DeliveryRatio(lane, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(r.Received[lane]) / float64(n)
}

// BatchWorkspace is the reusable state of the 64-wide broadcast engine:
// bit-plane coverage, a slot-stamped arrival accumulator, and the frontier
// lists. Like the scalar Workspace it allocates on first use and is then
// allocation-free across runs; single-goroutine state, one per worker.
type BatchWorkspace struct {
	covered *graph.BitPlanes
	arr     []uint64 // per-node arrival word of the current slot
	txw     []uint64 // per-node transmit word while on the frontier
	stamp   []uint32 // arrival-slot stamps (epoch-cleared like Workspace)
	epoch   uint32
	touched []int
	active  []int
	spare   []int
	res     BatchResult
}

// grow sizes the workspace for n nodes.
func (ws *BatchWorkspace) grow(n int) {
	if ws.covered == nil {
		ws.covered = graph.NewBitPlanes(n)
	} else {
		ws.covered.Reset(n)
	}
	if cap(ws.arr) < n {
		ws.arr = make([]uint64, n)
		ws.txw = make([]uint64, n)
		ws.stamp = make([]uint32, n)
		ws.epoch = 0
	} else {
		ws.arr = ws.arr[:n]
		ws.txw = ws.txw[:n]
		ws.stamp = ws.stamp[:n]
	}
}

// Run advances 64 replicates of one broadcast from source in lockstep: one
// slot-synchronous pass over the frontier per time slot, with every
// per-replicate decision carried as one bit per lane in a machine word.
//
// Semantics mirror Workspace.RunOpts for covered protocols exactly, lane by
// lane: the source transmits unconditionally at slot 0; a copy sent in slot
// t arrives in slot t+1 unless the lane's loss coin eats it; a node
// entering lane r's covered set forwards in that lane iff bit r of
// ForwardWord(v) is set, transmitting in the next slot. Within-slot sender
// order is immaterial — arrivals are accumulated before any delivery is
// decided, and every loss coin is keyed by (link, slot), not by query
// order — which is what lets 64 sequential replicates collapse into one
// pass without reordering artifacts.
func (ws *BatchWorkspace) Run(g *graph.Graph, source int, p BatchProtocol, opt BatchOptions) *BatchResult {
	n := g.N()
	ws.grow(n)
	res := &ws.res
	*res = BatchResult{}
	for r := range res.Received {
		res.Received[r] = 1
		res.Forwards[r] = 1
	}
	ws.covered.SetWord(source, ^uint64(0))
	ws.txw[source] = ^uint64(0)
	active := append(ws.active[:0], source)
	spare := ws.spare[:0]
	touched := ws.touched[:0]
	chains := opt.Chains
	slots := 0
	// Scalar-equivalent accounting, hoisted so the disabled path costs one
	// predictable branch per copy: every arrived copy is either a first
	// delivery or a duplicate (exactly the scalar Workspace bookkeeping),
	// so the broadcast.* totals of a 64-wide run match 64 scalar runs.
	measure := obs.Enabled()
	var copies, delivered, dropped int64

	for t := 0; len(active) > 0; t++ {
		slots++
		ws.epoch++
		if ws.epoch == 0 {
			for i := range ws.stamp {
				ws.stamp[i] = 0
			}
			ws.epoch = 1
		}
		epoch := ws.epoch
		touched = touched[:0]
		// Phase 1: accumulate arrivals of slot t+1 across the frontier.
		for _, u := range active {
			w := ws.txw[u]
			for _, v := range g.Neighbors(u) {
				arrive := w
				if chains != nil {
					arrive &^= chains.LossWord(u, v, t+1)
				}
				if measure {
					copies += int64(bits.OnesCount64(arrive))
					dropped += int64(bits.OnesCount64(w &^ arrive))
				}
				if arrive == 0 {
					continue
				}
				if ws.stamp[v] != epoch {
					ws.stamp[v] = epoch
					ws.arr[v] = 0
					touched = append(touched, v)
				}
				ws.arr[v] |= arrive
			}
		}
		// Phase 2: deliver new lanes, decide forwards, build the next
		// frontier. Order over touched nodes is immaterial: each lane's
		// counts are sums over nodes and the forward coin depends only
		// on v.
		spare = spare[:0]
		for _, v := range touched {
			neww := ws.arr[v] &^ ws.covered.Word(v)
			if neww == 0 {
				continue
			}
			ws.covered.Or(v, neww)
			if measure {
				delivered += int64(bits.OnesCount64(neww))
			}
			for w := neww; w != 0; w &= w - 1 {
				r := bits.TrailingZeros64(w)
				res.Received[r]++
				res.Latency[r] = t + 1
			}
			fw := neww & p.ForwardWord(v)
			if fw == 0 {
				continue
			}
			for w := fw; w != 0; w &= w - 1 {
				res.Forwards[bits.TrailingZeros64(w)]++
			}
			ws.txw[v] = fw
			spare = append(spare, v)
		}
		active, spare = spare, active
	}
	ws.active, ws.spare, ws.touched = active[:0], spare[:0], touched[:0]
	mBatchRuns.Inc()
	mBatchSlots.Add(int64(slots))
	if measure {
		var tx, rx int64
		for r := 0; r < graph.LaneCount; r++ {
			tx += int64(res.Forwards[r])
			rx += int64(res.Received[r])
		}
		mRuns.Add(graph.LaneCount)
		mTransmissions.Add(tx)
		mDeliveries.Add(rx - graph.LaneCount)
		mDuplicates.Add(copies - delivered)
		if chains != nil {
			mFaultDrops.Add(dropped)
		}
	}
	return res
}

// RunBatch is the convenience entry point: one 64-wide broadcast with a
// throwaway workspace. Hot paths hold a BatchWorkspace instead.
func RunBatch(g *graph.Graph, source int, p BatchProtocol, opt BatchOptions) *BatchResult {
	var ws BatchWorkspace
	return ws.Run(g, source, p, opt)
}
