// Package des is the sharded pending-event calendar underneath the
// event-driven simulation cores: a bucketed timestamp wheel (Wheel) for
// O(1) enqueue/dequeue on slot-quantized workloads, and deterministic
// cross-shard delivery (Shards) for the fan-out phases that are safe to
// parallelize.
//
// The design goals, in order:
//
//  1. Bit-identical replay of the scalar reference engines. The wheel
//     dequeues events in (slot, push order), exactly the (time, seq)
//     order of the reference heap in broadcast.RunTimed and the FIFO
//     order of broadcast.Run; the shard exchange concatenates mailboxes
//     in a fixed shard order so results do not depend on the worker
//     count.
//  2. Zero steady-state allocations. Buckets, mailboxes, and scratch are
//     pooled and reused across runs (epoch-stamped or length-reset, in
//     the style of the coverage/backbone scratch); the event loop itself
//     — Push, OpenSlot, Bucket, CloseSlot — allocates only when a pooled
//     slice grows past its high-water mark.
//  3. O(occupied slots) control overhead, not O(horizon). Idle slots are
//     skipped with an occupancy bitmap (word-parallel scan), and events
//     beyond the wheel's window park in a small overflow heap until the
//     window reaches them.
//
// The engines ported onto this package (broadcast.RunDESOpts,
// broadcast.TimedDES, broadcast.MACDES, sim.RunDES) each keep their
// scalar counterpart as the golden reference, gated by equivalence and
// fuzz tests.
package des

import "clustercast/internal/obs"

// Package-level counters, folded once per run by Wheel.FoldStats (so the
// event loop itself never touches the atomics).
var (
	mSlots    = obs.NewCounter("des.slots")                // occupied slots drained
	mEvents   = obs.NewCounter("des.events")               // events dequeued
	mSkipped  = obs.NewCounter("des.slots_skipped")        // idle slots jumped over
	mFar      = obs.NewCounter("des.far_events")           // events parked beyond the wheel window
	mPromoted = obs.NewCounter("des.far_promoted")         // far events promoted back into buckets
	mFanouts  = obs.NewCounter("des.shard_fanouts")        // sharded exchange rounds
	mMail     = obs.NewCounter("des.shard_messages")       // messages exchanged (all mailboxes)
	mCross    = obs.NewCounter("des.shard_cross_messages") // messages that crossed a shard boundary
	// mHighWater tracks the peak number of simultaneously pending events
	// any wheel reached — the calendar's working-set health signal.
	mHighWater = obs.NewGauge("des.wheel_high_water")
)
