package des

import (
	"container/heap"
	"testing"

	"clustercast/internal/rng"
)

// refHeap is the reference (time, seq) binary heap the wheel must
// reproduce: the semantics of broadcast.RunTimed's event heap.
type refEvent struct {
	t, seq, val int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	return h[i].t < h[j].t || (h[i].t == h[j].t && h[i].seq < h[j].seq)
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// drainOrder runs the wheel drain protocol and returns (t, val) pairs in
// dequeue order, optionally re-pushing follow-up events produced by
// feed(t, val) mid-drain.
func drainOrder(w *Wheel[int], feed func(t, val int) (nt, nv int, ok bool)) [][2]int {
	var out [][2]int
	for w.Len() > 0 {
		t := w.OpenSlot()
		for i := 0; i < w.SlotLen(); i++ {
			v := w.Event(i)
			out = append(out, [2]int{t, v})
			if feed != nil {
				if nt, nv, ok := feed(t, v); ok {
					w.Push(nt, nv)
				}
			}
		}
		w.CloseSlot()
	}
	return out
}

// TestWheelMatchesReferenceHeap drives random push/drain schedules —
// bursty slots, long idle gaps beyond the window (far heap), same-slot
// and future pushes during drains — through both the wheel and the
// reference heap and requires identical dequeue order.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	var w Wheel[int]
	for trial := 0; trial < 200; trial++ {
		r := rng.New(uint64(trial)*0x9E3779B97F4A7C15 + 1)
		horizon := 1 + r.Intn(40) // deliberately small: exercises far overflow
		w.Reset(horizon)
		ref := refHeap{}
		seq := 0
		push := func(t, v int) {
			w.Push(t, v)
			heap.Push(&ref, refEvent{t, seq, v})
			seq++
		}
		nInit := 1 + r.Intn(30)
		for i := 0; i < nInit; i++ {
			// Mix of near slots and far jumps (idle gaps up to 500 slots).
			tt := r.Intn(20)
			if r.Intn(4) == 0 {
				tt += r.Intn(500)
			}
			push(tt, 1000+i)
		}
		budget := 200 // follow-up pushes, so drains terminate
		var got [][2]int
		for w.Len() > 0 {
			ot := w.OpenSlot()
			for i := 0; i < w.SlotLen(); i++ {
				v := w.Event(i)
				got = append(got, [2]int{ot, v})
				// Reference must agree event by event, not just in bulk,
				// because follow-up pushes depend on dequeue order.
				re := heap.Pop(&ref).(refEvent)
				if re.t != ot || re.val != v {
					t.Fatalf("trial %d: event %d: wheel (t=%d v=%d) ref (t=%d v=%d)",
						trial, len(got)-1, ot, v, re.t, re.val)
				}
				if budget > 0 {
					budget--
					switch r.Intn(4) {
					case 0: // same-slot push, picked up by this drain
						push(ot, v+1)
					case 1: // next slot
						push(ot+1, v+2)
					case 2: // far future
						push(ot+1+r.Intn(300), v+3)
					}
				}
			}
			w.CloseSlot()
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference heap has %d leftover events", trial, ref.Len())
		}
	}
}

// TestWheelIdleSkip verifies the wheel visits only occupied slots: two
// events a million slots apart cost two slot opens, not a million.
func TestWheelIdleSkip(t *testing.T) {
	var w Wheel[int]
	w.Reset(8)
	w.Push(3, 1)
	w.Push(1_000_000, 2)
	got := drainOrder(&w, nil)
	want := [][2]int{{3, 1}, {1_000_000, 2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("drain = %v, want %v", got, want)
	}
	if w.sSlots != 2 {
		t.Fatalf("opened %d slots, want 2", w.sSlots)
	}
	if w.sSkipped < 999_000 {
		t.Fatalf("skipped %d slots, want ~1e6", w.sSkipped)
	}
	w.FoldStats()
}

// TestWheelPushIntoPastPanics pins the no-time-travel contract.
func TestWheelPushIntoPastPanics(t *testing.T) {
	var w Wheel[int]
	w.Reset(4)
	w.Push(5, 1)
	_ = w.OpenSlot()
	defer func() {
		if recover() == nil {
			t.Fatal("push before the open slot did not panic")
		}
	}()
	w.Push(4, 2)
}

// TestWheelResetReuse checks Reset recovers from an abandoned run
// (pending events left in buckets and the far heap) without leaking
// them into the next run.
func TestWheelResetReuse(t *testing.T) {
	var w Wheel[int]
	w.Reset(8)
	w.Push(0, 1)
	w.Push(2, 2)
	w.Push(900, 3)   // far
	_ = w.OpenSlot() // abandon mid-drain
	w.Reset(8)
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	w.Push(1, 9)
	got := drainOrder(&w, nil)
	if len(got) != 1 || got[0] != [2]int{1, 9} {
		t.Fatalf("post-reset drain = %v, want [[1 9]]", got)
	}
}

// TestWheelSteadyStateAllocs pins the zero-allocation contract of the
// event loop: after the first run warms the pools, push/open/drain/close
// cycles allocate nothing (in-window and same-slot pushes; far-heap
// growth beyond the high-water mark is the only allowed allocation and
// is warmed too).
func TestWheelSteadyStateAllocs(t *testing.T) {
	var w Wheel[int]
	run := func() {
		w.Reset(16)
		for i := 0; i < 8; i++ {
			w.Push(i*3, i)
		}
		w.Push(400, 99) // exercises the far heap
		for w.Len() > 0 {
			tt := w.OpenSlot()
			for i := 0; i < w.SlotLen(); i++ {
				if v := w.Event(i); v < 4 && tt < 100 {
					w.Push(tt+2, v+10)
				}
			}
			w.CloseSlot()
		}
		w.FoldStats()
	}
	run() // warm pools
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Fatalf("steady-state event loop allocates %.1f/run, want 0", avg)
	}
}
