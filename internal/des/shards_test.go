package des

import (
	"reflect"
	"testing"

	"clustercast/internal/rng"
)

// fanoutRun pushes a deterministic pseudo-random mail pattern through a
// Fanout round and returns the per-destination delivered streams.
func fanoutRun(sh *Shards, n, workers int, seed uint64) [][]Mail {
	out := make([][]Mail, sh.K())
	sh.Fanout(workers,
		func(src int, emit func(int, Mail)) {
			r := rng.New(seed + uint64(src))
			for v := 0; v < n; v++ {
				if sh.Owner(v) != src {
					continue
				}
				for j := 0; j < 1+r.Intn(4); j++ {
					dst := r.Intn(n)
					emit(sh.Owner(dst), Mail{Node: int32(dst), Val: int32(v)})
				}
			}
		},
		func(dst int, mail []Mail) {
			out[dst] = append([]Mail(nil), mail...)
		})
	return out
}

// TestFanoutWorkerInvariant pins the determinism contract: the delivered
// mail streams are bit-identical for any worker count, for both
// partitioners.
func TestFanoutWorkerInvariant(t *testing.T) {
	const n = 257
	xs := make([]float64, n)
	r := rng.New(42)
	for i := range xs {
		xs[i] = r.Float64()
	}
	for _, part := range []string{"range", "strips"} {
		for _, k := range []int{1, 3, 8} {
			var sh Shards
			if part == "range" {
				sh.ResetRange(n, k)
			} else {
				sh.ResetStrips(xs, k)
			}
			want := fanoutRun(&sh, n, 1, 7)
			for _, workers := range []int{2, 3, 4, 8} {
				got := fanoutRun(&sh, n, workers, 7)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s k=%d: workers=%d delivered different mail than workers=1", part, k, workers)
				}
			}
			sh.FoldStats()
		}
	}
}

// TestShardPartitions sanity-checks both partitioners: every node owned,
// range shards contiguous and ascending, strip shards ascending in x
// rank and balanced within one node.
func TestShardPartitions(t *testing.T) {
	const n, k = 100, 7
	var sh Shards
	sh.ResetRange(n, k)
	prev := 0
	counts := make([]int, k)
	for v := 0; v < n; v++ {
		o := sh.Owner(v)
		if o < prev || o >= k {
			t.Fatalf("range owner(%d) = %d, prev %d", v, o, prev)
		}
		prev = o
		counts[o]++
	}
	for s, c := range counts {
		if c < n/k || c > n/k+1 {
			t.Fatalf("range shard %d holds %d nodes, want %d..%d", s, c, n/k, n/k+1)
		}
	}

	xs := make([]float64, n)
	r := rng.New(3)
	for i := range xs {
		xs[i] = r.Float64()
	}
	sh.ResetStrips(xs, k)
	counts = make([]int, k)
	for v := 0; v < n; v++ {
		counts[sh.Owner(v)]++
	}
	for s, c := range counts {
		if c < n/k || c > n/k+1 {
			t.Fatalf("strip shard %d holds %d nodes, want %d..%d", s, c, n/k, n/k+1)
		}
	}
	// Strips respect x order: max x of shard s ≤ min x of shard s+1
	// (ties broken by ID make strict violation impossible).
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if xs[v] < xs[u] && sh.Owner(v) > sh.Owner(u) {
				t.Fatalf("strip order violated: x[%d]=%g in shard %d, x[%d]=%g in shard %d",
					v, xs[v], sh.Owner(v), u, xs[u], sh.Owner(u))
			}
		}
	}
}

// TestFanoutSequentialAllocs pins that the workers≤1 path allocates
// nothing once mailboxes are warm (the event engines' sequential
// sharded path must stay on the zero-alloc budget).
func TestFanoutSequentialAllocs(t *testing.T) {
	const n, k = 64, 4
	var sh Shards
	sh.ResetRange(n, k)
	produce := func(src int, emit func(int, Mail)) {
		for v := src; v < n; v += k {
			emit(sh.Owner((v*7)%n), Mail{Node: int32((v * 7) % n), Val: int32(v)})
		}
	}
	consume := func(dst int, mail []Mail) {
		for range mail {
		}
	}
	round := func() { sh.Fanout(1, produce, consume) }
	round()
	if avg := testing.AllocsPerRun(50, round); avg != 0 {
		t.Fatalf("sequential Fanout allocates %.1f/round, want 0", avg)
	}
	sh.FoldStats()
}
