package des

import (
	"fmt"
	"math/bits"
)

// Wheel is a bucketed timestamp wheel: the pending-event calendar of the
// event-driven cores. Events are pushed at integer slots (never into the
// past) and drained slot by slot in (slot, push order) — exactly the
// (time, seq) order of a binary heap fed the same pushes, but with O(1)
// enqueue, O(occupied) dequeue, and no per-event allocation.
//
// The wheel covers a sliding window of power-of-two size starting at the
// current slot. Pushes inside the window append to a ring bucket and set
// a bit in the occupancy bitmap; pushes beyond it park in a small (time,
// seq) overflow heap and are promoted into buckets as the window slides
// forward, before any direct push to those slots can happen — which is
// what preserves global push order per bucket (see the package comment).
//
// Drain protocol:
//
//	for w.Len() > 0 {
//		t := w.OpenSlot()
//		for i := 0; i < w.SlotLen(); i++ {  // re-reads len: same-slot
//			e := w.Event(i)                 // pushes during the drain
//			... handle, w.Push(t+d, ...)    // are picked up in order
//		}
//		w.CloseSlot()
//	}
//
// The zero value is ready for Reset. Wheel is not safe for concurrent
// use; the sharded engines keep one wheel and parallelize only the
// fan-out inside a slot (see Shards).
type Wheel[E any] struct {
	buckets [][]E    // ring of per-slot event buckets
	occ     []uint64 // occupancy bitmap over ring positions
	mask    int      // len(buckets) - 1 (power of two)
	cur     int      // window start: earliest slot still admissible
	open    int      // slot currently being drained, -1 if none
	pending int      // events in buckets + far
	far     []farEvent[E]
	farSeq  int

	// Per-run stats, folded into the des.* counters by FoldStats so the
	// event loop never touches atomics.
	sSlots, sEvents, sSkipped, sFar, sProm, sHigh int64
}

// farEvent is an event parked beyond the wheel window, ordered by (t,
// seq) so promotion replays global push order.
type farEvent[E any] struct {
	t, seq int
	e      E
}

// Reset empties the wheel and sizes its window to cover at least horizon
// slots beyond the current one (the maximum scheduling delay of the run:
// Jitter+1 for the MAC engine, 1 for the ideal engine). Delays beyond
// the horizon still work — they overflow to the far heap — the horizon
// only tunes how rarely that happens. Storage is kept across Resets;
// after the first run of a given size the wheel allocates nothing.
func (w *Wheel[E]) Reset(horizon int) {
	size := 16
	for size < horizon {
		size <<= 1
	}
	if size > len(w.buckets) {
		w.buckets = make([][]E, size)
		w.occ = make([]uint64, (size+63)/64)
		w.mask = size - 1
	} else if w.pending > 0 || w.open >= 0 {
		// Abandoned run: clear leftover buckets via the occupancy map.
		for wi, x := range w.occ {
			for x != 0 {
				b := bits.TrailingZeros64(x)
				x &^= 1 << uint(b)
				p := wi<<6 + b
				clear(w.buckets[p])
				w.buckets[p] = w.buckets[p][:0]
			}
			w.occ[wi] = 0
		}
	}
	for i := range w.far {
		w.far[i] = farEvent[E]{}
	}
	w.far = w.far[:0]
	w.cur, w.open, w.pending, w.farSeq = 0, -1, 0, 0
}

// Len returns the number of pending events (buckets + far heap).
func (w *Wheel[E]) Len() int { return w.pending }

// Push schedules e at slot t. Pushing before the open slot (or, with no
// slot open, before the window start) panics: the calendar never travels
// back in time. Pushing at the open slot is allowed and the event is
// picked up by the current drain, matching the reference engines'
// same-time decision→transmission chains.
func (w *Wheel[E]) Push(t int, e E) {
	floor := w.cur
	if w.open >= 0 {
		floor = w.open
	}
	if t < floor {
		panic(fmt.Sprintf("des: push into the past (t=%d, floor=%d)", t, floor))
	}
	if t < w.cur+len(w.buckets) {
		p := t & w.mask
		w.buckets[p] = append(w.buckets[p], e)
		w.occ[p>>6] |= 1 << uint(p&63)
	} else {
		w.farPush(t, e)
		w.sFar++
	}
	w.pending++
	if int64(w.pending) > w.sHigh {
		w.sHigh = int64(w.pending)
	}
}

// OpenSlot advances to the earliest pending slot, promotes due far
// events, and opens that slot for draining. It must not be called on an
// empty wheel.
func (w *Wheel[E]) OpenSlot() int {
	if w.pending == 0 {
		panic("des: OpenSlot on empty wheel")
	}
	if w.open >= 0 {
		panic("des: OpenSlot with a slot already open")
	}
	entry := w.cur
	w.promote()
	t, ok := w.scan()
	if !ok {
		// Everything pending is beyond the window: jump straight to the
		// earliest far event.
		w.cur = w.far[0].t
		w.promote()
		t, _ = w.scan()
	} else if t > w.cur {
		// Slide the window to the slot we are about to drain so pushes
		// during the drain get the widest direct range, then promote any
		// far events the slide brought into range (they were pushed
		// before any direct push to those slots could happen, so
		// promoting first preserves push order).
		w.cur = t
		w.promote()
	}
	w.sSkipped += int64(t - entry)
	w.open = t
	return t
}

// SlotLen returns the current length of the open slot's bucket. It is
// re-evaluated on every call so same-slot pushes during a drain extend
// the iteration.
func (w *Wheel[E]) SlotLen() int { return len(w.buckets[w.open&w.mask]) }

// Event returns the i-th event of the open slot.
func (w *Wheel[E]) Event(i int) E { return w.buckets[w.open&w.mask][i] }

// Bucket returns the open slot's bucket. The slice is invalidated by
// same-slot pushes (use SlotLen/Event when the drain can push into its
// own slot); engines that never do — the MAC engine schedules at t+1 at
// the earliest — may filter it in place.
func (w *Wheel[E]) Bucket() []E { return w.buckets[w.open&w.mask] }

// CloseSlot finishes the open slot: all its events count as drained, the
// bucket is cleared (zeroing payloads so pooled packets are not pinned),
// and the window advances past the slot.
func (w *Wheel[E]) CloseSlot() {
	p := w.open & w.mask
	n := len(w.buckets[p])
	w.pending -= n
	w.sEvents += int64(n)
	w.sSlots++
	clear(w.buckets[p])
	w.buckets[p] = w.buckets[p][:0]
	w.occ[p>>6] &^= 1 << uint(p&63)
	w.cur = w.open + 1
	w.open = -1
}

// FoldStats folds the run's wheel statistics into the des.* counters and
// zeroes them. Engines call it once per run, outside the event loop. The
// occupancy high-water folds as a process-wide maximum, not a sum.
func (w *Wheel[E]) FoldStats() {
	mSlots.Add(w.sSlots)
	mEvents.Add(w.sEvents)
	mSkipped.Add(w.sSkipped)
	mFar.Add(w.sFar)
	mPromoted.Add(w.sProm)
	mHighWater.SetMax(w.sHigh)
	w.sSlots, w.sEvents, w.sSkipped, w.sFar, w.sProm, w.sHigh = 0, 0, 0, 0, 0, 0
}

// promote moves far events whose slot entered the window into their
// buckets, in (t, seq) order.
func (w *Wheel[E]) promote() {
	lim := w.cur + len(w.buckets)
	for len(w.far) > 0 && w.far[0].t < lim {
		fe := w.farPop()
		p := fe.t & w.mask
		w.buckets[p] = append(w.buckets[p], fe.e)
		w.occ[p>>6] |= 1 << uint(p&63)
		w.sProm++
	}
}

// scan finds the earliest occupied slot in the window [cur, cur+size),
// scanning the occupancy bitmap a word at a time from cur's ring
// position with wraparound.
func (w *Wheel[E]) scan() (int, bool) {
	p0 := w.cur & w.mask
	w0 := p0 >> 6
	b0 := uint(p0 & 63)
	nw := len(w.occ)
	for k := 0; k <= nw; k++ {
		wi := w0 + k
		if wi >= nw {
			wi -= nw
		}
		x := w.occ[wi]
		if k == 0 {
			x &^= (1 << b0) - 1 // positions before p0 belong to the wrapped tail
		}
		if k == nw {
			x &= (1 << b0) - 1 // wrapped tail of the start word
		}
		if x != 0 {
			p := wi<<6 + bits.TrailingZeros64(x)
			if p >= p0 {
				return w.cur + (p - p0), true
			}
			return w.cur + (len(w.buckets) - p0) + p, true
		}
	}
	return 0, false
}

// farPush inserts into the overflow min-heap ordered by (t, seq).
func (w *Wheel[E]) farPush(t int, e E) {
	w.far = append(w.far, farEvent[E]{t, w.farSeq, e})
	w.farSeq++
	i := len(w.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !farLess(w.far[i], w.far[p]) {
			break
		}
		w.far[i], w.far[p] = w.far[p], w.far[i]
		i = p
	}
}

// farPop removes and returns the heap minimum.
func (w *Wheel[E]) farPop() farEvent[E] {
	top := w.far[0]
	n := len(w.far) - 1
	w.far[0] = w.far[n]
	w.far[n] = farEvent[E]{} // drop the payload reference
	w.far = w.far[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && farLess(w.far[c+1], w.far[c]) {
			c++
		}
		if !farLess(w.far[c], w.far[i]) {
			break
		}
		w.far[i], w.far[c] = w.far[c], w.far[i]
		i = c
	}
	return top
}

func farLess[E any](a, b farEvent[E]) bool {
	return a.t < b.t || (a.t == b.t && a.seq < b.seq)
}
