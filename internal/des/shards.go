package des

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Mail is one cross-shard message: a value addressed to a node owned by
// another shard. It is deliberately flat (no pointers) so mailboxes can
// be reused without clearing.
type Mail struct {
	Node int32 // destination node
	Val  int32 // engine-defined payload (e.g. an index into the slot's batch)
}

// Shards partitions the node ID space for the parallel fan-out phases of
// the event engines. Each (src, dst) shard pair gets a single-writer
// mailbox: during the produce phase, shard src alone appends to
// boxes[src][dst]; after a barrier, each destination shard consumes the
// concatenation of its mailboxes in ascending src order. Because every
// mailbox has exactly one writer and the concatenation order is fixed,
// the delivered mail streams are bit-identical for any worker count —
// the same discipline as the PR3 sharded clusterhead selection.
//
// Two partitioners are provided: ResetRange (contiguous ID ranges, the
// default — node IDs of the generated topologies are spatially
// uncorrelated, so ranges balance well) and ResetStrips (x-quantile
// spatial strips over node positions, keyed by the same geometry as the
// topology grid, for workloads where spatial locality of the event
// stream matters more than ID locality).
//
// The zero value is ready for ResetRange/ResetStrips. Mailboxes and
// scratch are pooled across calls; the only steady-state allocations are
// the goroutines of a parallel Fanout (workers > 1).
type Shards struct {
	k     int
	owner []int32
	boxes [][][]Mail // [src][dst] single-writer mailboxes
	emits []func(dst int, m Mail)
	cat   [][]Mail // per-dst concatenation buffer
	idx   []int    // strip partitioner scratch: node ids sorted by x
	next  atomic.Int64

	// localN[d] is the self-mail count (boxes[d][d]) of the latest deliver
	// round. deliver(d) is the slot's single writer, so the parallel
	// consume phase can fill it race-free; the cross-shard tally happens
	// after the barrier, on the caller's goroutine, like sMail.
	localN                  []int
	sFanouts, sMail, sCross int64
}

// K returns the shard count.
func (sh *Shards) K() int { return sh.k }

// Owner returns the shard owning node v.
func (sh *Shards) Owner(v int) int { return int(sh.owner[v]) }

// ResetRange partitions nodes 0..n−1 into k contiguous, balanced ID
// ranges (shard of v = v·k/n, so shard boundaries are ascending).
func (sh *Shards) ResetRange(n, k int) {
	sh.setup(n, k)
	k = sh.k
	for v := 0; v < n; v++ {
		sh.owner[v] = int32(v * k / n)
	}
}

// ResetStrips partitions nodes into k equal-population vertical strips
// by their x coordinate (ties broken by ID), mirroring the spatial-grid
// column layout of internal/topology. xs[v] is node v's x position.
func (sh *Shards) ResetStrips(xs []float64, k int) {
	n := len(xs)
	sh.setup(n, k)
	k = sh.k
	if cap(sh.idx) < n {
		sh.idx = make([]int, n)
	}
	sh.idx = sh.idx[:n]
	for v := range sh.idx {
		sh.idx[v] = v
	}
	sort.Slice(sh.idx, func(a, b int) bool {
		va, vb := sh.idx[a], sh.idx[b]
		if xs[va] != xs[vb] {
			return xs[va] < xs[vb]
		}
		return va < vb
	})
	for r, v := range sh.idx {
		sh.owner[v] = int32(r * k / n)
	}
}

// setup sizes the shard structures for n nodes and k shards, clamping k
// to [1, n] and reusing prior storage.
func (sh *Shards) setup(n, k int) {
	if k < 1 {
		k = 1
	}
	if n > 0 && k > n {
		k = n
	}
	if cap(sh.owner) < n {
		sh.owner = make([]int32, n)
	}
	sh.owner = sh.owner[:n]
	if k != sh.k || sh.boxes == nil {
		sh.boxes = make([][][]Mail, k)
		for s := range sh.boxes {
			sh.boxes[s] = make([][]Mail, k)
		}
		sh.cat = make([][]Mail, k)
		sh.localN = make([]int, k)
		sh.emits = make([]func(int, Mail), k)
		for s := range sh.emits {
			box := sh.boxes[s]
			sh.emits[s] = func(dst int, m Mail) {
				box[dst] = append(box[dst], m)
			}
		}
		sh.k = k
	}
}

// Fanout runs one produce/exchange/consume round. produce(src, emit) is
// called once per source shard and emits mail toward destination shards;
// consume(dst, mail) is called once per destination shard with the
// concatenation of its mailboxes in ascending src order. With workers ≤
// 1 both phases run on the caller's goroutine (and allocate nothing);
// otherwise each phase fans out over worker goroutines with a barrier
// between them. produce must only read shared state and emit; consume
// must only write state owned by its destination shard. The delivered
// mail slices are valid until the next Fanout.
func (sh *Shards) Fanout(workers int, produce func(src int, emit func(dst int, m Mail)), consume func(dst int, mail []Mail)) {
	k := sh.k
	if workers > k {
		workers = k
	}
	sh.sFanouts++
	if workers <= 1 || k <= 1 {
		// Sequential path, written without closure creation so a warm
		// Fanout round allocates nothing.
		for s := 0; s < k; s++ {
			produce(s, sh.emits[s])
		}
		for d := 0; d < k; d++ {
			consume(d, sh.deliver(d))
		}
	} else {
		sh.each(workers, func(s int) { produce(s, sh.emits[s]) })
		sh.each(workers, func(d int) { consume(d, sh.deliver(d)) })
	}
	for d := 0; d < k; d++ {
		sh.sMail += int64(len(sh.cat[d]))
		sh.sCross += int64(len(sh.cat[d]) - sh.localN[d])
	}
}

// Each runs f(0..K−1) with the worker-pool/barrier semantics of a single
// Fanout phase — sequentially on the caller's goroutine when workers ≤ 1
// — for callers that need a plain sharded pass without a mail exchange
// (e.g. per-strip initialization between two Fanout rounds).
func (sh *Shards) Each(workers int, f func(s int)) {
	k := sh.k
	if workers > k {
		workers = k
	}
	if workers <= 1 || k <= 1 {
		for s := 0; s < k; s++ {
			f(s)
		}
		return
	}
	sh.each(workers, f)
}

// Range returns the contiguous node interval [lo, hi) owned by shard s
// under the ResetRange partition (shard of v = v·k/n). It is meaningless
// after ResetStrips, whose shards are not ID-contiguous.
func (sh *Shards) Range(s int) (lo, hi int) {
	n := len(sh.owner)
	k := sh.k
	return (s*n + k - 1) / k, ((s+1)*n + k - 1) / k
}

// deliver concatenates destination shard d's mailboxes in ascending src
// order into the pooled buffer, emptying them for the next round.
func (sh *Shards) deliver(d int) []Mail {
	buf := sh.cat[d][:0]
	sh.localN[d] = len(sh.boxes[d][d])
	for s := 0; s < sh.k; s++ {
		buf = append(buf, sh.boxes[s][d]...)
		sh.boxes[s][d] = sh.boxes[s][d][:0]
	}
	sh.cat[d] = buf
	return buf
}

// each runs f(0..k−1) on workers goroutines claiming shards from a
// shared counter (a barrier: returns when all shards are done).
func (sh *Shards) each(workers int, f func(s int)) {
	k := sh.k
	sh.next.Store(0)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(sh.next.Add(1)) - 1
				if s >= k {
					return
				}
				f(s)
			}
		}()
	}
	wg.Wait()
}

// FoldStats folds the accumulated fan-out statistics into the des.*
// counters and zeroes them.
func (sh *Shards) FoldStats() {
	mFanouts.Add(sh.sFanouts)
	mMail.Add(sh.sMail)
	mCross.Add(sh.sCross)
	sh.sFanouts, sh.sMail, sh.sCross = 0, 0, 0
}
