// Package geom provides the planar geometry primitives underlying the
// unit-disk-graph model of a MANET: points, rectangles (the confined working
// space of the paper, 100×100 by default) and a spatial hash grid that makes
// neighbor discovery O(1) per node instead of O(n).
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the plane.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. Comparing
// squared distances avoids the square root in the inner loop of neighbor
// discovery.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle [MinX, MaxX] × [MinY, MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns a side×side rectangle anchored at the origin — the paper's
// confined working space is Square(100).
func Square(side float64) Rect {
	return Rect{0, 0, side, side}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.MinX, math.Min(r.MaxX, p.X)),
		Y: math.Max(r.MinY, math.Min(r.MaxY, p.Y)),
	}
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Grid is a uniform spatial hash over a rectangle. With cell size equal to
// the radio range, all neighbors of a point lie in its own cell or one of the
// 8 adjacent cells, making range queries O(neighbors).
type Grid struct {
	bounds Rect
	cell   float64
	cols   int
	rows   int
	cells  [][]int // flattened cell index -> ids stored there
	points []Point // id -> position (ids are dense, assigned by Insert order)
}

// NewGrid builds an empty grid over bounds with the given cell size. The
// cell size should normally be the radio transmission range.
func NewGrid(bounds Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("geom: non-positive grid cell size")
	}
	cols := int(math.Ceil(bounds.Width()/cellSize)) + 1
	rows := int(math.Ceil(bounds.Height()/cellSize)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	// Cell buckets live in a dense slice: with cell = radio range the cell
	// count is O(area/r²) = O(n·π/d), so the direct index is both smaller
	// and far cheaper than a hash map in the insert/query hot loops.
	return &Grid{
		bounds: bounds,
		cell:   cellSize,
		cols:   cols,
		rows:   rows,
		cells:  make([][]int, cols*rows),
	}
}

// Reset re-shapes g over new bounds and cell size and removes all points,
// reusing the cell buckets and point storage. A grid owned by a per-worker
// workspace is Reset once per replicate instead of rebuilt with NewGrid, so
// steady-state topology sampling allocates nothing.
func (g *Grid) Reset(bounds Rect, cellSize float64) {
	if cellSize <= 0 {
		panic("geom: non-positive grid cell size")
	}
	cols := int(math.Ceil(bounds.Width()/cellSize)) + 1
	rows := int(math.Ceil(bounds.Height()/cellSize)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	g.bounds = bounds
	g.cell = cellSize
	g.cols = cols
	g.rows = rows
	if cap(g.cells) < cols*rows {
		g.cells = make([][]int, cols*rows)
	} else {
		g.cells = g.cells[:cols*rows]
		for i := range g.cells {
			g.cells[i] = g.cells[i][:0]
		}
	}
	g.points = g.points[:0]
}

// cellIndex maps a point to its flattened cell index, clamping points on or
// outside the boundary into the edge cells.
func (g *Grid) cellIndex(p Point) int {
	cx := int((p.X - g.bounds.MinX) / g.cell)
	cy := int((p.Y - g.bounds.MinY) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Insert adds p and returns its id (dense, starting at 0).
func (g *Grid) Insert(p Point) int {
	id := len(g.points)
	g.points = append(g.points, p)
	ci := g.cellIndex(p)
	g.cells[ci] = append(g.cells[ci], id)
	return id
}

// Len returns the number of stored points.
func (g *Grid) Len() int { return len(g.points) }

// Point returns the position of id.
func (g *Grid) Point(id int) Point { return g.points[id] }

// Within appends to dst the ids of all stored points q ≠ id with
// dist(point(id), q) <= radius, and returns the extended slice. radius must
// not exceed the grid cell size (callers construct the grid with cell =
// radio range, so this always holds in practice).
func (g *Grid) Within(id int, radius float64, dst []int) []int {
	if radius > g.cell+1e-9 {
		panic("geom: query radius exceeds grid cell size")
	}
	p := g.points[id]
	r2 := radius * radius
	// Clamp exactly like cellIndex so queries from points on or outside the
	// boundary scan the same edge cells those points were stored in.
	cx := int((p.X - g.bounds.MinX) / g.cell)
	cy := int((p.Y - g.bounds.MinY) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
				continue
			}
			for _, other := range g.cells[y*g.cols+x] {
				if other == id {
					continue
				}
				if p.Dist2(g.points[other]) <= r2 {
					dst = append(dst, other)
				}
			}
		}
	}
	return dst
}

// Rows returns the number of grid cell rows.
func (g *Grid) Rows() int { return g.rows }

// Pairs calls fn(u, v) exactly once for every unordered pair of distinct
// stored points within radius of each other. It sweeps cell pairs over the
// half neighborhood (E, SW, S, SE), so each candidate pair is distance-
// tested once — half the work of querying Within for every point. Like
// Within, radius must not exceed the grid cell size.
func (g *Grid) Pairs(radius float64, fn func(u, v int)) {
	g.PairsRows(radius, 0, g.rows, fn)
}

// PairsRows is Pairs restricted to pairs whose sweep origin lies in cell
// rows [fromRow, toRow): the same half-neighborhood sweep, anchored at
// those rows' cells. Every unordered pair is reported by exactly one row —
// the one holding its first cell in sweep order — so a union of PairsRows
// calls over a partition of the rows reports exactly the pairs Pairs does.
// Disjoint row bands only read shared state, which is how the parallel
// unit-disk construction shards the sweep without locking.
func (g *Grid) PairsRows(radius float64, fromRow, toRow int, fn func(u, v int)) {
	if radius > g.cell+1e-9 {
		panic("geom: query radius exceeds grid cell size")
	}
	if fromRow < 0 {
		fromRow = 0
	}
	if toRow > g.rows {
		toRow = g.rows
	}
	r2 := radius * radius
	half := [4][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	for cy := fromRow; cy < toRow; cy++ {
		for cx := 0; cx < g.cols; cx++ {
			a := g.cells[cy*g.cols+cx]
			if len(a) == 0 {
				continue
			}
			for i := 0; i < len(a); i++ {
				pi := g.points[a[i]]
				for j := i + 1; j < len(a); j++ {
					if pi.Dist2(g.points[a[j]]) <= r2 {
						fn(a[i], a[j])
					}
				}
			}
			for _, d := range half {
				x, y := cx+d[0], cy+d[1]
				if x < 0 || x >= g.cols || y >= g.rows {
					continue
				}
				b := g.cells[y*g.cols+x]
				for _, u := range a {
					pu := g.points[u]
					for _, v := range b {
						if pu.Dist2(g.points[v]) <= r2 {
							fn(u, v)
						}
					}
				}
			}
		}
	}
}

// Move updates the position of id, rebucketing it if it crossed a cell
// boundary. Used by mobility models.
func (g *Grid) Move(id int, to Point) {
	from := g.points[id]
	oldCell := g.cellIndex(from)
	newCell := g.cellIndex(to)
	g.points[id] = to
	if oldCell == newCell {
		return
	}
	bucket := g.cells[oldCell]
	for i, v := range bucket {
		if v == id {
			bucket[i] = bucket[len(bucket)-1]
			g.cells[oldCell] = bucket[:len(bucket)-1]
			break
		}
	}
	g.cells[newCell] = append(g.cells[newCell], id)
}

// ExpectedDegree returns the average node degree predicted by the Poisson
// point process approximation for n nodes uniformly placed in area A with
// radio range r: each node sees on average (n−1)·πr²/A others (border
// effects ignored).
func ExpectedDegree(n int, area, radius float64) float64 {
	if n <= 1 || area <= 0 {
		return 0
	}
	return float64(n-1) * math.Pi * radius * radius / area
}

// RangeForDegree inverts ExpectedDegree: the radio range needed so that n
// uniformly placed nodes in the given area have average degree d. This is how
// the paper's "fixed average node degree d = 6 and 18" scenarios derive the
// transmission range for each network size.
func RangeForDegree(n int, area, d float64) float64 {
	if n <= 1 || d <= 0 {
		return 0
	}
	return math.Sqrt(d * area / (float64(n-1) * math.Pi))
}
