package geom

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"clustercast/internal/rng"
)

func TestPointDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.Dist(b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %g, want 5", d)
	}
	if d2 := a.Dist2(b); math.Abs(d2-25) > 1e-12 {
		t.Fatalf("Dist2 = %g, want 25", d2)
	}
}

func TestPointArithmetic(t *testing.T) {
	a := Point{1, 2}
	b := Point{-3, 5}
	if got := a.Add(b); got != (Point{-2, 7}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Point{4, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp t=0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp t=1 = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if math.Abs(mid.X+1) > 1e-12 || math.Abs(mid.Y-3.5) > 1e-12 {
		t.Fatalf("Lerp t=0.5 = %v", mid)
	}
}

func TestRectBasics(t *testing.T) {
	r := Square(100)
	if r.Width() != 100 || r.Height() != 100 || r.Area() != 10000 {
		t.Fatalf("Square(100) wrong dims: %+v", r)
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{100, 100}) || !r.Contains(Point{50, 50}) {
		t.Fatal("boundary/interior points should be contained")
	}
	if r.Contains(Point{-0.001, 50}) || r.Contains(Point{50, 100.001}) {
		t.Fatal("exterior points must not be contained")
	}
	if c := r.Center(); c != (Point{50, 50}) {
		t.Fatalf("Center = %v", c)
	}
}

func TestRectClamp(t *testing.T) {
	r := Square(10)
	cases := []struct{ in, want Point }{
		{Point{-5, 5}, Point{0, 5}},
		{Point{5, 15}, Point{5, 10}},
		{Point{12, -3}, Point{10, 0}},
		{Point{3, 7}, Point{3, 7}},
	}
	for _, c := range cases {
		if got := r.Clamp(c.in); got != c.want {
			t.Fatalf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// bruteWithin is the O(n²) oracle for grid range queries.
func bruteWithin(pts []Point, id int, radius float64) []int {
	var out []int
	for j, q := range pts {
		if j != id && pts[id].Dist(q) <= radius {
			out = append(out, j)
		}
	}
	return out
}

func TestGridMatchesBruteForce(t *testing.T) {
	r := rng.New(7)
	bounds := Square(100)
	const radius = 18.0
	g := NewGrid(bounds, radius)
	var pts []Point
	for i := 0; i < 300; i++ {
		p := Point{r.Range(0, 100), r.Range(0, 100)}
		pts = append(pts, p)
		g.Insert(p)
	}
	for id := 0; id < len(pts); id++ {
		got := g.Within(id, radius, nil)
		want := bruteWithin(pts, id, radius)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("node %d: grid found %d neighbors, brute force %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d: neighbor mismatch %v vs %v", id, got, want)
			}
		}
	}
}

func TestGridQueryRadiusGuard(t *testing.T) {
	g := NewGrid(Square(100), 10)
	g.Insert(Point{5, 5})
	defer func() {
		if recover() == nil {
			t.Fatal("Within with radius > cell must panic")
		}
	}()
	g.Within(0, 20, nil)
}

func TestGridZeroCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid with cell 0 must panic")
		}
	}()
	NewGrid(Square(1), 0)
}

func TestGridMove(t *testing.T) {
	g := NewGrid(Square(100), 10)
	a := g.Insert(Point{5, 5})
	b := g.Insert(Point{8, 5})
	if n := g.Within(a, 10, nil); len(n) != 1 || n[0] != b {
		t.Fatalf("before move: neighbors of a = %v", n)
	}
	g.Move(b, Point{95, 95})
	if n := g.Within(a, 10, nil); len(n) != 0 {
		t.Fatalf("after move away: neighbors of a = %v", n)
	}
	g.Move(b, Point{6, 6})
	if n := g.Within(a, 10, nil); len(n) != 1 || n[0] != b {
		t.Fatalf("after move back: neighbors of a = %v", n)
	}
	if got := g.Point(b); got != (Point{6, 6}) {
		t.Fatalf("Point(b) = %v after move", got)
	}
}

func TestGridMoveMatchesBruteForce(t *testing.T) {
	r := rng.New(13)
	const radius = 15.0
	g := NewGrid(Square(100), radius)
	var pts []Point
	for i := 0; i < 120; i++ {
		p := Point{r.Range(0, 100), r.Range(0, 100)}
		pts = append(pts, p)
		g.Insert(p)
	}
	// Random walks, re-verifying against the oracle each step.
	for step := 0; step < 20; step++ {
		id := r.Intn(len(pts))
		to := Point{r.Range(0, 100), r.Range(0, 100)}
		pts[id] = to
		g.Move(id, to)
		got := g.Within(id, radius, nil)
		want := bruteWithin(pts, id, radius)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("step %d: grid %d vs brute %d neighbors", step, len(got), len(want))
		}
	}
}

func TestExpectedDegreeRoundTrip(t *testing.T) {
	// RangeForDegree must invert ExpectedDegree.
	for _, n := range []int{20, 50, 100} {
		for _, d := range []float64{6, 18} {
			r := RangeForDegree(n, 10000, d)
			got := ExpectedDegree(n, 10000, r)
			if math.Abs(got-d) > 1e-9 {
				t.Fatalf("round trip n=%d d=%g: got %g", n, d, got)
			}
		}
	}
}

func TestExpectedDegreeEdgeCases(t *testing.T) {
	if ExpectedDegree(1, 100, 10) != 0 {
		t.Fatal("single node has degree 0")
	}
	if RangeForDegree(1, 100, 6) != 0 {
		t.Fatal("range undefined for single node should be 0")
	}
	if RangeForDegree(10, 100, 0) != 0 {
		t.Fatal("range for degree 0 should be 0")
	}
}

func TestQuickClampInside(t *testing.T) {
	r := Square(100)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		return r.Contains(r.Clamp(Point{x, y}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGridWithin(b *testing.B) {
	r := rng.New(1)
	const radius = 15.0
	g := NewGrid(Square(100), radius)
	for i := 0; i < 1000; i++ {
		g.Insert(Point{r.Range(0, 100), r.Range(0, 100)})
	}
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(i%1000, radius, buf[:0])
	}
}

func TestPointStringAndNorm(t *testing.T) {
	p := Point{X: 3, Y: 4}
	if got := p.String(); got != "(3.000, 4.000)" {
		t.Fatalf("String = %q", got)
	}
	if got := p.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %g", got)
	}
}

func TestGridClampsOutOfBoundsPoints(t *testing.T) {
	// Points on or slightly outside the boundary must land in edge cells
	// and still be discoverable by range queries.
	g := NewGrid(Square(10), 5)
	a := g.Insert(Point{X: 10, Y: 10})   // on the far corner
	b := g.Insert(Point{X: 9.5, Y: 9.5}) // inside, close to a
	found := g.Within(b, 5, nil)
	if len(found) != 1 || found[0] != a {
		t.Fatalf("corner point not found: %v", found)
	}
	// Negative coordinates (outside bounds) clamp to cell 0 without panic.
	c := g.Insert(Point{X: -1, Y: -1})
	d := g.Insert(Point{X: 0.5, Y: 0.5})
	found = g.Within(d, 5, nil)
	ok := false
	for _, id := range found {
		if id == c {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("clamped outside point not found from origin cell: %v", found)
	}
}
