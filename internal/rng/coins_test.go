package rng

import (
	"math"
	"math/bits"
	"testing"
)

// TestBernoulliWordDeterministic: same identity, same word; different
// identities, different words.
func TestBernoulliWordDeterministic(t *testing.T) {
	w1 := BernoulliWord(0.3, 7, 1, 2, 3)
	w2 := BernoulliWord(0.3, 7, 1, 2, 3)
	if w1 != w2 {
		t.Fatalf("same identity produced different words: %#x vs %#x", w1, w2)
	}
	for _, other := range []uint64{
		BernoulliWord(0.3, 8, 1, 2, 3),
		BernoulliWord(0.3, 7, 2, 2, 3),
		BernoulliWord(0.3, 7, 1, 3, 3),
		BernoulliWord(0.3, 7, 1, 2, 4),
	} {
		if other == w1 {
			t.Fatalf("distinct identities collided on %#x", w1)
		}
	}
}

// TestBernoulliWordEdges: p <= 0 yields no lanes, p >= 1 all lanes.
func TestBernoulliWordEdges(t *testing.T) {
	if w := BernoulliWord(0, 1, 2, 3, 4); w != 0 {
		t.Fatalf("p=0 word = %#x, want 0", w)
	}
	if w := BernoulliWord(-0.5, 1, 2, 3, 4); w != 0 {
		t.Fatalf("p<0 word = %#x, want 0", w)
	}
	if w := BernoulliWord(1, 1, 2, 3, 4); w != ^uint64(0) {
		t.Fatalf("p=1 word = %#x, want all ones", w)
	}
}

// TestBernoulliWordBias: across many identities, each lane's hit rate and
// the aggregate hit rate converge to p.
func TestBernoulliWordBias(t *testing.T) {
	for _, p := range []float64{0.05, 0.25, 0.5, 0.9} {
		const trials = 20000
		var laneHits [64]int
		total := 0
		for i := 0; i < trials; i++ {
			w := BernoulliWord(p, 42, uint64(i), 0, 0)
			total += bits.OnesCount64(w)
			for r := 0; r < 64; r++ {
				if Lane(w, r) {
					laneHits[r]++
				}
			}
		}
		got := float64(total) / (64 * trials)
		if math.Abs(got-p) > 0.01 {
			t.Errorf("p=%g: aggregate rate %g", p, got)
		}
		// Per-lane tolerance is wider: 20000 trials per lane.
		for r := 0; r < 64; r++ {
			lr := float64(laneHits[r]) / trials
			if math.Abs(lr-p) > 0.03 {
				t.Errorf("p=%g lane %d: rate %g", p, r, lr)
			}
		}
	}
}

// TestBernoulliWordLaneIndependence: adjacent lanes of the same word are
// uncorrelated (joint hit rate of lanes r and r+1 factorizes).
func TestBernoulliWordLaneIndependence(t *testing.T) {
	const trials = 40000
	p := 0.5
	both, first := 0, 0
	for i := 0; i < trials; i++ {
		w := BernoulliWord(p, 99, uint64(i), 1, 2)
		if Lane(w, 10) {
			first++
			if Lane(w, 11) {
				both++
			}
		}
	}
	// P(lane11 | lane10) should be ~p.
	cond := float64(both) / float64(first)
	if math.Abs(cond-p) > 0.02 {
		t.Errorf("P(lane11|lane10) = %g, want ~%g", cond, p)
	}
}

// TestCoinWordFair: CoinWord bits are fair coins.
func TestCoinWordFair(t *testing.T) {
	const trials = 20000
	total := 0
	for i := 0; i < trials; i++ {
		total += bits.OnesCount64(CoinWord(5, uint64(i), 7, 9))
	}
	got := float64(total) / (64 * trials)
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("fair-coin rate %g", got)
	}
}

// TestBernoulliWordMatchesScalarExtraction is the discipline's contract:
// extracting lane r from the word is the scalar path's coin, and it must
// agree with the word for every lane (trivially true by construction, but
// this is the property the batch/scalar equivalence rests on, so pin it).
func TestBernoulliWordMatchesScalarExtraction(t *testing.T) {
	for i := 0; i < 100; i++ {
		w := BernoulliWord(0.37, 11, uint64(i), 3, 5)
		for r := 0; r < 64; r++ {
			if Lane(w, r) != (w>>uint(r)&1 != 0) {
				t.Fatalf("lane %d extraction mismatch", r)
			}
		}
	}
}

func BenchmarkBernoulliWord(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= BernoulliWord(0.2, 7, uint64(i), 3, 1)
	}
	benchSink = sink
}

var benchSink uint64
