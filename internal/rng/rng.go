// Package rng provides deterministic, splittable pseudo-random number
// streams for simulation experiments.
//
// Every experiment in this repository derives all of its randomness from a
// single root seed so that runs are exactly reproducible. Independent
// replicates and independent subsystems (topology placement, source
// selection, mobility, ...) each receive their own stream, split off the
// parent stream, so that adding randomness consumption to one subsystem does
// not perturb the values another subsystem observes.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014) driven by a 64-bit LCG,
// with stream selection through the standard odd-increment mechanism.
// SplitMix64 is used to derive well-distributed state and increment values
// from user-provided seeds and labels.
package rng

import "math"

// Stream is a deterministic pseudo-random number generator. Streams are not
// safe for concurrent use; split one stream per goroutine instead.
type Stream struct {
	state uint64
	inc   uint64 // always odd
}

const (
	pcgMultiplier = 6364136223846793005
	splitmixGamma = 0x9E3779B97F4A7C15
)

// splitmix64 advances *s and returns the next SplitMix64 output. It is used
// only for seeding, never for user-visible variates.
func splitmix64(s *uint64) uint64 {
	*s += splitmixGamma
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed. Two streams built from the same
// seed produce identical sequences.
func New(seed uint64) *Stream {
	s := seed
	state := splitmix64(&s)
	inc := splitmix64(&s) | 1
	return &Stream{state: state, inc: inc}
}

// NewLabeled returns a stream derived from seed and a textual label. It is
// the root constructor used by experiments: the label keeps streams for
// different purposes ("topology", "source", ...) independent even when they
// share the numeric seed.
func NewLabeled(seed uint64, label string) *Stream {
	s := seed
	for i := 0; i < len(label); i++ {
		s = s ^ uint64(label[i])
		_ = splitmix64(&s)
	}
	state := splitmix64(&s)
	inc := splitmix64(&s) | 1
	return &Stream{state: state, inc: inc}
}

// SeedLabeled reseeds r in place exactly as NewLabeled(seed, label) would
// seed a fresh stream. It is the allocation-free path for per-worker
// workspaces that re-derive their replicate stream thousands of times.
func (r *Stream) SeedLabeled(seed uint64, label string) {
	s := seed
	for i := 0; i < len(label); i++ {
		s = s ^ uint64(label[i])
		_ = splitmix64(&s)
	}
	r.state = splitmix64(&s)
	r.inc = splitmix64(&s) | 1
}

// Split returns a new stream whose future output is statistically
// independent of the receiver's. The receiver advances by two steps.
func (r *Stream) Split() *Stream {
	child := &Stream{}
	r.SplitInto(child)
	return child
}

// SplitInto seeds dst as Split would seed a fresh child stream, without
// allocating. The receiver advances by two steps, exactly as with Split.
func (r *Stream) SplitInto(dst *Stream) {
	s := r.next64()
	dst.state = splitmix64(&s)
	dst.inc = splitmix64(&s) | 1
}

// SplitN returns n independent child streams.
func (r *Stream) SplitN(n int) []*Stream {
	out := make([]*Stream, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// next32 returns the next 32 bits from the PCG core.
func (r *Stream) next32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// next64 returns 64 random bits.
func (r *Stream) next64() uint64 {
	hi := uint64(r.next32())
	lo := uint64(r.next32())
	return hi<<32 | lo
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Stream) Uint64() uint64 { return r.next64() }

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Stream) Uint32() uint32 { return r.next32() }

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Lemire's nearly-divisionless rejection method keeps the result
// unbiased.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	// Multiply-shift with rejection of the biased low region.
	threshold := (-bound) % bound
	for {
		v := r.next64()
		hi, lo := mul64(v, bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 random
// bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.next64()>>11) / (1 << 53)
}

// Range returns a uniformly distributed value in [lo, hi).
func (r *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Stream) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Stream) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function
// (Fisher-Yates).
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly random element index of a slice of length n,
// or -1 when n == 0.
func (r *Stream) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return r.Intn(n)
}
