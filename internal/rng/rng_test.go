package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams with equal seed diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide %d/100 times", same)
	}
}

func TestLabeledStreamsIndependent(t *testing.T) {
	a := NewLabeled(7, "topology")
	b := NewLabeled(7, "source")
	c := NewLabeled(7, "topology")
	if a.Uint64() != c.Uint64() {
		t.Fatal("identical labels must produce identical streams")
	}
	if a.Uint64() == b.Uint64() {
		t.Fatal("different labels should produce different streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
}

func TestSplitN(t *testing.T) {
	kids := New(5).SplitN(8)
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatalf("duplicate first output %d across SplitN children", v)
		}
		seen[v] = true
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(23)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestRange(t *testing.T) {
	r := New(29)
	for i := 0; i < 5000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range(-3,7) = %g out of bounds", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const trials = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(37)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate %g negative", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %.4f far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	for _, n := range []int{0, 1, 2, 5, 33, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(43)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

func TestPickEmpty(t *testing.T) {
	if got := New(1).Pick(0); got != -1 {
		t.Fatalf("Pick(0) = %d, want -1", got)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(47)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / trials
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit fraction %.4f", frac)
	}
}

// Property: Intn never escapes its bound, for arbitrary seeds and bounds.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound)%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: equal seeds give equal sequences; splitting is deterministic too.
func TestQuickSplitDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a := New(seed).Split()
		b := New(seed).Split()
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
