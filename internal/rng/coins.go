package rng

// Counter-based lane coins: the randomness discipline of the bit-parallel
// replication engine. One call produces a 64-bit *coin word* whose bit r is
// an independent Bernoulli draw for replicate lane r, as a pure function of
// (seed, a, b, c) — no stream state, no consumption order. The batch
// kernels consume whole words; a scalar reference run of lane r extracts
// bit r of the very same word, which is what makes the batched and scalar
// paths bit-identical by construction.
//
// The (a, b, c) identity triple names the coin: the broadcast kernels use
// (link, slot, domain) for radio loss, (link, slot, domain) for the
// Gilbert–Elliott transition chains and (node, 0, domain) for gossip
// forwarding coins, with a distinct domain constant per purpose so the
// spaces never collide (see faults and broadcast for the assignments).

// coinBase mixes the coin identity into one well-distributed 64-bit value.
// Word i of the coin's bit-slice expansion is then a single finalizer away,
// keeping the per-word cost of BernoulliWord at one mix.
func coinBase(seed, a, b, c uint64) uint64 {
	h := mixCoin(seed ^ a*0x9E3779B97F4A7C15)
	h = mixCoin(h ^ b*0xFF51AFD7ED558CCD)
	return mixCoin(h ^ c*0xC2B2AE3D27D4EB4F)
}

// mixCoin is the splitmix64/murmur finalizer (the same mixer the fault
// oracle's scalar coins use).
func mixCoin(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// CoinWord returns 64 independent uniform bits for the coin identity
// (seed, a, b, c): bit r is lane r's fair-coin flip.
func CoinWord(seed, a, b, c uint64) uint64 {
	return mixCoin(coinBase(seed, a, b, c) ^ 0xD6E8FEB86659FD93)
}

// bernoulliBits is the fixed-point precision of BernoulliWord thresholds:
// probabilities are quantized to multiples of 2^-53 (float64 mantissa
// precision, matching Stream.Float64's 53-bit uniforms).
const bernoulliBits = 53

// BernoulliWord returns 64 independent Bernoulli(p) draws for the coin
// identity (seed, a, b, c): bit r is set iff lane r's coin came up true.
//
// Each lane's draw is conceptually "uniform 53-bit fixed-point < p",
// evaluated for all 64 lanes at once by a bit-sliced comparison: word i of
// the expansion carries bit (52−i) of every lane's uniform, and the
// comparison against the threshold walks from the most significant bit,
// retiring lanes as soon as their order against the threshold is decided.
// Lanes retire geometrically, so the expected cost is ~8 words for a full
// 64-lane word regardless of p, with a hard cap of 53.
//
// The result is a pure function of (p, seed, a, b, c): any caller — the
// 64-wide kernels or a scalar lane-r reference — observes the same word.
func BernoulliWord(p float64, seed, a, b, c uint64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	t := uint64(p * (1 << bernoulliBits)) // threshold, MSB-first below
	base := coinBase(seed, a, b, c)
	lt := uint64(0)         // lanes decided "uniform < threshold"
	undecided := ^uint64(0) // lanes whose uniform equals the threshold prefix
	for i := 0; i < bernoulliBits; i++ {
		bit := uint(bernoulliBits - 1 - i)
		if t&(1<<(bit+1)-1) == 0 {
			// No 1-bits remain in the threshold's unvisited suffix: every
			// still-undecided lane's uniform is >= the threshold. Done.
			break
		}
		w := mixCoin(base ^ (uint64(i)+1)*0x9E3779B97F4A7C15)
		if t&(1<<bit) != 0 {
			// Threshold bit 1: lanes with uniform bit 0 are smaller.
			lt |= undecided &^ w
			undecided &= w
		} else {
			// Threshold bit 0: lanes with uniform bit 1 are larger.
			undecided &^= w
		}
		if undecided == 0 {
			break
		}
	}
	return lt
}

// Lane extracts lane r's boolean from a coin word.
func Lane(word uint64, r int) bool { return word>>(uint(r)&63)&1 != 0 }
