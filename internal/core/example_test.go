package core_test

import (
	"fmt"

	"clustercast/internal/core"
	"clustercast/internal/graph"
)

// paperNetwork builds the 10-node example network of the paper's Figure 3
// (0-based IDs).
func paperNetwork() *core.Network {
	edges := [][2]int{
		{0, 4}, {0, 5}, {0, 6}, {1, 5}, {1, 7},
		{2, 6}, {2, 7}, {2, 8}, {2, 9}, {3, 8}, {3, 9}, {4, 8},
	}
	return core.FromGraph(graph.FromEdges(10, edges))
}

// The paper's running example: the static backbone selects 9 of the 10
// nodes; the dynamic backbone broadcast from node 0 uses only 7.
func Example() {
	nw := paperNetwork()

	static := nw.StaticBackbone(core.Hop25)
	fmt.Println("static backbone size:", static.Size())

	res := nw.DynamicBroadcast(core.Hop25, 0)
	fmt.Println("dynamic forward nodes:", res.ForwardCount())
	fmt.Println("delivered to all:", len(res.Received) == nw.N())
	// Output:
	// static backbone size: 9
	// dynamic forward nodes: 7
	// delivered to all: true
}

// ExampleNetwork_Heads shows the lowest-ID clusterhead election on the
// paper's example network.
func ExampleNetwork_Heads() {
	nw := paperNetwork()
	fmt.Println(nw.Heads())
	// Output: [0 1 2 3]
}

// ExampleNetwork_Flood contrasts blind flooding with the backbone: every
// node forwards.
func ExampleNetwork_Flood() {
	nw := paperNetwork()
	res := nw.Flood(0)
	fmt.Println("flooding forward nodes:", res.ForwardCount())
	// Output: flooding forward nodes: 10
}

// ExampleNetwork_MOCDS builds the paper's comparison baseline.
func ExampleNetwork_MOCDS() {
	nw := paperNetwork()
	mo := nw.MOCDS()
	fmt.Println("MO_CDS is a valid CDS:", mo.Verify(nw.Graph()) == nil)
	// Output: MO_CDS is a valid CDS: true
}

// ExampleNewRandomNetwork draws a reproducible random scenario in the
// paper's 100×100 working space.
func ExampleNewRandomNetwork() {
	nw, err := core.NewRandomNetwork(core.NetworkSpec{N: 50, AvgDegree: 6, Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("nodes:", nw.N())
	fmt.Println("connected:", nw.Graph().Connected())
	// Output:
	// nodes: 50
	// connected: true
}
