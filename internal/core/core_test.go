package core

import (
	"strings"
	"testing"

	"clustercast/internal/graph"
)

func paperGraph() *graph.Graph {
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	return graph.FromEdges(10, zero)
}

func TestNewRandomNetwork(t *testing.T) {
	nw, err := NewRandomNetwork(NetworkSpec{N: 60, AvgDegree: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 60 {
		t.Fatalf("N = %d", nw.N())
	}
	if !nw.Graph().Connected() {
		t.Fatal("default spec must produce a connected network")
	}
	if len(nw.Heads()) == 0 {
		t.Fatal("no clusterheads")
	}
}

func TestNewRandomNetworkErrors(t *testing.T) {
	if _, err := NewRandomNetwork(NetworkSpec{N: 0, AvgDegree: 6}); err == nil {
		t.Fatal("N=0 must error")
	}
	if _, err := NewRandomNetwork(NetworkSpec{N: 10}); err == nil {
		t.Fatal("missing degree/radius must error")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	nw := FromGraph(paperGraph())
	static := nw.StaticBackbone(Hop25)
	if static.Size() != 9 {
		t.Fatalf("paper static backbone size = %d, want 9", static.Size())
	}
	res := nw.BroadcastStatic(static, 0)
	if res.ForwardCount() != 9 {
		t.Fatalf("static broadcast forwarders = %d, want 9", res.ForwardCount())
	}
	dyn := nw.DynamicBroadcast(Hop25, 0)
	if dyn.ForwardCount() != 7 {
		t.Fatalf("dynamic broadcast forwarders = %d, want 7", dyn.ForwardCount())
	}
	mo := nw.MOCDS()
	if err := mo.Verify(nw.Graph()); err != nil {
		t.Fatal(err)
	}
	mores := nw.BroadcastMOCDS(mo, 0)
	if len(mores.Received) != nw.N() {
		t.Fatal("MO_CDS broadcast must deliver to everyone")
	}
	flood := nw.Flood(0)
	if flood.ForwardCount() != nw.N() {
		t.Fatalf("flooding forwarders = %d, want all %d", flood.ForwardCount(), nw.N())
	}
}

func TestSummarize(t *testing.T) {
	nw := FromGraph(paperGraph())
	s := nw.Summarize()
	if s.N != 10 || s.Clusters != 4 || s.Static25Size != 9 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.MOCDSSize < s.Static3Size {
		t.Fatalf("MO_CDS (%d) should not beat the greedy static backbone (%d) here",
			s.MOCDSSize, s.Static3Size)
	}
	out := s.String()
	for _, want := range []string{"n=10", "clusters=4", "static2.5=9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Summary.String missing %q: %s", want, out)
		}
	}
}

func TestDynamicProtocolReuse(t *testing.T) {
	nw, err := NewRandomNetwork(NetworkSpec{N: 50, AvgDegree: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := nw.DynamicProtocol(Hop25)
	for src := 0; src < 10; src++ {
		res := p.Broadcast(src)
		if len(res.Received) != 50 {
			t.Fatalf("source %d: delivered %d/50", src, len(res.Received))
		}
	}
}

func TestAllowDisconnected(t *testing.T) {
	// A tiny radius with AllowDisconnected must not error.
	nw, err := NewRandomNetwork(NetworkSpec{N: 30, Radius: 0.5, Seed: 5, AllowDisconnected: true})
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 30 {
		t.Fatalf("N = %d", nw.N())
	}
}

func TestSummaryAnalysisFields(t *testing.T) {
	nw, err := NewRandomNetwork(NetworkSpec{N: 60, AvgDegree: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Summarize()
	if s.Clustering <= 0.3 || s.Clustering > 1 {
		t.Fatalf("UDG clustering coefficient %.2f out of the expected high range", s.Clustering)
	}
	if s.CutVertices < 0 || s.CutVertices >= s.N {
		t.Fatalf("cut vertices = %d", s.CutVertices)
	}
}
