// Package core is the high-level façade of clustercast: one import that
// ties together topology generation, lowest-ID clustering, the paper's
// static (SI-CDS) and dynamic (SD-CDS) cluster-based backbones, the MO_CDS
// baseline, and broadcast simulation.
//
// Typical use:
//
//	nw, err := core.NewRandomNetwork(core.NetworkSpec{N: 100, AvgDegree: 6, Seed: 42})
//	...
//	static := nw.StaticBackbone(core.Hop25)         // proactive SI-CDS
//	res := nw.BroadcastStatic(static, source)       // broadcast over it
//	dyn := nw.DynamicBroadcast(core.Hop25, source)  // on-demand SD-CDS
//	fmt.Println(static.Size(), res.ForwardCount(), dyn.ForwardCount())
package core

import (
	"fmt"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/dynamicb"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/mocds"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// Mode re-exports the coverage-set variants.
type Mode = coverage.Mode

// Coverage-set variants (see the paper's Figure 1): Hop25 tracks
// clusterheads with members within 2 hops; Hop3 tracks every clusterhead
// within 3 hops.
const (
	Hop25 = coverage.Hop25
	Hop3  = coverage.Hop3
)

// NetworkSpec describes a random MANET scenario.
type NetworkSpec struct {
	// N is the number of nodes (required).
	N int
	// AvgDegree is the target average node degree; the transmission range
	// is derived from it (paper: 6 or 18). Ignored when Radius is set.
	AvgDegree float64
	// Radius optionally fixes the transmission range directly.
	Radius float64
	// Side is the side length of the square working space (default 100).
	Side float64
	// Seed makes the scenario reproducible.
	Seed uint64
	// AllowDisconnected keeps disconnected samples instead of resampling.
	AllowDisconnected bool
	// BuildWorkers shards the unit-disk construction and the clusterhead
	// election over this many goroutines when > 1. The sharded paths are
	// bit-identical to the sequential references for any worker count, so
	// the resulting network never depends on this.
	BuildWorkers int
}

// Network is a clustered MANET snapshot: positions, unit disk graph, and
// the lowest-ID clustering all algorithms share.
type Network struct {
	// Topology holds positions, radius, bounds and the unit disk graph.
	Topology *topology.Network
	// Clustering is the lowest-ID clustering of the graph.
	Clustering *cluster.Clustering
}

// NewRandomNetwork draws a random connected network per the spec and
// clusters it.
func NewRandomNetwork(spec NetworkSpec) (*Network, error) {
	side := spec.Side
	if side == 0 {
		side = 100
	}
	r := rng.NewLabeled(spec.Seed, "core-network")
	cfg := topology.Config{
		N:                spec.N,
		Bounds:           geom.Square(side),
		AvgDegree:        spec.AvgDegree,
		Radius:           spec.Radius,
		RequireConnected: !spec.AllowDisconnected,
	}
	if spec.BuildWorkers > 1 {
		// Single-use workspaces: the returned network keeps their buffers
		// alive, and nothing re-generates over them.
		tws := topology.NewWorkspace()
		tws.BuildWorkers = spec.BuildWorkers
		nw, err := topology.GenerateWith(cfg, tws, r)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		cl := cluster.NewParallelWorkspace().LowestID(nw.G, spec.BuildWorkers)
		return &Network{Topology: nw, Clustering: cl}, nil
	}
	nw, err := topology.Generate(cfg, r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return FromTopology(nw), nil
}

// FromTopology wraps an existing topology snapshot.
func FromTopology(nw *topology.Network) *Network {
	return &Network{Topology: nw, Clustering: cluster.LowestID(nw.G)}
}

// FromGraph wraps a bare graph (no positions) — useful for hand-crafted
// networks like the paper's Figure 3 example.
func FromGraph(g *graph.Graph) *Network {
	return &Network{
		Topology:   &topology.Network{G: g},
		Clustering: cluster.LowestID(g),
	}
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.Topology.G.N() }

// Graph returns the unit disk graph.
func (nw *Network) Graph() *graph.Graph { return nw.Topology.G }

// Heads returns the clusterheads, ascending.
func (nw *Network) Heads() []int { return nw.Clustering.Heads }

// StaticBackbone builds the paper's static backbone (cluster-based
// SI-CDS) under the given coverage mode.
func (nw *Network) StaticBackbone(mode Mode) *backbone.Static {
	return backbone.BuildStatic(nw.Topology.G, nw.Clustering, mode)
}

// MOCDS builds the message-optimal CDS baseline of Alzoubi et al.
func (nw *Network) MOCDS() *mocds.CDS {
	return mocds.Build(nw.Topology.G, nw.Clustering)
}

// DynamicProtocol returns the reusable dynamic-backbone (SD-CDS) broadcast
// protocol for this network.
func (nw *Network) DynamicProtocol(mode Mode) *dynamicb.Protocol {
	return dynamicb.New(nw.Topology.G, nw.Clustering, mode)
}

// DynamicBroadcast runs one dynamic-backbone broadcast from source.
func (nw *Network) DynamicBroadcast(mode Mode, source int) *broadcast.Result {
	return nw.DynamicProtocol(mode).Broadcast(source)
}

// BroadcastStatic broadcasts from source over a static backbone: the
// source plus every backbone node forwards.
func (nw *Network) BroadcastStatic(s *backbone.Static, source int) *broadcast.Result {
	return broadcast.Run(nw.Topology.G, source, broadcast.StaticCDS{Set: s.Nodes, Label: "static-" + s.Mode.String()})
}

// BroadcastMOCDS broadcasts from source over the MO_CDS.
func (nw *Network) BroadcastMOCDS(c *mocds.CDS, source int) *broadcast.Result {
	return broadcast.Run(nw.Topology.G, source, broadcast.StaticCDS{Set: c.Nodes, Label: "mo-cds"})
}

// Flood runs blind flooding from source — the broadcast-storm baseline.
func (nw *Network) Flood(source int) *broadcast.Result {
	return broadcast.Run(nw.Topology.G, source, broadcast.Flooding{})
}

// Summary describes a network and its backbones at a glance.
type Summary struct {
	N             int
	Edges         int
	AvgDegree     float64
	MaxDegree     int
	Clusters      int
	Static25Size  int
	Static3Size   int
	MOCDSSize     int
	Diameter      int
	TransmitRange float64
	// CutVertices counts the topology's single points of failure.
	CutVertices int
	// Clustering is the global clustering coefficient (UDGs: high).
	Clustering float64
}

// Summarize computes the summary (diameter is −1 for disconnected
// networks).
func (nw *Network) Summarize() Summary {
	g := nw.Topology.G
	return Summary{
		N:             g.N(),
		Edges:         g.M(),
		AvgDegree:     g.AvgDegree(),
		MaxDegree:     g.MaxDegree(),
		Clusters:      nw.Clustering.NumClusters(),
		Static25Size:  nw.StaticBackbone(Hop25).Size(),
		Static3Size:   nw.StaticBackbone(Hop3).Size(),
		MOCDSSize:     nw.MOCDS().Size(),
		Diameter:      g.Diameter(),
		TransmitRange: nw.Topology.Radius,
		CutVertices:   len(g.CutVertices()),
		Clustering:    g.ClusteringCoefficient(),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf(
		"n=%d m=%d avg-deg=%.2f max-deg=%d clusters=%d static2.5=%d static3=%d mo-cds=%d diam=%d range=%.2f cut=%d cc=%.2f",
		s.N, s.Edges, s.AvgDegree, s.MaxDegree, s.Clusters,
		s.Static25Size, s.Static3Size, s.MOCDSSize, s.Diameter, s.TransmitRange,
		s.CutVertices, s.Clustering)
}
