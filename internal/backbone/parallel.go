package backbone

import (
	"sync"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// ParallelWorkspace owns the per-worker scratch of a sharded static-backbone
// construction: each worker assembles coverage sets and runs gateway
// selections for its share of the clusterheads with private scratch, so the
// shards proceed without synchronization. Reuse one ParallelWorkspace across
// replicates; steady-state runs allocate nothing beyond goroutine startup.
type ParallelWorkspace struct {
	workers []parWorker
	nodes   graph.Bitset
}

// parWorker is one shard's private state: coverage assembly scratch, the
// coverage value it refills per head, the selection scratch, and the bitset
// accumulating its selections.
type parWorker struct {
	asm   coverage.AsmScratch
	cov   coverage.Coverage
	scr   selScratch
	nodes graph.Bitset
}

// NewParallelWorkspace returns an empty workspace; per-worker buffers grow
// on first use.
func NewParallelWorkspace() *ParallelWorkspace { return &ParallelWorkspace{} }

// StaticSize is StaticNodes(...).Count().
func (pw *ParallelWorkspace) StaticSize(b *coverage.Builder, cl *cluster.Clustering, opts Options, workers int) int {
	return pw.StaticNodes(b, cl, opts, workers).Count()
}

// StaticNodes computes exactly Workspace.StaticNodes(b, cl, opts) — the
// static backbone membership — sharding the per-clusterhead gateway
// selections across the given number of goroutines.
//
// Heads are assigned round-robin (worker k takes cl.Heads[k], [k+W], ...);
// each worker accumulates its heads and their selections into a private
// bitset, and the shards are OR-merged in worker order after all complete.
// Each per-head selection depends only on the head's own coverage set (the
// builder's digests are read-only after Reset, and every worker assembles
// through its own coverage.AsmScratch), so the shard partition cannot change
// any selection, and the merged union is the same set of nodes regardless of
// worker count or completion order: the result is bit-identical to the
// sequential path.
//
// The returned bitset is owned by the workspace and valid until the next
// call.
func (pw *ParallelWorkspace) StaticNodes(b *coverage.Builder, cl *cluster.Clustering, opts Options, workers int) *graph.Bitset {
	n := b.N()
	heads := cl.Heads
	if workers > len(heads) {
		workers = len(heads)
	}
	if workers < 1 {
		workers = 1
	}
	for len(pw.workers) < workers {
		pw.workers = append(pw.workers, parWorker{})
	}
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		w := &pw.workers[k]
		w.nodes.Reset(n)
		wg.Add(1)
		go func(k int, w *parWorker) {
			defer wg.Done()
			for i := k; i < len(heads); i += workers {
				h := heads[i]
				w.nodes.Add(h)
				cov := b.OfScratch(h, &w.cov, &w.asm)
				for _, v := range selectCore(cov, nil, nil, opts, &w.scr) {
					w.nodes.Add(v)
				}
			}
		}(k, w)
	}
	wg.Wait()
	pw.nodes.Reset(n)
	for k := 0; k < workers; k++ {
		pw.nodes.Or(&pw.workers[k].nodes)
	}
	return &pw.nodes
}
