package backbone

import (
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// TestStaticNodesMatchesBuild proves the workspace selection computes the
// same backbone membership as BuildStaticOpt, for both coverage modes and
// both option settings, across reuse of a single workspace.
func TestStaticNodesMatchesBuild(t *testing.T) {
	ws := NewWorkspace()
	for rep := 0; rep < 12; rep++ {
		nw, err := topology.Generate(topology.Config{
			N: 120, Bounds: geom.Square(100), AvgDegree: 8,
			RequireConnected: true,
		}, rng.New(uint64(500+rep)))
		if err != nil {
			t.Fatalf("rep %d: generate: %v", rep, err)
		}
		cl := cluster.LowestID(nw.G)
		for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
			b := coverage.NewBuilder(nw.G, cl, mode)
			for _, opts := range []Options{{}, {NoIndirectTieBreak: true}} {
				want := BuildStaticOpt(b, cl, opts)
				nodes := ws.StaticNodes(b, cl, opts)
				if nodes.Count() != want.Size() {
					t.Fatalf("rep %d mode %v opts %+v: size %d, want %d",
						rep, mode, opts, nodes.Count(), want.Size())
				}
				for v := 0; v < nw.N(); v++ {
					if nodes.Has(v) != want.Nodes[v] {
						t.Fatalf("rep %d mode %v opts %+v: node %d membership: workspace %v, build %v",
							rep, mode, opts, v, nodes.Has(v), want.Nodes[v])
					}
				}
			}
		}
	}
}
