package backbone

import (
	"fmt"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
)

// Repair metrics, folded once per repair pass.
var (
	mRepairs         = obs.NewCounter("backbone.repairs")
	mRepairTracked   = obs.NewCounter("backbone.repair_tracked")
	mRepairReselects = obs.NewCounter("backbone.repair_reselections")
)

// RepairStats summarizes one repair pass.
type RepairStats struct {
	// Changed counts the nodes whose liveness flipped since the baseline.
	Changed int
	// DeadHeads counts baseline clusterheads that went down.
	DeadHeads int
	// Tracked counts the nodes whose election decision was replayed (the
	// re-election wavefront; everyone else kept the baseline decision).
	Tracked int
	// Rehomed counts live nodes whose head assignment changed.
	Rehomed int
	// Reselected counts the clusterheads whose gateway selection was redone.
	Reselected int
}

// Repair localizes backbone recovery after a liveness change: given the
// baseline clustering cl and static backbone base — valid for the liveness
// predicate wasUp — it produces the clustering and backbone of the
// surviving graph under isUp, re-running the lowest-ID election and the
// greedy gateway selection only where the change can propagate.
//
// The election replay exploits the round-synchronous structure: cl.When
// records the round each node decided in, so untracked nodes replay their
// baseline behavior (candidate until When[v], then head or member), while
// nodes whose neighborhood changed are re-run live. Whenever a re-run
// node's externally visible state (candidacy, head declaration) diverges
// from the baseline at some round, its undecided neighbors join the
// re-run before the divergence can influence them — mid-round for phase-1
// divergences, which phase 2 of the same round already observes. The merged
// outcome is identical to a from-scratch election on the surviving graph.
//
// Conventions: the returned clustering covers all of g's nodes — a dead
// node is recorded as an isolated singleton head (exactly what a fresh
// election on the surviving graph produces), so repaired clusterings chain
// through subsequent Repair calls as new baselines. The returned Static
// contains live nodes only. cl must carry When (an Elect-produced
// clustering under lowest-ID priority); cl' from Repair always does.
func Repair(g *graph.Graph, cl *cluster.Clustering, base *Static, wasUp, isUp func(int) bool, opts Options, tr *obs.Tracer) (*cluster.Clustering, *Static, *RepairStats, error) {
	n := g.N()
	if len(cl.Head) != n {
		return nil, nil, nil, fmt.Errorf("backbone: clustering covers %d nodes, graph has %d", len(cl.Head), n)
	}
	if cl.When == nil {
		return nil, nil, nil, fmt.Errorf("backbone: repair needs an election-produced clustering (When is nil)")
	}
	st := &RepairStats{}

	// The liveness diff seeds the wavefront: every flipped node, plus the
	// live neighbors whose election view it changes.
	var changed []int
	for v := 0; v < n; v++ {
		if wasUp(v) != isUp(v) {
			changed = append(changed, v)
			if !isUp(v) && cl.Head[v] == v {
				st.DeadHeads++
			}
		}
	}
	st.Changed = len(changed)

	newHead := append([]int(nil), cl.Head...)
	newWhen := append([]int(nil), cl.When...)
	if len(changed) > 0 {
		if err := reElect(g, cl, changed, isUp, newHead, newWhen, st); err != nil {
			return nil, nil, nil, err
		}
	}

	// Assemble the repaired clustering (dead nodes as singleton heads).
	heads := make([]int, 0, len(cl.Heads))
	members := make(map[int][]int)
	rounds := 0
	for v := 0; v < n; v++ {
		if newHead[v] == v {
			heads = append(heads, v)
		}
		if newWhen[v] > rounds {
			rounds = newWhen[v]
		}
		members[newHead[v]] = append(members[newHead[v]], v)
		if isUp(v) && newHead[v] != cl.Head[v] {
			st.Rehomed++
		}
	}
	repaired := &cluster.Clustering{Head: newHead, Heads: heads, Members: members, Rounds: rounds, When: newWhen}

	// Gateway re-selection is bounded by a 3-hop ball around every node the
	// coverage sets can see differently: liveness flips and affiliation
	// changes. Heads outside the ball reuse their baseline selection.
	dirty := changed
	for v := 0; v < n; v++ {
		if newHead[v] != cl.Head[v] {
			dirty = append(dirty, v)
		}
	}
	redo := hopBall(g, dirty, 3, isUp)

	gLive := liveGraph(g, isUp)
	var b *coverage.Builder
	static := &Static{
		Mode:    base.Mode,
		Nodes:   make(map[int]bool),
		PerHead: make(map[int]Selection, len(heads)),
	}
	for _, h := range heads {
		if !isUp(h) {
			continue
		}
		static.Heads = append(static.Heads, h)
		static.Nodes[h] = true
		sel, ok := base.PerHead[h]
		if !ok || redo.Has(h) {
			if b == nil {
				b = coverage.NewBuilder(gLive, repaired, base.Mode)
			}
			sel = SelectGatewaysOpt(b.Of(h), nil, nil, opts)
			st.Reselected++
			tr.Repair(h, len(sel.Gateways))
		}
		static.PerHead[h] = sel
		for _, v := range sel.Gateways {
			static.Nodes[v] = true
		}
	}

	mRepairs.Inc()
	mRepairTracked.Add(int64(st.Tracked))
	mRepairReselects.Add(int64(st.Reselected))
	return repaired, static, st, nil
}

// reElect replays the round-synchronous lowest-ID election on the
// surviving graph, tracking only the nodes the change reaches. It writes
// the merged outcome into newHead/newWhen (pre-seeded with the baseline).
func reElect(g *graph.Graph, cl *cluster.Clustering, changed []int, isUp func(int) bool, newHead, newWhen []int, st *RepairStats) error {
	n := g.N()
	const (
		sCand uint8 = iota
		sHead
		sMember
	)
	tracked := make([]bool, n)
	state := make([]uint8, n)
	var active []int

	// track adds v to the re-run. During phase 2 the additions go through
	// deferred instead of active: the phase-2 loop compacts active in place,
	// so appending to it mid-loop would let the compaction drop the new
	// entries — and semantically a node tracked in phase 2 of round r was
	// still a candidate when the round ended, so its first re-run action is
	// phase 1 of round r+1 anyway.
	trackTo := &active
	track := func(v int) {
		if tracked[v] || !isUp(v) {
			return
		}
		tracked[v] = true
		state[v] = sCand
		*trackTo = append(*trackTo, v)
		st.Tracked++
	}

	// Seed: dead nodes become singleton heads outright; recovered nodes and
	// the live neighbors of every flipped node re-run from round 1.
	for _, v := range changed {
		if !isUp(v) {
			newHead[v], newWhen[v] = v, 1
		} else {
			track(v)
		}
		for _, u := range g.Neighbors(v) {
			track(u)
		}
	}

	// trackAt adds u to the re-run mid-election: only if the baseline still
	// has u as a candidate at the tracking moment — afterPhase1 of round r,
	// or at the end of round r. Nodes the baseline already decided made
	// that decision on information the re-run has not altered.
	trackAt := func(u, r int, afterPhase1 bool) {
		if tracked[u] || !isUp(u) {
			return
		}
		stillCandidate := cl.When[u] > r ||
			(afterPhase1 && cl.When[u] == r && cl.Head[u] != u)
		if stillCandidate {
			track(u)
		}
	}
	trackNeighborsAt := func(v, r int, afterPhase1 bool) {
		for _, u := range g.Neighbors(v) {
			trackAt(u, r, afterPhase1)
		}
	}

	// Baseline replay predicates for untracked nodes.
	baseCandidateAt := func(u, r int) bool { return cl.When[u] >= r }
	baseHeadAt := func(u, r int) bool { return cl.Head[u] == u && cl.When[u] <= r }

	var declared []int
	maxRounds := cl.Rounds + n + 1
	for r := 1; len(active) > 0; r++ {
		if r > maxRounds {
			return fmt.Errorf("backbone: repair election did not converge after %d rounds", r-1)
		}
		// Phase 1: simultaneous declarations among re-run candidates.
		declared = declared[:0]
		for _, v := range active {
			wins := true
			for _, u := range g.Neighbors(v) {
				if !isUp(u) {
					continue
				}
				cand := state[u] == sCand
				if !tracked[u] {
					cand = baseCandidateAt(u, r)
				}
				if cand && u < v {
					wins = false
					break
				}
			}
			if wins {
				declared = append(declared, v)
			}
		}
		for _, v := range declared {
			state[v] = sHead
			newHead[v], newWhen[v] = v, r
			if !(cl.Head[v] == v && cl.When[v] == r) {
				trackNeighborsAt(v, r, true) // declared where the baseline did not
			}
		}
		for _, v := range active {
			if state[v] == sCand && cl.Head[v] == v && cl.When[v] == r {
				trackNeighborsAt(v, r, true) // baseline declared here, the re-run did not
			}
		}
		// Phase 2: candidates adjacent to a head join the lowest-ID one.
		// Nodes tracked after phase 1 are already on the active list and
		// take part; head states are stable throughout the phase. Nodes the
		// phase-2 propagations track are deferred to the end of the round.
		var deferred []int
		trackTo = &deferred
		out := active[:0]
		for _, v := range active {
			if state[v] != sCand {
				continue
			}
			best := -1
			for _, u := range g.Neighbors(v) {
				if !isUp(u) {
					continue
				}
				isHead := state[u] == sHead
				if !tracked[u] {
					isHead = baseHeadAt(u, r)
				}
				if isHead && (best == -1 || u < best) {
					best = u
				}
			}
			if best != -1 {
				state[v] = sMember
				newHead[v], newWhen[v] = best, r
				if cl.When[v] != r {
					trackNeighborsAt(v, r, false) // candidacy length changed
				}
				continue
			}
			if cl.When[v] == r && cl.Head[v] != v {
				trackNeighborsAt(v, r, false) // baseline joined here, the re-run did not
			}
			out = append(out, v)
		}
		active = append(out, deferred...)
		trackTo = &active
	}
	return nil
}

// hopBall collects every node within depth hops (in the surviving graph)
// of the given seeds.
func hopBall(g *graph.Graph, seeds []int, depth int, isUp func(int) bool) *graph.Bitset {
	n := g.N()
	ball := graph.NewBitset(n)
	dist := make([]int, n)
	queue := make([]int, 0, len(seeds))
	for _, v := range seeds {
		if !ball.Has(v) {
			ball.Add(v)
			dist[v] = 0
			queue = append(queue, v)
		}
	}
	// Dead nodes enter only as seeds: they expand to their live neighbors
	// (the endpoints of the removed edges) and the walk continues through
	// live nodes alone.
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		if dist[v] == depth {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if !isUp(u) || ball.Has(u) {
				continue
			}
			ball.Add(u)
			dist[u] = dist[v] + 1
			queue = append(queue, u)
		}
	}
	return ball
}

// liveGraph builds the surviving graph: g with every down node isolated.
func liveGraph(g *graph.Graph, isUp func(int) bool) *graph.Graph {
	n := g.N()
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		if !isUp(v) {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if isUp(u) {
				adj[v] = append(adj[v], u)
			}
		}
	}
	return graph.FromAdjacency(n, adj)
}
