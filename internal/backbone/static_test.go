package backbone

import (
	"reflect"
	"testing"
	"testing/quick"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// paperGraph builds the 10-node network of the paper's Figure 3, 0-based.
func paperGraph() *graph.Graph {
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	return graph.FromEdges(10, zero)
}

func TestPaperGatewaySelections(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	// Paper: GATEWAY(1)={6,7}, GATEWAY(2)={6,8}, GATEWAY(3)={7,8,9},
	// GATEWAY(4)={5,9}. (0-based: subtract 1.)
	want := map[int][]int{
		0: {5, 6},
		1: {5, 7},
		2: {6, 7, 8},
		3: {4, 8},
	}
	for head, gws := range want {
		sel := SelectGateways(b.Of(head), nil, nil)
		if !reflect.DeepEqual(sel.Gateways, gws) {
			t.Errorf("GATEWAY(%d) = %v, want %v (paper head %d)", head, sel.Gateways, gws, head+1)
		}
	}
}

func TestPaperStaticBackbone(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	s := BuildStatic(g, cl, coverage.Hop25)
	// Paper: the 2.5-hop static backbone consists of nodes 1..9
	// (0-based 0..8); node 10 (0-based 9) stays out.
	want := graph.SetOf(0, 1, 2, 3, 4, 5, 6, 7, 8)
	if !reflect.DeepEqual(s.Nodes, want) {
		t.Fatalf("backbone = %v, want %v",
			graph.SortedMembers(s.Nodes), graph.SortedMembers(want))
	}
	if s.Size() != 9 || s.GatewayCount() != 5 {
		t.Fatalf("Size=%d GatewayCount=%d", s.Size(), s.GatewayCount())
	}
	if err := s.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestPaperStaticBackbone3Hop(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	s := BuildStatic(g, cl, coverage.Hop3)
	if err := s.Verify(g); err != nil {
		t.Fatal(err)
	}
	if !g.IsCDS(s.Nodes) {
		t.Fatal("3-hop static backbone must be a CDS")
	}
}

func TestSelectGatewaysIndirectTieBreak(t *testing.T) {
	// Head 4's selection (paper): both 9 and 10 directly cover clusterhead
	// 3, but 9 also indirectly covers clusterhead 1, so 9 must win the tie
	// and relay 5 must be co-selected.
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	sel := SelectGateways(b.Of(3), nil, nil)
	if !reflect.DeepEqual(sel.Gateways, []int{4, 8}) {
		t.Fatalf("head 4 gateways = %v, want [4 8] (paper {5,9})", sel.Gateways)
	}
	if !sel.Covered.Has(0) || !sel.Covered.Has(2) {
		t.Fatalf("head 4 must cover clusterheads 1 and 3: %v", sel.Covered.Members())
	}
}

func TestSelectGatewaysRestrictedNeed(t *testing.T) {
	// The dynamic backbone passes pruned target sets. With an empty need,
	// no gateways are selected.
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	sel := SelectGateways(b.Of(2), graph.NewBitset(10), graph.NewBitset(10))
	if len(sel.Gateways) != 0 {
		t.Fatalf("empty need must select nothing, got %v", sel.Gateways)
	}
	// Restricting head 3's need to clusterhead 4 only: select node 9
	// (lowest ID covering 4; paper example for the dynamic broadcast).
	sel = SelectGateways(b.Of(2), graph.BitsetOf(10, 3), nil)
	if !reflect.DeepEqual(sel.Gateways, []int{8}) {
		t.Fatalf("restricted selection = %v, want [8] (paper node 9)", sel.Gateways)
	}
}

func TestSelectGatewaysNeedOutsideCoverageIgnored(t *testing.T) {
	g := paperGraph()
	cl := cluster.LowestID(g)
	b := coverage.NewBuilder(g, cl, coverage.Hop25)
	// Node 9 is neither a clusterhead nor in C(1); it must be ignored.
	sel := SelectGateways(b.Of(0), graph.BitsetOf(10, 9), graph.BitsetOf(10, 9))
	if len(sel.Gateways) != 0 || sel.Covered.Any() {
		t.Fatalf("targets outside the coverage set must be ignored: %+v", sel)
	}
}

func TestStaticLineTopology(t *testing.T) {
	// A chain forces clusters in a row; the backbone must still be a CDS.
	nw := topology.LineTopology(20, 1.0, 1.2)
	cl := cluster.LowestID(nw.G)
	for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
		s := BuildStatic(nw.G, cl, mode)
		if err := s.Verify(nw.G); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
	}
}

func TestStaticSingleCluster(t *testing.T) {
	// A star: one cluster, no gateways needed.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	cl := cluster.LowestID(g)
	s := BuildStatic(g, cl, coverage.Hop25)
	if s.Size() != 1 || s.GatewayCount() != 0 {
		t.Fatalf("single-cluster backbone should be just the head: %v",
			graph.SortedMembers(s.Nodes))
	}
	if err := s.Verify(g); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorem 1): on random connected unit disk graphs the static
// backbone is a CDS, for both coverage modes.
func TestQuickStaticIsCDS(t *testing.T) {
	check := func(seed uint64, mode coverage.Mode, n int, deg float64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: n, Bounds: geom.Square(100), AvgDegree: deg,
			RequireConnected: true, MaxAttempts: 300,
		}, r)
		if err != nil {
			return true // skip impossible configs
		}
		cl := cluster.LowestID(nw.G)
		s := BuildStatic(nw.G, cl, mode)
		return nw.G.IsCDS(s.Nodes)
	}
	f := func(seed uint64, dense bool) bool {
		deg := 6.0
		if dense {
			deg = 18.0
		}
		return check(seed, coverage.Hop25, 50, deg) && check(seed, coverage.Hop3, 50, deg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every head's selection covers its entire coverage set, and all
// selected gateways are non-clusterheads within 2 hops of the head.
func TestQuickSelectionsCoverEverything(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 45, Bounds: geom.Square(100), AvgDegree: 8,
			RequireConnected: true, MaxAttempts: 300,
		}, r)
		if err != nil {
			return true
		}
		cl := cluster.LowestID(nw.G)
		b := coverage.NewBuilder(nw.G, cl, coverage.Hop25)
		for _, h := range cl.Heads {
			cov := b.Of(h)
			sel := SelectGateways(cov, nil, nil)
			for _, w := range cov.C2.Members() {
				if !sel.Covered.Has(w) {
					return false
				}
			}
			for _, w := range cov.C3.Members() {
				if !sel.Covered.Has(w) {
					return false
				}
			}
			dist := nw.G.BFS(h)
			for _, v := range sel.Gateways {
				if cl.IsHead(v) || dist[v] > 2 || dist[v] < 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the greedy backbone is never larger than the naive
// heads+all-gateways backbone (the selection only prunes).
func TestQuickStaticSmallerThanNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 50, Bounds: geom.Square(100), AvgDegree: 10,
			RequireConnected: true, MaxAttempts: 300,
		}, r)
		if err != nil {
			return true
		}
		cl := cluster.LowestID(nw.G)
		s := BuildStatic(nw.G, cl, coverage.Hop25)
		naive := cl.HeadSet()
		for v := range cl.Gateways(nw.G) {
			naive[v] = true
		}
		return s.Size() <= graph.SetSize(naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The 2.5-hop and 3-hop static backbones are close in size — the paper
// reports <2% average difference. Individual instances can diverge more
// (small backbones quantize hard), so the comparison is on the mean.
func TestModesComparableSizeOnAverage(t *testing.T) {
	root := rng.New(77)
	var sum25, sum3 int
	const samples = 40
	for i := 0; i < samples; i++ {
		nw, err := topology.Generate(topology.Config{
			N: 60, Bounds: geom.Square(100), AvgDegree: 12,
			RequireConnected: true, MaxAttempts: 300,
		}, root)
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.LowestID(nw.G)
		sum25 += BuildStatic(nw.G, cl, coverage.Hop25).Size()
		sum3 += BuildStatic(nw.G, cl, coverage.Hop3).Size()
	}
	diff := sum25 - sum3
	if diff < 0 {
		diff = -diff
	}
	if diff*10 > sum3 {
		t.Fatalf("mode mean sizes diverge >10%%: 2.5-hop %d vs 3-hop %d over %d samples",
			sum25, sum3, samples)
	}
	t.Logf("mean sizes over %d samples: 2.5-hop=%.2f, 3-hop=%.2f (diff %.1f%%)",
		samples, float64(sum25)/samples, float64(sum3)/samples,
		100*float64(diff)/float64(sum3))
}

func BenchmarkBuildStatic100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	cl := cluster.LowestID(nw.G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildStatic(nw.G, cl, coverage.Hop25)
	}
}
