package backbone

import (
	"fmt"
	"reflect"
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// upAll is the all-alive baseline predicate.
func upAll(int) bool { return true }

// notIn builds a liveness predicate from a crash set.
func notIn(dead map[int]bool) func(int) bool {
	return func(v int) bool { return !dead[v] }
}

// checkRepairEquivalence repairs (cl, base) for the liveness transition
// wasUp→isUp and verifies the result is identical to a from-scratch build
// on the surviving graph: same clustering (Head, When, Heads, Members,
// Rounds) and the same per-head gateway selections. It returns the repaired
// pair so callers can chain further transitions.
func checkRepairEquivalence(t *testing.T, g *graph.Graph, cl *cluster.Clustering, base *Static, wasUp, isUp func(int) bool, mode coverage.Mode) (*cluster.Clustering, *Static) {
	t.Helper()
	repaired, static, st, err := Repair(g, cl, base, wasUp, isUp, Options{}, nil)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	gLive := liveGraph(g, isUp)
	fresh := cluster.LowestID(gLive)
	if !reflect.DeepEqual(repaired.Head, fresh.Head) {
		t.Fatalf("repaired heads diverge from fresh election:\n got %v\nwant %v", repaired.Head, fresh.Head)
	}
	if !reflect.DeepEqual(repaired.When, fresh.When) {
		t.Fatalf("repaired When diverges:\n got %v\nwant %v", repaired.When, fresh.When)
	}
	if !reflect.DeepEqual(repaired.Heads, fresh.Heads) {
		t.Fatalf("repaired head list diverges:\n got %v\nwant %v", repaired.Heads, fresh.Heads)
	}
	if repaired.Rounds != fresh.Rounds {
		t.Fatalf("repaired Rounds = %d, fresh = %d", repaired.Rounds, fresh.Rounds)
	}
	for h, m := range fresh.Members {
		if !reflect.DeepEqual(repaired.Members[h], m) {
			t.Fatalf("members of head %d diverge: got %v want %v", h, repaired.Members[h], m)
		}
	}
	if len(repaired.Members) != len(fresh.Members) {
		t.Fatalf("member map sizes diverge: got %d want %d", len(repaired.Members), len(fresh.Members))
	}

	// The fresh static includes dead nodes as isolated singleton heads with
	// empty selections; the repaired static holds live nodes only.
	freshStatic := BuildStatic(gLive, fresh, mode)
	liveHeads := make([]int, 0, len(freshStatic.Heads))
	for _, h := range freshStatic.Heads {
		if isUp(h) {
			liveHeads = append(liveHeads, h)
		}
	}
	if !reflect.DeepEqual(static.Heads, liveHeads) {
		t.Fatalf("repaired static heads = %v, fresh live heads = %v", static.Heads, liveHeads)
	}
	for _, h := range liveHeads {
		got, want := static.PerHead[h], freshStatic.PerHead[h]
		if !reflect.DeepEqual(got.Gateways, want.Gateways) {
			t.Fatalf("head %d gateways diverge: got %v want %v", h, got.Gateways, want.Gateways)
		}
		if !got.Covered.Equal(want.Covered) {
			t.Fatalf("head %d covered set diverges: got %v want %v", h, got.Covered.Members(), want.Covered.Members())
		}
	}
	for v := range freshStatic.Nodes {
		if isUp(v) && !static.Nodes[v] {
			t.Fatalf("fresh backbone node %d missing from repaired backbone", v)
		}
	}
	for v := range static.Nodes {
		if !freshStatic.Nodes[v] {
			t.Fatalf("repaired backbone node %d absent from fresh backbone", v)
		}
	}

	// CDS sanity on the surviving graph (Theorem 1, restricted to live
	// nodes): the repaired membership plus the dead singletons must verify
	// exactly like the fresh build does.
	withDead := make(map[int]bool, len(static.Nodes))
	for v := range static.Nodes {
		withDead[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if !isUp(v) {
			withDead[v] = true
		}
	}
	if gLive.IsDominatingSet(freshStatic.Nodes) != gLive.IsDominatingSet(withDead) {
		t.Fatalf("domination verdicts diverge between fresh and repaired backbones")
	}

	if st.Reselected > len(static.Heads) {
		t.Fatalf("reselected %d heads out of %d", st.Reselected, len(static.Heads))
	}
	return repaired, static
}

func TestRepairNoChangeIsIdentity(t *testing.T) {
	nw, err := topology.Generate(topology.Config{
		N: 60, Bounds: geom.Square(100), AvgDegree: 8, RequireConnected: true,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.LowestID(nw.G)
	base := BuildStatic(nw.G, cl, coverage.Hop25)
	repaired, static, st, err := Repair(nw.G, cl, base, upAll, upAll, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed != 0 || st.Tracked != 0 || st.Reselected != 0 {
		t.Fatalf("no-op repair did work: %+v", st)
	}
	if !reflect.DeepEqual(repaired.Head, cl.Head) {
		t.Fatal("no-op repair changed the clustering")
	}
	if !reflect.DeepEqual(static.Heads, base.Heads) {
		t.Fatal("no-op repair changed the head list")
	}
}

func TestRepairRejectsClusteringWithoutWhen(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	cl := cluster.LowestID(g)
	base := BuildStatic(g, cl, coverage.Hop25)
	stripped := &cluster.Clustering{Head: cl.Head, Heads: cl.Heads, Members: cl.Members, Rounds: cl.Rounds}
	if _, _, _, err := Repair(g, stripped, base, upAll, upAll, Options{}, nil); err == nil {
		t.Fatal("expected an error for a clustering without When")
	}
}

// TestRepairEquivalenceFuzz drives fuzzed crash sets (including crashed
// clusterheads and gateways) through Repair and demands exact agreement
// with a fresh build on each surviving graph.
func TestRepairEquivalenceFuzz(t *testing.T) {
	for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
		for seed := uint64(1); seed <= 12; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%v/seed%d", mode, seed), func(t *testing.T) {
				r := rng.New(seed * 977)
				n := 30 + r.Intn(50)
				nw, err := topology.Generate(topology.Config{
					N: n, Bounds: geom.Square(100),
					AvgDegree: 6 + 4*r.Float64(), RequireConnected: true,
				}, r)
				if err != nil {
					t.Skipf("no connected sample: %v", err)
				}
				cl := cluster.LowestID(nw.G)
				base := BuildStatic(nw.G, cl, mode)

				dead := map[int]bool{}
				k := 1 + r.Intn(n/5)
				for len(dead) < k {
					dead[r.Intn(n)] = true
				}
				// Bias at least one clusterhead into the crash set: dead
				// heads are the interesting repair case.
				dead[cl.Heads[r.Intn(len(cl.Heads))]] = true
				checkRepairEquivalence(t, nw.G, cl, base, upAll, notIn(dead), mode)
			})
		}
	}
}

// TestRepairChained applies a crash wave, repairs, then a second wave with
// partial recovery, repairing on top of the first repair's output — the
// repaired clustering must keep working as a baseline.
func TestRepairChained(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rng.New(seed * 3559)
			nw, err := topology.Generate(topology.Config{
				N: 70, Bounds: geom.Square(100), AvgDegree: 8, RequireConnected: true,
			}, r)
			if err != nil {
				t.Skipf("no connected sample: %v", err)
			}
			g := nw.G
			cl := cluster.LowestID(g)
			base := BuildStatic(g, cl, coverage.Hop25)

			dead1 := map[int]bool{}
			for len(dead1) < 8 {
				dead1[r.Intn(70)] = true
			}
			cl1, base1 := checkRepairEquivalence(t, g, cl, base, upAll, notIn(dead1), coverage.Hop25)

			// Second wave: recover half of the first wave, crash new nodes.
			dead2 := map[int]bool{}
			i := 0
			for v := range dead1 {
				if i%2 == 0 {
					dead2[v] = true
				}
				i++
			}
			for len(dead2) < 10 {
				dead2[r.Intn(70)] = true
			}
			checkRepairEquivalence(t, g, cl1, base1, notIn(dead1), notIn(dead2), coverage.Hop25)
		})
	}
}

// TestRepairAllHeadsCrash kills every baseline clusterhead at once — the
// wavefront has to re-elect from scratch among the survivors.
func TestRepairAllHeadsCrash(t *testing.T) {
	nw, err := topology.Generate(topology.Config{
		N: 50, Bounds: geom.Square(100), AvgDegree: 8, RequireConnected: true,
	}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.LowestID(nw.G)
	dead := map[int]bool{}
	for _, h := range cl.Heads {
		dead[h] = true
	}
	base := BuildStatic(nw.G, cl, coverage.Hop25)
	checkRepairEquivalence(t, nw.G, cl, base, upAll, notIn(dead), coverage.Hop25)
}
