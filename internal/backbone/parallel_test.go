package backbone

import (
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// TestStaticNodesParallelBitIdentical proves the sharded selection returns
// the same backbone membership as the sequential workspace path, for every
// worker count, coverage mode and option setting, across reuse of a single
// parallel workspace. Run with -race to exercise the shard isolation: each
// worker assembles coverage through its own AsmScratch while sharing the
// read-only builder digests.
func TestStaticNodesParallelBitIdentical(t *testing.T) {
	ws := NewWorkspace()
	pw := NewParallelWorkspace()
	for rep := 0; rep < 8; rep++ {
		nw, err := topology.Generate(topology.Config{
			N: 150, Bounds: geom.Square(100), AvgDegree: 9,
			RequireConnected: true,
		}, rng.New(uint64(900+rep)))
		if err != nil {
			t.Fatalf("rep %d: generate: %v", rep, err)
		}
		cl := cluster.LowestID(nw.G)
		for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
			b := coverage.NewBuilder(nw.G, cl, mode)
			for _, opts := range []Options{{}, {NoIndirectTieBreak: true}} {
				want := ws.StaticNodes(b, cl, opts)
				for _, workers := range []int{1, 2, 3, 7, 64} {
					got := pw.StaticNodes(b, cl, opts, workers)
					if !got.Equal(want) {
						t.Fatalf("rep %d mode %v opts %+v workers %d: parallel membership diverges: got %v want %v",
							rep, mode, opts, workers, got.Members(), want.Members())
					}
				}
			}
		}
	}
}
