package backbone

import (
	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// Workspace owns the bitsets one gateway-selection pipeline needs, so a
// worker can compute backbone sizes and node sets across replicates
// without allocating.
type Workspace struct {
	scr   selScratch
	nodes graph.Bitset
}

// NewWorkspace returns an empty workspace; bitsets grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// StaticSize returns BuildStaticOpt(b, cl, opts).Size() — the paper's
// "size of the CDS" — without materializing the Static: no maps, no
// per-head Selection, no allocations beyond workspace growth.
func (ws *Workspace) StaticSize(b *coverage.Builder, cl *cluster.Clustering, opts Options) int {
	return ws.StaticNodes(b, cl, opts).Count()
}

// SelectInto runs the greedy gateway selection of SelectGatewaysOpt and
// fills dst with the selected nodes, using workspace scratch instead of
// allocating a Selection. dst is reset.
func (ws *Workspace) SelectInto(cov *coverage.Coverage, need2, need3 *graph.HybridSet, opts Options, dst *graph.HybridSet) {
	sel := selectCore(cov, need2, need3, opts, &ws.scr)
	dst.Reset(cov.C2.Cap())
	for _, v := range sel {
		dst.Add(v)
	}
}

// StaticNodes computes the static backbone membership (all clusterheads
// plus every selected gateway) into a workspace-owned bitset. The result
// is valid until the next StaticNodes/StaticSize call on the workspace.
func (ws *Workspace) StaticNodes(b *coverage.Builder, cl *cluster.Clustering, opts Options) *graph.Bitset {
	ws.nodes.Reset(b.N())
	for _, h := range cl.Heads {
		ws.nodes.Add(h)
		cov := b.OfShared(h)
		for _, v := range selectCore(cov, nil, nil, opts, &ws.scr) {
			ws.nodes.Add(v)
		}
	}
	return &ws.nodes
}
