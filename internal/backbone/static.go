// Package backbone builds the paper's *static backbone*: the cluster-based
// source-independent CDS consisting of all clusterheads plus the gateways
// each clusterhead selects to connect every clusterhead in its coverage
// set.
//
// The gateway selection is the paper's greedy heuristic: repeatedly select
// the neighbor that directly covers the most remaining 2-hop clusterheads,
// breaking ties by indirect 3-hop coverage and then by lowest ID; when a
// selected neighbor also covers 3-hop clusterheads indirectly, its relays
// are selected as well. After C² is exhausted, any remaining 3-hop
// clusterheads are connected by pairs.
package backbone

import (
	"fmt"
	"sort"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// Selection is the outcome of one clusterhead's gateway selection: the
// non-clusterhead nodes it appoints to connect its coverage set.
type Selection struct {
	// Head is the selecting clusterhead.
	Head int
	// Gateways lists the selected nodes (first-hop gateways and second-hop
	// relays), ascending.
	Gateways []int
	// Covered holds the clusterheads the selection connects to.
	Covered map[int]bool
}

// Options tunes the gateway selection for ablation experiments. The zero
// value is the paper's algorithm.
type Options struct {
	// NoIndirectTieBreak disables the paper's tie-breaking rule that
	// prefers, among neighbors covering equally many 2-hop clusterheads,
	// the one that indirectly covers more 3-hop clusterheads. With the
	// rule disabled ties fall straight through to the lowest ID (ABL-TIE).
	NoIndirectTieBreak bool
}

// SelectGateways runs the paper's greedy selection for the clusterhead
// described by cov, restricted to the target sets need2 ⊆ C² and
// need3 ⊆ C³. Passing nil for either uses the full component, which is the
// static-backbone case; the dynamic backbone passes the pruned sets.
//
// The returned gateway set is sufficient to connect the head to every
// clusterhead in need2 ∪ need3: each target in need2 is adjacent to a
// selected gateway adjacent to the head, and each target in need3 is
// reached through a selected (gateway, relay) pair.
func SelectGateways(cov *coverage.Coverage, need2, need3 map[int]bool) Selection {
	return SelectGatewaysOpt(cov, need2, need3, Options{})
}

// SelectGatewaysOpt is SelectGateways with explicit Options.
func SelectGatewaysOpt(cov *coverage.Coverage, need2, need3 map[int]bool, opts Options) Selection {
	c2 := make(map[int]bool)
	if need2 == nil {
		for w := range cov.C2 {
			c2[w] = true
		}
	} else {
		for w, ok := range need2 {
			if ok && cov.C2[w] {
				c2[w] = true
			}
		}
	}
	c3 := make(map[int]bool)
	if need3 == nil {
		for w := range cov.C3 {
			c3[w] = true
		}
	} else {
		for w, ok := range need3 {
			if ok && cov.C3[w] {
				c3[w] = true
			}
		}
	}

	sel := Selection{Head: cov.Head, Covered: make(map[int]bool, len(c2)+len(c3))}
	selected := make(map[int]bool)

	// Candidate neighbors, in ascending order for deterministic ties.
	candidates := make([]int, 0, len(cov.Direct)+len(cov.Indirect))
	seen := map[int]bool{}
	for v := range cov.Direct {
		if !seen[v] {
			seen[v] = true
			candidates = append(candidates, v)
		}
	}
	for v := range cov.Indirect {
		if !seen[v] {
			seen[v] = true
			candidates = append(candidates, v)
		}
	}
	sort.Ints(candidates)

	directGain := func(v int) int {
		n := 0
		for _, w := range cov.Direct[v] {
			if c2[w] {
				n++
			}
		}
		return n
	}
	indirectGain := func(v int) int {
		n := 0
		for w := range cov.Indirect[v] {
			if c3[w] {
				n++
			}
		}
		return n
	}

	take := func(v int) {
		if !selected[v] {
			selected[v] = true
		}
		for _, w := range cov.Direct[v] {
			if c2[w] {
				delete(c2, w)
				sel.Covered[w] = true
			}
		}
		for w, r := range cov.Indirect[v] {
			if c3[w] {
				delete(c3, w)
				sel.Covered[w] = true
				selected[r] = true
			}
		}
	}

	// Phase 1: greedily exhaust C².
	for len(c2) > 0 {
		best, bestD, bestI := -1, 0, 0
		for _, v := range candidates {
			d := directGain(v)
			if d == 0 {
				continue
			}
			i := indirectGain(v)
			if opts.NoIndirectTieBreak {
				i = 0
			}
			if d > bestD || (d == bestD && i > bestI) {
				best, bestD, bestI = v, d, i
			}
		}
		if best == -1 {
			// Unreachable on a valid coverage set: every w ∈ C² is in some
			// neighbor's Direct list by construction.
			panic(fmt.Sprintf("backbone: head %d cannot cover %v", cov.Head, graph.SortedMembers(c2)))
		}
		take(best)
	}

	// Phase 2: connect the leftover 3-hop clusterheads with pairs,
	// preferring pairs that reuse already-selected nodes.
	for len(c3) > 0 {
		// Deterministic order: smallest remaining target first.
		w := -1
		for x := range c3 {
			if w == -1 || x < w {
				w = x
			}
		}
		bestV, bestCost := -1, 3
		for _, v := range candidates {
			r, ok := cov.Indirect[v][w]
			if !ok {
				continue
			}
			cost := 0
			if !selected[v] {
				cost++
			}
			if !selected[r] {
				cost++
			}
			if cost < bestCost || (cost == bestCost && (bestV == -1 || v < bestV)) {
				bestV, bestCost = v, cost
			}
		}
		if bestV == -1 {
			panic(fmt.Sprintf("backbone: head %d cannot reach 3-hop clusterhead %d", cov.Head, w))
		}
		selected[bestV] = true
		selected[cov.Indirect[bestV][w]] = true
		delete(c3, w)
		sel.Covered[w] = true
	}

	sel.Gateways = graph.SortedMembers(selected)
	return sel
}

// Static is the assembled static backbone (cluster-based SI-CDS).
type Static struct {
	Mode coverage.Mode
	// Nodes is the backbone membership: all clusterheads plus every
	// selected gateway.
	Nodes map[int]bool
	// Heads lists the clusterheads, ascending.
	Heads []int
	// PerHead records each clusterhead's gateway selection.
	PerHead map[int]Selection
}

// Size returns the number of backbone nodes (the paper's "size of the
// CDS", Figure 6).
func (s *Static) Size() int { return graph.SetSize(s.Nodes) }

// GatewayCount returns the number of non-clusterhead backbone members.
func (s *Static) GatewayCount() int { return s.Size() - len(s.Heads) }

// BuildStatic constructs the static backbone of a clustered network under
// the given coverage-set mode.
func BuildStatic(g *graph.Graph, cl *cluster.Clustering, mode coverage.Mode) *Static {
	b := coverage.NewBuilder(g, cl, mode)
	return BuildStaticFrom(b, cl)
}

// BuildStaticFrom constructs the static backbone reusing an existing
// coverage builder (so callers can share the builder across algorithms).
func BuildStaticFrom(b *coverage.Builder, cl *cluster.Clustering) *Static {
	return BuildStaticOpt(b, cl, Options{})
}

// BuildStaticOpt is BuildStaticFrom with explicit selection Options.
func BuildStaticOpt(b *coverage.Builder, cl *cluster.Clustering, opts Options) *Static {
	s := &Static{
		Mode:    b.Mode(),
		Nodes:   make(map[int]bool),
		Heads:   append([]int(nil), cl.Heads...),
		PerHead: make(map[int]Selection, len(cl.Heads)),
	}
	for _, h := range cl.Heads {
		s.Nodes[h] = true
		sel := SelectGatewaysOpt(b.Of(h), nil, nil, opts)
		s.PerHead[h] = sel
		for _, v := range sel.Gateways {
			s.Nodes[v] = true
		}
	}
	return s
}

// Verify checks Theorem 1: the backbone is a connected dominating set of
// g (for a connected g) and every selection covers its full coverage set.
func (s *Static) Verify(g *graph.Graph) error {
	if !g.IsDominatingSet(s.Nodes) {
		return fmt.Errorf("backbone: static backbone is not dominating")
	}
	if !g.InducedSubgraphConnected(s.Nodes) {
		return fmt.Errorf("backbone: static backbone is not connected")
	}
	return nil
}
