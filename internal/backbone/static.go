// Package backbone builds the paper's *static backbone*: the cluster-based
// source-independent CDS consisting of all clusterheads plus the gateways
// each clusterhead selects to connect every clusterhead in its coverage
// set.
//
// The gateway selection is the paper's greedy heuristic: repeatedly select
// the neighbor that directly covers the most remaining 2-hop clusterheads,
// breaking ties by indirect 3-hop coverage and then by lowest ID; when a
// selected neighbor also covers 3-hop clusterheads indirectly, its relays
// are selected as well. After C² is exhausted, any remaining 3-hop
// clusterheads are connected by pairs.
package backbone

import (
	"fmt"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
)

// Selection is the outcome of one clusterhead's gateway selection: the
// non-clusterhead nodes it appoints to connect its coverage set.
type Selection struct {
	// Head is the selecting clusterhead.
	Head int
	// Gateways lists the selected nodes (first-hop gateways and second-hop
	// relays), ascending.
	Gateways []int
	// Covered holds the clusterheads the selection connects to.
	Covered *graph.Bitset
}

// Options tunes the gateway selection for ablation experiments. The zero
// value is the paper's algorithm.
type Options struct {
	// NoIndirectTieBreak disables the paper's tie-breaking rule that
	// prefers, among neighbors covering equally many 2-hop clusterheads,
	// the one that indirectly covers more 3-hop clusterheads. With the
	// rule disabled ties fall straight through to the lowest ID (ABL-TIE).
	NoIndirectTieBreak bool
}

// SelectGateways runs the paper's greedy selection for the clusterhead
// described by cov, restricted to the target sets need2 ⊆ C² and
// need3 ⊆ C³. Passing nil for either uses the full component, which is the
// static-backbone case; the dynamic backbone passes the pruned sets.
//
// The returned gateway set is sufficient to connect the head to every
// clusterhead in need2 ∪ need3: each target in need2 is adjacent to a
// selected gateway adjacent to the head, and each target in need3 is
// reached through a selected (gateway, relay) pair.
func SelectGateways(cov *coverage.Coverage, need2, need3 *graph.Bitset) Selection {
	return SelectGatewaysOpt(cov, need2, need3, Options{})
}

// SelectGatewaysOpt is SelectGateways with explicit Options.
func SelectGatewaysOpt(cov *coverage.Coverage, need2, need3 *graph.Bitset, opts Options) Selection {
	n := cov.C2.Cap()
	var c2, c3 graph.Bitset
	covered := graph.NewBitset(n)
	selected := graph.NewBitset(n)
	selectCore(cov, need2, need3, opts, &c2, &c3, covered, selected)
	return Selection{Head: cov.Head, Covered: covered, Gateways: selected.Members()}
}

// selectCore is the greedy selection over caller-provided bitsets: covered
// receives the clusterheads the selection connects to, selected the chosen
// gateway/relay nodes; c2 and c3 are scratch. All four are reset, so a
// per-worker workspace can run the selection allocation-free.
func selectCore(cov *coverage.Coverage, need2, need3 *graph.Bitset, opts Options, c2, c3, covered, selected *graph.Bitset) {
	n := cov.C2.Cap()
	c2.Reset(n)
	c2.Or(cov.C2)
	if need2 != nil {
		c2.And(need2)
	}
	c3.Reset(n)
	c3.Or(cov.C3)
	if need3 != nil {
		c3.And(need3)
	}
	covered.Reset(n)
	selected.Reset(n)

	// Candidate connectors come pre-sorted by neighbor ID, so ascending
	// scans give the paper's deterministic lowest-ID tie-breaking for free.
	conns := cov.Conns

	directGain := func(cn *coverage.Connector) int {
		n := 0
		for _, w := range cn.Direct {
			if c2.Has(w) {
				n++
			}
		}
		return n
	}
	indirectGain := func(cn *coverage.Connector) int {
		n := 0
		for _, e := range cn.Indirect {
			if c3.Has(e.W) {
				n++
			}
		}
		return n
	}

	take := func(cn *coverage.Connector) {
		selected.Add(cn.V)
		for _, w := range cn.Direct {
			if c2.Has(w) {
				c2.Remove(w)
				covered.Add(w)
			}
		}
		for _, e := range cn.Indirect {
			if c3.Has(e.W) {
				c3.Remove(e.W)
				covered.Add(e.W)
				selected.Add(e.R)
			}
		}
	}

	// Phase 1: greedily exhaust C².
	for c2.Any() {
		var best *coverage.Connector
		bestD, bestI := 0, 0
		for i := range conns {
			cn := &conns[i]
			d := directGain(cn)
			if d == 0 {
				continue
			}
			in := indirectGain(cn)
			if opts.NoIndirectTieBreak {
				in = 0
			}
			if d > bestD || (d == bestD && in > bestI) {
				best, bestD, bestI = cn, d, in
			}
		}
		if best == nil {
			// Unreachable on a valid coverage set: every w ∈ C² is in some
			// neighbor's Direct list by construction.
			panic(fmt.Sprintf("backbone: head %d cannot cover %v", cov.Head, c2.Members()))
		}
		take(best)
	}

	// Phase 2: connect the leftover 3-hop clusterheads with pairs,
	// preferring pairs that reuse already-selected nodes.
	for c3.Any() {
		// Deterministic order: smallest remaining target first.
		w := c3.Min()
		bestV, bestR, bestCost := -1, -1, 3
		for i := range conns {
			cn := &conns[i]
			r, ok := cn.Relay(w)
			if !ok {
				continue
			}
			cost := 0
			if !selected.Has(cn.V) {
				cost++
			}
			if !selected.Has(r) {
				cost++
			}
			if cost < bestCost || (cost == bestCost && (bestV == -1 || cn.V < bestV)) {
				bestV, bestR, bestCost = cn.V, r, cost
			}
		}
		if bestV == -1 {
			panic(fmt.Sprintf("backbone: head %d cannot reach 3-hop clusterhead %d", cov.Head, w))
		}
		selected.Add(bestV)
		selected.Add(bestR)
		c3.Remove(w)
		covered.Add(w)
	}
}

// Static is the assembled static backbone (cluster-based SI-CDS).
type Static struct {
	Mode coverage.Mode
	// Nodes is the backbone membership: all clusterheads plus every
	// selected gateway.
	Nodes map[int]bool
	// Heads lists the clusterheads, ascending.
	Heads []int
	// PerHead records each clusterhead's gateway selection.
	PerHead map[int]Selection
}

// Size returns the number of backbone nodes (the paper's "size of the
// CDS", Figure 6).
func (s *Static) Size() int { return graph.SetSize(s.Nodes) }

// GatewayCount returns the number of non-clusterhead backbone members.
func (s *Static) GatewayCount() int { return s.Size() - len(s.Heads) }

// BuildStatic constructs the static backbone of a clustered network under
// the given coverage-set mode.
func BuildStatic(g *graph.Graph, cl *cluster.Clustering, mode coverage.Mode) *Static {
	b := coverage.NewBuilder(g, cl, mode)
	return BuildStaticFrom(b, cl)
}

// BuildStaticFrom constructs the static backbone reusing an existing
// coverage builder (so callers can share the builder across algorithms).
func BuildStaticFrom(b *coverage.Builder, cl *cluster.Clustering) *Static {
	return BuildStaticOpt(b, cl, Options{})
}

// BuildStaticOpt is BuildStaticFrom with explicit selection Options.
func BuildStaticOpt(b *coverage.Builder, cl *cluster.Clustering, opts Options) *Static {
	s := &Static{
		Mode:    b.Mode(),
		Nodes:   make(map[int]bool),
		Heads:   append([]int(nil), cl.Heads...),
		PerHead: make(map[int]Selection, len(cl.Heads)),
	}
	for _, h := range cl.Heads {
		s.Nodes[h] = true
		sel := SelectGatewaysOpt(b.Of(h), nil, nil, opts)
		s.PerHead[h] = sel
		for _, v := range sel.Gateways {
			s.Nodes[v] = true
		}
	}
	return s
}

// Verify checks Theorem 1: the backbone is a connected dominating set of
// g (for a connected g) and every selection covers its full coverage set.
func (s *Static) Verify(g *graph.Graph) error {
	if !g.IsDominatingSet(s.Nodes) {
		return fmt.Errorf("backbone: static backbone is not dominating")
	}
	if !g.InducedSubgraphConnected(s.Nodes) {
		return fmt.Errorf("backbone: static backbone is not connected")
	}
	return nil
}
