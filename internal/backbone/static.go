// Package backbone builds the paper's *static backbone*: the cluster-based
// source-independent CDS consisting of all clusterheads plus the gateways
// each clusterhead selects to connect every clusterhead in its coverage
// set.
//
// The gateway selection is the paper's greedy heuristic: repeatedly select
// the neighbor that directly covers the most remaining 2-hop clusterheads,
// breaking ties by indirect 3-hop coverage and then by lowest ID; when a
// selected neighbor also covers 3-hop clusterheads indirectly, its relays
// are selected as well. After C² is exhausted, any remaining 3-hop
// clusterheads are connected by pairs.
package backbone

import (
	"fmt"
	"sort"

	"clustercast/internal/cluster"
	"clustercast/internal/coverage"
	"clustercast/internal/graph"
	"clustercast/internal/obs"
)

// Selection metrics, folded once per per-head greedy selection (both the
// static pipeline and the dynamic backbone's per-broadcast selections run
// through selectCore). Counters are atomic, so the sharded parallel
// selection paths fold in safely.
var (
	mSelections  = obs.NewCounter("backbone.selections")
	mGatewaysSel = obs.NewCounter("backbone.gateways_selected")
)

// Selection is the outcome of one clusterhead's gateway selection: the
// non-clusterhead nodes it appoints to connect its coverage set.
type Selection struct {
	// Head is the selecting clusterhead.
	Head int
	// Gateways lists the selected nodes (first-hop gateways and second-hop
	// relays), ascending.
	Gateways []int
	// Covered holds the clusterheads the selection connects to.
	Covered *graph.Bitset
}

// Options tunes the gateway selection for ablation experiments. The zero
// value is the paper's algorithm.
type Options struct {
	// NoIndirectTieBreak disables the paper's tie-breaking rule that
	// prefers, among neighbors covering equally many 2-hop clusterheads,
	// the one that indirectly covers more 3-hop clusterheads. With the
	// rule disabled ties fall straight through to the lowest ID (ABL-TIE).
	NoIndirectTieBreak bool
}

// SelectGateways runs the paper's greedy selection for the clusterhead
// described by cov, restricted to the target sets need2 ⊆ C² and
// need3 ⊆ C³. Passing nil for either uses the full component, which is the
// static-backbone case; the dynamic backbone passes the pruned sets.
//
// The returned gateway set is sufficient to connect the head to every
// clusterhead in need2 ∪ need3: each target in need2 is adjacent to a
// selected gateway adjacent to the head, and each target in need3 is
// reached through a selected (gateway, relay) pair.
func SelectGateways(cov *coverage.Coverage, need2, need3 *graph.Bitset) Selection {
	return SelectGatewaysOpt(cov, need2, need3, Options{})
}

// SelectGatewaysOpt is SelectGateways with explicit Options.
func SelectGatewaysOpt(cov *coverage.Coverage, need2, need3 *graph.Bitset, opts Options) Selection {
	n := cov.C2.Cap()
	var scr selScratch
	var hn2, hn3 *graph.HybridSet
	if need2 != nil {
		hn2 = graph.NewHybridSet(n)
		hn2.CopyBitset(need2)
	}
	if need3 != nil {
		hn3 = graph.NewHybridSet(n)
		hn3.CopyBitset(need3)
	}
	sel := selectCore(cov, hn2, hn3, opts, &scr)
	gws := append([]int(nil), sel...)
	sort.Ints(gws)
	// Every target is connected by the time both phases drain, so the
	// covered set is exactly the initial target lists.
	covered := graph.NewBitset(n)
	for _, w := range scr.c2buf {
		covered.Add(w)
	}
	for _, w := range scr.c3buf {
		covered.Add(w)
	}
	return Selection{Head: cov.Head, Covered: covered, Gateways: gws}
}

// selScratch is the bookkeeping of one greedy selection: an epoch-stamped
// mark array (mark[w] == e2 ⇒ w is an uncovered C² target, == e3 ⇒
// uncovered C³ target, == esel ⇒ already-selected gateway/relay; targets
// are clusterheads and selections are non-clusterheads, so one array
// serves all three) plus the initial target lists in ascending order and
// the selection output list. Marks give the gain loops and the phase-2
// cost probes O(1) lookups — the selection's inner loops — while the epoch
// bump makes per-head clearing free: nothing here is Θ(n) per head.
type selScratch struct {
	mark   []uint32
	epoch  uint32
	c2buf  []int
	c3buf  []int
	selbuf []int
}

// selectCore is the greedy selection over caller-provided scratch. It
// returns the selected gateway/relay nodes in selection order (owned by
// scr, valid until its next use); after it returns, scr.c2buf/scr.c3buf
// hold the targets the selection connects (all of them — both phases run
// until their remainder drains).
func selectCore(cov *coverage.Coverage, need2, need3 *graph.HybridSet, opts Options, scr *selScratch) []int {
	n := cov.C2.Cap()
	if cap(scr.mark) < n {
		scr.mark = make([]uint32, n)
		scr.epoch = 0
	}
	scr.mark = scr.mark[:n]
	if scr.epoch > ^uint32(0)-3 { // wrap: flush stale stamps
		full := scr.mark[:cap(scr.mark)]
		for i := range full {
			full[i] = 0
		}
		scr.epoch = 0
	}
	e2, e3, esel := scr.epoch+1, scr.epoch+2, scr.epoch+3
	scr.epoch += 3
	mark := scr.mark
	rem2, rem3 := 0, 0
	c2buf := scr.c2buf[:0]
	cov.C2.ForEach(func(w int) {
		if need2 != nil && !need2.Has(w) {
			return
		}
		mark[w] = e2
		rem2++
		c2buf = append(c2buf, w)
	})
	c3buf := scr.c3buf[:0]
	cov.C3.ForEach(func(w int) {
		if need3 != nil && !need3.Has(w) {
			return
		}
		mark[w] = e3
		rem3++
		c3buf = append(c3buf, w)
	})
	scr.c2buf, scr.c3buf = c2buf, c3buf
	sel := scr.selbuf[:0]
	add := func(v int) {
		if mark[v] != esel {
			mark[v] = esel
			sel = append(sel, v)
		}
	}

	// Candidate connectors come pre-sorted by neighbor ID, so ascending
	// scans give the paper's deterministic lowest-ID tie-breaking for free.
	conns := cov.Conns

	directGain := func(cn *coverage.Connector) int {
		n := 0
		for _, w := range cn.Direct {
			if mark[w] == e2 {
				n++
			}
		}
		return n
	}
	indirectGain := func(cn *coverage.Connector) int {
		n := 0
		for _, e := range cn.Indirect {
			if mark[e.W] == e3 {
				n++
			}
		}
		return n
	}

	take := func(cn *coverage.Connector) {
		add(cn.V)
		for _, w := range cn.Direct {
			if mark[w] == e2 {
				mark[w] = 0
				rem2--
			}
		}
		for _, e := range cn.Indirect {
			if mark[e.W] == e3 {
				mark[e.W] = 0
				rem3--
				add(e.R)
			}
		}
	}

	// Phase 1: greedily exhaust C².
	for rem2 > 0 {
		var best *coverage.Connector
		bestD, bestI := 0, 0
		for i := range conns {
			cn := &conns[i]
			d := directGain(cn)
			if d == 0 {
				continue
			}
			in := indirectGain(cn)
			if opts.NoIndirectTieBreak {
				in = 0
			}
			if d > bestD || (d == bestD && in > bestI) {
				best, bestD, bestI = cn, d, in
			}
		}
		if best == nil {
			// Unreachable on a valid coverage set: every w ∈ C² is in some
			// neighbor's Direct list by construction.
			left := make([]int, 0, rem2)
			for _, w := range c2buf {
				if mark[w] == e2 {
					left = append(left, w)
				}
			}
			panic(fmt.Sprintf("backbone: head %d cannot cover %v", cov.Head, left))
		}
		take(best)
	}

	// Phase 2: connect the leftover 3-hop clusterheads with pairs,
	// preferring pairs that reuse already-selected nodes. Targets are
	// consumed smallest-first (deterministic order); c3buf is ascending and
	// removals never re-add, so a lazy-deletion pointer walk serves Min.
	mi := 0
	for rem3 > 0 {
		for mark[c3buf[mi]] != e3 {
			mi++
		}
		w := c3buf[mi]
		bestV, bestR, bestCost := -1, -1, 3
		for i := range conns {
			cn := &conns[i]
			r, ok := cn.Relay(w)
			if !ok {
				continue
			}
			cost := 0
			if mark[cn.V] != esel {
				cost++
			}
			if mark[r] != esel {
				cost++
			}
			if cost < bestCost || (cost == bestCost && (bestV == -1 || cn.V < bestV)) {
				bestV, bestR, bestCost = cn.V, r, cost
			}
		}
		if bestV == -1 {
			panic(fmt.Sprintf("backbone: head %d cannot reach 3-hop clusterhead %d", cov.Head, w))
		}
		add(bestV)
		add(bestR)
		mark[w] = 0
		rem3--
	}
	scr.selbuf = sel[:0]
	mSelections.Inc()
	mGatewaysSel.Add(int64(len(sel)))
	return sel
}

// Static is the assembled static backbone (cluster-based SI-CDS).
type Static struct {
	Mode coverage.Mode
	// Nodes is the backbone membership: all clusterheads plus every
	// selected gateway.
	Nodes map[int]bool
	// Heads lists the clusterheads, ascending.
	Heads []int
	// PerHead records each clusterhead's gateway selection.
	PerHead map[int]Selection
}

// Size returns the number of backbone nodes (the paper's "size of the
// CDS", Figure 6).
func (s *Static) Size() int { return graph.SetSize(s.Nodes) }

// GatewayCount returns the number of non-clusterhead backbone members.
func (s *Static) GatewayCount() int { return s.Size() - len(s.Heads) }

// BuildStatic constructs the static backbone of a clustered network under
// the given coverage-set mode.
func BuildStatic(g *graph.Graph, cl *cluster.Clustering, mode coverage.Mode) *Static {
	b := coverage.NewBuilder(g, cl, mode)
	return BuildStaticFrom(b, cl)
}

// BuildStaticFrom constructs the static backbone reusing an existing
// coverage builder (so callers can share the builder across algorithms).
func BuildStaticFrom(b *coverage.Builder, cl *cluster.Clustering) *Static {
	return BuildStaticOpt(b, cl, Options{})
}

// BuildStaticOpt is BuildStaticFrom with explicit selection Options.
func BuildStaticOpt(b *coverage.Builder, cl *cluster.Clustering, opts Options) *Static {
	s := &Static{
		Mode:    b.Mode(),
		Nodes:   make(map[int]bool),
		Heads:   append([]int(nil), cl.Heads...),
		PerHead: make(map[int]Selection, len(cl.Heads)),
	}
	for _, h := range cl.Heads {
		s.Nodes[h] = true
		sel := SelectGatewaysOpt(b.Of(h), nil, nil, opts)
		s.PerHead[h] = sel
		for _, v := range sel.Gateways {
			s.Nodes[v] = true
		}
	}
	return s
}

// Verify checks Theorem 1: the backbone is a connected dominating set of
// g (for a connected g) and every selection covers its full coverage set.
func (s *Static) Verify(g *graph.Graph) error {
	if !g.IsDominatingSet(s.Nodes) {
		return fmt.Errorf("backbone: static backbone is not dominating")
	}
	if !g.InducedSubgraphConnected(s.Nodes) {
		return fmt.Errorf("backbone: static backbone is not connected")
	}
	return nil
}
