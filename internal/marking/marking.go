// Package marking implements the classic source-independent CDS of Wu and
// Li (DIALM 1999), cited by the paper as one of the principal SI-CDS
// baselines: the *marking process* with pruning Rules 1 and 2.
//
// Marking: a node is marked (joins the CDS) iff it has two neighbors that
// are not themselves neighbors — i.e. it lies on a shortest path between
// some pair of its neighbors.
//
// Rule 1: a marked node v unmarks itself when some marked neighbor u with
// higher ID covers it entirely: N[v] ⊆ N[u].
//
// Rule 2: a marked node v unmarks itself when two *adjacent* marked
// neighbors u, w with higher IDs jointly cover its open neighborhood:
// N(v) ⊆ N(u) ∪ N(w).
//
// On a complete graph no node is ever marked (every pair of neighbors is
// adjacent); the conventional fix — also used here — is to fall back to a
// single arbitrary dominator (the lowest ID).
package marking

import (
	"clustercast/internal/graph"
)

// Build runs the marking process with Rules 1 and 2 on g and returns the
// resulting CDS membership.
func Build(g *graph.Graph) map[int]bool {
	n := g.N()
	if n == 0 {
		return map[int]bool{}
	}
	// Neighbor sets for O(1) adjacency tests.
	nbr := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		m := make(map[int]bool, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			m[u] = true
		}
		nbr[v] = m
	}

	marked := make(map[int]bool)
	for v := 0; v < n; v++ {
		list := g.Neighbors(v)
		for i := 0; i < len(list) && !marked[v]; i++ {
			for j := i + 1; j < len(list); j++ {
				if !nbr[list[i]][list[j]] {
					marked[v] = true
					break
				}
			}
		}
	}

	// Rule 1: coverage by one higher-ID marked neighbor.
	// closedSubset reports N[v] ⊆ N[u].
	closedSubset := func(v, u int) bool {
		if !nbr[u][v] {
			return false
		}
		for _, x := range g.Neighbors(v) {
			if x != u && !nbr[u][x] {
				return false
			}
		}
		return true
	}
	for v := 0; v < n; v++ {
		if !marked[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if marked[u] && u > v && closedSubset(v, u) {
				delete(marked, v)
				break
			}
		}
	}

	// Rule 2: joint coverage by two adjacent higher-ID marked neighbors.
	for v := 0; v < n; v++ {
		if !marked[v] {
			continue
		}
		var cand []int
		for _, u := range g.Neighbors(v) {
			if marked[u] && u > v {
				cand = append(cand, u)
			}
		}
	rule2:
		for i := 0; i < len(cand); i++ {
			for j := i + 1; j < len(cand); j++ {
				u, w := cand[i], cand[j]
				if !nbr[u][w] {
					continue
				}
				covered := true
				for _, x := range g.Neighbors(v) {
					if x != u && x != w && !nbr[u][x] && !nbr[w][x] {
						covered = false
						break
					}
				}
				if covered {
					delete(marked, v)
					break rule2
				}
			}
		}
	}

	if len(marked) == 0 {
		// Complete graph (or single node): one dominator suffices.
		marked[0] = true
	}
	return marked
}
